// snapshot_inspect: human-readable dump of SPORES persistence files.
//
// Usage: snapshot_inspect FILE...
//
// Auto-detects the file kind by magic:
//  * snapshot (shard-<i>.snap) — header fields (format version, rule-set /
//    cost-model hashes, creation time, shard index/count) and, per section,
//    its name, payload size, stored CRC and whether the CRC verifies; for a
//    healthy plan-cache section the entry count, for a healthy catalog
//    section the dim/matrix counts, for a healthy e-graph section the
//    class/node/root counts.
//  * journal (shard-<i>.journal[.1]) — intact record count by type, the
//    embedded header(s), and whether the file ends in a torn record.
//
// Diagnostic only: never modifies a file, and a corrupt file is a normal
// input (that is what the tool is for), reported field by field instead of
// rejected whole. The exit code makes it scriptable as a CI corruption
// gate: 0 = every file healthy, 1 = a file could not be read at all,
// 2 = usage error, 3 = integrity findings (section CRC mismatch,
// unparseable snapshot container, or a journal torn tail).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "src/persist/plan_store.h"
#include "src/persist/snapshot_format.h"
#include "src/persist/wire_format.h"

namespace spores {
namespace {

std::string FormatUnixTime(int64_t seconds) {
  if (seconds <= 0) return "unset";
  std::time_t t = static_cast<std::time_t>(seconds);
  char buf[64];
  std::tm tm_utc;
  if (gmtime_r(&t, &tm_utc) == nullptr ||
      std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S UTC", &tm_utc) == 0) {
    return "unset";
  }
  return buf;
}

void DescribePlanSection(std::string_view payload) {
  ByteReader r(payload);
  uint32_t count;
  if (!r.GetU32(&count).ok()) {
    std::printf("      (payload too short for an entry count)\n");
    return;
  }
  std::printf("      %u plan-cache entr%s\n", count, count == 1 ? "y" : "ies");
}

void DescribeCatalogSection(std::string_view payload) {
  ByteReader r(payload);
  uint32_t ndims;
  if (!r.GetU32(&ndims).ok()) return;
  std::printf("      %u attribute dims\n", ndims);
  for (uint32_t i = 0; i < ndims; ++i) {
    std::string attr;
    int64_t dim;
    if (!r.GetString(&attr).ok() || !r.GetI64(&dim).ok()) return;
  }
  uint8_t has_graph;
  if (!r.GetU8(&has_graph).ok()) return;
  if (!has_graph) {
    std::printf("      no e-graph snapshot (plan cache only)\n");
    return;
  }
  std::string signature;
  if (!r.GetString(&signature).ok()) return;
  uint32_t nmatrices;
  if (!r.GetU32(&nmatrices).ok()) return;
  std::printf("      catalog: %u matri%s, signature %zu bytes\n", nmatrices,
              nmatrices == 1 ? "x" : "ces", signature.size());
}

void DescribeEGraphSection(std::string_view payload) {
  ByteReader r(payload);
  auto image = DecodeEGraphImage(r);
  if (!image.ok()) {
    std::printf("      (decode failed despite CRC: %s)\n",
                image.status().message().c_str());
    return;
  }
  std::printf("      %zu e-classes, %zu e-nodes, %zu roots\n",
              image.value().classes.size(), image.value().NumNodes(),
              image.value().roots.size());
}

void DescribeCalibrationSection(std::string_view payload) {
  ByteReader r(payload);
  uint32_t wire, ncells = 0;
  uint64_t version = 0, baseline_samples = 0;
  double baseline_unit_seconds = 0.0;
  if (!r.GetU32(&wire).ok() || !r.GetU64(&version).ok() ||
      !r.GetU64(&baseline_samples).ok() ||
      !r.GetDouble(&baseline_unit_seconds).ok() || !r.GetU32(&ncells).ok()) {
    std::printf("      (payload too short for a calibration header)\n");
    return;
  }
  std::printf("      calibration v%" PRIu64 ": %u cell%s, %" PRIu64
              " baseline sample%s\n",
              version, ncells, ncells == 1 ? "" : "s", baseline_samples,
              baseline_samples == 1 ? "" : "s");
}

/// Returns the number of integrity findings (CRC mismatches, unparseable
/// container) — the process exit code reports them to scripts.
size_t InspectSnapshot(const std::string& path, std::string_view image) {
  auto file = SnapshotFileReader::Parse(image);
  if (!file.ok()) {
    std::printf("  UNREADABLE snapshot: %s\n",
                file.status().ToString().c_str());
    return 1;
  }
  size_t findings = 0;
  const SnapshotHeader& h = file.value().header();
  std::printf("  snapshot container (%zu bytes)\n", image.size());
  std::printf("    format version   %u%s\n", h.format_version,
              h.format_version == kSnapshotFormatVersion
                  ? ""
                  : "  << reader expects a different version");
  std::printf("    rule-set hash    %016" PRIx64 "\n", h.rule_set_hash);
  std::printf("    cost-model hash  %016" PRIx64 "\n", h.cost_model_hash);
  std::printf("    created          %s\n",
              FormatUnixTime(h.created_unix_seconds).c_str());
  std::printf("    shard            %u of %u\n", h.shard_index,
              h.shard_count);
  for (const auto& section : file.value().sections()) {
    std::printf("    section %-10s %8zu bytes, crc %08x %s\n",
                SectionIdName(section.id), section.payload.size(),
                section.stored_crc, section.crc_ok ? "ok" : "MISMATCH");
    if (!section.crc_ok) {
      ++findings;
      continue;
    }
    switch (section.id) {
      case SectionId::kPlanCache:
        DescribePlanSection(section.payload);
        break;
      case SectionId::kCatalog:
        DescribeCatalogSection(section.payload);
        break;
      case SectionId::kEGraph:
        DescribeEGraphSection(section.payload);
        break;
      case SectionId::kCalibration:
        DescribeCalibrationSection(section.payload);
        break;
      default:
        break;
    }
  }
  (void)path;
  return findings;
}

/// Returns 1 when the journal ends in a torn record, else 0.
size_t InspectJournal(std::string_view image) {
  const std::vector<std::string> records = DecodeJournalRecords(image);
  size_t headers = 0, inserts = 0, unknown = 0, decoded_bytes = 0;
  for (const std::string& record : records) {
    // Re-measure the framed size: magic + length + crc + payload.
    decoded_bytes += 12 + record.size();
    ByteReader r(record);
    uint8_t type = 0;
    if (!r.GetU8(&type).ok()) {
      ++unknown;
      continue;
    }
    if (type == 1) {
      ++headers;
      JournalHeader h;
      if (r.GetU32(&h.format_version).ok() && r.GetU64(&h.rule_set_hash).ok() &&
          r.GetU64(&h.cost_model_hash).ok() && r.GetU32(&h.shard_count).ok() &&
          r.GetU32(&h.shard_index).ok()) {
        std::printf("    header record: format v%u, rules %016" PRIx64
                    ", costs %016" PRIx64 ", shard %u of %u\n",
                    h.format_version, h.rule_set_hash, h.cost_model_hash,
                    h.shard_index, h.shard_count);
      }
    } else if (type == 2) {
      ++inserts;
    } else {
      ++unknown;
    }
  }
  const bool torn = decoded_bytes < image.size();
  std::printf("  journal (%zu bytes): %zu intact records — %zu header, %zu "
              "insert%s%s\n",
              image.size(), records.size(), headers, inserts,
              unknown ? ", some unknown-type" : "",
              torn ? "; TORN TAIL (expected after a crash mid-append)" : "");
  return torn ? 1 : 0;
}

int Inspect(const std::string& path) {
  auto image = ReadFileToString(path);
  std::printf("%s:\n", path.c_str());
  if (!image.ok()) {
    std::printf("  cannot read: %s\n", image.status().ToString().c_str());
    return 1;
  }
  if (image.value().size() >= 4) {
    uint32_t magic = 0;
    std::memcpy(&magic, image.value().data(), 4);
    if (magic == kSnapshotMagic) {
      return InspectSnapshot(path, image.value()) > 0 ? 3 : 0;
    }
    if (magic == kJournalRecordMagic) {
      return InspectJournal(image.value()) > 0 ? 3 : 0;
    }
  }
  std::printf("  not a SPORES snapshot or journal (no magic)\n");
  return 0;
}

}  // namespace
}  // namespace spores

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s FILE...\n"
                 "  dumps SPORES snapshot (.snap) and journal (.journal) "
                 "files\n",
                 argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    rc |= spores::Inspect(argv[i]);
    if (i + 1 < argc) std::printf("\n");
  }
  return rc;
}
