// Multicore scaling study for the contention-hardened serving core (PR 9):
// the same mixed query stream pushed through the SessionPool at shard
// scales 1/2/4/8/16, with as many submitter threads as shards, reporting
// per-scale throughput, completion-latency percentiles, and the PR 9
// contention telemetry (consumer-guard/router/intern/DimEnv slow-path
// hits, steals, parking events) against a single blocking session
// baseline.
//
// Honesty rules, learned from bench_serving:
//  * identity — at EVERY scale, each distinct query whose first non-cached
//    execution converged must extract a bit-identical plan cost to the
//    single-session baseline. Hard gate in every mode, including --smoke:
//    concurrency may move work, never change answers.
//  * speedup — the >= 8-shard row must reach >= 3x the single session, but
//    the gate only arms in full mode on hardware with >= 8 concurrent
//    threads. On smaller machines every row still runs and reports
//    (queueing behavior, contention counters and identity are hardware-
//    independent); the wall-clock claim is labeled report-only rather
//    than pretending one core can demonstrate parallel speedup.
//  * scales above the machine are NOT skipped: oversubscribed rows are
//    where the lock-free spine earns its keep (mutex queues collapse
//    under preemption-while-holding; the MPSC exchange cannot).
//
// Flags:
//   --smoke       scales {1,2}, fewer repeats, shrunk catalogs (CI)
//   --json FILE   write the full sweep as JSON (BENCH_pr9.json in CI)
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/session_pool.h"
#include "src/util/rng.h"

namespace {

using namespace spores;
using namespace spores::bench;

struct DistinctQuery {
  std::string label;
  ExprPtr expr;
  std::shared_ptr<const Catalog> catalog;
};

struct Outcome {
  double cost = 0.0;
  bool converged = false;
  bool fallback = false;
  bool recorded = false;

  /// First non-cached execution only (same policy as bench_serving): a
  /// stolen repeat may stop on a budget where the first run converged, and
  /// must not evict the gated observation.
  void Observe(const OptimizedPlan& plan) {
    if (recorded || plan.cache_hit) return;
    recorded = true;
    cost = plan.plan_cost;
    converged = plan.saturation.stop_reason == StopReason::kSaturated;
    fallback = plan.used_fallback;
  }
};

std::vector<DistinctQuery> BuildDistinct(bool smoke) {
  std::vector<DistinctQuery> out;
  for (const Program& prog : AllPrograms()) {
    ScalePoint scale = ScalesFor(prog.name)[0];
    if (smoke) {
      scale.rows = std::max<int64_t>(scale.rows / 8, 64);
      scale.cols = std::max<int64_t>(scale.cols / 8, 32);
    }
    auto catalog =
        std::make_shared<Catalog>(DataFor(prog.name, scale).catalog);
    out.push_back({prog.name + " base", prog.expr, catalog});
    out.push_back({prog.name + " abs", Expr::Unary("abs", prog.expr), catalog});
    out.push_back(
        {prog.name + " sign", Expr::Unary("sign", prog.expr), catalog});
  }
  return out;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double idx = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// One row of the sweep: everything measured at a single (shards, threads)
/// scale. Contention counters come straight from PoolStats (monotone,
/// slow-path-only — see src/util/contention.h).
struct ScaleRow {
  size_t shards = 0;
  size_t threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double speedup = 0.0;  ///< vs the single blocking session
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  size_t steals = 0;
  size_t park_events = 0;
  uint64_t pop_lock_contended = 0;
  uint64_t router_contended = 0;
  uint64_t intern_contended = 0;
  uint64_t dim_write_contended = 0;
  double cache_hit_rate = 0.0;
  size_t compared = 0, mismatches = 0, skipped = 0;
  size_t submitted = 0, completed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  FILE* json = nullptr;
  if (json_path) {
    json = std::fopen(json_path, "w");
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<size_t> scales =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8, 16};
  const std::vector<DistinctQuery> distinct = BuildDistinct(smoke);
  const int kRepeats = smoke ? 2 : 4;

  // The query stream: every distinct query kRepeats times, shuffled once
  // with a fixed seed — every scale (and the baseline) sees the identical
  // stream, so rows are comparable.
  std::vector<size_t> stream;
  for (int r = 0; r < kRepeats; ++r) {
    for (size_t d = 0; d < distinct.size(); ++d) stream.push_back(d);
  }
  Rng rng(2024);
  for (size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.Uniform(i)]);
  }

  SessionConfig cfg;  // the paper's fast serving configuration
  cfg.runner.strategy = SaturationStrategy::kSampling;
  cfg.extraction = ExtractionStrategy::kGreedy;

  std::printf("Scaling study: shards x submitter-threads sweep over "
              "{%zu..%zu}, %zu distinct x %d repeats = %zu stream entries, "
              "hw threads %u%s\n\n",
              scales.front(), scales.back(), distinct.size(), kRepeats,
              stream.size(), hw, smoke ? " [smoke]" : "");

  // ---- Baseline: one blocking session, stream order ----
  std::vector<Outcome> single(distinct.size());
  Timer t;
  {
    OptimizerSession session(cfg);
    for (size_t d : stream) {
      single[d].Observe(
          session.Optimize(distinct[d].expr, *distinct[d].catalog));
    }
  }
  const double single_seconds = t.Seconds();
  std::printf("baseline: single session, %.2fs (%.1f q/s)\n\n",
              single_seconds,
              static_cast<double>(stream.size()) / single_seconds);

  // ---- Sweep ----
  std::vector<ScaleRow> rows;
  int rc = 0;
  std::printf("%6s %7s %8s %8s %8s %7s %6s %6s %9s %9s  %s\n", "shards",
              "threads", "seconds", "q/s", "speedup", "p99ms", "steals",
              "parks", "contended", "cachehit", "identity");
  std::printf("%.100s\n", std::string(100, '-').c_str());
  for (size_t scale : scales) {
    ScaleRow row;
    row.shards = scale;
    // One submitter thread per shard: submission-side parallelism grows
    // with the pool, which is exactly what the lock-free enqueue path has
    // to absorb. Above hw this oversubscribes on purpose (see header).
    row.threads = scale;

    std::vector<Outcome> sharded(distinct.size());
    std::mutex observe_mu;  // guards sharded[] + latencies (bench-side only)
    std::vector<double> latencies;
    latencies.reserve(stream.size());

    t.Reset();
    {
      auto context = std::make_shared<const OptimizerContext>(cfg);
      PoolConfig pool_cfg;
      pool_cfg.num_shards = scale;
      SessionPool pool(context, pool_cfg);
      std::vector<std::thread> submitters;
      for (size_t tid = 0; tid < row.threads; ++tid) {
        submitters.emplace_back([&, tid] {
          // Round-robin slice of the shared stream; priorities rotate
          // through high/normal/low to keep all queue levels exercised
          // (priority never changes a result, only ordering).
          for (size_t i = tid; i < stream.size(); i += row.threads) {
            const DistinctQuery& q = distinct[stream[i]];
            ServeRequest request;
            request.expr = q.expr;
            request.catalog = q.catalog;
            request.priority = static_cast<int>(i % 3);
            Timer submit_timer;
            auto future = pool.SubmitAsync(request);
            future.then([&, submit_timer,
                         d = stream[i]](const StatusOr<OptimizedPlan>& r) {
              std::lock_guard<std::mutex> lock(observe_mu);
              latencies.push_back(submit_timer.Seconds());
              if (r.ok()) sharded[d].Observe(r.value());
            });
          }
        });
      }
      for (auto& s : submitters) s.join();
      pool.Drain();
      row.seconds = t.Seconds();  // first submit through full drain

      PoolStats stats = pool.Stats();
      row.steals = stats.TotalSteals();
      row.park_events = stats.park_events;
      row.pop_lock_contended = stats.pop_lock_contended;
      row.router_contended = stats.router_contended;
      row.intern_contended = stats.intern_contended;
      row.dim_write_contended = stats.dim_write_contended;
      row.cache_hit_rate = stats.CacheHitRate();
      row.submitted = stats.submitted;
      row.completed = stats.completed;
    }
    row.qps = static_cast<double>(stream.size()) / row.seconds;
    row.speedup = row.seconds > 0 ? single_seconds / row.seconds : 0.0;
    std::sort(latencies.begin(), latencies.end());
    row.p50_ms = Percentile(latencies, 0.50) * 1e3;
    row.p95_ms = Percentile(latencies, 0.95) * 1e3;
    row.p99_ms = Percentile(latencies, 0.99) * 1e3;

    // Identity gate at this scale (hard, every mode).
    for (size_t d = 0; d < distinct.size(); ++d) {
      const Outcome& a = single[d];
      const Outcome& b = sharded[d];
      if (!a.converged || !b.converged || a.fallback || b.fallback) {
        ++row.skipped;
        continue;
      }
      ++row.compared;
      if (a.cost != b.cost) ++row.mismatches;
    }

    const uint64_t contended_total =
        row.pop_lock_contended + row.router_contended + row.intern_contended +
        row.dim_write_contended;
    char identity[64];
    std::snprintf(identity, sizeof(identity), "%zu/%zu ok, %zu n/a",
                  row.compared - row.mismatches, row.compared, row.skipped);
    std::printf("%6zu %7zu %8.2f %8.1f %7.2fx %7.1f %6zu %6zu %9llu %8.2f%%  "
                "%s\n",
                row.shards, row.threads, row.seconds, row.qps, row.speedup,
                row.p99_ms, row.steals, row.park_events,
                static_cast<unsigned long long>(contended_total),
                100.0 * row.cache_hit_rate, identity);

    if (row.mismatches > 0) {
      std::fprintf(stderr,
                   "FAIL: %zu plan-cost mismatches vs single session at "
                   "%zu shards\n",
                   row.mismatches, row.shards);
      rc = 1;
    }
    if (row.compared == 0) {
      std::fprintf(stderr, "FAIL: no identity comparisons at %zu shards\n",
                   row.shards);
      rc = 1;
    }
    if (row.completed != row.submitted) {
      std::fprintf(stderr,
                   "FAIL: drain accounting at %zu shards: %zu submitted, "
                   "%zu completed\n",
                   row.shards, row.submitted, row.completed);
      rc = 1;
    }
    rows.push_back(row);
  }

  // ---- Speedup gate (>= 8 shards, armed only on real parallel hardware) --
  const bool gate_speedup = !smoke && hw >= 8;
  double best_at_8 = 0.0;
  for (const ScaleRow& row : rows) {
    if (row.shards >= 8) best_at_8 = std::max(best_at_8, row.speedup);
  }
  if (!smoke) {
    if (gate_speedup && best_at_8 < 3.0) {
      std::fprintf(stderr,
                   "FAIL: best speedup at >= 8 shards is %.2fx, below the "
                   "required 3x\n",
                   best_at_8);
      rc = 1;
    } else if (!gate_speedup) {
      std::printf("\nspeedup gate: report-only (%u hardware threads < 8 — "
                  "wall-clock parallel speedup is not demonstrable here; "
                  "best >= 8-shard row: %.2fx)\n",
                  hw, best_at_8);
    } else {
      std::printf("\nspeedup gate: PASS (%.2fx at >= 8 shards)\n", best_at_8);
    }
  }

  if (json) {
    std::fprintf(json,
                 "{\n  \"bench\": \"scaling\",\n  \"smoke\": %s,\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"speedup_gate_armed\": %s,\n"
                 "  \"distinct_queries\": %zu,\n  \"stream_entries\": %zu,\n"
                 "  \"single_seconds\": %.6f,\n  \"rows\": [\n",
                 smoke ? "true" : "false", hw,
                 gate_speedup ? "true" : "false", distinct.size(),
                 stream.size(), single_seconds);
    for (size_t i = 0; i < rows.size(); ++i) {
      const ScaleRow& r = rows[i];
      std::fprintf(
          json,
          "    {\"shards\": %zu, \"threads\": %zu, \"seconds\": %.6f, "
          "\"qps\": %.3f, \"speedup\": %.3f, \"p50_ms\": %.3f, "
          "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"steals\": %zu, "
          "\"park_events\": %zu, \"pop_lock_contended\": %llu, "
          "\"router_contended\": %llu, \"intern_contended\": %llu, "
          "\"dim_write_contended\": %llu, \"cache_hit_rate\": %.4f, "
          "\"identity_compared\": %zu, \"identity_mismatches\": %zu, "
          "\"identity_skipped\": %zu}%s\n",
          r.shards, r.threads, r.seconds, r.qps, r.speedup, r.p50_ms,
          r.p95_ms, r.p99_ms, r.steals, r.park_events,
          static_cast<unsigned long long>(r.pop_lock_contended),
          static_cast<unsigned long long>(r.router_contended),
          static_cast<unsigned long long>(r.intern_contended),
          static_cast<unsigned long long>(r.dim_write_contended),
          r.cache_hit_rate, r.compared, r.mismatches, r.skipped,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
  }
  return rc;
}
