// Serving-layer throughput and latency: a sharded SessionPool vs one
// OptimizerSession on a mixed Fig-15/16 workload (every program plus
// local-delta variants, each resubmitted several times, deterministically
// shuffled — the shape of repeated compile traffic a deployment sees).
//
// Both executions deliver the same query stream:
//  * single  — one session, queries optimized sequentially in stream order
//    (blocking submission).
//  * sharded — an OptimizerContext (rules + trie + DimEnv compiled once)
//    behind a SessionPool consumed through the async API: canonical-form
//    routing with load bias, per-shard sessions, batch dedupe (the stream
//    is submitted in batches), work stealing, ServeFuture completion.
//
// Gates (exit 1 on violation):
//  * identity — for every distinct query whose saturation converged in both
//    executions (or was served from cache), extracted plan costs must be
//    bit-identical: unconstrained async submission must change NOTHING
//    about optimization results vs blocking. Timed-out/budget-bounded
//    saturations are trajectory-dependent and reported but not gated (same
//    policy as bench_egraph_reuse). Runs in every mode; hard-fails CI.
//  * deadline — jobs submitted already-expired must come back
//    kDeadlineExceeded with ZERO optimizer invocations (they short-circuit
//    at dequeue). Runs in every mode; hard-fails CI.
//  * cancel — Cancel() on a job mid-saturation must complete it kCancelled
//    well inside the saturation budget (the Runner exits via the token,
//    not the clock). Runs in every mode; hard-fails CI.
//  * speedup — aggregate throughput at >= 8 shards must be >= 3x the single
//    session. Wall-clock speedup needs real cores: the gate only arms in
//    full mode on hardware with >= 8 concurrent threads; under --smoke or
//    on smaller machines it is report-only (wall-clock gates on loaded CI
//    runners train people to ignore red CI).
//
// --latency additionally drives the stream through SubmitAsync with a
// per-query deadline and reports completion-latency percentiles
// (p50/p95/p99) and the deadline-miss rate — the tail-latency view the
// async pipeline exists to control. Report-only: latency numbers on shared
// hardware are not gateable.
//
// Flags:
//   --smoke         reduced scales + reps (CI-friendly)
//   --shards N      pool size (default 8)
//   --latency       run the deadline/latency phase too
//   --deadline S    per-query deadline for --latency (default 2.0)
//   --json FILE     write all measurements as JSON
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "bench/bench_common.h"
#include "src/serve/session_pool.h"
#include "src/util/rng.h"

namespace {

using namespace spores;
using namespace spores::bench;

struct DistinctQuery {
  std::string label;
  ExprPtr expr;
  std::shared_ptr<const Catalog> catalog;
};

struct Outcome {
  double cost = 0.0;
  bool converged = false;  ///< first non-cached occurrence reached kSaturated
  bool fallback = false;
  bool recorded = false;

  /// Records the *first* non-cached execution only: later re-executions of
  /// the same distinct query (a stolen repeat bypasses the cache) may stop
  /// on a budget where the first converged, and must not evict the gated
  /// observation.
  void Observe(const spores::OptimizedPlan& plan) {
    if (recorded || plan.cache_hit) return;
    recorded = true;
    cost = plan.plan_cost;
    converged = plan.saturation.stop_reason == StopReason::kSaturated;
    fallback = plan.used_fallback;
  }
};

// The mixed workload: every Fig-15/16 program plus the local-delta wrappers
// bench_egraph_reuse uses, over the program's own catalog.
std::vector<DistinctQuery> BuildDistinct(bool smoke) {
  std::vector<DistinctQuery> out;
  for (const Program& prog : AllPrograms()) {
    ScalePoint scale = ScalesFor(prog.name)[0];
    if (smoke) {
      scale.rows = std::max<int64_t>(scale.rows / 8, 64);
      scale.cols = std::max<int64_t>(scale.cols / 8, 32);
    }
    auto catalog =
        std::make_shared<Catalog>(DataFor(prog.name, scale).catalog);
    out.push_back({prog.name + " base", prog.expr, catalog});
    out.push_back({prog.name + " abs", Expr::Unary("abs", prog.expr), catalog});
    out.push_back(
        {prog.name + " sign", Expr::Unary("sign", prog.expr), catalog});
  }
  return out;
}

// The shared non-converging blocker workload (src/workloads/programs.h,
// also serve_test's async blocker): the cancel gate needs a worker that
// is reliably still busy when Cancel() lands.
ExprPtr HeavyQuery() { return NonConvergingChainExpr(); }

std::shared_ptr<const Catalog> HeavyCatalog() {
  return std::make_shared<Catalog>(NonConvergingCatalog());
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double idx = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  // Chaos mode (CI's SPORES_FAULT sweeps): the fault injector is live, so
  // individual queries may legitimately error — errored queries are
  // counted and excluded from the identity comparison instead of failing
  // the run, shard supervision is enabled so poisoned workers rebuild, and
  // the cancel gate only requires that the future resolve (an injected
  // fault may beat the cancel token to the job). Every gate that chaos
  // cannot legitimately trip stays armed: surviving answers must still be
  // bit-identical, and expired jobs must still short-circuit at dequeue.
  const bool chaos = std::getenv("SPORES_FAULT") != nullptr;
  bool smoke = false;
  bool latency_mode = false;
  double latency_deadline = 2.0;
  size_t num_shards = 8;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--latency") == 0) latency_mode = true;
    if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc) {
      latency_deadline = std::atof(argv[++i]);
      if (latency_deadline <= 0) {
        std::fprintf(stderr, "--deadline must be positive\n");
        return 1;
      }
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed < 1 || parsed > 1024) {
        std::fprintf(stderr, "--shards must be in [1, 1024], got %s\n",
                     argv[i]);
        return 1;
      }
      num_shards = static_cast<size_t>(parsed);
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  // Validate the output path before measuring (matching the sibling
  // benches): a bad path must not cost a full run or masquerade as a gate
  // failure.
  FILE* json = nullptr;
  if (json_path) {
    json = std::fopen(json_path, "w");
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
  }

  const std::vector<DistinctQuery> distinct = BuildDistinct(smoke);
  const int kRepeats = smoke ? 3 : 4;
  const size_t kBatch = 16;

  // The query stream: every distinct query kRepeats times, shuffled
  // deterministically (Fisher-Yates over a fixed-seed Rng).
  std::vector<size_t> stream;
  for (int r = 0; r < kRepeats; ++r) {
    for (size_t d = 0; d < distinct.size(); ++d) stream.push_back(d);
  }
  Rng rng(2024);
  for (size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.Uniform(i)]);
  }

  SessionConfig cfg;  // the paper's fast serving configuration
  cfg.runner.strategy = SaturationStrategy::kSampling;
  cfg.extraction = ExtractionStrategy::kGreedy;

  std::printf("Serving layer: %zu-shard SessionPool (async) vs single "
              "session (blocking).\n", num_shards);
  std::printf("%zu distinct queries x %d repeats = %zu stream entries, "
              "batches of %zu, hw threads %u%s%s\n\n",
              distinct.size(), kRepeats, stream.size(), kBatch,
              std::thread::hardware_concurrency(), smoke ? " [smoke]" : "",
              latency_mode ? " [latency]" : "");
  if (chaos) {
    std::printf("CHAOS MODE: SPORES_FAULT=%s — errored queries tolerated, "
                "identity gated on survivors only\n\n",
                std::getenv("SPORES_FAULT"));
  }

  // ---- Single session, sequential (blocking submission) ----
  std::vector<Outcome> single(distinct.size());
  size_t single_errors = 0;
  Timer t;
  {
    OptimizerSession session(cfg);
    for (size_t d : stream) {
      try {
        single[d].Observe(
            session.Optimize(distinct[d].expr, *distinct[d].catalog));
      } catch (const std::exception& e) {
        // Only injected faults may surface here (the blocking API has no
        // containment layer of its own); anything else is a real failure.
        if (!chaos) throw;
        ++single_errors;
      }
    }
  }
  double single_seconds = t.Seconds();

  // ---- Sharded pool, batched async submission, no deadlines ----
  std::vector<Outcome> sharded(distinct.size());
  size_t steals = 0, dedup_hits = 0, pregroup_hits = 0;
  size_t sharded_errors = 0, shard_restarts = 0;
  double cache_hit_rate = 0.0;
  std::string pool_stats_text;
  t.Reset();
  {
    auto context = std::make_shared<const OptimizerContext>(cfg);
    PoolConfig pool_cfg;
    pool_cfg.num_shards = num_shards;
    // Under injection the pool runs with its containment layer armed, so
    // a fault poisons one shard, not the whole run.
    pool_cfg.supervision.enable = chaos;
    SessionPool pool(context, pool_cfg);
    std::vector<ServeFuture<OptimizedPlan>> futures;
    std::vector<size_t> future_query(stream.size());
    for (size_t begin = 0; begin < stream.size(); begin += kBatch) {
      size_t end = std::min(begin + kBatch, stream.size());
      std::vector<ServeRequest> batch;
      for (size_t i = begin; i < end; ++i) {
        batch.push_back(
            {distinct[stream[i]].expr, distinct[stream[i]].catalog});
      }
      auto batch_futures = pool.BatchSubmit(batch);
      for (size_t i = begin; i < end; ++i) {
        future_query[futures.size()] = stream[i];
        futures.push_back(std::move(batch_futures[i - begin]));
      }
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      const StatusOr<OptimizedPlan>& result = futures[i].get();
      if (!result.ok()) {
        if (!chaos) {
          std::fprintf(stderr, "FAIL: unconstrained async job errored: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        ++sharded_errors;  // injected fault: the future still resolved
        continue;
      }
      sharded[future_query[i]].Observe(result.value());
    }
    // The last futures resolve before their workers bump the counters;
    // Drain orders the snapshot after every stat update.
    pool.Drain();
    PoolStats stats = pool.Stats();
    shard_restarts = stats.TotalRestarts();
    steals = stats.TotalSteals();
    dedup_hits = stats.dedup_hits;
    pregroup_hits = stats.pregroup_hits;
    cache_hit_rate = stats.CacheHitRate();
    pool_stats_text = stats.ToString();
  }
  double sharded_seconds = t.Seconds();

  // ---- Identity gate (async-vs-blocking plan costs) ----
  size_t compared = 0, mismatches = 0, skipped = 0;
  std::printf("%-11s %14s %14s  %s\n", "query", "single-cost", "sharded-cost",
              "identity");
  std::printf("%.58s\n", std::string(58, '-').c_str());
  for (size_t d = 0; d < distinct.size(); ++d) {
    const Outcome& a = single[d];
    const Outcome& b = sharded[d];
    bool comparable =
        a.converged && b.converged && !a.fallback && !b.fallback;
    const char* verdict;
    if (!comparable) {
      ++skipped;
      verdict = "n/a (not converged)";
    } else {
      ++compared;
      if (a.cost == b.cost) {
        verdict = "identical";
      } else {
        ++mismatches;
        verdict = "DIVERGED";
      }
    }
    std::printf("%-11s %14.6g %14.6g  %s\n", distinct[d].label.c_str(),
                a.cost, b.cost, verdict);
  }

  double speedup = sharded_seconds > 0 ? single_seconds / sharded_seconds : 0;
  std::printf("\nsingle %.2fs vs sharded %.2fs: %.2fx aggregate throughput "
              "(%zu steals, %zu batch-dedup + %zu pre-group hits, pool "
              "cache hit rate %.2f)\n",
              single_seconds, sharded_seconds, speedup, steals, dedup_hits,
              pregroup_hits, cache_hit_rate);
  std::printf("%zu/%zu converged distinct queries cost-identical, "
              "%zu not gated\n\n", compared - mismatches, compared, skipped);
  if (chaos) {
    std::printf("chaos: %zu single-session errors, %zu sharded errors, "
                "%zu shard restarts — every future resolved\n\n",
                single_errors, sharded_errors, shard_restarts);
  }
  std::printf("%s", pool_stats_text.c_str());

  // ---- Deadline gate: expired jobs short-circuit at dequeue ----
  size_t expired_ok = 0, expired_wrong_status = 0, expired_optimized = 0;
  const size_t kExpiredJobs = 6;
  {
    auto context = std::make_shared<const OptimizerContext>(cfg);
    PoolConfig pool_cfg;
    pool_cfg.num_shards = std::min<size_t>(num_shards, 2);
    SessionPool pool(context, pool_cfg);
    std::vector<ServeFuture<OptimizedPlan>> futures;
    for (size_t i = 0; i < kExpiredJobs; ++i) {
      const DistinctQuery& q = distinct[i % distinct.size()];
      ServeRequest request;
      request.expr = q.expr;
      request.catalog = q.catalog;
      request.deadline = Deadline::AfterSeconds(-1.0);  // expired on arrival
      futures.push_back(pool.SubmitAsync(request));
    }
    pool.Drain();
    for (const auto& f : futures) {
      if (f.get().status().code() == StatusCode::kDeadlineExceeded) {
        ++expired_ok;
      } else {
        ++expired_wrong_status;
      }
    }
    // Fresh pool: the sessions' query counters ARE the total number of
    // Optimize invocations — the gate requires zero.
    PoolStats stats = pool.Stats();
    expired_optimized = 0;
    for (const ShardStats& s : stats.shards) {
      expired_optimized += s.session.queries;
    }
  }
  std::printf("\ndeadline gate: %zu/%zu expired jobs -> kDeadlineExceeded, "
              "%zu optimizer invocations (must be 0)\n",
              expired_ok, kExpiredJobs, expired_optimized);

  // ---- Cancel gate: the Runner exits via the token mid-saturation ----
  bool cancel_busy_seen = false, cancel_completed = false;
  bool cancel_status_ok = false;
  double cancel_latency = -1.0;
  {
    SessionConfig heavy_cfg = cfg;
    heavy_cfg.runner.timeout_seconds = 20.0;  // the budget cancel must beat
    heavy_cfg.runner.max_iterations = 1'000'000;
    heavy_cfg.runner.max_nodes = 100'000'000;
    auto context = std::make_shared<const OptimizerContext>(heavy_cfg);
    PoolConfig pool_cfg;
    pool_cfg.num_shards = 1;
    SessionPool pool(context, pool_cfg);
    auto future = pool.Submit(HeavyQuery(), HeavyCatalog());
    Timer busy_wait;
    while (busy_wait.Seconds() < 5.0) {
      if (pool.Stats().shards[0].busy) {
        cancel_busy_seen = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    Timer cancel_timer;
    future.Cancel();
    cancel_completed = future.WaitFor(10.0);
    if (cancel_completed) {
      cancel_latency = cancel_timer.Seconds();
      cancel_status_ok =
          future.get().status().code() == StatusCode::kCancelled;
    }
    pool.Drain();
  }
  std::printf("cancel gate: busy=%d completed=%d status_cancelled=%d "
              "latency=%.3fs (saturation budget 20s)\n",
              cancel_busy_seen ? 1 : 0, cancel_completed ? 1 : 0,
              cancel_status_ok ? 1 : 0, cancel_latency);

  // ---- Latency phase (--latency): deadlines on, percentile report ----
  size_t lat_total = 0, lat_missed = 0, lat_degraded = 0, lat_rejected = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  if (latency_mode) {
    auto context = std::make_shared<const OptimizerContext>(cfg);
    PoolConfig pool_cfg;
    pool_cfg.num_shards = num_shards;
    SessionPool pool(context, pool_cfg);
    std::mutex mu;
    std::vector<double> latencies;
    for (size_t i = 0; i < stream.size(); ++i) {
      const DistinctQuery& q = distinct[stream[i]];
      ServeRequest request;
      request.expr = q.expr;
      request.catalog = q.catalog;
      request.deadline = Deadline::AfterSeconds(latency_deadline);
      Timer submit_timer;
      auto future = pool.SubmitAsync(request);
      future.then([&, submit_timer](const StatusOr<OptimizedPlan>& r) {
        std::lock_guard<std::mutex> lock(mu);
        latencies.push_back(submit_timer.Seconds());
        ++lat_total;
        if (!r.ok()) {
          if (r.status().code() == StatusCode::kDeadlineExceeded) {
            ++lat_missed;
          } else if (r.status().code() == StatusCode::kResourceExhausted) {
            ++lat_rejected;
          }
        } else if (r.value().degraded) {
          ++lat_degraded;
        }
      });
    }
    pool.Drain();
    std::lock_guard<std::mutex> lock(mu);
    std::sort(latencies.begin(), latencies.end());
    p50 = Percentile(latencies, 0.50);
    p95 = Percentile(latencies, 0.95);
    p99 = Percentile(latencies, 0.99);
    std::printf("\nlatency (deadline %.2fs, %zu jobs): p50 %.1fms, p95 "
                "%.1fms, p99 %.1fms; %zu deadline-missed (%.1f%%), %zu "
                "degraded, %zu rejected\n",
                latency_deadline, lat_total, p50 * 1e3, p95 * 1e3, p99 * 1e3,
                lat_missed,
                lat_total ? 100.0 * static_cast<double>(lat_missed) /
                                static_cast<double>(lat_total)
                          : 0.0,
                lat_degraded, lat_rejected);
  }

  if (json) {
    std::fprintf(
        json,
        "{\n  \"bench\": \"serving\",\n  \"smoke\": %s,\n"
        "  \"shards\": %zu,\n  \"hardware_threads\": %u,\n"
        "  \"distinct_queries\": %zu,\n  \"stream_entries\": %zu,\n"
        "  \"single_seconds\": %.6f,\n  \"sharded_seconds\": %.6f,\n"
        "  \"speedup\": %.3f,\n  \"steals\": %zu,\n"
        "  \"batch_dedup_hits\": %zu,\n  \"batch_pregroup_hits\": %zu,\n"
        "  \"cache_hit_rate\": %.4f,\n"
        "  \"identity_compared\": %zu,\n  \"identity_mismatches\": %zu,\n"
        "  \"identity_skipped\": %zu,\n"
        "  \"expired_jobs\": %zu,\n  \"expired_deadline_exceeded\": %zu,\n"
        "  \"expired_optimizer_invocations\": %zu,\n"
        "  \"cancel_completed\": %s,\n  \"cancel_status_ok\": %s,\n"
        "  \"cancel_latency_seconds\": %.4f,\n"
        "  \"latency_mode\": %s,\n  \"latency_deadline_seconds\": %.3f,\n"
        "  \"latency_jobs\": %zu,\n  \"latency_p50_ms\": %.3f,\n"
        "  \"latency_p95_ms\": %.3f,\n  \"latency_p99_ms\": %.3f,\n"
        "  \"deadline_missed\": %zu,\n  \"deadline_miss_rate\": %.4f,\n"
        "  \"degraded_plans\": %zu,\n  \"admission_rejected\": %zu\n}\n",
        smoke ? "true" : "false", num_shards,
        std::thread::hardware_concurrency(), distinct.size(), stream.size(),
        single_seconds, sharded_seconds, speedup, steals, dedup_hits,
        pregroup_hits, cache_hit_rate, compared, mismatches, skipped,
        kExpiredJobs, expired_ok, expired_optimized,
        cancel_completed ? "true" : "false",
        cancel_status_ok ? "true" : "false", cancel_latency,
        latency_mode ? "true" : "false", latency_deadline, lat_total,
        p50 * 1e3, p95 * 1e3, p99 * 1e3, lat_missed,
        lat_total ? static_cast<double>(lat_missed) /
                        static_cast<double>(lat_total)
                  : 0.0,
        lat_degraded, lat_rejected);
    std::fclose(json);
  }

  int rc = 0;
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu single-vs-sharded plan-cost mismatches\n",
                 mismatches);
    rc = 1;
  }
  if (compared == 0) {
    if (chaos) {
      // High-probability sweeps (e.g. *:1:throw at saturation) can fault
      // every first execution; no survivors means nothing to compare.
      std::fprintf(stderr,
                   "WARN: no identity comparisons survived injection\n");
    } else {
      std::fprintf(stderr, "FAIL: no identity comparisons ran\n");
      rc = 1;
    }
  }
  if (expired_ok != kExpiredJobs || expired_wrong_status > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu/%zu expired jobs returned kDeadlineExceeded\n",
                 expired_ok, kExpiredJobs);
    rc = 1;
  }
  if (expired_optimized > 0) {
    std::fprintf(stderr,
                 "FAIL: expired jobs triggered %zu optimizer invocations\n",
                 expired_optimized);
    rc = 1;
  }
  if (chaos ? !cancel_completed
            : (!cancel_busy_seen || !cancel_completed || !cancel_status_ok)) {
    // Under injection a fault may complete (or never start) the blocker
    // before Cancel() lands — the gate then only requires that the future
    // resolve with a definite status instead of hanging.
    std::fprintf(stderr,
                 "FAIL: cancel gate (busy=%d completed=%d status=%d) — the "
                 "runner did not exit via the token\n",
                 cancel_busy_seen ? 1 : 0, cancel_completed ? 1 : 0,
                 cancel_status_ok ? 1 : 0);
    rc = 1;
  }
  bool gate_speedup = !smoke && num_shards >= 8 &&
                      std::thread::hardware_concurrency() >= 8;
  if (gate_speedup && speedup < 3.0) {
    std::fprintf(stderr, "FAIL: %.2fx below the required 3x at %zu shards\n",
                 speedup, num_shards);
    rc = 1;
  } else if (!gate_speedup && speedup < 3.0) {
    std::fprintf(stderr,
                 "WARN: %.2fx below 3x (report-only: %s)\n", speedup,
                 smoke ? "smoke mode"
                       : "fewer than 8 hardware threads available");
  }
  return rc;
}
