// Serving-layer throughput: a sharded SessionPool vs one OptimizerSession
// on a mixed Fig-15/16 workload (every program plus local-delta variants,
// each resubmitted several times, deterministically shuffled — the shape of
// repeated compile traffic a deployment sees).
//
// Both executions deliver the same query stream:
//  * single  — one session, queries optimized sequentially in stream order.
//  * sharded — an OptimizerContext (rules + trie + DimEnv compiled once)
//    behind a SessionPool: canonical-form routing, per-shard sessions,
//    batch dedupe (the stream is submitted in batches), work stealing.
//
// Gates (exit 1 on violation):
//  * identity — for every distinct query whose saturation converged in both
//    executions (or was served from cache), extracted plan costs must be
//    bit-identical. Timed-out/budget-bounded saturations are trajectory-
//    dependent and reported but not gated (same policy as
//    bench_egraph_reuse). This gate runs in every mode and hard-fails CI.
//  * speedup — aggregate throughput at >= 8 shards must be >= 3x the single
//    session. Wall-clock speedup needs real cores: the gate only arms in
//    full mode on hardware with >= 8 concurrent threads; under --smoke or
//    on smaller machines it is report-only (wall-clock gates on loaded CI
//    runners train people to ignore red CI).
//
// Flags:
//   --smoke       reduced scales + reps, identity gate only (CI-friendly)
//   --shards N    pool size (default 8)
//   --json FILE   write all measurements as JSON
#include <cmath>
#include <cstring>
#include <thread>

#include "bench/bench_common.h"
#include "src/serve/session_pool.h"
#include "src/util/rng.h"

namespace {

using namespace spores;
using namespace spores::bench;

struct DistinctQuery {
  std::string label;
  ExprPtr expr;
  std::shared_ptr<const Catalog> catalog;
};

struct Outcome {
  double cost = 0.0;
  bool converged = false;  ///< first non-cached occurrence reached kSaturated
  bool fallback = false;
  bool recorded = false;

  /// Records the *first* non-cached execution only: later re-executions of
  /// the same distinct query (a stolen repeat bypasses the cache) may stop
  /// on a budget where the first converged, and must not evict the gated
  /// observation.
  void Observe(const spores::OptimizedPlan& plan) {
    if (recorded || plan.cache_hit) return;
    recorded = true;
    cost = plan.plan_cost;
    converged = plan.saturation.stop_reason == StopReason::kSaturated;
    fallback = plan.used_fallback;
  }
};

// The mixed workload: every Fig-15/16 program plus the local-delta wrappers
// bench_egraph_reuse uses, over the program's own catalog.
std::vector<DistinctQuery> BuildDistinct(bool smoke) {
  std::vector<DistinctQuery> out;
  for (const Program& prog : AllPrograms()) {
    ScalePoint scale = ScalesFor(prog.name)[0];
    if (smoke) {
      scale.rows = std::max<int64_t>(scale.rows / 8, 64);
      scale.cols = std::max<int64_t>(scale.cols / 8, 32);
    }
    auto catalog =
        std::make_shared<Catalog>(DataFor(prog.name, scale).catalog);
    out.push_back({prog.name + " base", prog.expr, catalog});
    out.push_back({prog.name + " abs", Expr::Unary("abs", prog.expr), catalog});
    out.push_back(
        {prog.name + " sign", Expr::Unary("sign", prog.expr), catalog});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t num_shards = 8;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed < 1 || parsed > 1024) {
        std::fprintf(stderr, "--shards must be in [1, 1024], got %s\n",
                     argv[i]);
        return 1;
      }
      num_shards = static_cast<size_t>(parsed);
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  // Validate the output path before measuring (matching the sibling
  // benches): a bad path must not cost a full run or masquerade as a gate
  // failure.
  FILE* json = nullptr;
  if (json_path) {
    json = std::fopen(json_path, "w");
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
  }

  const std::vector<DistinctQuery> distinct = BuildDistinct(smoke);
  const int kRepeats = smoke ? 3 : 4;
  const size_t kBatch = 16;

  // The query stream: every distinct query kRepeats times, shuffled
  // deterministically (Fisher-Yates over a fixed-seed Rng).
  std::vector<size_t> stream;
  for (int r = 0; r < kRepeats; ++r) {
    for (size_t d = 0; d < distinct.size(); ++d) stream.push_back(d);
  }
  Rng rng(2024);
  for (size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.Uniform(i)]);
  }

  SessionConfig cfg;  // the paper's fast serving configuration
  cfg.runner.strategy = SaturationStrategy::kSampling;
  cfg.extraction = ExtractionStrategy::kGreedy;

  std::printf("Serving layer: %zu-shard SessionPool vs single session.\n",
              num_shards);
  std::printf("%zu distinct queries x %d repeats = %zu stream entries, "
              "batches of %zu, hw threads %u%s\n\n",
              distinct.size(), kRepeats, stream.size(), kBatch,
              std::thread::hardware_concurrency(), smoke ? " [smoke]" : "");

  // ---- Single session, sequential ----
  std::vector<Outcome> single(distinct.size());
  Timer t;
  {
    OptimizerSession session(cfg);
    for (size_t d : stream) {
      single[d].Observe(
          session.Optimize(distinct[d].expr, *distinct[d].catalog));
    }
  }
  double single_seconds = t.Seconds();

  // ---- Sharded pool, batched ----
  std::vector<Outcome> sharded(distinct.size());
  size_t steals = 0, dedup_hits = 0;
  double cache_hit_rate = 0.0;
  std::string pool_stats_text;
  t.Reset();
  {
    auto context = std::make_shared<const OptimizerContext>(cfg);
    PoolConfig pool_cfg;
    pool_cfg.num_shards = num_shards;
    SessionPool pool(context, pool_cfg);
    std::vector<std::shared_future<OptimizedPlan>> futures;
    std::vector<size_t> future_query(stream.size());
    for (size_t begin = 0; begin < stream.size(); begin += kBatch) {
      size_t end = std::min(begin + kBatch, stream.size());
      std::vector<ServeRequest> batch;
      for (size_t i = begin; i < end; ++i) {
        batch.push_back(
            {distinct[stream[i]].expr, distinct[stream[i]].catalog});
      }
      auto batch_futures = pool.BatchSubmit(batch);
      for (size_t i = begin; i < end; ++i) {
        future_query[futures.size()] = stream[i];
        futures.push_back(std::move(batch_futures[i - begin]));
      }
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      sharded[future_query[i]].Observe(futures[i].get());
    }
    // The last futures resolve before their workers bump the counters;
    // Drain orders the snapshot after every stat update.
    pool.Drain();
    PoolStats stats = pool.Stats();
    steals = stats.TotalSteals();
    dedup_hits = stats.dedup_hits;
    cache_hit_rate = stats.CacheHitRate();
    pool_stats_text = stats.ToString();
  }
  double sharded_seconds = t.Seconds();

  // ---- Identity gate ----
  size_t compared = 0, mismatches = 0, skipped = 0;
  std::printf("%-11s %14s %14s  %s\n", "query", "single-cost", "sharded-cost",
              "identity");
  std::printf("%.58s\n", std::string(58, '-').c_str());
  for (size_t d = 0; d < distinct.size(); ++d) {
    const Outcome& a = single[d];
    const Outcome& b = sharded[d];
    bool comparable =
        a.converged && b.converged && !a.fallback && !b.fallback;
    const char* verdict;
    if (!comparable) {
      ++skipped;
      verdict = "n/a (not converged)";
    } else {
      ++compared;
      if (a.cost == b.cost) {
        verdict = "identical";
      } else {
        ++mismatches;
        verdict = "DIVERGED";
      }
    }
    std::printf("%-11s %14.6g %14.6g  %s\n", distinct[d].label.c_str(),
                a.cost, b.cost, verdict);
  }

  double speedup = sharded_seconds > 0 ? single_seconds / sharded_seconds : 0;
  std::printf("\nsingle %.2fs vs sharded %.2fs: %.2fx aggregate throughput "
              "(%zu steals, %zu batch-dedup hits, pool cache hit rate %.2f)\n",
              single_seconds, sharded_seconds, speedup, steals, dedup_hits,
              cache_hit_rate);
  std::printf("%zu/%zu converged distinct queries cost-identical, "
              "%zu not gated\n\n", compared - mismatches, compared, skipped);
  std::printf("%s", pool_stats_text.c_str());

  if (json) {
    std::fprintf(
        json,
        "{\n  \"bench\": \"serving\",\n  \"smoke\": %s,\n"
        "  \"shards\": %zu,\n  \"hardware_threads\": %u,\n"
        "  \"distinct_queries\": %zu,\n  \"stream_entries\": %zu,\n"
        "  \"single_seconds\": %.6f,\n  \"sharded_seconds\": %.6f,\n"
        "  \"speedup\": %.3f,\n  \"steals\": %zu,\n"
        "  \"batch_dedup_hits\": %zu,\n  \"cache_hit_rate\": %.4f,\n"
        "  \"identity_compared\": %zu,\n  \"identity_mismatches\": %zu,\n"
        "  \"identity_skipped\": %zu\n}\n",
        smoke ? "true" : "false", num_shards,
        std::thread::hardware_concurrency(), distinct.size(), stream.size(),
        single_seconds, sharded_seconds, speedup, steals, dedup_hits,
        cache_hit_rate, compared, mismatches, skipped);
    std::fclose(json);
  }

  int rc = 0;
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu single-vs-sharded plan-cost mismatches\n",
                 mismatches);
    rc = 1;
  }
  if (compared == 0) {
    std::fprintf(stderr, "FAIL: no identity comparisons ran\n");
    rc = 1;
  }
  bool gate_speedup = !smoke && num_shards >= 8 &&
                      std::thread::hardware_concurrency() >= 8;
  if (gate_speedup && speedup < 3.0) {
    std::fprintf(stderr, "FAIL: %.2fx below the required 3x at %zu shards\n",
                 speedup, num_shards);
    rc = 1;
  } else if (!gate_speedup && speedup < 3.0) {
    std::fprintf(stderr,
                 "WARN: %.2fx below 3x (report-only: %s)\n", speedup,
                 smoke ? "smoke mode"
                       : "fewer than 8 hardware threads available");
  }
  return rc;
}
