// Experiment E1 (Fig 14 / Sec 4.1): derive SystemML's hand-coded
// sum-product rewrites via relational equality saturation. For each rewrite,
// the LHS is translated to RA and saturated; the rewrite counts as derived
// when the RHS's translation appears in the saturated root class (modulo
// alpha-renaming of bound attributes).
#include <cstdio>
#include <map>

#include "bench/bench_fig14_rewrites.h"
#include "src/canon/isomorphism.h"
#include "src/egraph/runner.h"
#include "src/ir/parser.h"
#include "src/rules/rules_eq.h"
#include "src/rules/rules_lr.h"

namespace spores {
namespace {

Catalog BenchCatalog() {
  Catalog c;
  c.Register("X", 16, 12, 0.3);
  c.Register("Y", 16, 12);
  c.Register("Z", 16, 12, 0.0);
  c.Register("A", 16, 8);
  c.Register("B", 8, 12);
  c.Register("C", 8, 16);
  c.Register("D", 12, 8);
  c.Register("u", 16, 1);
  c.Register("v", 12, 1);
  c.Register("r", 1, 12);
  c.Register("lam", 1, 1);
  c.Register("one", 1, 1);  // the 1x1 all-ones matrix (value folded below)
  return c;
}

bool Derives(const RewriteEntry& entry, const Catalog& catalog) {
  auto lhs = ParseExpr(entry.lhs);
  auto rhs = ParseExpr(entry.rhs);
  if (!lhs.ok() || !rhs.ok()) return false;
  auto dims = std::make_shared<DimEnv>();
  // `one` is matrix(1,1,1): substitute the literal.
  auto subst_one = [](const ExprPtr& e) {
    std::function<ExprPtr(const ExprPtr&)> go =
        [&](const ExprPtr& x) -> ExprPtr {
      if (x->op == Op::kVar && x->sym == Symbol::Intern("one")) {
        return Expr::Const(1.0);
      }
      std::vector<ExprPtr> children;
      for (const ExprPtr& c : x->children) children.push_back(go(c));
      return Expr::Make(x->op, x->sym, x->value, x->attrs,
                        std::move(children));
    };
    return go(e);
  };
  auto lp = TranslateLaToRa(subst_one(lhs.value()), catalog, dims);
  if (!lp.ok()) return false;
  auto rp = TranslateLaToRa(subst_one(rhs.value()), catalog, dims,
                            lp.value().out_row, lp.value().out_col);
  if (!rp.ok()) return false;

  RaContext ctx{&catalog, dims};
  EGraph eg(std::make_unique<RaAnalysis>(ctx));
  ClassId root = eg.AddExpr(lp.value().ra);
  eg.Rebuild();
  RunnerConfig cfg;
  cfg.max_iterations = 30;
  cfg.timeout_seconds = 2.5;
  Runner runner(&eg, RaEqualityRules(ctx), cfg);
  runner.Run();
  return AlphaRepresents(eg, eg.Find(root), rp.value().ra);
}

}  // namespace
}  // namespace spores

int main() {
  using namespace spores;
  Catalog catalog = BenchCatalog();
  std::vector<RewriteEntry> entries = Fig14Entries();

  std::printf(
      "Figure 14 reproduction: deriving SystemML sum-product rewrites via\n"
      "relational equality saturation (rules R_LR + R_EQ).\n\n");
  std::printf("%-32s %3s  %-38s %s\n", "Method", "ok?", "LHS", "RHS");
  std::printf("%.120s\n", std::string(120, '-').c_str());

  std::map<std::string, std::pair<int, int>> per_method;  // derived/total
  int derived = 0;
  for (const RewriteEntry& e : entries) {
    bool ok = Derives(e, catalog);
    derived += ok;
    auto& [d, t] = per_method[e.method];
    d += ok;
    t += 1;
    std::printf("%-32s %3s  %-38s %s\n", e.method, ok ? "yes" : "NO", e.lhs,
                e.rhs);
  }
  std::printf("%.120s\n", std::string(120, '-').c_str());
  std::printf("Derived %d / %zu rewrite patterns across %zu methods.\n",
              derived, entries.size(), per_method.size());
  int full = 0;
  for (auto& [m, dt] : per_method) full += (dt.first == dt.second);
  std::printf("Methods fully derived: %d / %zu (paper: all 31 methods, 84 "
              "patterns).\n",
              full, per_method.size());
  return derived == static_cast<int>(entries.size()) ? 0 : 1;
}
