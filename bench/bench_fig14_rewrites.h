// Shared table of SystemML sum-product rewrite patterns for the Fig 14
// reproduction: (method name, LHS, RHS) triples expressible in this repo's
// operator vocabulary, grouped by the paper's method families.
#pragma once

#include <vector>

namespace spores {

struct RewriteEntry {
  const char* method;  ///< Fig 14 method family
  const char* lhs;
  const char* rhs;
};

// Variables used by the entries (shapes registered by the harness):
//   X, Y     16x12 matrices (X sparse)     Z  16x12 all-zero matrix
//   A 16x8, B 8x12 (so A%*%B is 16x12)     C 8x16, D 12x8 (t-chain shapes)
//   u 16x1, v 12x1 column vectors          r 1x12 row vector
//   lam      1x1 scalar                    one 1x1 scalar valued 1
inline std::vector<RewriteEntry> Fig14Entries() {
  return {
      // RowwiseAgg / ColwiseAgg
      {"RowwiseAgg", "rowSums(r)", "sum(r)"},
      {"ColwiseAgg", "colSums(u)", "sum(u)"},
      {"RowwiseAgg", "rowSums(u)", "u"},
      {"ColwiseAgg", "colSums(r)", "r"},
      // ColSumsMVMult / RowSumsMVMult
      {"ColSumsMVMult", "colSums(X * u)", "t(u) %*% X"},
      {"RowSumsMVMult", "rowSums(X * r)", "X %*% t(r)"},
      // UnnecessaryAggregate
      {"UnnecessaryAggregate", "sum(lam)", "lam"},
      // EmptyAgg / EmptyMMult / EmptyBinaryOperation
      {"EmptyAgg", "sum(Z)", "0"},
      {"EmptyMMult", "sum(A %*% (B * 0))", "0"},
      {"EmptyBinaryOperation", "X * Z", "Z"},
      // ScalarMatrixMult / IdentityRepMatrixMult
      {"ScalarMatrixMult", "u %*% lam", "u * lam"},
      {"IdentityRepMatrixMult", "u %*% one", "u"},
      // pushdownSumOnAdd
      {"pushdownSumOnAdd", "sum(X + Y)", "sum(X) + sum(Y)"},
      // DotProductSum
      {"DotProductSum", "sum(u ^ 2)", "t(u) %*% u"},
      {"DotProductSum", "sum(u * u)", "t(u) %*% u"},
      // reorderMinusMatrixMult
      {"reorderMinusMatrixMult", "(-t(X)) %*% u", "-(t(X) %*% u)"},
      // SumMatrixMult
      {"SumMatrixMult", "sum(A %*% B)", "sum(t(colSums(A)) * rowSums(B))"},
      {"SumMatrixMult", "sum(X %*% v)", "sum(colSums(X) %*% v)"},
      // UnnecessaryBinaryOperation
      {"UnnecessaryBinaryOperation", "X * 1", "X"},
      {"UnnecessaryBinaryOperation", "1 * X", "X"},
      {"UnnecessaryBinaryOperation", "X + 0", "X"},
      {"UnnecessaryBinaryOperation", "X - 0", "X"},
      // BinaryToUnaryOperation
      {"BinaryToUnaryOperation", "X * X", "X ^ 2"},
      {"BinaryToUnaryOperation", "X + X", "2 * X"},
      // MatrixMultScalarAdd
      {"MatrixMultScalarAdd", "lam + A %*% B", "A %*% B + lam"},
      // DistributiveBinaryOperation
      {"DistributiveBinaryOperation", "X - Y * X", "(1 - Y) * X"},
      {"DistributiveBinaryOperation", "X * Y + X * X", "X * (Y + X)"},
      // BushyBinaryOperation
      {"BushyBinaryOperation", "X * (Y * (X %*% v) %*% r)",
       "(X * Y) * ((X %*% v) %*% r)"},
      // UnaryAggReorgOperation
      {"UnaryAggReorgOperation", "sum(t(X))", "sum(X)"},
      // UnnecessaryAggregates
      {"UnnecessaryAggregates", "sum(rowSums(X))", "sum(X)"},
      {"UnnecessaryAggregates", "sum(colSums(X))", "sum(X)"},
      // BinaryMatrixScalarOperation
      {"BinaryMatrixScalarOperation", "sum(lam * X)", "lam * sum(X)"},
      // pushdownUnaryAggTransposeOp
      {"pushdownUnaryAggTransposeOp", "colSums(t(X))", "t(rowSums(X))"},
      {"pushdownUnaryAggTransposeOp", "rowSums(t(X))", "t(colSums(X))"},
      // pushdownSumBinaryMult
      {"pushdownSumBinaryMult", "sum(lam * X)", "lam * sum(X)"},
      // UnnecessaryReorgOperation
      {"UnnecessaryReorgOperation", "t(t(X))", "X"},
      // TransposeAggBinBinaryChains
      {"TransposeAggBinBinaryChains", "t(t(C) %*% t(D))", "D %*% C"},
      {"TransposeAggBinBinaryChains", "t(t(C) %*% t(D) + Y)",
       "D %*% C + t(Y)"},
      // UnnecessaryMinus
      {"UnnecessaryMinus", "-(-X)", "X"},
  };
}

}  // namespace spores
