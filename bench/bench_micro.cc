// Experiment E7: microbenchmarks (google-benchmark) for the hot paths —
// e-graph add/merge/rebuild, e-matching, extraction, kernels, and the fused
// operators' advantage over their unfused definitions.
#include <benchmark/benchmark.h>

#include "src/egraph/matcher.h"
#include "src/egraph/runner.h"
#include "src/extract/extractor.h"
#include "src/ir/parser.h"
#include "src/optimizer/optimizer_session.h"
#include "src/rules/rules_eq.h"
#include "src/rules/rules_lr.h"
#include "src/runtime/executor.h"
#include "src/runtime/fused.h"
#include "src/runtime/kernels.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace spores {
namespace {

// ---- E-graph core ----

void BM_EGraphAddExpr(benchmark::State& state) {
  ExprPtr e = Expr::Var("x");
  for (int i = 0; i < state.range(0); ++i) {
    e = Expr::Plus(Expr::Mul(e, Expr::Var("y")), Expr::Var("z"));
  }
  for (auto _ : state) {
    EGraph eg;
    benchmark::DoNotOptimize(eg.AddExpr(e));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EGraphAddExpr)->Range(4, 64)->Complexity();

void BM_EGraphMergeRebuild(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    EGraph eg;
    std::vector<ClassId> leaves;
    for (int i = 0; i < state.range(0); ++i) {
      leaves.push_back(eg.AddExpr(Expr::Var(("v" + std::to_string(i)).c_str())));
      eg.AddExpr(Expr::Transpose(Expr::Var(("v" + std::to_string(i)).c_str())));
    }
    state.ResumeTiming();
    for (size_t i = 1; i < leaves.size(); ++i) eg.Merge(leaves[0], leaves[i]);
    eg.Rebuild();
    benchmark::DoNotOptimize(eg.NumClasses());
  }
}
BENCHMARK(BM_EGraphMergeRebuild)->Range(8, 128);

void BM_EMatch(benchmark::State& state) {
  EGraph eg;
  ExprPtr e = Expr::Var("x");
  for (int i = 0; i < 32; ++i) {
    e = Expr::Mul(e, Expr::Var(("w" + std::to_string(i % 4)).c_str()));
  }
  eg.AddExpr(e);
  eg.Rebuild();
  PatternPtr p = Pattern::N(
      Op::kElemMul, {Pattern::N(Op::kElemMul,
                                {Pattern::V("?a"), Pattern::V("?b")}),
                     Pattern::V("?c")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchAll(eg, *p).size());
  }
}
BENCHMARK(BM_EMatch);

// ---- Full optimizer passes ----

void BM_SaturateAls(benchmark::State& state) {
  WorkloadData data = MakeFactorizationData(200, 150, 6, 0.02, 3);
  SessionConfig cfg;
  cfg.enable_plan_cache = false;  // measuring the cold pipeline
  for (auto _ : state) {
    OptimizerSession session(cfg);
    benchmark::DoNotOptimize(
        session.Optimize(AlsProgram().expr, data.catalog).plan);
  }
}
BENCHMARK(BM_SaturateAls)->Unit(benchmark::kMillisecond);

void BM_WarmSessionAls(benchmark::State& state) {
  // Steady-state serving: the session's plan cache answers from canonical
  // form, so each iteration pays translate + canonicalize only.
  WorkloadData data = MakeFactorizationData(200, 150, 6, 0.02, 3);
  OptimizerSession session;
  session.Optimize(AlsProgram().expr, data.catalog);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Optimize(AlsProgram().expr, data.catalog).plan);
  }
}
BENCHMARK(BM_WarmSessionAls)->Unit(benchmark::kMicrosecond);

void BM_GreedyVsIlpExtraction(benchmark::State& state) {
  WorkloadData data = MakeFactorizationData(200, 150, 6, 0.02, 3);
  auto dims = std::make_shared<DimEnv>();
  auto program = TranslateLaToRa(AlsProgram().expr, data.catalog, dims);
  RaContext ctx{&data.catalog, dims};
  EGraph eg(std::make_unique<RaAnalysis>(ctx));
  ClassId root = eg.AddExpr(program.value().ra);
  eg.Rebuild();
  Runner runner(&eg, RaEqualityRules(ctx));
  runner.Run();
  root = eg.Find(root);
  CostModel cost(ctx);
  bool use_ilp = state.range(0) != 0;
  for (auto _ : state) {
    if (use_ilp) {
      benchmark::DoNotOptimize(IlpExtract(eg, root, cost));
    } else {
      benchmark::DoNotOptimize(GreedyExtract(eg, root, cost));
    }
  }
}
BENCHMARK(BM_GreedyVsIlpExtraction)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// ---- Kernels ----

void BM_SpMV(benchmark::State& state) {
  Rng rng(1);
  int64_t n = state.range(0);
  Matrix x = Matrix::RandomSparse(n, n, 0.01, rng);
  Matrix v = Matrix::RandomDense(n, 1, rng);
  for (auto _ : state) benchmark::DoNotOptimize(MatMul(x, v));
  state.SetComplexityN(n);
}
BENCHMARK(BM_SpMV)->Range(256, 4096)->Complexity();

void BM_DenseMM(benchmark::State& state) {
  Rng rng(2);
  int64_t n = state.range(0);
  Matrix a = Matrix::RandomDense(n, n, rng);
  Matrix b = Matrix::RandomDense(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(MatMul(a, b));
}
BENCHMARK(BM_DenseMM)->Range(64, 256)->Unit(benchmark::kMillisecond);

void BM_WsLossFusedVsNaive(benchmark::State& state) {
  Rng rng(3);
  int64_t n = 1200, m = 800, k = 10;
  Matrix x = Matrix::RandomSparse(n, m, 0.01, rng);
  Matrix u = Matrix::RandomDense(n, k, rng);
  Matrix v = Matrix::RandomDense(m, k, rng);
  bool fused = state.range(0) != 0;
  for (auto _ : state) {
    if (fused) {
      benchmark::DoNotOptimize(WsLoss(x, u, v));
    } else {
      Matrix residual = Sub(x.ToDense(), MatMul(u, Transpose(v)));
      benchmark::DoNotOptimize(SumAll(Mul(residual, residual)));
    }
  }
}
BENCHMARK(BM_WsLossFusedVsNaive)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_MMChainDpVsLeftFold(benchmark::State& state) {
  Rng rng(4);
  std::vector<Matrix> chain = {Matrix::RandomDense(2000, 10, rng),
                               Matrix::RandomDense(10, 1500, rng),
                               Matrix::RandomDense(1500, 1, rng)};
  bool dp = state.range(0) != 0;
  for (auto _ : state) {
    if (dp) {
      benchmark::DoNotOptimize(MMChain(chain));
    } else {
      benchmark::DoNotOptimize(MatMul(MatMul(chain[0], chain[1]), chain[2]));
    }
  }
}
BENCHMARK(BM_MMChainDpVsLeftFold)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spores

BENCHMARK_MAIN();
