// Experiment E7: microbenchmarks (google-benchmark) for the hot paths —
// e-graph add/merge/rebuild, e-matching (compiled VM / shared trie vs the
// legacy backtracking oracle), extraction, kernels, and the fused operators'
// advantage over their unfused definitions.
//
// `bench_micro --smoke` skips google-benchmark and runs the e-matching
// identity gate instead: the compiled trie's per-rule match sequences must
// equal the legacy oracle's on a saturated workload graph (exit 1 on
// divergence; the measured speedup is report-only). CI runs this under
// ASan+UBSan so the compiled path is sanitizer-covered on every PR.
#include <benchmark/benchmark.h>

#include <cstring>

#include "src/egraph/matcher.h"
#include "src/egraph/pattern_program.h"
#include "src/egraph/runner.h"
#include "src/extract/extractor.h"
#include "src/ir/parser.h"
#include "src/optimizer/optimizer_session.h"
#include "src/rules/rules_eq.h"
#include "src/rules/rules_lr.h"
#include "src/runtime/executor.h"
#include "src/runtime/fused.h"
#include "src/runtime/kernels.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace spores {
namespace {

// ---- E-graph core ----

void BM_EGraphAddExpr(benchmark::State& state) {
  ExprPtr e = Expr::Var("x");
  for (int i = 0; i < state.range(0); ++i) {
    e = Expr::Plus(Expr::Mul(e, Expr::Var("y")), Expr::Var("z"));
  }
  for (auto _ : state) {
    EGraph eg;
    benchmark::DoNotOptimize(eg.AddExpr(e));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EGraphAddExpr)->Range(4, 64)->Complexity();

void BM_EGraphMergeRebuild(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    EGraph eg;
    std::vector<ClassId> leaves;
    for (int i = 0; i < state.range(0); ++i) {
      leaves.push_back(eg.AddExpr(Expr::Var(("v" + std::to_string(i)).c_str())));
      eg.AddExpr(Expr::Transpose(Expr::Var(("v" + std::to_string(i)).c_str())));
    }
    state.ResumeTiming();
    for (size_t i = 1; i < leaves.size(); ++i) eg.Merge(leaves[0], leaves[i]);
    eg.Rebuild();
    benchmark::DoNotOptimize(eg.NumClasses());
  }
}
BENCHMARK(BM_EGraphMergeRebuild)->Range(8, 128);

void BM_EMatch(benchmark::State& state) {
  EGraph eg;
  ExprPtr e = Expr::Var("x");
  for (int i = 0; i < 32; ++i) {
    e = Expr::Mul(e, Expr::Var(("w" + std::to_string(i % 4)).c_str()));
  }
  eg.AddExpr(e);
  eg.Rebuild();
  PatternPtr p = Pattern::N(
      Op::kElemMul, {Pattern::N(Op::kElemMul,
                                {Pattern::V("?a"), Pattern::V("?b")}),
                     Pattern::V("?c")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchAll(eg, *p).size());
  }
}
BENCHMARK(BM_EMatch);

// ---- E-matching engine: compiled VM / shared trie vs legacy oracle ----

// A saturated e-graph over the ALS workload — realistic match-site density
// for the R_EQ rule set (AC shuffles, nested aggregates, coefficients).
struct SaturatedAls {
  std::shared_ptr<DimEnv> dims = std::make_shared<DimEnv>();
  WorkloadData data = MakeFactorizationData(150, 100, 5, 0.02, 11);
  std::unique_ptr<EGraph> egraph;
  std::vector<Rewrite> rules;

  SaturatedAls() {
    auto translated = TranslateLaToRa(AlsProgram().expr, data.catalog, dims);
    RaContext ctx{&data.catalog, dims};
    egraph = std::make_unique<EGraph>(std::make_unique<RaAnalysis>(ctx));
    egraph->AddExpr(translated.value().ra);
    egraph->Rebuild();
    rules = RaEqualityRules(ctx);
    RunnerConfig cfg;
    cfg.max_iterations = 8;
    cfg.timeout_seconds = 5.0;
    Runner runner(egraph.get(), &rules, cfg);
    runner.Run();
  }

  std::vector<PatternPtr> Lhs() const { return LhsPatterns(rules); }
};

SaturatedAls& SharedAls() {
  static SaturatedAls als;
  return als;
}

// Matching every R_EQ rule across the whole graph: one trie pass per class.
void BM_EMatchRuleSetTrie(benchmark::State& state) {
  SaturatedAls& als = SharedAls();
  CompiledRuleSet trie(als.Lhs());
  RuleMask all(als.rules.size());
  all.SetAll();
  MatchBank bank;
  std::vector<ClassId> classes = als.egraph->CanonicalClasses();
  for (auto _ : state) {
    bank.Reset(als.rules.size());
    for (ClassId c : classes) trie.MatchClass(*als.egraph, c, all, &bank);
    size_t total = 0;
    for (const auto& rm : bank.rules) total += rm.size();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_EMatchRuleSetTrie)->Unit(benchmark::kMicrosecond);

// The same work through the legacy backtracking interpreter (rule-at-a-time
// over raw class node lists) — the pre-compiled-engine hot loop.
void BM_EMatchRuleSetLegacy(benchmark::State& state) {
  SaturatedAls& als = SharedAls();
  std::vector<ClassId> classes = als.egraph->CanonicalClasses();
  for (auto _ : state) {
    size_t total = 0;
    std::vector<Match> matches;
    for (const Rewrite& rule : als.rules) {
      matches.clear();
      for (ClassId c : classes) {
        LegacyMatchInClass(*als.egraph, *rule.lhs, c, &matches);
      }
      total += matches.size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_EMatchRuleSetLegacy)->Unit(benchmark::kMicrosecond);

// Single-pattern compiled VM (compile amortized out) vs the oracle.
void BM_EMatchSinglePattern(benchmark::State& state) {
  SaturatedAls& als = SharedAls();
  PatternPtr p = Pattern::AggBind(
      "?I", Pattern::N(Op::kJoin, {Pattern::V("?a"), Pattern::V("?b")}));
  bool compiled = state.range(0) != 0;
  for (auto _ : state) {
    size_t n = compiled ? MatchAll(*als.egraph, *p).size()
                        : LegacyMatchAll(*als.egraph, *p).size();
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_EMatchSinglePattern)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// ---- Full optimizer passes ----

void BM_SaturateAls(benchmark::State& state) {
  WorkloadData data = MakeFactorizationData(200, 150, 6, 0.02, 3);
  SessionConfig cfg;
  cfg.enable_plan_cache = false;  // measuring the cold pipeline
  for (auto _ : state) {
    OptimizerSession session(cfg);
    benchmark::DoNotOptimize(
        session.Optimize(AlsProgram().expr, data.catalog).plan);
  }
}
BENCHMARK(BM_SaturateAls)->Unit(benchmark::kMillisecond);

void BM_WarmSessionAls(benchmark::State& state) {
  // Steady-state serving: the session's plan cache answers from canonical
  // form, so each iteration pays translate + canonicalize only.
  WorkloadData data = MakeFactorizationData(200, 150, 6, 0.02, 3);
  OptimizerSession session;
  session.Optimize(AlsProgram().expr, data.catalog);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Optimize(AlsProgram().expr, data.catalog).plan);
  }
}
BENCHMARK(BM_WarmSessionAls)->Unit(benchmark::kMicrosecond);

void BM_GreedyVsIlpExtraction(benchmark::State& state) {
  WorkloadData data = MakeFactorizationData(200, 150, 6, 0.02, 3);
  auto dims = std::make_shared<DimEnv>();
  auto program = TranslateLaToRa(AlsProgram().expr, data.catalog, dims);
  RaContext ctx{&data.catalog, dims};
  EGraph eg(std::make_unique<RaAnalysis>(ctx));
  ClassId root = eg.AddExpr(program.value().ra);
  eg.Rebuild();
  Runner runner(&eg, RaEqualityRules(ctx));
  runner.Run();
  root = eg.Find(root);
  CostModel cost(ctx);
  bool use_ilp = state.range(0) != 0;
  for (auto _ : state) {
    if (use_ilp) {
      benchmark::DoNotOptimize(IlpExtract(eg, root, cost));
    } else {
      benchmark::DoNotOptimize(GreedyExtract(eg, root, cost));
    }
  }
}
BENCHMARK(BM_GreedyVsIlpExtraction)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// ---- Kernels ----

void BM_SpMV(benchmark::State& state) {
  Rng rng(1);
  int64_t n = state.range(0);
  Matrix x = Matrix::RandomSparse(n, n, 0.01, rng);
  Matrix v = Matrix::RandomDense(n, 1, rng);
  for (auto _ : state) benchmark::DoNotOptimize(MatMul(x, v));
  state.SetComplexityN(n);
}
BENCHMARK(BM_SpMV)->Range(256, 4096)->Complexity();

void BM_DenseMM(benchmark::State& state) {
  Rng rng(2);
  int64_t n = state.range(0);
  Matrix a = Matrix::RandomDense(n, n, rng);
  Matrix b = Matrix::RandomDense(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(MatMul(a, b));
}
BENCHMARK(BM_DenseMM)->Range(64, 256)->Unit(benchmark::kMillisecond);

void BM_WsLossFusedVsNaive(benchmark::State& state) {
  Rng rng(3);
  int64_t n = 1200, m = 800, k = 10;
  Matrix x = Matrix::RandomSparse(n, m, 0.01, rng);
  Matrix u = Matrix::RandomDense(n, k, rng);
  Matrix v = Matrix::RandomDense(m, k, rng);
  bool fused = state.range(0) != 0;
  for (auto _ : state) {
    if (fused) {
      benchmark::DoNotOptimize(WsLoss(x, u, v));
    } else {
      Matrix residual = Sub(x.ToDense(), MatMul(u, Transpose(v)));
      benchmark::DoNotOptimize(SumAll(Mul(residual, residual)));
    }
  }
}
BENCHMARK(BM_WsLossFusedVsNaive)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_MMChainDpVsLeftFold(benchmark::State& state) {
  Rng rng(4);
  std::vector<Matrix> chain = {Matrix::RandomDense(2000, 10, rng),
                               Matrix::RandomDense(10, 1500, rng),
                               Matrix::RandomDense(1500, 1, rng)};
  bool dp = state.range(0) != 0;
  for (auto _ : state) {
    if (dp) {
      benchmark::DoNotOptimize(MMChain(chain));
    } else {
      benchmark::DoNotOptimize(MatMul(MatMul(chain[0], chain[1]), chain[2]));
    }
  }
}
BENCHMARK(BM_MMChainDpVsLeftFold)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---- --smoke: e-matching identity gate (sanitizer-friendly, no
// google-benchmark), exit 1 when the compiled engine diverges from the
// oracle; speedup is report-only. ----

int RunMatchSmoke() {
  SaturatedAls& als = SharedAls();
  CompiledRuleSet trie(als.Lhs());
  RuleMask all(als.rules.size());
  all.SetAll();
  std::vector<ClassId> classes = als.egraph->CanonicalClasses();

  MatchBank bank;
  bank.Reset(als.rules.size());
  Timer compiled_timer;
  for (ClassId c : classes) trie.MatchClass(*als.egraph, c, all, &bank);
  double compiled_seconds = compiled_timer.Seconds();

  Timer legacy_timer;
  std::vector<std::vector<Match>> oracle(als.rules.size());
  for (size_t ri = 0; ri < als.rules.size(); ++ri) {
    for (ClassId c : classes) {
      LegacyMatchInClass(*als.egraph, *als.rules[ri].lhs, c, &oracle[ri]);
    }
  }
  double legacy_seconds = legacy_timer.Seconds();

  size_t total = 0;
  for (size_t ri = 0; ri < als.rules.size(); ++ri) {
    const MatchBank::RuleMatches& got = bank.rules[ri];
    if (got.size() != oracle[ri].size()) {
      std::fprintf(stderr, "FAIL: rule %s: %zu matches vs oracle %zu\n",
                   als.rules[ri].name.c_str(), got.size(),
                   oracle[ri].size());
      return 1;
    }
    for (size_t i = 0; i < got.size(); ++i) {
      Subst s = trie.MatchSubst(*als.egraph, ri, bank, i);
      const Match& want = oracle[ri][i];
      if (got.roots[i] != want.root || s.classes != want.subst.classes ||
          s.attrs != want.subst.attrs || s.values != want.subst.values) {
        std::fprintf(stderr, "FAIL: rule %s match %zu diverges\n",
                     als.rules[ri].name.c_str(), i);
        return 1;
      }
    }
    total += got.size();
  }
  std::printf(
      "e-matching smoke: %zu rules, %zu classes, %zu matches identical to "
      "the legacy oracle\n",
      als.rules.size(), classes.size(), total);
  std::printf(
      "full-rule-set pass: legacy %.3fms, compiled trie %.3fms (%.2fx, "
      "report-only)\n",
      legacy_seconds * 1e3, compiled_seconds * 1e3,
      legacy_seconds / compiled_seconds);
  return 0;
}

}  // namespace
}  // namespace spores

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return spores::RunMatchSmoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
