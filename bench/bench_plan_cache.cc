// Plan-cache trajectory: warm-session vs cold-call optimize latency on the
// Fig-15 workloads. A cold call pays translate + saturate + extract; a warm
// call on an isomorphic query is answered from the canonical-form plan
// cache and pays translate + canonicalize only. The gap is the compile time
// a serving deployment amortizes across repeated traffic.
#include "bench/bench_common.h"

int main() {
  using namespace spores;
  using namespace spores::bench;

  std::printf("Plan cache: cold vs warm optimize latency [ms].\n");
  std::printf("(warm = same query resubmitted to the same session)\n\n");
  std::printf("%-6s %-10s %12s %12s %10s  %s\n", "prog", "size", "cold[ms]",
              "warm[ms]", "speedup", "saturation skipped");
  std::printf("%.72s\n", std::string(72, '-').c_str());

  const int kWarmReps = 25;
  OptimizerSession session;
  for (const Program& prog : AllPrograms()) {
    for (const ScalePoint& scale : ScalesFor(prog.name)) {
      WorkloadData data = DataFor(prog.name, scale);

      Timer t;
      OptimizedPlan cold = session.Optimize(prog.expr, data.catalog);
      double cold_ms = t.Millis();

      double warm_ms = 1e99;
      bool all_hits = true;
      for (int i = 0; i < kWarmReps; ++i) {
        t.Reset();
        OptimizedPlan warm = session.Optimize(prog.expr, data.catalog);
        warm_ms = std::min(warm_ms, t.Millis());
        all_hits = all_hits && warm.cache_hit;
      }

      std::printf("%-6s %-10s %12.3f %12.3f %9.1fx  %s\n", prog.name.c_str(),
                  scale.label.c_str(), cold_ms, warm_ms, cold_ms / warm_ms,
                  all_hits && !cold.used_fallback ? "yes" : "NO");
    }
  }

  std::printf("\nsession: %s\n", session.stats().ToString().c_str());
  const PlanCacheStats& cs = session.cache_stats();
  std::printf("cache:   %zu hits / %zu misses, %zu entries resident\n",
              cs.hits, cs.misses, session.PlanCacheSize());
  return 0;
}
