// Plan-cache trajectory: warm-session vs cold-call optimize latency on the
// Fig-15 workloads. A cold call pays translate + saturate + extract; a warm
// call on an isomorphic query is answered from the canonical-form plan
// cache and pays translate + canonicalize only. The gap is the compile time
// a serving deployment amortizes across repeated traffic.
//
// Flags:
//   --json FILE   also write all measurements as JSON (the same BENCH_*.json
//                 trajectory format as bench_fig16_compile / bench_serving)
#include <cstring>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace spores;
  using namespace spores::bench;

  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  FILE* json = nullptr;
  if (json_path) {
    json = std::fopen(json_path, "w");
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(json, "{\n  \"bench\": \"plan_cache\",\n  \"rows\": [\n");
  }

  std::printf("Plan cache: cold vs warm optimize latency [ms].\n");
  std::printf("(warm = same query resubmitted to the same session)\n\n");
  std::printf("%-6s %-10s %12s %12s %10s  %s\n", "prog", "size", "cold[ms]",
              "warm[ms]", "speedup", "saturation skipped");
  std::printf("%.72s\n", std::string(72, '-').c_str());

  const int kWarmReps = 25;
  OptimizerSession session;
  bool first_json_row = true;
  for (const Program& prog : AllPrograms()) {
    for (const ScalePoint& scale : ScalesFor(prog.name)) {
      WorkloadData data = DataFor(prog.name, scale);

      Timer t;
      OptimizedPlan cold = session.Optimize(prog.expr, data.catalog);
      double cold_ms = t.Millis();

      double warm_ms = 1e99;
      bool all_hits = true;
      for (int i = 0; i < kWarmReps; ++i) {
        t.Reset();
        OptimizedPlan warm = session.Optimize(prog.expr, data.catalog);
        warm_ms = std::min(warm_ms, t.Millis());
        all_hits = all_hits && warm.cache_hit;
      }

      bool skipped = all_hits && !cold.used_fallback;
      std::printf("%-6s %-10s %12.3f %12.3f %9.1fx  %s\n", prog.name.c_str(),
                  scale.label.c_str(), cold_ms, warm_ms, cold_ms / warm_ms,
                  skipped ? "yes" : "NO");
      if (json) {
        std::fprintf(json,
                     "%s    {\"prog\": \"%s\", \"size\": \"%s\", "
                     "\"cold_ms\": %.6f, \"warm_ms\": %.6f, "
                     "\"speedup\": %.3f, \"plan_cost\": %.17g, "
                     "\"saturation_skipped\": %s}",
                     first_json_row ? "" : ",\n", prog.name.c_str(),
                     scale.label.c_str(), cold_ms, warm_ms, cold_ms / warm_ms,
                     cold.plan_cost, skipped ? "true" : "false");
        first_json_row = false;
      }
    }
  }

  std::printf("\nsession: %s\n", session.stats().ToString().c_str());
  const PlanCacheStats& cs = session.cache_stats();
  std::printf("cache:   %zu hits / %zu misses, %zu entries resident\n",
              cs.hits, cs.misses, session.PlanCacheSize());
  if (json) {
    std::fprintf(json,
                 "\n  ],\n  \"cache_hits\": %zu,\n  \"cache_misses\": %zu,\n"
                 "  \"entries_resident\": %zu\n}\n",
                 cs.hits, cs.misses, session.PlanCacheSize());
    std::fclose(json);
  }
  return 0;
}
