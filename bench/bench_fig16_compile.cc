// Experiment E3 (Fig 16): compile-time breakdown
// (translate / saturate / extract) for the strategies the paper compares:
//   DFS + greedy        — depth-first saturation (times out on GLM/SVM-like
//                         deeply nested programs)
//   sampling + greedy   — the paper's fast configuration
//   sampling + ILP      — the paper's optimal configuration (ILP dominates)
// plus the heuristic optimizer's total time as the SystemML-like baseline.
#include "bench/bench_common.h"

namespace {

struct Config {
  const char* name;
  spores::SaturationStrategy strategy;
  spores::ExtractionStrategy extraction;
};

}  // namespace

int main() {
  using namespace spores;
  using namespace spores::bench;

  const Config configs[] = {
      {"DFS+greedy", SaturationStrategy::kDepthFirst,
       ExtractionStrategy::kGreedy},
      {"sampling+greedy", SaturationStrategy::kSampling,
       ExtractionStrategy::kGreedy},
      {"sampling+ILP", SaturationStrategy::kSampling,
       ExtractionStrategy::kIlp},
  };

  std::printf("Figure 16 reproduction: compile time breakdown [sec].\n");
  std::printf("Saturation budget 2.5s (the paper's timeout).\n\n");
  std::printf("%-17s %-6s %10s %10s %10s %10s  %s\n", "config", "prog",
              "translate", "saturate", "extract", "total", "note");
  std::printf("%.92s\n", std::string(92, '-').c_str());

  for (const Config& config : configs) {
    for (const Program& prog : AllPrograms()) {
      ScalePoint scale = ScalesFor(prog.name)[0];
      WorkloadData data = DataFor(prog.name, scale);
      SessionConfig cfg;
      cfg.runner.strategy = config.strategy;
      cfg.runner.timeout_seconds = 2.5;
      cfg.extraction = config.extraction;
      cfg.enable_plan_cache = false;  // measuring cold compiles
      OptimizerSession session(cfg);
      OptimizedPlan result = session.Optimize(prog.expr, data.catalog);
      const char* note = "";
      if (result.saturation.stop_reason == StopReason::kTimeout) {
        note = "saturation TIMEOUT";
      } else if (result.saturation.stop_reason == StopReason::kNodeLimit) {
        note = "node limit";
      } else if (result.saturation.stop_reason == StopReason::kSaturated) {
        note = "converged";
      }
      std::printf("%-17s %-6s %10.4f %10.4f %10.4f %10.4f  %s\n", config.name,
                  prog.name.c_str(), result.timings.translate_seconds,
                  result.timings.saturate_seconds,
                  result.timings.extract_seconds,
                  result.timings.TotalSeconds(), note);
    }
  }

  std::printf("\n%-17s %-6s %10s\n", "config", "prog", "total");
  for (const Program& prog : AllPrograms()) {
    ScalePoint scale = ScalesFor(prog.name)[0];
    WorkloadData data = DataFor(prog.name, scale);
    HeuristicOptimizer heur(OptLevel::kOpt2);
    Timer t;
    heur.Optimize(prog.expr, data.catalog);
    std::printf("%-17s %-6s %10.4f\n", "heuristic(opt2)", prog.name.c_str(),
                t.Seconds());
  }
  return 0;
}
