// Experiment E3 (Fig 16): compile-time breakdown
// (translate / saturate / extract) for the strategies the paper compares:
//   DFS + greedy        — depth-first saturation (times out on GLM/SVM-like
//                         deeply nested programs)
//   sampling + greedy   — the paper's fast configuration
//   sampling + ILP      — the paper's optimal configuration (ILP dominates)
// plus the heuristic optimizer's total time as the SystemML-like baseline.
//
// The bench also gates the compiled e-matching engine: every program's cold
// compile is run twice — once through the compiled multi-pattern trie
// (default) and once with the legacy backtracking matcher (the pre-compiled-
// engine implementation, kept as an oracle). Both runs are seeded
// identically and walk the same trajectory, so extracted plan costs must be
// bit-identical whenever neither run hits the wall clock (that identity is
// the CI gate); the saturate-time ratio is the compiled engine's speedup
// (report-only in --smoke).
//
// Flags:
//   --smoke          identity gate + speedup report only (fast, CI-friendly)
//   --json FILE      also write all measurements as JSON
#include <algorithm>
#include <cmath>
#include <cstring>

#include "bench/bench_common.h"

namespace {

struct Config {
  const char* name;
  spores::SaturationStrategy strategy;
  spores::ExtractionStrategy extraction;
};

struct MatcherRun {
  double saturate_seconds = 0.0;
  double total_seconds = 0.0;
  double plan_cost = 0.0;
  double original_cost = 0.0;
  size_t iterations = 0;
  size_t applied = 0;
  bool timed_out = false;
};

// Cold compile (no plan cache, fresh session) with the paper's fast
// configuration; min-of-reps timing. Identity fields come from the last rep
// (all reps are identical by determinism).
MatcherRun RunOnce(const spores::Program& prog, bool legacy_matcher,
                   int reps) {
  using namespace spores;
  using namespace spores::bench;
  ScalePoint scale = ScalesFor(prog.name)[0];
  WorkloadData data = DataFor(prog.name, scale);
  MatcherRun out;
  out.saturate_seconds = 1e99;
  out.total_seconds = 1e99;
  for (int rep = 0; rep < reps; ++rep) {
    SessionConfig cfg;
    cfg.runner.strategy = SaturationStrategy::kSampling;
    cfg.runner.timeout_seconds = 10.0;  // deterministic: never hit the clock
    cfg.runner.use_legacy_matcher = legacy_matcher;
    cfg.extraction = ExtractionStrategy::kGreedy;
    cfg.enable_plan_cache = false;
    OptimizerSession session(cfg);
    OptimizedPlan result = session.Optimize(prog.expr, data.catalog);
    out.saturate_seconds =
        std::min(out.saturate_seconds, result.timings.saturate_seconds);
    out.total_seconds =
        std::min(out.total_seconds, result.timings.TotalSeconds());
    out.plan_cost = result.plan_cost;
    out.original_cost = result.original_cost;
    out.iterations = result.saturation.iterations;
    out.applied = result.saturation.applied_matches;
    out.timed_out = result.saturation.stop_reason == StopReason::kTimeout;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spores;
  using namespace spores::bench;

  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const Config configs[] = {
      {"DFS+greedy", SaturationStrategy::kDepthFirst,
       ExtractionStrategy::kGreedy},
      {"sampling+greedy", SaturationStrategy::kSampling,
       ExtractionStrategy::kGreedy},
      {"sampling+ILP", SaturationStrategy::kSampling,
       ExtractionStrategy::kIlp},
  };

  FILE* json = nullptr;
  if (json_path) {
    json = std::fopen(json_path, "w");
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(json, "{\n");
  }

  if (!smoke) {
    std::printf("Figure 16 reproduction: compile time breakdown [sec].\n");
    std::printf("Saturation budget 2.5s (the paper's timeout).\n\n");
    std::printf("%-17s %-6s %10s %10s %10s %10s  %s\n", "config", "prog",
                "translate", "saturate", "extract", "total", "note");
    std::printf("%.92s\n", std::string(92, '-').c_str());
    if (json) std::fprintf(json, "  \"configs\": [\n");
    bool first_json_row = true;
    for (const Config& config : configs) {
      for (const Program& prog : AllPrograms()) {
        ScalePoint scale = ScalesFor(prog.name)[0];
        WorkloadData data = DataFor(prog.name, scale);
        SessionConfig cfg;
        cfg.runner.strategy = config.strategy;
        cfg.runner.timeout_seconds = 2.5;
        cfg.extraction = config.extraction;
        cfg.enable_plan_cache = false;  // measuring cold compiles
        OptimizerSession session(cfg);
        OptimizedPlan result = session.Optimize(prog.expr, data.catalog);
        const char* note = "";
        if (result.saturation.stop_reason == StopReason::kTimeout) {
          note = "saturation TIMEOUT";
        } else if (result.saturation.stop_reason == StopReason::kNodeLimit) {
          note = "node limit";
        } else if (result.saturation.stop_reason == StopReason::kSaturated) {
          note = "converged";
        }
        std::printf("%-17s %-6s %10.4f %10.4f %10.4f %10.4f  %s\n",
                    config.name, prog.name.c_str(),
                    result.timings.translate_seconds,
                    result.timings.saturate_seconds,
                    result.timings.extract_seconds,
                    result.timings.TotalSeconds(), note);
        if (json) {
          std::fprintf(json,
                       "%s    {\"config\": \"%s\", \"prog\": \"%s\", "
                       "\"translate\": %.6f, \"saturate\": %.6f, "
                       "\"extract\": %.6f, \"total\": %.6f}",
                       first_json_row ? "" : ",\n", config.name,
                       prog.name.c_str(), result.timings.translate_seconds,
                       result.timings.saturate_seconds,
                       result.timings.extract_seconds,
                       result.timings.TotalSeconds());
          first_json_row = false;
        }
      }
    }
    if (json) std::fprintf(json, "\n  ],\n");

    std::printf("\n%-17s %-6s %10s\n", "config", "prog", "total");
    for (const Program& prog : AllPrograms()) {
      ScalePoint scale = ScalesFor(prog.name)[0];
      WorkloadData data = DataFor(prog.name, scale);
      HeuristicOptimizer heur(OptLevel::kOpt2);
      Timer t;
      heur.Optimize(prog.expr, data.catalog);
      std::printf("%-17s %-6s %10.4f\n", "heuristic(opt2)", prog.name.c_str(),
                  t.Seconds());
    }
    std::printf("\n");
  }

  // ---- Compiled-vs-legacy matcher gate (sampling+greedy cold compiles) ----
  std::printf("Compiled e-matching engine vs legacy backtracking matcher\n");
  std::printf("(cold compile, sampling+greedy, identical seeds)\n\n");
  std::printf("%-6s %12s %12s %8s  %s\n", "prog", "legacy-sat", "compiled-sat",
              "speedup", "plan-cost identity");
  std::printf("%.72s\n", std::string(72, '-').c_str());
  if (json) std::fprintf(json, "  \"matcher\": [\n");

  const int reps = smoke ? 2 : 5;
  double log_speedup_sum = 0.0;
  size_t speedup_count = 0;
  bool identity_ok = true;
  bool first_json_row = true;
  for (const Program& prog : AllPrograms()) {
    MatcherRun legacy = RunOnce(prog, /*legacy_matcher=*/true, reps);
    MatcherRun compiled = RunOnce(prog, /*legacy_matcher=*/false, reps);
    double speedup = legacy.saturate_seconds / compiled.saturate_seconds;
    // A run that hit the wall clock is trajectory-nondeterministic, so
    // identity is unknowable there (JSON: null), not a divergence.
    bool comparable = !legacy.timed_out && !compiled.timed_out;
    bool same = false;
    if (comparable) {
      same = legacy.plan_cost == compiled.plan_cost &&
             legacy.original_cost == compiled.original_cost &&
             legacy.iterations == compiled.iterations &&
             legacy.applied == compiled.applied;
      if (!same) identity_ok = false;
      log_speedup_sum += std::log(speedup);
      ++speedup_count;
    }
    std::printf("%-6s %12.6f %12.6f %7.2fx  %s\n", prog.name.c_str(),
                legacy.saturate_seconds, compiled.saturate_seconds, speedup,
                !comparable ? "n/a (timeout)"
                            : (same ? "identical" : "DIVERGED"));
    if (json) {
      std::fprintf(json,
                   "%s    {\"prog\": \"%s\", \"legacy_saturate\": %.6f, "
                   "\"compiled_saturate\": %.6f, \"speedup\": %.3f, "
                   "\"plan_cost\": %.17g, \"timed_out\": %s, "
                   "\"identical\": %s}",
                   first_json_row ? "" : ",\n", prog.name.c_str(),
                   legacy.saturate_seconds, compiled.saturate_seconds,
                   speedup, compiled.plan_cost,
                   comparable ? "false" : "true",
                   !comparable ? "null" : (same ? "true" : "false"));
      first_json_row = false;
    }
  }
  double geomean =
      speedup_count ? std::exp(log_speedup_sum / speedup_count) : 0.0;
  std::printf(
      "\ngeomean cold-saturation speedup vs in-binary oracle: %.2fx "
      "(report-only; conservative — the oracle path shares the flat-Subst / "
      "op-index / path-compression gains; see BENCH_pr3.json for the "
      "pre-PR-binary trajectory)\n",
      geomean);
  if (json) {
    std::fprintf(json, "\n  ],\n  \"geomean_speedup\": %.3f\n}\n", geomean);
    std::fclose(json);
  }

  if (!identity_ok) {
    std::fprintf(stderr,
                 "FAIL: compiled matcher diverged from the legacy oracle\n");
    return 1;
  }
  return 0;
}
