// Experiment E5 (Fig 6 / Sec 2): the running example sum((X - UV^T)^2).
// Prints its RA translation, its canonical polyterm (the right-hand DAG of
// Fig 6: three monomials with coefficients 1, -2, 1), and verifies the
// intro's hand-derived equivalence via canonical-form isomorphism
// (Theorem 2.3), timing each step.
#include <cstdio>

#include "src/canon/canonical.h"
#include "src/canon/isomorphism.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/rules/rules_lr.h"
#include "src/util/timer.h"

int main() {
  using namespace spores;
  Catalog catalog;
  catalog.Register("X", 1000, 500, 0.01);  // the intro's sparse matrix
  catalog.Register("U", 1000, 1);
  catalog.Register("V", 500, 1);

  ExprPtr intro = ParseExpr("sum((X - U %*% t(V))^2)").value();
  std::printf("Figure 6 reproduction: canonical form of %s\n\n",
              ToString(intro).c_str());

  Timer t;
  auto program = TranslateLaToRa(intro, catalog);
  double t_translate = t.Seconds();
  if (!program.ok()) {
    std::printf("translation failed: %s\n",
                program.status().ToString().c_str());
    return 1;
  }
  std::printf("RA translation (R_LR):\n  %s\n\n",
              ToString(program.value().ra).c_str());

  t.Reset();
  auto poly = CanonicalizeRa(program.value().ra, *program.value().dims);
  double t_canon = t.Seconds();
  if (!poly.ok()) {
    std::printf("canonicalization failed: %s\n",
                poly.status().ToString().c_str());
    return 1;
  }
  std::printf("Canonical polyterm (%zu monomials):\n",
              poly.value().monomials.size());
  for (const Monomial& m : poly.value().monomials) {
    Polyterm single;
    single.monomials.push_back(m);
    single.monomials[0].coeff = 1.0;  // coefficient printed separately
    std::printf("  %+g * %s\n", m.coeff,
                ToString(PolytermToExpr(single)).c_str());
  }

  // Verify the intro's identity: equals sum(X^2) - 2 U^T X V + U^T U * V^T V.
  ExprPtr expanded =
      ParseExpr("sum(X^2) - 2 * (t(U) %*% X %*% V) + t(U) %*% U * (t(V) %*% V)")
          .value();
  t.Reset();
  auto equal = EquivalentLa(intro, expanded, catalog);
  double t_check = t.Seconds();
  std::printf("\nEquivalence with the intro's expanded form: %s\n",
              equal.ok() && equal.value() ? "PROVEN (isomorphic canonical "
                                            "forms)"
                                          : "FAILED");
  // And a negative control: the '+' variant is NOT equivalent.
  ExprPtr plus_variant = ParseExpr("sum((X + U %*% t(V))^2)").value();
  auto not_equal = EquivalentLa(intro, plus_variant, catalog);
  std::printf("Negative control sum((X + UV^T)^2): %s\n",
              not_equal.ok() && !not_equal.value() ? "correctly DISTINCT"
                                                   : "FAILED");

  std::printf("\nTimings: translate %.4fs  canonicalize %.4fs  "
              "equivalence-check %.4fs\n",
              t_translate, t_canon, t_check);
  bool ok = equal.ok() && equal.value() && not_equal.ok() &&
            !not_equal.value() && poly.value().monomials.size() == 3;
  return ok ? 0 : 1;
}
