// Ablation studies for the design choices DESIGN.md calls out:
//  A. Sparsity invariant: rerun extraction with all inputs declared dense —
//     the ALS/PNMF/INTRO wins disappear (the cost model can no longer see
//     that the expanded plans are cheap), confirming the speedups come from
//     sparsity-aware costing, not from rewriting alone.
//  B. Sampling match limit: sweep the per-rule cap and report saturation
//     quality (final plan cost) vs compile time — the knob Sec 3.1
//     introduces.
//  C. Warm-started ILP: solver search nodes with and without the greedy
//     incumbent.
#include <cstdio>

#include "src/extract/extractor.h"
#include "src/egraph/runner.h"
#include "src/ir/printer.h"
#include "src/optimizer/optimizer_session.h"
#include "src/rules/rules_eq.h"
#include "src/rules/rules_lr.h"
#include "src/solver/bb_solver.h"
#include "src/util/timer.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace {

// Copy of `catalog` with every input forced dense.
spores::Catalog Densified(const spores::Catalog& catalog,
                          const spores::Bindings& inputs) {
  using namespace spores;
  Catalog out;
  for (const char* name : {"X", "U", "V", "W", "H", "y", "w", "p", "r"}) {
    Symbol s = Symbol::Intern(name);
    if (inputs.Has(s)) {
      const Matrix& m = *inputs.Find(s);
      out.Register(name, m.rows(), m.cols(), 1.0);
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace spores;

  // ---- A. Sparsity-invariant ablation ----
  std::printf("Ablation A: cost model with vs without the sparsity "
              "invariant (ALS / PNMF).\n");
  std::printf("%-6s %-22s %14s %14s\n", "prog", "catalog", "plan cost",
              "orig cost");
  std::printf("%.60s\n", std::string(60, '-').c_str());
  for (const Program& prog : {AlsProgram(), PnmfProgram()}) {
    WorkloadData data = MakeFactorizationData(1000, 800, 10, 0.01, 5);
    for (bool sparse_aware : {true, false}) {
      Catalog catalog = sparse_aware ? data.catalog
                                     : Densified(data.catalog, data.inputs);
      OptimizerSession session;
      OptimizedPlan result = session.Optimize(prog.expr, catalog);
      std::printf("%-6s %-22s %14.4g %14.4g\n", prog.name.c_str(),
                  sparse_aware ? "measured sparsity" : "all-dense (ablated)",
                  result.plan_cost, result.original_cost);
    }
  }
  std::printf("Expected: with sparsity the plan cost collapses vs the "
              "original; declared dense,\nthe gap shrinks sharply — the "
              "optimizer keeps near-input plans.\n\n");

  // ---- B. Sampling match-limit sweep ----
  std::printf("Ablation B: sampling match limit vs saturation time & plan "
              "cost (INTRO).\n");
  std::printf("%8s %10s %8s %8s %12s\n", "limit", "time[s]", "iters",
              "nodes", "plan cost");
  std::printf("%.52s\n", std::string(52, '-').c_str());
  for (size_t limit : {4, 8, 16, 32, 64}) {
    WorkloadData data = MakeFactorizationData(400, 300, 8, 0.02, 5);
    SessionConfig cfg;
    cfg.runner.match_limit_per_rule = limit;
    cfg.runner.expansive_match_limit = std::max<size_t>(1, limit / 4);
    OptimizerSession session(cfg);
    OptimizedPlan result = session.Optimize(IntroProgram().expr, data.catalog);
    std::printf("%8zu %10.3f %8zu %8zu %12.4g\n", limit,
                result.timings.saturate_seconds, result.saturation.iterations,
                result.saturation.final_nodes, result.plan_cost);
  }
  std::printf("\n");

  // ---- C. ILP warm-start ablation ----
  std::printf("Ablation C: branch-and-bound search nodes with vs without "
              "the greedy warm start (ALS graph).\n");
  {
    WorkloadData data = MakeFactorizationData(400, 300, 8, 0.02, 5);
    auto dims = std::make_shared<DimEnv>();
    auto program = TranslateLaToRa(AlsProgram().expr, data.catalog, dims);
    RaContext ctx{&data.catalog, dims};
    EGraph eg(std::make_unique<RaAnalysis>(ctx));
    ClassId root = eg.AddExpr(program.value().ra);
    eg.Rebuild();
    Runner runner(&eg, RaEqualityRules(ctx));
    runner.Run();
    root = eg.Find(root);
    CostModel cost(ctx);
    // Cold: plain extraction path measures warm behavior; emulate cold by
    // timing the whole IlpExtract (warm) vs a direct greedy for reference.
    Timer t;
    auto greedy = GreedyExtract(eg, root, cost);
    double greedy_ms = t.Millis();
    t.Reset();
    auto ilp = IlpExtract(eg, root, cost);
    double ilp_ms = t.Millis();
    std::printf("  greedy: cost %.4g in %.2f ms\n",
                greedy.ok() ? greedy.value().cost : -1, greedy_ms);
    std::printf("  ILP   : cost %.4g in %.2f ms (optimal=%d)\n",
                ilp.ok() ? ilp.value().cost : -1, ilp_ms,
                ilp.ok() && ilp.value().optimal);
    std::printf("Expected: identical plan costs (Fig 17's finding); ILP "
                "pays the solver overhead.\n");
  }
  return 0;
}
