// Experiment E2 (Fig 15): run time of the five algorithms' inner-loop
// expressions under three optimizers and three input scales:
//   base       — SystemML opt level 1 (no advanced rewrites)
//   opt2       — SystemML opt level 2 (heuristic rewrites + fusion)
//   saturation — SPORES (equality saturation + ILP extraction)
// The expected shape (paper): saturation >= opt2 >= base everywhere;
// ALS / MLR / PNMF show saturation strictly ahead of opt2.
#include "bench/bench_common.h"

#include "src/ir/printer.h"

int main() {
  using namespace spores;
  using namespace spores::bench;

  std::printf("Figure 15 reproduction: run time [sec] per optimizer.\n");
  std::printf("(sizes scaled down from the paper's cluster; see "
              "EXPERIMENTS.md)\n\n");
  std::printf("%-6s %-10s %10s %10s %10s   %s\n", "prog", "size", "base",
              "opt2", "saturation", "speedup(sat vs opt2)");
  std::printf("%.78s\n", std::string(78, '-').c_str());

  // One SPORES session for the whole sweep: rules compile once and the plan
  // cache keys on (program, scale), so no cross-contamination between rows.
  OptimizerSession saturation;

  for (const Program& prog : AllPrograms()) {
    for (const ScalePoint& scale : ScalesFor(prog.name)) {
      WorkloadData data = DataFor(prog.name, scale);

      HeuristicOptimizer base(OptLevel::kBase);
      HeuristicOptimizer opt2(OptLevel::kOpt2);

      ExprPtr plan_base = base.Optimize(prog.expr, data.catalog);
      ExprPtr plan_opt2 = opt2.Optimize(prog.expr, data.catalog);
      ExprPtr plan_sat = saturation.Optimize(prog.expr, data.catalog).plan;

      double t_base = TimeExecution(plan_base, data.inputs);
      double t_opt2 = TimeExecution(plan_opt2, data.inputs);
      double t_sat = TimeExecution(plan_sat, data.inputs);

      std::printf("%-6s %-10s %10.4f %10.4f %10.4f   %.2fx\n",
                  prog.name.c_str(), scale.label.c_str(), t_base, t_opt2,
                  t_sat, t_opt2 / t_sat);
    }
  }
  std::printf("\nPlans chosen at the largest scale:\n");
  for (const Program& prog : AllPrograms()) {
    ScalePoint scale = ScalesFor(prog.name).back();
    WorkloadData data = DataFor(prog.name, scale);
    // Replays through the session above: these are all plan-cache hits.
    ExprPtr plan = saturation.Optimize(prog.expr, data.catalog).plan;
    std::printf("  %-6s %s\n     ->  %s\n", prog.name.c_str(),
                ToString(prog.expr).c_str(), ToString(plan).c_str());
  }
  std::printf("\nsession: %s\n", saturation.stats().ToString().c_str());
  return 0;
}
