// Experiment E2 (Fig 15): run time of the five algorithms' inner-loop
// expressions under three optimizers and three input scales:
//   base       — SystemML opt level 1 (no advanced rewrites)
//   opt2       — SystemML opt level 2 (heuristic rewrites + fusion)
//   saturation — SPORES (equality saturation + ILP extraction)
// The expected shape (paper): saturation >= opt2 >= base everywhere;
// ALS / MLR / PNMF show saturation strictly ahead of opt2.
//
// Flags: --smoke (scaled-down inputs for CI), --reps N (timing repeats,
// min is kept), --json FILE (flat row: every prog/scale/optimizer cell in
// seconds, keyed "<prog>_<scale>_<optimizer>_seconds" — the format the
// kernel-speedup comparisons against older binaries consume).
#include <cstring>
#include <map>

#include "bench/bench_common.h"

#include "src/ir/printer.h"

int main(int argc, char** argv) {
  using namespace spores;
  using namespace spores::bench;

  bool smoke = false;
  int reps = 3;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed < 1 || parsed > 100) {
        std::fprintf(stderr, "--reps must be in [1, 100], got %s\n", argv[i]);
        return 1;
      }
      reps = static_cast<int>(parsed);
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  FILE* json = nullptr;
  if (json_path) {
    json = std::fopen(json_path, "w");
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
  }

  std::printf("Figure 15 reproduction: run time [sec] per optimizer.\n");
  std::printf("(sizes scaled down from the paper's cluster; see "
              "EXPERIMENTS.md)\n\n");
  std::printf("%-6s %-10s %10s %10s %10s   %s\n", "prog", "size", "base",
              "opt2", "saturation", "speedup(sat vs opt2)");
  std::printf("%.78s\n", std::string(78, '-').c_str());

  // One SPORES session for the whole sweep: rules compile once and the plan
  // cache keys on (program, scale), so no cross-contamination between rows.
  OptimizerSession saturation;

  // Cell label -> seconds, in row order (std::map keeps output stable).
  std::map<std::string, double> cells;
  for (const Program& prog : AllPrograms()) {
    for (ScalePoint scale : ScalesFor(prog.name)) {
      if (smoke) {
        scale.rows = std::max<int64_t>(64, scale.rows / 8);
        scale.cols = std::max<int64_t>(32, scale.cols / 8);
      }
      WorkloadData data = DataFor(prog.name, scale);

      HeuristicOptimizer base(OptLevel::kBase);
      HeuristicOptimizer opt2(OptLevel::kOpt2);

      ExprPtr plan_base = base.Optimize(prog.expr, data.catalog);
      ExprPtr plan_opt2 = opt2.Optimize(prog.expr, data.catalog);
      ExprPtr plan_sat = saturation.Optimize(prog.expr, data.catalog).plan;

      double t_base = TimeExecution(plan_base, data.inputs, reps);
      double t_opt2 = TimeExecution(plan_opt2, data.inputs, reps);
      double t_sat = TimeExecution(plan_sat, data.inputs, reps);
      if (t_base < 0 || t_opt2 < 0 || t_sat < 0) return 1;

      std::printf("%-6s %-10s %10.4f %10.4f %10.4f   %.2fx\n",
                  prog.name.c_str(), scale.label.c_str(), t_base, t_opt2,
                  t_sat, t_opt2 / t_sat);
      std::string key = prog.name + "_" + scale.label;
      cells[key + "_base_seconds"] = t_base;
      cells[key + "_opt2_seconds"] = t_opt2;
      cells[key + "_saturation_seconds"] = t_sat;
    }
  }
  std::printf("\nPlans chosen at the largest scale:\n");
  for (const Program& prog : AllPrograms()) {
    ScalePoint scale = ScalesFor(prog.name).back();
    if (smoke) {
      scale.rows = std::max<int64_t>(64, scale.rows / 8);
      scale.cols = std::max<int64_t>(32, scale.cols / 8);
    }
    WorkloadData data = DataFor(prog.name, scale);
    // Replays through the session above: these are all plan-cache hits.
    ExprPtr plan = saturation.Optimize(prog.expr, data.catalog).plan;
    std::printf("  %-6s %s\n     ->  %s\n", prog.name.c_str(),
                ToString(prog.expr).c_str(), ToString(plan).c_str());
  }
  std::printf("\nsession: %s\n", saturation.stats().ToString().c_str());

  if (json) {
    std::fprintf(json, "{\n  \"bench\": \"fig15_runtime\",\n"
                 "  \"smoke\": %s,\n  \"reps\": %d",
                 smoke ? "true" : "false", reps);
    for (const auto& [key, seconds] : cells) {
      std::fprintf(json, ",\n  \"%s\": %.6f", key.c_str(), seconds);
    }
    std::fprintf(json, "\n}\n");
    std::fclose(json);
  }
  return 0;
}
