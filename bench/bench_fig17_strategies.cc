// Experiment E4 (Fig 17): run-time impact of the saturation/extraction
// strategies — S+ILP, S+greedy, D+greedy — against the heuristic optimizer.
// The paper's finding: greedy extraction matches the ILP's plans on these
// workloads (all the important optimizations win regardless of sharing), and
// depth-first saturation hits the compile timeout on deeply nested programs
// yet still executes whatever plan it extracted.
#include "bench/bench_common.h"

namespace {

struct Config {
  const char* name;
  spores::SaturationStrategy strategy;
  spores::ExtractionStrategy extraction;
};

}  // namespace

int main() {
  using namespace spores;
  using namespace spores::bench;

  const Config configs[] = {
      {"S+ILP", SaturationStrategy::kSampling, ExtractionStrategy::kIlp},
      {"S+greedy", SaturationStrategy::kSampling,
       ExtractionStrategy::kGreedy},
      {"D+greedy", SaturationStrategy::kDepthFirst,
       ExtractionStrategy::kGreedy},
  };

  std::printf("Figure 17 reproduction: run time [sec] per strategy.\n\n");
  std::printf("%-6s %-10s %12s %10s %10s %10s\n", "prog", "size",
              "heuristic", "S+ILP", "S+greedy", "D+greedy");
  std::printf("%.66s\n", std::string(66, '-').c_str());

  for (const Program& prog : AllPrograms()) {
    // Middle scale: large enough that plan choice dominates noise.
    ScalePoint scale = ScalesFor(prog.name)[1];
    WorkloadData data = DataFor(prog.name, scale);

    HeuristicOptimizer heuristic(OptLevel::kOpt2);
    double t_heur =
        TimeExecution(heuristic.Optimize(prog.expr, data.catalog),
                      data.inputs);

    double times[3];
    for (int c = 0; c < 3; ++c) {
      SessionConfig cfg;
      cfg.runner.strategy = configs[c].strategy;
      cfg.runner.timeout_seconds = 2.5;
      cfg.extraction = configs[c].extraction;
      OptimizerSession session(cfg);
      times[c] = TimeExecution(session.Optimize(prog.expr, data.catalog).plan,
                               data.inputs);
    }
    std::printf("%-6s %-10s %12.4f %10.4f %10.4f %10.4f\n",
                prog.name.c_str(), scale.label.c_str(), t_heur, times[0],
                times[1], times[2]);
  }
  return 0;
}
