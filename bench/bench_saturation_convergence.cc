// Experiment E6 (Sec 4.3): sampling vs depth-first saturation on
// increasingly deep nests of * and +. The paper's observation: depth-first
// explodes the e-graph under the expansive AC rules and times out, while
// sampling keeps every rule considered equally often and still converges on
// the workloads where convergence is possible.
#include <cstdio>
#include <string>

#include "src/egraph/runner.h"
#include "src/rules/rules_eq.h"
#include "src/rules/rules_lr.h"

namespace {

// ((...(v1 * v2) * ... + vK) alternating * and + to depth `depth`.
spores::ExprPtr DeepNest(int depth) {
  using namespace spores;
  ExprPtr e = Expr::Var("m0");
  for (int i = 1; i <= depth; ++i) {
    ExprPtr v = Expr::Var(("m" + std::to_string(i)).c_str());
    e = (i % 2 == 0) ? Expr::Mul(e, v) : Expr::Plus(e, v);
  }
  return e;
}

}  // namespace

int main() {
  using namespace spores;

  std::printf("Saturation strategy comparison on deep */+ nests "
              "(Sec 4.3).\n\n");
  std::printf("%-11s %5s  %-12s %8s %8s %8s %9s\n", "strategy", "depth",
              "stop", "iters", "nodes", "classes", "time[s]");
  std::printf("%.70s\n", std::string(70, '-').c_str());

  for (int depth : {4, 6, 8, 10, 12}) {
    Catalog catalog;
    for (int i = 0; i <= depth; ++i) {
      catalog.Register("m" + std::to_string(i), 64, 48, 0.5);
    }
    for (SaturationStrategy strategy :
         {SaturationStrategy::kDepthFirst, SaturationStrategy::kSampling}) {
      auto dims = std::make_shared<DimEnv>();
      auto program = TranslateLaToRa(DeepNest(depth), catalog, dims);
      if (!program.ok()) continue;
      RaContext ctx{&catalog, dims};
      EGraph eg(std::make_unique<RaAnalysis>(ctx));
      eg.AddExpr(program.value().ra);
      eg.Rebuild();
      RunnerConfig cfg;
      cfg.strategy = strategy;
      cfg.timeout_seconds = 2.5;  // the paper's budget
      cfg.max_nodes = 20000;
      Runner runner(&eg, RaEqualityRules(ctx), cfg);
      RunnerReport report = runner.Run();
      const char* stop = "";
      switch (report.stop_reason) {
        case StopReason::kSaturated: stop = "converged"; break;
        case StopReason::kIterationLimit: stop = "iter-limit"; break;
        case StopReason::kNodeLimit: stop = "NODE-LIMIT"; break;
        case StopReason::kTimeout: stop = "TIMEOUT"; break;
        case StopReason::kStalled: stop = "stalled"; break;
        case StopReason::kCancelled: stop = "cancelled"; break;
      }
      std::printf("%-11s %5d  %-12s %8zu %8zu %8zu %9.3f\n",
                  strategy == SaturationStrategy::kDepthFirst ? "depth-first"
                                                              : "sampling",
                  depth, stop, report.iterations, report.final_nodes,
                  report.final_classes, report.seconds);
    }
  }
  std::printf("\nExpected shape: depth-first hits the node limit / timeout "
              "at moderate depth;\nsampling stays bounded per iteration and "
              "degrades gracefully.\n");
  return 0;
}
