// Cross-query e-graph reuse: warm-graph (resumed) saturation vs cold
// (fresh-graph) saturation on isomorphism-adjacent variants of the Fig-15
// workloads.
//
// Each program is submitted to one long-lived session as a family of
// structurally overlapping queries: the program itself, then local-delta
// wrappers (abs(E), sign(E)) and a self-combination (E + E). None of them
// is isomorphic to the base (the canonical-form plan cache misses), so
// every query pays saturation — but the reuse session resumes on the
// already-saturated shared graph, where deterministic attribute naming
// makes the whole base subgraph hashcons-hit, and the persistent
// RuleScheduler's search floors confine matching to the new query's delta.
// The comparison session saturates every query on a fresh graph.
//
// Gates (exit 1 on violation):
//  * identity — whenever both runs converge (kSaturated), extraction costs
//    must agree to 1e-9 relative; budget-bounded runs (MLR-style
//    non-converging regions) are reported but not gated, since a bounded
//    exploration is trajectory-dependent by nature.
//  * speedup — aggregate warm saturation over the local-delta variants
//    must beat cold by >= 2x. Under --smoke (CI: loaded shared runners,
//    sanitizer builds, microsecond absolute times) the ratio is
//    report-only — wall-clock gates train people to ignore red CI — and
//    only the identity gate fails the run.
//
// Usage: bench_egraph_reuse [--smoke] [--json FILE]
// (--json writes the same BENCH_*.json trajectory format as the other
// benches: one row per query plus the aggregate gate numbers.)
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/ir/printer.h"

namespace {

using namespace spores;
using namespace spores::bench;

struct Variant {
  std::string label;
  ExprPtr expr;
  bool gated;  ///< counts toward the speedup gate (local-delta wrappers)
};

std::vector<Variant> VariantsOf(const Program& prog) {
  return {
      {prog.name + " base", prog.expr, false},
      {prog.name + " abs", Expr::Unary("abs", prog.expr), true},
      {prog.name + " sign", Expr::Unary("sign", prog.expr), true},
      {prog.name + " self+", Expr::Plus(prog.expr, prog.expr), false},
  };
}

const char* StopName(StopReason r) {
  switch (r) {
    case StopReason::kSaturated: return "saturated";
    case StopReason::kIterationLimit: return "iter-limit";
    case StopReason::kNodeLimit: return "node-limit";
    case StopReason::kTimeout: return "timeout";
    case StopReason::kStalled: return "stalled";
    case StopReason::kCancelled: return "cancelled";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  FILE* json = nullptr;
  if (json_path) {
    json = std::fopen(json_path, "w");
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(json, "{\n  \"bench\": \"egraph_reuse\",\n  \"smoke\": %s,\n"
                 "  \"rows\": [\n", smoke ? "true" : "false");
  }
  bool first_json_row = true;

  std::printf("E-graph reuse: warm (resumed) vs cold (fresh-graph) "
              "saturation%s.\n", smoke ? " [smoke]" : "");
  std::printf("Plan cache disabled in both sessions; every query pays "
              "saturation.\n\n");
  std::printf("%-11s %12s %12s %9s  %-10s %-6s\n", "query", "cold-sat[ms]",
              "warm-sat[ms]", "speedup", "stop(warm)", "cost");
  std::printf("%.66s\n", std::string(66, '-').c_str());

  // Programs sharing a data generator share a catalog, hence one shared
  // graph per group.
  const std::vector<std::vector<std::string>> groups = {
      {"ALS", "PNMF"},
      {"GLM", "SVM", "MLR"},
  };

  double gated_cold = 0.0, gated_warm = 0.0;
  size_t mismatches = 0, compared = 0, converged_pairs = 0;
  for (const auto& group : groups) {
    ScalePoint scale = ScalesFor(group.front()).front();
    if (smoke) {
      scale.rows = std::max<int64_t>(scale.rows / 8, 64);
      scale.cols = std::max<int64_t>(scale.cols / 8, 32);
    }
    WorkloadData data = DataFor(group.front(), scale);

    SessionConfig warm_cfg;
    warm_cfg.enable_plan_cache = false;
    SessionConfig cold_cfg = warm_cfg;
    cold_cfg.reuse_egraph = false;
    OptimizerSession warm(warm_cfg);
    OptimizerSession cold(cold_cfg);

    for (const Program& prog : AllPrograms()) {
      bool in_group = false;
      for (const std::string& name : group) in_group |= prog.name == name;
      if (!in_group) continue;
      for (const Variant& v : VariantsOf(prog)) {
        OptimizedPlan cp = cold.Optimize(v.expr, data.catalog);
        OptimizedPlan wp = warm.Optimize(v.expr, data.catalog);
        if (cp.used_fallback || wp.used_fallback) {
          std::printf("%-11s %47s\n", v.label.c_str(), "FALLBACK (skipped)");
          continue;
        }
        ++compared;
        bool both_converged =
            wp.saturation.stop_reason == StopReason::kSaturated &&
            cp.saturation.stop_reason == StopReason::kSaturated;
        bool same_cost = std::abs(wp.plan_cost - cp.plan_cost) <=
                         1e-9 * (1.0 + std::abs(cp.plan_cost));
        if (both_converged) {
          ++converged_pairs;
          if (!same_cost) {
            ++mismatches;
            std::printf("MISMATCH %s: warm %.6g vs cold %.6g\n"
                        "  warm: %s\n  cold: %s\n",
                        v.label.c_str(), wp.plan_cost, cp.plan_cost,
                        ToString(wp.plan).c_str(), ToString(cp.plan).c_str());
          }
        }
        double cold_ms = cp.timings.saturate_seconds * 1e3;
        double warm_ms = wp.timings.saturate_seconds * 1e3;
        if (v.gated) {
          gated_cold += cp.timings.saturate_seconds;
          gated_warm += wp.timings.saturate_seconds;
        }
        std::printf("%-11s %12.3f %12.3f %8.1fx  %-10s %-6s\n",
                    v.label.c_str(), cold_ms, warm_ms,
                    warm_ms > 0 ? cold_ms / warm_ms : 0.0,
                    StopName(wp.saturation.stop_reason),
                    both_converged ? (same_cost ? "==" : "DIFF")
                                   : (same_cost ? "==(nc)" : "nc"));
        if (json) {
          std::fprintf(json,
                       "%s    {\"query\": \"%s\", \"cold_sat_ms\": %.6f, "
                       "\"warm_sat_ms\": %.6f, \"speedup\": %.3f, "
                       "\"stop_warm\": \"%s\", \"gated\": %s, "
                       "\"plan_cost\": %.17g, \"cost_identical\": %s}",
                       first_json_row ? "" : ",\n", v.label.c_str(), cold_ms,
                       warm_ms, warm_ms > 0 ? cold_ms / warm_ms : 0.0,
                       StopName(wp.saturation.stop_reason),
                       v.gated ? "true" : "false", wp.plan_cost,
                       !both_converged ? "null"
                                       : (same_cost ? "true" : "false"));
          first_json_row = false;
        }
      }
    }
    std::printf("  warm session: %s\n\n", warm.stats().ToString().c_str());
  }

  double speedup = gated_warm > 0 ? gated_cold / gated_warm : 0.0;
  std::printf("local-delta variants: cold %.1fms vs warm %.1fms saturation "
              "(%.1fx); %zu/%zu converged pairs cost-identical\n",
              gated_cold * 1e3, gated_warm * 1e3, speedup,
              converged_pairs - mismatches, converged_pairs);
  if (json) {
    std::fprintf(json,
                 "\n  ],\n  \"gated_cold_seconds\": %.6f,\n"
                 "  \"gated_warm_seconds\": %.6f,\n  \"speedup\": %.3f,\n"
                 "  \"converged_pairs\": %zu,\n  \"mismatches\": %zu\n}\n",
                 gated_cold, gated_warm, speedup, converged_pairs,
                 mismatches);
    std::fclose(json);
  }

  int rc = 0;
  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %zu converged warm/cold cost mismatches\n",
                 mismatches);
    rc = 1;
  }
  if (smoke) {
    if (speedup < 2.0) {
      std::fprintf(stderr, "WARN: warm speedup %.2fx below 2x (report-only "
                   "in smoke mode)\n", speedup);
    }
  } else if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: warm speedup %.2fx below required 2x\n",
                 speedup);
    rc = 1;
  }
  if (compared == 0) {
    std::fprintf(stderr, "FAIL: no comparisons ran\n");
    rc = 1;
  }
  return rc;
}
