// Shared helpers for the figure-reproduction benches: workload sizing,
// timed execution, and the three optimizer configurations compared in the
// evaluation (base / opt2 / saturation).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/optimizer/heuristic_optimizer.h"
#include "src/optimizer/optimizer_session.h"
#include "src/util/timer.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace spores::bench {

/// One scale point for a workload. Sizes are scaled down from the paper's
/// cluster runs so every plan fits a laptop; the dense-vs-sparse asymmetries
/// (what the optimizations exploit) are preserved. See EXPERIMENTS.md.
struct ScalePoint {
  std::string label;
  int64_t rows;
  int64_t cols;
  int64_t rank;
  double sparsity;
};

inline std::vector<ScalePoint> ScalesFor(const std::string& program) {
  if (program == "GLM" || program == "SVM" || program == "MLR") {
    return {{"10Kx200", 10000, 200, 0, 0.01},
            {"40Kx200", 40000, 200, 0, 0.01},
            {"160Kx200", 160000, 200, 0, 0.01}};
  }
  // Factorization workloads (ALS, PNMF, INTRO).
  return {{"1Kx0.5K", 1000, 500, 10, 0.01},
          {"2Kx1K", 2000, 1000, 10, 0.01},
          {"4Kx2K", 4000, 2000, 10, 0.01}};
}

inline WorkloadData DataFor(const std::string& program, const ScalePoint& s,
                            uint64_t seed = 17) {
  if (program == "GLM" || program == "SVM" || program == "MLR") {
    return MakeRegressionData(s.rows, s.cols, s.sparsity, seed);
  }
  return MakeFactorizationData(s.rows, s.cols, s.rank, s.sparsity, seed);
}

/// Executes `expr` `reps` times, returning min seconds (warm caches).
inline double TimeExecution(const ExprPtr& expr, const Bindings& inputs,
                            int reps = 3) {
  double best = 1e99;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    auto r = Execute(expr, inputs);
    double sec = t.Seconds();
    if (!r.ok()) {
      std::fprintf(stderr, "execution failed: %s\n",
                   r.status().ToString().c_str());
      return -1;
    }
    if (sec < best) best = sec;
  }
  return best;
}

}  // namespace spores::bench
