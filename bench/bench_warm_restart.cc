// Warm-restart benchmark: cold first-query latency vs restored-from-snapshot
// first-query latency over the persistence tier (PR 6).
//
// Three phases over one persistence directory:
//
//  1. cold    — a fresh pool on an empty directory serves every distinct
//     query once (cold first-query latencies), then once more (the
//     never-restarted warm-hit baseline), then checkpoints and shuts down.
//  2. restart — a new pool (fresh OptimizerContext, same directory)
//     restores the snapshots and serves the same stream's first query per
//     class (restored first-query latencies).
//  3. verify  — per-class comparison of plan costs and cache behavior.
//
// Gates (exit 1 on violation; both run in every mode including --smoke, so
// the sanitizer CI jobs drive the full save → load → serve cycle):
//  * identity — every restored plan's cost must be BIT-IDENTICAL to the
//    cold run's plan cost for the same class: restoring a snapshot must
//    change nothing about optimization results.
//  * warm-hit — at least 95% of previously-seen isomorphism classes must be
//    served from the restored plan cache (cache_hit) without optimizing.
//  * restored first-query latency within 2x of the never-restarted warm-hit
//    latency is REPORT-ONLY: wall-clock gates on shared CI runners train
//    people to ignore red, but the medians are printed and in the JSON.
//
// Flags:
//   --smoke       reduced scales (CI-friendly)
//   --shards N    pool size (default 4)
//   --dir PATH    persistence directory (default: fresh temp dir)
//   --json FILE   write all measurements as JSON
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/session_pool.h"

namespace {

using namespace spores;
using namespace spores::bench;

struct DistinctQuery {
  std::string label;
  ExprPtr expr;
  std::shared_ptr<const Catalog> catalog;
};

// The mixed workload bench_serving uses: every program plus local-delta
// variants, over the program's own catalog.
std::vector<DistinctQuery> BuildDistinct(bool smoke) {
  std::vector<DistinctQuery> out;
  for (const Program& prog : AllPrograms()) {
    ScalePoint scale = ScalesFor(prog.name)[0];
    if (smoke) {
      scale.rows = std::max<int64_t>(scale.rows / 8, 64);
      scale.cols = std::max<int64_t>(scale.cols / 8, 32);
    }
    auto catalog =
        std::make_shared<Catalog>(DataFor(prog.name, scale).catalog);
    out.push_back({prog.name + " base", prog.expr, catalog});
    out.push_back({prog.name + " abs", Expr::Unary("abs", prog.expr), catalog});
    out.push_back(
        {prog.name + " sign", Expr::Unary("sign", prog.expr), catalog});
  }
  return out;
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

uintmax_t DirectoryBytes(const std::string& dir) {
  uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) total += entry.file_size(ec);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t num_shards = 4;
  std::string dir;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed < 1 || parsed > 1024) {
        std::fprintf(stderr, "--shards must be in [1, 1024]\n");
        return 1;
      }
      num_shards = static_cast<size_t>(parsed);
    }
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) dir = argv[++i];
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  FILE* json = nullptr;
  if (json_path) {
    json = std::fopen(json_path, "w");
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
  }
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "spores_warm_restart")
              .string();
  }
  std::filesystem::remove_all(dir);

  const std::vector<DistinctQuery> distinct = BuildDistinct(smoke);

  SessionConfig cfg;  // the paper's fast serving configuration
  cfg.runner.strategy = SaturationStrategy::kSampling;
  cfg.extraction = ExtractionStrategy::kGreedy;

  PoolConfig pool_cfg;
  pool_cfg.num_shards = num_shards;
  pool_cfg.session = cfg;
  pool_cfg.persist.dir = dir;
  pool_cfg.persist.checkpoint_on_shutdown = false;  // explicit below

  std::printf("Warm restart: %zu-shard persistent SessionPool, %zu distinct "
              "queries, dir %s%s\n\n",
              num_shards, distinct.size(), dir.c_str(),
              smoke ? " [smoke]" : "");

  // ---- Phase 1: cold pool — first-query, warm-hit baseline, checkpoint ----
  std::vector<double> cold_costs(distinct.size());
  std::vector<double> cold_latency(distinct.size());
  std::vector<double> warm_latency(distinct.size());
  {
    auto context = std::make_shared<const OptimizerContext>(cfg);
    SessionPool pool(context, pool_cfg);
    for (size_t d = 0; d < distinct.size(); ++d) {
      Timer t;
      auto plan = pool.Submit(distinct[d].expr, distinct[d].catalog).get();
      cold_latency[d] = t.Seconds();
      if (!plan.ok()) {
        std::fprintf(stderr, "FAIL: cold optimize: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      cold_costs[d] = plan.value().plan_cost;
    }
    // Never-restarted warm hits: the same classes served again by the same
    // live pool — the latency floor restore is measured against.
    for (size_t d = 0; d < distinct.size(); ++d) {
      Timer t;
      auto plan = pool.Submit(distinct[d].expr, distinct[d].catalog).get();
      warm_latency[d] = t.Seconds();
      if (!plan.ok() || !plan.value().cache_hit) {
        std::fprintf(stderr, "FAIL: live resubmission of %s was not a warm "
                             "hit — plan-cache regression, not a persistence "
                             "problem\n",
                     distinct[d].label.c_str());
        return 1;
      }
    }
    pool.Drain();
    Status st = pool.Checkpoint();
    if (!st.ok()) {
      std::fprintf(stderr, "FAIL: checkpoint: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const uintmax_t snapshot_bytes = DirectoryBytes(dir);

  // ---- Phase 2: restored pool — first-query latency after restart ----
  std::vector<double> restored_costs(distinct.size());
  std::vector<double> restored_latency(distinct.size());
  std::vector<bool> restored_hit(distinct.size());
  size_t warm_shards = 0, restored_plans = 0, restored_classes = 0;
  double restore_seconds = 0.0;
  {
    auto context = std::make_shared<const OptimizerContext>(cfg);
    Timer restore_timer;
    SessionPool pool(context, pool_cfg);
    restore_seconds = restore_timer.Seconds();
    PoolStats stats = pool.Stats();
    for (const ShardStats& s : stats.shards) {
      if (s.cold_start == ColdStartReason::kWarmRestore) ++warm_shards;
    }
    restored_plans = stats.TotalRestoredPlans();
    restored_classes = stats.TotalRestoredClasses();
    for (size_t d = 0; d < distinct.size(); ++d) {
      Timer t;
      auto plan = pool.Submit(distinct[d].expr, distinct[d].catalog).get();
      restored_latency[d] = t.Seconds();
      if (!plan.ok()) {
        std::fprintf(stderr, "FAIL: restored optimize: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      restored_costs[d] = plan.value().plan_cost;
      restored_hit[d] = plan.value().cache_hit;
    }
    pool.Drain();
  }

  // ---- Phase 3: verify ----
  size_t mismatches = 0, hits = 0;
  std::printf("%-11s %12s %12s %10s %10s  %s\n", "query", "cold-cost",
              "restored", "cold-ms", "rest-ms", "verdict");
  std::printf("%.70s\n", std::string(70, '-').c_str());
  for (size_t d = 0; d < distinct.size(); ++d) {
    bool identical = restored_costs[d] == cold_costs[d];
    if (!identical) ++mismatches;
    if (restored_hit[d]) ++hits;
    std::printf("%-11s %12.5g %12.5g %10.2f %10.2f  %s%s\n",
                distinct[d].label.c_str(), cold_costs[d], restored_costs[d],
                cold_latency[d] * 1e3, restored_latency[d] * 1e3,
                identical ? "identical" : "DIVERGED",
                restored_hit[d] ? ", warm hit" : ", MISS");
  }

  const double hit_rate =
      static_cast<double>(hits) / static_cast<double>(distinct.size());
  const double cold_ms = Median(cold_latency) * 1e3;
  const double warm_ms = Median(warm_latency) * 1e3;
  const double restored_ms = Median(restored_latency) * 1e3;
  std::printf("\n%zu/%zu warm shards, %zu plans + %zu e-classes restored in "
              "%.1fms, %ju snapshot bytes\n",
              warm_shards, num_shards, restored_plans, restored_classes,
              restore_seconds * 1e3, snapshot_bytes);
  std::printf("median first-query: cold %.2fms, restored %.2fms, "
              "never-restarted warm hit %.2fms (restored/warm %.2fx)\n",
              cold_ms, restored_ms, warm_ms,
              warm_ms > 0 ? restored_ms / warm_ms : 0.0);
  std::printf("warm-hit rate after restart: %.1f%% (%zu/%zu), identity "
              "mismatches: %zu\n",
              hit_rate * 100.0, hits, distinct.size(), mismatches);

  if (json) {
    std::fprintf(
        json,
        "{\n  \"bench\": \"warm_restart\",\n  \"smoke\": %s,\n"
        "  \"shards\": %zu,\n  \"distinct_queries\": %zu,\n"
        "  \"warm_shards\": %zu,\n  \"restored_plans\": %zu,\n"
        "  \"restored_classes\": %zu,\n  \"restore_seconds\": %.6f,\n"
        "  \"snapshot_bytes\": %ju,\n"
        "  \"cold_first_query_ms_p50\": %.3f,\n"
        "  \"restored_first_query_ms_p50\": %.3f,\n"
        "  \"warm_hit_ms_p50\": %.3f,\n"
        "  \"restored_over_warm\": %.3f,\n"
        "  \"warm_hit_rate\": %.4f,\n  \"identity_mismatches\": %zu\n}\n",
        smoke ? "true" : "false", num_shards, distinct.size(), warm_shards,
        restored_plans, restored_classes, restore_seconds, snapshot_bytes,
        cold_ms, restored_ms, warm_ms,
        warm_ms > 0 ? restored_ms / warm_ms : 0.0, hit_rate, mismatches);
    std::fclose(json);
  }

  int rc = 0;
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu restored-vs-cold plan-cost mismatches — restore "
                 "must not change optimization results\n",
                 mismatches);
    rc = 1;
  }
  if (hit_rate < 0.95) {
    std::fprintf(stderr,
                 "FAIL: warm-hit rate %.1f%% below the required 95%%\n",
                 hit_rate * 100.0);
    rc = 1;
  }
  if (warm_ms > 0 && restored_ms > 2.0 * warm_ms) {
    std::fprintf(stderr,
                 "WARN: restored first-query %.2fms over 2x the "
                 "never-restarted warm hit %.2fms (report-only)\n",
                 restored_ms, warm_ms);
  }
  return rc;
}
