// End-to-end optimize→execute benchmark: streams a mixed Fig-15-style
// workload (all five evaluation programs plus the intro example) through the
// sharded SessionPool, executes every returned plan with the
// allocation-reusing executor, and HARD-GATES optimized-vs-unoptimized
// result equivalence on every stream entry (fp tolerance; exit 1 on any
// mismatch). Reports per-query end-to-end latency (optimize + execute),
// the optimized-vs-unoptimized execution speedup geomean, and the arena's
// buffer-reuse accounting.
//
// Flags: --smoke (scaled-down inputs, CI), --json FILE (flat JSON row),
//        --shards N, --reps N.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/ir/printer.h"
#include "src/optimizer/optimizer_context.h"
#include "src/runtime/executor.h"
#include "src/serve/execution_feedback.h"
#include "src/serve/session_pool.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

using namespace spores;
using namespace spores::bench;

/// One distinct workload query: a program at one scale, with its generated
/// data kept alive for the whole run.
struct E2eQuery {
  std::string name;
  ExprPtr expr;
  std::shared_ptr<WorkloadData> data;
  std::shared_ptr<const Catalog> catalog;
};

std::vector<E2eQuery> BuildQueries(bool smoke) {
  std::vector<Program> programs = AllPrograms();
  programs.push_back(IntroProgram());
  std::vector<E2eQuery> queries;
  for (const Program& prog : programs) {
    ScalePoint s = ScalesFor(prog.name).front();
    if (smoke) {
      s.rows = std::max<int64_t>(64, s.rows / 8);
      s.cols = std::max<int64_t>(32, s.cols / 8);
    }
    E2eQuery q;
    q.name = prog.name;
    q.expr = prog.expr;
    q.data = std::make_shared<WorkloadData>(DataFor(prog.name, s));
    q.catalog = std::shared_ptr<const Catalog>(q.data, &q.data->catalog);
    queries.push_back(std::move(q));
  }
  return queries;
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

double MaxAbs(const Matrix& m) {
  double mx = 0;
  const std::vector<double>& vals =
      m.is_sparse() ? m.csr_values() : m.values();
  for (double v : vals) mx = std::max(mx, std::fabs(v));
  return mx;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t num_shards = 4;
  int reps = 0;  // 0 = default per mode
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed < 1 || parsed > 1024) {
        std::fprintf(stderr, "--shards must be in [1, 1024], got %s\n",
                     argv[i]);
        return 1;
      }
      num_shards = static_cast<size_t>(parsed);
    }
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed < 1 || parsed > 100) {
        std::fprintf(stderr, "--reps must be in [1, 100], got %s\n", argv[i]);
        return 1;
      }
      reps = static_cast<int>(parsed);
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (reps == 0) reps = smoke ? 2 : 3;

  // Validate the output path before measuring (matching the sibling
  // benches): a bad path must not cost a full run or masquerade as a gate
  // failure.
  FILE* json = nullptr;
  if (json_path) {
    json = std::fopen(json_path, "w");
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
  }

  const std::vector<E2eQuery> queries = BuildQueries(smoke);
  std::printf("End-to-end optimize+execute: %zu programs x %d repeats "
              "through a %zu-shard SessionPool, hw threads %u%s\n\n",
              queries.size(), reps, num_shards,
              std::thread::hardware_concurrency(), smoke ? " [smoke]" : "");

  // One arena for the whole stream: kernel outputs and DAG intermediates
  // recycle across queries (the point of the executor overhaul).
  ExecutorArena arena;
  ExecStats stats;

  // ---- Reference pass: execute every unoptimized expression ----
  // The minimum over `reps` runs is the unoptimized execution time; the
  // (deterministic) result is the equivalence reference.
  std::vector<Matrix> reference;
  std::vector<double> unopt_seconds(queries.size(), 1e99);
  std::vector<double> ref_tolerance(queries.size());
  for (size_t d = 0; d < queries.size(); ++d) {
    for (int r = 0; r < reps; ++r) {
      Timer t;
      auto res = Execute(queries[d].expr, queries[d].data->inputs, &arena,
                         &stats);
      double sec = t.Seconds();
      if (!res.ok()) {
        std::fprintf(stderr, "FAIL: unoptimized %s failed: %s\n",
                     queries[d].name.c_str(),
                     res.status().ToString().c_str());
        return 1;
      }
      unopt_seconds[d] = std::min(unopt_seconds[d], sec);
      if (r + 1 == reps) reference.push_back(std::move(res).value());
    }
    // Optimized plans reassociate fp arithmetic; the gate is relative to
    // the reference's magnitude, not bit-exact.
    ref_tolerance[d] = 1e-8 + 1e-6 * MaxAbs(reference[d]);
  }

  // ---- Streamed optimize→execute through the pool ----
  SessionConfig cfg;  // the paper's fast serving configuration
  cfg.runner.strategy = SaturationStrategy::kSampling;
  cfg.extraction = ExtractionStrategy::kGreedy;

  std::vector<size_t> stream;
  for (int r = 0; r < reps; ++r) {
    for (size_t d = 0; d < queries.size(); ++d) stream.push_back(d);
  }
  Rng rng(2024);
  for (size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.Uniform(i)]);
  }

  std::vector<double> opt_exec_seconds(queries.size(), 1e99);
  std::vector<double> optimize_seconds(queries.size(), 1e99);
  std::vector<double> e2e_latencies;
  std::vector<double> max_diff(queries.size(), 0.0);
  size_t compared = 0, mismatches = 0, cache_hits = 0;
  double stream_seconds = 0;
  {
    auto context = std::make_shared<const OptimizerContext>(cfg);
    PoolConfig pool_cfg;
    pool_cfg.num_shards = num_shards;
    SessionPool pool(context, pool_cfg);
    Timer stream_timer;
    for (size_t d : stream) {
      Timer t;
      // The future must outlive `result`: get() returns a reference into
      // its shared state.
      ServeFuture<OptimizedPlan> future =
          pool.Submit(queries[d].expr, queries[d].catalog);
      const StatusOr<OptimizedPlan>& result = future.get();
      if (!result.ok()) {
        std::fprintf(stderr, "FAIL: optimize %s failed: %s\n",
                     queries[d].name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      double opt_sec = t.Seconds();
      if (result.value().cache_hit) ++cache_hits;

      Timer te;
      auto executed =
          Execute(result.value().plan, queries[d].data->inputs, &arena,
                  &stats);
      double exec_sec = te.Seconds();
      if (!executed.ok()) {
        std::fprintf(stderr, "FAIL: optimized %s failed: %s\n",
                     queries[d].name.c_str(),
                     executed.status().ToString().c_str());
        return 1;
      }

      // The hard gate: every optimized result must match its unoptimized
      // reference within fp tolerance.
      double diff = Matrix::MaxAbsDiff(reference[d], executed.value());
      max_diff[d] = std::max(max_diff[d], diff);
      ++compared;
      if (!(diff <= ref_tolerance[d])) {
        ++mismatches;
        std::fprintf(stderr,
                     "FAIL: %s optimized result diverges: max abs diff "
                     "%.3e > tol %.3e\n",
                     queries[d].name.c_str(), diff, ref_tolerance[d]);
      }

      optimize_seconds[d] = std::min(optimize_seconds[d], opt_sec);
      opt_exec_seconds[d] = std::min(opt_exec_seconds[d], exec_sec);
      e2e_latencies.push_back(opt_sec + exec_sec);
    }
    pool.Drain();
    stream_seconds = stream_timer.Seconds();
  }

  // ---- Two-pass calibrated replay (PR 10 feedback loop) ----
  // Pass 1 (cold): optimize + execute each query once, the execution
  // profile harvested with track_dense_nnz on and fed back through
  // SessionPool::RecordExecution. Pass 2 (calibrated): replay the same
  // queries against the same pool. Hard gates, exit 1 on violation:
  //  (a) a query whose served plan is unchanged must reproduce its pass-1
  //      result BIT-exactly, and a drift-re-extracted plan must still
  //      match the unoptimized reference within fp tolerance;
  //  (b) the whole feedback loop must not run a single extra saturation —
  //      drift re-optimization re-EXTRACTS against the warm e-graph only.
  struct PassResult {
    ExprPtr plan;
    Matrix result;
    std::string plan_text;
    double pred = 0;     ///< model-predicted plan cost (cost units)
    double obs = 0;      ///< summed per-op wall seconds from the profile
    double latency = 0;  ///< optimize + execute, seconds
  };
  size_t replay_failures = 0, replaced_plans = 0;
  double cold_ms = 0, calibrated_ms = 0, track_overhead = 0;
  double dispersion_cold = 0, dispersion_calibrated = 0;
  size_t recalibrations = 0, drift_invalidations = 0, re_extractions = 0;
  size_t saturations_pass1 = 0, saturations_pass2 = 0;
  {
    auto context = std::make_shared<const OptimizerContext>(cfg);
    PoolConfig pool_cfg;
    pool_cfg.num_shards = num_shards;
    pool_cfg.enable_work_stealing = false;  // stolen jobs bypass the cache
    SessionPool pool(context, pool_cfg);
    ExecStats replay_stats;
    replay_stats.track_dense_nnz = true;  // exact nnz for calibration cells

    auto run_pass = [&](bool feed, std::vector<PassResult>* out) {
      out->clear();
      for (const E2eQuery& q : queries) {
        Timer t;
        ServeFuture<OptimizedPlan> future = pool.Submit(q.expr, q.catalog);
        const StatusOr<OptimizedPlan>& result = future.get();
        if (!result.ok()) {
          std::fprintf(stderr, "FAIL: replay optimize %s failed: %s\n",
                       q.name.c_str(), result.status().ToString().c_str());
          ++replay_failures;
          return;
        }
        auto executed = Execute(result.value().plan, q.data->inputs, &arena,
                                &replay_stats);
        double latency = t.Seconds();
        if (!executed.ok()) {
          std::fprintf(stderr, "FAIL: replay execute %s failed: %s\n",
                       q.name.c_str(), executed.status().ToString().c_str());
          ++replay_failures;
          return;
        }
        double obs_seconds = 0;
        for (const OpProfile& p : replay_stats.profile) {
          obs_seconds += p.seconds;
        }
        if (feed) {
          pool.RecordExecution(
              MakeExecutionFeedback(result.value(), replay_stats));
        }
        PassResult r;
        r.plan = result.value().plan;
        r.result = std::move(executed).value();
        r.plan_text = ToString(result.value().plan);
        r.pred = result.value().plan_cost;
        r.obs = obs_seconds;
        r.latency = latency;
        out->push_back(std::move(r));
      }
      pool.Drain();  // also waits for posted feedback to be absorbed
    };

    // Mean |log(obs/pred)| deviation after fitting one global scale: a
    // unit-free measure of how tightly predicted cost tracks observed
    // seconds. Lower = better-calibrated cost model.
    auto dispersion = [](const std::vector<PassResult>& pass) {
      double sum_log = 0;
      size_t n = 0;
      for (const PassResult& r : pass) {
        if (r.pred > 0 && r.obs > 0) {
          sum_log += std::log(r.obs / r.pred);
          ++n;
        }
      }
      if (n == 0) return 0.0;
      const double mean_log = sum_log / static_cast<double>(n);
      double dev = 0;
      for (const PassResult& r : pass) {
        if (r.pred > 0 && r.obs > 0) {
          dev += std::fabs(std::log(r.obs / r.pred) - mean_log);
        }
      }
      return dev / static_cast<double>(n);
    };
    auto total_saturations = [&pool] {
      size_t n = 0;
      for (const ShardStats& s : pool.Stats().shards) {
        n += s.session.saturations;
      }
      return n;
    };

    std::vector<PassResult> pass1, pass2;
    run_pass(/*feed=*/true, &pass1);
    saturations_pass1 = total_saturations();
    run_pass(/*feed=*/false, &pass2);
    saturations_pass2 = total_saturations();

    if (pass1.size() == queries.size() && pass2.size() == queries.size()) {
      for (size_t d = 0; d < queries.size(); ++d) {
        cold_ms += pass1[d].latency * 1e3;
        calibrated_ms += pass2[d].latency * 1e3;
        // Both passes must match the unoptimized reference regardless.
        if (!(Matrix::MaxAbsDiff(reference[d], pass1[d].result) <=
              ref_tolerance[d]) ||
            !(Matrix::MaxAbsDiff(reference[d], pass2[d].result) <=
              ref_tolerance[d])) {
          std::fprintf(stderr, "FAIL: replay %s diverges from reference\n",
                       queries[d].name.c_str());
          ++replay_failures;
        }
        if (pass1[d].plan_text == pass2[d].plan_text) {
          // Same plan, same inputs: replay must be bit-equivalent.
          if (Matrix::MaxAbsDiff(pass1[d].result, pass2[d].result) != 0.0) {
            std::fprintf(stderr,
                         "FAIL: replay %s not bit-equivalent across passes "
                         "despite an unchanged plan\n",
                         queries[d].name.c_str());
            ++replay_failures;
          }
        } else {
          ++replaced_plans;  // drift re-extraction swapped the plan
        }
      }
      dispersion_cold = dispersion(pass1);
      dispersion_calibrated = dispersion(pass2);

      // track_dense_nnz overhead: the served plans re-executed with exact
      // dense-nnz counting off vs on (min over reps, shared arena).
      double off_sec = 0, on_sec = 0;
      for (size_t d = 0; d < queries.size(); ++d) {
        double off = 1e99, on = 1e99;
        for (int r = 0; r < reps; ++r) {
          ExecStats off_stats;
          Timer t1;
          (void)Execute(pass2[d].plan, queries[d].data->inputs, &arena,
                        &off_stats);
          off = std::min(off, t1.Seconds());
          ExecStats on_stats;
          on_stats.track_dense_nnz = true;
          Timer t2;
          (void)Execute(pass2[d].plan, queries[d].data->inputs, &arena,
                        &on_stats);
          on = std::min(on, t2.Seconds());
        }
        off_sec += off;
        on_sec += on;
      }
      track_overhead = off_sec > 0 ? on_sec / off_sec - 1.0 : 0.0;
    }

    PoolStats replay_pool_stats = pool.Stats();
    recalibrations = replay_pool_stats.TotalRecalibrations();
    drift_invalidations = replay_pool_stats.TotalDriftInvalidations();
    re_extractions = replay_pool_stats.TotalReExtractions();
  }
  if (saturations_pass2 != saturations_pass1) {
    std::fprintf(stderr,
                 "FAIL: feedback replay ran %zu extra saturation(s) — drift "
                 "re-optimization must only re-extract\n",
                 saturations_pass2 - saturations_pass1);
    ++replay_failures;
  }

  // ---- Report ----
  std::printf("%-6s %12s %12s %8s %12s %12s\n", "prog", "unopt[ms]",
              "opt[ms]", "speedup", "optimize[ms]", "max|diff|");
  std::printf("%.66s\n", std::string(66, '-').c_str());
  double log_sum = 0;
  for (size_t d = 0; d < queries.size(); ++d) {
    double speedup = unopt_seconds[d] / std::max(opt_exec_seconds[d], 1e-9);
    log_sum += std::log(speedup);
    std::printf("%-6s %12.3f %12.3f %7.2fx %12.3f %12.3e\n",
                queries[d].name.c_str(), unopt_seconds[d] * 1e3,
                opt_exec_seconds[d] * 1e3, speedup,
                optimize_seconds[d] * 1e3, max_diff[d]);
  }
  double exec_speedup_geomean =
      std::exp(log_sum / static_cast<double>(queries.size()));
  double p50 = Percentile(e2e_latencies, 0.50);
  double p95 = Percentile(e2e_latencies, 0.95);
  const BufferPool::Stats& ps = arena.pool_stats();
  std::printf("\nstream: %zu entries in %.3fs; e2e latency p50 %.1fms, "
              "p95 %.1fms; plan-cache hits %zu\n",
              stream.size(), stream_seconds, p50 * 1e3, p95 * 1e3,
              cache_hits);
  std::printf("exec speedup geomean (optimized vs unoptimized plan): "
              "%.2fx\n", exec_speedup_geomean);
  std::printf("executor: %zu ops, %zu CSE hits, %zu eager releases; "
              "buffer pool: %zu reuse hits, %zu fresh allocs, %.1f MB "
              "held\n",
              stats.ops_executed, stats.cse_hits, stats.eager_releases,
              ps.reuse_hits, ps.fresh_allocs,
              static_cast<double>(ps.bytes_held) / (1024.0 * 1024.0));
  std::printf("equivalence: %zu compared, %zu mismatches\n", compared,
              mismatches);
  std::printf(
      "\ncalibrated replay: cold %.1fms -> calibrated %.1fms (%zu queries); "
      "cost dispersion %.3f -> %.3f (mean |log(obs/pred)|)\n",
      cold_ms, calibrated_ms, queries.size(), dispersion_cold,
      dispersion_calibrated);
  std::printf(
      "feedback: %zu recalibrations, %zu drift invalidations, %zu warm "
      "re-extractions (%zu plans replaced); saturations %zu -> %zu across "
      "passes; track_dense_nnz overhead %+.1f%%\n",
      recalibrations, drift_invalidations, re_extractions, replaced_plans,
      saturations_pass1, saturations_pass2, track_overhead * 100.0);

  if (json) {
    std::fprintf(
        json,
        "{\n  \"bench\": \"runtime_e2e\",\n  \"smoke\": %s,\n"
        "  \"shards\": %zu,\n  \"hardware_threads\": %u,\n"
        "  \"distinct_queries\": %zu,\n  \"stream_entries\": %zu,\n"
        "  \"stream_seconds\": %.6f,\n"
        "  \"e2e_p50_ms\": %.3f,\n  \"e2e_p95_ms\": %.3f,\n"
        "  \"exec_speedup_geomean\": %.3f,\n"
        "  \"plan_cache_hits\": %zu,\n"
        "  \"ops_executed\": %zu,\n  \"cse_hits\": %zu,\n"
        "  \"eager_releases\": %zu,\n"
        "  \"buffer_reuse_hits\": %zu,\n  \"buffer_fresh_allocs\": %zu,\n"
        "  \"buffer_bytes_held\": %zu,\n"
        "  \"equivalence_compared\": %zu,\n"
        "  \"equivalence_mismatches\": %zu,\n"
        "  \"replay_cold_ms\": %.3f,\n  \"replay_calibrated_ms\": %.3f,\n"
        "  \"replay_dispersion_cold\": %.4f,\n"
        "  \"replay_dispersion_calibrated\": %.4f,\n"
        "  \"replay_recalibrations\": %zu,\n"
        "  \"replay_drift_invalidations\": %zu,\n"
        "  \"replay_re_extractions\": %zu,\n"
        "  \"replay_replaced_plans\": %zu,\n"
        "  \"replay_saturations_pass1\": %zu,\n"
        "  \"replay_saturations_pass2\": %zu,\n"
        "  \"track_dense_nnz_overhead\": %.4f,\n"
        "  \"replay_failures\": %zu\n}\n",
        smoke ? "true" : "false", num_shards,
        std::thread::hardware_concurrency(), queries.size(), stream.size(),
        stream_seconds, p50 * 1e3, p95 * 1e3, exec_speedup_geomean,
        cache_hits, stats.ops_executed, stats.cse_hits, stats.eager_releases,
        ps.reuse_hits, ps.fresh_allocs, ps.bytes_held, compared, mismatches,
        cold_ms, calibrated_ms, dispersion_cold, dispersion_calibrated,
        recalibrations, drift_invalidations, re_extractions, replaced_plans,
        saturations_pass1, saturations_pass2, track_overhead,
        replay_failures);
    std::fclose(json);
  }

  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %zu equivalence mismatches\n", mismatches);
    return 1;
  }
  if (replay_failures > 0) {
    std::fprintf(stderr, "FAIL: %zu calibrated-replay gate failures\n",
                 replay_failures);
    return 1;
  }
  std::printf("\nPASS: every optimized plan matched its unoptimized "
              "reference; calibrated replay bit-stable, zero extra "
              "saturations.\n");
  return 0;
}
