#include <gtest/gtest.h>
#include "src/ir/parser.h"
#include "src/ir/printer.h"

TEST(Smoke, ParsePrint) {
  auto e = spores::ParseExpr("sum((X - U %*% t(V))^2)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(spores::ToString(e.value()), "sum((X - U %*% t(V)) ^ 2)");
}
