// Randomized end-to-end soundness testing: generate random well-shaped LA
// expressions, push them through every optimizer configuration, and check
// the optimized plans compute the same matrices as the originals. This is
// the strongest check of the whole stack (translation, rules, analyses,
// extraction, lowering, fusion, kernels) at once.
#include <gtest/gtest.h>

#include <cmath>

#include "src/ir/printer.h"
#include "src/optimizer/heuristic_optimizer.h"
#include "src/optimizer/optimizer_session.h"
#include "src/runtime/executor.h"

namespace spores {
namespace {

// Generates random expressions over a fixed catalog. Shapes are valid by
// construction: every generated node is given a target shape and the
// generator picks an operator that can produce it.
class ExprGenerator {
 public:
  ExprGenerator(uint64_t seed, const Catalog& catalog)
      : rng_(seed), catalog_(catalog) {}

  ExprPtr Generate(Shape target, int depth) {
    if (depth <= 0) return Leaf(target);
    switch (rng_.Uniform(10)) {
      case 0: {  // elementwise binary (same shape or broadcast)
        ExprPtr a = Generate(target, depth - 1);
        ExprPtr b = rng_.Bernoulli(0.3) ? Generate(BroadcastOperand(target),
                                                   depth - 1)
                                        : Generate(target, depth - 1);
        switch (rng_.Uniform(3)) {
          case 0: return Expr::Mul(a, b);
          case 1: return Expr::Plus(a, b);
          default: return Expr::Minus(a, b);
        }
      }
      case 1: {  // matmul with a random inner dimension
        int64_t inner = PickDim();
        ExprPtr a = Generate(Shape{target.rows, inner}, depth - 1);
        ExprPtr b = Generate(Shape{inner, target.cols}, depth - 1);
        return Expr::MatMul(a, b);
      }
      case 2:  // transpose
        return Expr::Transpose(Generate(Shape{target.cols, target.rows},
                                        depth - 1));
      case 3: {  // aggregations producing the target
        if (target.IsScalar()) {
          return Expr::Sum(Generate(RandomShape(), depth - 1));
        }
        if (target.cols == 1) {
          return Expr::RowSums(Generate(Shape{target.rows, PickDim()},
                                        depth - 1));
        }
        if (target.rows == 1) {
          return Expr::ColSums(Generate(Shape{PickDim(), target.cols},
                                        depth - 1));
        }
        return Expr::Mul(Generate(target, depth - 1),
                         Generate(target, depth - 1));
      }
      case 4:  // square
        return Expr::Pow(Generate(target, depth - 1), 2.0);
      case 5:  // scalar coefficient
        return Expr::Mul(Expr::Const(Coefficient()),
                         Generate(target, depth - 1));
      case 6:  // negation
        return Expr::Neg(Generate(target, depth - 1));
      case 7: {  // zero-preserving unary (keeps values bounded)
        const char* fns[] = {"abs", "sign"};
        return Expr::Unary(fns[rng_.Uniform(2)], Generate(target, depth - 1));
      }
      default:
        return Leaf(target);
    }
  }

  Shape RandomShape() {
    switch (rng_.Uniform(4)) {
      case 0: return Shape{kM, kN};
      case 1: return Shape{kM, 1};
      case 2: return Shape{1, kN};
      default: return Shape{1, 1};
    }
  }

 private:
  static constexpr int64_t kM = 24;
  static constexpr int64_t kN = 18;
  static constexpr int64_t kK = 7;

  int64_t PickDim() {
    const int64_t dims[] = {kM, kN, kK, 1};
    return dims[rng_.Uniform(4)];
  }

  double Coefficient() {
    const double coeffs[] = {2.0, -1.0, 0.5, 3.0};
    return coeffs[rng_.Uniform(4)];
  }

  Shape BroadcastOperand(Shape target) {
    switch (rng_.Uniform(3)) {
      case 0: return Shape{target.rows, 1};
      case 1: return Shape{1, target.cols};
      default: return Shape{1, 1};
    }
  }

  // Leaf of exactly the requested shape (named input or a literal).
  ExprPtr Leaf(Shape shape) {
    if (shape.rows == kM && shape.cols == kN) {
      return Expr::Var(rng_.Bernoulli(0.5) ? "Mxn_sparse" : "Mxn_dense");
    }
    if (shape.rows == kM && shape.cols == kK) return Expr::Var("Mxk");
    if (shape.rows == kK && shape.cols == kN) return Expr::Var("Kxn");
    if (shape.rows == kN && shape.cols == kM) {
      return Expr::Transpose(Expr::Var("Mxn_dense"));
    }
    if (shape.rows == kM && shape.cols == 1) return Expr::Var("m_vec");
    if (shape.rows == 1 && shape.cols == kN) return Expr::Var("n_row");
    if (shape.rows == kN && shape.cols == 1) return Expr::Var("n_vec");
    if (shape.rows == 1 && shape.cols == kM) {
      return Expr::Transpose(Expr::Var("m_vec"));
    }
    if (shape.rows == kK && shape.cols == 1) return Expr::Var("k_vec");
    if (shape.rows == 1 && shape.cols == kK) {
      return Expr::Transpose(Expr::Var("k_vec"));
    }
    if (shape.IsScalar()) return Expr::Const(Coefficient());
    if (shape.rows == kN && shape.cols == kK) {
      return Expr::Transpose(Expr::Var("Kxn"));
    }
    if (shape.rows == kK && shape.cols == kM) {
      return Expr::Transpose(Expr::Var("Mxk"));
    }
    if (shape.rows == kN && shape.cols == kN) {
      return Expr::MatMul(Expr::Transpose(Expr::Var("Kxn")),
                          Expr::Var("Kxn"));
    }
    if (shape.rows == kM && shape.cols == kM) {
      return Expr::MatMul(Expr::Var("Mxk"),
                          Expr::Transpose(Expr::Var("Mxk")));
    }
    if (shape.rows == kK && shape.cols == kK) {
      return Expr::MatMul(Expr::Transpose(Expr::Var("Mxk")),
                          Expr::Var("Mxk"));
    }
    // Fallback: a ones-free constant broadcast cannot produce arbitrary
    // shapes, so synthesize via outer product of available vectors.
    return Expr::MatMul(Expr::Var("m_vec"),
                        Expr::Transpose(Expr::Var("n_vec")));
  }

  Rng rng_;
  const Catalog& catalog_;
};

Bindings FuzzBindings(uint64_t seed) {
  Rng rng(seed);
  Bindings b;
  b.Bind("Mxn_sparse", Matrix::RandomSparse(24, 18, 0.2, rng, -1, 1));
  b.Bind("Mxn_dense", Matrix::RandomDense(24, 18, rng, -1, 1));
  b.Bind("Mxk", Matrix::RandomDense(24, 7, rng, -1, 1));
  b.Bind("Kxn", Matrix::RandomDense(7, 18, rng, -1, 1));
  b.Bind("m_vec", Matrix::RandomDense(24, 1, rng, -1, 1));
  b.Bind("n_vec", Matrix::RandomDense(18, 1, rng, -1, 1));
  b.Bind("n_row", Matrix::RandomDense(1, 18, rng, -1, 1));
  b.Bind("k_vec", Matrix::RandomDense(7, 1, rng, -1, 1));
  return b;
}

class OptimizerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerFuzz, AllOptimizersPreserveSemantics) {
  uint64_t seed = static_cast<uint64_t>(GetParam()) * 7919 + 13;
  Bindings inputs = FuzzBindings(seed);
  Catalog catalog = inputs.ToCatalog();
  ExprGenerator gen(seed, catalog);
  ExprPtr expr = gen.Generate(gen.RandomShape(), 4);

  auto expected = Execute(expr, inputs);
  ASSERT_TRUE(expected.ok()) << ToString(expr);
  // Values can grow through products; scale the tolerance.
  double scale = 1.0;
  Matrix expected_dense = expected.value().ToDense();
  for (double v : expected_dense.values()) {
    scale = std::max(scale, std::abs(v));
  }

  struct Candidate {
    const char* name;
    ExprPtr plan;
  };
  SessionConfig greedy_cfg;
  greedy_cfg.extraction = ExtractionStrategy::kGreedy;
  // Keep per-case saturation cheap: these are 100 cases.
  greedy_cfg.runner.max_iterations = 12;
  SessionConfig ilp_cfg;
  ilp_cfg.runner.max_iterations = 12;
  ilp_cfg.ilp.timeout_seconds = 0.5;
  HeuristicOptimizer heuristic(OptLevel::kOpt2);
  OptimizerSession spores_greedy(greedy_cfg);
  OptimizerSession spores_ilp(ilp_cfg);

  std::vector<Candidate> candidates = {
      {"heuristic", heuristic.Optimize(expr, catalog)},
      {"spores-greedy", spores_greedy.Optimize(expr, catalog).plan},
      {"spores-ilp", spores_ilp.Optimize(expr, catalog).plan},
  };
  for (const Candidate& c : candidates) {
    auto actual = Execute(c.plan, inputs);
    ASSERT_TRUE(actual.ok())
        << c.name << "\n  in:  " << ToString(expr)
        << "\n  out: " << ToString(c.plan)
        << "\n  err: " << actual.status().ToString();
    EXPECT_LT(Matrix::MaxAbsDiff(expected.value(), actual.value()),
              1e-7 * scale)
        << c.name << "\n  in:  " << ToString(expr)
        << "\n  out: " << ToString(c.plan);
  }

  // The fuzz sequences double as invariant fodder for the arena-backed
  // e-graph: after each full pipeline, the session's shared graph must keep
  // hashcons, union-find, and parent indexes mutually consistent.
  for (OptimizerSession* session : {&spores_greedy, &spores_ilp}) {
    if (const EGraph* g = session->shared_egraph()) {
      std::string err = g->CheckInvariants();
      EXPECT_TRUE(err.empty()) << "seed " << seed << ": " << err;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFuzz, ::testing::Range(0, 100));

}  // namespace
}  // namespace spores
