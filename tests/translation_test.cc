// Tests of the R_LR translation (Fig 2): LA -> RA schemas and structure, and
// the RA -> LA lowering compiler. The strongest check is semantic: lowering
// the translation of e must evaluate to the same matrices as e itself.
#include <gtest/gtest.h>

#include "src/canon/canonical.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/rules/rules_lr.h"
#include "src/runtime/executor.h"
#include "src/workloads/generators.h"

namespace spores {
namespace {

Catalog TestCatalog() {
  Catalog c;
  c.Register("X", 20, 15, 0.3);
  c.Register("Y", 20, 15);
  c.Register("A", 20, 8);
  c.Register("B", 8, 15);
  c.Register("u", 20, 1);
  c.Register("v", 15, 1);
  c.Register("r", 1, 15);
  c.Register("s", 1, 1);
  c.Register("U", 20, 4);
  c.Register("V", 15, 4);
  return c;
}

Bindings TestBindings() {
  Rng rng(99);
  Bindings b;
  b.Bind("X", Matrix::RandomSparse(20, 15, 0.3, rng, -1, 1));
  b.Bind("Y", Matrix::RandomDense(20, 15, rng, -1, 1));
  b.Bind("A", Matrix::RandomDense(20, 8, rng, -1, 1));
  b.Bind("B", Matrix::RandomDense(8, 15, rng, -1, 1));
  b.Bind("u", Matrix::RandomDense(20, 1, rng, -1, 1));
  b.Bind("v", Matrix::RandomDense(15, 1, rng, -1, 1));
  b.Bind("r", Matrix::RandomDense(1, 15, rng, -1, 1));
  b.Bind("s", Matrix::Scalar(2.5));
  b.Bind("U", Matrix::RandomDense(20, 4, rng, -1, 1));
  b.Bind("V", Matrix::RandomDense(15, 4, rng, -1, 1));
  return b;
}

// Translate to RA, lower back to LA, and compare numerics with the original.
void ExpectRoundTrip(const std::string& text) {
  Catalog catalog = TestCatalog();
  auto parsed = ParseExpr(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExprPtr la = parsed.value();

  auto program = TranslateLaToRa(la, catalog);
  ASSERT_TRUE(program.ok()) << text << ": " << program.status().ToString();
  auto lowered = TranslateRaToLa(program.value().ra, program.value(), catalog);
  ASSERT_TRUE(lowered.ok()) << text << ": " << lowered.status().ToString()
                            << "\nRA: " << ToString(program.value().ra);

  Bindings inputs = TestBindings();
  auto expected = Execute(la, inputs);
  auto actual = Execute(lowered.value(), inputs);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_TRUE(actual.ok()) << text << " lowered to "
                           << ToString(lowered.value()) << ": "
                           << actual.status().ToString();
  EXPECT_LT(Matrix::MaxAbsDiff(expected.value(), actual.value()), 1e-9)
      << text << " lowered to " << ToString(lowered.value());
}

class TranslationRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(TranslationRoundTrip, SemanticsPreserved) {
  ExpectRoundTrip(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, TranslationRoundTrip,
    ::testing::Values(
        // Leaves and elementwise ops.
        "X", "u", "r", "s",
        "X * Y", "X + Y", "X - Y", "-X",
        "X * s", "s * X + Y",
        // Broadcasts.
        "X * u", "X + u", "X * r", "X - r",
        // Matrix multiplication in all orientation combinations.
        "A %*% B", "t(B) %*% t(A)", "A %*% B %*% v",
        "t(u) %*% X", "X %*% v", "t(u) %*% X %*% v",
        "u %*% r",          // outer product
        "t(v) %*% v",       // dot product
        // Aggregations.
        "sum(X)", "rowSums(X)", "colSums(X)", "sum(rowSums(X))",
        "sum(X * Y)", "rowSums(X * Y)", "colSums(A %*% B)",
        "sum(A %*% B)",
        // Transposes.
        "t(X)", "t(t(X))", "t(X * Y)", "t(A %*% B)",
        // Powers and squares.
        "X ^ 2", "sum(X ^ 2)", "sum((X - Y) ^ 2)",
        // Unary barriers.
        "exp(X)", "sum(exp(X) * Y)", "sigmoid(X) * Y", "abs(X)",
        // Division barrier.
        "X / Y", "X / s",
        // Fused-op expansion round trips.
        "sprop(u)", "wsloss(X, U, V)",
        // Compound expressions from the paper.
        "sum((X - U %*% t(V)) ^ 2)",
        "(U %*% t(V) - X) %*% V",
        "t(X) %*% (u - X %*% v)",
        "sum(A %*% B) - sum(X * (A %*% B))",
        // Gram/covariance patterns: both output axes share one origin.
        "X %*% t(X)", "t(X) %*% X"));

TEST(Translation, OutputAttrsMatchShape) {
  Catalog catalog = TestCatalog();
  auto program = TranslateLaToRa(ParseExpr("A %*% B").value(), catalog);
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program.value().out_row.empty());
  EXPECT_FALSE(program.value().out_col.empty());
  EXPECT_EQ(program.value().out_shape, (Shape{20, 15}));
  EXPECT_EQ(program.value().dims->DimOf(program.value().out_row), 20);
  EXPECT_EQ(program.value().dims->DimOf(program.value().out_col), 15);
}

TEST(Translation, GramQueryOutputAttrsStayDistinct) {
  // X %*% t(X): both output axes originate at X's row axis, but they are
  // independent indices — the deterministic axis-anchor naming must still
  // give them distinct attributes (regression: identical anchors once
  // collapsed them into one symbol).
  Catalog catalog = TestCatalog();
  auto program = TranslateLaToRa(ParseExpr("X %*% t(X)").value(), catalog);
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program.value().out_row.empty());
  EXPECT_FALSE(program.value().out_col.empty());
  EXPECT_NE(program.value().out_row, program.value().out_col);
  EXPECT_EQ(program.value().dims->DimOf(program.value().out_row),
            program.value().dims->DimOf(program.value().out_col));
}

TEST(Translation, ScalarOutputHasNoAttrs) {
  Catalog catalog = TestCatalog();
  auto program = TranslateLaToRa(ParseExpr("sum(X)").value(), catalog);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program.value().out_row.empty());
  EXPECT_TRUE(program.value().out_col.empty());
  EXPECT_EQ(program.value().ra->op, Op::kAgg);
}

TEST(Translation, MatMulBecomesAggOverJoin) {
  Catalog catalog = TestCatalog();
  auto program = TranslateLaToRa(ParseExpr("A %*% B").value(), catalog);
  ASSERT_TRUE(program.ok());
  const ExprPtr& ra = program.value().ra;
  ASSERT_EQ(ra->op, Op::kAgg);
  EXPECT_EQ(ra->attrs.size(), 1u);  // the contracted dimension
  EXPECT_EQ(ra->children[0]->op, Op::kJoin);
}

TEST(Translation, ElemMulBecomesJoin) {
  Catalog catalog = TestCatalog();
  auto program = TranslateLaToRa(ParseExpr("X * Y").value(), catalog);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().ra->op, Op::kJoin);
}

TEST(Translation, MinusBecomesUnionWithNegativeCoefficient) {
  // Fig 2 rule 6: A - B -> A + (-1)*B.
  Catalog catalog = TestCatalog();
  auto program = TranslateLaToRa(ParseExpr("X - Y").value(), catalog);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().ra->op, Op::kUnion);
}

TEST(Translation, SquareBecomesSelfJoin) {
  Catalog catalog = TestCatalog();
  auto program = TranslateLaToRa(ParseExpr("X ^ 2").value(), catalog);
  ASSERT_TRUE(program.ok());
  const ExprPtr& ra = program.value().ra;
  ASSERT_EQ(ra->op, Op::kJoin);
  EXPECT_TRUE(ExprEquals(ra->children[0], ra->children[1]));
}

TEST(Translation, SharedSubexpressionsShareRaTerms) {
  // The CSE story: structurally equal subexpressions translated against the
  // same target attributes produce the *identical* RA term (memoized on
  // structure + targets), so the e-graph sees them as one class.
  Catalog catalog = TestCatalog();
  ExprPtr ab = Expr::MatMul(Expr::Var("A"), Expr::Var("B"));
  ExprPtr e = Expr::Plus(Expr::Sum(ab), Expr::Sum(ab));
  auto program = TranslateLaToRa(e, catalog);
  ASSERT_TRUE(program.ok());
  const ExprPtr& ra = program.value().ra;
  ASSERT_EQ(ra->op, Op::kUnion);
  EXPECT_TRUE(ExprEquals(ra->children[0], ra->children[1]));
}

TEST(Translation, FixedOutputAttrsAreHonored) {
  Catalog catalog = TestCatalog();
  auto dims = std::make_shared<DimEnv>();
  Symbol i = Symbol::Intern("row_attr");
  Symbol j = Symbol::Intern("col_attr");
  auto program =
      TranslateLaToRa(ParseExpr("X * Y").value(), catalog, dims, i, j);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().out_row, i);
  EXPECT_EQ(program.value().out_col, j);
  EXPECT_EQ(FreeAttrs(program.value().ra), (std::vector<Symbol>{
                std::min(i, j), std::max(i, j)}));
}

TEST(Lowering, RejectsWideOutput) {
  // A 3-attribute join with no aggregate cannot lower to LA.
  Catalog catalog = TestCatalog();
  auto dims = std::make_shared<DimEnv>();
  Symbol i = Symbol::Intern("li"), j = Symbol::Intern("lj"),
         k = Symbol::Intern("lk");
  dims->Set(i, 4);
  dims->Set(j, 5);
  dims->Set(k, 6);
  ExprPtr wide = Expr::Join({Expr::Bind({i, j}, Expr::Var("X")),
                             Expr::Bind({j, k}, Expr::Var("Y"))});
  RaProgram program;
  program.ra = wide;
  program.dims = dims;
  program.out_shape = Shape{4, 6};
  program.out_row = i;
  program.out_col = k;
  auto lowered = TranslateRaToLa(wide, program, catalog);
  EXPECT_FALSE(lowered.ok());
}

}  // namespace
}  // namespace spores
