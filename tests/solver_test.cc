// Tests of the 0-1 ILP model and the branch-and-bound solver (the Gurobi
// substitute): feasibility, optimality, propagation, forbid cuts, warm
// starts, and budget behavior.
#include <gtest/gtest.h>

#include "src/solver/bb_solver.h"

namespace spores {
namespace {

TEST(Solver, EmptyModelIsTriviallyFeasible) {
  IlpModel m;
  IlpResult r = SolveIlp(m);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(Solver, FixedVariableCostCounts) {
  IlpModel m;
  VarId x = m.AddVar(5.0, "x");
  m.Fix(x, true);
  IlpResult r = SolveIlp(m);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 5.0);
  EXPECT_TRUE(r.assignment[static_cast<size_t>(x)]);
}

TEST(Solver, UnforcedVariablesDefaultToZero) {
  IlpModel m;
  VarId x = m.AddVar(5.0, "x");
  IlpResult r = SolveIlp(m);
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(r.assignment[static_cast<size_t>(x)]);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(Solver, CoverPicksCheapestOption) {
  IlpModel m;
  VarId trigger = m.AddVar(0.0, "t");
  VarId cheap = m.AddVar(1.0, "cheap");
  VarId pricey = m.AddVar(10.0, "pricey");
  m.Fix(trigger, true);
  m.AddCover(trigger, {pricey, cheap});
  IlpResult r = SolveIlp(m);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 1.0);
  EXPECT_TRUE(r.assignment[static_cast<size_t>(cheap)]);
  EXPECT_FALSE(r.assignment[static_cast<size_t>(pricey)]);
  EXPECT_TRUE(r.proven_optimal);
}

TEST(Solver, ImplicationChainsPropagate) {
  IlpModel m;
  VarId a = m.AddVar(1.0, "a");
  VarId b = m.AddVar(2.0, "b");
  VarId c = m.AddVar(3.0, "c");
  m.AddImplication(a, b);
  m.AddImplication(b, c);
  m.Fix(a, true);
  IlpResult r = SolveIlp(m);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 6.0);
}

TEST(Solver, SharedChildChargedOnce) {
  // Two selected parents implying one shared child: child cost counts once
  // (the Fig 10 DAG-cost semantics).
  IlpModel m;
  VarId p1 = m.AddVar(1.0, "p1");
  VarId p2 = m.AddVar(1.0, "p2");
  VarId shared = m.AddVar(4.0, "shared");
  m.AddImplication(p1, shared);
  m.AddImplication(p2, shared);
  m.Fix(p1, true);
  m.Fix(p2, true);
  IlpResult r = SolveIlp(m);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 6.0);
}

TEST(Solver, InfeasibleWhenCoverHasNoOptions) {
  IlpModel m;
  VarId t = m.AddVar(0.0, "t");
  VarId only = m.AddVar(1.0, "only");
  m.Fix(t, true);
  m.Fix(only, false);
  m.AddCover(t, {only});
  IlpResult r = SolveIlp(m);
  EXPECT_FALSE(r.feasible);
}

TEST(Solver, ForbidConstraintExcludesCombination) {
  IlpModel m;
  VarId t = m.AddVar(0.0, "t");
  VarId a = m.AddVar(1.0, "a");
  VarId b = m.AddVar(2.0, "b");
  m.Fix(t, true);
  m.AddCover(t, {a, b});
  // a alone would be optimal; forbid {t, a} forces b.
  m.AddForbid({t, a});
  IlpResult r = SolveIlp(m);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 2.0);
  EXPECT_TRUE(r.assignment[static_cast<size_t>(b)]);
}

TEST(Solver, DiamondDagOptimal) {
  // root -> cover {expensive_direct, via}; via -> mid -> leaf.
  // direct = 10; via-path = 2 + 3 + 1 = 6. Optimal picks the path.
  IlpModel m;
  VarId root = m.AddVar(0.0, "root");
  VarId direct = m.AddVar(10.0, "direct");
  VarId via = m.AddVar(2.0, "via");
  VarId mid = m.AddVar(3.0, "mid");
  VarId leaf = m.AddVar(1.0, "leaf");
  m.Fix(root, true);
  m.AddCover(root, {direct, via});
  m.AddImplication(via, mid);
  m.AddImplication(mid, leaf);
  IlpResult r = SolveIlp(m);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 6.0);
  EXPECT_TRUE(r.proven_optimal);
}

TEST(Solver, NestedCoversSolveExactly) {
  // Class tree: each selected class triggers a cover among two options,
  // one cheap with a deep dependency, one expensive and flat.
  IlpModel m;
  std::vector<VarId> classes, cheap, pricey;
  for (int i = 0; i < 6; ++i) {
    classes.push_back(m.AddVar(0.0, "c" + std::to_string(i)));
    cheap.push_back(m.AddVar(1.0, "cheap" + std::to_string(i)));
    pricey.push_back(m.AddVar(3.0, "pricey" + std::to_string(i)));
  }
  m.Fix(classes[0], true);
  for (int i = 0; i < 6; ++i) {
    m.AddCover(classes[i], {cheap[i], pricey[i]});
    if (i + 1 < 6) {
      m.AddImplication(cheap[static_cast<size_t>(i)], classes[i + 1]);
    }
  }
  // cheap chain: 6 * 1 = 6; any pricey cut: i*1 + 3. Best: pricey at 0 = 3.
  IlpResult r = SolveIlp(m);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 3.0);
}

TEST(Solver, WarmStartBoundStillFindsOptimum) {
  IlpModel m;
  VarId t = m.AddVar(0.0, "t");
  VarId a = m.AddVar(2.0, "a");
  VarId b = m.AddVar(5.0, "b");
  m.Fix(t, true);
  m.AddCover(t, {a, b});
  SolverConfig cfg;
  cfg.has_initial_upper_bound = true;
  cfg.initial_upper_bound = 5.0;  // the bad plan's cost
  IlpResult r = SolveIlp(m, cfg);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 2.0);
}

TEST(Solver, SearchNodeBudgetReportsNonOptimal) {
  // A model with a wide search space and a one-node budget: if anything is
  // found it must not be marked proven optimal.
  IlpModel m;
  VarId t = m.AddVar(0.0, "t");
  std::vector<VarId> opts;
  for (int i = 0; i < 20; ++i) {
    opts.push_back(m.AddVar(1.0 + i, "o" + std::to_string(i)));
  }
  m.Fix(t, true);
  m.AddCover(t, opts);
  SolverConfig cfg;
  cfg.max_search_nodes = 1;
  IlpResult r = SolveIlp(m, cfg);
  EXPECT_FALSE(r.proven_optimal);
}

TEST(Solver, ZeroPropagationThroughReverseImplication) {
  // x -> y with y fixed 0 forces x = 0; cover must pick the alternative.
  IlpModel m;
  VarId t = m.AddVar(0.0, "t");
  VarId x = m.AddVar(1.0, "x");
  VarId y = m.AddVar(0.5, "y");
  VarId alt = m.AddVar(7.0, "alt");
  m.Fix(t, true);
  m.AddImplication(x, y);
  m.Fix(y, false);
  m.AddCover(t, {x, alt});
  IlpResult r = SolveIlp(m);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 7.0);
}

}  // namespace
}  // namespace spores
