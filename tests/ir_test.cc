// Unit tests for the LA/RA expression IR: builders, structural
// equality/hashing, shape inference, the parser, and the printer.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/ir/expr.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"

namespace spores {
namespace {

Catalog TestCatalog() {
  Catalog c;
  c.Register("X", 100, 50, 0.1);
  c.Register("Y", 100, 50, 1.0);
  c.Register("A", 100, 30);
  c.Register("B", 30, 50);
  c.Register("u", 100, 1);
  c.Register("v", 50, 1);
  c.Register("r", 1, 50);
  c.Register("s", 1, 1);
  return c;
}

Shape MustShape(const ExprPtr& e) {
  auto s = InferShape(e, TestCatalog());
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return s.ok() ? s.value() : Shape{};
}

TEST(Expr, StructuralEqualityAndHash) {
  ExprPtr a = Expr::Plus(Expr::Var("X"), Expr::Var("Y"));
  ExprPtr b = Expr::Plus(Expr::Var("X"), Expr::Var("Y"));
  ExprPtr c = Expr::Plus(Expr::Var("Y"), Expr::Var("X"));
  EXPECT_TRUE(ExprEquals(a, b));
  EXPECT_EQ(a->Hash(), b->Hash());
  EXPECT_FALSE(ExprEquals(a, c));
}

TEST(Expr, ConstsCompareByValue) {
  EXPECT_TRUE(ExprEquals(Expr::Const(2.5), Expr::Const(2.5)));
  EXPECT_FALSE(ExprEquals(Expr::Const(2.5), Expr::Const(2.0)));
}

TEST(Expr, AggSortsAndDedupsAttrs) {
  Symbol i = Symbol::Intern("i"), j = Symbol::Intern("j");
  ExprPtr e = Expr::Agg({j, i, j}, Expr::Var("X"));
  ASSERT_EQ(e->op, Op::kAgg);
  // Sorted by Symbol's id order (which is NOT intern order — ids embed the
  // intern shard) and deduped; the canonical order only has to be
  // deterministic in-process, not alphabetical.
  std::vector<Symbol> want{i, j};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(e->attrs, want);
}

TEST(Expr, AggWithNoAttrsIsIdentity) {
  ExprPtr x = Expr::Var("X");
  EXPECT_EQ(Expr::Agg({}, x), x);
}

TEST(Expr, JoinIsOrderInsensitive) {
  ExprPtr a = Expr::Join({Expr::Var("X"), Expr::Var("Y")});
  ExprPtr b = Expr::Join({Expr::Var("Y"), Expr::Var("X")});
  EXPECT_TRUE(ExprEquals(a, b));
}

TEST(Expr, SingletonJoinCollapses) {
  ExprPtr x = Expr::Var("X");
  EXPECT_EQ(Expr::Join({x}), x);
  EXPECT_EQ(Expr::Union({x}), x);
}

TEST(Expr, TreeSizeCountsNodes) {
  ExprPtr e = Expr::Sum(Expr::Mul(Expr::Var("X"), Expr::Var("Y")));
  EXPECT_EQ(e->TreeSize(), 4u);
}

// ---- Shape inference ----

TEST(Shape, MatMul) {
  Shape s = MustShape(Expr::MatMul(Expr::Var("A"), Expr::Var("B")));
  EXPECT_EQ(s, (Shape{100, 50}));
}

TEST(Shape, MatMulMismatchFails) {
  auto s = InferShape(Expr::MatMul(Expr::Var("A"), Expr::Var("X")),
                      TestCatalog());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(Shape, TransposeSwaps) {
  EXPECT_EQ(MustShape(Expr::Transpose(Expr::Var("A"))), (Shape{30, 100}));
}

TEST(Shape, Aggregations) {
  EXPECT_EQ(MustShape(Expr::RowSums(Expr::Var("X"))), (Shape{100, 1}));
  EXPECT_EQ(MustShape(Expr::ColSums(Expr::Var("X"))), (Shape{1, 50}));
  EXPECT_EQ(MustShape(Expr::Sum(Expr::Var("X"))), (Shape{1, 1}));
}

TEST(Shape, ElementwiseExact) {
  EXPECT_EQ(MustShape(Expr::Plus(Expr::Var("X"), Expr::Var("Y"))),
            (Shape{100, 50}));
}

TEST(Shape, BroadcastColVector) {
  EXPECT_EQ(MustShape(Expr::Mul(Expr::Var("X"), Expr::Var("u"))),
            (Shape{100, 50}));
}

TEST(Shape, BroadcastRowVector) {
  EXPECT_EQ(MustShape(Expr::Mul(Expr::Var("X"), Expr::Var("r"))),
            (Shape{100, 50}));
}

TEST(Shape, BroadcastScalar) {
  EXPECT_EQ(MustShape(Expr::Plus(Expr::Var("s"), Expr::Var("X"))),
            (Shape{100, 50}));
}

TEST(Shape, OuterBroadcast) {
  // (100x1) * (1x50) elementwise-broadcasts to 100x50.
  EXPECT_EQ(MustShape(Expr::Mul(Expr::Var("u"), Expr::Var("r"))),
            (Shape{100, 50}));
}

TEST(Shape, IncompatibleElementwiseFails) {
  auto s =
      InferShape(Expr::Plus(Expr::Var("A"), Expr::Var("X")), TestCatalog());
  EXPECT_FALSE(s.ok());
}

TEST(Shape, UnknownVarFails) {
  auto s = InferShape(Expr::Var("NOPE"), TestCatalog());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotFound);
}

TEST(Shape, WsLoss) {
  Catalog c;
  c.Register("X", 100, 50, 0.1);
  c.Register("U", 100, 4);
  c.Register("V", 50, 4);
  auto s = InferShape(
      Expr::WsLoss(Expr::Var("X"), Expr::Var("U"), Expr::Var("V")), c);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.value().IsScalar());
}

TEST(Shape, WsLossMismatch) {
  Catalog c;
  c.Register("X", 100, 50, 0.1);
  c.Register("U", 100, 4);
  c.Register("V", 50, 5);  // rank mismatch
  auto s = InferShape(
      Expr::WsLoss(Expr::Var("X"), Expr::Var("U"), Expr::Var("V")), c);
  EXPECT_FALSE(s.ok());
}

// ---- Parser ----

struct RoundTrip {
  const char* input;
  const char* printed;  // nullptr => same as input
};

class ParserRoundTrip : public ::testing::TestWithParam<RoundTrip> {};

TEST_P(ParserRoundTrip, PrintsBack) {
  auto e = ParseExpr(GetParam().input);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  const char* want =
      GetParam().printed ? GetParam().printed : GetParam().input;
  EXPECT_EQ(ToString(e.value()), want);
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, ParserRoundTrip,
    ::testing::Values(
        RoundTrip{"X", nullptr},
        RoundTrip{"X + Y", nullptr},
        RoundTrip{"X - Y - Z", nullptr},
        RoundTrip{"X * Y + Z", nullptr},
        RoundTrip{"(X + Y) * Z", nullptr},
        RoundTrip{"X %*% Y", nullptr},
        RoundTrip{"t(X)", nullptr},
        RoundTrip{"sum(X)", nullptr},
        RoundTrip{"rowSums(X)", nullptr},
        RoundTrip{"colSums(X)", nullptr},
        RoundTrip{"X ^ 2", nullptr},
        RoundTrip{"sigmoid(X)", nullptr},
        RoundTrip{"sprop(p)", nullptr},
        RoundTrip{"wsloss(X, U, V)", nullptr},
        RoundTrip{"sum((X - U %*% t(V))^2)", "sum((X - U %*% t(V)) ^ 2)"},
        RoundTrip{"X*Y+Z", "X * Y + Z"},
        RoundTrip{"1.5 * X", "1.5 * X"},
        RoundTrip{"-X", nullptr},
        RoundTrip{"X - -Y", nullptr}));

TEST(Parser, PrecedenceMatMulOverMul) {
  // * binds looser than %*%: A %*% B * C == (A %*% B) * C.
  auto e = ParseExpr("A %*% B * C");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->op, Op::kElemMul);
  EXPECT_EQ(e.value()->children[0]->op, Op::kMatMul);
}

TEST(Parser, PrecedencePowOverNeg) {
  // -x^2 parses as -(x^2) (R semantics).
  auto e = ParseExpr("-X ^ 2");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->op, Op::kNeg);
  EXPECT_EQ(e.value()->children[0]->op, Op::kPow);
}

TEST(Parser, LeftAssociativeMinus) {
  auto e = ParseExpr("X - Y - Z");
  ASSERT_TRUE(e.ok());
  // (X - Y) - Z
  EXPECT_EQ(e.value()->children[0]->op, Op::kElemMinus);
}

TEST(Parser, ScientificNumbers) {
  auto e = ParseExpr("1e-3 * X");
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e.value()->children[0]->value, 1e-3);
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParseExpr("X +").ok());
  EXPECT_FALSE(ParseExpr("(X").ok());
  EXPECT_FALSE(ParseExpr("X % Y").ok());
  EXPECT_FALSE(ParseExpr("t(X, Y)").ok());   // wrong arity
  EXPECT_FALSE(ParseExpr("frobnicate(X)").ok());
  EXPECT_FALSE(ParseExpr("X ^ Y").ok());     // non-constant exponent
  EXPECT_FALSE(ParseExpr("X Y").ok());       // trailing input
  EXPECT_FALSE(ParseExpr("@").ok());
}

TEST(Printer, RaOperators) {
  Symbol i = Symbol::Intern("i"), j = Symbol::Intern("j");
  ExprPtr ra = Expr::Agg(
      {j}, Expr::Join({Expr::Bind({i, j}, Expr::Var("A")),
                       Expr::Bind({j}, Expr::Var("v"))}));
  std::string s = ToString(ra);
  EXPECT_NE(s.find("agg[j]"), std::string::npos);
  EXPECT_NE(s.find("bind[i,j](A)"), std::string::npos);
  EXPECT_NE(s.find("join("), std::string::npos);
}

}  // namespace
}  // namespace spores
