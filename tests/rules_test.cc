// Tests of the R_EQ ruleset (Fig 3) and the RA class analysis (Sec 3.2):
// per-rule derivations inside the e-graph, plus a property suite that checks
// saturation soundness by executing extracted plans against the original on
// random inputs.
#include <gtest/gtest.h>

#include "src/canon/isomorphism.h"
#include "src/cost/cost_model.h"
#include "src/egraph/runner.h"
#include "src/egraph/term_extract.h"
#include "src/extract/extractor.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/rules/rules_eq.h"
#include "src/rules/rules_lr.h"
#include "src/runtime/executor.h"

namespace spores {
namespace {

struct Fixture {
  Catalog catalog;
  std::shared_ptr<DimEnv> dims = std::make_shared<DimEnv>();
  RaContext ctx;
  std::unique_ptr<EGraph> egraph;

  Fixture() {
    catalog.Register("X", 12, 9, 0.4);
    catalog.Register("Y", 12, 9);
    catalog.Register("Z", 12, 9, 0.0);  // empty matrix
    catalog.Register("A", 12, 6);
    catalog.Register("B", 6, 9);
    catalog.Register("u", 12, 1);
    catalog.Register("v", 9, 1);
    ctx = RaContext{&catalog, dims};
    egraph = std::make_unique<EGraph>(std::make_unique<RaAnalysis>(ctx));
  }

  // Translate LA text, add to the graph, saturate, return root.
  ClassId Saturate(const std::string& text, RaProgram* out_prog = nullptr) {
    auto parsed = ParseExpr(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto program = TranslateLaToRa(parsed.value(), catalog, dims);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    if (out_prog) *out_prog = program.value();
    ClassId root = egraph->AddExpr(program.value().ra);
    egraph->Rebuild();
    RunnerConfig cfg;
    cfg.max_iterations = 30;
    Runner runner(egraph.get(), RaEqualityRules(ctx), cfg);
    runner.Run();
    return egraph->Find(root);
  }
};

// ---- Analysis: schema invariant ----

TEST(RaAnalysis, SchemaOfBind) {
  Fixture f;
  Symbol i = Symbol::Intern("si"), j = Symbol::Intern("sj");
  f.dims->Set(i, 12);
  f.dims->Set(j, 9);
  ClassId c = f.egraph->AddExpr(Expr::Bind({i, j}, Expr::Var("X")));
  EXPECT_EQ(f.egraph->Data(c).schema, (std::vector<Symbol>{
                std::min(i, j), std::max(i, j)}));
}

TEST(RaAnalysis, SchemaOfJoinIsUnion) {
  Fixture f;
  Symbol i = Symbol::Intern("ji"), j = Symbol::Intern("jj");
  f.dims->Set(i, 12);
  f.dims->Set(j, 9);
  ClassId c = f.egraph->AddExpr(
      Expr::Join({Expr::Bind({i}, Expr::Var("u")),
                  Expr::Bind({j}, Expr::Var("v"))}));
  EXPECT_EQ(f.egraph->Data(c).schema.size(), 2u);
}

TEST(RaAnalysis, SchemaOfAggSubtracts) {
  Fixture f;
  Symbol i = Symbol::Intern("ai"), j = Symbol::Intern("aj");
  f.dims->Set(i, 12);
  f.dims->Set(j, 9);
  ClassId c = f.egraph->AddExpr(
      Expr::Agg({i}, Expr::Bind({i, j}, Expr::Var("X"))));
  EXPECT_EQ(f.egraph->Data(c).schema, std::vector<Symbol>{j});
}

// ---- Analysis: sparsity (Fig 12) ----

TEST(RaAnalysis, SparsityJoinTakesMin) {
  Fixture f;
  Symbol i = Symbol::Intern("spi"), j = Symbol::Intern("spj");
  f.dims->Set(i, 12);
  f.dims->Set(j, 9);
  ClassId c = f.egraph->AddExpr(
      Expr::Join({Expr::Bind({i, j}, Expr::Var("X")),   // 0.4
                  Expr::Bind({i, j}, Expr::Var("Y"))})); // 1.0
  EXPECT_DOUBLE_EQ(f.egraph->Data(c).sparsity, 0.4);
}

TEST(RaAnalysis, SparsityUnionAddsSaturating) {
  Fixture f;
  Symbol i = Symbol::Intern("sui"), j = Symbol::Intern("suj");
  f.dims->Set(i, 12);
  f.dims->Set(j, 9);
  ClassId c = f.egraph->AddExpr(
      Expr::Union({Expr::Bind({i, j}, Expr::Var("X")),
                   Expr::Bind({i, j}, Expr::Var("Y"))}));
  EXPECT_DOUBLE_EQ(f.egraph->Data(c).sparsity, 1.0);  // min(1, 0.4 + 1.0)
}

TEST(RaAnalysis, SparsityAggScalesByDim) {
  Fixture f;
  Symbol i = Symbol::Intern("sai"), j = Symbol::Intern("saj");
  f.dims->Set(i, 12);
  f.dims->Set(j, 9);
  ClassId bound = f.egraph->AddExpr(Expr::Bind({i, j}, Expr::Var("X")));
  (void)bound;
  ClassId c = f.egraph->AddExpr(
      Expr::Agg({j}, Expr::Bind({i, j}, Expr::Var("X"))));
  // min(1, |j| * 0.4) = 1.
  EXPECT_DOUBLE_EQ(f.egraph->Data(c).sparsity, 1.0);
}

TEST(RaAnalysis, SparsityMergeKeepsTighter) {
  Fixture f;
  ClassId a = f.egraph->AddExpr(Expr::Var("X"));  // 0.4
  ClassId b = f.egraph->AddExpr(Expr::Var("Y"));  // 1.0
  f.egraph->Merge(a, b);
  f.egraph->Rebuild();
  EXPECT_DOUBLE_EQ(f.egraph->Data(a).sparsity, 0.4);
}

// ---- Analysis: constant folding ----

TEST(RaAnalysis, ConstantFoldJoin) {
  Fixture f;
  ClassId c = f.egraph->AddExpr(
      Expr::Join({Expr::Const(3.0), Expr::Const(4.0)}));
  ASSERT_TRUE(f.egraph->Data(c).constant.has_value());
  EXPECT_DOUBLE_EQ(*f.egraph->Data(c).constant, 12.0);
  // Modify materialized the folded kConst node.
  EXPECT_TRUE(f.egraph->Represents(c, Expr::Const(12.0)));
}

TEST(RaAnalysis, ConstantFoldAggMultipliesByDims) {
  Fixture f;
  Symbol i = Symbol::Intern("cfi");
  f.dims->Set(i, 7);
  ClassId c = f.egraph->AddExpr(Expr::Agg({i}, Expr::Const(5.0)));
  ASSERT_TRUE(f.egraph->Data(c).constant.has_value());
  EXPECT_DOUBLE_EQ(*f.egraph->Data(c).constant, 35.0);  // rule 5: 5 * dim(i)
}

TEST(RaAnalysis, EmptyInputIsConstantZero) {
  Fixture f;
  ClassId c = f.egraph->AddExpr(Expr::Var("Z"));  // sparsity 0
  ASSERT_TRUE(f.egraph->Data(c).constant.has_value());
  EXPECT_DOUBLE_EQ(*f.egraph->Data(c).constant, 0.0);
}

// ---- Rule derivations (is the RHS in the saturated graph?) ----

TEST(RulesEq, DistributivityDerived) {
  Fixture f;
  RaProgram prog;
  ClassId root = f.Saturate("X * (Y + X)", &prog);
  // Distributed form: X*Y + X*X.
  auto rhs = TranslateLaToRa(ParseExpr("X * Y + X * X").value(), f.catalog,
                             f.dims, prog.out_row, prog.out_col);
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(AlphaRepresents(*f.egraph, root, rhs.value().ra));
}

TEST(RulesEq, FactoringDerived) {
  Fixture f;
  RaProgram prog;
  ClassId root = f.Saturate("X * Y + X * X", &prog);
  auto rhs = TranslateLaToRa(ParseExpr("X * (Y + X)").value(), f.catalog,
                             f.dims, prog.out_row, prog.out_col);
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(AlphaRepresents(*f.egraph, root, rhs.value().ra));
}

TEST(RulesEq, AggOverUnionDerived) {
  Fixture f;
  RaProgram prog;
  ClassId root = f.Saturate("sum(X + Y)", &prog);
  auto rhs = TranslateLaToRa(ParseExpr("sum(X) + sum(Y)").value(), f.catalog,
                             f.dims, prog.out_row, prog.out_col);
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(AlphaRepresents(*f.egraph, root, rhs.value().ra));
}

TEST(RulesEq, ConstantPullsOutOfSum) {
  Fixture f;
  RaProgram prog;
  ClassId root = f.Saturate("sum(3 * X)", &prog);
  auto rhs = TranslateLaToRa(ParseExpr("3 * sum(X)").value(), f.catalog,
                             f.dims, prog.out_row, prog.out_col);
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(AlphaRepresents(*f.egraph, root, rhs.value().ra));
}

TEST(RulesEq, SelfUnionBecomesCoefficient) {
  Fixture f;
  RaProgram prog;
  ClassId root = f.Saturate("X + X", &prog);
  auto rhs = TranslateLaToRa(ParseExpr("2 * X").value(), f.catalog, f.dims,
                             prog.out_row, prog.out_col);
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(AlphaRepresents(*f.egraph, root, rhs.value().ra));
}

TEST(RulesEq, MinusSelfIsZero) {
  Fixture f;
  ClassId root = f.Saturate("sum(X - X)");
  EXPECT_TRUE(f.egraph->Represents(root, Expr::Const(0.0)));
}

TEST(RulesEq, EmptyMatrixSumIsZero) {
  Fixture f;
  ClassId root = f.Saturate("sum(Z * Y)");  // Z has zero nnz
  EXPECT_TRUE(f.egraph->Represents(root, Expr::Const(0.0)));
}

TEST(RulesEq, SpropIntroduced) {
  Fixture f;
  ClassId root = f.Saturate("u * u - u * u * u");
  // Some class in root's e-class should be a kSProp node times u.
  bool found = false;
  for (NodeId nid : f.egraph->GetClass(root).nodes) {
    const ENode& n = f.egraph->NodeAt(nid);
    if (n.op == Op::kJoin) {
      for (ClassId c : n.children) {
        for (NodeId mid : f.egraph->GetClass(c).nodes) {
          if (f.egraph->NodeAt(mid).op == Op::kSProp) found = true;
        }
      }
    }
    if (n.op == Op::kSProp) found = true;
  }
  EXPECT_TRUE(found);
}

// ---- Soundness property: every extractable plan evaluates identically ----

class RuleSoundness : public ::testing::TestWithParam<const char*> {};

TEST_P(RuleSoundness, ExtractedPlansMatchOriginal) {
  Fixture f;
  RaProgram prog;
  ClassId root = f.Saturate(GetParam(), &prog);

  Rng rng(2024);
  Bindings inputs;
  inputs.Bind("X", Matrix::RandomSparse(12, 9, 0.4, rng, -1, 1));
  inputs.Bind("Y", Matrix::RandomDense(12, 9, rng, -1, 1));
  inputs.Bind("Z", Matrix::Sparse(12, 9));
  inputs.Bind("A", Matrix::RandomDense(12, 6, rng, -1, 1));
  inputs.Bind("B", Matrix::RandomDense(6, 9, rng, -1, 1));
  inputs.Bind("u", Matrix::RandomDense(12, 1, rng, 0.1, 0.9));
  inputs.Bind("v", Matrix::RandomDense(9, 1, rng, -1, 1));

  ExprPtr original = ParseExpr(GetParam()).value();
  auto expected = Execute(original, inputs);
  ASSERT_TRUE(expected.ok());

  // Greedy and ILP extraction must both produce equivalent plans.
  CostModel cost(f.ctx);
  for (bool use_ilp : {false, true}) {
    auto extracted = use_ilp ? IlpExtract(*f.egraph, root, cost)
                             : GreedyExtract(*f.egraph, root, cost);
    ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
    auto lowered =
        TranslateRaToLa(extracted.value().expr, prog, f.catalog);
    ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
    auto actual = Execute(lowered.value(), inputs);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_LT(Matrix::MaxAbsDiff(expected.value(), actual.value()), 1e-8)
        << GetParam() << " (ilp=" << use_ilp << ") extracted as "
        << ToString(lowered.value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RuleSoundness,
    ::testing::Values("sum(X * Y)", "sum(X + Y)", "X * (Y + X)",
                      "sum((X - Y) ^ 2)", "A %*% B %*% v",
                      "t(X) %*% (u - X %*% v)", "sum(A %*% B)",
                      "colSums(X * Y)", "rowSums(X) + rowSums(Y)",
                      "sum(3 * X) + sum(Y - Y)", "u * u - u * u * u",
                      "(A %*% B - X) %*% v", "t(u) %*% X %*% v"));

}  // namespace
}  // namespace spores
