// Tests of the persistence tier (PR 6): snapshot container framing + CRCs,
// wire-format round trips, journal replay, and the SessionPool warm-restart
// path end to end — save → load → identical plan costs and cache-hit
// behavior, plus every invalid-snapshot scenario (truncation, bit flips,
// rule-set / cost-model / format / shard-count skew) recovering to a clean
// cold start with the reason surfaced. The checkpoint-concurrent-with-
// serving test runs under ThreadSanitizer in CI, so it doubles as the race
// detector for the control-task handoff between checkpoint and worker
// threads.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/cost/cost_model.h"
#include "src/ir/parser.h"
#include "src/persist/checkpoint.h"
#include "src/persist/plan_store.h"
#include "src/persist/snapshot_format.h"
#include "src/persist/wire_format.h"
#include "src/serve/session_pool.h"
#include "src/util/crc32.h"
#include "src/util/fault_injection.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace spores {
namespace {

namespace fs = std::filesystem;

// A fresh, empty persistence directory per test.
std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("spores_persist_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadAll(const std::string& path) {
  auto bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << path;
  return bytes.ok() ? bytes.value() : std::string();
}

void WriteAll(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::shared_ptr<const Catalog> SmallCatalog() {
  return std::make_shared<Catalog>(
      MakeFactorizationData(250, 200, 6, 0.02, 31).catalog);
}

std::vector<ExprPtr> DistinctQueries() {
  std::vector<ExprPtr> out;
  for (const Program& prog : {AlsProgram(), PnmfProgram(), IntroProgram()}) {
    out.push_back(prog.expr);
    out.push_back(Expr::Unary("abs", prog.expr));
    out.push_back(Expr::Unary("sign", prog.expr));
  }
  return out;
}

// The fast serving configuration every pool test uses.
SessionConfig ServingConfig() {
  SessionConfig cfg;
  cfg.runner.strategy = SaturationStrategy::kSampling;
  cfg.extraction = ExtractionStrategy::kGreedy;
  return cfg;
}

PoolConfig PersistentPool(const std::string& dir, size_t shards = 2) {
  PoolConfig cfg;
  cfg.num_shards = shards;
  cfg.persist.dir = dir;
  return cfg;
}

// Runs every distinct query through a fresh persistent pool and returns
// (query -> plan cost). The pool checkpoints on destruction by default.
std::vector<double> PopulatePool(const std::string& dir, size_t shards,
                                 bool checkpoint_on_shutdown = true) {
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  PoolConfig cfg = PersistentPool(dir, shards);
  cfg.persist.checkpoint_on_shutdown = checkpoint_on_shutdown;
  SessionPool pool(context, cfg);
  auto catalog = SmallCatalog();
  std::vector<double> costs;
  for (const ExprPtr& q : DistinctQueries()) {
    auto plan = pool.Submit(q, catalog).get();
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    costs.push_back(plan.ok() ? plan.value().plan_cost : -1.0);
  }
  pool.Drain();
  return costs;
}

SnapshotExpectation ExpectationFor(const OptimizerContext& context,
                                   uint32_t shards) {
  SnapshotExpectation expect;
  expect.rule_set_hash = RuleSetHash(context.rules());
  expect.cost_model_hash = CostModelParamsHash();
  expect.shard_count = shards;
  return expect;
}

// ---- Primitives ----

TEST(Crc32Test, KnownAnswer) {
  // The IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(ByteCodecTest, RoundTripsEveryPrimitive) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutI64(-42);
  w.PutDouble(3.5);
  w.PutString("polyterm");
  ByteReader r(w.bytes());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 3.5);
  EXPECT_EQ(s, "polyterm");
  EXPECT_TRUE(r.AtEnd());
  // Reads past the end fail instead of trusting the input.
  EXPECT_FALSE(r.GetU8(&u8).ok());
}

TEST(WireFormatTest, ExprRoundTrip) {
  auto parsed = ParseExpr("sum(t(A) %*% (B * 2) + sqrt(abs(A %*% B)))");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ByteWriter w;
  EncodeExpr(parsed.value(), w);
  ByteReader r(w.bytes());
  auto decoded = DecodeExpr(r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(ExprEquals(parsed.value(), decoded.value()));
  EXPECT_EQ(parsed.value()->Hash(), decoded.value()->Hash());
}

TEST(WireFormatTest, DecodeRejectsGarbage) {
  ByteReader r(std::string_view("\xff\xff\xff\xff garbage"));
  EXPECT_FALSE(DecodeExpr(r).ok());
}

TEST(SnapshotContainerTest, SectionsRoundTripWithCrc) {
  SnapshotHeader header;
  header.rule_set_hash = 0x1111;
  header.cost_model_hash = 0x2222;
  header.created_unix_seconds = 1000;
  header.shard_count = 4;
  header.shard_index = 2;
  SnapshotFileWriter writer(header);
  writer.AddSection(SectionId::kPlanCache, "plan-bytes");
  writer.AddSection(SectionId::kCatalog, "catalog-bytes");
  const std::string image = writer.Encode();

  auto reader = SnapshotFileReader::Parse(image);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value().header().rule_set_hash, 0x1111u);
  EXPECT_EQ(reader.value().header().shard_index, 2u);
  ASSERT_EQ(reader.value().sections().size(), 2u);
  for (const auto& s : reader.value().sections()) EXPECT_TRUE(s.crc_ok);
  auto payload = reader.value().Section(SectionId::kPlanCache);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "plan-bytes");
  EXPECT_FALSE(reader.value().Section(SectionId::kEGraph).ok());
}

TEST(SnapshotContainerTest, BitFlipFailsExactlyTheDamagedSection) {
  SnapshotHeader header;
  SnapshotFileWriter writer(header);
  writer.AddSection(SectionId::kPlanCache, std::string(64, 'p'));
  writer.AddSection(SectionId::kCatalog, std::string(64, 'c'));
  std::string image = writer.Encode();
  // Flip one bit in the LAST section's payload (near the end of the file,
  // past the header and the first section).
  image[image.size() - 10] ^= 0x40;

  auto reader = SnapshotFileReader::Parse(image);
  ASSERT_TRUE(reader.ok());  // framing is intact; only one payload rotted
  EXPECT_TRUE(reader.value().Section(SectionId::kPlanCache).ok());
  auto damaged = reader.value().Section(SectionId::kCatalog);
  EXPECT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotContainerTest, JournalReplayStopsAtTornTail) {
  std::string image = EncodeJournalRecord("first") +
                      EncodeJournalRecord("second") +
                      EncodeJournalRecord("third").substr(0, 9);  // torn
  std::vector<std::string> records = DecodeJournalRecords(image);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "first");
  EXPECT_EQ(records[1], "second");
}

// ---- Pool round trip ----

TEST(WarmRestartTest, RoundTripRestoresPlansAndCacheBehavior) {
  const std::string dir = FreshDir("roundtrip");
  const std::vector<double> first_costs = PopulatePool(dir, 2);

  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  SessionPool pool(context, PersistentPool(dir, 2));
  PoolStats stats = pool.Stats();
  size_t restored = 0;
  for (const ShardStats& s : stats.shards) {
    EXPECT_EQ(s.cold_start, ColdStartReason::kWarmRestore)
        << ColdStartReasonName(s.cold_start) << ": " << s.cold_start_detail;
    EXPECT_GE(s.snapshot_age_seconds, 0);
    restored += s.session.restored_plans;
  }
  EXPECT_EQ(restored, DistinctQueries().size());
  EXPECT_EQ(stats.TotalRestoredPlans(), restored);

  // Every previously-seen query must now be a warm hit with a bit-identical
  // plan cost: restore changed NOTHING about optimization results.
  auto catalog = SmallCatalog();
  std::vector<ExprPtr> queries = DistinctQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto plan = pool.Submit(queries[i], catalog).get();
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_TRUE(plan.value().cache_hit) << "query " << i << " missed";
    EXPECT_EQ(plan.value().plan_cost, first_costs[i]) << "query " << i;
  }
  pool.Drain();
  EXPECT_EQ(pool.Stats().CacheHitRate(), 1.0);
}

TEST(WarmRestartTest, CalibrationTableSurvivesRestart) {
  const std::string dir = FreshDir("calibration_roundtrip");
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  {
    PoolConfig cfg = PersistentPool(dir, 1);
    cfg.persist.checkpoint_on_shutdown = true;
    SessionPool pool(context, cfg);
    ASSERT_TRUE(pool.Submit(DistinctQueries()[0], SmallCatalog()).get().ok());
    // Observations skewed enough to publish multipliers (and bump the
    // table version): contractions 1000x slower per cell than elementwise.
    ExecutionFeedback fb;
    for (int i = 0; i < 4; ++i) {
      fb.samples.push_back({"add", 100, 100, -1, 1e-3});
      fb.samples.push_back({"mmul", 100, 100, -1, 1.0});
    }
    pool.RecordExecution(fb);
    pool.Drain();
    EXPECT_GE(pool.Stats().TotalRecalibrations(), 1u);
  }  // shutdown checkpoint writes shard-0.snap

  // The snapshot carries the learned table in its own section.
  ShardRestoreResult r = PlanStoreReader::Load(dir + "/shard-0.snap",
                                               ExpectationFor(*context, 1));
  ASSERT_EQ(r.reason, ColdStartReason::kWarmRestore) << r.detail;
  EXPECT_GT(r.data.calibration.version, 0u);
  EXPECT_FALSE(r.data.calibration.cells.empty());
  EXPECT_FALSE(r.data.calibration.published.empty());
  EXPECT_EQ(r.data.calibration.baseline_samples, 8u);

  // A restarted pool resumes costing exactly where the snapshot left off.
  SessionPool pool(context, PersistentPool(dir, 1));
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.shards[0].cold_start, ColdStartReason::kWarmRestore)
      << stats.shards[0].cold_start_detail;
  EXPECT_EQ(stats.shards[0].session.restored_calibration_cells,
            r.data.calibration.cells.size());
}

TEST(WarmRestartTest, JournalOnlyRestoreBeforeFirstCheckpoint) {
  const std::string dir = FreshDir("journal_only");
  // No shutdown checkpoint: the journals are the only persisted state.
  const std::vector<double> first_costs =
      PopulatePool(dir, 2, /*checkpoint_on_shutdown=*/false);
  ASSERT_TRUE(fs::exists(fs::path(dir) / "shard-0.journal") ||
              fs::exists(fs::path(dir) / "shard-1.journal"));
  ASSERT_FALSE(fs::exists(fs::path(dir) / "shard-0.snap"));

  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  SessionPool pool(context, PersistentPool(dir, 2));
  size_t restored = 0, warm_shards = 0;
  for (const ShardStats& s : pool.Stats().shards) {
    restored += s.session.restored_plans;
    if (s.cold_start == ColdStartReason::kWarmRestore) {
      ++warm_shards;
      // Journal-only restores have no snapshot file, hence no age.
      EXPECT_EQ(s.snapshot_age_seconds, -1);
    }
  }
  EXPECT_GT(warm_shards, 0u);
  EXPECT_EQ(restored, DistinctQueries().size());

  auto catalog = SmallCatalog();
  std::vector<ExprPtr> queries = DistinctQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto plan = pool.Submit(queries[i], catalog).get();
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(plan.value().cache_hit);
    EXPECT_EQ(plan.value().plan_cost, first_costs[i]);
  }
  pool.Drain();
}

TEST(WarmRestartTest, DrainFlushesJournalWhilePoolIsLive) {
  const std::string dir = FreshDir("drain_flush");
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  PoolConfig cfg = PersistentPool(dir, 1);
  cfg.persist.checkpoint_on_shutdown = false;
  SessionPool pool(context, cfg);
  auto catalog = SmallCatalog();
  for (const ExprPtr& q : DistinctQueries()) {
    ASSERT_TRUE(pool.Submit(q, catalog).get().ok());
  }
  pool.Drain();
  // The pool is still alive — Drain() itself must have pushed every insert
  // to the OS, so the journal replays in full right now.
  std::vector<PlanStoreEntry> replayed = ReplayJournalImage(
      ReadAll(dir + "/shard-0.journal"), ExpectationFor(*context, 1));
  EXPECT_EQ(replayed.size(), DistinctQueries().size());
}

TEST(WarmRestartTest, ExplicitCheckpointRotatesJournals) {
  const std::string dir = FreshDir("explicit_ckpt");
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  PoolConfig cfg = PersistentPool(dir, 2);
  cfg.persist.checkpoint_on_shutdown = false;
  SessionPool pool(context, cfg);
  auto catalog = SmallCatalog();
  for (const ExprPtr& q : DistinctQueries()) {
    ASSERT_TRUE(pool.Submit(q, catalog).get().ok());
  }
  pool.Drain();
  ASSERT_TRUE(pool.Checkpoint().ok());
  // The snapshot now covers everything; the journals were rotated away and
  // deleted after the successful write.
  EXPECT_TRUE(fs::exists(fs::path(dir) / "shard-0.snap"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "shard-0.journal"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "shard-0.journal.1"));
}

TEST(WarmRestartTest, FailedCheckpointLeavesNoTmpFiles) {
  // Regression: a failure mid-serialize (torn write, allocation failure)
  // used to strand the snapshot's .tmp file in the persistence directory;
  // every failure path must clean it up, and the previous snapshot must
  // stay intact and restorable.
  const std::string dir = FreshDir("no_tmp_on_failure");
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  PoolConfig cfg = PersistentPool(dir, 2);
  cfg.persist.checkpoint_on_shutdown = false;
  SessionPool pool(context, cfg);
  auto catalog = SmallCatalog();
  for (const ExprPtr& q : DistinctQueries()) {
    ASSERT_TRUE(pool.Submit(q, catalog).get().ok());
  }
  pool.Drain();
  ASSERT_TRUE(pool.Checkpoint().ok());  // a good snapshot to preserve
  const std::string good = ReadAll(dir + "/shard-0.snap");

  auto no_tmp_files = [&] {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() == ".tmp") return false;
    }
    return true;
  };
  FaultInjector& inj = FaultInjector::Instance();
  for (const char* kind : {"torn", "bad_alloc", "throw"}) {
    ASSERT_TRUE(
        inj.Configure(std::string("snapshot_write:1:") + kind).ok());
    EXPECT_FALSE(pool.Checkpoint().ok()) << kind;
    EXPECT_TRUE(no_tmp_files()) << kind;
    // The failed write never touched the published snapshot.
    EXPECT_EQ(ReadAll(dir + "/shard-0.snap"), good) << kind;
  }
  inj.Reset();
  EXPECT_TRUE(pool.Checkpoint().ok());  // healthy again once faults stop
  EXPECT_TRUE(no_tmp_files());
}

TEST(WarmRestartTest, CheckpointWithoutPersistenceIsAnError) {
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  SessionPool pool(context, PoolConfig{});
  EXPECT_FALSE(pool.persistence_enabled());
  EXPECT_FALSE(pool.Checkpoint().ok());
  for (const ShardStats& s : pool.Stats().shards) {
    EXPECT_EQ(s.cold_start, ColdStartReason::kDisabled);
  }
}

// ---- Corruption and skew: every scenario must cold-start cleanly ----

// Each corruption case shares this shape: damage the persisted state, bring
// up a new pool, assert the expected reason AND that the pool still serves.
void ExpectColdStartAndServe(const std::string& dir, size_t shards,
                             ColdStartReason expected_reason,
                             size_t expect_on_shard = 0) {
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  SessionPool pool(context, PersistentPool(dir, shards));
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.shards[expect_on_shard].cold_start, expected_reason)
      << "got " << ColdStartReasonName(stats.shards[expect_on_shard].cold_start)
      << ": " << stats.shards[expect_on_shard].cold_start_detail;
  EXPECT_FALSE(stats.shards[expect_on_shard].cold_start_detail.empty());
  EXPECT_EQ(stats.shards[expect_on_shard].session.restored_plans, 0u);
  // The pool must serve normally regardless.
  auto plan = pool.Submit(DistinctQueries()[0], SmallCatalog()).get();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  pool.Drain();
}

TEST(ColdStartTest, TruncatedSnapshotFile) {
  const std::string dir = FreshDir("truncated");
  PopulatePool(dir, 2);
  const std::string path = dir + "/shard-0.snap";
  std::string image = ReadAll(path);
  ASSERT_GT(image.size(), 64u);
  WriteAll(path, image.substr(0, image.size() / 2));
  ExpectColdStartAndServe(dir, 2, ColdStartReason::kCorruptSnapshot);
}

TEST(ColdStartTest, BitFlippedSectionPayload) {
  const std::string dir = FreshDir("bitflip");
  PopulatePool(dir, 2);
  const std::string path = dir + "/shard-0.snap";
  std::string image = ReadAll(path);
  ASSERT_GT(image.size(), 64u);
  image[image.size() - 16] ^= 0x01;  // one bit, deep in a section payload
  WriteAll(path, image);
  ExpectColdStartAndServe(dir, 2, ColdStartReason::kCorruptSnapshot);
}

TEST(ColdStartTest, BitFlippedCalibrationSectionColdStartsClean) {
  const std::string dir = FreshDir("calibration_bitflip");
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  SnapshotHeader header;
  header.rule_set_hash = RuleSetHash(context->rules());
  header.cost_model_hash = CostModelParamsHash();
  header.shard_count = 1;
  header.shard_index = 0;

  ShardSnapshotData data;
  data.calibration.version = 3;
  data.calibration.baseline_samples = 5;
  data.calibration.baseline_unit_seconds = 1e-6;
  data.calibration.cells.push_back({"mmul", 13, -2, 5, 2e-6, 0.01});
  data.calibration.published.push_back(
      {static_cast<uint8_t>(CostCategory::kContract), 13, -2, 2.0});
  const std::string path = dir + "/shard-0.snap";
  ASSERT_TRUE(PlanStoreWriter(header).Write(data, path).ok());

  // Intact, the calibration-only snapshot restores the table verbatim.
  ShardRestoreResult intact =
      PlanStoreReader::Load(path, ExpectationFor(*context, 1));
  ASSERT_EQ(intact.reason, ColdStartReason::kWarmRestore) << intact.detail;
  EXPECT_EQ(intact.data.calibration.version, 3u);
  ASSERT_EQ(intact.data.calibration.cells.size(), 1u);
  EXPECT_EQ(intact.data.calibration.cells[0].op, "mmul");
  EXPECT_EQ(intact.data.calibration.cells[0].shape_bucket, 13);
  ASSERT_EQ(intact.data.calibration.published.size(), 1u);
  EXPECT_EQ(intact.data.calibration.published[0].multiplier, 2.0);

  // One flipped bit in the section: a half-trusted cost table would skew
  // every later extraction, so the whole file cold-starts clean.
  std::string image = ReadAll(path);
  ASSERT_GT(image.size(), 64u);
  image[image.size() - 3] ^= 0x40;  // calibration is the last section
  WriteAll(path, image);
  ExpectColdStartAndServe(dir, 1, ColdStartReason::kCorruptSnapshot);
}

TEST(ColdStartTest, RuleSetHashMismatch) {
  const std::string dir = FreshDir("rule_skew");
  SnapshotHeader header;
  header.rule_set_hash = 0xdeadbeef;  // no rule set hashes to this
  header.cost_model_hash = CostModelParamsHash();
  header.shard_count = 2;
  header.shard_index = 0;
  ASSERT_TRUE(
      PlanStoreWriter(header).Write({}, dir + "/shard-0.snap").ok());
  ExpectColdStartAndServe(dir, 2, ColdStartReason::kRuleSetHashMismatch);
}

TEST(ColdStartTest, CostModelHashMismatch) {
  const std::string dir = FreshDir("cost_skew");
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  SnapshotHeader header;
  header.rule_set_hash = RuleSetHash(context->rules());
  header.cost_model_hash = CostModelParamsHash() ^ 1;  // one version off
  header.shard_count = 2;
  header.shard_index = 0;
  ASSERT_TRUE(
      PlanStoreWriter(header).Write({}, dir + "/shard-0.snap").ok());
  ExpectColdStartAndServe(dir, 2, ColdStartReason::kCostModelHashMismatch);
}

TEST(ColdStartTest, FormatVersionMismatch) {
  const std::string dir = FreshDir("format_skew");
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  SnapshotHeader header;
  header.format_version = kSnapshotFormatVersion + 1;
  header.rule_set_hash = RuleSetHash(context->rules());
  header.cost_model_hash = CostModelParamsHash();
  header.shard_count = 2;
  header.shard_index = 0;
  ASSERT_TRUE(
      PlanStoreWriter(header).Write({}, dir + "/shard-0.snap").ok());
  ExpectColdStartAndServe(dir, 2, ColdStartReason::kFormatVersionMismatch);
}

TEST(ColdStartTest, ShardCountMismatchAfterResize) {
  const std::string dir = FreshDir("resize");
  PopulatePool(dir, 2);
  // Same directory, resized pool: placement is stale, both old shards must
  // start cold (re-placing keys is the distributed tier's job, not ours).
  ExpectColdStartAndServe(dir, 3, ColdStartReason::kShardCountMismatch, 0);
  // A stale journal under the old shard count is equally useless.
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  std::vector<PlanStoreEntry> replayed = ReplayJournalImage(
      EncodeJournalRecord(EncodeJournalHeaderPayload(
          {kSnapshotFormatVersion, RuleSetHash(context->rules()),
           CostModelParamsHash(), 2, 0})),
      ExpectationFor(*context, 3));
  EXPECT_TRUE(replayed.empty());
}

TEST(ColdStartTest, MissingDirectoryIsJustNoSnapshot) {
  const std::string dir =
      FreshDir("fresh_start") + "/nested/never_created_before";
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  SessionPool pool(context, PersistentPool(dir, 2));
  for (const ShardStats& s : pool.Stats().shards) {
    EXPECT_EQ(s.cold_start, ColdStartReason::kNoSnapshot);
  }
  // The pool created the directory, so journaling works immediately.
  auto plan = pool.Submit(DistinctQueries()[0], SmallCatalog()).get();
  EXPECT_TRUE(plan.ok());
  pool.Drain();
  EXPECT_TRUE(fs::exists(dir));
}

// ---- Concurrency (runs under TSan in CI) ----

TEST(WarmRestartTest, CheckpointConcurrentWithServing) {
  const std::string dir = FreshDir("concurrent");
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  PoolConfig cfg = PersistentPool(dir, 2);
  cfg.persist.checkpoint_on_shutdown = false;
  std::vector<double> live_costs;
  {
    SessionPool pool(context, cfg);
    auto catalog = SmallCatalog();
    std::vector<ExprPtr> queries = DistinctQueries();
    std::vector<ServeFuture<OptimizedPlan>> futures;
    std::thread submitter([&] {
      for (int round = 0; round < 3; ++round) {
        for (const ExprPtr& q : queries) {
          futures.push_back(pool.Submit(q, catalog));
        }
      }
    });
    // Checkpoints race the submissions: captures interleave with running
    // jobs on every worker, and rotation races journal appends.
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(pool.Checkpoint().ok());
    }
    submitter.join();
    for (auto& f : futures) {
      auto plan = f.get();
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    }
    pool.Drain();
    for (const ExprPtr& q : queries) {
      auto plan = pool.Submit(q, catalog).get();
      ASSERT_TRUE(plan.ok());
      live_costs.push_back(plan.value().plan_cost);
    }
    EXPECT_TRUE(pool.Checkpoint().ok());
  }
  // Whatever interleaving the checkpoints saw, the final one restores to
  // the same plans the live pool served.
  auto restored_context =
      std::make_shared<const OptimizerContext>(ServingConfig());
  SessionPool pool(restored_context, PersistentPool(dir, 2));
  EXPECT_GT(pool.Stats().TotalRestoredPlans(), 0u);
  auto catalog = SmallCatalog();
  std::vector<ExprPtr> queries = DistinctQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto plan = pool.Submit(queries[i], catalog).get();
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(plan.value().cache_hit);
    EXPECT_EQ(plan.value().plan_cost, live_costs[i]);
  }
  pool.Drain();
}

}  // namespace
}  // namespace spores
