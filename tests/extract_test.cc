// Tests of the extractors: greedy's blindness to shared subexpressions
// (Fig 10) versus the ILP's DAG-aware optimum (Fig 11), the schema
// restriction, and cycle handling.
#include <gtest/gtest.h>

#include "src/extract/extractor.h"
#include "src/ir/printer.h"
#include "src/rules/ra_analysis.h"

namespace spores {
namespace {

struct Fixture {
  Catalog catalog;
  std::shared_ptr<DimEnv> dims = std::make_shared<DimEnv>();
  RaContext ctx;
  std::unique_ptr<EGraph> egraph;
  std::unique_ptr<CostModel> cost;

  Fixture() {
    catalog.Register("X", 100, 80, 0.1);
    catalog.Register("u", 100, 1);
    catalog.Register("v", 80, 1);
    ctx = RaContext{&catalog, dims};
    egraph = std::make_unique<EGraph>(std::make_unique<RaAnalysis>(ctx));
    cost = std::make_unique<CostModel>(ctx);
  }
};

TEST(Extract, TrivialLeaf) {
  Fixture f;
  ClassId id = f.egraph->AddExpr(Expr::Var("X"));
  f.egraph->Rebuild();
  auto g = GreedyExtract(*f.egraph, id, *f.cost);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ToString(g.value().expr), "X");
  auto i = IlpExtract(*f.egraph, id, *f.cost);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(ToString(i.value().expr), "X");
  EXPECT_TRUE(i.value().optimal);
}

TEST(Extract, PicksCheaperEquivalent) {
  // Merge a dense-cost plan with a sparse-cost plan; both extractors must
  // pick the sparse one.
  Fixture f;
  Symbol i = Symbol::Intern("xi"), j = Symbol::Intern("xj");
  f.dims->Set(i, 100);
  f.dims->Set(j, 80);
  // Plan A: join of two dense outer products (expensive).
  ExprPtr dense = Expr::Join({Expr::Bind({i}, Expr::Var("u")),
                              Expr::Bind({j}, Expr::Var("v"))});
  // Plan B: sparse bind.
  ExprPtr sparse = Expr::Bind({i, j}, Expr::Var("X"));
  ClassId ca = f.egraph->AddExpr(dense);
  ClassId cb = f.egraph->AddExpr(sparse);
  f.egraph->Merge(ca, cb);
  f.egraph->Rebuild();

  auto g = GreedyExtract(*f.egraph, ca, *f.cost);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().expr->op, Op::kBind);
  auto ilp = IlpExtract(*f.egraph, ca, *f.cost);
  ASSERT_TRUE(ilp.ok());
  EXPECT_EQ(ilp.value().expr->op, Op::kBind);
  EXPECT_LE(ilp.value().cost, g.value().cost);
}

TEST(Extract, Fig10SharedSubexpressionScenario) {
  // Reproduce Fig 10 structurally with a synthetic one-analysis graph:
  //   root: either branch1 (cost 1) -> exclusive (cost 4)
  //         or    branch2 (cost 2) -> shared    (cost 4)
  //   and a second fixed consumer also needs `shared`.
  // Greedy (tree cost) evaluates branch1 = 5 < branch2 = 6 and pays
  // 1 + 4 + 4 = 9 total; the ILP sees the sharing and pays 2 + 4 = 6... in
  // e-graph terms we emulate with union/join structure over shared classes.
  Fixture f;
  Symbol i = Symbol::Intern("fgi");
  f.dims->Set(i, 100);

  // shared := u (leaf), exclusive := v-based vector of same size.
  // branch1 = agg_i(bind u * bind u') — forced to cost more in total by
  // sharing: build plan alternatives for class TOP:
  //   TOP = union(shared, shared)       (uses shared twice: cheap w/ DAG)
  //   TOP = union(exclusive, shared)    (tree-cheaper, DAG-pricier)
  ExprPtr shared = Expr::Bind({i}, Expr::Var("u"));
  Symbol j = Symbol::Intern("fgj");
  f.dims->Set(j, 100);
  // exclusive: an agg that costs like a vector (non-shareable with `shared`)
  ExprPtr exclusive =
      Expr::Agg({j}, Expr::Join({Expr::Bind({i}, Expr::Var("u")),
                                 Expr::Bind({j}, Expr::Var("u"))}));
  // two plan variants for the same class
  ExprPtr plan_shared = Expr::Union({shared, shared});
  ExprPtr plan_mixed = Expr::Union({exclusive, shared});
  ClassId a = f.egraph->AddExpr(plan_shared);
  ClassId b = f.egraph->AddExpr(plan_mixed);
  f.egraph->Merge(a, b);
  f.egraph->Rebuild();

  auto ilp = IlpExtract(*f.egraph, a, *f.cost);
  ASSERT_TRUE(ilp.ok());
  auto greedy = GreedyExtract(*f.egraph, a, *f.cost);
  ASSERT_TRUE(greedy.ok());
  // ILP's DAG objective is never worse than greedy's achieved cost.
  EXPECT_LE(ilp.value().cost, greedy.value().cost + 1e-9);
}

TEST(Extract, SchemaRestrictionSkipsWideNonJoinNodes) {
  // A 3-attribute union node must not be selected; with no alternative the
  // extraction fails rather than emitting untranslatable plans.
  Fixture f;
  Symbol i = Symbol::Intern("wi"), j = Symbol::Intern("wj"),
         k = Symbol::Intern("wk");
  f.dims->Set(i, 4);
  f.dims->Set(j, 5);
  f.dims->Set(k, 6);
  f.catalog.Register("T1", 4, 5);
  f.catalog.Register("T2", 5, 6);
  ExprPtr wide =
      Expr::Union({Expr::Join({Expr::Bind({i, j}, Expr::Var("T1")),
                               Expr::Bind({j, k}, Expr::Var("T2"))}),
                   Expr::Join({Expr::Bind({i, j}, Expr::Var("T1")),
                               Expr::Bind({j, k}, Expr::Var("T2"))})});
  ClassId id = f.egraph->AddExpr(wide);
  f.egraph->Rebuild();
  EXPECT_EQ(f.egraph->Data(id).schema.size(), 3u);
  auto g = GreedyExtract(*f.egraph, id, *f.cost);
  EXPECT_FALSE(g.ok());
  auto ilp = IlpExtract(*f.egraph, id, *f.cost);
  EXPECT_FALSE(ilp.ok());
}

TEST(Extract, WideJoinUnderAggIsAllowed) {
  Fixture f;
  Symbol i = Symbol::Intern("vi"), j = Symbol::Intern("vj"),
         k = Symbol::Intern("vk");
  f.dims->Set(i, 4);
  f.dims->Set(j, 5);
  f.dims->Set(k, 6);
  f.catalog.Register("M1", 4, 5);
  f.catalog.Register("M2", 5, 6);
  ExprPtr matmul =
      Expr::Agg({j}, Expr::Join({Expr::Bind({i, j}, Expr::Var("M1")),
                                 Expr::Bind({j, k}, Expr::Var("M2"))}));
  ClassId id = f.egraph->AddExpr(matmul);
  f.egraph->Rebuild();
  auto g = GreedyExtract(*f.egraph, id, *f.cost);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().expr->op, Op::kAgg);
  auto ilp = IlpExtract(*f.egraph, id, *f.cost);
  ASSERT_TRUE(ilp.ok());
  EXPECT_EQ(ilp.value().expr->op, Op::kAgg);
}

TEST(Extract, SelfReferentialClassStillExtractable) {
  // x merged with t(t-ish self) produces a cyclic class; extraction must
  // pick the acyclic member.
  Fixture f;
  ClassId x = f.egraph->AddExpr(Expr::Var("X"));
  ENode self;
  self.op = Op::kUnion;
  self.children = {x, x};
  ClassId loop = f.egraph->Add(self);
  f.egraph->Merge(x, loop);  // X = X union X (false in general; test only)
  f.egraph->Rebuild();
  auto g = GreedyExtract(*f.egraph, x, *f.cost);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(ToString(g.value().expr), "X");
  auto ilp = IlpExtract(*f.egraph, x, *f.cost);
  ASSERT_TRUE(ilp.ok());
  EXPECT_EQ(ToString(ilp.value().expr), "X");
}

TEST(Extract, SharedSubtermsShareExprNodes) {
  Fixture f;
  Symbol i = Symbol::Intern("shi");
  f.dims->Set(i, 100);
  ExprPtr u = Expr::Bind({i}, Expr::Var("u"));
  ClassId id = f.egraph->AddExpr(Expr::Union({u, u}));
  f.egraph->Rebuild();
  auto g = GreedyExtract(*f.egraph, id, *f.cost);
  ASSERT_TRUE(g.ok());
  // The two children of the union must be the same Expr object (DAG).
  ASSERT_EQ(g.value().expr->children.size(), 2u);
  EXPECT_EQ(g.value().expr->children[0].get(),
            g.value().expr->children[1].get());
}

}  // namespace
}  // namespace spores
