// Tests of the canonical polyterm form (Definition 2.1/A.5), term and
// polyterm isomorphism (Definitions A.3/A.4/A.7), the completeness-style
// equivalence check (Theorem 2.3), and the alpha-renaming e-graph membership
// check used by the Fig 14 experiment.
#include <gtest/gtest.h>

#include "src/canon/canonical.h"
#include "src/canon/isomorphism.h"
#include "src/egraph/runner.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/rules/rules_eq.h"
#include "src/rules/rules_lr.h"

namespace spores {
namespace {

Catalog TestCatalog() {
  Catalog c;
  c.Register("X", 10, 8, 0.5);
  c.Register("Y", 10, 8);
  c.Register("U", 10, 1);
  c.Register("V", 8, 1);
  c.Register("A", 10, 6);
  c.Register("B", 6, 8);
  c.Register("x", 7, 7);
  c.Register("y", 7, 7);
  return c;
}

StatusOr<bool> Equiv(const char* a, const char* b) {
  return EquivalentLa(ParseExpr(a).value(), ParseExpr(b).value(),
                      TestCatalog());
}

TEST(FreeAttrs, ComputedStructurally) {
  Symbol i = Symbol::Intern("fi"), j = Symbol::Intern("fj");
  ExprPtr e = Expr::Agg({i}, Expr::Join({Expr::Bind({i, j}, Expr::Var("X")),
                                         Expr::Bind({i}, Expr::Var("U"))}));
  EXPECT_EQ(FreeAttrs(e), std::vector<Symbol>{j});
}

TEST(RenameAttrs, RewritesBindAndAgg) {
  Symbol i = Symbol::Intern("ri"), j = Symbol::Intern("rj"),
         k = Symbol::Intern("rk");
  ExprPtr e = Expr::Agg({i}, Expr::Bind({i, j}, Expr::Var("X")));
  ExprPtr renamed = RenameAttrs(e, {{i, k}});
  EXPECT_EQ(renamed->attrs, std::vector<Symbol>{k});
  EXPECT_EQ(renamed->children[0]->attrs, (std::vector<Symbol>{k, j}));
}

TEST(Canonical, SquareCombinesIntoRepeatedAtoms) {
  // X * X canonicalizes to one monomial with the atom twice (a power).
  Catalog catalog = TestCatalog();
  auto prog = TranslateLaToRa(ParseExpr("X * X").value(), catalog);
  ASSERT_TRUE(prog.ok());
  auto poly = CanonicalizeRa(prog.value().ra, *prog.value().dims);
  ASSERT_TRUE(poly.ok());
  ASSERT_EQ(poly.value().monomials.size(), 1u);
  EXPECT_EQ(poly.value().monomials[0].atoms.size(), 2u);
}

TEST(Canonical, IsomorphicMonomialsCombineCoefficients) {
  // 3*X + 5*X -> one monomial with coefficient 8.
  Catalog catalog = TestCatalog();
  auto prog = TranslateLaToRa(ParseExpr("3 * X + 5 * X").value(), catalog);
  ASSERT_TRUE(prog.ok());
  auto poly = CanonicalizeRa(prog.value().ra, *prog.value().dims);
  ASSERT_TRUE(poly.ok());
  ASSERT_EQ(poly.value().monomials.size(), 1u);
  EXPECT_DOUBLE_EQ(poly.value().monomials[0].coeff, 8.0);
}

TEST(Canonical, CancellationDropsMonomial) {
  Catalog catalog = TestCatalog();
  auto prog = TranslateLaToRa(ParseExpr("X - X").value(), catalog);
  ASSERT_TRUE(prog.ok());
  auto poly = CanonicalizeRa(prog.value().ra, *prog.value().dims);
  ASSERT_TRUE(poly.ok());
  EXPECT_TRUE(poly.value().monomials.empty());
  EXPECT_DOUBLE_EQ(poly.value().constant, 0.0);
}

TEST(Canonical, DistributesProducts) {
  // (X + Y) * X -> X^2 + X*Y: two monomials.
  Catalog catalog = TestCatalog();
  auto prog = TranslateLaToRa(ParseExpr("(X + Y) * X").value(), catalog);
  ASSERT_TRUE(prog.ok());
  auto poly = CanonicalizeRa(prog.value().ra, *prog.value().dims);
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly.value().monomials.size(), 2u);
}

TEST(Canonical, PolytermToExprRoundTripsSemantically) {
  Catalog catalog = TestCatalog();
  auto prog =
      TranslateLaToRa(ParseExpr("sum((X - Y) ^ 2)").value(), catalog);
  ASSERT_TRUE(prog.ok());
  auto poly = CanonicalizeRa(prog.value().ra, *prog.value().dims);
  ASSERT_TRUE(poly.ok());
  // Canonical form of sum((X-Y)^2): sum(X^2) - 2 sum(XY) + sum(Y^2).
  EXPECT_EQ(poly.value().monomials.size(), 3u);
  ExprPtr back = PolytermToExpr(poly.value());
  auto repoly = CanonicalizeRa(back, *prog.value().dims);
  ASSERT_TRUE(repoly.ok());
  EXPECT_TRUE(PolytermIsomorphic(poly.value(), repoly.value()));
}

// ---- Equivalence via canonical isomorphism (Theorem 2.3) ----

struct EquivCase {
  const char* a;
  const char* b;
  bool equivalent;
};

class EquivalenceCheck : public ::testing::TestWithParam<EquivCase> {};

TEST_P(EquivalenceCheck, MatchesExpectation) {
  auto result = Equiv(GetParam().a, GetParam().b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value(), GetParam().equivalent)
      << GetParam().a << " vs " << GetParam().b;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, EquivalenceCheck,
    ::testing::Values(
        // The paper's motivating identities.
        EquivCase{"sum((X - U %*% t(V))^2)",
                  "sum(X^2) - 2 * sum(X * (U %*% t(V))) + "
                  "t(U) %*% U * (t(V) %*% V)",
                  true},
        EquivCase{"sum(X * (U %*% t(V)))", "t(U) %*% X %*% V", true},
        EquivCase{"sum((U %*% t(V))^2)", "t(U) %*% U * (t(V) %*% V)", true},
        // Simple algebra.
        EquivCase{"X + Y", "Y + X", true},
        EquivCase{"X - Y", "Y - X", false},
        EquivCase{"2 * X + 3 * X", "5 * X", true},
        EquivCase{"X * (Y + X)", "X * Y + X ^ 2", true},
        EquivCase{"sum(X + Y)", "sum(X) + sum(Y)", true},
        EquivCase{"sum(X)", "sum(Y)", false},
        EquivCase{"t(t(X))", "X", true},
        EquivCase{"t(A %*% B)", "t(B) %*% t(A)", true},
        EquivCase{"sum(A %*% B)", "sum(t(colSums(A)) * rowSums(B))", true},
        EquivCase{"colSums(X * U)", "t(U) %*% X", true},
        EquivCase{"sum(U ^ 2)", "t(U) %*% U", true},
        EquivCase{"sum(X ^ 2)", "sum(X * X)", true},
        EquivCase{"sum(X ^ 2)", "sum(X) ^ 2", false},
        // The appendix's subtlety: these differ in general (only equal on
        // 1x1 inputs), and x,y here are 7x7.
        EquivCase{"sum(x * y)", "sum(x * t(y))", false},
        // sprop is semantically its definition.
        EquivCase{"sprop(U)", "U * (1 - U)", true},
        EquivCase{"sprop(U)", "U - U^2", true},
        EquivCase{"wsloss(X, U, V)", "sum((X - U %*% t(V))^2)", true}));

// ---- Monomial isomorphism directly ----

TEST(Isomorphism, BoundRenamingDetected) {
  // Sum_i x(i,j)*y(i) vs Sum_k x(k,j)*y(k): isomorphic via i -> k.
  Symbol i = Symbol::Intern("mi"), j = Symbol::Intern("mj"),
         k = Symbol::Intern("mk");
  Monomial a;
  a.bound = {i};
  a.atoms = {Expr::Bind({i, j}, Expr::Var("X")),
             Expr::Bind({i}, Expr::Var("U"))};
  a.Normalize();
  Monomial b;
  b.bound = {k};
  b.atoms = {Expr::Bind({k, j}, Expr::Var("X")),
             Expr::Bind({k}, Expr::Var("U"))};
  b.Normalize();
  EXPECT_TRUE(MonomialIsomorphic(a, b));
}

TEST(Isomorphism, FreeAttrsMustMatchExactly) {
  Symbol i = Symbol::Intern("ni"), j = Symbol::Intern("nj"),
         k = Symbol::Intern("nk");
  Monomial a;
  a.atoms = {Expr::Bind({i, j}, Expr::Var("X"))};
  Monomial b;
  b.atoms = {Expr::Bind({i, k}, Expr::Var("X"))};
  EXPECT_FALSE(MonomialIsomorphic(a, b));
}

TEST(Isomorphism, DifferentAtomMultisetsRejected) {
  Symbol i = Symbol::Intern("qi");
  Monomial a;
  a.atoms = {Expr::Bind({i}, Expr::Var("U")), Expr::Bind({i}, Expr::Var("U"))};
  Monomial b;
  b.atoms = {Expr::Bind({i}, Expr::Var("U")), Expr::Bind({i}, Expr::Var("V"))};
  EXPECT_FALSE(MonomialIsomorphic(a, b));
}

// ---- AlphaRepresents over a saturated graph ----

TEST(AlphaRepresents, FindsRenamedAggregates) {
  Catalog catalog = TestCatalog();
  auto dims = std::make_shared<DimEnv>();
  RaContext ctx{&catalog, dims};
  EGraph eg(std::make_unique<RaAnalysis>(ctx));

  auto prog = TranslateLaToRa(ParseExpr("sum(X * Y)").value(), catalog, dims);
  ASSERT_TRUE(prog.ok());
  ClassId root = eg.AddExpr(prog.value().ra);
  eg.Rebuild();

  // Same term with freshly named bound attributes.
  Symbol p = Symbol::Fresh("p"), q = Symbol::Fresh("q");
  dims->Set(p, 10);
  dims->Set(q, 8);
  ExprPtr renamed = Expr::Agg(
      {p, q}, Expr::Join({Expr::Bind({p, q}, Expr::Var("X")),
                          Expr::Bind({p, q}, Expr::Var("Y"))}));
  EXPECT_TRUE(AlphaRepresents(eg, root, renamed));
  // But a transposed second operand is NOT alpha-equal.
  ExprPtr twisted = Expr::Agg(
      {p, q}, Expr::Join({Expr::Bind({p, q}, Expr::Var("X")),
                          Expr::Bind({q, p}, Expr::Var("Y"))}));
  EXPECT_FALSE(AlphaRepresents(eg, root, twisted));
}

}  // namespace
}  // namespace spores
