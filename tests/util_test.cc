// Unit tests for the utility layer: Status, StatusOr, Symbol, Rng.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/symbol.h"

namespace spores {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dims");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dims");
}

TEST(Status, AllConstructorsSetDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Doubled(StatusOr<int> in) {
  SPORES_ASSIGN_OR_RETURN(int x, in);
  return 2 * x;
}

TEST(StatusOr, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(Status::Internal("boom")).ok());
  EXPECT_EQ(Doubled(Status::Internal("boom")).status().code(),
            StatusCode::kInternal);
}

TEST(Symbol, InterningIsIdempotent) {
  Symbol a = Symbol::Intern("alpha");
  Symbol b = Symbol::Intern("alpha");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.str(), "alpha");
}

TEST(Symbol, DistinctStringsDistinctIds) {
  EXPECT_NE(Symbol::Intern("x1"), Symbol::Intern("x2"));
}

TEST(Symbol, EmptySymbolIsDefault) {
  Symbol s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s, Symbol::Intern(""));
}

TEST(Symbol, FreshNeverCollides) {
  std::set<uint32_t> seen;
  seen.insert(Symbol::Intern("f$0").id());  // pre-claim a likely fresh name
  for (int i = 0; i < 100; ++i) {
    Symbol f = Symbol::Fresh("f");
    EXPECT_TRUE(seen.insert(f.id()).second) << f.str();
  }
}

TEST(Symbol, OrderingIsById) {
  Symbol a = Symbol::Intern("ord_a");
  Symbol b = Symbol::Intern("ord_b");
  EXPECT_TRUE(a < b || b < a);
}

TEST(Symbol, ConcurrentInterningIsSafe) {
  std::vector<std::thread> threads;
  std::vector<uint32_t> ids(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back(
        [t, &ids] { ids[t] = Symbol::Intern("shared_name").id(); });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(ids[t], ids[0]);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.Next64(), b.Next64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  std::vector<size_t> s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t x : s) EXPECT_LT(x, 100u);
}

TEST(Rng, SampleRequestingMoreThanAvailable) {
  Rng rng(17);
  std::vector<size_t> s = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

class RngUniformSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngUniformSweep, NoModuloBias) {
  // Chi-square-lite: each bucket within 3x expected deviation.
  uint64_t n = GetParam();
  Rng rng(n * 31 + 1);
  std::vector<int> buckets(n, 0);
  const int draws = 3000 * static_cast<int>(n);
  for (int i = 0; i < draws; ++i) ++buckets[rng.Uniform(n)];
  double expected = static_cast<double>(draws) / static_cast<double>(n);
  for (uint64_t b = 0; b < n; ++b) {
    EXPECT_NEAR(buckets[b], expected, 5 * std::sqrt(expected)) << "bucket "
                                                               << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Buckets, RngUniformSweep,
                         ::testing::Values(2, 3, 7, 10, 16));

}  // namespace
}  // namespace spores
