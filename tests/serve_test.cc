// Tests of the sharded serving layer: canonical-form routing determinism,
// load-aware placement, per-shard plan-cache isolation, batch dedupe
// (structural pre-grouping + canonical form), pool stats aggregation,
// single-session vs sharded plan-cost identity, the shared OptimizerContext,
// and the PR 5 async lifecycle — completion callbacks, cancellation before
// dequeue and mid-saturation, deadline expiry at dequeue, admission
// rejection, degraded-plan provenance, lone-job stealing, and priority
// ordering. serve_test runs under ThreadSanitizer in CI — the pool tests
// double as race detectors for everything the context shares.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>

#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/serve/session_pool.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace spores {
namespace {

std::shared_ptr<const Catalog> SmallFactorizationCatalog() {
  return std::make_shared<Catalog>(
      MakeFactorizationData(250, 200, 6, 0.02, 31).catalog);
}

// A small mixed workload over one catalog: distinct (non-isomorphic)
// queries with structurally shared parts.
std::vector<ExprPtr> DistinctQueries() {
  std::vector<ExprPtr> out;
  for (const Program& prog : {AlsProgram(), PnmfProgram(), IntroProgram()}) {
    out.push_back(prog.expr);
    out.push_back(Expr::Unary("abs", prog.expr));
    out.push_back(Expr::Unary("sign", prog.expr));
  }
  return out;
}

// The shared non-converging blocker workload (src/workloads/programs.h):
// a worker given BlockerConfig's huge budget stays reliably busy on it
// until its clock or cancel token stops it. bench_serving's cancel gate
// uses the same definition, so the non-convergence invariant cannot drift
// between the two files.
ExprPtr HeavyQuery() { return NonConvergingChainExpr(); }

std::shared_ptr<const Catalog> HeavyCatalog() {
  return std::make_shared<Catalog>(NonConvergingCatalog());
}

// Session config whose saturation effectively never finishes on its own:
// the async tests stop it with Cancel() (or leave it to the huge budget).
SessionConfig BlockerConfig() {
  SessionConfig cfg;
  cfg.runner.timeout_seconds = 30.0;
  cfg.runner.max_iterations = 1'000'000;
  cfg.runner.max_nodes = 100'000'000;
  cfg.extraction = ExtractionStrategy::kGreedy;
  return cfg;
}

// Polls pool stats until some worker reports busy (the blocker was
// dequeued and is optimizing). Returns the busy shard, or num_shards on
// timeout.
size_t WaitForBusyShard(const SessionPool& pool, double timeout_seconds) {
  Timer t;
  while (t.Seconds() < timeout_seconds) {
    PoolStats stats = pool.Stats();
    for (size_t s = 0; s < stats.shards.size(); ++s) {
      if (stats.shards[s].busy) return s;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pool.num_shards();
}

// ---- Router ----

TEST(Router, DeterministicAndIsomorphismStable) {
  auto context = std::make_shared<const OptimizerContext>();
  ShardRouter router(8, context);
  Catalog c;
  c.Register("X", 200, 150, 0.1);
  c.Register("Y", 200, 150);

  // Same query, repeated routes: always the same shard (translation draws
  // fresh output attrs each time, the canonical fingerprint absorbs them).
  ExprPtr q = ParseExpr("sum(X + Y)").value();
  RouteDecision first = router.Route(q, c);
  ASSERT_TRUE(first.key.ok());
  EXPECT_FALSE(first.known_class);
  for (int i = 0; i < 3; ++i) {
    RouteDecision again = router.Route(q, c);
    EXPECT_EQ(again.shard, first.shard);
    EXPECT_TRUE(again.known_class);  // pinned by the first route
  }

  // Isomorphic-but-differently-written query: same shard.
  RouteDecision iso = router.Route(ParseExpr("sum(Y + X)").value(), c);
  ASSERT_TRUE(iso.key.ok());
  EXPECT_EQ(iso.shard, first.shard);
  EXPECT_EQ(iso.key.value().fingerprint, first.key.value().fingerprint);

  // A dimension change re-routes on a different fingerprint (usually a
  // different shard; at minimum the fingerprint must differ).
  Catalog c2;
  c2.Register("X", 400, 150, 0.1);
  c2.Register("Y", 400, 150);
  RouteDecision other = router.Route(q, c2);
  ASSERT_TRUE(other.key.ok());
  EXPECT_NE(other.key.value().fingerprint, first.key.value().fingerprint);
}

TEST(Router, SpreadsDistinctQueries) {
  // Not a balance guarantee — just a sanity check that routing is not
  // degenerate (everything on one shard would defeat the pool).
  auto context = std::make_shared<const OptimizerContext>();
  ShardRouter router(4, context);
  auto catalog = SmallFactorizationCatalog();
  std::set<size_t> shards;
  for (const ExprPtr& q : DistinctQueries()) {
    shards.insert(router.Route(q, *catalog).shard);
  }
  EXPECT_GE(shards.size(), 2u);
}

TEST(Router, LoadBiasPlacesNewClassesOnShallowQueuesKeepsAffinity) {
  auto context = std::make_shared<const OptimizerContext>();
  ShardRouter router(4, context);
  Catalog c;
  c.Register("X", 200, 150, 0.1);
  c.Register("Y", 200, 150);

  // New class with shard 3 far shallower than everything else: whatever
  // its hash-home, it must land on shard 3 (home == 3 trivially, else the
  // bias moves it — the slack of 2 is exceeded either way).
  ExprPtr q = ParseExpr("sum(X %*% t(Y))").value();
  RouteDecision first = router.Route(q, c, {9, 9, 9, 0});
  EXPECT_EQ(first.shard, 3u);
  EXPECT_FALSE(first.known_class);

  // Known class: affinity beats load — even with shard 3 now the deepest.
  RouteDecision again = router.Route(q, c, {0, 0, 0, 9});
  EXPECT_TRUE(again.known_class);
  EXPECT_EQ(again.shard, 3u);

  // Near-balanced depths (within the slack): a new class stays on its
  // hash-home, no bias churn.
  RouteDecision balanced =
      router.Route(ParseExpr("sum(X - Y)").value(), c, {1, 1, 2, 1});
  EXPECT_FALSE(balanced.load_biased);
}

// ---- Pool: correctness, isolation, dedupe, stats ----

TEST(Pool, ServesQueriesAndIsolatesShardCaches) {
  auto context = std::make_shared<const OptimizerContext>();
  PoolConfig cfg;
  cfg.num_shards = 4;
  cfg.enable_work_stealing = false;  // keep every job on its home shard
  SessionPool pool(context, cfg);
  auto catalog = SmallFactorizationCatalog();
  std::vector<ExprPtr> queries = DistinctQueries();

  // Expected shard population, from the router directly (this also pins
  // every class in the affinity map, so the submissions below follow it
  // regardless of queue depths).
  std::vector<size_t> routed_to(cfg.num_shards, 0);
  for (const ExprPtr& q : queries) {
    ++routed_to[pool.router().Route(q, *catalog).shard];
  }

  // Submit every query twice: the second submission must be served by the
  // home shard's cache.
  std::vector<ServeFuture<OptimizedPlan>> first, second;
  for (const ExprPtr& q : queries) first.push_back(pool.Submit(q, catalog));
  pool.Drain();
  for (const ExprPtr& q : queries) second.push_back(pool.Submit(q, catalog));
  pool.Drain();

  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(first[i].get().ok()) << i;
    ASSERT_TRUE(second[i].get().ok()) << i;
    EXPECT_FALSE(first[i].get().value().used_fallback) << i;
    EXPECT_TRUE(second[i].get().value().cache_hit) << i;
    EXPECT_EQ(second[i].get().value().plan_cost,
              first[i].get().value().plan_cost)
        << i;
  }

  // Isolation: each shard's cache holds exactly the distinct queries routed
  // to it — no shard ever saw (probed or filled) another shard's keys.
  PoolStats stats = pool.Stats();
  ASSERT_EQ(stats.shards.size(), cfg.num_shards);
  for (size_t s = 0; s < cfg.num_shards; ++s) {
    EXPECT_EQ(stats.shards[s].cache.insertions, routed_to[s]) << s;
    EXPECT_EQ(stats.shards[s].cache_entries, routed_to[s]) << s;
    EXPECT_EQ(stats.shards[s].executed, 2 * routed_to[s]) << s;
    EXPECT_EQ(stats.shards[s].session.cache_hits, routed_to[s]) << s;
  }
  EXPECT_EQ(stats.TotalExecuted(), 2 * queries.size());
  EXPECT_EQ(stats.submitted, 2 * queries.size());
  EXPECT_EQ(stats.completed, 2 * queries.size());
  EXPECT_EQ(stats.TotalSteals(), 0u);
  EXPECT_EQ(stats.TotalRejected(), 0u);
  EXPECT_EQ(stats.TotalExpired(), 0u);
}

TEST(Pool, BatchSubmitDedupesByStructureAndCanonicalForm) {
  auto context = std::make_shared<const OptimizerContext>();
  PoolConfig cfg;
  cfg.num_shards = 2;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 200, 150, 0.1);
  c.Register("Y", 200, 150);
  auto catalog = std::make_shared<const Catalog>(c);

  // Four batch members, two canonical forms: {0,1,3} are one class (an
  // exact resubmission and a commuted rewriting — AC child sorting may
  // even make 3 structurally identical, in which case it pre-groups
  // instead of deduping; either way it rides member 0's job), 2 is
  // distinct.
  std::vector<ServeRequest> batch = {
      {ParseExpr("sum(X + Y)").value(), catalog},
      {ParseExpr("sum(X + Y)").value(), catalog},
      {ParseExpr("sum(X * Y)").value(), catalog},
      {ParseExpr("sum(Y + X)").value(), catalog},
  };
  auto futures = pool.BatchSubmit(batch);
  ASSERT_EQ(futures.size(), batch.size());
  pool.Drain();

  // Duplicates ride one optimization: one job, one shared result.
  ASSERT_TRUE(futures[0].get().ok());
  ASSERT_TRUE(futures[2].get().ok());
  EXPECT_EQ(futures[0].get().value().plan_cost,
            futures[1].get().value().plan_cost);
  EXPECT_EQ(futures[0].get().value().plan_cost,
            futures[3].get().value().plan_cost);
  EXPECT_FALSE(futures[2].get().value().used_fallback);

  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.submitted, 2u);  // 4 members, 2 jobs
  EXPECT_EQ(stats.dedup_hits + stats.pregroup_hits, 2u);
  EXPECT_GE(stats.pregroup_hits, 1u);  // member 1 is an exact resubmission
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.TotalExecuted(), 2u);
}

TEST(Pool, ShardedMatchesSingleSessionPlanCosts) {
  // The hinge guarantee: sharding must not change optimization results.
  // Compare every converged query's cost against a plain single session.
  SessionConfig cfg;
  cfg.extraction = ExtractionStrategy::kGreedy;

  auto catalog = SmallFactorizationCatalog();
  std::vector<ExprPtr> queries = DistinctQueries();

  OptimizerSession single(cfg);
  std::vector<OptimizedPlan> expected;
  for (const ExprPtr& q : queries) {
    expected.push_back(single.Optimize(q, *catalog));
  }

  auto context = std::make_shared<const OptimizerContext>(cfg);
  PoolConfig pool_cfg;
  pool_cfg.num_shards = 4;
  SessionPool pool(context, pool_cfg);
  std::vector<ServeFuture<OptimizedPlan>> futures;
  for (const ExprPtr& q : queries) futures.push_back(pool.Submit(q, catalog));
  pool.Drain();

  size_t compared = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const OptimizedPlan& a = expected[i];
    ASSERT_TRUE(futures[i].get().ok()) << i;
    const OptimizedPlan& b = futures[i].get().value();
    EXPECT_FALSE(a.used_fallback) << i;
    EXPECT_FALSE(b.used_fallback) << i;
    if (a.saturation.stop_reason == StopReason::kSaturated &&
        b.saturation.stop_reason == StopReason::kSaturated) {
      EXPECT_EQ(a.plan_cost, b.plan_cost) << i;
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
}

TEST(Pool, WorkStealingKeepsResultsCorrect) {
  // Stealing is timing-dependent, so this asserts correctness (all results
  // complete and agree with a reference), not that stealing happened; the
  // accounting invariant executed == own + stolen is checked via totals.
  auto context = std::make_shared<const OptimizerContext>();
  PoolConfig cfg;
  cfg.num_shards = 2;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 200, 150, 0.1);
  c.Register("Y", 200, 150);
  auto catalog = std::make_shared<const Catalog>(c);

  ExprPtr q = ParseExpr("sum(X %*% t(Y))").value();
  std::vector<ServeFuture<OptimizedPlan>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(pool.Submit(q, catalog));
  pool.Drain();

  // Cost identity is gated on converged (or cache-served) runs only, like
  // every identity check in this suite: a stolen re-saturation that hits a
  // budget under a loaded TSan runner is trajectory-dependent by nature.
  double cost = 0.0;
  size_t gated = 0;
  for (const auto& f : futures) {
    ASSERT_TRUE(f.get().ok());
    const OptimizedPlan& plan = f.get().value();
    EXPECT_FALSE(plan.used_fallback);
    if (!plan.cache_hit &&
        plan.saturation.stop_reason != StopReason::kSaturated) {
      continue;
    }
    if (gated++ == 0) {
      cost = plan.plan_cost;
    } else {
      EXPECT_EQ(plan.plan_cost, cost);
    }
  }
  EXPECT_GT(gated, 0u);
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.TotalExecuted(), futures.size());
  EXPECT_EQ(stats.completed, futures.size());
}

// ---- Async lifecycle (PR 5) ----

TEST(Async, CallbacksFireOnceInRegistrationOrder) {
  auto context = std::make_shared<const OptimizerContext>();
  PoolConfig cfg;
  cfg.num_shards = 1;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 100, 80, 0.1);
  c.Register("Y", 100, 80);
  auto catalog = std::make_shared<const Catalog>(c);

  std::mutex mu;
  std::vector<int> order;
  auto future = pool.Submit(ParseExpr("sum(X + Y)").value(), catalog);
  // Whether these land before or after completion, each fires exactly once
  // with the published result, in registration order.
  future.then([&](const StatusOr<OptimizedPlan>& r) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(r.ok());
    order.push_back(1);
  });
  future.then([&](const StatusOr<OptimizedPlan>& r) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(r.ok());
    order.push_back(2);
  });
  pool.Drain();
  EXPECT_TRUE(future.ready());
  // Registered after completion: runs inline, still in order.
  future.then([&](const StatusOr<OptimizedPlan>& r) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(r.ok());
    order.push_back(3);
  });
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Async, CancelBeforeDequeueNeverRunsTheJob) {
  auto context = std::make_shared<const OptimizerContext>(BlockerConfig());
  PoolConfig cfg;
  cfg.num_shards = 1;  // one worker: the blocker serializes everything
  SessionPool pool(context, cfg);

  auto blocker = pool.Submit(HeavyQuery(), HeavyCatalog());
  ASSERT_LT(WaitForBusyShard(pool, 10.0), pool.num_shards());

  Catalog c;
  c.Register("X", 100, 80, 0.1);
  c.Register("Y", 100, 80);
  auto catalog = std::make_shared<const Catalog>(c);
  auto queued = pool.Submit(ParseExpr("sum(X + Y)").value(), catalog);
  queued.Cancel();   // still in the queue behind the blocker
  blocker.Cancel();  // stop the blocker so the worker gets to the queue
  pool.Drain();

  EXPECT_EQ(queued.get().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(blocker.get().status().code(), StatusCode::kCancelled);
  PoolStats stats = pool.Stats();
  // Only the blocker ever entered Optimize; the cancelled job was
  // short-circuited at dequeue.
  EXPECT_EQ(stats.shards[0].session.queries, 1u);
  EXPECT_EQ(stats.shards[0].executed, 1u);
  EXPECT_EQ(stats.TotalCancelled(), 1u);
}

TEST(Async, CancelMidSaturationStopsTheRunnerViaToken) {
  auto context = std::make_shared<const OptimizerContext>(BlockerConfig());
  PoolConfig cfg;
  cfg.num_shards = 1;
  SessionPool pool(context, cfg);

  auto future = pool.Submit(HeavyQuery(), HeavyCatalog());
  ASSERT_LT(WaitForBusyShard(pool, 10.0), pool.num_shards());

  Timer since_cancel;
  future.Cancel();
  // The 30s saturation budget must NOT be what ends this: the token is
  // checked at the runner's clock checkpoints, so completion lands within
  // seconds even under TSan (observed ~2ms; 5s leaves loaded-CI slack
  // while still failing if the runner ignored the token).
  ASSERT_TRUE(future.WaitFor(15.0));
  EXPECT_LT(since_cancel.Seconds(), 5.0);
  EXPECT_EQ(future.get().status().code(), StatusCode::kCancelled);
  // The future resolves before its worker records counters; Drain orders
  // the snapshot after every stat update.
  pool.Drain();
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.shards[0].session.queries, 1u);  // it did enter Optimize
}

TEST(Async, ExpiredJobShortCircuitsAtDequeueWithoutOptimizing) {
  auto context = std::make_shared<const OptimizerContext>();
  PoolConfig cfg;
  cfg.num_shards = 2;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 100, 80, 0.1);
  c.Register("Y", 100, 80);
  auto catalog = std::make_shared<const Catalog>(c);

  ServeRequest request;
  request.expr = ParseExpr("sum(X + Y)").value();
  request.catalog = catalog;
  request.deadline = Deadline::AfterSeconds(-1.0);  // expired on arrival
  auto future = pool.SubmitAsync(request);
  pool.Drain();

  EXPECT_EQ(future.get().status().code(), StatusCode::kDeadlineExceeded);
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.TotalExpired(), 1u);
  EXPECT_EQ(stats.TotalExecuted(), 0u);
  for (const ShardStats& s : stats.shards) {
    EXPECT_EQ(s.session.queries, 0u);  // Optimize never ran anywhere
  }
}

TEST(Async, AdmissionRejectsUnderSyntheticBacklog) {
  auto context = std::make_shared<const OptimizerContext>(BlockerConfig());
  PoolConfig cfg;
  cfg.num_shards = 1;
  cfg.admission.max_queue_depth = 2;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 100, 80, 0.1);
  c.Register("Y", 100, 80);
  auto catalog = std::make_shared<const Catalog>(c);

  auto blocker = pool.Submit(HeavyQuery(), HeavyCatalog());
  ASSERT_LT(WaitForBusyShard(pool, 10.0), pool.num_shards());

  // The worker is pinned on the blocker, so these sit in the queue: two
  // admitted, the third bounced (depth 2 >= max_queue_depth).
  auto ok1 = pool.Submit(ParseExpr("sum(X + Y)").value(), catalog);
  auto ok2 = pool.Submit(ParseExpr("sum(X * Y)").value(), catalog);
  auto bounced = pool.Submit(ParseExpr("sum(X - Y)").value(), catalog);
  EXPECT_TRUE(bounced.ready());  // rejected synchronously, never queued
  EXPECT_EQ(bounced.get().status().code(), StatusCode::kResourceExhausted);

  blocker.Cancel();
  pool.Drain();
  EXPECT_TRUE(ok1.get().ok());
  EXPECT_TRUE(ok2.get().ok());
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.TotalRejected(), 1u);
  EXPECT_EQ(stats.submitted, 3u);  // blocker + two admitted
  EXPECT_EQ(stats.completed, 3u);
}

TEST(Async, AgeAdmissionRejectsOnlyWhenTheQueueIsStalled) {
  auto context = std::make_shared<const OptimizerContext>(BlockerConfig());
  PoolConfig cfg;
  cfg.num_shards = 1;
  cfg.admission.max_queue_age_seconds = 0.05;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 100, 80, 0.1);
  c.Register("Y", 100, 80);
  auto catalog = std::make_shared<const Catalog>(c);

  auto blocker = pool.Submit(HeavyQuery(), HeavyCatalog());
  ASSERT_LT(WaitForBusyShard(pool, 10.0), pool.num_shards());

  // Queue just started backing up: admitted (no stall yet).
  auto ok1 = pool.Submit(ParseExpr("sum(X + Y)").value(), catalog);
  EXPECT_FALSE(ok1.ready());
  // Let the backlog sit: the worker is pinned, so the queue has jobs
  // waiting and no dequeue — a stall well past the 50ms threshold.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto bounced = pool.Submit(ParseExpr("sum(X * Y)").value(), catalog);
  EXPECT_TRUE(bounced.ready());
  EXPECT_EQ(bounced.get().status().code(), StatusCode::kResourceExhausted);

  blocker.Cancel();
  pool.Drain();
  EXPECT_TRUE(ok1.get().ok());
  EXPECT_EQ(pool.Stats().TotalRejected(), 1u);
}

TEST(Async, PriorityOrdersTheQueue) {
  auto context = std::make_shared<const OptimizerContext>(BlockerConfig());
  PoolConfig cfg;
  cfg.num_shards = 1;
  cfg.enable_work_stealing = false;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 100, 80, 0.1);
  c.Register("Y", 100, 80);
  auto catalog = std::make_shared<const Catalog>(c);

  auto blocker = pool.Submit(HeavyQuery(), HeavyCatalog());
  ASSERT_LT(WaitForBusyShard(pool, 10.0), pool.num_shards());

  // Queued while the worker is pinned, in worst-first order; the worker
  // must pop them best-priority-first once the blocker is cancelled.
  std::mutex mu;
  std::vector<int> completion_order;
  auto record = [&](int tag) {
    return [&, tag](const StatusOr<OptimizedPlan>& r) {
      std::lock_guard<std::mutex> lock(mu);
      EXPECT_TRUE(r.ok());
      completion_order.push_back(tag);
    };
  };
  ServeRequest low{ParseExpr("sum(X + Y)").value(), catalog, Deadline(),
                   kPriorityLow};
  ServeRequest normal{ParseExpr("sum(X * Y)").value(), catalog, Deadline(),
                      kPriorityNormal};
  ServeRequest high{ParseExpr("sum(X - Y)").value(), catalog, Deadline(),
                    kPriorityHigh};
  auto f_low = pool.SubmitAsync(low);
  auto f_normal = pool.SubmitAsync(normal);
  auto f_high = pool.SubmitAsync(high);
  f_low.then(record(3));
  f_normal.then(record(2));
  f_high.then(record(1));

  blocker.Cancel();
  pool.Drain();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(completion_order, (std::vector<int>{1, 2, 3}));
}

TEST(Async, LoneQueuedJobIsStolenFromALongBusyWorker) {
  auto context = std::make_shared<const OptimizerContext>(BlockerConfig());
  PoolConfig cfg;
  cfg.num_shards = 2;
  cfg.lone_steal_busy_seconds = 0.05;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 100, 80, 0.1);
  c.Register("Y", 100, 80);
  auto catalog = std::make_shared<const Catalog>(c);

  // Pin the blocker's shard, then find a cheap query routed to the SAME
  // shard: it will sit alone in that queue while the other worker idles —
  // exactly the case the depth>=2 floor used to strand.
  size_t home = pool.router().Route(HeavyQuery(), *HeavyCatalog()).shard;
  const char* candidates[] = {"sum(X + Y)", "sum(X * Y)", "sum(X - Y)",
                              "sum(X %*% t(Y))", "sum(abs(X + Y))",
                              "sum(sign(X) + Y)"};
  ExprPtr lone;
  for (const char* text : candidates) {
    ExprPtr q = ParseExpr(text).value();
    if (pool.router().Route(q, *catalog).shard == home) {
      lone = q;
      break;
    }
  }
  ASSERT_TRUE(lone != nullptr) << "no candidate routed to the blocker shard";

  auto blocker = pool.Submit(HeavyQuery(), HeavyCatalog());
  ASSERT_LT(WaitForBusyShard(pool, 10.0), pool.num_shards());
  auto future = pool.Submit(lone, catalog);

  // The idle worker must take it once the home worker has been busy past
  // the threshold — long before the blocker's 30s budget.
  ASSERT_TRUE(future.WaitFor(15.0));
  EXPECT_TRUE(future.get().ok());
  blocker.Cancel();
  pool.Drain();  // orders the stats snapshot after the thief's bookkeeping
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.TotalSteals(), 1u);
}

TEST(Async, CancellingOneDedupedMemberDoesNotCancelTheOthers) {
  auto context = std::make_shared<const OptimizerContext>(BlockerConfig());
  PoolConfig cfg;
  cfg.num_shards = 1;  // the blocker serializes: the batch stays queued
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 100, 80, 0.1);
  c.Register("Y", 100, 80);
  auto catalog = std::make_shared<const Catalog>(c);

  auto blocker = pool.Submit(HeavyQuery(), HeavyCatalog());
  ASSERT_LT(WaitForBusyShard(pool, 10.0), pool.num_shards());

  // Two members, one canonical form -> one shared job.
  std::vector<ServeRequest> batch = {
      {ParseExpr("sum(X + Y)").value(), catalog},
      {ParseExpr("sum(X + Y)").value(), catalog},
  };
  auto futures = pool.BatchSubmit(batch);
  // Member 1 gives up: ITS handle completes kCancelled immediately, but
  // the shared job keeps running for member 0.
  futures[1].Cancel();
  EXPECT_TRUE(futures[1].ready());
  EXPECT_EQ(futures[1].get().status().code(), StatusCode::kCancelled);

  blocker.Cancel();
  pool.Drain();
  ASSERT_TRUE(futures[0].get().ok());
  EXPECT_FALSE(futures[0].get().value().used_fallback);
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.TotalCancelled(), 0u);  // the shared job was never cancelled

  // When EVERY member votes, the job itself is cancelled (here: before
  // dequeue, behind a fresh blocker).
  auto blocker2 = pool.Submit(HeavyQuery(), HeavyCatalog());
  ASSERT_LT(WaitForBusyShard(pool, 10.0), pool.num_shards());
  auto futures2 = pool.BatchSubmit(batch);  // cache would serve it, but...
  futures2[0].Cancel();
  futures2[1].Cancel();
  blocker2.Cancel();
  pool.Drain();
  EXPECT_EQ(futures2[0].get().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(futures2[1].get().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(pool.Stats().TotalCancelled(), 1u);  // job disposed at dequeue
}

TEST(Async, DedupedBatchRunsUnderTheLoosestMemberContract) {
  // A member must never inherit a tighter deadline (or worse priority)
  // from whoever happened to be first in its dedupe group: the shared job
  // takes the loosest contract, so an unconstrained member always gets
  // its result even when its twin's deadline already expired on arrival.
  auto context = std::make_shared<const OptimizerContext>();
  PoolConfig cfg;
  cfg.num_shards = 1;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 100, 80, 0.1);
  c.Register("Y", 100, 80);
  auto catalog = std::make_shared<const Catalog>(c);

  std::vector<ServeRequest> batch = {
      {ParseExpr("sum(X + Y)").value(), catalog, Deadline::AfterSeconds(-1.0),
       kPriorityLow},
      {ParseExpr("sum(X + Y)").value(), catalog, Deadline(), kPriorityNormal},
  };
  auto futures = pool.BatchSubmit(batch);
  pool.Drain();
  // Merged contract: no deadline (member 1), so the job ran — BOTH members
  // get the plan (dedupe may improve a member's service level, not fail it).
  ASSERT_TRUE(futures[0].get().ok());
  ASSERT_TRUE(futures[1].get().ok());
  EXPECT_EQ(pool.Stats().TotalExpired(), 0u);
}

TEST(Async, DeadlineDegradesIlpToGreedyWithProvenanceAndNoCacheFill) {
  // Session-level: the budget threads through QueryOptions into the
  // stages. An enormous ilp_min_remaining_seconds makes ANY deadline
  // degrade extraction deterministically (no timing sensitivity).
  SessionConfig cfg;
  cfg.extraction = ExtractionStrategy::kIlp;
  cfg.ilp_min_remaining_seconds = 1e6;
  OptimizerSession session(cfg);
  Catalog c;
  c.Register("X", 120, 90, 0.1);
  c.Register("Y", 120, 90);
  ExprPtr q = ParseExpr("sum(X %*% t(Y))").value();

  QueryOptions with_deadline;
  with_deadline.budget.deadline = Deadline::AfterSeconds(3600.0);
  OptimizedPlan degraded = session.Optimize(q, c, with_deadline);
  EXPECT_FALSE(degraded.used_fallback);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_NE(degraded.degrade_reason.find("greedy"), std::string::npos);
  ASSERT_FALSE(degraded.alternatives.empty());
  EXPECT_EQ(degraded.alternatives[0].strategy, ExtractionStrategy::kGreedy);
  // A degraded plan must not poison the cache for unconstrained queries.
  EXPECT_EQ(session.PlanCacheSize(), 0u);

  OptimizedPlan full = session.Optimize(q, c);
  EXPECT_FALSE(full.degraded);
  EXPECT_FALSE(full.cache_hit);  // the degraded run cached nothing
  EXPECT_EQ(session.PlanCacheSize(), 1u);
  // Greedy (degraded) can never beat the ILP plan it stands in for.
  EXPECT_GE(degraded.plan_cost, full.plan_cost);
}

TEST(Async, ExpiredDeadlineInsideSessionFallsBackNotCrashes) {
  // Defense in depth below the pool's dequeue check: a deadline that
  // expires after translation falls back to the input with provenance.
  OptimizerSession session;
  Catalog c;
  c.Register("X", 100, 80, 0.1);
  c.Register("Y", 100, 80);
  QueryOptions options;
  options.budget.deadline = Deadline::AfterSeconds(-1.0);
  OptimizedPlan plan =
      session.Optimize(ParseExpr("sum(X + Y)").value(), c, options);
  EXPECT_TRUE(plan.used_fallback);
  EXPECT_NE(plan.fallback_reason.find("DeadlineExceeded"), std::string::npos);
  EXPECT_EQ(session.stats().saturations, 0u);
}

// ---- Shared context across sessions ----

TEST(Context, SessionsOverOneContextAgreeWithPrivateSession) {
  SessionConfig cfg;
  cfg.extraction = ExtractionStrategy::kGreedy;
  auto context = std::make_shared<const OptimizerContext>(cfg);
  OptimizerSession a(context);
  OptimizerSession b(context);
  OptimizerSession lone(cfg);

  auto catalog = SmallFactorizationCatalog();
  for (const Program& prog : {AlsProgram(), PnmfProgram()}) {
    OptimizedPlan pa = a.Optimize(prog.expr, *catalog);
    OptimizedPlan pb = b.Optimize(prog.expr, *catalog);
    OptimizedPlan pl = lone.Optimize(prog.expr, *catalog);
    ASSERT_FALSE(pa.used_fallback || pb.used_fallback || pl.used_fallback);
    if (pa.saturation.stop_reason == StopReason::kSaturated &&
        pb.saturation.stop_reason == StopReason::kSaturated &&
        pl.saturation.stop_reason == StopReason::kSaturated) {
      EXPECT_EQ(pa.plan_cost, pb.plan_cost) << prog.name;
      EXPECT_EQ(pa.plan_cost, pl.plan_cost) << prog.name;
    }
  }
  // The sessions share one compiled context but keep private caches.
  EXPECT_EQ(a.context().get(), b.context().get());
  EXPECT_NE(a.context().get(), lone.context().get());
  EXPECT_EQ(a.PlanCacheSize(), 2u);
  EXPECT_EQ(b.PlanCacheSize(), 2u);
}

TEST(Context, PreserveSharedEgraphShieldsWarmGraphFromForeignCatalogs) {
  // The option stolen jobs run under: a foreign-catalog query must not
  // reset the shard's long-lived graph, while a matching catalog may still
  // resume on it.
  OptimizerSession session;
  WorkloadData fac = MakeFactorizationData(250, 200, 6, 0.02, 7);
  WorkloadData reg = MakeRegressionData(200, 100, 0.05, 7);
  QueryOptions preserve;
  preserve.preserve_shared_egraph = true;

  ASSERT_FALSE(session.Optimize(AlsProgram().expr, fac.catalog).used_fallback);
  const EGraph* warm = session.shared_egraph();
  ASSERT_NE(warm, nullptr);

  // Foreign catalog under preserve: throwaway graph, shared graph intact.
  OptimizedPlan foreign =
      session.Optimize(GlmProgram().expr, reg.catalog, preserve);
  EXPECT_FALSE(foreign.used_fallback);
  EXPECT_EQ(session.shared_egraph(), warm);
  EXPECT_EQ(session.stats().graph_resets, 0u);

  // Matching catalog under preserve: still resumes on the warm graph.
  OptimizedPlan same =
      session.Optimize(PnmfProgram().expr, fac.catalog, preserve);
  EXPECT_FALSE(same.used_fallback);
  EXPECT_EQ(session.shared_egraph(), warm);
  EXPECT_EQ(session.stats().graph_reuses, 1u);

  // Without preserve, a foreign-catalog saturation resets as usual (a
  // fresh query — the GLM plan above is already cached and would hit).
  session.Optimize(SvmProgram().expr, reg.catalog);
  EXPECT_EQ(session.stats().graph_resets, 1u);
}

TEST(Context, PrecomputedKeyServesWarmHitWithoutTranslation) {
  auto context = std::make_shared<const OptimizerContext>();
  OptimizerSession session(context);
  ShardRouter router(1, context);
  Catalog c;
  c.Register("X", 200, 150, 0.1);
  c.Register("Y", 200, 150);
  ExprPtr q = ParseExpr("sum(X + Y)").value();

  RouteDecision route = router.Route(q, c);
  ASSERT_TRUE(route.key.ok());
  QueryOptions options;
  options.key = &route.key.value();

  OptimizedPlan cold = session.Optimize(q, c, options);
  EXPECT_FALSE(cold.cache_hit);
  OptimizedPlan warm = session.Optimize(q, c, options);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.plan_cost, cold.plan_cost);
  // The precomputed-key hit skips translation entirely.
  EXPECT_EQ(warm.timings.translate_seconds, 0.0);

  // Cache bypass: neither probes nor fills.
  QueryOptions bypass;
  bypass.use_plan_cache = false;
  OptimizedPlan uncached = session.Optimize(q, c, bypass);
  EXPECT_FALSE(uncached.cache_hit);
  EXPECT_EQ(session.PlanCacheSize(), 1u);
  EXPECT_EQ(uncached.plan_cost, cold.plan_cost);
}

// ---- Feedback: calibration, drift re-extraction, background upgrades ----

TEST(Feedback, DriftReextractsWarmGraphWithoutResaturating) {
  auto context = std::make_shared<const OptimizerContext>();
  PoolConfig cfg;
  cfg.num_shards = 1;
  cfg.enable_work_stealing = false;
  SessionPool pool(context, cfg);
  auto catalog = SmallFactorizationCatalog();
  ExprPtr q = AlsProgram().expr;

  auto plan = pool.Submit(q, catalog).get();
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan.value().cache_fingerprint.empty());
  pool.Drain();
  const size_t saturations_before = pool.Stats().shards[0].session.saturations;

  // Warm the calibration baseline past min_samples with fingerprint-less
  // feedback: pure calibration, no drift check can fire yet.
  ExecutionFeedback warmup;
  for (int i = 0; i < 4; ++i) {
    warmup.samples.push_back({"add", 100, 100, -1, 1.0});
  }
  pool.RecordExecution(warmup);
  pool.Drain();

  // Report the cached plan as running absurdly FASTER than predicted: the
  // observed/predicted ratio collapses below 1/drift_threshold no matter
  // what the model predicted (predicted cost is always >= 1 here), so the
  // shard invalidates the entry and re-extracts against its warm e-graph.
  ExecutionFeedback drifted;
  drifted.fingerprint = plan.value().cache_fingerprint;
  drifted.predicted_cost = plan.value().plan_cost;
  // Three samples: enough for the contract cell to clear min_samples and
  // publish its (clamped) multiplier — a real recalibration, not just drift.
  for (int i = 0; i < 3; ++i) {
    drifted.samples.push_back({"mmul", 1, 1, -1, 1e-9});
  }
  pool.RecordExecution(drifted);
  pool.Drain();

  PoolStats stats = pool.Stats();
  EXPECT_GE(stats.TotalRecalibrations(), 1u);
  EXPECT_EQ(stats.TotalDriftInvalidations(), 1u);
  EXPECT_EQ(stats.TotalReExtractions(), 1u);
  // The hard invariant: drift re-optimization re-EXTRACTS on the warm
  // graph — it never re-saturates.
  EXPECT_EQ(stats.shards[0].session.saturations, saturations_before);

  // The replacement plan took the cache slot; the query still serves warm.
  auto again = pool.Submit(q, catalog).get();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().cache_hit);
}

TEST(Feedback, ShallowQueueUpgradesDegradedPlanToFullIlp) {
  // Deadline + enormous ilp_min_remaining_seconds degrades extraction to
  // greedy deterministically (same trick as the Async deadline test). The
  // degraded plan is never cached — but it is queued for upgrade, and the
  // worker polishes it to full ILP as soon as its queue runs shallow.
  SessionConfig session_cfg;
  session_cfg.extraction = ExtractionStrategy::kIlp;
  session_cfg.ilp_min_remaining_seconds = 1e6;
  auto context = std::make_shared<const OptimizerContext>(session_cfg);
  PoolConfig cfg;
  cfg.num_shards = 1;
  cfg.enable_work_stealing = false;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 120, 90, 0.1);
  c.Register("Y", 120, 90);
  auto catalog = std::make_shared<const Catalog>(c);
  ExprPtr q = ParseExpr("sum(X %*% t(Y))").value();

  ServeRequest request{q, catalog, Deadline::AfterSeconds(3600.0)};
  auto degraded = pool.SubmitAsync(request).get();
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.value().degraded);

  // The upgrade happens off the serving path; poll for it.
  Timer t;
  while (pool.Stats().TotalPlanUpgrades() == 0 && t.Seconds() < 20.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  PoolStats stats = pool.Stats();
  ASSERT_EQ(stats.TotalPlanUpgrades(), 1u);

  // The upgraded full-ILP plan now serves from the cache: warm hit, no
  // degradation provenance, and never costlier than the greedy stand-in.
  auto warm = pool.Submit(q, catalog).get();
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().cache_hit);
  EXPECT_FALSE(warm.value().degraded);
  EXPECT_LE(warm.value().plan_cost, degraded.value().plan_cost);
}

}  // namespace
}  // namespace spores
