// Tests of the sharded serving layer: canonical-form routing determinism,
// per-shard plan-cache isolation, batch dedupe, pool stats aggregation,
// single-session vs sharded plan-cost identity, and the shared
// OptimizerContext (two sessions over one context agree with a private
// session). serve_test runs under ThreadSanitizer in CI — the pool tests
// double as race detectors for everything the context shares.
#include <gtest/gtest.h>

#include <set>

#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/serve/session_pool.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace spores {
namespace {

std::shared_ptr<const Catalog> SmallFactorizationCatalog() {
  return std::make_shared<Catalog>(
      MakeFactorizationData(250, 200, 6, 0.02, 31).catalog);
}

// A small mixed workload over one catalog: distinct (non-isomorphic)
// queries with structurally shared parts.
std::vector<ExprPtr> DistinctQueries() {
  std::vector<ExprPtr> out;
  for (const Program& prog : {AlsProgram(), PnmfProgram(), IntroProgram()}) {
    out.push_back(prog.expr);
    out.push_back(Expr::Unary("abs", prog.expr));
    out.push_back(Expr::Unary("sign", prog.expr));
  }
  return out;
}

// ---- Router ----

TEST(Router, DeterministicAndIsomorphismStable) {
  auto context = std::make_shared<const OptimizerContext>();
  ShardRouter router(8, context);
  Catalog c;
  c.Register("X", 200, 150, 0.1);
  c.Register("Y", 200, 150);

  // Same query, repeated routes: always the same shard (translation draws
  // fresh output attrs each time, the canonical fingerprint absorbs them).
  ExprPtr q = ParseExpr("sum(X + Y)").value();
  RouteDecision first = router.Route(q, c);
  ASSERT_TRUE(first.key.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(router.Route(q, c).shard, first.shard);
  }

  // Isomorphic-but-differently-written query: same shard.
  RouteDecision iso = router.Route(ParseExpr("sum(Y + X)").value(), c);
  ASSERT_TRUE(iso.key.ok());
  EXPECT_EQ(iso.shard, first.shard);
  EXPECT_EQ(iso.key.value().fingerprint, first.key.value().fingerprint);

  // A dimension change re-routes on a different fingerprint (usually a
  // different shard; at minimum the fingerprint must differ).
  Catalog c2;
  c2.Register("X", 400, 150, 0.1);
  c2.Register("Y", 400, 150);
  RouteDecision other = router.Route(q, c2);
  ASSERT_TRUE(other.key.ok());
  EXPECT_NE(other.key.value().fingerprint, first.key.value().fingerprint);
}

TEST(Router, SpreadsDistinctQueries) {
  // Not a balance guarantee — just a sanity check that routing is not
  // degenerate (everything on one shard would defeat the pool).
  auto context = std::make_shared<const OptimizerContext>();
  ShardRouter router(4, context);
  auto catalog = SmallFactorizationCatalog();
  std::set<size_t> shards;
  for (const ExprPtr& q : DistinctQueries()) {
    shards.insert(router.Route(q, *catalog).shard);
  }
  EXPECT_GE(shards.size(), 2u);
}

// ---- Pool: correctness, isolation, dedupe, stats ----

TEST(Pool, ServesQueriesAndIsolatesShardCaches) {
  auto context = std::make_shared<const OptimizerContext>();
  PoolConfig cfg;
  cfg.num_shards = 4;
  cfg.enable_work_stealing = false;  // keep every job on its home shard
  SessionPool pool(context, cfg);
  auto catalog = SmallFactorizationCatalog();
  std::vector<ExprPtr> queries = DistinctQueries();

  // Expected shard population, from the router directly.
  std::vector<size_t> routed_to(cfg.num_shards, 0);
  for (const ExprPtr& q : queries) {
    ++routed_to[pool.router().Route(q, *catalog).shard];
  }

  // Submit every query twice: the second submission must be served by the
  // home shard's cache.
  std::vector<std::shared_future<OptimizedPlan>> first, second;
  for (const ExprPtr& q : queries) first.push_back(pool.Submit(q, catalog));
  pool.Drain();
  for (const ExprPtr& q : queries) second.push_back(pool.Submit(q, catalog));
  pool.Drain();

  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_FALSE(first[i].get().used_fallback) << i;
    EXPECT_TRUE(second[i].get().cache_hit) << i;
    EXPECT_EQ(second[i].get().plan_cost, first[i].get().plan_cost) << i;
  }

  // Isolation: each shard's cache holds exactly the distinct queries routed
  // to it — no shard ever saw (probed or filled) another shard's keys.
  PoolStats stats = pool.Stats();
  ASSERT_EQ(stats.shards.size(), cfg.num_shards);
  for (size_t s = 0; s < cfg.num_shards; ++s) {
    EXPECT_EQ(stats.shards[s].cache.insertions, routed_to[s]) << s;
    EXPECT_EQ(stats.shards[s].cache_entries, routed_to[s]) << s;
    EXPECT_EQ(stats.shards[s].executed, 2 * routed_to[s]) << s;
    EXPECT_EQ(stats.shards[s].session.cache_hits, routed_to[s]) << s;
  }
  EXPECT_EQ(stats.TotalExecuted(), 2 * queries.size());
  EXPECT_EQ(stats.submitted, 2 * queries.size());
  EXPECT_EQ(stats.completed, 2 * queries.size());
  EXPECT_EQ(stats.TotalSteals(), 0u);
}

TEST(Pool, BatchSubmitDedupesByCanonicalForm) {
  auto context = std::make_shared<const OptimizerContext>();
  PoolConfig cfg;
  cfg.num_shards = 2;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 200, 150, 0.1);
  c.Register("Y", 200, 150);
  auto catalog = std::make_shared<const Catalog>(c);

  // Four batch members, two canonical forms: {0,1,3} are isomorphic
  // (resubmission and commuted rewriting), 2 is distinct.
  std::vector<ServeRequest> batch = {
      {ParseExpr("sum(X + Y)").value(), catalog},
      {ParseExpr("sum(X + Y)").value(), catalog},
      {ParseExpr("sum(X * Y)").value(), catalog},
      {ParseExpr("sum(Y + X)").value(), catalog},
  };
  auto futures = pool.BatchSubmit(batch);
  ASSERT_EQ(futures.size(), batch.size());
  pool.Drain();

  // Duplicates ride one optimization: one job, one shared result.
  EXPECT_EQ(futures[0].get().plan_cost, futures[1].get().plan_cost);
  EXPECT_EQ(futures[0].get().plan_cost, futures[3].get().plan_cost);
  EXPECT_FALSE(futures[2].get().used_fallback);

  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.submitted, 2u);   // 4 members, 2 jobs
  EXPECT_EQ(stats.dedup_hits, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.TotalExecuted(), 2u);
}

TEST(Pool, ShardedMatchesSingleSessionPlanCosts) {
  // The hinge guarantee: sharding must not change optimization results.
  // Compare every converged query's cost against a plain single session.
  SessionConfig cfg;
  cfg.extraction = ExtractionStrategy::kGreedy;

  auto catalog = SmallFactorizationCatalog();
  std::vector<ExprPtr> queries = DistinctQueries();

  OptimizerSession single(cfg);
  std::vector<OptimizedPlan> expected;
  for (const ExprPtr& q : queries) {
    expected.push_back(single.Optimize(q, *catalog));
  }

  auto context = std::make_shared<const OptimizerContext>(cfg);
  PoolConfig pool_cfg;
  pool_cfg.num_shards = 4;
  SessionPool pool(context, pool_cfg);
  std::vector<std::shared_future<OptimizedPlan>> futures;
  for (const ExprPtr& q : queries) futures.push_back(pool.Submit(q, catalog));
  pool.Drain();

  size_t compared = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const OptimizedPlan& a = expected[i];
    const OptimizedPlan& b = futures[i].get();
    EXPECT_FALSE(a.used_fallback) << i;
    EXPECT_FALSE(b.used_fallback) << i;
    if (a.saturation.stop_reason == StopReason::kSaturated &&
        b.saturation.stop_reason == StopReason::kSaturated) {
      EXPECT_EQ(a.plan_cost, b.plan_cost) << i;
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
}

TEST(Pool, WorkStealingKeepsResultsCorrect) {
  // Stealing is timing-dependent, so this asserts correctness (all results
  // complete and agree with a reference), not that stealing happened; the
  // accounting invariant executed == own + stolen is checked via totals.
  auto context = std::make_shared<const OptimizerContext>();
  PoolConfig cfg;
  cfg.num_shards = 2;
  SessionPool pool(context, cfg);
  Catalog c;
  c.Register("X", 200, 150, 0.1);
  c.Register("Y", 200, 150);
  auto catalog = std::make_shared<const Catalog>(c);

  ExprPtr q = ParseExpr("sum(X %*% t(Y))").value();
  std::vector<std::shared_future<OptimizedPlan>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(pool.Submit(q, catalog));
  pool.Drain();

  // Cost identity is gated on converged (or cache-served) runs only, like
  // every identity check in this suite: a stolen re-saturation that hits a
  // budget under a loaded TSan runner is trajectory-dependent by nature.
  double cost = 0.0;
  size_t gated = 0;
  for (const auto& f : futures) {
    EXPECT_FALSE(f.get().used_fallback);
    if (!f.get().cache_hit &&
        f.get().saturation.stop_reason != StopReason::kSaturated) {
      continue;
    }
    if (gated++ == 0) {
      cost = f.get().plan_cost;
    } else {
      EXPECT_EQ(f.get().plan_cost, cost);
    }
  }
  EXPECT_GT(gated, 0u);
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.TotalExecuted(), futures.size());
  EXPECT_EQ(stats.completed, futures.size());
}

// ---- Shared context across sessions ----

TEST(Context, SessionsOverOneContextAgreeWithPrivateSession) {
  SessionConfig cfg;
  cfg.extraction = ExtractionStrategy::kGreedy;
  auto context = std::make_shared<const OptimizerContext>(cfg);
  OptimizerSession a(context);
  OptimizerSession b(context);
  OptimizerSession lone(cfg);

  auto catalog = SmallFactorizationCatalog();
  for (const Program& prog : {AlsProgram(), PnmfProgram()}) {
    OptimizedPlan pa = a.Optimize(prog.expr, *catalog);
    OptimizedPlan pb = b.Optimize(prog.expr, *catalog);
    OptimizedPlan pl = lone.Optimize(prog.expr, *catalog);
    ASSERT_FALSE(pa.used_fallback || pb.used_fallback || pl.used_fallback);
    if (pa.saturation.stop_reason == StopReason::kSaturated &&
        pb.saturation.stop_reason == StopReason::kSaturated &&
        pl.saturation.stop_reason == StopReason::kSaturated) {
      EXPECT_EQ(pa.plan_cost, pb.plan_cost) << prog.name;
      EXPECT_EQ(pa.plan_cost, pl.plan_cost) << prog.name;
    }
  }
  // The sessions share one compiled context but keep private caches.
  EXPECT_EQ(a.context().get(), b.context().get());
  EXPECT_NE(a.context().get(), lone.context().get());
  EXPECT_EQ(a.PlanCacheSize(), 2u);
  EXPECT_EQ(b.PlanCacheSize(), 2u);
}

TEST(Context, PreserveSharedEgraphShieldsWarmGraphFromForeignCatalogs) {
  // The option stolen jobs run under: a foreign-catalog query must not
  // reset the shard's long-lived graph, while a matching catalog may still
  // resume on it.
  OptimizerSession session;
  WorkloadData fac = MakeFactorizationData(250, 200, 6, 0.02, 7);
  WorkloadData reg = MakeRegressionData(200, 100, 0.05, 7);
  QueryOptions preserve;
  preserve.preserve_shared_egraph = true;

  ASSERT_FALSE(session.Optimize(AlsProgram().expr, fac.catalog).used_fallback);
  const EGraph* warm = session.shared_egraph();
  ASSERT_NE(warm, nullptr);

  // Foreign catalog under preserve: throwaway graph, shared graph intact.
  OptimizedPlan foreign =
      session.Optimize(GlmProgram().expr, reg.catalog, preserve);
  EXPECT_FALSE(foreign.used_fallback);
  EXPECT_EQ(session.shared_egraph(), warm);
  EXPECT_EQ(session.stats().graph_resets, 0u);

  // Matching catalog under preserve: still resumes on the warm graph.
  OptimizedPlan same =
      session.Optimize(PnmfProgram().expr, fac.catalog, preserve);
  EXPECT_FALSE(same.used_fallback);
  EXPECT_EQ(session.shared_egraph(), warm);
  EXPECT_EQ(session.stats().graph_reuses, 1u);

  // Without preserve, a foreign-catalog saturation resets as usual (a
  // fresh query — the GLM plan above is already cached and would hit).
  session.Optimize(SvmProgram().expr, reg.catalog);
  EXPECT_EQ(session.stats().graph_resets, 1u);
}

TEST(Context, PrecomputedKeyServesWarmHitWithoutTranslation) {
  auto context = std::make_shared<const OptimizerContext>();
  OptimizerSession session(context);
  ShardRouter router(1, context);
  Catalog c;
  c.Register("X", 200, 150, 0.1);
  c.Register("Y", 200, 150);
  ExprPtr q = ParseExpr("sum(X + Y)").value();

  RouteDecision route = router.Route(q, c);
  ASSERT_TRUE(route.key.ok());
  QueryOptions options;
  options.key = &route.key.value();

  OptimizedPlan cold = session.Optimize(q, c, options);
  EXPECT_FALSE(cold.cache_hit);
  OptimizedPlan warm = session.Optimize(q, c, options);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.plan_cost, cold.plan_cost);
  // The precomputed-key hit skips translation entirely.
  EXPECT_EQ(warm.timings.translate_seconds, 0.0);

  // Cache bypass: neither probes nor fills.
  QueryOptions bypass;
  bypass.use_plan_cache = false;
  OptimizedPlan uncached = session.Optimize(q, c, bypass);
  EXPECT_FALSE(uncached.cache_hit);
  EXPECT_EQ(session.PlanCacheSize(), 1u);
  EXPECT_EQ(uncached.plan_cost, cold.plan_cost);
}

}  // namespace
}  // namespace spores
