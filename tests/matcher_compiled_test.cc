// Differential tests for the compiled e-matching engine: the legacy
// backtracking interpreter (LegacyMatch*) serves as the oracle. The compiled
// single-pattern VM and the shared multi-pattern trie must both reproduce
// the oracle's match sets — and, stronger, its exact per-rule match
// *sequences* (root order and binding order), because the Runner's sampling
// RNG consumes matches positionally and the saturation identity gates rely
// on trajectory equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/egraph/matcher.h"
#include "src/egraph/pattern_program.h"
#include "src/egraph/runner.h"
#include "src/rules/rules_eq.h"
#include "src/rules/rules_lr.h"
#include "src/util/rng.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace spores {
namespace {

using P = Pattern;

bool SameSubst(const Subst& a, const Subst& b) {
  return a.classes == b.classes && a.attrs == b.attrs && a.values == b.values;
}

void ExpectSameMatches(const std::vector<Match>& got,
                       const std::vector<Match>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].root, want[i].root) << what << " match " << i;
    EXPECT_TRUE(SameSubst(got[i].subst, want[i].subst))
        << what << " match " << i << " bindings diverge";
  }
}

// The R_EQ LHS patterns (guards/appliers unused here).
std::vector<Rewrite> EqRules() {
  auto dims = std::make_shared<DimEnv>();
  return RaEqualityRules(RaContext{nullptr, dims});
}

// A saturated e-graph over one of the paper's workload programs.
struct WorkloadGraph {
  std::shared_ptr<DimEnv> dims = std::make_shared<DimEnv>();
  WorkloadData data;
  std::unique_ptr<EGraph> egraph;

  explicit WorkloadGraph(const Program& prog)
      : data(MakeFactorizationData(120, 80, 4, 0.05, 7)) {
    auto translated = TranslateLaToRa(prog.expr, data.catalog, dims);
    EXPECT_TRUE(translated.ok()) << translated.status().ToString();
    RaContext ctx{&data.catalog, dims};
    egraph = std::make_unique<EGraph>(std::make_unique<RaAnalysis>(ctx));
    egraph->AddExpr(translated.value().ra);
    egraph->Rebuild();
    RunnerConfig cfg;
    cfg.max_iterations = 6;
    cfg.timeout_seconds = 1.0;
    Runner runner(egraph.get(), RaEqualityRules(ctx), cfg);
    runner.Run();
  }
};

// A randomized e-graph: random RA/LA nodes over existing classes, random
// constants (shared values so ConstBind consistency paths trigger), random
// agg attribute lists, then random merges and a rebuild.
void FillRandom(EGraph& eg, Rng& rng, size_t num_nodes, size_t num_merges) {
  std::vector<Symbol> attr_pool = {Symbol::Intern("i"), Symbol::Intern("j"),
                                   Symbol::Intern("k"), Symbol::Intern("l")};
  std::vector<ClassId> classes;
  for (int v = 0; v < 4; ++v) {
    ENode leaf;
    leaf.op = Op::kVar;
    leaf.sym = Symbol::Intern(std::string(1, static_cast<char>('a' + v)));
    classes.push_back(eg.Add(std::move(leaf)));
  }
  const double const_pool[] = {0.0, 1.0, -1.0, 2.0};
  for (int v = 0; v < 4; ++v) {
    ENode leaf;
    leaf.op = Op::kConst;
    leaf.value = const_pool[v];
    classes.push_back(eg.Add(std::move(leaf)));
  }
  const Op ops[] = {Op::kJoin,    Op::kUnion,   Op::kAgg,
                    Op::kElemMul, Op::kElemPlus, Op::kSProp};
  for (size_t n = 0; n < num_nodes; ++n) {
    ENode node;
    node.op = ops[rng.Uniform(6)];
    size_t arity = node.op == Op::kAgg || node.op == Op::kSProp ? 1 : 2;
    for (size_t c = 0; c < arity; ++c) {
      node.children.push_back(classes[rng.Uniform(classes.size())]);
    }
    if (node.op == Op::kAgg) {
      size_t n_attrs = 1 + rng.Uniform(2);
      for (size_t a = 0; a < n_attrs; ++a) {
        Symbol s = attr_pool[rng.Uniform(attr_pool.size())];
        if (std::find(node.attrs.begin(), node.attrs.end(), s) ==
            node.attrs.end()) {
          node.attrs.push_back(s);
        }
      }
      std::sort(node.attrs.begin(), node.attrs.end());
    }
    classes.push_back(eg.Add(std::move(node)));
  }
  for (size_t m = 0; m < num_merges; ++m) {
    eg.Merge(classes[rng.Uniform(classes.size())],
             classes[rng.Uniform(classes.size())]);
  }
  eg.Rebuild();
  ASSERT_EQ(eg.CheckInvariants(), "");
}

// Patterns exercising every instruction kind, beyond the R_EQ shapes:
// repeated class vars, repeated payload vars, exact payloads.
std::vector<PatternPtr> HandcraftedPatterns() {
  return {
      P::V("?x"),
      P::N(Op::kJoin, {P::V("?a"), P::V("?a")}),
      P::N(Op::kUnion, {P::N(Op::kJoin, {P::V("?a"), P::V("?b")}),
                        P::N(Op::kJoin, {P::V("?b"), P::V("?a")})}),
      P::N(Op::kJoin, {P::ConstBind("?c"), P::ConstBind("?c")}),
      P::N(Op::kJoin, {P::ConstBind("?c1"), P::ConstBind("?c2")}),
      P::N(Op::kUnion, {P::AggBind("?I", P::V("?a")),
                        P::AggBind("?I", P::V("?b"))}),
      P::AggBind("?I", P::AggBind("?J", P::V("?a"))),
      P::AggExact({Symbol::Intern("i")}, P::V("?a")),
      P::N(Op::kJoin, {P::ConstLeaf(1.0), P::V("?a")}),
      P::N(Op::kSProp, {P::VarLeaf("a")}),
  };
}

TEST(CompiledMatcher, MatchesOracleOnWorkloadGraphs) {
  for (const Program& prog : {AlsProgram(), PnmfProgram()}) {
    WorkloadGraph wg(prog);
    for (const Rewrite& rule : EqRules()) {
      ExpectSameMatches(MatchAll(*wg.egraph, *rule.lhs),
                        LegacyMatchAll(*wg.egraph, *rule.lhs),
                        rule.name.c_str());
    }
  }
}

TEST(CompiledMatcher, MatchesOracleOnRandomGraphs) {
  std::vector<Rewrite> rules = EqRules();
  std::vector<PatternPtr> extra = HandcraftedPatterns();
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    EGraph eg;
    Rng rng(seed * 0x9e3779b9ull);
    FillRandom(eg, rng, 60, 8);
    for (const Rewrite& rule : rules) {
      ExpectSameMatches(MatchAll(eg, *rule.lhs), LegacyMatchAll(eg, *rule.lhs),
                        rule.name.c_str());
    }
    for (const PatternPtr& p : extra) {
      ExpectSameMatches(MatchAll(eg, *p), LegacyMatchAll(eg, *p),
                        "handcrafted");
    }
  }
}

TEST(CompiledMatcher, TrieMatchesOraclePerRuleInOrder) {
  std::vector<Rewrite> rules = EqRules();
  CompiledRuleSet trie(LhsPatterns(rules));
  RuleMask all(rules.size());
  all.SetAll();

  for (uint64_t seed : {3ull, 17ull, 99ull}) {
    EGraph eg;
    Rng rng(seed);
    FillRandom(eg, rng, 80, 10);

    // One trie pass per class, every rule active.
    MatchBank bank;
    bank.Reset(rules.size());
    std::vector<ClassId> classes = eg.CanonicalClasses();
    for (ClassId c : classes) trie.MatchClass(eg, c, all, &bank);

    for (size_t ri = 0; ri < rules.size(); ++ri) {
      std::vector<Match> expect;
      for (ClassId c : classes) {
        LegacyMatchInClass(eg, *rules[ri].lhs, c, &expect);
      }
      const MatchBank::RuleMatches& got = bank.rules[ri];
      ASSERT_EQ(got.size(), expect.size()) << rules[ri].name;
      for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got.roots[i], expect[i].root) << rules[ri].name;
        Subst s = trie.MatchSubst(eg, ri, bank, i);
        EXPECT_TRUE(SameSubst(s, expect[i].subst))
            << rules[ri].name << " match " << i;
      }
    }
  }
}

TEST(CompiledMatcher, TrieRuleMaskRestrictsRules) {
  std::vector<Rewrite> rules = EqRules();
  CompiledRuleSet trie(LhsPatterns(rules));

  EGraph eg;
  Rng rng(42);
  FillRandom(eg, rng, 70, 6);

  // Enable every third rule only.
  RuleMask some(rules.size());
  for (size_t ri = 0; ri < rules.size(); ri += 3) some.Set(ri);

  MatchBank bank;
  bank.Reset(rules.size());
  for (ClassId c : eg.CanonicalClasses()) trie.MatchClass(eg, c, some, &bank);

  for (size_t ri = 0; ri < rules.size(); ++ri) {
    size_t expect = 0;
    if (some.Test(ri)) {
      expect = LegacyMatchAll(eg, *rules[ri].lhs).size();
    }
    EXPECT_EQ(bank.rules[ri].size(), expect) << rules[ri].name;
  }
}

TEST(CompiledMatcher, LegacyRunnerModeMatchesCompiledTrajectory) {
  // Full saturation with the compiled trie vs the legacy oracle must walk
  // the identical trajectory (same per-rule matched/applied counters, same
  // final graph shape) on a converging workload.
  WorkloadData data = MakeFactorizationData(100, 60, 4, 0.05, 3);
  auto run = [&](bool legacy) {
    auto dims = std::make_shared<DimEnv>();
    auto translated = TranslateLaToRa(AlsProgram().expr, data.catalog, dims);
    EXPECT_TRUE(translated.ok());
    RaContext ctx{&data.catalog, dims};
    EGraph eg(std::make_unique<RaAnalysis>(ctx));
    eg.AddExpr(translated.value().ra);
    eg.Rebuild();
    RunnerConfig cfg;
    cfg.use_legacy_matcher = legacy;
    cfg.timeout_seconds = 30.0;  // deterministic: never hit the clock
    Runner runner(&eg, RaEqualityRules(ctx), cfg);
    RunnerReport report = runner.Run();
    EXPECT_NE(report.stop_reason, StopReason::kTimeout);
    return std::tuple(report.iterations, report.applied_matches,
                      eg.NumNodes(), eg.NumClasses(), report.stop_reason);
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace spores
