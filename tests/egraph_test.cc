// Unit tests for the e-graph core: union-find, hash-consing, congruence
// closure via deferred rebuilding, analyses, and smallest-term extraction.
#include <gtest/gtest.h>

#include "src/egraph/egraph.h"
#include "src/egraph/term_extract.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"

namespace spores {
namespace {

ENode Leaf(const char* name) {
  ENode n;
  n.op = Op::kVar;
  n.sym = Symbol::Intern(name);
  return n;
}

ENode Node(Op op, std::vector<ClassId> children) {
  ENode n;
  n.op = op;
  n.children = std::move(children);
  return n;
}

TEST(UnionFind, FindOfFreshIsSelf) {
  UnionFind uf;
  ClassId a = uf.MakeSet();
  ClassId b = uf.MakeSet();
  EXPECT_EQ(uf.Find(a), a);
  EXPECT_EQ(uf.Find(b), b);
}

TEST(UnionFind, UnionMakesFirstArgRoot) {
  UnionFind uf;
  ClassId a = uf.MakeSet();
  ClassId b = uf.MakeSet();
  EXPECT_EQ(uf.Union(a, b), a);
  EXPECT_EQ(uf.Find(b), a);
  EXPECT_EQ(uf.FindConst(b), a);
}

TEST(UnionFind, PathCompressionChains) {
  UnionFind uf;
  std::vector<ClassId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(uf.MakeSet());
  for (int i = 1; i < 20; ++i) uf.Union(ids[0], uf.Find(ids[i]));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(uf.Find(ids[i]), ids[0]);
}

TEST(EGraph, HashConsingDedups) {
  EGraph eg;
  ClassId x1 = eg.Add(Leaf("x"));
  ClassId x2 = eg.Add(Leaf("x"));
  EXPECT_EQ(x1, x2);
  EXPECT_EQ(eg.NumClasses(), 1u);
  EXPECT_EQ(eg.NumNodes(), 1u);
}

TEST(EGraph, DistinctLeavesDistinctClasses) {
  EGraph eg;
  EXPECT_NE(eg.Add(Leaf("x")), eg.Add(Leaf("y")));
  EXPECT_EQ(eg.NumClasses(), 2u);
}

TEST(EGraph, MergeUnifiesClasses) {
  EGraph eg;
  ClassId x = eg.Add(Leaf("x"));
  ClassId y = eg.Add(Leaf("y"));
  EXPECT_TRUE(eg.Merge(x, y));
  eg.Rebuild();
  EXPECT_EQ(eg.Find(x), eg.Find(y));
  EXPECT_EQ(eg.NumClasses(), 1u);
  EXPECT_EQ(eg.NumNodes(), 2u);  // both var nodes live in the merged class
}

TEST(EGraph, MergeIsIdempotent) {
  EGraph eg;
  ClassId x = eg.Add(Leaf("x"));
  ClassId y = eg.Add(Leaf("y"));
  EXPECT_TRUE(eg.Merge(x, y));
  EXPECT_FALSE(eg.Merge(x, y));
}

TEST(EGraph, CongruenceClosurePropagates) {
  // f(x), f(y): merging x,y must merge f(x),f(y) after Rebuild.
  EGraph eg;
  ClassId x = eg.Add(Leaf("x"));
  ClassId y = eg.Add(Leaf("y"));
  ClassId fx = eg.Add(Node(Op::kTranspose, {x}));
  ClassId fy = eg.Add(Node(Op::kTranspose, {y}));
  EXPECT_NE(eg.Find(fx), eg.Find(fy));
  eg.Merge(x, y);
  eg.Rebuild();
  EXPECT_EQ(eg.Find(fx), eg.Find(fy));
}

TEST(EGraph, CongruenceClosureCascades) {
  // The paper's example: merging A+A with 2*A must merge (A+A)^2-like
  // parents too. Here: g(f(x)) and g(f(y)) via x=y.
  EGraph eg;
  ClassId x = eg.Add(Leaf("x"));
  ClassId y = eg.Add(Leaf("y"));
  ClassId fx = eg.Add(Node(Op::kTranspose, {x}));
  ClassId fy = eg.Add(Node(Op::kTranspose, {y}));
  ClassId gfx = eg.Add(Node(Op::kRowAgg, {fx}));
  ClassId gfy = eg.Add(Node(Op::kRowAgg, {fy}));
  eg.Merge(x, y);
  eg.Rebuild();
  EXPECT_EQ(eg.Find(gfx), eg.Find(gfy));
}

TEST(EGraph, VersionBumpsOnChangeOnly) {
  EGraph eg;
  eg.Add(Leaf("x"));
  uint64_t v = eg.Version();
  eg.Add(Leaf("x"));  // duplicate: no change
  EXPECT_EQ(eg.Version(), v);
  eg.Add(Leaf("y"));
  EXPECT_GT(eg.Version(), v);
}

TEST(EGraph, AddExprCurriesNaryJoins) {
  EGraph eg;
  ExprPtr j = Expr::Join({Expr::Var("a"), Expr::Var("b"), Expr::Var("c")});
  ClassId id = eg.AddExpr(j);
  // Left-nested binary: join(join(a,b),c) — 2 join nodes + 3 leaves.
  EXPECT_EQ(eg.NumNodes(), 5u);
  EXPECT_TRUE(eg.LookupExpr(j).has_value());
  EXPECT_EQ(eg.Find(*eg.LookupExpr(j)), eg.Find(id));
}

TEST(EGraph, LookupExprMissing) {
  EGraph eg;
  eg.AddExpr(Expr::Plus(Expr::Var("x"), Expr::Var("y")));
  EXPECT_FALSE(
      eg.LookupExpr(Expr::Mul(Expr::Var("x"), Expr::Var("y"))).has_value());
}

TEST(EGraph, RepresentsAfterMerge) {
  EGraph eg;
  ExprPtr a = Expr::Plus(Expr::Var("x"), Expr::Var("y"));
  ExprPtr b = Expr::Mul(Expr::Var("x"), Expr::Var("y"));
  ClassId ca = eg.AddExpr(a);
  ClassId cb = eg.AddExpr(b);
  EXPECT_FALSE(eg.Represents(ca, b));
  eg.Merge(ca, cb);
  eg.Rebuild();
  EXPECT_TRUE(eg.Represents(ca, b));
  EXPECT_TRUE(eg.Represents(cb, a));
}

TEST(EGraph, SharedSubtreesShareClasses) {
  // (x*y)*(x*y): the two x*y occurrences must be one class.
  EGraph eg;
  ExprPtr xy = Expr::Mul(Expr::Var("x"), Expr::Var("y"));
  eg.AddExpr(Expr::Mul(xy, xy));
  EXPECT_EQ(eg.NumClasses(), 4u);  // x, y, x*y, (x*y)*(x*y)
}

TEST(EGraph, CanonicalClassesAreRoots) {
  EGraph eg;
  ClassId x = eg.Add(Leaf("x"));
  ClassId y = eg.Add(Leaf("y"));
  eg.Merge(x, y);
  eg.Rebuild();
  for (ClassId c : eg.CanonicalClasses()) EXPECT_EQ(eg.Find(c), c);
  EXPECT_EQ(eg.CanonicalClasses().size(), 1u);
}

TEST(TermExtract, SmallestTermPrefersLeaf) {
  EGraph eg;
  ClassId x = eg.Add(Leaf("x"));
  ClassId tx = eg.Add(Node(Op::kTranspose, {x}));
  ClassId ttx = eg.Add(Node(Op::kTranspose, {tx}));
  eg.Merge(ttx, x);  // t(t(x)) == x
  eg.Rebuild();
  auto term = SmallestTerm(eg, ttx);
  ASSERT_TRUE(term.has_value());
  EXPECT_EQ(ToString(*term), "x");
}

TEST(TermExtract, HandlesDeepTerms) {
  EGraph eg;
  ExprPtr e = Expr::Sum(Expr::Mul(Expr::Plus(Expr::Var("a"), Expr::Var("b")),
                                  Expr::Var("c")));
  ClassId id = eg.AddExpr(e);
  auto term = SmallestTerm(eg, id);
  ASSERT_TRUE(term.has_value());
  EXPECT_TRUE(ExprEquals(*term, e));
}

TEST(TermExtract, CyclicOnlyClassHasNoTerm) {
  // A class whose only node refers to itself has no finite term.
  EGraph eg;
  ClassId x = eg.Add(Leaf("x"));
  ClassId fx = eg.Add(Node(Op::kTranspose, {x}));
  // Make f's child be its own class: merge x with f(x).
  eg.Merge(x, fx);
  eg.Rebuild();
  // Still extractable: the leaf x itself is in the class.
  auto term = SmallestTerm(eg, fx);
  ASSERT_TRUE(term.has_value());
  EXPECT_EQ(ToString(*term), "x");
}

// Analysis integration: schema invariant via RaAnalysis is covered in
// rules_test.cc; here we exercise the Null analysis plumbing.
TEST(EGraph, NullAnalysisDataIsEmpty) {
  EGraph eg;
  ClassId x = eg.Add(Leaf("x"));
  EXPECT_TRUE(eg.Data(x).schema.empty());
  EXPECT_FALSE(eg.Data(x).constant.has_value());
}

}  // namespace
}  // namespace spores
