// Concurrency-core stress tests (PR 9), written to run under
// ThreadSanitizer in CI: the lock-free MPSC shard queues (unit-level FIFO,
// priority ordering, multi-producer exactly-once delivery), the sharded
// symbol intern table and DimEnv under hammering writers, and the session
// pool's full lock-free spine — 8 producer threads submitting mixed-
// priority traffic with randomized cancels, work stealing, PR 8
// supervision poisons, and concurrent lock-free Stats()/Checkpoint()
// snapshots — with a bitwise plan-cost identity gate against a direct
// single-session reference (the same contract every serving PR has
// shipped under).
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <filesystem>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "src/rules/ra_analysis.h"
#include "src/serve/session_pool.h"
#include "src/serve/shard_queue.h"
#include "src/util/fault_injection.h"
#include "src/util/symbol.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace spores {
namespace {

namespace fs = std::filesystem;

struct InjectorGuard {
  InjectorGuard() { FaultInjector::Instance().Reset(); }
  ~InjectorGuard() { FaultInjector::Instance().Reset(); }
};

// ---- MpscIntrusiveQueue / ShardQueue units ----

struct TestNode : MpscNode {
  explicit TestNode(int v) : value(v) {}
  int value;
};

TEST(MpscQueue, SingleThreadFifo) {
  MpscIntrusiveQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Pop(), nullptr);
  std::deque<TestNode> nodes;  // deque: nodes hold an atomic, can't move
  for (int i = 0; i < 100; ++i) {
    nodes.emplace_back(i);
    q.Push(&nodes.back());
  }
  EXPECT_FALSE(q.Empty());
  EXPECT_EQ(static_cast<TestNode*>(q.Front())->value, 0);
  for (int i = 0; i < 100; ++i) {
    MpscNode* n = q.Pop();
    ASSERT_NE(n, nullptr) << i;
    EXPECT_EQ(static_cast<TestNode*>(n)->value, i);
  }
  EXPECT_EQ(q.Pop(), nullptr);
  EXPECT_TRUE(q.Empty());
}

TEST(MpscQueue, EightProducersDeliverExactlyOnce) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 2000;
  MpscIntrusiveQueue q;
  // Pre-allocated so producer threads never race the allocator; ids encode
  // (producer, index) for the per-producer FIFO check.
  std::vector<std::deque<TestNode>> nodes(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      nodes[p].emplace_back(p * kPerProducer + i);
    }
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) q.Push(&nodes[p][i]);
    });
  }
  go.store(true, std::memory_order_release);
  // Single consumer on this thread, concurrent with the pushes. Pop() may
  // return nullptr mid-push (documented); keep going until all arrived.
  std::vector<int> last_seen(kProducers, -1);
  size_t received = 0;
  while (received < size_t{kProducers} * kPerProducer) {
    MpscNode* n = q.Pop();
    if (n == nullptr) continue;
    ++received;
    int v = static_cast<TestNode*>(n)->value;
    int p = v / kPerProducer, i = v % kPerProducer;
    // Per-producer order is preserved even when producers interleave.
    EXPECT_LT(last_seen[p], i);
    last_seen[p] = i;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.Pop(), nullptr);
  EXPECT_TRUE(q.Empty());
}

TEST(ShardQueue, StrictPriorityThenFifoAndClamping) {
  ShardQueue q;
  std::deque<TestNode> nodes;
  // Push (priority, value); -5 and 99 exercise the clamp.
  const std::pair<int, int> pushes[] = {{2, 0}, {0, 1}, {1, 2}, {2, 3},
                                        {0, 4}, {99, 5}, {-5, 6}, {1, 7}};
  for (auto [prio, val] : pushes) {
    nodes.emplace_back(val);
    q.Push(&nodes.back(), prio);
  }
  // Expected: level 0 FIFO (1, 4, 6-clamped-high), then level 1 (2, 7),
  // then level 2 (0, 3), then level 3 (5 clamped low).
  const int expected[] = {1, 4, 6, 2, 7, 0, 3, 5};
  for (int e : expected) {
    MpscNode* n = q.PopHighestPriority();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(static_cast<TestNode*>(n)->value, e);
  }
  EXPECT_EQ(q.PopHighestPriority(), nullptr);
  EXPECT_TRUE(q.Empty());
}

TEST(ShardQueue, ConcurrentMixedPriorityDrain) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1500;
  ShardQueue q;
  std::vector<std::deque<TestNode>> nodes(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      nodes[p].emplace_back(p * kPerProducer + i);
    }
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::mt19937 rng(p);
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(&nodes[p][i], static_cast<int>(rng() % 4));
      }
    });
  }
  go.store(true, std::memory_order_release);
  std::set<int> seen;
  while (seen.size() < size_t{kProducers} * kPerProducer) {
    MpscNode* n = q.PopHighestPriority();
    if (n == nullptr) continue;
    EXPECT_TRUE(seen.insert(static_cast<TestNode*>(n)->value).second);
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.Empty());
}

// ---- Sharded intern table / DimEnv ----

TEST(ShardedSymbols, ConcurrentInternAgreesAndFreshStaysUnique) {
  constexpr int kThreads = 8;
  constexpr int kNames = 400;
  // Every thread interns the same kNames names (plus fresh symbols);
  // all threads must get the identical id for a given name.
  std::vector<std::vector<uint32_t>> ids(kThreads,
                                         std::vector<uint32_t>(kNames));
  std::vector<std::vector<Symbol>> fresh(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kNames; ++i) {
        ids[t][i] = Symbol::Intern("stress_attr_" + std::to_string(i)).id();
        if (i % 16 == 0) {
          fresh[t].push_back(Symbol::Fresh("stress"));
          // Reads stay lock-free while writers hammer other shards.
          EXPECT_FALSE(fresh[t].back().str().empty());
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
  // Fresh symbols are globally unique across all threads.
  std::set<uint32_t> fresh_ids;
  for (const auto& per_thread : fresh) {
    for (Symbol s : per_thread) {
      EXPECT_TRUE(fresh_ids.insert(s.id()).second) << s.str();
    }
  }
  // Round-trips survive the sharded encoding.
  for (int i = 0; i < kNames; ++i) {
    EXPECT_EQ(Symbol::Intern("stress_attr_" + std::to_string(i)).id(),
              ids[0][i]);
  }
  EXPECT_EQ(Symbol::Intern(""), Symbol());  // "" stays the default symbol
  EXPECT_TRUE(Symbol().empty());
}

TEST(ShardedDimEnv, ConcurrentWriteOnceReaders) {
  constexpr int kThreads = 8;
  constexpr int kAttrs = 300;
  DimEnv env;
  std::vector<Symbol> attrs;
  for (int i = 0; i < kAttrs; ++i) {
    attrs.push_back(Symbol::Intern("dim_attr_" + std::to_string(i)));
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::mt19937 rng(t);
      for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < kAttrs; ++i) {
          // Racing Sets always agree on the value (the write-once
          // contract); interleaved reads must see a bound value.
          env.Set(attrs[i], 10 + (i % 50));
          if (rng() % 4 == 0) {
            EXPECT_EQ(env.DimOf(attrs[i]), 10 + (i % 50));
            EXPECT_TRUE(env.Has(attrs[i]));
          }
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  double product = env.SizeOf({attrs[0], attrs[1], attrs[2]});
  EXPECT_DOUBLE_EQ(product, 10.0 * 11.0 * 12.0);
}

// ---- Pool stress: producers + steals + poisons + snapshots ----

std::shared_ptr<const Catalog> StressCatalog() {
  return std::make_shared<Catalog>(
      MakeFactorizationData(250, 200, 6, 0.02, 31).catalog);
}

std::vector<ExprPtr> StressQueries() {
  std::vector<ExprPtr> out;
  for (const Program& prog : {AlsProgram(), PnmfProgram(), IntroProgram()}) {
    out.push_back(prog.expr);
    out.push_back(Expr::Unary("abs", prog.expr));
    out.push_back(Expr::Unary("sign", prog.expr));
  }
  return out;
}

SessionConfig ServingConfig() {
  SessionConfig cfg;
  cfg.runner.strategy = SaturationStrategy::kSampling;
  cfg.extraction = ExtractionStrategy::kGreedy;
  return cfg;
}

// The stress scenario every new lock-free structure has to survive at
// once: 8 producers × mixed priorities × aggressive lone-job stealing ×
// randomized cancels × supervision-driven poisons (deterministic fault
// injection) × concurrent lock-free Stats() polling. Under TSan this is
// the PR's primary race detector; the assertions keep it honest in
// normal builds too.
TEST(ConcurrencyStress, ProducersStealsPoisonsAndSnapshots) {
  InjectorGuard guard;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 30;
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  auto catalog = StressCatalog();
  std::vector<ExprPtr> queries = StressQueries();
  // A low-rate deterministic saturation fault: some optimizations throw,
  // poisoning their shard; supervision rebuilds it in place while peers
  // drain its queue (poisoned queues are stealable at any depth).
  ASSERT_TRUE(
      FaultInjector::Instance().Configure("saturate:0.02:throw").ok());
  PoolConfig cfg;
  cfg.num_shards = 4;
  cfg.supervision.enable = true;
  cfg.quarantine.strikes = 0;  // a strike would starve repeated queries
  cfg.lone_steal_busy_seconds = 0.001;  // maximize steal pressure
  {
    SessionPool pool(context, cfg);
    std::atomic<bool> go{false};
    std::atomic<bool> stop_stats{false};
    std::atomic<size_t> resolved{0};
    // Concurrent snapshot reader: Stats() is lock-free and must never
    // block or crash while producers and workers hammer the pool.
    std::thread stats_poller([&] {
      while (!stop_stats.load(std::memory_order_acquire)) {
        PoolStats stats = pool.Stats();
        EXPECT_LE(stats.completed, stats.submitted);
        std::this_thread::yield();
      }
    });
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        std::mt19937 rng(1000 + p);
        for (int i = 0; i < kPerProducer; ++i) {
          ServeRequest req;
          req.expr = queries[rng() % queries.size()];
          req.catalog = catalog;
          req.priority = static_cast<int>(rng() % 3);
          auto future = pool.SubmitAsync(req);
          if (rng() % 8 == 0) future.Cancel();
          // Every future must resolve to SOMETHING — a plan, kCancelled,
          // or a contained fault (kInternal) — never hang or crash.
          auto result = future.get();
          if (!result.ok()) {
            EXPECT_TRUE(result.status().code() == StatusCode::kCancelled ||
                        result.status().code() == StatusCode::kInternal)
                << result.status().ToString();
          }
          resolved.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& t : producers) t.join();
    pool.Drain();
    stop_stats.store(true, std::memory_order_release);
    stats_poller.join();
    EXPECT_EQ(resolved.load(), size_t{kProducers} * kPerProducer);
    PoolStats stats = pool.Stats();
    EXPECT_EQ(stats.completed, stats.submitted);
    // The injected faults actually exercised the poison path.
    EXPECT_GE(stats.TotalRestarts(), 1u);
    for (const ShardStats& s : stats.shards) EXPECT_FALSE(s.poisoned);
  }
}

// Checkpoint() captures shard snapshots on the worker threads while
// producers keep submitting — the control-slot protocol vs the lock-free
// queue spine. Persistence needs a directory; everything else matches the
// stress above (minus poisons: a checkpoint of a mid-rebuild shard is
// legal but makes the assertion story noisy).
TEST(ConcurrencyStress, CheckpointsDuringSubmissionStorm) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20;
  fs::path dir = fs::path(::testing::TempDir()) / "spores_conc_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  auto catalog = StressCatalog();
  std::vector<ExprPtr> queries = StressQueries();
  PoolConfig cfg;
  cfg.num_shards = 2;
  cfg.persist.dir = dir.string();
  {
    SessionPool pool(context, cfg);
    std::atomic<bool> go{false};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        std::mt19937 rng(77 + p);
        for (int i = 0; i < kPerProducer; ++i) {
          auto r = pool.Submit(queries[rng() % queries.size()], catalog).get();
          EXPECT_TRUE(r.ok()) << r.status().ToString();
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (int c = 0; c < 3; ++c) {
      EXPECT_TRUE(pool.Checkpoint().ok());
    }
    for (auto& t : producers) t.join();
    pool.Drain();
    EXPECT_TRUE(pool.Checkpoint().ok());
  }
  fs::remove_all(dir);
}

// Bitwise plan-cost identity: the pool under maximal concurrency churn
// (stealing, priorities, 8 producers) must produce exactly the plans a
// direct single session produces — the concurrency core may move work
// around, never change its result. (Stolen jobs run cache-bypassed on the
// thief's session; converged saturation makes their costs identical to
// the home shard's, which is precisely what this pins down.)
TEST(ConcurrencyStress, PlanCostsBitwiseIdenticalToDirectSession) {
  SessionConfig cfg;  // full (non-sampling) saturation: costs must be exact
  cfg.extraction = ExtractionStrategy::kGreedy;
  // Fresh graph per query: on a SHARED warm graph, converged costs are
  // history-dependent (another query's terms can join a class reachable
  // from this query and hand extraction a cheaper node), so bitwise
  // identity across different shard histories would be unsound. With
  // reuse off, saturation is confluent per (query, catalog) and identity
  // under arbitrary interleaving/stealing is a theorem, not a hope.
  cfg.reuse_egraph = false;
  auto context = std::make_shared<const OptimizerContext>(cfg);
  auto catalog = StressCatalog();
  std::vector<ExprPtr> queries = StressQueries();
  std::vector<OptimizedPlan> reference;
  {
    OptimizerSession direct(context);
    for (const ExprPtr& q : queries) {
      reference.push_back(direct.Optimize(q, *catalog));
    }
  }
  PoolConfig pool_cfg;
  pool_cfg.num_shards = 4;
  pool_cfg.lone_steal_busy_seconds = 0.001;
  SessionPool pool(context, pool_cfg);
  constexpr int kProducers = 8;
  std::atomic<bool> go{false};
  std::atomic<size_t> compared{0};
  std::vector<std::thread> producers;
  std::vector<Status> failures(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::mt19937 rng(31 + p);
      for (int round = 0; round < 3; ++round) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          ServeRequest req;
          req.expr = queries[qi];
          req.catalog = catalog;
          req.priority = static_cast<int>(rng() % 3);
          auto result = pool.SubmitAsync(req).get();
          if (!result.ok()) {
            failures[p] = result.status();
            return;
          }
          const OptimizedPlan& got = result.value();
          const OptimizedPlan& want = reference[qi];
          // Same guard as the serve_test identity gate: only converged
          // runs promise exact cost equality (a budget-stopped run's cost
          // depends on where it stopped, which concurrency may shift).
          if (got.used_fallback || want.used_fallback) continue;
          if (!got.cache_hit &&
              got.saturation.stop_reason != StopReason::kSaturated) {
            continue;
          }
          if (want.saturation.stop_reason != StopReason::kSaturated) continue;
          if (got.plan_cost != want.plan_cost) {  // bitwise, no tolerance
            failures[p] = Status::Internal("plan cost diverged");
            return;
          }
          compared.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  for (const Status& s : failures) EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(compared.load(), 0u);
  pool.Drain();
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.completed, stats.submitted);
}

}  // namespace
}  // namespace spores
