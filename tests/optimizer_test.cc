// Tests of the two optimizers: the SPORES pipeline (Fig 13) end to end on
// the paper's workloads, and the SystemML-style heuristic baseline's rewrite
// rules and guards.
#include <gtest/gtest.h>

#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/optimizer/heuristic_optimizer.h"
#include "src/optimizer/optimizer_session.h"
#include "src/rules/rules_fusion.h"
#include "src/runtime/kernels.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace spores {
namespace {

// ---- Heuristic (SystemML-like) optimizer rewrites ----

Catalog HeurCatalog() {
  Catalog c;
  c.Register("X", 30, 20, 0.3);
  c.Register("Y", 30, 20);
  c.Register("A", 30, 10);
  c.Register("B", 10, 20);
  c.Register("u", 30, 1);
  c.Register("v", 20, 1);
  c.Register("r", 1, 20);
  c.Register("C", 10, 30);
  c.Register("D", 20, 10);
  return c;
}

std::string HeurOpt(const char* text) {
  HeuristicOptimizer opt(OptLevel::kOpt2);
  return ToString(opt.Optimize(ParseExpr(text).value(), HeurCatalog()));
}

TEST(Heuristic, BaseLevelIsIdentity) {
  HeuristicOptimizer opt(OptLevel::kBase);
  ExprPtr e = ParseExpr("sum(X * 1)").value();
  EXPECT_TRUE(ExprEquals(opt.Optimize(e, HeurCatalog()), e));
}

TEST(Heuristic, RemovesMulOne) { EXPECT_EQ(HeurOpt("X * 1"), "X"); }
TEST(Heuristic, RemovesAddZero) { EXPECT_EQ(HeurOpt("X + 0"), "X"); }
TEST(Heuristic, SquaresSelfMul) { EXPECT_EQ(HeurOpt("X * X"), "X ^ 2"); }
TEST(Heuristic, DoublesSelfAdd) { EXPECT_EQ(HeurOpt("X + X"), "2 * X"); }
TEST(Heuristic, DoubleTranspose) { EXPECT_EQ(HeurOpt("t(t(X))"), "X"); }
TEST(Heuristic, DoubleNeg) { EXPECT_EQ(HeurOpt("-(-X)"), "X"); }
TEST(Heuristic, ConstantFolding) { EXPECT_EQ(HeurOpt("(3 - 2) * X"), "X"); }

TEST(Heuristic, SumOfTranspose) { EXPECT_EQ(HeurOpt("sum(t(X))"), "sum(X)"); }
TEST(Heuristic, SumOfRowSums) {
  EXPECT_EQ(HeurOpt("sum(rowSums(X))"), "sum(X)");
}
TEST(Heuristic, PushSumOverAdd) {
  EXPECT_EQ(HeurOpt("sum(X + Y)"), "sum(X) + sum(Y)");
}
TEST(Heuristic, PullScalarFromSum) {
  EXPECT_EQ(HeurOpt("sum(3 * X)"), "3 * sum(X)");
}
TEST(Heuristic, ColSumsOfTranspose) {
  EXPECT_EQ(HeurOpt("colSums(t(X))"), "t(rowSums(X))");
}
TEST(Heuristic, DotProductSum) {
  EXPECT_EQ(HeurOpt("sum(u ^ 2)"), "t(u) %*% u");
}
TEST(Heuristic, ColSumsMVMult) {
  EXPECT_EQ(HeurOpt("colSums(X * u)"), "t(u) %*% X");
}
TEST(Heuristic, RowSumsMVMult) {
  EXPECT_EQ(HeurOpt("rowSums(X * r)"), "X %*% t(r)");
}
TEST(Heuristic, TransposeOfTransposedMatMul) {
  // TransposeAggBinBinaryChains: t(t(C) %*% t(D)) -> D %*% C.
  EXPECT_EQ(HeurOpt("t(t(C) %*% t(D))"), "D %*% C");
}

TEST(Heuristic, SumMatrixMultRewrites) {
  EXPECT_EQ(HeurOpt("sum(A %*% B)"),
            "sum(t(colSums(A)) * rowSums(B))");
}

TEST(Heuristic, SumMatrixMultBlockedByCse) {
  // The PNMF trap (Sec 4.2): A%*%B shared elsewhere blocks the rewrite.
  ExprPtr ab = Expr::MatMul(Expr::Var("A"), Expr::Var("B"));
  ExprPtr e = Expr::Plus(Expr::Sum(ab), Expr::Sum(Expr::Mul(ab, ab)));
  HeuristicOptimizer opt(OptLevel::kOpt2);
  std::string out = ToString(opt.Optimize(e, HeurCatalog()));
  EXPECT_EQ(out.find("colSums"), std::string::npos) << out;
}

TEST(Heuristic, FusesWsLoss) {
  Catalog c;
  c.Register("X", 30, 20, 0.1);
  c.Register("U", 30, 4);
  c.Register("V", 20, 4);
  HeuristicOptimizer opt(OptLevel::kOpt2);
  ExprPtr e = ParseExpr("sum((X - U %*% t(V))^2)").value();
  EXPECT_EQ(ToString(opt.Optimize(e, c)), "wsloss(X, U, V)");
}

TEST(Heuristic, WsLossFailsOnPlusVariant) {
  // The intro's point: syntactic fusion misses sum((X + UV^T)^2).
  Catalog c;
  c.Register("X", 30, 20, 0.1);
  c.Register("U", 30, 4);
  c.Register("V", 20, 4);
  HeuristicOptimizer opt(OptLevel::kOpt2);
  ExprPtr e = ParseExpr("sum((X + U %*% t(V))^2)").value();
  EXPECT_EQ(ToString(opt.Optimize(e, c)).find("wsloss"), std::string::npos);
}

TEST(Fusion, SpropDetectedInChains) {
  ExprPtr p = Expr::Var("p");
  ExprPtr e = Expr::Mul(Expr::Mul(p, Expr::Minus(Expr::Const(1.0), p)),
                        Expr::Var("r"));
  EXPECT_EQ(ToString(ApplyFusion(e)), "sprop(p) * r");
}

TEST(Fusion, NormalizesNegativeCoefficients) {
  ExprPtr e = Expr::Plus(Expr::Var("X"),
                         Expr::Mul(Expr::Const(-1.0), Expr::Var("Y")));
  EXPECT_EQ(ToString(ApplyFusion(e)), "X - Y");
}

// ---- SPORES pipeline on the paper's workloads ----

struct PipelineCase {
  const char* name;
  bool factorization_data;  // else regression data
};

class PipelineNumerics : public ::testing::TestWithParam<int> {};

TEST_P(PipelineNumerics, OptimizedPlanMatchesOriginal) {
  std::vector<Program> programs = AllPrograms();
  programs.push_back(IntroProgram());
  const Program& prog = programs[static_cast<size_t>(GetParam())];
  bool regression =
      prog.name == "GLM" || prog.name == "SVM" || prog.name == "MLR";
  WorkloadData data = regression
                          ? MakeRegressionData(300, 120, 0.05, 31)
                          : MakeFactorizationData(250, 200, 6, 0.02, 31);
  OptimizerSession session;
  OptimizedPlan result = session.Optimize(prog.expr, data.catalog);
  ExprPtr optimized = result.plan;
  auto expected = Execute(prog.expr, data.inputs);
  auto actual = Execute(optimized, data.inputs);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok()) << prog.name << ": " << ToString(optimized);
  double scale = 1.0 + std::abs(SumAll(expected.value()));
  EXPECT_LT(Matrix::MaxAbsDiff(expected.value(), actual.value()),
            1e-7 * scale)
      << prog.name;
}

INSTANTIATE_TEST_SUITE_P(AllSix, PipelineNumerics, ::testing::Range(0, 6));

TEST(Pipeline, AlsExploitsSparsity) {
  WorkloadData data = MakeFactorizationData(400, 300, 8, 0.02, 7);
  OptimizerSession session;
  OptimizedPlan result = session.Optimize(AlsProgram().expr, data.catalog);
  EXPECT_FALSE(result.used_fallback) << result.fallback_reason;
  // Model cost must drop dramatically (paper: up to 5X wall clock).
  EXPECT_LT(result.plan_cost, result.original_cost / 5);
}

TEST(Pipeline, PnmfAvoidsDenseProductDespiteCse) {
  WorkloadData data = MakeFactorizationData(400, 300, 8, 0.02, 7);
  OptimizerSession session;
  OptimizedPlan result = session.Optimize(PnmfProgram().expr, data.catalog);
  EXPECT_FALSE(result.used_fallback);
  EXPECT_LT(result.plan_cost, result.original_cost / 10);
  // The heuristic is blocked by its CSE guard on the same program.
  HeuristicOptimizer heur(OptLevel::kOpt2);
  ExprPtr hopt = heur.Optimize(PnmfProgram().expr, data.catalog);
  EXPECT_EQ(ToString(hopt).find("colSums"), std::string::npos);
}

TEST(Pipeline, MlrFindsSprop) {
  WorkloadData data = MakeRegressionData(500, 200, 0.05, 7);
  OptimizerSession session;
  OptimizedPlan result = session.Optimize(MlrProgram().expr, data.catalog);
  EXPECT_NE(ToString(result.plan).find("sprop"), std::string::npos)
      << ToString(result.plan);
}

TEST(Pipeline, GreedyExtractionAlsoWorks) {
  WorkloadData data = MakeFactorizationData(300, 200, 6, 0.02, 7);
  SessionConfig cfg;
  cfg.extraction = ExtractionStrategy::kGreedy;
  OptimizerSession session(cfg);
  OptimizedPlan result = session.Optimize(AlsProgram().expr, data.catalog);
  EXPECT_FALSE(result.used_fallback);
  auto r0 = Execute(AlsProgram().expr, data.inputs);
  auto r1 = Execute(result.plan, data.inputs);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(r0.value(), r1.value()), 1e-8);
}

TEST(Pipeline, FallbackReturnsOriginalOnUnknownInput) {
  Catalog empty;
  OptimizerSession session;
  ExprPtr e = ParseExpr("Q %*% R").value();
  OptimizedPlan result = session.Optimize(e, empty);
  EXPECT_TRUE(result.used_fallback);
  EXPECT_TRUE(ExprEquals(result.plan, e));
  // Fallback plans still carry a nonzero cost estimate (structural floor).
  EXPECT_GT(result.original_cost, 0.0);
  EXPECT_EQ(result.plan_cost, result.original_cost);
  EXPECT_EQ(session.stats().fallbacks, 1u);
}

TEST(Pipeline, ReportBreaksDownCompileTime) {
  WorkloadData data = MakeRegressionData(200, 100, 0.05, 7);
  OptimizerSession session;
  OptimizedPlan result = session.Optimize(GlmProgram().expr, data.catalog);
  EXPECT_GT(result.timings.saturate_seconds, 0.0);
  EXPECT_GT(result.timings.extract_seconds, 0.0);
  EXPECT_GT(result.timings.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace spores
