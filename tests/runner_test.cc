// Tests of the saturation runner: convergence detection, stop reasons, and
// the depth-first vs sampling strategies (Sec 3.1).
#include <gtest/gtest.h>

#include "src/egraph/runner.h"
#include "src/ir/expr.h"

namespace spores {
namespace {

using P = Pattern;

// A tiny confluent system: t(t(x)) -> x.
Rewrite DoubleTranspose() {
  return MakeRewrite("tt", P::N(Op::kTranspose, {P::N(Op::kTranspose,
                                                      {P::V("?a")})}),
                     P::V("?a"));
}

// Expansive system: commutativity of +.
Rewrite CommPlus() {
  return MakeRewrite("comm",
                     P::N(Op::kElemPlus, {P::V("?a"), P::V("?b")}),
                     P::N(Op::kElemPlus, {P::V("?b"), P::V("?a")}), nullptr,
                     /*expansive=*/true);
}

ExprPtr DeepTranspose(int depth) {
  ExprPtr e = Expr::Var("x");
  for (int i = 0; i < depth; ++i) e = Expr::Transpose(e);
  return e;
}

TEST(Runner, ConvergesOnFixpointSystem) {
  EGraph eg;
  ClassId root = eg.AddExpr(DeepTranspose(6));
  Runner runner(&eg, {DoubleTranspose()});
  RunnerReport report = runner.Run();
  EXPECT_EQ(report.stop_reason, StopReason::kSaturated);
  EXPECT_TRUE(eg.Represents(root, Expr::Var("x")));
}

TEST(Runner, OddTransposeKeepsOneLayer) {
  EGraph eg;
  ClassId root = eg.AddExpr(DeepTranspose(5));
  Runner runner(&eg, {DoubleTranspose()});
  runner.Run();
  EXPECT_TRUE(eg.Represents(root, Expr::Transpose(Expr::Var("x"))));
  EXPECT_FALSE(eg.Represents(root, Expr::Var("x")));
}

TEST(Runner, IterationLimitRespected) {
  EGraph eg;
  // A chain of sums commutativity can shuffle forever-ish.
  ExprPtr e = Expr::Var("a");
  for (int i = 0; i < 6; ++i) {
    e = Expr::Plus(e, Expr::Var(("v" + std::to_string(i)).c_str()));
  }
  eg.AddExpr(e);
  RunnerConfig cfg;
  cfg.max_iterations = 2;
  cfg.strategy = SaturationStrategy::kDepthFirst;
  Runner runner(&eg, {CommPlus()}, cfg);
  RunnerReport report = runner.Run();
  EXPECT_LE(report.iterations, 2u);
}

TEST(Runner, NodeLimitStopsExplosion) {
  EGraph eg;
  ExprPtr e = Expr::Var("a");
  for (int i = 0; i < 10; ++i) {
    e = Expr::Plus(e, Expr::Var(("w" + std::to_string(i)).c_str()));
  }
  eg.AddExpr(e);
  RunnerConfig cfg;
  cfg.max_nodes = 60;
  cfg.max_iterations = 50;
  cfg.strategy = SaturationStrategy::kDepthFirst;
  // Assoc+comm explode the permutation space.
  std::vector<Rewrite> rules = {
      CommPlus(),
      MakeRewrite("assoc",
                  P::N(Op::kElemPlus,
                       {P::N(Op::kElemPlus, {P::V("?a"), P::V("?b")}),
                        P::V("?c")}),
                  P::N(Op::kElemPlus,
                       {P::V("?a"),
                        P::N(Op::kElemPlus, {P::V("?b"), P::V("?c")})}),
                  nullptr, true)};
  Runner runner(&eg, rules, cfg);
  RunnerReport report = runner.Run();
  EXPECT_EQ(report.stop_reason, StopReason::kNodeLimit);
}

TEST(Runner, SamplingAppliesFewerMatchesPerIteration) {
  auto run = [](SaturationStrategy strategy) {
    EGraph eg;
    ExprPtr e = Expr::Var("a");
    for (int i = 0; i < 8; ++i) {
      e = Expr::Plus(e, Expr::Var(("u" + std::to_string(i)).c_str()));
    }
    eg.AddExpr(e);
    RunnerConfig cfg;
    cfg.strategy = strategy;
    cfg.max_iterations = 3;
    cfg.expansive_match_limit = 2;
    cfg.max_nodes = 100000;
    Runner runner(&eg, {CommPlus()}, cfg);
    return runner.Run();
  };
  RunnerReport sampled = run(SaturationStrategy::kSampling);
  RunnerReport dfs = run(SaturationStrategy::kDepthFirst);
  EXPECT_LT(sampled.applied_matches, dfs.applied_matches);
}

TEST(Runner, SamplingStillConvergesOnConfluentSystem) {
  // Sec 4.3: "sampling always preserves convergence in practice".
  EGraph eg;
  ClassId root = eg.AddExpr(DeepTranspose(8));
  RunnerConfig cfg;
  cfg.strategy = SaturationStrategy::kSampling;
  cfg.match_limit_per_rule = 1;  // extreme throttling
  cfg.max_iterations = 50;
  Runner runner(&eg, {DoubleTranspose()}, cfg);
  RunnerReport report = runner.Run();
  EXPECT_EQ(report.stop_reason, StopReason::kSaturated);
  EXPECT_TRUE(eg.Represents(root, Expr::Var("x")));
}

TEST(Runner, ReportToStringMentionsReason) {
  EGraph eg;
  eg.AddExpr(Expr::Var("x"));
  Runner runner(&eg, {DoubleTranspose()});
  RunnerReport report = runner.Run();
  EXPECT_NE(report.ToString().find("converged"), std::string::npos);
}

TEST(Runner, EmptyRuleSetSaturatesImmediately) {
  EGraph eg;
  eg.AddExpr(Expr::Var("x"));
  Runner runner(&eg, std::vector<Rewrite>{});
  RunnerReport report = runner.Run();
  EXPECT_EQ(report.stop_reason, StopReason::kSaturated);
  EXPECT_EQ(report.applied_matches, 0u);
}

}  // namespace
}  // namespace spores
