// Chaos tests for the fault-containment layer (PR 8): the deterministic
// FaultInjector itself, bad_alloc containment through the executor, shard
// supervision (poison -> in-place rebuild, watchdog hang detection),
// poison-query quarantine, memory-pressure shedding, and the headline
// scenario — a mixed serving stream with faults firing at every injection
// site, where every future must still resolve, non-faulted results must
// match a clean baseline bit-for-bit, and restarted shards must come back
// warm from their last checkpoint.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <vector>

#include "src/ir/parser.h"
#include "src/runtime/executor.h"
#include "src/serve/session_pool.h"
#include "src/util/fault_injection.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace spores {
namespace {

namespace fs = std::filesystem;

// The injector is process-wide; every test leaves it disabled behind
// itself no matter how it exits.
struct InjectorGuard {
  InjectorGuard() { FaultInjector::Instance().Reset(); }
  ~InjectorGuard() { FaultInjector::Instance().Reset(); }
};

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("spores_chaos_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

bool AnyTmpFiles(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") return true;
  }
  return false;
}

std::shared_ptr<const Catalog> SmallCatalog() {
  return std::make_shared<Catalog>(
      MakeFactorizationData(250, 200, 6, 0.02, 31).catalog);
}

std::vector<ExprPtr> DistinctQueries() {
  std::vector<ExprPtr> out;
  for (const Program& prog : {AlsProgram(), PnmfProgram(), IntroProgram()}) {
    out.push_back(prog.expr);
    out.push_back(Expr::Unary("abs", prog.expr));
    out.push_back(Expr::Unary("sign", prog.expr));
  }
  return out;
}

SessionConfig ServingConfig() {
  SessionConfig cfg;
  cfg.runner.strategy = SaturationStrategy::kSampling;
  cfg.extraction = ExtractionStrategy::kGreedy;
  return cfg;
}

PoolConfig SupervisedPool(size_t shards) {
  PoolConfig cfg;
  cfg.num_shards = shards;
  cfg.supervision.enable = true;
  cfg.quarantine.strikes = 3;
  return cfg;
}

// ---- FaultInjector unit behavior ----

TEST(FaultInjector, SpecParsingAcceptsAndRejects) {
  InjectorGuard guard;
  FaultInjector& inj = FaultInjector::Instance();
  EXPECT_TRUE(inj.Configure("saturate:0.5:throw").ok());
  EXPECT_TRUE(inj.Configure("a:0:bad_alloc,b:1:status,c:0.2:delay:5").ok());
  EXPECT_TRUE(inj.Configure("*:0.1:torn").ok());
  EXPECT_TRUE(inj.Configure("").ok());  // empty = disabled
  EXPECT_FALSE(inj.enabled());
  EXPECT_FALSE(inj.Configure("no_fields").ok());
  EXPECT_FALSE(inj.Configure("site:1.5:throw").ok());    // prob out of range
  EXPECT_FALSE(inj.Configure("site:0.5:explode").ok());  // unknown kind
  EXPECT_FALSE(inj.Configure("site:abc:throw").ok());
}

TEST(FaultInjector, DeterministicReplayAndRates) {
  InjectorGuard guard;
  FaultInjector& inj = FaultInjector::Instance();
  // Whether the N-th sample fires depends only on (seed, site, N): two
  // identical runs produce the identical fire sequence.
  auto run = [&](uint64_t seed) {
    ASSERT_TRUE(inj.Configure("s:0.3:throw", seed).ok());
    std::vector<bool> fires;
    for (int i = 0; i < 500; ++i) fires.push_back(inj.Sample("s").has_value());
    inj.Reset();
    std::vector<bool> again_fires;
    ASSERT_TRUE(inj.Configure("s:0.3:throw", seed).ok());
    for (int i = 0; i < 500; ++i) {
      again_fires.push_back(inj.Sample("s").has_value());
    }
    EXPECT_EQ(fires, again_fires);
    size_t fired = 0;
    for (bool f : fires) fired += f ? 1 : 0;
    // 500 Bernoulli(0.3) trials: a loose band, but deterministic given the
    // seed — this can never flake once it passes.
    EXPECT_GT(fired, 100u);
    EXPECT_LT(fired, 220u);
  };
  run(0);
  run(12345);

  // Probability edges are exact.
  ASSERT_TRUE(FaultInjector::Instance().Configure("s:0:throw").ok());
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(inj.Sample("s").has_value());
  ASSERT_TRUE(inj.Configure("s:1:throw").ok());
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(inj.Sample("s").has_value());
  EXPECT_EQ(inj.FireCount("s"), 200u);
}

TEST(FaultInjector, WildcardMatchesEverySiteWithAction) {
  InjectorGuard guard;
  FaultInjector& inj = FaultInjector::Instance();
  ASSERT_TRUE(inj.Configure("*:1:delay:3").ok());
  auto action = inj.Sample("anything_at_all");
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->kind, FaultKind::kDelay);
  EXPECT_EQ(action->delay_millis, 3);
  EXPECT_GE(inj.TotalFired(), 1u);
}

// ---- Executor containment (satellite b) ----

TEST(ChaosExecutor, KernelBadAllocBecomesResourceExhausted) {
  InjectorGuard guard;
  ASSERT_TRUE(
      FaultInjector::Instance().Configure("kernel_alloc:1:bad_alloc").ok());
  Bindings b;
  Rng rng(21);
  b.Bind("A", Matrix::RandomDense(40, 40, rng));
  ExecStats stats;
  auto e = ParseExpr("A %*% A");
  ASSERT_TRUE(e.ok());
  // Every allocation throws: the dense attempt fails, the sparse retry
  // fails too, and the executor surfaces a Status instead of crashing.
  auto r = Execute(e.value(), b, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(stats.memory_fallbacks, 1u);  // the retry was attempted

  // With the injector off the same expression evaluates normally again —
  // the failure left no poisoned thread-local state behind.
  FaultInjector::Instance().Reset();
  auto clean = Execute(e.value(), b);
  ASSERT_TRUE(clean.ok());
}

TEST(ChaosExecutor, EvalThrowBecomesInternalStatus) {
  InjectorGuard guard;
  ASSERT_TRUE(
      FaultInjector::Instance().Configure("executor_eval:1:throw").ok());
  Bindings b;
  Rng rng(23);
  b.Bind("X", Matrix::RandomDense(3, 7, rng));
  auto e = ParseExpr("sum(X * 2)");
  ASSERT_TRUE(e.ok());
  auto r = Execute(e.value(), b);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_GT(FaultInjector::Instance().FireCount("executor_eval"), 0u);
}

TEST(ChaosExecutor, PoolCapOverflowIsAnErrorNotACrash) {
  InjectorGuard guard;  // no injection: the cap itself is the fault
  Bindings b;
  Rng rng(22);
  b.Bind("U", Matrix::RandomDense(80, 80, rng));
  auto e = ParseExpr("U %*% U");
  ASSERT_TRUE(e.ok());
  ExecutorArena arena;
  // Far below the 80x80 dense output (51200 bytes): the allocation-time
  // cap fires, the sparse retry cannot fit either, and the caller gets
  // kResourceExhausted.
  arena.pool().set_live_bytes_cap(1024);
  auto r = Execute(e.value(), b, &arena);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // Lifting the cap on the SAME arena works: live accounting is reset per
  // attempt, so the unwound buffers of the failed run don't haunt it.
  arena.pool().set_live_bytes_cap(0);
  auto ok = Execute(e.value(), b, &arena);
  ASSERT_TRUE(ok.ok());
}

// ---- Shard supervision ----

TEST(ChaosPool, PoisonedShardRestartsAndKeepsServing) {
  InjectorGuard guard;
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  auto catalog = SmallCatalog();
  ExprPtr query = AlsProgram().expr;
  // Every saturation iteration throws: the first optimize of any query
  // poisons its shard.
  ASSERT_TRUE(FaultInjector::Instance().Configure("saturate:1:throw").ok());
  PoolConfig cfg = SupervisedPool(2);
  cfg.quarantine.strikes = 0;  // quarantine off: isolate the restart path
  SessionPool pool(context, cfg);
  auto r = pool.Submit(query, catalog).get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  pool.Drain();
  EXPECT_GE(pool.Stats().TotalRestarts(), 1u);

  // Injector off: the rebuilt shard serves the same query successfully.
  FaultInjector::Instance().Reset();
  auto ok = pool.Submit(query, catalog).get();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  PoolStats stats = pool.Stats();
  EXPECT_GE(stats.TotalRestarts(), 1u);
  for (const ShardStats& s : stats.shards) EXPECT_FALSE(s.poisoned);
}

TEST(ChaosPool, QuarantineRejectsRepeatOffender) {
  InjectorGuard guard;
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  auto catalog = SmallCatalog();
  ExprPtr poison_query = PnmfProgram().expr;
  ASSERT_TRUE(FaultInjector::Instance().Configure("saturate:1:throw").ok());
  PoolConfig cfg = SupervisedPool(2);
  cfg.quarantine.strikes = 2;
  SessionPool pool(context, cfg);
  // Two strikes (each crashes a shard) ...
  for (int i = 0; i < 2; ++i) {
    auto r = pool.Submit(poison_query, catalog).get();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal) << i;
  }
  // ... then the blacklist turns the query away at admission, without
  // running (or crashing) anything.
  auto rejected = pool.Submit(poison_query, catalog).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  pool.Drain();
  PoolStats stats = pool.Stats();
  EXPECT_GE(stats.quarantined, 1u);
  EXPECT_GE(stats.TotalRestarts(), 2u);

  // Other queries are untouched by the blacklist.
  FaultInjector::Instance().Reset();
  auto other = pool.Submit(AlsProgram().expr, catalog).get();
  EXPECT_TRUE(other.ok()) << other.status().ToString();
}

TEST(ChaosPool, WatchdogConvertsHangToDeadlineExceededAndRestarts) {
  InjectorGuard guard;  // no injection: the blocker workload IS the hang
  SessionConfig blocker;
  blocker.runner.timeout_seconds = 30.0;
  blocker.runner.max_iterations = 1'000'000;
  blocker.runner.max_nodes = 100'000'000;
  blocker.extraction = ExtractionStrategy::kGreedy;
  auto context = std::make_shared<const OptimizerContext>(blocker);
  PoolConfig cfg;
  cfg.num_shards = 2;
  cfg.supervision.enable = true;
  cfg.supervision.default_hang_seconds = 0.2;  // deadline-less jobs
  cfg.supervision.poll_seconds = 0.02;
  SessionPool pool(context, cfg);
  auto catalog = std::make_shared<Catalog>(NonConvergingCatalog());
  // No deadline, effectively unbounded budget: without the watchdog this
  // optimization would hold its worker for the full 30s timeout.
  auto r = pool.Submit(NonConvergingChainExpr(), catalog).get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  pool.Drain();
  PoolStats stats = pool.Stats();
  EXPECT_GE(stats.TotalRestarts(), 1u);
  size_t hangs = 0;
  for (const ShardStats& s : stats.shards) hangs += s.restart_hangs;
  EXPECT_GE(hangs, 1u);
}

TEST(ChaosPool, ShedsLowPriorityUnderMemoryPressure) {
  InjectorGuard guard;
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  auto catalog = SmallCatalog();
  PoolConfig cfg;
  cfg.num_shards = 2;
  cfg.admission.shed_arena_nodes = 1;  // absurdly low: trip after any job
  SessionPool pool(context, cfg);
  // First job: arena mirrors are still zero, so it is admitted and runs
  // (populating the shard's e-graph well past one node).
  auto first = pool.Submit(AlsProgram().expr, catalog).get();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Drain, not get(): the arena mirror is refreshed after the future
  // completes, and admission must see it before the next submission.
  pool.Drain();
  // Low-priority traffic is now shed; high-priority still flows.
  ServeRequest low;
  low.expr = PnmfProgram().expr;
  low.catalog = catalog;
  low.priority = kPriorityLow;
  auto shed = pool.SubmitAsync(low).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  ServeRequest high = low;
  high.priority = kPriorityHigh;
  auto served = pool.SubmitAsync(high).get();
  EXPECT_TRUE(served.ok()) << served.status().ToString();
  pool.Drain();
  EXPECT_GE(pool.Stats().shed, 1u);
}

// ---- Warm rebuild (restart answers from the last checkpoint) ----

TEST(ChaosPool, RestartedShardAnswersWarmFromCheckpoint) {
  InjectorGuard guard;
  const std::string dir = FreshDir("warm_rebuild");
  auto context = std::make_shared<const OptimizerContext>(ServingConfig());
  auto catalog = SmallCatalog();
  ExprPtr known = AlsProgram().expr;
  PoolConfig cfg = SupervisedPool(1);  // one shard: poison hits its cache
  cfg.persist.dir = dir;
  cfg.quarantine.strikes = 0;
  SessionPool pool(context, cfg);
  auto baseline = pool.Submit(known, catalog).get();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  pool.Drain();
  ASSERT_TRUE(pool.Checkpoint().ok());

  // Poison the shard with a DIFFERENT query (the known one would hit the
  // plan cache and never reach saturation).
  ASSERT_TRUE(FaultInjector::Instance().Configure("saturate:1:throw").ok());
  auto poisoned = pool.Submit(PnmfProgram().expr, catalog).get();
  ASSERT_FALSE(poisoned.ok());
  pool.Drain();
  FaultInjector::Instance().Reset();

  PoolStats stats = pool.Stats();
  ASSERT_GE(stats.TotalRestarts(), 1u);
  // The rebuilt session came back warm: its plan cache was restored from
  // the checkpoint, so the known query's plan survived the crash ...
  EXPECT_GT(stats.TotalRestoredPlans(), 0u);
  EXPECT_GT(stats.shards[0].cache_entries, 0u);
  // ... and answers with the identical cost.
  auto warm = pool.Submit(known, catalog).get();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_DOUBLE_EQ(warm.value().plan_cost, baseline.value().plan_cost);
}

// ---- The headline scenario: every site fires, nothing falls over ----

TEST(ChaosPool, MixedStreamSurvivesInjectionAtEverySite) {
  InjectorGuard guard;
  auto catalog = SmallCatalog();
  std::vector<ExprPtr> queries = DistinctQueries();

  // Fresh graph per query: on a shared warm graph, even CONVERGED costs
  // are history-dependent (a restart or steal changes which other queries
  // enriched the graph first, and their terms can hand extraction a
  // different plan). With reuse off, sampling saturation is fixed-seed
  // deterministic per (query, catalog), so cost identity across the
  // chaos/no-chaos runs is sound.
  SessionConfig session_cfg = ServingConfig();
  session_cfg.reuse_egraph = false;

  // Clean baseline: per-query plan costs with the injector disabled. A
  // baseline entry gates identity only when its saturation actually
  // converged without fallback (the bench_serving policy): a
  // budget-stopped run ends wherever the wall clock caught it, and that
  // cost is not an answer chaos is obliged to reproduce.
  struct Baseline {
    double cost = 0.0;
    bool gated = false;
  };
  std::vector<Baseline> baseline;
  {
    auto context = std::make_shared<const OptimizerContext>(session_cfg);
    PoolConfig cfg;
    cfg.num_shards = 4;
    SessionPool pool(context, cfg);
    for (const ExprPtr& q : queries) {
      auto r = pool.Submit(q, catalog).get();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      baseline.push_back(
          {r.value().plan_cost,
           r.value().saturation.stop_reason == StopReason::kSaturated &&
               !r.value().used_fallback});
    }
    pool.Drain();
  }

  // Chaos run: faults at every serving-path site, across two pool
  // generations (the second restores whatever the first managed to
  // persist through its own faulty snapshot/journal writes).
  const std::string dir = FreshDir("mixed_stream");
  ASSERT_TRUE(FaultInjector::Instance()
                  .Configure(
                      "saturate:0.05:throw,journal_write:0.4:torn,"
                      "snapshot_write:0.5:torn",
                      /*seed=*/42)
                  .ok());
  size_t resolved = 0, matched = 0, faulted = 0;
  for (int generation = 0; generation < 2; ++generation) {
    auto context = std::make_shared<const OptimizerContext>(session_cfg);
    PoolConfig cfg = SupervisedPool(4);
    cfg.persist.dir = dir;
    SessionPool pool(context, cfg);
    for (int round = 0; round < 3; ++round) {
      std::vector<ServeFuture<OptimizedPlan>> futures;
      futures.reserve(queries.size());
      for (const ExprPtr& q : queries) {
        futures.push_back(pool.Submit(q, catalog));
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        auto r = futures[i].get();  // must resolve: no hang, no crash
        ++resolved;
        if (r.ok()) {
          // Plan-cost identity on non-faulted queries: chaos may fail a
          // query, but it must never silently change an answer. Compared
          // only when both sides converged without fallback (see the
          // baseline comment) — a budget-stopped cost is not an answer.
          const OptimizedPlan& plan = r.value();
          const bool gated =
              baseline[i].gated &&
              plan.saturation.stop_reason == StopReason::kSaturated &&
              !plan.used_fallback;
          if (gated) {
            EXPECT_DOUBLE_EQ(plan.plan_cost, baseline[i].cost);
            ++matched;
          }
        } else {
          // Faulted queries fail with a definite, expected status.
          const StatusCode code = r.status().code();
          EXPECT_TRUE(code == StatusCode::kInternal ||
                      code == StatusCode::kResourceExhausted ||
                      code == StatusCode::kFailedPrecondition ||
                      code == StatusCode::kDeadlineExceeded)
              << r.status().ToString();
          ++faulted;
        }
      }
      // Checkpoints race the stream and hit the snapshot_write site; a
      // failed checkpoint is an error value, never a crash, and never
      // leaves a stray tmp file (the satellite-a contract).
      Status ck = pool.Checkpoint();
      (void)ck;
      EXPECT_FALSE(AnyTmpFiles(dir));
    }
    pool.Drain();
    PoolStats stats = pool.Stats();
    EXPECT_EQ(stats.completed, stats.submitted);
    for (const ShardStats& s : stats.shards) EXPECT_FALSE(s.poisoned);
  }
  // Every future resolved, and most of the stream still served exact
  // answers through the chaos.
  EXPECT_EQ(resolved, queries.size() * 3 * 2);
  EXPECT_GT(matched, 0u);
  // The injection actually exercised the sites this scenario wires up.
  FaultInjector& inj = FaultInjector::Instance();
  EXPECT_GT(inj.FireCount("saturate"), 0u);
  EXPECT_GT(inj.FireCount("journal_write"), 0u);
  EXPECT_GT(inj.FireCount("snapshot_write"), 0u);
  EXPECT_GT(inj.TotalSampled(), inj.TotalFired());
}

}  // namespace
}  // namespace spores
