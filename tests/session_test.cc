// Tests of the session-based optimizer API: state reuse across queries,
// per-stage StatusOr error propagation, and the canonical-form plan cache
// (hit on repeated/isomorphic queries, miss on dimension or sparsity
// changes, warm-vs-cold compile time).
#include <gtest/gtest.h>

#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/optimizer/optimizer_session.h"
#include "src/runtime/executor.h"
#include "src/runtime/kernels.h"
#include "src/util/timer.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

namespace spores {
namespace {

// ---- Session reuse ----

TEST(Session, ReusedAcrossManyQueries) {
  WorkloadData data = MakeFactorizationData(250, 200, 6, 0.02, 31);
  OptimizerSession session;
  for (const Program& prog :
       {AlsProgram(), PnmfProgram(), IntroProgram()}) {
    OptimizedPlan result = session.Optimize(prog.expr, data.catalog);
    EXPECT_FALSE(result.used_fallback) << prog.name << ": "
                                       << result.fallback_reason;
    auto expected = Execute(prog.expr, data.inputs);
    auto actual = Execute(result.plan, data.inputs);
    ASSERT_TRUE(expected.ok() && actual.ok()) << prog.name;
    double scale = 1.0 + std::abs(SumAll(expected.value()));
    EXPECT_LT(Matrix::MaxAbsDiff(expected.value(), actual.value()),
              1e-7 * scale)
        << prog.name;
  }
  EXPECT_EQ(session.stats().queries, 3u);
  EXPECT_EQ(session.stats().saturations, 3u);
  EXPECT_EQ(session.stats().fallbacks, 0u);
}

TEST(Session, MixedCatalogsInOneSession) {
  // The same session serves queries over unrelated catalogs (regression
  // then factorization data) without cross-contamination.
  OptimizerSession session;
  WorkloadData reg = MakeRegressionData(200, 100, 0.05, 7);
  WorkloadData fac = MakeFactorizationData(250, 200, 6, 0.02, 7);
  OptimizedPlan r1 = session.Optimize(GlmProgram().expr, reg.catalog);
  OptimizedPlan r2 = session.Optimize(AlsProgram().expr, fac.catalog);
  EXPECT_FALSE(r1.used_fallback);
  EXPECT_FALSE(r2.used_fallback);
  auto e2 = Execute(AlsProgram().expr, fac.inputs);
  auto a2 = Execute(r2.plan, fac.inputs);
  ASSERT_TRUE(e2.ok() && a2.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(e2.value(), a2.value()), 1e-6);
}

// ---- Per-stage StatusOr error propagation ----

TEST(Stages, TranslateFailsOnUnknownInput) {
  OptimizerSession session;
  Catalog empty;
  auto t = session.Translate(ParseExpr("Q %*% R").value(), empty);
  EXPECT_FALSE(t.ok());
  EXPECT_FALSE(t.status().message().empty());
}

TEST(Stages, SaturateRejectsEmptyTranslation) {
  OptimizerSession session;
  Catalog c;
  c.Register("X", 10, 10);
  Translation t;  // never produced by Translate
  auto s = session.Saturate(t, c);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(Stages, ExtractRejectsEmptySaturation) {
  OptimizerSession session;
  Catalog c;
  c.Register("X", 10, 10);
  Translation t;
  Saturation s;  // never produced by Saturate
  auto e = session.Extract(s, t, c);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(Stages, ComposedManuallyMatchesOptimize) {
  // Drive the pipeline stage by stage and check it agrees with the driver.
  WorkloadData data = MakeFactorizationData(250, 200, 6, 0.02, 31);
  SessionConfig cfg;
  cfg.enable_plan_cache = false;
  OptimizerSession session(cfg);
  ExprPtr expr = AlsProgram().expr;

  auto t = session.Translate(expr, data.catalog);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  auto s = session.Saturate(t.value(), data.catalog);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_GT(s.value().original_cost, 0.0);
  EXPECT_GT(s.value().report.iterations, 0u);
  auto e = session.Extract(s.value(), t.value(), data.catalog);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_LE(e.value().chosen.cost, s.value().original_cost * (1 + 1e-9));
  ExprPtr plan = session.Fuse(e.value().chosen.la);

  OptimizerSession driver(cfg);
  OptimizedPlan reference = driver.Optimize(expr, data.catalog);
  ASSERT_FALSE(reference.used_fallback);
  EXPECT_EQ(ToString(plan), ToString(reference.plan));
  EXPECT_DOUBLE_EQ(e.value().chosen.cost, reference.plan_cost);
}

TEST(Stages, CollectAlternativesReportsBothExtractors) {
  WorkloadData data = MakeFactorizationData(250, 200, 6, 0.02, 31);
  SessionConfig cfg;
  cfg.collect_alternatives = true;
  OptimizerSession session(cfg);
  OptimizedPlan result = session.Optimize(AlsProgram().expr, data.catalog);
  ASSERT_FALSE(result.used_fallback);
  ASSERT_EQ(result.alternatives.size(), 2u);
  EXPECT_EQ(result.alternatives[0].strategy, ExtractionStrategy::kIlp);
  EXPECT_EQ(result.alternatives[1].strategy, ExtractionStrategy::kGreedy);
  for (const PlanChoice& choice : result.alternatives) {
    ASSERT_TRUE(choice.la != nullptr);
    EXPECT_GT(choice.cost, 0.0);
  }
  // Fig 17's finding: greedy matches the ILP's plan cost on these workloads.
  EXPECT_LE(result.alternatives[0].cost,
            result.alternatives[1].cost * (1 + 1e-9));
}

// ---- Plan cache ----

TEST(PlanCache, HitOnRepeatedQuerySkipsSaturation) {
  WorkloadData data = MakeFactorizationData(250, 200, 6, 0.02, 31);
  OptimizerSession session;
  ExprPtr expr = AlsProgram().expr;

  Timer t;
  OptimizedPlan cold = session.Optimize(expr, data.catalog);
  double cold_seconds = t.Seconds();
  ASSERT_FALSE(cold.used_fallback);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(session.stats().cache_misses, 1u);

  t.Reset();
  OptimizedPlan warm = session.Optimize(expr, data.catalog);
  double warm_seconds = t.Seconds();
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(session.stats().cache_hits, 1u);
  EXPECT_EQ(session.stats().saturations, 1u);  // saturation ran only once
  EXPECT_EQ(warm.timings.saturate_seconds, 0.0);
  EXPECT_EQ(warm.saturation.iterations, 0u);
  EXPECT_EQ(ToString(warm.plan), ToString(cold.plan));
  EXPECT_DOUBLE_EQ(warm.plan_cost, cold.plan_cost);
  // Warm-vs-cold: skipping saturation + extraction must be visibly faster.
  EXPECT_LT(warm_seconds, cold_seconds);
}

TEST(PlanCache, HitOnIsomorphicQuery) {
  // sum(X + Y) and sum(Y + X) differ syntactically but share a canonical
  // form (Theorem 2.3), so the second query reuses the first's plan.
  Catalog c;
  c.Register("X", 200, 150, 0.1);
  c.Register("Y", 200, 150);
  OptimizerSession session;
  OptimizedPlan first =
      session.Optimize(ParseExpr("sum(X + Y)").value(), c);
  ASSERT_FALSE(first.used_fallback);
  OptimizedPlan second =
      session.Optimize(ParseExpr("sum(Y + X)").value(), c);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(session.stats().cache_hits, 1u);
  EXPECT_EQ(ToString(second.plan), ToString(first.plan));
}

TEST(PlanCache, MissOnDimensionChange) {
  OptimizerSession session;
  ExprPtr expr = ParseExpr("sum((X - U %*% t(V))^2)").value();

  Catalog small;
  small.Register("X", 200, 150, 0.02);
  small.Register("U", 200, 6);
  small.Register("V", 150, 6);
  OptimizedPlan r1 = session.Optimize(expr, small);
  ASSERT_FALSE(r1.used_fallback);

  // Same query, one dimension changed: must miss (costs depend on dims).
  Catalog grown;
  grown.Register("X", 400, 150, 0.02);
  grown.Register("U", 400, 6);
  grown.Register("V", 150, 6);
  OptimizedPlan r2 = session.Optimize(expr, grown);
  EXPECT_FALSE(r2.cache_hit);

  // Same dims, different sparsity: also a miss (plan choice is cost-based).
  Catalog denser;
  denser.Register("X", 200, 150, 0.9);
  denser.Register("U", 200, 6);
  denser.Register("V", 150, 6);
  OptimizedPlan r3 = session.Optimize(expr, denser);
  EXPECT_FALSE(r3.cache_hit);

  EXPECT_EQ(session.stats().cache_hits, 0u);
  EXPECT_EQ(session.stats().cache_misses, 3u);
  EXPECT_EQ(session.PlanCacheSize(), 3u);

  // And the original catalog still hits its original entry.
  OptimizedPlan r4 = session.Optimize(expr, small);
  EXPECT_TRUE(r4.cache_hit);
  EXPECT_EQ(ToString(r4.plan), ToString(r1.plan));
}

TEST(PlanCache, MissOnStructurallyDifferentQuery) {
  Catalog c;
  c.Register("X", 200, 150, 0.1);
  c.Register("Y", 200, 150);
  OptimizerSession session;
  session.Optimize(ParseExpr("sum(X + Y)").value(), c);
  OptimizedPlan other = session.Optimize(ParseExpr("sum(X * Y)").value(), c);
  EXPECT_FALSE(other.cache_hit);
  EXPECT_EQ(session.stats().cache_hits, 0u);
}

TEST(PlanCache, DisabledByConfig) {
  WorkloadData data = MakeFactorizationData(200, 150, 6, 0.02, 31);
  SessionConfig cfg;
  cfg.enable_plan_cache = false;
  OptimizerSession session(cfg);
  session.Optimize(AlsProgram().expr, data.catalog);
  OptimizedPlan second = session.Optimize(AlsProgram().expr, data.catalog);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(session.PlanCacheSize(), 0u);
  EXPECT_EQ(session.stats().saturations, 2u);
}

TEST(PlanCache, EvictsOldestBeyondCapacity) {
  Catalog c;
  c.Register("X", 64, 48, 0.1);
  c.Register("Y", 64, 48);
  SessionConfig cfg;
  cfg.plan_cache_capacity = 2;
  OptimizerSession session(cfg);
  session.Optimize(ParseExpr("sum(X + Y)").value(), c);
  session.Optimize(ParseExpr("sum(X * Y)").value(), c);
  session.Optimize(ParseExpr("sum(X - Y)").value(), c);  // evicts sum(X + Y)
  EXPECT_EQ(session.PlanCacheSize(), 2u);
  EXPECT_EQ(session.cache_stats().evictions, 1u);
  OptimizedPlan replay = session.Optimize(ParseExpr("sum(X + Y)").value(), c);
  EXPECT_FALSE(replay.cache_hit);
}

TEST(PlanCache, LruEvictionPrefersRecentlyUsed) {
  Catalog c;
  c.Register("X", 64, 48, 0.1);
  c.Register("Y", 64, 48);
  SessionConfig cfg;
  cfg.plan_cache_capacity = 2;
  OptimizerSession session(cfg);
  session.Optimize(ParseExpr("sum(X + Y)").value(), c);  // A
  session.Optimize(ParseExpr("sum(X * Y)").value(), c);  // B
  // Touch A: it becomes most-recently-used even though it was inserted
  // first (under the old FIFO policy the next insert would evict it).
  OptimizedPlan touched = session.Optimize(ParseExpr("sum(X + Y)").value(), c);
  ASSERT_TRUE(touched.cache_hit);
  session.Optimize(ParseExpr("sum(X - Y)").value(), c);  // C evicts LRU = B
  EXPECT_EQ(session.cache_stats().evictions, 1u);
  EXPECT_EQ(session.PlanCacheSize(), 2u);
  OptimizedPlan a = session.Optimize(ParseExpr("sum(X + Y)").value(), c);
  EXPECT_TRUE(a.cache_hit);  // A survived the eviction
  OptimizedPlan b = session.Optimize(ParseExpr("sum(X * Y)").value(), c);
  EXPECT_FALSE(b.cache_hit);  // B was the victim
}

// ---- Cross-query e-graph reuse ----

TEST(SharedEGraph, WarmSaturationMatchesFreshGraphPlans) {
  // Structurally different (non-isomorphic) queries over one catalog resume
  // saturation on the session's shared graph. Whenever both the resumed and
  // the fresh-graph saturation converge, extraction costs must be
  // identical (equal closures extract equal minima); budget-bounded runs
  // are trajectory-dependent, so for those only semantic preservation is
  // required. All plans must compute the same values as the inputs.
  Rng rng(11);
  Bindings inputs;
  inputs.Bind("X", Matrix::RandomSparse(96, 64, 0.05, rng, -1, 1));
  inputs.Bind("Y", Matrix::RandomDense(96, 64, rng, -1, 1));
  inputs.Bind("U", Matrix::RandomDense(96, 8, rng, -1, 1));
  inputs.Bind("V", Matrix::RandomDense(64, 8, rng, -1, 1));
  Catalog c = inputs.ToCatalog();
  const char* queries[] = {
      "sum(X + Y)",
      "sum((X - U %*% t(V))^2)",
      "sum((X + Y) * X)",
      "sum(2 * (X - U %*% t(V))^2)",
  };
  SessionConfig warm_cfg;
  warm_cfg.enable_plan_cache = false;  // force every query through saturation
  SessionConfig cold_cfg = warm_cfg;
  cold_cfg.reuse_egraph = false;
  OptimizerSession warm(warm_cfg);
  OptimizerSession cold(cold_cfg);
  size_t converged_pairs = 0;
  for (const char* q : queries) {
    ExprPtr expr = ParseExpr(q).value();
    OptimizedPlan wp = warm.Optimize(expr, c);
    OptimizedPlan cp = cold.Optimize(expr, c);
    ASSERT_FALSE(wp.used_fallback) << q << ": " << wp.fallback_reason;
    ASSERT_FALSE(cp.used_fallback) << q << ": " << cp.fallback_reason;
    if (wp.saturation.stop_reason == StopReason::kSaturated &&
        cp.saturation.stop_reason == StopReason::kSaturated) {
      ++converged_pairs;
      EXPECT_DOUBLE_EQ(wp.plan_cost, cp.plan_cost) << q;
    }
    auto expected = Execute(expr, inputs);
    ASSERT_TRUE(expected.ok()) << q;
    double scale = 1.0 + std::abs(SumAll(expected.value()));
    for (const ExprPtr& plan : {wp.plan, cp.plan}) {
      auto actual = Execute(plan, inputs);
      ASSERT_TRUE(actual.ok()) << q << ": " << ToString(plan);
      EXPECT_LT(Matrix::MaxAbsDiff(expected.value(), actual.value()),
                1e-7 * scale)
          << q << ": " << ToString(plan);
    }
  }
  EXPECT_GE(converged_pairs, 2u);  // the small sums must converge both ways
  EXPECT_EQ(warm.stats().graph_reuses, 3u);  // all but the first query
  EXPECT_EQ(cold.stats().graph_reuses, 0u);
  ASSERT_NE(warm.shared_egraph(), nullptr);
  EXPECT_TRUE(warm.shared_egraph()->CheckInvariants().empty())
      << warm.shared_egraph()->CheckInvariants();
}

TEST(SharedEGraph, ResetsOnCatalogChange) {
  SessionConfig cfg;
  cfg.enable_plan_cache = false;
  OptimizerSession session(cfg);
  ExprPtr expr = ParseExpr("sum(X + Y)").value();
  Catalog small;
  small.Register("X", 64, 48, 0.1);
  small.Register("Y", 64, 48);
  Catalog grown;
  grown.Register("X", 128, 48, 0.1);
  grown.Register("Y", 128, 48);
  OptimizedPlan r1 = session.Optimize(expr, small);
  OptimizedPlan r2 = session.Optimize(expr, grown);  // signature changed
  OptimizedPlan r3 = session.Optimize(expr, grown);  // warm again
  EXPECT_FALSE(r1.used_fallback);
  EXPECT_FALSE(r2.used_fallback);
  EXPECT_FALSE(r3.used_fallback);
  EXPECT_EQ(session.stats().graph_resets, 1u);
  EXPECT_EQ(session.stats().graph_reuses, 1u);  // only r3 found a warm graph
}

TEST(SharedEGraph, CompactionKeepsPlansCorrect) {
  // A tiny arena budget forces Compact() between queries; plans must still
  // match a fresh-graph session's, and the arena must actually shrink.
  Catalog c;
  c.Register("X", 96, 64, 0.05);
  c.Register("Y", 96, 64);
  SessionConfig warm_cfg;
  warm_cfg.enable_plan_cache = false;
  warm_cfg.egraph_node_budget = 40;  // far below one query's saturated size
  warm_cfg.max_live_roots = 2;
  SessionConfig cold_cfg = warm_cfg;
  cold_cfg.reuse_egraph = false;
  OptimizerSession warm(warm_cfg);
  OptimizerSession cold(cold_cfg);
  const char* queries[] = {"sum(X + Y)", "sum(X * Y)", "sum((X + Y) * X)",
                           "sum(X - Y)"};
  for (const char* q : queries) {
    ExprPtr expr = ParseExpr(q).value();
    OptimizedPlan wp = warm.Optimize(expr, c);
    OptimizedPlan cp = cold.Optimize(expr, c);
    ASSERT_FALSE(wp.used_fallback) << q << ": " << wp.fallback_reason;
    EXPECT_DOUBLE_EQ(wp.plan_cost, cp.plan_cost) << q;
    EXPECT_EQ(ToString(wp.plan), ToString(cp.plan)) << q;
  }
  EXPECT_GE(warm.stats().compactions, 1u);
  EXPECT_LE(warm.live_roots().size(), 2u);
  ASSERT_NE(warm.shared_egraph(), nullptr);
  EXPECT_TRUE(warm.shared_egraph()->CheckInvariants().empty())
      << warm.shared_egraph()->CheckInvariants();
}

TEST(SharedEGraph, DisabledByConfigBuildsFreshGraphs) {
  Catalog c;
  c.Register("X", 64, 48, 0.1);
  c.Register("Y", 64, 48);
  SessionConfig cfg;
  cfg.enable_plan_cache = false;
  cfg.reuse_egraph = false;
  OptimizerSession session(cfg);
  session.Optimize(ParseExpr("sum(X + Y)").value(), c);
  session.Optimize(ParseExpr("sum(X * Y)").value(), c);
  EXPECT_EQ(session.shared_egraph(), nullptr);
  EXPECT_EQ(session.stats().graph_reuses, 0u);
}

TEST(PlanCache, FallbacksAreNotCached) {
  OptimizerSession session;
  Catalog empty;
  ExprPtr e = ParseExpr("Q %*% R").value();
  OptimizedPlan r1 = session.Optimize(e, empty);
  EXPECT_TRUE(r1.used_fallback);
  EXPECT_EQ(session.PlanCacheSize(), 0u);
  OptimizedPlan r2 = session.Optimize(e, empty);
  EXPECT_TRUE(r2.used_fallback);
  EXPECT_FALSE(r2.cache_hit);
}

}  // namespace
}  // namespace spores
