// Tests of the execution substrate: dense/CSR matrices, kernels (with
// broadcast and sparse fast paths), fused operators, and the DAG executor.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "src/ir/parser.h"
#include "src/runtime/buffer_pool.h"
#include "src/runtime/executor.h"
#include "src/runtime/fused.h"
#include "src/runtime/kernels.h"
#include "src/util/thread_pool.h"

namespace spores {
namespace {

Matrix SmallDense() {
  return Matrix::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
}

TEST(Matrix, DenseConstruction) {
  Matrix m = SmallDense();
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_FALSE(m.is_sparse());
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6);
  EXPECT_EQ(m.Nnz(), 6);
}

TEST(Matrix, TripletsBuildCsr) {
  Matrix m = Matrix::FromTriplets(3, 3, {{0, 1, 2.0}, {2, 0, 5.0},
                                         {0, 1, 3.0}});  // duplicate sums
  EXPECT_TRUE(m.is_sparse());
  EXPECT_DOUBLE_EQ(m.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
  EXPECT_EQ(m.Nnz(), 2);
}

TEST(Matrix, TripletsDropExplicitZeros) {
  Matrix m = Matrix::FromTriplets(2, 2, {{0, 0, 0.0}, {1, 1, 3.0}});
  EXPECT_EQ(m.Nnz(), 1);
}

TEST(Matrix, DenseSparseRoundTrip) {
  Matrix d = SmallDense();
  Matrix s = d.ToSparse();
  EXPECT_TRUE(s.is_sparse());
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(d, s.ToDense()), 0.0);
}

TEST(Matrix, RandomSparseRespectsDensityRoughly) {
  Rng rng(5);
  Matrix m = Matrix::RandomSparse(200, 200, 0.1, rng);
  double density = static_cast<double>(m.Nnz()) / m.size();
  EXPECT_NEAR(density, 0.1, 0.02);
}

TEST(Matrix, ScalarHelpers) {
  Matrix s = Matrix::Scalar(4.25);
  EXPECT_TRUE(s.IsScalar());
  EXPECT_DOUBLE_EQ(s.AsScalar(), 4.25);
}

// ---- Kernels ----

TEST(Kernels, AddDense) {
  Matrix r = Add(SmallDense(), SmallDense());
  EXPECT_DOUBLE_EQ(r.At(1, 2), 12.0);
}

TEST(Kernels, SubSparseSparse) {
  Rng rng(6);
  Matrix a = Matrix::RandomSparse(30, 20, 0.2, rng);
  Matrix r = Sub(a, a);
  EXPECT_EQ(r.Nnz(), 0);
}

TEST(Kernels, MulSparsePathPreservesSupport) {
  Rng rng(7);
  Matrix sp = Matrix::RandomSparse(40, 30, 0.1, rng);
  Matrix dn = Matrix::RandomDense(40, 30, rng, 1.0, 2.0);
  Matrix r = Mul(sp, dn);
  EXPECT_TRUE(r.is_sparse());
  EXPECT_LE(r.Nnz(), sp.Nnz());
  EXPECT_LT(Matrix::MaxAbsDiff(r, Mul(sp.ToDense(), dn)), 1e-12);
}

TEST(Kernels, BroadcastScalar) {
  Matrix r = Mul(SmallDense(), Matrix::Scalar(2.0));
  EXPECT_DOUBLE_EQ(r.At(1, 0), 8.0);
  r = Add(Matrix::Scalar(1.0), SmallDense());
  EXPECT_DOUBLE_EQ(r.At(0, 0), 2.0);
}

TEST(Kernels, BroadcastColVector) {
  Matrix v = Matrix::FromValues(2, 1, {10, 100});
  Matrix r = Mul(SmallDense(), v);
  EXPECT_DOUBLE_EQ(r.At(0, 2), 30.0);
  EXPECT_DOUBLE_EQ(r.At(1, 0), 400.0);
}

TEST(Kernels, BroadcastRowVector) {
  Matrix v = Matrix::FromValues(1, 3, {1, 10, 100});
  Matrix r = Mul(SmallDense(), v);
  EXPECT_DOUBLE_EQ(r.At(1, 1), 50.0);
  EXPECT_DOUBLE_EQ(r.At(0, 2), 300.0);
}

TEST(Kernels, OuterBroadcastAdd) {
  Matrix col = Matrix::FromValues(2, 1, {1, 2});
  Matrix row = Matrix::FromValues(1, 3, {10, 20, 30});
  Matrix r = Add(col, row);
  EXPECT_EQ(r.rows(), 2);
  EXPECT_EQ(r.cols(), 3);
  EXPECT_DOUBLE_EQ(r.At(1, 2), 32.0);
}

TEST(Kernels, DivSparseNumerator) {
  Rng rng(8);
  Matrix sp = Matrix::RandomSparse(20, 20, 0.2, rng, 1.0, 2.0);
  Matrix dn = Matrix::RandomDense(20, 20, rng, 1.0, 2.0);
  Matrix r = Div(sp, dn);
  EXPECT_TRUE(r.is_sparse());
  EXPECT_LT(Matrix::MaxAbsDiff(r, Div(sp.ToDense(), dn)), 1e-12);
}

TEST(Kernels, MatMulAllRepresentationCombos) {
  Rng rng(9);
  Matrix a_d = Matrix::RandomDense(12, 7, rng, -1, 1);
  Matrix b_d = Matrix::RandomDense(7, 9, rng, -1, 1);
  Matrix a_s = Matrix::RandomSparse(12, 7, 0.3, rng, -1, 1);
  Matrix b_s = Matrix::RandomSparse(7, 9, 0.3, rng, -1, 1);
  Matrix want_ss = MatMul(a_s.ToDense(), b_s.ToDense());
  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(a_s, b_s), want_ss), 1e-10);
  Matrix want_sd = MatMul(a_s.ToDense(), b_d);
  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(a_s, b_d), want_sd), 1e-10);
  Matrix want_ds = MatMul(a_d, b_s.ToDense());
  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(a_d, b_s), want_ds), 1e-10);
}

TEST(Kernels, MatMulKnownValues) {
  Matrix a = Matrix::FromValues(2, 2, {1, 2, 3, 4});
  Matrix b = Matrix::FromValues(2, 2, {5, 6, 7, 8});
  Matrix r = MatMul(a, b);
  EXPECT_DOUBLE_EQ(r.At(0, 0), 19);
  EXPECT_DOUBLE_EQ(r.At(0, 1), 22);
  EXPECT_DOUBLE_EQ(r.At(1, 0), 43);
  EXPECT_DOUBLE_EQ(r.At(1, 1), 50);
}

TEST(Kernels, TransposeBothReps) {
  Matrix d = SmallDense();
  EXPECT_DOUBLE_EQ(Transpose(d).At(2, 1), 6.0);
  Matrix s = d.ToSparse();
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(Transpose(s).ToDense(), Transpose(d)),
                   0.0);
}

TEST(Kernels, Aggregates) {
  Matrix d = SmallDense();
  EXPECT_DOUBLE_EQ(SumAll(d), 21.0);
  EXPECT_DOUBLE_EQ(RowSums(d).At(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(RowSums(d).At(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(ColSums(d).At(0, 1), 7.0);
  Matrix s = d.ToSparse();
  EXPECT_DOUBLE_EQ(SumAll(s), 21.0);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(RowSums(s), RowSums(d)), 0.0);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(ColSums(s), ColSums(d)), 0.0);
}

TEST(Kernels, PowAndUnary) {
  Matrix d = SmallDense();
  EXPECT_DOUBLE_EQ(PowElem(d, 2.0).At(1, 2), 36.0);
  EXPECT_DOUBLE_EQ(Unary("abs", Scale(d, -1.0)).At(0, 1), 2.0);
  EXPECT_NEAR(Unary("sigmoid", Matrix::Scalar(0.0)).AsScalar(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(Unary("sign", Matrix::Scalar(-3.0)).AsScalar(), -1.0);
}

TEST(Kernels, UnarySparseZeroPreserving) {
  Rng rng(10);
  Matrix sp = Matrix::RandomSparse(20, 20, 0.1, rng, 1.0, 4.0);
  Matrix r = Unary("sqrt", sp);
  EXPECT_TRUE(r.is_sparse());
  EXPECT_EQ(r.Nnz(), sp.Nnz());
}

TEST(Kernels, UnaryDensifying) {
  Rng rng(10);
  Matrix sp = Matrix::RandomSparse(10, 10, 0.1, rng);
  Matrix r = Unary("exp", sp);
  EXPECT_FALSE(r.is_sparse());
  EXPECT_DOUBLE_EQ(r.At(0, 0) > 0, true);
}

// ---- Fused operators ----

TEST(Fused, WsLossMatchesNaive) {
  Rng rng(11);
  Matrix x = Matrix::RandomSparse(30, 25, 0.15, rng, -1, 1);
  Matrix u = Matrix::RandomDense(30, 4, rng, -1, 1);
  Matrix v = Matrix::RandomDense(25, 4, rng, -1, 1);
  Matrix residual = Sub(x.ToDense(), MatMul(u, Transpose(v)));
  double naive = SumAll(Mul(residual, residual));
  EXPECT_NEAR(WsLoss(x, u, v), naive, 1e-8 * std::abs(naive) + 1e-8);
}

TEST(Fused, WsLossDenseX) {
  Rng rng(12);
  Matrix x = Matrix::RandomDense(10, 8, rng, -1, 1);
  Matrix u = Matrix::RandomDense(10, 3, rng, -1, 1);
  Matrix v = Matrix::RandomDense(8, 3, rng, -1, 1);
  Matrix residual = Sub(x, MatMul(u, Transpose(v)));
  double naive = SumAll(Mul(residual, residual));
  EXPECT_NEAR(WsLoss(x, u, v), naive, 1e-8);
}

TEST(Fused, SPropMatchesDefinition) {
  Rng rng(13);
  Matrix p = Matrix::RandomDense(15, 5, rng, 0.01, 0.99);
  Matrix expected = Mul(p, Sub(Matrix::Scalar(1.0), p));
  EXPECT_LT(Matrix::MaxAbsDiff(SProp(p), expected), 1e-12);
}

TEST(Fused, SPropSparsePreservesSupport) {
  Rng rng(14);
  Matrix p = Matrix::RandomSparse(20, 20, 0.1, rng, 0.2, 0.8);
  Matrix r = SProp(p);
  EXPECT_TRUE(r.is_sparse());
  EXPECT_EQ(r.Nnz(), p.Nnz());
}

TEST(Fused, MMChainMatchesLeftFold) {
  Rng rng(15);
  std::vector<Matrix> chain = {Matrix::RandomDense(6, 20, rng, -1, 1),
                               Matrix::RandomDense(20, 4, rng, -1, 1),
                               Matrix::RandomDense(4, 18, rng, -1, 1),
                               Matrix::RandomDense(18, 3, rng, -1, 1)};
  Matrix fold = chain[0];
  for (size_t i = 1; i < chain.size(); ++i) fold = MatMul(fold, chain[i]);
  EXPECT_LT(Matrix::MaxAbsDiff(MMChain(chain), fold), 1e-9);
}

// ---- Executor ----

TEST(Executor, EvaluatesParsedExpression) {
  Bindings b;
  b.Bind("X", SmallDense());
  auto e = ParseExpr("sum(X * 2)");
  ASSERT_TRUE(e.ok());
  auto r = Execute(e.value(), b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().AsScalar(), 42.0);
}

TEST(Executor, UnboundInputFails) {
  Bindings b;
  auto r = Execute(Expr::Var("missing"), b);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Executor, SharedNodesEvaluateOnce) {
  Bindings b;
  Rng rng(16);
  b.Bind("A", Matrix::RandomDense(10, 10, rng));
  ExprPtr shared = Expr::MatMul(Expr::Var("A"), Expr::Var("A"));
  ExprPtr e = Expr::Plus(Expr::Sum(shared), Expr::Sum(shared));
  ExecStats stats;
  auto r = Execute(e, b, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(stats.cse_hits, 1u);
}

TEST(Executor, MatMulChainUsesOptimalOrder) {
  // (big x small) chain: peak allocation must reflect the optimal order.
  Rng rng(17);
  Bindings b;
  b.Bind("U", Matrix::RandomDense(500, 4, rng));
  b.Bind("V", Matrix::RandomDense(300, 4, rng));
  b.Bind("w", Matrix::RandomDense(300, 1, rng));
  // U %*% t(V) %*% w evaluated right-to-left is tiny; left-to-right huge.
  auto e = ParseExpr("U %*% t(V) %*% w");
  ASSERT_TRUE(e.ok());
  ExecStats stats;
  auto r = Execute(e.value(), b, &stats);
  ASSERT_TRUE(r.ok());
  // Peak cells must be far below the 500x300 dense intermediate.
  EXPECT_LT(stats.peak_cells_allocated, 30000.0);
  // And numerics must match the naive order.
  Matrix naive = MatMul(MatMul(*b.Find(Symbol::Intern("U")),
                               Transpose(*b.Find(Symbol::Intern("V")))),
                        *b.Find(Symbol::Intern("w")));
  EXPECT_LT(Matrix::MaxAbsDiff(r.value(), naive), 1e-9);
}

TEST(Executor, BindingsDeriveCatalog) {
  Bindings b;
  Rng rng(18);
  b.Bind("S", Matrix::RandomSparse(50, 40, 0.1, rng));
  Catalog c = b.ToCatalog();
  ASSERT_TRUE(c.Has(Symbol::Intern("S")));
  EXPECT_EQ(c.Get(Symbol::Intern("S")).shape, (Shape{50, 40}));
  EXPECT_NEAR(c.Get(Symbol::Intern("S")).sparsity, 0.1, 0.05);
}

class ExecutorParsedSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ExecutorParsedSweep, AgreesWithManualKernels) {
  Rng rng(19);
  Bindings b;
  Matrix X = Matrix::RandomDense(9, 7, rng, -1, 1);
  Matrix Y = Matrix::RandomDense(9, 7, rng, -1, 1);
  b.Bind("X", X);
  b.Bind("Y", Y);
  auto e = ParseExpr(GetParam());
  ASSERT_TRUE(e.ok());
  auto r = Execute(e.value(), b);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows() > 0, true);
}

INSTANTIATE_TEST_SUITE_P(Exprs, ExecutorParsedSweep,
                         ::testing::Values("X + Y", "X - Y", "X * Y",
                                           "X / (Y + 3)", "t(X) %*% Y",
                                           "sum(X)", "rowSums(X * Y)",
                                           "colSums(X) %*% t(Y) %*% X",
                                           "exp(X * 0.1)", "sprop(X)",
                                           "-X + Y", "(X + Y) ^ 2"));

// ---- Randomized kernel equivalence (the PR-7 kernel overhaul) ----
// Every optimized kernel path — blocked/packed dense GEMM, CSR merges,
// nnz-only elementwise, fused transpose matmuls — must agree with a naive
// triple-loop / per-cell reference across representations and sparsities.

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix r = Matrix::Dense(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i)
    for (int64_t k = 0; k < a.cols(); ++k) {
      double av = a.At(i, k);
      if (av == 0) continue;
      for (int64_t j = 0; j < b.cols(); ++j)
        r.values()[i * b.cols() + j] += av * b.At(k, j);
    }
  return r;
}

struct KernelCase {
  int64_t m, k, n;
  double sa, sb;  // sparsity of a and b (1.0 = dense representation)
};

class KernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelEquivalence, MatMulFamilyMatchesNaive) {
  KernelCase c = GetParam();
  Rng rng(41);
  Matrix a = c.sa < 1.0 ? Matrix::RandomSparse(c.m, c.k, c.sa, rng, -1, 1)
                        : Matrix::RandomDense(c.m, c.k, rng, -1, 1);
  Matrix b = c.sb < 1.0 ? Matrix::RandomSparse(c.k, c.n, c.sb, rng, -1, 1)
                        : Matrix::RandomDense(c.k, c.n, rng, -1, 1);
  double tol = 1e-10 * static_cast<double>(c.k);
  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(a, b), NaiveMatMul(a, b)), tol);
  // t(at) %*% b via the fused kernel vs the same product materialized
  // (at is k x m, so t(at) %*% b == a %*% b).
  Matrix at = Transpose(a);
  EXPECT_LT(Matrix::MaxAbsDiff(TransLeftMatMul(at, b),
                               NaiveMatMul(a, b)), tol);
  // a %*% t(b) likewise (shapes: (m x k) x t(n x k) needs b as n x k).
  Matrix bt = Transpose(b);  // n x k
  EXPECT_LT(Matrix::MaxAbsDiff(TransRightMatMul(a, bt),
                               NaiveMatMul(a, b)), tol);
}

TEST_P(KernelEquivalence, ElementwiseMatchesPerCell) {
  KernelCase c = GetParam();
  Rng rng(43);
  Matrix a = c.sa < 1.0 ? Matrix::RandomSparse(c.m, c.k, c.sa, rng, -1, 1)
                        : Matrix::RandomDense(c.m, c.k, rng, -1, 1);
  Matrix b = c.sb < 1.0 ? Matrix::RandomSparse(c.m, c.k, c.sb, rng, -1, 1)
                        : Matrix::RandomDense(c.m, c.k, rng, -1, 1);
  for (auto op : {Add, Sub, Mul}) {
    Matrix got = op(a, b);
    for (int64_t i = 0; i < c.m; ++i)
      for (int64_t j = 0; j < c.k; ++j) {
        double want = op == Add   ? a.At(i, j) + b.At(i, j)
                      : op == Sub ? a.At(i, j) - b.At(i, j)
                                  : a.At(i, j) * b.At(i, j);
        ASSERT_NEAR(got.At(i, j), want, 1e-12) << i << "," << j;
      }
  }
  EXPECT_NEAR(SumAll(a), SumAll(a.is_sparse() ? a.ToDense() : a.ToSparse()),
              1e-9);
  EXPECT_LT(Matrix::MaxAbsDiff(Transpose(Transpose(a)), a), 0.0 + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSparsities, KernelEquivalence,
    ::testing::Values(KernelCase{3, 5, 4, 1.0, 1.0},      // tiny dense
                      KernelCase{64, 80, 48, 1.0, 1.0},   // packed-panel GEMM
                      KernelCase{40, 64, 32, 0.1, 1.0},   // CSR x dense
                      KernelCase{40, 64, 32, 1.0, 0.1},   // dense x CSR
                      KernelCase{50, 60, 40, 0.1, 0.2},   // SpGEMM
                      KernelCase{30, 30, 30, 0.9, 0.9},   // near-dense CSR
                      KernelCase{1, 100, 1, 0.3, 0.3},    // vector edge
                      KernelCase{128, 1, 128, 1.0, 1.0}));  // outer product

// ---- Serial vs parallel identity ----
// The kernels promise thread-count-independent results (disjoint row
// partitions; fixed-association SIMD dot). Identical means bitwise: the
// diff must be exactly zero, not merely small.

TEST(ThreadPoolKernels, ParallelMatchesSerialBitwise) {
  Rng rng(44);
  Matrix a = Matrix::RandomDense(150, 90, rng, -1, 1);
  Matrix b = Matrix::RandomDense(90, 70, rng, -1, 1);
  Matrix sa = Matrix::RandomSparse(150, 90, 0.1, rng, -1, 1);
  Matrix sb = Matrix::RandomSparse(90, 70, 0.15, rng, -1, 1);

  ThreadPool serial(1), wide(4);
  auto run_all = [&](ThreadPool* pool) {
    ThreadPool::ScopedPool use(pool);
    std::vector<Matrix> out;
    out.push_back(MatMul(a, b));
    out.push_back(MatMul(sa, b));
    out.push_back(MatMul(a, sb));
    out.push_back(MatMul(sa, sb));
    out.push_back(TransLeftMatMul(a, a));
    out.push_back(TransRightMatMul(b, b));
    out.push_back(Add(a, Scale(a, 2.0)));
    out.push_back(Add(sa, a));
    out.push_back(Transpose(a));
    out.push_back(RowSums(a));
    out.push_back(ColSums(sa));
    return out;
  };
  std::vector<Matrix> s = run_all(&serial), p = run_all(&wide);
  ASSERT_EQ(s.size(), p.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(Matrix::MaxAbsDiff(s[i], p[i]), 0.0) << "kernel #" << i;
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, SmallRangeRunsSerially) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(10, 100, [&](int64_t begin, int64_t end) {
    calls.fetch_add(1);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 10);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForFallsBackSerially) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      pool.ParallelFor(5, 1, [&](int64_t b2, int64_t e2) {
        inner_total.fetch_add(static_cast<int>(e2 - b2));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 40);
}

// ---- BufferPool accounting ----

TEST(BufferPoolTest, ReusesReleasedBuffers) {
  BufferPool pool;
  std::vector<double> v = pool.AcquireDoubles(1000);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(pool.stats().fresh_allocs, 1u);
  pool.Release(std::move(v));
  EXPECT_EQ(pool.stats().released, 1u);
  // Same size class (and a slightly smaller request) must hit the freelist.
  std::vector<double> w = pool.AcquireDoubles(900);
  EXPECT_EQ(w.size(), 900u);
  EXPECT_EQ(pool.stats().reuse_hits, 1u);
  EXPECT_EQ(pool.stats().fresh_allocs, 1u);
}

TEST(BufferPoolTest, ZeroRequestedBuffersAreZero) {
  BufferPool pool;
  std::vector<double> v = pool.AcquireDoubles(64);
  for (auto& x : v) x = 7.0;  // dirty it
  pool.Release(std::move(v));
  std::vector<double> z = pool.AcquireDoubles(64, /*zero=*/true);
  for (double x : z) ASSERT_EQ(x, 0.0);
}

TEST(BufferPoolTest, ByteCapDropsInsteadOfGrowing) {
  BufferPool pool(/*max_held_bytes=*/1024);
  std::vector<double> big = pool.AcquireDoubles(4096);  // 32 KB > cap
  pool.Release(std::move(big));
  EXPECT_EQ(pool.stats().dropped, 1u);
  EXPECT_EQ(pool.stats().bytes_held, 0u);
}

TEST(BufferPoolTest, RecycleStripsMatrixPayload) {
  BufferPool pool;
  Rng rng(45);
  pool.Recycle(Matrix::RandomDense(20, 20, rng));
  EXPECT_GT(pool.stats().bytes_held, 0u);
  // The 400-double payload parks in the [256, 512) capacity class; a
  // request at that class's floor must reuse it.
  std::vector<double> v = pool.AcquireDoubles(256);
  EXPECT_EQ(pool.stats().reuse_hits, 1u);
}

TEST(BufferPoolTest, ScopedUseInstallsAndRestores) {
  EXPECT_EQ(BufferPool::Current(), nullptr);
  BufferPool pool;
  {
    BufferPool::ScopedUse use(&pool);
    EXPECT_EQ(BufferPool::Current(), &pool);
  }
  EXPECT_EQ(BufferPool::Current(), nullptr);
}

// ---- Executor: arena reuse, eager release, profiling, error paths ----

TEST(Executor, ArenaReusesBuffersAcrossRuns) {
  Rng rng(46);
  Bindings b;
  b.Bind("X", Matrix::RandomDense(60, 60, rng, -1, 1));
  auto e = ParseExpr("t(X) %*% X + X * 2");
  ASSERT_TRUE(e.ok());
  ExecutorArena arena;
  auto first = Execute(e.value(), b, &arena);
  ASSERT_TRUE(first.ok());
  size_t hits_after_first = arena.pool_stats().reuse_hits;
  auto second = Execute(e.value(), b, &arena);
  ASSERT_TRUE(second.ok());
  // The second DAG's intermediates come from the first run's recycled
  // buffers.
  EXPECT_GT(arena.pool_stats().reuse_hits, hits_after_first);
  EXPECT_EQ(Matrix::MaxAbsDiff(first.value(), second.value()), 0.0);
}

TEST(Executor, EagerlyReleasesDeadIntermediates) {
  Rng rng(47);
  Bindings b;
  b.Bind("X", Matrix::RandomDense(40, 40, rng, -1, 1));
  // A chain of intermediates, each dead after its parent consumes it.
  auto e = ParseExpr("sum(exp((X + 1) * 0.01) - X)");
  ASSERT_TRUE(e.ok());
  ExecStats stats;
  auto r = Execute(e.value(), b, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.eager_releases, 0u);
}

TEST(Executor, ProfileRecordsPerOpTimeAndNnz) {
  Rng rng(48);
  Bindings b;
  b.Bind("S", Matrix::RandomSparse(50, 50, 0.1, rng, 1, 2));
  auto e = ParseExpr("sqrt(S) * 3");
  ASSERT_TRUE(e.ok());
  ExecStats stats;
  auto r = Execute(e.value(), b, &stats);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(stats.profile.empty());
  bool saw_sparse_nnz = false;
  for (const OpProfile& p : stats.profile) {
    EXPECT_GE(p.seconds, 0.0);
    EXPECT_GT(p.rows, 0);
    if (p.out_nnz >= 0) saw_sparse_nnz = true;
  }
  EXPECT_TRUE(saw_sparse_nnz);  // sparse outputs report observed nnz
}

TEST(Executor, ProfileResetsPerExecuteInsteadOfAccumulating) {
  Rng rng(50);
  Bindings b;
  b.Bind("S", Matrix::RandomSparse(50, 50, 0.1, rng, 1, 2));
  auto e = ParseExpr("sqrt(S) * 3");
  ASSERT_TRUE(e.ok());
  ExecStats stats;
  ExecutorArena arena;
  ASSERT_TRUE(Execute(e.value(), b, &arena, &stats).ok());
  const size_t after_first = stats.profile.size();
  const size_t ops_after_first = stats.ops_executed;
  ASSERT_GT(after_first, 0u);
  // A long-lived ExecStats (serving keeps one per shard beside the arena)
  // must describe the MOST RECENT DAG only — profile entries used to
  // accumulate across calls, growing without bound over a pool's lifetime.
  ASSERT_TRUE(Execute(e.value(), b, &arena, &stats).ok());
  EXPECT_EQ(stats.profile.size(), after_first);
  // The cumulative counters, by contrast, keep counting.
  EXPECT_EQ(stats.ops_executed, 2 * ops_after_first);
}

TEST(Executor, ShapeMismatchMidDagIsInvalidArgument) {
  Rng rng(49);
  Bindings b;
  b.Bind("X", Matrix::RandomDense(4, 5, rng));
  b.Bind("Y", Matrix::RandomDense(6, 5, rng));
  // The mismatch is inside the DAG (matmul inner dims), not at a leaf.
  auto r = Execute(Expr::Sum(Expr::MatMul(Expr::Var("X"), Expr::Var("Y"))),
                   b);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Incompatible elementwise shapes likewise.
  auto r2 = Execute(Expr::Plus(Expr::Var("X"), Expr::Var("Y")), b);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
}

TEST(Executor, UnknownUnaryIsUnsupported) {
  Bindings b;
  b.Bind("X", SmallDense());
  auto r = Execute(Expr::Unary("frobnicate", Expr::Var("X")), b);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(Executor, AnalyzeFailsBeforeAnyKernelRuns) {
  Rng rng(50);
  Bindings b;
  b.Bind("X", Matrix::RandomDense(5, 5, rng));
  // The unbound leaf is deep in the DAG; no op may execute before the
  // error surfaces.
  ExprPtr e = Expr::Sum(Expr::MatMul(
      Expr::Plus(Expr::Var("X"), Expr::Var("X")), Expr::Var("missing")));
  ExecStats stats;
  auto r = Execute(e, b, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(stats.ops_executed, 0u);
  EXPECT_TRUE(stats.profile.empty());
}

TEST(Fused, MMChainTMatchesExplicitTransposes) {
  Rng rng(51);
  // Chain: t(A) %*% B %*% t(C) with awkward dims so order matters.
  Matrix a = Matrix::RandomDense(30, 6, rng, -1, 1);   // t(a): 6 x 30
  Matrix b = Matrix::RandomDense(30, 25, rng, -1, 1);  // 30 x 25
  Matrix c = Matrix::RandomDense(8, 25, rng, -1, 1);   // t(c): 25 x 8
  Matrix naive = MatMul(MatMul(Transpose(a), b), Transpose(c));
  Matrix fused = MMChainT({&a, &b, &c}, {1, 0, 1});
  EXPECT_LT(Matrix::MaxAbsDiff(fused, naive), 1e-9);
}

TEST(Executor, TransposedChainAvoidsMaterializingTransposes)  {
  Rng rng(52);
  Bindings b;
  b.Bind("U", Matrix::RandomDense(400, 4, rng));
  b.Bind("V", Matrix::RandomDense(400, 300, rng));
  // t(U) %*% V: the fused kernel reads U's columns in place; a
  // materialized t(U) would add a 4x400 copy but, more tellingly, the
  // plan's peak stays near the 4x300 output.
  auto e = ParseExpr("t(U) %*% V %*% t(V) %*% U");
  ASSERT_TRUE(e.ok());
  ExecStats stats;
  auto r = Execute(e.value(), b, &stats);
  ASSERT_TRUE(r.ok());
  Matrix u = *b.Find(Symbol::Intern("U"));
  Matrix v = *b.Find(Symbol::Intern("V"));
  Matrix naive = MatMul(MatMul(MatMul(Transpose(u), v), Transpose(v)), u);
  EXPECT_LT(Matrix::MaxAbsDiff(r.value(), naive), 1e-7);
  // peak_cells_allocated sums every node result, and each of the four
  // leaf occurrences counts its input: 2*(1600 + 120000) + the 4x4 root
  // = 243232 cells. Anything above that means a transpose was
  // materialized as its own node (+120000) or the chain order went bad
  // (+160000 for a 400x400 product) — the fused kernel must add nothing.
  EXPECT_LT(stats.peak_cells_allocated, 244000.0);
}

}  // namespace
}  // namespace spores
