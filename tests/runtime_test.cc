// Tests of the execution substrate: dense/CSR matrices, kernels (with
// broadcast and sparse fast paths), fused operators, and the DAG executor.
#include <gtest/gtest.h>

#include <cmath>

#include "src/ir/parser.h"
#include "src/runtime/executor.h"
#include "src/runtime/fused.h"
#include "src/runtime/kernels.h"

namespace spores {
namespace {

Matrix SmallDense() {
  return Matrix::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
}

TEST(Matrix, DenseConstruction) {
  Matrix m = SmallDense();
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_FALSE(m.is_sparse());
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6);
  EXPECT_EQ(m.Nnz(), 6);
}

TEST(Matrix, TripletsBuildCsr) {
  Matrix m = Matrix::FromTriplets(3, 3, {{0, 1, 2.0}, {2, 0, 5.0},
                                         {0, 1, 3.0}});  // duplicate sums
  EXPECT_TRUE(m.is_sparse());
  EXPECT_DOUBLE_EQ(m.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
  EXPECT_EQ(m.Nnz(), 2);
}

TEST(Matrix, TripletsDropExplicitZeros) {
  Matrix m = Matrix::FromTriplets(2, 2, {{0, 0, 0.0}, {1, 1, 3.0}});
  EXPECT_EQ(m.Nnz(), 1);
}

TEST(Matrix, DenseSparseRoundTrip) {
  Matrix d = SmallDense();
  Matrix s = d.ToSparse();
  EXPECT_TRUE(s.is_sparse());
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(d, s.ToDense()), 0.0);
}

TEST(Matrix, RandomSparseRespectsDensityRoughly) {
  Rng rng(5);
  Matrix m = Matrix::RandomSparse(200, 200, 0.1, rng);
  double density = static_cast<double>(m.Nnz()) / m.size();
  EXPECT_NEAR(density, 0.1, 0.02);
}

TEST(Matrix, ScalarHelpers) {
  Matrix s = Matrix::Scalar(4.25);
  EXPECT_TRUE(s.IsScalar());
  EXPECT_DOUBLE_EQ(s.AsScalar(), 4.25);
}

// ---- Kernels ----

TEST(Kernels, AddDense) {
  Matrix r = Add(SmallDense(), SmallDense());
  EXPECT_DOUBLE_EQ(r.At(1, 2), 12.0);
}

TEST(Kernels, SubSparseSparse) {
  Rng rng(6);
  Matrix a = Matrix::RandomSparse(30, 20, 0.2, rng);
  Matrix r = Sub(a, a);
  EXPECT_EQ(r.Nnz(), 0);
}

TEST(Kernels, MulSparsePathPreservesSupport) {
  Rng rng(7);
  Matrix sp = Matrix::RandomSparse(40, 30, 0.1, rng);
  Matrix dn = Matrix::RandomDense(40, 30, rng, 1.0, 2.0);
  Matrix r = Mul(sp, dn);
  EXPECT_TRUE(r.is_sparse());
  EXPECT_LE(r.Nnz(), sp.Nnz());
  EXPECT_LT(Matrix::MaxAbsDiff(r, Mul(sp.ToDense(), dn)), 1e-12);
}

TEST(Kernels, BroadcastScalar) {
  Matrix r = Mul(SmallDense(), Matrix::Scalar(2.0));
  EXPECT_DOUBLE_EQ(r.At(1, 0), 8.0);
  r = Add(Matrix::Scalar(1.0), SmallDense());
  EXPECT_DOUBLE_EQ(r.At(0, 0), 2.0);
}

TEST(Kernels, BroadcastColVector) {
  Matrix v = Matrix::FromValues(2, 1, {10, 100});
  Matrix r = Mul(SmallDense(), v);
  EXPECT_DOUBLE_EQ(r.At(0, 2), 30.0);
  EXPECT_DOUBLE_EQ(r.At(1, 0), 400.0);
}

TEST(Kernels, BroadcastRowVector) {
  Matrix v = Matrix::FromValues(1, 3, {1, 10, 100});
  Matrix r = Mul(SmallDense(), v);
  EXPECT_DOUBLE_EQ(r.At(1, 1), 50.0);
  EXPECT_DOUBLE_EQ(r.At(0, 2), 300.0);
}

TEST(Kernels, OuterBroadcastAdd) {
  Matrix col = Matrix::FromValues(2, 1, {1, 2});
  Matrix row = Matrix::FromValues(1, 3, {10, 20, 30});
  Matrix r = Add(col, row);
  EXPECT_EQ(r.rows(), 2);
  EXPECT_EQ(r.cols(), 3);
  EXPECT_DOUBLE_EQ(r.At(1, 2), 32.0);
}

TEST(Kernels, DivSparseNumerator) {
  Rng rng(8);
  Matrix sp = Matrix::RandomSparse(20, 20, 0.2, rng, 1.0, 2.0);
  Matrix dn = Matrix::RandomDense(20, 20, rng, 1.0, 2.0);
  Matrix r = Div(sp, dn);
  EXPECT_TRUE(r.is_sparse());
  EXPECT_LT(Matrix::MaxAbsDiff(r, Div(sp.ToDense(), dn)), 1e-12);
}

TEST(Kernels, MatMulAllRepresentationCombos) {
  Rng rng(9);
  Matrix a_d = Matrix::RandomDense(12, 7, rng, -1, 1);
  Matrix b_d = Matrix::RandomDense(7, 9, rng, -1, 1);
  Matrix a_s = Matrix::RandomSparse(12, 7, 0.3, rng, -1, 1);
  Matrix b_s = Matrix::RandomSparse(7, 9, 0.3, rng, -1, 1);
  Matrix want_ss = MatMul(a_s.ToDense(), b_s.ToDense());
  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(a_s, b_s), want_ss), 1e-10);
  Matrix want_sd = MatMul(a_s.ToDense(), b_d);
  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(a_s, b_d), want_sd), 1e-10);
  Matrix want_ds = MatMul(a_d, b_s.ToDense());
  EXPECT_LT(Matrix::MaxAbsDiff(MatMul(a_d, b_s), want_ds), 1e-10);
}

TEST(Kernels, MatMulKnownValues) {
  Matrix a = Matrix::FromValues(2, 2, {1, 2, 3, 4});
  Matrix b = Matrix::FromValues(2, 2, {5, 6, 7, 8});
  Matrix r = MatMul(a, b);
  EXPECT_DOUBLE_EQ(r.At(0, 0), 19);
  EXPECT_DOUBLE_EQ(r.At(0, 1), 22);
  EXPECT_DOUBLE_EQ(r.At(1, 0), 43);
  EXPECT_DOUBLE_EQ(r.At(1, 1), 50);
}

TEST(Kernels, TransposeBothReps) {
  Matrix d = SmallDense();
  EXPECT_DOUBLE_EQ(Transpose(d).At(2, 1), 6.0);
  Matrix s = d.ToSparse();
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(Transpose(s).ToDense(), Transpose(d)),
                   0.0);
}

TEST(Kernels, Aggregates) {
  Matrix d = SmallDense();
  EXPECT_DOUBLE_EQ(SumAll(d), 21.0);
  EXPECT_DOUBLE_EQ(RowSums(d).At(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(RowSums(d).At(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(ColSums(d).At(0, 1), 7.0);
  Matrix s = d.ToSparse();
  EXPECT_DOUBLE_EQ(SumAll(s), 21.0);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(RowSums(s), RowSums(d)), 0.0);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(ColSums(s), ColSums(d)), 0.0);
}

TEST(Kernels, PowAndUnary) {
  Matrix d = SmallDense();
  EXPECT_DOUBLE_EQ(PowElem(d, 2.0).At(1, 2), 36.0);
  EXPECT_DOUBLE_EQ(Unary("abs", Scale(d, -1.0)).At(0, 1), 2.0);
  EXPECT_NEAR(Unary("sigmoid", Matrix::Scalar(0.0)).AsScalar(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(Unary("sign", Matrix::Scalar(-3.0)).AsScalar(), -1.0);
}

TEST(Kernels, UnarySparseZeroPreserving) {
  Rng rng(10);
  Matrix sp = Matrix::RandomSparse(20, 20, 0.1, rng, 1.0, 4.0);
  Matrix r = Unary("sqrt", sp);
  EXPECT_TRUE(r.is_sparse());
  EXPECT_EQ(r.Nnz(), sp.Nnz());
}

TEST(Kernels, UnaryDensifying) {
  Rng rng(10);
  Matrix sp = Matrix::RandomSparse(10, 10, 0.1, rng);
  Matrix r = Unary("exp", sp);
  EXPECT_FALSE(r.is_sparse());
  EXPECT_DOUBLE_EQ(r.At(0, 0) > 0, true);
}

// ---- Fused operators ----

TEST(Fused, WsLossMatchesNaive) {
  Rng rng(11);
  Matrix x = Matrix::RandomSparse(30, 25, 0.15, rng, -1, 1);
  Matrix u = Matrix::RandomDense(30, 4, rng, -1, 1);
  Matrix v = Matrix::RandomDense(25, 4, rng, -1, 1);
  Matrix residual = Sub(x.ToDense(), MatMul(u, Transpose(v)));
  double naive = SumAll(Mul(residual, residual));
  EXPECT_NEAR(WsLoss(x, u, v), naive, 1e-8 * std::abs(naive) + 1e-8);
}

TEST(Fused, WsLossDenseX) {
  Rng rng(12);
  Matrix x = Matrix::RandomDense(10, 8, rng, -1, 1);
  Matrix u = Matrix::RandomDense(10, 3, rng, -1, 1);
  Matrix v = Matrix::RandomDense(8, 3, rng, -1, 1);
  Matrix residual = Sub(x, MatMul(u, Transpose(v)));
  double naive = SumAll(Mul(residual, residual));
  EXPECT_NEAR(WsLoss(x, u, v), naive, 1e-8);
}

TEST(Fused, SPropMatchesDefinition) {
  Rng rng(13);
  Matrix p = Matrix::RandomDense(15, 5, rng, 0.01, 0.99);
  Matrix expected = Mul(p, Sub(Matrix::Scalar(1.0), p));
  EXPECT_LT(Matrix::MaxAbsDiff(SProp(p), expected), 1e-12);
}

TEST(Fused, SPropSparsePreservesSupport) {
  Rng rng(14);
  Matrix p = Matrix::RandomSparse(20, 20, 0.1, rng, 0.2, 0.8);
  Matrix r = SProp(p);
  EXPECT_TRUE(r.is_sparse());
  EXPECT_EQ(r.Nnz(), p.Nnz());
}

TEST(Fused, MMChainMatchesLeftFold) {
  Rng rng(15);
  std::vector<Matrix> chain = {Matrix::RandomDense(6, 20, rng, -1, 1),
                               Matrix::RandomDense(20, 4, rng, -1, 1),
                               Matrix::RandomDense(4, 18, rng, -1, 1),
                               Matrix::RandomDense(18, 3, rng, -1, 1)};
  Matrix fold = chain[0];
  for (size_t i = 1; i < chain.size(); ++i) fold = MatMul(fold, chain[i]);
  EXPECT_LT(Matrix::MaxAbsDiff(MMChain(chain), fold), 1e-9);
}

// ---- Executor ----

TEST(Executor, EvaluatesParsedExpression) {
  Bindings b;
  b.Bind("X", SmallDense());
  auto e = ParseExpr("sum(X * 2)");
  ASSERT_TRUE(e.ok());
  auto r = Execute(e.value(), b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().AsScalar(), 42.0);
}

TEST(Executor, UnboundInputFails) {
  Bindings b;
  auto r = Execute(Expr::Var("missing"), b);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Executor, SharedNodesEvaluateOnce) {
  Bindings b;
  Rng rng(16);
  b.Bind("A", Matrix::RandomDense(10, 10, rng));
  ExprPtr shared = Expr::MatMul(Expr::Var("A"), Expr::Var("A"));
  ExprPtr e = Expr::Plus(Expr::Sum(shared), Expr::Sum(shared));
  ExecStats stats;
  auto r = Execute(e, b, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(stats.cse_hits, 1u);
}

TEST(Executor, MatMulChainUsesOptimalOrder) {
  // (big x small) chain: peak allocation must reflect the optimal order.
  Rng rng(17);
  Bindings b;
  b.Bind("U", Matrix::RandomDense(500, 4, rng));
  b.Bind("V", Matrix::RandomDense(300, 4, rng));
  b.Bind("w", Matrix::RandomDense(300, 1, rng));
  // U %*% t(V) %*% w evaluated right-to-left is tiny; left-to-right huge.
  auto e = ParseExpr("U %*% t(V) %*% w");
  ASSERT_TRUE(e.ok());
  ExecStats stats;
  auto r = Execute(e.value(), b, &stats);
  ASSERT_TRUE(r.ok());
  // Peak cells must be far below the 500x300 dense intermediate.
  EXPECT_LT(stats.peak_cells_allocated, 30000.0);
  // And numerics must match the naive order.
  Matrix naive = MatMul(MatMul(b.Get(Symbol::Intern("U")),
                               Transpose(b.Get(Symbol::Intern("V")))),
                        b.Get(Symbol::Intern("w")));
  EXPECT_LT(Matrix::MaxAbsDiff(r.value(), naive), 1e-9);
}

TEST(Executor, BindingsDeriveCatalog) {
  Bindings b;
  Rng rng(18);
  b.Bind("S", Matrix::RandomSparse(50, 40, 0.1, rng));
  Catalog c = b.ToCatalog();
  ASSERT_TRUE(c.Has(Symbol::Intern("S")));
  EXPECT_EQ(c.Get(Symbol::Intern("S")).shape, (Shape{50, 40}));
  EXPECT_NEAR(c.Get(Symbol::Intern("S")).sparsity, 0.1, 0.05);
}

class ExecutorParsedSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ExecutorParsedSweep, AgreesWithManualKernels) {
  Rng rng(19);
  Bindings b;
  Matrix X = Matrix::RandomDense(9, 7, rng, -1, 1);
  Matrix Y = Matrix::RandomDense(9, 7, rng, -1, 1);
  b.Bind("X", X);
  b.Bind("Y", Y);
  auto e = ParseExpr(GetParam());
  ASSERT_TRUE(e.ok());
  auto r = Execute(e.value(), b);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows() > 0, true);
}

INSTANTIATE_TEST_SUITE_P(Exprs, ExecutorParsedSweep,
                         ::testing::Values("X + Y", "X - Y", "X * Y",
                                           "X / (Y + 3)", "t(X) %*% Y",
                                           "sum(X)", "rowSums(X * Y)",
                                           "colSums(X) %*% t(Y) %*% X",
                                           "exp(X * 0.1)", "sprop(X)",
                                           "-X + Y", "(X + Y) ^ 2"));

}  // namespace
}  // namespace spores
