// Property-style invariant testing of the arena-backed e-graph: after any
// sequence of Add / Merge / Rebuild operations, EGraph::CheckInvariants()
// must report the hashcons, union-find, class node lists, and parent
// indexes as mutually consistent. Sequences are generated randomly over a
// small operator alphabet so congruence cascades, duplicate forms, and
// deep merge chains all occur; fuzz_test.cc additionally runs the same
// check on the session's shared graph after full optimizer pipelines.
#include <gtest/gtest.h>

#include "src/egraph/egraph.h"
#include "src/egraph/term_extract.h"
#include "src/util/rng.h"

namespace spores {
namespace {

ENode Leaf(const std::string& name) {
  ENode n;
  n.op = Op::kVar;
  n.sym = Symbol::Intern(name);
  return n;
}

ENode Node(Op op, std::vector<ClassId> children) {
  ENode n;
  n.op = op;
  n.children = std::move(children);
  return n;
}

// Random Add/Merge/Rebuild driver. Ops with arity 1 and 2 over existing
// classes, a few distinct leaves, duplicate adds, and self-referential
// children (cycles) are all in scope.
void RunRandomSequence(uint64_t seed, size_t num_ops, EGraph& eg) {
  Rng rng(seed);
  std::vector<ClassId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(eg.Add(Leaf("v" + std::to_string(i))));
  }
  const Op unary[] = {Op::kTranspose, Op::kRowAgg, Op::kColAgg};
  const Op binary[] = {Op::kElemPlus, Op::kElemMul, Op::kMatMul};
  for (size_t op = 0; op < num_ops; ++op) {
    switch (rng.Uniform(8)) {
      case 0:
      case 1:
      case 2: {  // unary node over a random class
        ClassId c = ids[rng.Uniform(ids.size())];
        ids.push_back(eg.Add(Node(unary[rng.Uniform(3)], {c})));
        break;
      }
      case 3:
      case 4: {  // binary node (children may coincide)
        ClassId a = ids[rng.Uniform(ids.size())];
        ClassId b = ids[rng.Uniform(ids.size())];
        ids.push_back(eg.Add(Node(binary[rng.Uniform(3)], {a, b})));
        break;
      }
      case 5: {  // duplicate add: must hashcons to an existing class
        ClassId c = ids[rng.Uniform(ids.size())];
        ids.push_back(eg.Add(Node(unary[0], {c})));
        break;
      }
      case 6: {  // merge two random classes (may create cycles)
        ClassId a = ids[rng.Uniform(ids.size())];
        ClassId b = ids[rng.Uniform(ids.size())];
        eg.Merge(a, b);
        break;
      }
      default:
        eg.Rebuild();
        break;
    }
  }
  eg.Rebuild();
}

class EGraphInvariants : public ::testing::TestWithParam<int> {};

TEST_P(EGraphInvariants, RandomSequencesStayConsistent) {
  EGraph eg;
  RunRandomSequence(static_cast<uint64_t>(GetParam()) * 6151 + 7, 300, eg);
  std::string err = eg.CheckInvariants();
  EXPECT_TRUE(err.empty()) << err;
  // The graph must still answer queries: every canonical class either
  // extracts a finite term or is cyclic-only.
  for (ClassId c : eg.CanonicalClasses()) {
    (void)SmallestTerm(eg, c);  // must not crash or hang
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EGraphInvariants, ::testing::Range(0, 25));

TEST(EGraphInvariants, CheckpointsDuringSequence) {
  // Invariants hold at every Rebuild point, not just at the end.
  EGraph eg;
  Rng rng(99);
  std::vector<ClassId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(eg.Add(Leaf("w" + std::to_string(i))));
  }
  for (int step = 0; step < 40; ++step) {
    ClassId a = ids[rng.Uniform(ids.size())];
    ClassId b = ids[rng.Uniform(ids.size())];
    ids.push_back(eg.Add(Node(Op::kElemPlus, {a, b})));
    ids.push_back(eg.Add(Node(Op::kTranspose, {a})));
    if (step % 3 == 0) eg.Merge(a, b);
    eg.Rebuild();
    std::string err = eg.CheckInvariants();
    ASSERT_TRUE(err.empty()) << "step " << step << ": " << err;
  }
}

TEST(EGraphInvariants, CongruenceCascadeConsistency) {
  // Deep congruence cascade: merging the leaves must collapse every level,
  // with all indexes agreeing afterwards.
  EGraph eg;
  ClassId x = eg.Add(Leaf("x"));
  ClassId y = eg.Add(Leaf("y"));
  ClassId fx = x, fy = y;
  std::vector<std::pair<ClassId, ClassId>> levels;
  for (int i = 0; i < 8; ++i) {
    fx = eg.Add(Node(Op::kTranspose, {fx}));
    fy = eg.Add(Node(Op::kTranspose, {fy}));
    levels.emplace_back(fx, fy);
  }
  eg.Merge(x, y);
  eg.Rebuild();
  for (auto [a, b] : levels) EXPECT_EQ(eg.Find(a), eg.Find(b));
  std::string err = eg.CheckInvariants();
  EXPECT_TRUE(err.empty()) << err;
}

TEST(EGraphInvariants, CompactPreservesReachableEquivalences) {
  EGraph eg;
  ClassId x = eg.Add(Leaf("x"));
  ClassId tx = eg.Add(Node(Op::kTranspose, {x}));
  ClassId ttx = eg.Add(Node(Op::kTranspose, {tx}));
  ClassId dead = eg.Add(Leaf("dead"));
  eg.Add(Node(Op::kRowAgg, {dead}));
  eg.Merge(ttx, x);
  eg.Rebuild();

  EGraph out;
  std::vector<ClassId> roots = eg.CompactInto(out, {eg.Find(ttx)});
  ASSERT_EQ(roots.size(), 1u);
  ASSERT_NE(roots[0], kInvalidClassId);
  std::string err = out.CheckInvariants();
  EXPECT_TRUE(err.empty()) << err;
  // The t(t(x)) == x equivalence survives; the dead branch does not.
  EXPECT_TRUE(out.Represents(roots[0], Expr::Var("x")));
  EXPECT_FALSE(out.LookupExpr(Expr::Var("dead")).has_value());
  EXPECT_LT(out.ArenaSize(), eg.ArenaSize());
}

}  // namespace
}  // namespace spores
