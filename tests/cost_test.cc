// Tests of the cost model (Sec 3.1 / Fig 12): per-node output-nnz charging
// and the sparsity-driven plan asymmetries the paper's speedups rely on.
#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/ir/parser.h"
#include "src/rules/rules_lr.h"

namespace spores {
namespace {

struct Fixture {
  Catalog catalog;
  std::shared_ptr<DimEnv> dims = std::make_shared<DimEnv>();
  RaContext ctx;
  std::unique_ptr<EGraph> egraph;
  CostModel cost;

  Fixture() : ctx(), cost(RaContext{}) {
    catalog.Register("Xs", 1000, 500, 0.01);  // sparse
    catalog.Register("Xd", 1000, 500, 1.0);   // dense
    catalog.Register("u", 1000, 1);
    catalog.Register("v", 500, 1);
    ctx = RaContext{&catalog, dims};
    cost = CostModel(ctx);
    egraph = std::make_unique<EGraph>(std::make_unique<RaAnalysis>(ctx));
  }

  double NodeCostOf(const ExprPtr& ra) {
    ClassId id = egraph->AddExpr(ra);
    egraph->Rebuild();
    const EClass& cls = egraph->GetClass(id);
    // The node we just added is the last one.
    return cost.NodeCost(*egraph, egraph->NodeAt(cls.nodes.back()));
  }
};

TEST(CostModel, LeavesAreFree) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.NodeCostOf(Expr::Var("Xd")), 0.0);
  EXPECT_DOUBLE_EQ(f.NodeCostOf(Expr::Const(7.0)), 0.0);
}

TEST(CostModel, BindIsFree) {
  Fixture f;
  Symbol i = Symbol::Intern("ci"), j = Symbol::Intern("cj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  EXPECT_DOUBLE_EQ(f.NodeCostOf(Expr::Bind({i, j}, Expr::Var("Xd"))), 0.0);
}

TEST(CostModel, DenseJoinChargesFullSize) {
  Fixture f;
  Symbol i = Symbol::Intern("di"), j = Symbol::Intern("dj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr join = Expr::Join({Expr::Bind({i, j}, Expr::Var("Xd")),
                             Expr::Bind({i, j}, Expr::Var("Xd"))});
  EXPECT_DOUBLE_EQ(f.NodeCostOf(join), 500000.0);
}

TEST(CostModel, SparseJoinChargesNnz) {
  Fixture f;
  Symbol i = Symbol::Intern("ei"), j = Symbol::Intern("ej");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr join = Expr::Join({Expr::Bind({i, j}, Expr::Var("Xs")),
                             Expr::Bind({i, j}, Expr::Var("Xd"))});
  EXPECT_DOUBLE_EQ(f.NodeCostOf(join), 5000.0);  // 0.01 * 500k
}

TEST(CostModel, ScalarCoefficientJoinIsFree) {
  Fixture f;
  Symbol i = Symbol::Intern("fi"), j = Symbol::Intern("fj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr join = Expr::Join({Expr::Const(-1.0),
                             Expr::Bind({i, j}, Expr::Var("Xd"))});
  EXPECT_DOUBLE_EQ(f.NodeCostOf(join), 0.0);
}

TEST(CostModel, OuterProductJoinChargesCrossSize) {
  // The u v^T outer product: |i| x |j| even though inputs are vectors.
  Fixture f;
  Symbol i = Symbol::Intern("gi"), j = Symbol::Intern("gj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr join = Expr::Join({Expr::Bind({i}, Expr::Var("u")),
                             Expr::Bind({j}, Expr::Var("v"))});
  EXPECT_DOUBLE_EQ(f.NodeCostOf(join), 500000.0);
}

TEST(CostModel, AggChargesOutputSize) {
  Fixture f;
  Symbol i = Symbol::Intern("hi"), j = Symbol::Intern("hj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr agg = Expr::Agg({j}, Expr::Bind({i, j}, Expr::Var("Xd")));
  EXPECT_DOUBLE_EQ(f.NodeCostOf(agg), 1000.0);  // a dense 1000-vector
}

TEST(CostModel, ClassNnzUsesSchemaAndSparsity) {
  Fixture f;
  Symbol i = Symbol::Intern("ki"), j = Symbol::Intern("kj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ClassId id = f.egraph->AddExpr(Expr::Bind({i, j}, Expr::Var("Xs")));
  f.egraph->Rebuild();
  EXPECT_DOUBLE_EQ(f.cost.ClassNnz(*f.egraph, id), 5000.0);
}

TEST(CostModel, SparsityMakesExpandedAlsPlanCheaper) {
  // The ALS insight (Sec 4.2): with sparse X, distributing
  // (UV^T - X) V beats computing the dense residual. Model it coarsely:
  // the union (residual) node is dense-sized, while X's join with V is
  // nnz-sized.
  Fixture f;
  Symbol i = Symbol::Intern("ali"), j = Symbol::Intern("alj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr dense_residual =
      Expr::Union({Expr::Bind({i, j}, Expr::Var("Xd")),
                   Expr::Join({Expr::Const(-1.0),
                               Expr::Bind({i, j}, Expr::Var("Xs"))})});
  double residual_cost = f.NodeCostOf(dense_residual);
  ExprPtr sparse_join = Expr::Join({Expr::Bind({i, j}, Expr::Var("Xs")),
                                    Expr::Bind({j}, Expr::Var("v"))});
  double sparse_cost = f.NodeCostOf(sparse_join);
  EXPECT_GT(residual_cost, 50 * sparse_cost);
}

TEST(CostMemo, AgreesWithModelAndTracksVersions) {
  Fixture f;
  Symbol i = Symbol::Intern("mi"), j = Symbol::Intern("mj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ClassId bound = f.egraph->AddExpr(Expr::Bind({i, j}, Expr::Var("Xs")));
  ClassId agg = f.egraph->AddExpr(
      Expr::Agg({j}, Expr::Bind({i, j}, Expr::Var("Xs"))));
  f.egraph->Rebuild();
  NodeId agg_node = f.egraph->GetClass(agg).nodes.back();

  CostMemo memo;
  double model_cost = f.cost.NodeCost(*f.egraph, f.egraph->NodeAt(agg_node));
  EXPECT_DOUBLE_EQ(memo.NodeCost(f.cost, *f.egraph, agg_node), model_cost);
  EXPECT_DOUBLE_EQ(memo.NodeCost(f.cost, *f.egraph, agg_node), model_cost);
  EXPECT_DOUBLE_EQ(memo.ClassNnz(f.cost, *f.egraph, bound),
                   f.cost.ClassNnz(*f.egraph, bound));

  // Merging the aggregate's child with a denser class bumps the child's
  // version and refines its analysis data; the memo must re-cost, matching
  // the model on the updated graph.
  ClassId dense = f.egraph->AddExpr(Expr::Bind({i, j}, Expr::Var("Xd")));
  f.egraph->Merge(bound, dense);
  f.egraph->Rebuild();
  EXPECT_DOUBLE_EQ(
      memo.NodeCost(f.cost, *f.egraph, agg_node),
      f.cost.NodeCost(*f.egraph, f.egraph->NodeAt(agg_node)));
  EXPECT_DOUBLE_EQ(memo.ClassNnz(f.cost, *f.egraph, bound),
                   f.cost.ClassNnz(*f.egraph, bound));
}

}  // namespace
}  // namespace spores
