// Tests of the cost model (Sec 3.1 / Fig 12): per-node output-nnz charging
// and the sparsity-driven plan asymmetries the paper's speedups rely on.
#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/ir/parser.h"
#include "src/rules/rules_lr.h"

namespace spores {
namespace {

struct Fixture {
  Catalog catalog;
  std::shared_ptr<DimEnv> dims = std::make_shared<DimEnv>();
  RaContext ctx;
  std::unique_ptr<EGraph> egraph;
  CostModel cost;

  Fixture() : ctx(), cost(RaContext{}) {
    catalog.Register("Xs", 1000, 500, 0.01);  // sparse
    catalog.Register("Xd", 1000, 500, 1.0);   // dense
    catalog.Register("u", 1000, 1);
    catalog.Register("v", 500, 1);
    ctx = RaContext{&catalog, dims};
    cost = CostModel(ctx);
    egraph = std::make_unique<EGraph>(std::make_unique<RaAnalysis>(ctx));
  }

  double NodeCostOf(const ExprPtr& ra) {
    ClassId id = egraph->AddExpr(ra);
    egraph->Rebuild();
    const EClass& cls = egraph->GetClass(id);
    // The node we just added is the last one.
    return cost.NodeCost(*egraph, egraph->NodeAt(cls.nodes.back()));
  }
};

TEST(CostModel, LeavesAreFree) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.NodeCostOf(Expr::Var("Xd")), 0.0);
  EXPECT_DOUBLE_EQ(f.NodeCostOf(Expr::Const(7.0)), 0.0);
}

TEST(CostModel, BindIsFree) {
  Fixture f;
  Symbol i = Symbol::Intern("ci"), j = Symbol::Intern("cj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  EXPECT_DOUBLE_EQ(f.NodeCostOf(Expr::Bind({i, j}, Expr::Var("Xd"))), 0.0);
}

TEST(CostModel, DenseJoinChargesFullSize) {
  Fixture f;
  Symbol i = Symbol::Intern("di"), j = Symbol::Intern("dj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr join = Expr::Join({Expr::Bind({i, j}, Expr::Var("Xd")),
                             Expr::Bind({i, j}, Expr::Var("Xd"))});
  EXPECT_DOUBLE_EQ(f.NodeCostOf(join), 500000.0);
}

TEST(CostModel, SparseJoinChargesNnz) {
  Fixture f;
  Symbol i = Symbol::Intern("ei"), j = Symbol::Intern("ej");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr join = Expr::Join({Expr::Bind({i, j}, Expr::Var("Xs")),
                             Expr::Bind({i, j}, Expr::Var("Xd"))});
  EXPECT_DOUBLE_EQ(f.NodeCostOf(join), 5000.0);  // 0.01 * 500k
}

TEST(CostModel, ScalarCoefficientJoinIsFree) {
  Fixture f;
  Symbol i = Symbol::Intern("fi"), j = Symbol::Intern("fj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr join = Expr::Join({Expr::Const(-1.0),
                             Expr::Bind({i, j}, Expr::Var("Xd"))});
  EXPECT_DOUBLE_EQ(f.NodeCostOf(join), 0.0);
}

TEST(CostModel, OuterProductJoinChargesCrossSize) {
  // The u v^T outer product: |i| x |j| even though inputs are vectors.
  Fixture f;
  Symbol i = Symbol::Intern("gi"), j = Symbol::Intern("gj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr join = Expr::Join({Expr::Bind({i}, Expr::Var("u")),
                             Expr::Bind({j}, Expr::Var("v"))});
  EXPECT_DOUBLE_EQ(f.NodeCostOf(join), 500000.0);
}

TEST(CostModel, AggChargesOutputSize) {
  Fixture f;
  Symbol i = Symbol::Intern("hi"), j = Symbol::Intern("hj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr agg = Expr::Agg({j}, Expr::Bind({i, j}, Expr::Var("Xd")));
  EXPECT_DOUBLE_EQ(f.NodeCostOf(agg), 1000.0);  // a dense 1000-vector
}

TEST(CostModel, ClassNnzUsesSchemaAndSparsity) {
  Fixture f;
  Symbol i = Symbol::Intern("ki"), j = Symbol::Intern("kj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ClassId id = f.egraph->AddExpr(Expr::Bind({i, j}, Expr::Var("Xs")));
  f.egraph->Rebuild();
  EXPECT_DOUBLE_EQ(f.cost.ClassNnz(*f.egraph, id), 5000.0);
}

TEST(CostModel, SparsityMakesExpandedAlsPlanCheaper) {
  // The ALS insight (Sec 4.2): with sparse X, distributing
  // (UV^T - X) V beats computing the dense residual. Model it coarsely:
  // the union (residual) node is dense-sized, while X's join with V is
  // nnz-sized.
  Fixture f;
  Symbol i = Symbol::Intern("ali"), j = Symbol::Intern("alj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr dense_residual =
      Expr::Union({Expr::Bind({i, j}, Expr::Var("Xd")),
                   Expr::Join({Expr::Const(-1.0),
                               Expr::Bind({i, j}, Expr::Var("Xs"))})});
  double residual_cost = f.NodeCostOf(dense_residual);
  ExprPtr sparse_join = Expr::Join({Expr::Bind({i, j}, Expr::Var("Xs")),
                                    Expr::Bind({j}, Expr::Var("v"))});
  double sparse_cost = f.NodeCostOf(sparse_join);
  EXPECT_GT(residual_cost, 50 * sparse_cost);
}

TEST(CostMemo, AgreesWithModelAndTracksVersions) {
  Fixture f;
  Symbol i = Symbol::Intern("mi"), j = Symbol::Intern("mj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ClassId bound = f.egraph->AddExpr(Expr::Bind({i, j}, Expr::Var("Xs")));
  ClassId agg = f.egraph->AddExpr(
      Expr::Agg({j}, Expr::Bind({i, j}, Expr::Var("Xs"))));
  f.egraph->Rebuild();
  NodeId agg_node = f.egraph->GetClass(agg).nodes.back();

  CostMemo memo;
  double model_cost = f.cost.NodeCost(*f.egraph, f.egraph->NodeAt(agg_node));
  EXPECT_DOUBLE_EQ(memo.NodeCost(f.cost, *f.egraph, agg_node), model_cost);
  EXPECT_DOUBLE_EQ(memo.NodeCost(f.cost, *f.egraph, agg_node), model_cost);
  EXPECT_DOUBLE_EQ(memo.ClassNnz(f.cost, *f.egraph, bound),
                   f.cost.ClassNnz(*f.egraph, bound));

  // Merging the aggregate's child with a denser class bumps the child's
  // version and refines its analysis data; the memo must re-cost, matching
  // the model on the updated graph.
  ClassId dense = f.egraph->AddExpr(Expr::Bind({i, j}, Expr::Var("Xd")));
  f.egraph->Merge(bound, dense);
  f.egraph->Rebuild();
  EXPECT_DOUBLE_EQ(
      memo.NodeCost(f.cost, *f.egraph, agg_node),
      f.cost.NodeCost(*f.egraph, f.egraph->NodeAt(agg_node)));
  EXPECT_DOUBLE_EQ(memo.ClassNnz(f.cost, *f.egraph, bound),
                   f.cost.ClassNnz(*f.egraph, bound));
}

// ---- Calibration (PR 10): bucketing, EWMA, dead band, memo invalidation ----

TEST(Calibration, BucketBoundaries) {
  // Shape: floor(log2(cells)); degenerate sizes collapse to bucket 0.
  EXPECT_EQ(ShapeBucket(0.0), 0);
  EXPECT_EQ(ShapeBucket(1.0), 0);
  EXPECT_EQ(ShapeBucket(2.0), 1);
  EXPECT_EQ(ShapeBucket(1023.0), 9);
  EXPECT_EQ(ShapeBucket(1024.0), 10);
  // Sparsity: floor(log10(density)), clamped to [-9, 0].
  EXPECT_EQ(SparsityBucket(1.0), 0);
  EXPECT_EQ(SparsityBucket(2.0), 0);     // over-dense clamps to the dense bucket
  EXPECT_EQ(SparsityBucket(0.1), -1);
  EXPECT_EQ(SparsityBucket(0.09), -2);
  EXPECT_EQ(SparsityBucket(1e-12), -9);  // sparser than the last bucket
  EXPECT_EQ(SparsityBucket(0.0), -9);    // degenerate densities
  EXPECT_EQ(SparsityBucket(-1.0), -9);
}

TEST(Calibration, DeadBandKeepsSteadyObservationsPristine) {
  // Identical observations make every candidate multiplier exactly 1.0 —
  // inside the dead band, so the table never publishes: version stays 0
  // and the cost model's multiply stays skipped (bitwise no-op guarantee).
  CalibrationTable table;
  std::vector<CalibrationSample> steady;
  for (int i = 0; i < 16; ++i) steady.push_back({"add", 64, 64, -1, 1e-3});
  EXPECT_FALSE(table.Record(steady));
  EXPECT_EQ(table.version(), 0u);
  EXPECT_DOUBLE_EQ(table.Multiplier(CostCategory::kElemwise, 4096.0, 1.0),
                   1.0);
  EXPECT_EQ(table.cell_count(), 1u);
  EXPECT_EQ(table.total_samples(), 16u);
}

TEST(Calibration, EwmaCellEstimateConvergesToNewRegime) {
  CalibrationTable table;
  // A few observations under the old regime, then a sustained shift: the
  // per-cell EWMA must converge to the new unit cost, not average forever.
  std::vector<CalibrationSample> old_regime = {{"mmul", 64, 64, -1, 4e-3}};
  for (int i = 0; i < 3; ++i) table.Record(old_regime);
  std::vector<CalibrationSample> new_regime = {{"mmul", 64, 64, -1, 4e-1}};
  for (int i = 0; i < 40; ++i) table.Record(new_regime);

  CalibrationImage image = table.Export();
  ASSERT_EQ(image.cells.size(), 1u);
  const double unit = 4e-1 / 4096.0;  // seconds per output cell, new regime
  EXPECT_NEAR(image.cells[0].unit_seconds, unit, 0.01 * unit);
  EXPECT_EQ(image.cells[0].samples, 43u);
  EXPECT_EQ(image.baseline_samples, 43u);
}

TEST(Calibration, MixedRegimePublishesClampedMultipliers) {
  CalibrationTable table;
  // Contractions vastly slower per cell than elementwise: both categories
  // publish, in opposite directions, and both respect the clamps.
  std::vector<CalibrationSample> mixed;
  for (int i = 0; i < 4; ++i) {
    mixed.push_back({"add", 64, 64, -1, 1e-6});
    mixed.push_back({"mmul", 64, 64, -1, 1.0});
  }
  EXPECT_TRUE(table.Record(mixed));
  EXPECT_GT(table.version(), 0u);

  const double cells = 64.0 * 64.0;
  double contract = table.Multiplier(CostCategory::kContract, cells, 1.0);
  double elemwise = table.Multiplier(CostCategory::kElemwise, cells, 1.0);
  EXPECT_GT(contract, 1.25);
  EXPECT_LE(contract, 8.0);   // max_multiplier clamp
  EXPECT_LT(elemwise, 0.75);
  EXPECT_GE(elemwise, 0.25);  // min_multiplier clamp
  // An unobserved category keeps the identity multiplier.
  EXPECT_DOUBLE_EQ(table.Multiplier(CostCategory::kReduce, cells, 1.0), 1.0);
}

TEST(CostMemo, RecalibrationInvalidatesMemoizedCosts) {
  Fixture f;
  CalibrationTable table;
  CostModel calibrated(f.ctx, &table);
  Symbol i = Symbol::Intern("cvi"), j = Symbol::Intern("cvj");
  f.dims->Set(i, 1000);
  f.dims->Set(j, 500);
  ExprPtr join = Expr::Join({Expr::Bind({i, j}, Expr::Var("Xd")),
                             Expr::Bind({i, j}, Expr::Var("Xd"))});
  ClassId id = f.egraph->AddExpr(join);
  f.egraph->Rebuild();
  NodeId nid = f.egraph->GetClass(id).nodes.back();

  CostMemo memo;
  // Pristine table: the multiplier path is skipped entirely — memoized
  // costs are bit-identical to the uncalibrated model's.
  EXPECT_DOUBLE_EQ(memo.NodeCost(calibrated, *f.egraph, nid), 500000.0);

  // Recalibrate with contractions observed far slower than elementwise.
  // The version bump must discard the memo: same node, same graph, and
  // yet a different (calibrated) cost — matching the model exactly.
  std::vector<CalibrationSample> mixed;
  for (int k = 0; k < 4; ++k) {
    mixed.push_back({"add", 1000, 500, -1, 1e-6});
    mixed.push_back({"mmul", 1000, 500, -1, 10.0});
  }
  ASSERT_TRUE(table.Record(mixed));
  double recalibrated = memo.NodeCost(calibrated, *f.egraph, nid);
  EXPECT_GT(recalibrated, 500000.0);
  EXPECT_DOUBLE_EQ(recalibrated,
                   calibrated.NodeCost(*f.egraph, f.egraph->NodeAt(nid)));
  // Memoized lookups stay stable at the new version.
  EXPECT_DOUBLE_EQ(memo.NodeCost(calibrated, *f.egraph, nid), recalibrated);
}

}  // namespace
}  // namespace spores
