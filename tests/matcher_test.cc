// Unit tests for the pattern language and the backtracking e-matcher.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/egraph/matcher.h"
#include "src/egraph/rewrite.h"
#include "src/ir/expr.h"

namespace spores {
namespace {

using P = Pattern;

TEST(Pattern, ClassVarsCollected) {
  PatternPtr p = P::N(Op::kJoin, {P::V("?a"), P::N(Op::kUnion, {P::V("?b"),
                                                                P::V("?a")})});
  std::vector<Symbol> vars = p->ClassVars();
  EXPECT_EQ(vars.size(), 2u);
}

TEST(Matcher, LeafVarMatchesAnyClass) {
  EGraph eg;
  eg.AddExpr(Expr::Var("x"));
  eg.AddExpr(Expr::Var("y"));
  std::vector<Match> ms = MatchAll(eg, *P::V("?a"));
  EXPECT_EQ(ms.size(), 2u);
}

TEST(Matcher, OpPatternMatchesOnlyThatOp) {
  EGraph eg;
  eg.AddExpr(Expr::Plus(Expr::Var("x"), Expr::Var("y")));
  eg.AddExpr(Expr::Mul(Expr::Var("x"), Expr::Var("y")));
  std::vector<Match> ms =
      MatchAll(eg, *P::N(Op::kElemPlus, {P::V("?a"), P::V("?b")}));
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(eg.Find(ms[0].subst.ClassOf(Symbol::Intern("?a"))),
            *eg.LookupExpr(Expr::Var("x")));
}

TEST(Matcher, RepeatedVarRequiresSameClass) {
  EGraph eg;
  eg.AddExpr(Expr::Mul(Expr::Var("x"), Expr::Var("x")));
  eg.AddExpr(Expr::Mul(Expr::Var("x"), Expr::Var("y")));
  std::vector<Match> ms =
      MatchAll(eg, *P::N(Op::kElemMul, {P::V("?a"), P::V("?a")}));
  EXPECT_EQ(ms.size(), 1u);  // only x*x
}

TEST(Matcher, VarLeafConstrainsSymbol) {
  EGraph eg;
  eg.AddExpr(Expr::Transpose(Expr::Var("x")));
  eg.AddExpr(Expr::Transpose(Expr::Var("y")));
  std::vector<Match> ms =
      MatchAll(eg, *P::N(Op::kTranspose, {P::VarLeaf("x")}));
  EXPECT_EQ(ms.size(), 1u);
}

TEST(Matcher, ConstLeafMatchesExactValue) {
  EGraph eg;
  eg.AddExpr(Expr::Mul(Expr::Const(1.0), Expr::Var("x")));
  eg.AddExpr(Expr::Mul(Expr::Const(2.0), Expr::Var("x")));
  std::vector<Match> ms =
      MatchAll(eg, *P::N(Op::kElemMul, {P::ConstLeaf(1.0), P::V("?a")}));
  EXPECT_EQ(ms.size(), 1u);
}

TEST(Matcher, ConstBindCapturesValue) {
  EGraph eg;
  eg.AddExpr(Expr::Mul(Expr::Const(3.5), Expr::Var("x")));
  std::vector<Match> ms =
      MatchAll(eg, *P::N(Op::kElemMul, {P::ConstBind("?c"), P::V("?a")}));
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_DOUBLE_EQ(ms[0].subst.ValueOf(Symbol::Intern("?c")), 3.5);
}

TEST(Matcher, AggBindCapturesAttrs) {
  EGraph eg;
  Symbol i = Symbol::Intern("i"), j = Symbol::Intern("j");
  eg.AddExpr(Expr::Agg({i, j}, Expr::Bind({i, j}, Expr::Var("X"))));
  std::vector<Match> ms = MatchAll(eg, *P::AggBind("?I", P::V("?a")));
  ASSERT_EQ(ms.size(), 1u);
  // Agg canonicalizes attrs into Symbol id order (not intern order: ids
  // embed the intern shard), so the capture comes back in that order too.
  std::vector<Symbol> want{i, j};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(ms[0].subst.AttrsOf(Symbol::Intern("?I")), want);
}

TEST(Matcher, MatchesAcrossEquivalentNodes) {
  // After merging x*y with z, pattern (t ?a) over t(z) should also match
  // through the merged class when matching t(x*y).
  EGraph eg;
  ClassId xy = eg.AddExpr(Expr::Mul(Expr::Var("x"), Expr::Var("y")));
  ClassId z = eg.AddExpr(Expr::Var("z"));
  eg.AddExpr(Expr::Transpose(Expr::Var("z")));
  eg.Merge(xy, z);
  eg.Rebuild();
  std::vector<Match> ms = MatchAll(
      eg,
      *P::N(Op::kTranspose, {P::N(Op::kElemMul, {P::V("?a"), P::V("?b")})}));
  EXPECT_EQ(ms.size(), 1u);
}

TEST(Matcher, NestedPatternsBindConsistently) {
  EGraph eg;
  // (x + y) * (x + z): pattern (a+b)*(a+c) must bind a=x.
  eg.AddExpr(Expr::Mul(Expr::Plus(Expr::Var("x"), Expr::Var("y")),
                       Expr::Plus(Expr::Var("x"), Expr::Var("z"))));
  std::vector<Match> ms = MatchAll(
      eg, *P::N(Op::kElemMul, {P::N(Op::kElemPlus, {P::V("?a"), P::V("?b")}),
                               P::N(Op::kElemPlus, {P::V("?a"), P::V("?c")})}));
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(eg.Find(ms[0].subst.ClassOf(Symbol::Intern("?a"))),
            eg.Find(*eg.LookupExpr(Expr::Var("x"))));
}

TEST(Rewrite, TemplateApplierInstantiates) {
  EGraph eg;
  ClassId root = eg.AddExpr(Expr::Plus(Expr::Var("x"), Expr::Var("x")));
  // a + a -> 2 * a.
  Rewrite rw = MakeRewrite(
      "double", P::N(Op::kElemPlus, {P::V("?a"), P::V("?a")}),
      P::N(Op::kElemMul, {P::ConstLeaf(2.0), P::V("?a")}));
  std::vector<Match> ms = MatchAll(eg, *rw.lhs);
  ASSERT_EQ(ms.size(), 1u);
  std::optional<ClassId> rhs = rw.applier(eg, ms[0].root, ms[0].subst);
  ASSERT_TRUE(rhs.has_value());
  eg.Merge(ms[0].root, *rhs);
  eg.Rebuild();
  EXPECT_TRUE(eg.Represents(
      root, Expr::Mul(Expr::Const(2.0), Expr::Var("x"))));
}

TEST(Rewrite, GuardBlocksApplication) {
  EGraph eg;
  eg.AddExpr(Expr::Plus(Expr::Var("x"), Expr::Var("y")));
  Rewrite rw = MakeRewrite(
      "never", P::N(Op::kElemPlus, {P::V("?a"), P::V("?b")}),
      P::N(Op::kElemPlus, {P::V("?b"), P::V("?a")}),
      [](const EGraph&, const Subst&) { return false; });
  std::vector<Match> ms = MatchAll(eg, *rw.lhs);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_FALSE(rw.guard(eg, ms[0].subst));
}

}  // namespace
}  // namespace spores
