// Simple wall-clock timer for compile-time breakdowns (Fig 16).
#pragma once

#include <chrono>

namespace spores {

/// Wall-clock stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spores
