// Internal invariant checking. SPORES_CHECK aborts with a message on
// violation; it is always on (invariant violations in an optimizer silently
// produce wrong plans, which is worse than a crash).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace spores {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* cond, const char* msg) {
  std::fprintf(stderr, "SPORES_CHECK failed at %s:%d: %s %s\n", file, line,
               cond, msg ? msg : "");
  std::abort();
}

}  // namespace spores

#define SPORES_CHECK(cond)                                        \
  do {                                                            \
    if (!(cond)) ::spores::CheckFailed(__FILE__, __LINE__, #cond, nullptr); \
  } while (0)

#define SPORES_CHECK_MSG(cond, msg)                               \
  do {                                                            \
    if (!(cond)) ::spores::CheckFailed(__FILE__, __LINE__, #cond, msg); \
  } while (0)

#define SPORES_CHECK_EQ(a, b) SPORES_CHECK((a) == (b))
#define SPORES_CHECK_NE(a, b) SPORES_CHECK((a) != (b))
#define SPORES_CHECK_LT(a, b) SPORES_CHECK((a) < (b))
#define SPORES_CHECK_LE(a, b) SPORES_CHECK((a) <= (b))
#define SPORES_CHECK_GT(a, b) SPORES_CHECK((a) > (b))
#define SPORES_CHECK_GE(a, b) SPORES_CHECK((a) >= (b))
