// Deterministic PRNG used for data generation and match sampling. A thin
// wrapper over SplitMix64/xoshiro-style mixing so results are reproducible
// across platforms (std::mt19937 distributions are not portable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spores {

/// Deterministic 64-bit PRNG (splitmix64 core).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5324e5a2d96f1ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Sample k distinct indices from [0, n) (k >= n returns all, shuffled).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace spores
