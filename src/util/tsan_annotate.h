// Race-checker annotations for the hand-rolled synchronization in the
// lock-free serving queues (src/serve/shard_queue.h).
//
// ThreadSanitizer models C++ atomics natively, so the queues are already
// TSan-checkable as written. These macros exist for two reasons:
//
//  1. Checkers that do NOT model atomics (helgrind/DRD) need explicit
//     happens-before edges or they drown the build in false positives.
//     With SPORES_ANNOTATE defined the macros emit the matching client
//     requests (valgrind) or __tsan_acquire/__tsan_release calls (TSan
//     builds), pinning the intended edges down explicitly.
//  2. They document, at the exact source line, WHERE the publication edge
//     of each lock-free structure lives — so a future edit that moves a
//     store out from under its release cannot do so silently: the
//     annotation stops matching the code next to it.
//
// Unannotated builds compile the macros to nothing; there is no runtime
// cost outside checker builds. Enable with -DSPORES_ANNOTATE (the CMake
// option SPORES_ANNOTATE=ON adds it; CI's TSan job builds with it on).
#pragma once

#if defined(SPORES_ANNOTATE)

// GCC spells TSan __SANITIZE_THREAD__; clang needs __has_feature, which
// GCC's preprocessor rejects inside a compound condition — hence the
// two-step detection.
#if defined(__SANITIZE_THREAD__)
#define SPORES_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPORES_TSAN_ACTIVE 1
#endif
#endif

#if defined(SPORES_TSAN_ACTIVE)
// TSan build: reinforce the atomic edges with explicit acquire/release
// annotations on the address (harmless duplication of what the atomics
// already establish; keeps the edge visible even if the atomic is later
// weakened by mistake to relaxed).
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#define SPORES_ANNOTATE_HAPPENS_BEFORE(addr) \
  __tsan_release(const_cast<void*>(static_cast<const void*>(addr)))
#define SPORES_ANNOTATE_HAPPENS_AFTER(addr) \
  __tsan_acquire(const_cast<void*>(static_cast<const void*>(addr)))
#elif defined(__has_include) && __has_include(<valgrind/helgrind.h>)
#include <valgrind/helgrind.h>
#define SPORES_ANNOTATE_HAPPENS_BEFORE(addr) \
  ANNOTATE_HAPPENS_BEFORE(const_cast<void*>(static_cast<const void*>(addr)))
#define SPORES_ANNOTATE_HAPPENS_AFTER(addr) \
  ANNOTATE_HAPPENS_AFTER(const_cast<void*>(static_cast<const void*>(addr)))
#else
#define SPORES_ANNOTATE_HAPPENS_BEFORE(addr) (void)(addr)
#define SPORES_ANNOTATE_HAPPENS_AFTER(addr) (void)(addr)
#endif

#else  // !SPORES_ANNOTATE

#define SPORES_ANNOTATE_HAPPENS_BEFORE(addr) ((void)0)
#define SPORES_ANNOTATE_HAPPENS_AFTER(addr) ((void)0)

#endif
