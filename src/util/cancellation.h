// Cooperative cancellation for long-running optimizer work.
//
// A CancelToken is a copyable handle to one shared cancellation flag. The
// serving layer creates a cancellable token per job and hands copies down
// the pipeline (session -> saturation runner -> ILP branch-and-bound);
// ServeFuture::Cancel() flips the flag from any thread and every holder
// observes it at its next budget checkpoint — the same places the wall-clock
// timeout is polled, so cancellation latency is bounded by the existing
// check cadence, and a cancelled job stops spending budget its caller has
// already given up on.
//
// A default-constructed token is inert: cancelled() is constant-false and
// RequestCancel() is a no-op, so single-shot callers pay nothing.
#pragma once

#include <atomic>
#include <memory>

namespace spores {

class CancelToken {
 public:
  /// Inert token: never reports cancellation. The default for callers that
  /// don't need the facility (plain Optimize calls, tests, benches).
  CancelToken() = default;

  /// A live token backed by a fresh shared flag. Copies share the flag.
  static CancelToken Cancellable() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Requests cancellation; every copy of this token observes it. Safe to
  /// call from any thread, idempotent, no-op on an inert token.
  void RequestCancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  /// True once RequestCancel was called on any copy. Relaxed load: callers
  /// poll at budget checkpoints; no ordering is needed beyond eventually
  /// seeing the store.
  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// False for the inert default token.
  bool cancellable() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace spores
