// CRC-32 (IEEE 802.3 polynomial, reflected) for snapshot/journal integrity
// checks. Software table implementation: persistence is dominated by disk
// writes, not checksumming, and a dependency-free checksum keeps the wire
// format self-contained for the distributed tier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace spores {

namespace detail {

inline const uint32_t* Crc32Table() {
  static const auto table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Extends a running CRC-32 with `data`. Start from kCrc32Init and finish
/// with Crc32Finish (the init/finish split lets callers checksum streamed
/// sections without buffering them twice).
inline constexpr uint32_t kCrc32Init = 0xffffffffu;

inline uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  const uint32_t* table = detail::Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

inline uint32_t Crc32Finish(uint32_t crc) { return crc ^ 0xffffffffu; }

/// One-shot CRC-32 of a byte string.
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32Finish(Crc32Update(kCrc32Init, bytes.data(), bytes.size()));
}

}  // namespace spores
