// Per-query wall-clock deadlines for the serving pipeline.
//
// A Deadline is an absolute steady-clock point (or "none"): jobs carry one
// from Submit through the queue into the optimizer stages, each of which
// derives its own budget from RemainingSeconds() — so the budget a caller
// grants is a property of the query, not of whichever stage happens to be
// running when it runs out. Absolute (not duration) on purpose: time spent
// queued counts against the caller's budget too.
#pragma once

#include <chrono>
#include <limits>

namespace spores {

class Deadline {
 public:
  /// No deadline: never expires, infinite remaining budget. The default.
  Deadline() = default;

  /// Expires `seconds` from now (may be <= 0: already expired).
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  bool has_deadline() const { return has_deadline_; }

  /// Seconds until expiry: +infinity with no deadline, negative once past.
  double RemainingSeconds() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

  bool Expired() const {
    return has_deadline_ && Clock::now() >= at_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

}  // namespace spores
