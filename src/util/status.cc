#include "src/util/status.h"

namespace spores {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace spores
