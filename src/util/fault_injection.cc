#include "src/util/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace spores {
namespace {

// Probabilities quantize to parts-per-million.
constexpr uint64_t kDen = 1000000;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(std::string_view site) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

bool ParseKind(std::string_view token, FaultKind* out) {
  if (token == "throw") { *out = FaultKind::kThrow; return true; }
  if (token == "bad_alloc") { *out = FaultKind::kBadAlloc; return true; }
  if (token == "status" || token == "status-error" ||
      token == "status_error") {
    *out = FaultKind::kStatusError;
    return true;
  }
  if (token == "delay") { *out = FaultKind::kDelay; return true; }
  if (token == "torn" || token == "torn-write" || token == "torn_write") {
    *out = FaultKind::kTornWrite;
    return true;
  }
  return false;
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    out.push_back(s.substr(start, end - start));
    start = end + 1;
    if (end == s.size()) break;
  }
  return out;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kBadAlloc: return "bad_alloc";
    case FaultKind::kStatusError: return "status";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kTornWrite: return "torn";
  }
  return "unknown";
}

FaultInjector::FaultInjector() {
  const char* spec = std::getenv("SPORES_FAULT");
  if (spec == nullptr || spec[0] == '\0') return;
  uint64_t seed = 0;
  if (const char* seed_env = std::getenv("SPORES_FAULT_SEED")) {
    seed = std::strtoull(seed_env, nullptr, 10);
  }
  // A malformed env spec must not crash the process; it just stays off.
  (void)Configure(spec, seed);
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  std::lock_guard<std::mutex> lock(config_mu_);
  enabled_.store(false, std::memory_order_release);
  rules_.clear();
  seed_ = seed;
  if (spec.empty()) return Status::OK();
  for (const std::string& entry : SplitOn(spec, ',')) {
    if (entry.empty()) continue;
    std::vector<std::string> fields = SplitOn(entry, ':');
    if (fields.size() < 3 || fields.size() > 4) {
      rules_.clear();
      return Status::InvalidArgument("fault spec entry needs "
                                     "site:probability:kind[:millis]: " +
                                     entry);
    }
    auto rule = std::make_unique<Rule>();
    rule->site = fields[0];
    char* end = nullptr;
    double prob = std::strtod(fields[1].c_str(), &end);
    if (end == fields[1].c_str() || *end != '\0' || prob < 0.0 ||
        prob > 1.0) {
      rules_.clear();
      return Status::InvalidArgument("fault probability must be in [0,1]: " +
                                     entry);
    }
    rule->threshold = static_cast<uint64_t>(prob * static_cast<double>(kDen));
    if (prob >= 1.0) rule->threshold = kDen;  // avoid rounding below certain
    if (!ParseKind(fields[2], &rule->kind)) {
      rules_.clear();
      return Status::InvalidArgument("unknown fault kind: " + entry);
    }
    if (fields.size() == 4) {
      long millis = std::strtol(fields[3].c_str(), nullptr, 10);
      if (millis < 0) millis = 0;
      rule->delay_millis = static_cast<int>(millis);
    }
    rules_.push_back(std::move(rule));
  }
  if (!rules_.empty()) enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(config_mu_);
  enabled_.store(false, std::memory_order_release);
  rules_.clear();
  seed_ = 0;
}

std::optional<FaultAction> FaultInjector::Sample(std::string_view site) {
  if (!enabled_.load(std::memory_order_acquire)) return std::nullopt;
  for (const std::unique_ptr<Rule>& rule : rules_) {
    if (rule->site != "*" && rule->site != site) continue;
    uint64_t n = rule->sampled.fetch_add(1, std::memory_order_relaxed);
    if (rule->threshold == 0) continue;
    uint64_t h = SplitMix64(seed_ ^ HashSite(site) ^ (n * 0x2545f4914f6cdd1dULL));
    if (h % kDen >= rule->threshold) continue;
    rule->fired.fetch_add(1, std::memory_order_relaxed);
    FaultAction action;
    action.kind = rule->kind;
    action.delay_millis = rule->delay_millis;
    return action;
  }
  return std::nullopt;
}

uint64_t FaultInjector::FireCount(std::string_view site) const {
  uint64_t total = 0;
  for (const std::unique_ptr<Rule>& rule : rules_) {
    if (rule->site == "*" || rule->site == site) {
      total += rule->fired.load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t FaultInjector::TotalFired() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Rule>& rule : rules_) {
    total += rule->fired.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FaultInjector::TotalSampled() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Rule>& rule : rules_) {
    total += rule->sampled.load(std::memory_order_relaxed);
  }
  return total;
}

namespace fault {

void ThrowOrDelay(std::string_view site, const FaultAction& action) {
  switch (action.kind) {
    case FaultKind::kBadAlloc:
      throw std::bad_alloc();
    case FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(action.delay_millis));
      return;
    case FaultKind::kTornWrite:
      // Not meaningful at a non-write site; treat as a throw so the fault
      // still surfaces instead of silently passing.
    case FaultKind::kThrow:
    case FaultKind::kStatusError:
      throw FaultInjectedError("injected fault at " + std::string(site));
  }
}

Status PointStatus(std::string_view site, bool* torn) {
  if (torn != nullptr) *torn = false;
  FaultInjector& inj = FaultInjector::Instance();
  if (!inj.enabled()) return Status::OK();
  std::optional<FaultAction> action = inj.Sample(site);
  if (!action) return Status::OK();
  switch (action->kind) {
    case FaultKind::kStatusError:
      return Status::Internal("injected fault at " + std::string(site));
    case FaultKind::kTornWrite:
      if (torn != nullptr) {
        *torn = true;
        return Status::OK();
      }
      return Status::Internal("injected torn write at " + std::string(site));
    case FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(action->delay_millis));
      return Status::OK();
    case FaultKind::kBadAlloc:
      throw std::bad_alloc();
    case FaultKind::kThrow:
      throw FaultInjectedError("injected fault at " + std::string(site));
  }
  return Status::OK();
}

}  // namespace fault

}  // namespace spores
