#include "src/util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace spores {

namespace {

/// Set while a pool worker runs task ranges: a kernel called from inside a
/// worker (nested parallelism) must run serially, not wait on the pool it
/// is currently a worker of.
thread_local bool tls_in_worker = false;

/// Innermost ScopedPool override for this thread; null = use Global().
thread_local ThreadPool* tls_override = nullptr;

int ResolveThreads(int threads) {
  if (threads > 0) return threads;
  if (const char* env = std::getenv("SPORES_NUM_THREADS")) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

ThreadPool::ThreadPool(int threads) : num_threads_(ResolveThreads(threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunRanges(Task& task) {
  const size_t count = task.ranges.size();
  while (true) {
    size_t i = task.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    (*task.fn)(task.ranges[i].first, task.ranges[i].second);
    if (task.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(task.mu);
      task.done = true;
      task.done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
      task = task_;
    }
    if (!task) continue;
    tls_in_worker = true;
    RunRanges(*task);
    tls_in_worker = false;
  }
}

void ThreadPool::ParallelFor(
    int64_t n, int64_t grain,
    const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (num_threads_ == 1 || n < 2 * grain || tls_in_worker) {
    fn(0, n);
    return;
  }
  // Concurrent caller: the pool is busy with someone else's ParallelFor.
  // Run serial on this thread rather than queueing (see header).
  std::unique_lock<std::mutex> run_lk(run_mu_, std::try_to_lock);
  if (!run_lk.owns_lock()) {
    fn(0, n);
    return;
  }

  int64_t chunks = std::min<int64_t>(num_threads_, n / grain);
  if (chunks < 2) {
    fn(0, n);
    return;
  }
  auto task = std::make_shared<Task>();
  task->fn = &fn;
  task->ranges.reserve(static_cast<size_t>(chunks));
  int64_t base = n / chunks, rem = n % chunks, begin = 0;
  for (int64_t c = 0; c < chunks; ++c) {
    int64_t len = base + (c < rem ? 1 : 0);
    task->ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  task->remaining.store(task->ranges.size(), std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lk(mu_);
    task_ = task;
    ++epoch_;
  }
  cv_.notify_all();

  // The caller races the workers for ranges, then waits for stragglers.
  RunRanges(*task);
  {
    std::unique_lock<std::mutex> lk(task->mu);
    task->done_cv.wait(lk, [&] { return task->done; });
  }
  // Detach the finished task so late-waking workers see nothing to do.
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (task_ == task) task_.reset();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

ThreadPool& ThreadPool::Current() {
  return tls_override ? *tls_override : Global();
}

ThreadPool::ScopedPool::ScopedPool(ThreadPool* pool) : prev_(tls_override) {
  tls_override = pool;
}

ThreadPool::ScopedPool::~ScopedPool() { tls_override = prev_; }

}  // namespace spores
