// Contention-instrumented locks for the concurrency core.
//
// The multicore scaling study (bench_scaling) needs to SEE contention, not
// infer it from wall clock: every lock the serving spine still takes carries
// an atomic contended-acquisition counter, incremented only on the slow path
// — the uncontended fast path costs exactly what the raw primitive costs
// (one CAS for SpinLock, one futex-free lock for InstrumentedMutex), so the
// instrumentation itself cannot tax the single-thread latency the ≤2%
// regression budget protects.
//
//  * SpinLock — test-and-test-and-set with bounded exponential backoff.
//    Used where the critical section is a handful of pointer swaps (the
//    shard queues' consumer guard): parking a thread there would cost more
//    than the wait ever could. Counts acquisitions that found the lock held
//    (including failed try_lock()s — a thief bouncing off a busy victim IS
//    contention worth recording).
//  * InstrumentedMutex — std::mutex that counts contended acquisitions via
//    a try_lock-first fast path. Used where the critical section can
//    allocate (intern-table inserts, router pins) and a real mutex's
//    parking behavior is wanted under pile-ups.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

namespace spores {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    if (!locked_.exchange(true, std::memory_order_acquire)) return;
    contended_.fetch_add(1, std::memory_order_relaxed);
    int spins = 0;
    while (true) {
      // Test-and-test-and-set: spin on the cheap load, attempt the
      // exchange only when the lock looks free (keeps the line shared
      // instead of ping-ponging exclusive ownership between spinners).
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins > kSpinsBeforeYield) {
          std::this_thread::yield();
          spins = 0;
        }
      }
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
    }
  }

  bool try_lock() {
    if (locked_.load(std::memory_order_relaxed) ||
        locked_.exchange(true, std::memory_order_acquire)) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

  /// Acquisitions (lock or try_lock) that found the lock held. Monotone,
  /// read with relaxed ordering — a profile counter, not a sync point.
  uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kSpinsBeforeYield = 256;
  std::atomic<bool> locked_{false};
  std::atomic<uint64_t> contended_{0};
};

class InstrumentedMutex {
 public:
  InstrumentedMutex() = default;
  InstrumentedMutex(const InstrumentedMutex&) = delete;
  InstrumentedMutex& operator=(const InstrumentedMutex&) = delete;

  void lock() {
    // try_lock can fail spuriously per the standard; the false positive
    // only nudges the counter, never correctness.
    if (mu_.try_lock()) return;
    contended_.fetch_add(1, std::memory_order_relaxed);
    mu_.lock();
  }

  void unlock() { mu_.unlock(); }

  uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::atomic<uint64_t> contended_{0};
};

}  // namespace spores
