#include "src/util/symbol.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "src/util/check.h"
#include "src/util/contention.h"

namespace spores {

namespace {

// The intern table serves two very different access patterns under
// concurrency: Intern/Fresh (writes, rare after warmup) and str() (reads,
// on hot paths of every serving shard).
//
// Writers are sharded N ways by string hash (PR 9): each shard owns its own
// lock, index, and string storage, so two threads interning different
// strings contend only when their hashes collide on a shard — the
// single-mutex table this replaces serialized every translation in the
// process, which is exactly the kind of invisible-at-1-core bottleneck the
// scaling study exists to catch. Chunk allocation moved under the per-shard
// locks with everything else, so storage growth for one shard never blocks
// writers of another.
//
// Reads stay lock-free: interned strings live in fixed-size chunks whose
// addresses never change, chunk pointers are published with release stores,
// and each shard's size is release-published only after the new string is
// fully constructed — so any reader that observes local_id < size (acquire)
// also observes the string bytes.
//
// Id encoding: id = (local_index << kShardBits) | shard. Unique, stable,
// lock-free to decode — but not dense, and dependent on interning order,
// so only the strings (never the ids) may cross a process boundary.
constexpr size_t kShardBits = 4;
constexpr size_t kNumShards = size_t{1} << kShardBits;  // 16 shards
constexpr size_t kShardMask = kNumShards - 1;
constexpr size_t kChunkBits = 12;  // 4096 symbols per chunk
constexpr size_t kChunkSize = size_t{1} << kChunkBits;
constexpr size_t kMaxChunks = 1 << 12;  // 16M symbols per shard

struct InternShard {
  InstrumentedMutex mu;  // guards writers: index + chunk allocation
  std::atomic<std::string*> chunks[kMaxChunks] = {};
  std::atomic<uint32_t> size{0};
  // Keys are views into the chunk-stored strings (stable addresses).
  std::unordered_map<std::string_view, uint32_t> index;

  /// Caller holds mu. Returns the shard-local index.
  uint32_t InternLocked(std::string_view name) {
    auto it = index.find(name);
    if (it != index.end()) return it->second;
    uint32_t local = size.load(std::memory_order_relaxed);
    size_t chunk = local >> kChunkBits;
    SPORES_CHECK_LT(chunk, kMaxChunks);
    std::string* block = chunks[chunk].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = new std::string[kChunkSize];
      chunks[chunk].store(block, std::memory_order_release);
    }
    block[local & (kChunkSize - 1)] = std::string(name);
    size.store(local + 1, std::memory_order_release);
    index.emplace(std::string_view(block[local & (kChunkSize - 1)]), local);
    return local;
  }

  const std::string& At(uint32_t local) const {
    SPORES_CHECK_LT(local, size.load(std::memory_order_acquire));
    const std::string* block =
        chunks[local >> kChunkBits].load(std::memory_order_acquire);
    return block[local & (kChunkSize - 1)];
  }
};

struct InternTable {
  InternShard shards[kNumShards];
  std::atomic<uint64_t> fresh_counter{0};

  InternTable() {
    // Symbol() defaults to id 0 and empty() tests id == 0, so "" must get
    // exactly id 0: pre-intern it into shard 0 slot 0 regardless of its
    // hash (Intern special-cases the empty string symmetrically).
    std::lock_guard<InstrumentedMutex> lock(shards[0].mu);
    shards[0].InternLocked("");
  }

  static size_t ShardOf(std::string_view name) {
    return std::hash<std::string_view>{}(name)&kShardMask;
  }
};

InternTable& Table() {
  static InternTable* table = new InternTable();
  return *table;
}

}  // namespace

Symbol Symbol::Intern(std::string_view name) {
  if (name.empty()) return Symbol();  // pre-interned as id 0
  InternTable& t = Table();
  size_t shard = InternTable::ShardOf(name);
  InternShard& s = t.shards[shard];
  std::lock_guard<InstrumentedMutex> lock(s.mu);
  uint32_t local = s.InternLocked(name);
  return Symbol(static_cast<uint32_t>((local << kShardBits) | shard));
}

Symbol Symbol::Fresh(std::string_view prefix) {
  InternTable& t = Table();
  // The counter is global (one fetch_add, no lock); only the uniqueness
  // probe and insert take the candidate's shard lock. Very occasionally a
  // candidate is already taken (someone Intern()ed "p$3" literally) and the
  // loop draws the next number — same semantics as the old global-mutex
  // scan, without serializing unrelated Fresh calls.
  while (true) {
    uint64_t n = t.fresh_counter.fetch_add(1, std::memory_order_relaxed);
    std::string candidate = std::string(prefix) + "$" + std::to_string(n);
    size_t shard = InternTable::ShardOf(candidate);
    InternShard& s = t.shards[shard];
    std::lock_guard<InstrumentedMutex> lock(s.mu);
    if (s.index.find(candidate) == s.index.end()) {
      uint32_t local = s.InternLocked(candidate);
      return Symbol(static_cast<uint32_t>((local << kShardBits) | shard));
    }
  }
}

uint64_t Symbol::InternContended() {
  InternTable& t = Table();
  uint64_t total = 0;
  for (size_t i = 0; i < kNumShards; ++i) total += t.shards[i].mu.contended();
  return total;
}

size_t Symbol::InternedCount() {
  InternTable& t = Table();
  size_t total = 0;
  for (size_t i = 0; i < kNumShards; ++i) {
    total += t.shards[i].size.load(std::memory_order_acquire);
  }
  return total;
}

const std::string& Symbol::str() const {
  const InternShard& s = Table().shards[id_ & kShardMask];
  return s.At(id_ >> kShardBits);
}

}  // namespace spores
