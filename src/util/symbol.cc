#include "src/util/symbol.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "src/util/check.h"

namespace spores {

namespace {

// The intern table serves two very different access patterns under
// concurrency: Intern/Fresh (writes, rare after warmup, serialized by `mu`)
// and str() (reads, on hot paths of every serving shard). Reads are
// lock-free: interned strings live in fixed-size chunks whose addresses
// never change, chunk pointers are published with release stores, and the
// table size is release-published only after the new string is fully
// constructed — so any reader that observes id < size (acquire) also
// observes the string bytes. A shard can therefore stringify symbols
// (catalog fingerprints, diagnostics) without contending with other shards'
// translations interning fresh attribute names.
constexpr size_t kChunkBits = 12;  // 4096 symbols per chunk
constexpr size_t kChunkSize = size_t{1} << kChunkBits;
constexpr size_t kMaxChunks = 1 << 14;  // 64M symbols: effectively unbounded

struct InternTable {
  std::mutex mu;  // guards writers: index, fresh_counter, chunk allocation
  std::atomic<std::string*> chunks[kMaxChunks] = {};
  std::atomic<uint32_t> size{0};
  // Keys are views into the chunk-stored strings (stable addresses).
  std::unordered_map<std::string_view, uint32_t> index;
  uint64_t fresh_counter = 0;

  InternTable() { InternLocked(""); }  // id 0 == empty symbol

  uint32_t InternLocked(std::string_view name) {
    auto it = index.find(name);
    if (it != index.end()) return it->second;
    uint32_t id = size.load(std::memory_order_relaxed);
    size_t chunk = id >> kChunkBits;
    SPORES_CHECK_LT(chunk, kMaxChunks);
    std::string* block = chunks[chunk].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = new std::string[kChunkSize];
      chunks[chunk].store(block, std::memory_order_release);
    }
    block[id & (kChunkSize - 1)] = std::string(name);
    size.store(id + 1, std::memory_order_release);
    index.emplace(std::string_view(block[id & (kChunkSize - 1)]), id);
    return id;
  }

  const std::string& At(uint32_t id) const {
    SPORES_CHECK_LT(id, size.load(std::memory_order_acquire));
    const std::string* block =
        chunks[id >> kChunkBits].load(std::memory_order_acquire);
    return block[id & (kChunkSize - 1)];
  }
};

InternTable& Table() {
  static InternTable* table = new InternTable();
  return *table;
}

}  // namespace

Symbol Symbol::Intern(std::string_view name) {
  InternTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  return Symbol(t.InternLocked(name));
}

Symbol Symbol::Fresh(std::string_view prefix) {
  InternTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  while (true) {
    std::string candidate =
        std::string(prefix) + "$" + std::to_string(t.fresh_counter++);
    if (t.index.find(candidate) == t.index.end()) {
      return Symbol(t.InternLocked(candidate));
    }
  }
}

const std::string& Symbol::str() const { return Table().At(id_); }

}  // namespace spores
