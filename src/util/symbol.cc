#include "src/util/symbol.h"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "src/util/check.h"

namespace spores {

namespace {

// `strings` is a deque so element addresses are stable; `index` keys are
// views into those elements.
struct InternTable {
  std::mutex mu;
  std::deque<std::string> strings;
  std::unordered_map<std::string_view, uint32_t> index;
  uint64_t fresh_counter = 0;

  InternTable() {
    strings.emplace_back("");  // id 0 == empty symbol
    index.emplace(std::string_view(strings.back()), 0);
  }

  uint32_t InternLocked(std::string_view name) {
    auto it = index.find(name);
    if (it != index.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(strings.size());
    strings.emplace_back(name);
    index.emplace(std::string_view(strings.back()), id);
    return id;
  }
};

InternTable& Table() {
  static InternTable* table = new InternTable();
  return *table;
}

}  // namespace

Symbol Symbol::Intern(std::string_view name) {
  InternTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  return Symbol(t.InternLocked(name));
}

Symbol Symbol::Fresh(std::string_view prefix) {
  InternTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  while (true) {
    std::string candidate =
        std::string(prefix) + "$" + std::to_string(t.fresh_counter++);
    if (t.index.find(candidate) == t.index.end()) {
      return Symbol(t.InternLocked(candidate));
    }
  }
}

const std::string& Symbol::str() const {
  InternTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  SPORES_CHECK_LT(id_, t.strings.size());
  return t.strings[id_];
}

}  // namespace spores
