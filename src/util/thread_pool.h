// Shared thread pool with a static-partition ParallelFor: the runtime
// kernels' parallelism substrate. Design constraints (ROADMAP: "When More
// Cores Hurts" warns naive parallelization collapses):
//  * one long-lived pool, reused across every kernel call — never a
//    per-call std::thread spawn (thread creation costs ~50µs, a mid-size
//    kernel runs in less);
//  * static contiguous partitioning, no work stealing: kernel iterations
//    are uniform (rows of a matmul), so stealing buys nothing and costs
//    cache affinity + synchronization;
//  * serial fallback below a grain threshold, when the pool has one
//    thread, and for nested calls — so 1-core CI numbers are honest
//    (serial code path, not parallel overhead on one core) and worker
//    threads never deadlock waiting on themselves;
//  * concurrent ParallelFor callers (e.g. several serving shards executing
//    plans at once) do not queue behind each other: a caller that cannot
//    take the pool immediately runs its range serially on its own thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace spores {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates in every
  /// ParallelFor). `threads <= 0` sizes from SPORES_NUM_THREADS, falling
  /// back to std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(begin, end) over a partition of [0, n) into at most
  /// num_threads() contiguous ranges of roughly n / num_threads()
  /// iterations each, never smaller than `grain`. The calling thread
  /// executes ranges too and returns only when every range has run.
  /// Falls back to a single fn(0, n) on the calling thread when:
  ///  * n < 2 * grain (parallelism would not pay for its synchronization),
  ///  * the pool has a single thread,
  ///  * the caller is itself a pool worker (no nested parallelism), or
  ///  * another ParallelFor currently owns the pool (run serial instead of
  ///    queueing — the caller IS a core; letting it idle wastes it).
  /// fn must not throw.
  void ParallelFor(int64_t n, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// Process-wide pool, created on first use. Sized from SPORES_NUM_THREADS
  /// when set, else hardware_concurrency.
  static ThreadPool& Global();

  /// The pool kernels use: the innermost ScopedPool override on this
  /// thread, else Global().
  static ThreadPool& Current();

  /// RAII kernel-pool override for the current thread (tests pin kernels
  /// to an explicit pool size regardless of hardware; benches compare
  /// 1-thread vs N-thread executions of the same binary).
  class ScopedPool {
   public:
    explicit ScopedPool(ThreadPool* pool);
    ~ScopedPool();
    ScopedPool(const ScopedPool&) = delete;
    ScopedPool& operator=(const ScopedPool&) = delete;

   private:
    ThreadPool* prev_;
  };

 private:
  /// One ParallelFor invocation: the shared range list plus completion
  /// accounting. Workers hold a shared_ptr so a task outlives ParallelFor
  /// returning on the caller (a late worker may still be draining).
  struct Task {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    std::vector<std::pair<int64_t, int64_t>> ranges;
    std::atomic<size_t> next{0};       ///< next unclaimed range index
    std::atomic<size_t> remaining{0};  ///< ranges not yet finished
    std::mutex mu;
    std::condition_variable done_cv;
    bool done = false;
  };

  void WorkerLoop();
  static void RunRanges(Task& task);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;  ///< guards task_/epoch_/shutdown_ handoff to workers
  std::condition_variable cv_;
  std::shared_ptr<Task> task_;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;

  /// Held for the duration of one ParallelFor: concurrent callers that
  /// fail try_lock run serially instead of blocking.
  std::mutex run_mu_;
};

}  // namespace spores
