// RocksDB-style Status / StatusOr for recoverable errors at API boundaries.
// Internal invariants use SPORES_CHECK instead (util/check.h).
#pragma once

#include <string>
#include <utility>

#include "src/util/check.h"

namespace spores {

/// Error codes for recoverable failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnsupported,
  kInternal,
  kResourceExhausted,
  kTimeout,
  kCancelled,
  kDeadlineExceeded,
  kFailedPrecondition,
};

/// A Status holds either success (ok) or an error code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable representation, e.g. "InvalidArgument: bad dims".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// StatusOr<T> holds either a value or an error Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    SPORES_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SPORES_CHECK_MSG(ok(), status_.message().c_str());
    return value_;
  }
  T& value() & {
    SPORES_CHECK_MSG(ok(), status_.message().c_str());
    return value_;
  }
  T&& value() && {
    SPORES_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace spores

/// Propagate a non-OK Status out of the current function.
#define SPORES_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::spores::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

#define SPORES_CONCAT_INNER(a, b) a##b
#define SPORES_CONCAT(a, b) SPORES_CONCAT_INNER(a, b)

#define SPORES_ASSIGN_OR_RETURN(lhs, expr) \
  SPORES_ASSIGN_OR_RETURN_IMPL(SPORES_CONCAT(_statusor_, __LINE__), lhs, expr)

#define SPORES_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();
