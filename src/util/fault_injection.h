// Process-wide deterministic fault injection for chaos testing.
//
// The serving stack threads named fault *sites* through its riskiest code
// paths (kernel allocation, executor evaluation, snapshot/journal writes,
// the saturation loop). In production builds the injector is disabled and
// every site costs one relaxed atomic load. Tests and CI enable it via
// the environment:
//
//   SPORES_FAULT=site:probability:kind[,site:probability:kind...]
//   SPORES_FAULT_SEED=12345        (optional, default 0)
//
// where `site` is a site name or `*` (matches every site), `probability`
// is a float in [0,1], and `kind` is one of:
//
//   throw       throw FaultInjectedError (a std::runtime_error)
//   bad_alloc   throw std::bad_alloc
//   status      return a non-ok Status (status-capable sites; others throw)
//   delay       sleep (default 20ms; optional 4th field = millis)
//   torn        torn write: the site persists only a prefix of its record
//
// Triggering is seeded-deterministic: whether the N-th evaluation of a
// site fires depends only on (seed, site, N), never on wall-clock or
// address-space layout, so a failing chaos run replays exactly.
//
// Known sites (any string is accepted; these are the ones wired up):
//   kernel_alloc    runtime kernel buffer allocation (BufferPool path)
//   executor_eval   Evaluator::Eval per-node dispatch
//   snapshot_write  AtomicWriteFile for snapshot containers
//   journal_write   CheckpointManager::JournalInsert record append
//   saturate        Runner budget checkpoints inside equality saturation
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace spores {

enum class FaultKind {
  kThrow,
  kBadAlloc,
  kStatusError,
  kDelay,
  kTornWrite,
};

const char* FaultKindName(FaultKind kind);

/// The exception thrown by `throw`-kind faults. Distinct from ordinary
/// runtime errors so tests can tell an injected fault from a real bug.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One fired or sampled fault, handed back to the site for local handling.
struct FaultAction {
  FaultKind kind;
  int delay_millis = 0;  ///< only meaningful for kDelay
};

class FaultInjector {
 public:
  /// The process-wide injector. First call latches SPORES_FAULT /
  /// SPORES_FAULT_SEED from the environment (if set).
  static FaultInjector& Instance();

  /// (Re)configures from a spec string. Empty spec disables. Not safe to
  /// call concurrently with Sample() — configure while serving is down.
  Status Configure(const std::string& spec, uint64_t seed = 0);

  /// Disables injection and clears all rules and counters.
  void Reset();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Deterministically decides whether the next evaluation of `site`
  /// fires. Returns the action to perform, or nullopt. Thread-safe.
  std::optional<FaultAction> Sample(std::string_view site);

  /// How many times faults fired at `site` (exact or via `*`).
  uint64_t FireCount(std::string_view site) const;
  uint64_t TotalFired() const;
  uint64_t TotalSampled() const;

 private:
  struct Rule {
    std::string site;  // "*" matches everything
    uint64_t threshold = 0;  // fire when hash(seed,site,n) % kDen < threshold
    FaultKind kind = FaultKind::kThrow;
    int delay_millis = 20;
    std::atomic<uint64_t> sampled{0};
    std::atomic<uint64_t> fired{0};
  };

  FaultInjector();

  std::atomic<bool> enabled_{false};
  uint64_t seed_ = 0;
  // Immutable after Configure(); Sample only reads. Rules live behind
  // unique_ptr so their atomics have stable addresses.
  std::vector<std::unique_ptr<Rule>> rules_;
  // Serializes Configure/Reset against each other (not against Sample).
  std::mutex config_mu_;
};

namespace fault {

/// Implements Point()'s slow path (out of line: <thread> not needed here).
void ThrowOrDelay(std::string_view site, const FaultAction& action);

/// Throw-style site: fires kThrow/kBadAlloc/kStatusError as exceptions
/// and serves kDelay inline. Use where the caller can only unwind.
inline void Point(std::string_view site) {
  FaultInjector& inj = FaultInjector::Instance();
  if (!inj.enabled()) return;
  std::optional<FaultAction> action = inj.Sample(site);
  if (!action) return;
  ThrowOrDelay(site, *action);
}

/// Status-style site (I/O): kStatusError becomes a non-ok Status,
/// kTornWrite sets *torn so the caller truncates its own write, kDelay
/// sleeps inline, kThrow/kBadAlloc throw (callers contain them).
Status PointStatus(std::string_view site, bool* torn);

}  // namespace fault

}  // namespace spores
