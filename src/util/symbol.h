// Interned strings. Symbols compare by integer id, which makes attribute
// sets and operator payloads cheap to hash and compare. Interning is global
// and append-only; Symbol values stay valid for the process lifetime.
//
// Fully thread-safe, and sharded against contention (PR 9): the intern
// table is split N ways by string hash, so writers contend only with
// writers hashing into the same shard — translation on one serving shard
// no longer serializes against translation on another. str() stays
// lock-free (interned strings live at stable addresses and are
// release-published before their id escapes). Ids encode the owning shard
// in their low bits: unique and stable for the process lifetime, but NOT
// dense and NOT comparable across processes — persistent formats must
// store the string (src/persist/wire_format.h already does).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace spores {

/// An interned string; trivially copyable, compares by id.
class Symbol {
 public:
  Symbol() : id_(0) {}  // the empty symbol ""

  /// Intern `name`, returning the canonical Symbol for it.
  static Symbol Intern(std::string_view name);

  /// Generate a fresh symbol "`prefix`$`n`" guaranteed unused so far.
  static Symbol Fresh(std::string_view prefix);

  /// Contended intern-shard lock acquisitions since process start (the
  /// scaling study's view of symbol-table pressure). Monotone, global.
  static uint64_t InternContended();

  /// Total interned symbols (all shards).
  static size_t InternedCount();

  const std::string& str() const;
  uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  explicit Symbol(uint32_t id) : id_(id) {}
  uint32_t id_;
};

}  // namespace spores

template <>
struct std::hash<spores::Symbol> {
  size_t operator()(spores::Symbol s) const noexcept {
    return std::hash<uint32_t>()(s.id());
  }
};
