// Interned strings. Symbols compare by integer id, which makes attribute
// sets and operator payloads cheap to hash and compare. Interning is global
// and append-only; Symbol values stay valid for the process lifetime.
//
// Fully thread-safe: Intern/Fresh serialize on the table mutex, and str()
// is lock-free (interned strings live at stable addresses and are
// release-published before their id escapes), so concurrent serving shards
// can intern and stringify without contention.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace spores {

/// An interned string; trivially copyable, compares by id.
class Symbol {
 public:
  Symbol() : id_(0) {}  // the empty symbol ""

  /// Intern `name`, returning the canonical Symbol for it.
  static Symbol Intern(std::string_view name);

  /// Generate a fresh symbol "`prefix``n`" guaranteed unused so far.
  static Symbol Fresh(std::string_view prefix);

  const std::string& str() const;
  uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  explicit Symbol(uint32_t id) : id_(id) {}
  uint32_t id_;
};

}  // namespace spores

template <>
struct std::hash<spores::Symbol> {
  size_t operator()(spores::Symbol s) const noexcept {
    return std::hash<uint32_t>()(s.id());
  }
};
