#include "src/util/rng.h"

#include <cmath>
#include <numeric>

#include "src/util/check.h"

namespace spores {

uint64_t Rng::Next64() {
  // splitmix64 (public domain, Sebastiano Vigna).
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t n) {
  SPORES_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ull - n) % n;
  while (true) {
    uint64_t r = Next64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  if (k > n) k = n;
  // Partial Fisher-Yates.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace spores
