#include "src/rules/rules_eq.h"

#include <algorithm>

namespace spores {

namespace {

using P = Pattern;

// Schema of a bound pattern variable.
const std::vector<Symbol>& SchemaOf(const EGraph& eg, const Subst& s,
                                    const char* var) {
  return eg.Data(s.ClassOf(Symbol::Intern(var))).schema;
}

bool DisjointAttrs(const std::vector<Symbol>& schema,
                   const std::vector<Symbol>& attrs) {
  return AttrIntersect(schema, attrs).empty();
}

ClassId AddNode(EGraph& eg, Op op, std::vector<ClassId> children,
                std::vector<Symbol> attrs = {}) {
  ENode n;
  n.op = op;
  n.attrs = std::move(attrs);
  n.children = std::move(children);
  return eg.Add(std::move(n));
}

ClassId AddConst(EGraph& eg, double v) {
  ENode n;
  n.op = Op::kConst;
  n.value = v;
  return eg.Add(std::move(n));
}

// Flattens a join tree rooted at class `id` into factor classes, following
// the first kJoin e-node of each class (a sound representative choice).
// Cycle-guarded; stops at non-join classes.
void FlattenJoinClass(const EGraph& eg, ClassId id,
                      std::vector<ClassId>* factors,
                      std::vector<ClassId>& visiting, int depth) {
  ClassId c = eg.Find(id);
  if (depth > 32 ||
      std::find(visiting.begin(), visiting.end(), c) != visiting.end()) {
    factors->push_back(c);
    return;
  }
  const ENode* join = nullptr;
  for (NodeId nid : eg.GetClass(c).nodes) {
    const ENode& n = eg.NodeAt(nid);
    if (n.op == Op::kJoin) {
      join = &n;
      break;
    }
  }
  if (!join) {
    factors->push_back(c);
    return;
  }
  visiting.push_back(c);
  FlattenJoinClass(eg, join->children[0], factors, visiting, depth + 1);
  FlattenJoinClass(eg, join->children[1], factors, visiting, depth + 1);
  visiting.pop_back();
}

}  // namespace

std::vector<Rewrite> RaEqualityRules(const RaContext& ctx) {
  std::vector<Rewrite> rules;
  auto dims = ctx.dims;

  // -------------------------------------------------------------------
  // Rule 1: A * (B + C) = A * B + A * C
  // -------------------------------------------------------------------
  rules.push_back(MakeRewrite(
      "distribute-join-over-union",
      P::N(Op::kJoin, {P::V("?a"), P::N(Op::kUnion, {P::V("?b"), P::V("?c")})}),
      P::N(Op::kUnion,
           {P::N(Op::kJoin, {P::V("?a"), P::V("?b")}),
            P::N(Op::kJoin, {P::V("?a"), P::V("?c")})})));
  rules.push_back(MakeRewrite(
      "factor-join-out-of-union",
      P::N(Op::kUnion,
           {P::N(Op::kJoin, {P::V("?a"), P::V("?b")}),
            P::N(Op::kJoin, {P::V("?a"), P::V("?c")})}),
      P::N(Op::kJoin,
           {P::V("?a"), P::N(Op::kUnion, {P::V("?b"), P::V("?c")})})));

  // -------------------------------------------------------------------
  // Rule 2: Sum_i (A + B) = Sum_i A + Sum_i B
  // -------------------------------------------------------------------
  rules.push_back(MakeRewrite(
      "push-agg-over-union",
      P::AggBind("?I", P::N(Op::kUnion, {P::V("?a"), P::V("?b")})),
      P::N(Op::kUnion, {P::AggBind("?I", P::V("?a")),
                        P::AggBind("?I", P::V("?b"))})));
  rules.push_back(MakeRewrite(
      "pull-agg-over-union",
      P::N(Op::kUnion, {P::AggBind("?I", P::V("?a")),
                        P::AggBind("?I", P::V("?b"))}),
      P::AggBind("?I", P::N(Op::kUnion, {P::V("?a"), P::V("?b")}))));

  // -------------------------------------------------------------------
  // Rule 3: if I disjoint from Attr(A):  A * Sum_I B = Sum_I (A * B)
  // The rename fallback is unnecessary here: translation draws bound
  // attributes from a global fresh supply, so a bound attribute can never
  // appear free in a sibling (alpha-freshness invariant; see DESIGN.md).
  // -------------------------------------------------------------------
  rules.push_back(MakeRewrite(
      "pull-agg-out-of-join",
      P::N(Op::kJoin, {P::V("?a"), P::AggBind("?I", P::V("?b"))}),
      P::AggBind("?I", P::N(Op::kJoin, {P::V("?a"), P::V("?b")})),
      [](const EGraph& eg, const Subst& s) {
        return DisjointAttrs(SchemaOf(eg, s, "?a"),
                             s.AttrsOf(Symbol::Intern("?I")));
      }));
  rules.push_back(MakeRewrite(
      "push-agg-into-join-right",
      P::AggBind("?I", P::N(Op::kJoin, {P::V("?a"), P::V("?b")})),
      P::N(Op::kJoin, {P::V("?a"), P::AggBind("?I", P::V("?b"))}),
      [](const EGraph& eg, const Subst& s) {
        return DisjointAttrs(SchemaOf(eg, s, "?a"),
                             s.AttrsOf(Symbol::Intern("?I")));
      }));
  rules.push_back(MakeRewrite(
      "push-agg-into-join-left",
      P::AggBind("?I", P::N(Op::kJoin, {P::V("?a"), P::V("?b")})),
      P::N(Op::kJoin, {P::AggBind("?I", P::V("?a")), P::V("?b")}),
      [](const EGraph& eg, const Subst& s) {
        return DisjointAttrs(SchemaOf(eg, s, "?b"),
                             s.AttrsOf(Symbol::Intern("?I")));
      }));
  // Composite of rules 3+4: partition the aggregate across a join in one
  // step: Sum_I (A * B) = Sum_Ish ( Sum_Ia A * Sum_Ib B ) where Ia/Ib are
  // the attrs exclusive to A/B. This is the workhorse that turns
  // Sum_ij (U_i^2 V_j^2) into (Sum_i U_i^2)(Sum_j V_j^2) without waiting for
  // a lucky split+push+push sampling sequence.
  rules.push_back(MakeDynRewrite(
      "partition-agg-across-join",
      P::AggBind("?I", P::N(Op::kJoin, {P::V("?a"), P::V("?b")})),
      [](EGraph& eg, ClassId, const Subst& s) -> std::optional<ClassId> {
        const std::vector<Symbol>& attrs = s.AttrsOf(Symbol::Intern("?I"));
        ClassId a = s.ClassOf(Symbol::Intern("?a"));
        ClassId b = s.ClassOf(Symbol::Intern("?b"));
        const std::vector<Symbol>& sa = eg.Data(a).schema;
        const std::vector<Symbol>& sb = eg.Data(b).schema;
        std::vector<Symbol> ia = AttrMinus(AttrIntersect(attrs, sa), sb);
        std::vector<Symbol> ib = AttrMinus(AttrIntersect(attrs, sb), sa);
        if (ia.empty() && ib.empty()) return std::nullopt;
        std::vector<Symbol> shared = AttrMinus(AttrMinus(attrs, ia), ib);
        ClassId left = ia.empty() ? a : AddNode(eg, Op::kAgg, {a}, ia);
        ClassId right = ib.empty() ? b : AddNode(eg, Op::kAgg, {b}, ib);
        ClassId join = AddNode(eg, Op::kJoin, {left, right});
        if (shared.empty()) return join;
        return AddNode(eg, Op::kAgg, {join}, std::move(shared));
      }));

  // -------------------------------------------------------------------
  // Rule 4: Sum_i Sum_j A = Sum_{i,j} A
  // -------------------------------------------------------------------
  rules.push_back(MakeDynRewrite(
      "merge-nested-agg",
      P::AggBind("?I", P::AggBind("?J", P::V("?a"))),
      [](EGraph& eg, ClassId, const Subst& s) -> std::optional<ClassId> {
        std::vector<Symbol> attrs = AttrUnion(s.AttrsOf(Symbol::Intern("?I")),
                                              s.AttrsOf(Symbol::Intern("?J")));
        return AddNode(eg, Op::kAgg, {s.ClassOf(Symbol::Intern("?a"))},
                       std::move(attrs));
      }));
  rules.push_back(MakeDynRewrite(
      "split-agg",
      P::AggBind("?I", P::V("?a")),
      [](EGraph& eg, ClassId root, const Subst& s) -> std::optional<ClassId> {
        const std::vector<Symbol>& attrs = s.AttrsOf(Symbol::Intern("?I"));
        if (attrs.size() < 2) return std::nullopt;
        ClassId a = s.ClassOf(Symbol::Intern("?a"));
        // Peel each single attribute to the outside:
        // Sum_I A -> Sum_{i} (Sum_{I \ i} A).
        for (Symbol attr : attrs) {
          std::vector<Symbol> inner;
          for (Symbol x : attrs) {
            if (x != attr) inner.push_back(x);
          }
          ClassId in = AddNode(eg, Op::kAgg, {a}, std::move(inner));
          ClassId out = AddNode(eg, Op::kAgg, {in}, {attr});
          eg.Merge(root, out);
        }
        return std::nullopt;  // merges already performed
      },
      nullptr, /*expansive=*/true));

  // -------------------------------------------------------------------
  // Rule 5: if I disjoint from Attr(A): Sum_I A = A * dim(I)
  // (the expanding direction is only useful for proofs, not for cost, so we
  // implement the collapsing direction; partial overlap peels the non-free
  // attributes off as a constant).
  // -------------------------------------------------------------------
  rules.push_back(MakeDynRewrite(
      "agg-nonfree-to-const",
      P::AggBind("?I", P::V("?a")),
      [dims](EGraph& eg, ClassId, const Subst& s) -> std::optional<ClassId> {
        const std::vector<Symbol>& attrs = s.AttrsOf(Symbol::Intern("?I"));
        ClassId a = s.ClassOf(Symbol::Intern("?a"));
        const std::vector<Symbol>& schema = eg.Data(a).schema;
        std::vector<Symbol> outside = AttrMinus(attrs, schema);
        if (outside.empty()) return std::nullopt;
        double mult = 1.0;
        for (Symbol x : outside) {
          if (!dims->Has(x)) return std::nullopt;
          mult *= static_cast<double>(dims->DimOf(x));
        }
        std::vector<Symbol> inside = AttrIntersect(attrs, schema);
        ClassId inner = a;
        if (!inside.empty()) {
          inner = AddNode(eg, Op::kAgg, {a}, std::move(inside));
        }
        return AddNode(eg, Op::kJoin, {AddConst(eg, mult), inner});
      }));

  // -------------------------------------------------------------------
  // Rules 6 & 7: associativity and commutativity of + and *. These are the
  // expansive rules sampling exists for (Sec 3.1).
  // -------------------------------------------------------------------
  for (Op op : {Op::kJoin, Op::kUnion}) {
    const char* tag = (op == Op::kJoin) ? "join" : "union";
    rules.push_back(MakeRewrite(
        std::string("comm-") + tag,
        P::N(op, {P::V("?a"), P::V("?b")}),
        P::N(op, {P::V("?b"), P::V("?a")}),
        nullptr, /*expansive=*/true));
    rules.push_back(MakeRewrite(
        std::string("assoc-") + tag,
        P::N(op, {P::N(op, {P::V("?a"), P::V("?b")}), P::V("?c")}),
        P::N(op, {P::V("?a"), P::N(op, {P::V("?b"), P::V("?c")})}),
        nullptr, /*expansive=*/true));
    rules.push_back(MakeRewrite(
        std::string("assoc-") + tag + "-rev",
        P::N(op, {P::V("?a"), P::N(op, {P::V("?b"), P::V("?c")})}),
        P::N(op, {P::N(op, {P::V("?a"), P::V("?b")}), P::V("?c")}),
        nullptr, /*expansive=*/true));
  }

  // -------------------------------------------------------------------
  // Identity / coefficient folding. Constant folding itself is handled by
  // the analysis (Sec 3.2); these rules keep scalar coefficients merged so
  // canonical monomials stay in "c * term" form.
  // -------------------------------------------------------------------
  rules.push_back(MakeRewrite(
      "join-one", P::N(Op::kJoin, {P::ConstLeaf(1.0), P::V("?a")}),
      P::V("?a")));
  // Zero absorption: A * Z = Z when Z is the all-zero relation and covers
  // the join's schema (drives SystemML's EmptyBinaryOperation).
  rules.push_back(MakeDynRewrite(
      "join-absorb-zero",
      P::N(Op::kJoin, {P::V("?a"), P::V("?b")}),
      [](EGraph& eg, ClassId, const Subst& s) -> std::optional<ClassId> {
        return eg.Find(s.ClassOf(Symbol::Intern("?b")));
      },
      [](const EGraph& eg, const Subst& s) {
        const ClassData& a = eg.Data(s.ClassOf(Symbol::Intern("?a")));
        const ClassData& b = eg.Data(s.ClassOf(Symbol::Intern("?b")));
        return b.constant.has_value() && *b.constant == 0.0 &&
               AttrMinus(a.schema, b.schema).empty();
      }));
  rules.push_back(MakeRewrite(
      "union-zero", P::N(Op::kUnion, {P::ConstLeaf(0.0), P::V("?a")}),
      P::V("?a")));
  rules.push_back(MakeDynRewrite(
      "coeff-join-fold",
      P::N(Op::kJoin,
           {P::ConstBind("?c1"),
            P::N(Op::kJoin, {P::ConstBind("?c2"), P::V("?a")})}),
      [](EGraph& eg, ClassId, const Subst& s) -> std::optional<ClassId> {
        double c = s.ValueOf(Symbol::Intern("?c1")) *
                   s.ValueOf(Symbol::Intern("?c2"));
        return AddNode(eg, Op::kJoin,
                       {AddConst(eg, c), s.ClassOf(Symbol::Intern("?a"))});
      }));
  rules.push_back(MakeDynRewrite(
      "coeff-union-fold",
      P::N(Op::kUnion,
           {P::N(Op::kJoin, {P::ConstBind("?c1"), P::V("?a")}),
            P::N(Op::kJoin, {P::ConstBind("?c2"), P::V("?a")})}),
      [](EGraph& eg, ClassId, const Subst& s) -> std::optional<ClassId> {
        double c = s.ValueOf(Symbol::Intern("?c1")) +
                   s.ValueOf(Symbol::Intern("?c2"));
        return AddNode(eg, Op::kJoin,
                       {AddConst(eg, c), s.ClassOf(Symbol::Intern("?a"))});
      }));
  // A + A*C = A*(1 + C): factoring when one side lacks an explicit
  // coefficient (rule 1 needs join shapes on both union children).
  rules.push_back(MakeRewrite(
      "factor-self",
      P::N(Op::kUnion, {P::V("?a"), P::N(Op::kJoin, {P::V("?a"), P::V("?c")})}),
      P::N(Op::kJoin,
           {P::V("?a"),
            P::N(Op::kUnion, {P::ConstLeaf(1.0), P::V("?c")})})));
  rules.push_back(MakeDynRewrite(
      "self-union-to-coeff",
      P::N(Op::kUnion, {P::V("?a"), P::V("?a")}),
      [](EGraph& eg, ClassId, const Subst& s) -> std::optional<ClassId> {
        return AddNode(eg, Op::kJoin,
                       {AddConst(eg, 2.0), s.ClassOf(Symbol::Intern("?a"))});
      }));
  // A + c*A = (1+c)*A  (needed to cancel X + (-1)X and friends).
  rules.push_back(MakeDynRewrite(
      "union-with-scaled-self",
      P::N(Op::kUnion,
           {P::V("?a"), P::N(Op::kJoin, {P::ConstBind("?c"), P::V("?a")})}),
      [](EGraph& eg, ClassId, const Subst& s) -> std::optional<ClassId> {
        double c = 1.0 + s.ValueOf(Symbol::Intern("?c"));
        return AddNode(eg, Op::kJoin,
                       {AddConst(eg, c), s.ClassOf(Symbol::Intern("?a"))});
      }));

  // -------------------------------------------------------------------
  // Sum-product decomposition (generalizes rules 3+4+7 in one sound step):
  // Sum_I (f1 * ... * fn) factorizes over connected components of the
  // factor graph induced by the bound attributes:
  //   Sum_{i,j}(U_i U_i V_j V_j) = (Sum_i U_i^2) * (Sum_j V_j^2).
  // Sampling AC rules would eventually expose the same regrouping, but this
  // rule makes the paper's flagship rewrites land reliably.
  // -------------------------------------------------------------------
  rules.push_back(MakeDynRewrite(
      "decompose-agg-product",
      P::AggBind("?I", P::V("?a")),
      [](EGraph& eg, ClassId, const Subst& s) -> std::optional<ClassId> {
        const std::vector<Symbol>& attrs = s.AttrsOf(Symbol::Intern("?I"));
        ClassId a = s.ClassOf(Symbol::Intern("?a"));
        std::vector<ClassId> factors;
        std::vector<ClassId> visiting;
        FlattenJoinClass(eg, a, &factors, visiting, 0);
        if (factors.size() < 2) return std::nullopt;
        // Union-find over factors: linked when sharing a bound attribute.
        std::vector<size_t> parent(factors.size());
        for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
        std::function<size_t(size_t)> find = [&](size_t x) {
          while (parent[x] != x) x = parent[x] = parent[parent[x]];
          return x;
        };
        for (Symbol attr : attrs) {
          size_t first = SIZE_MAX;
          for (size_t i = 0; i < factors.size(); ++i) {
            if (!AttrContains(eg.Data(factors[i]).schema, attr)) continue;
            if (first == SIZE_MAX) {
              first = i;
            } else {
              parent[find(i)] = find(first);
            }
          }
        }
        std::unordered_map<size_t, std::vector<size_t>> groups;
        for (size_t i = 0; i < factors.size(); ++i) {
          groups[find(i)].push_back(i);
        }
        if (groups.size() < 2) {
          // Single connected component: fall back to greedy variable
          // elimination (min-degree), which nests partial aggregates:
          //   Sum_{i,j,r,r'}(U V U V)
          //     = Sum_{r,r'}( Sum_i(U U) * Sum_j(V V) ).
          // Each step composes rules 3, 4 and 7, so the result is equal.
          struct VeFactor {
            ClassId cls;
            std::vector<Symbol> schema;
          };
          std::vector<VeFactor> work;
          work.reserve(factors.size());
          for (ClassId f : factors) {
            work.push_back({f, eg.Data(f).schema});
          }
          std::vector<Symbol> remaining = attrs;
          bool nontrivial = false;
          while (!remaining.empty()) {
            // Min-degree: the attribute in the fewest factors.
            Symbol best;
            size_t best_count = SIZE_MAX;
            for (Symbol x : remaining) {
              size_t count = 0;
              for (const VeFactor& f : work) {
                count += AttrContains(f.schema, x);
              }
              if (count < best_count) {
                best_count = count;
                best = x;
              }
            }
            if (best_count != 0 && best_count < work.size()) {
              nontrivial = true;
            }
            // Join the group containing `best`, aggregate it away.
            std::vector<VeFactor> group;
            std::vector<VeFactor> rest;
            for (VeFactor& f : work) {
              if (AttrContains(f.schema, best)) {
                group.push_back(std::move(f));
              } else {
                rest.push_back(std::move(f));
              }
            }
            remaining.erase(
                std::remove(remaining.begin(), remaining.end(), best),
                remaining.end());
            if (group.empty()) continue;  // rule 5 handled by analysis
            ClassId acc = group[0].cls;
            std::vector<Symbol> schema = group[0].schema;
            for (size_t i = 1; i < group.size(); ++i) {
              acc = AddNode(eg, Op::kJoin, {acc, group[i].cls});
              schema = AttrUnion(schema, group[i].schema);
            }
            // Aggregate every bound attr local to this group (best plus any
            // others no longer appearing outside).
            std::vector<Symbol> local = {best};
            for (Symbol x : remaining) {
              if (!AttrContains(schema, x)) continue;
              bool outside = false;
              for (const VeFactor& f : rest) {
                if (AttrContains(f.schema, x)) {
                  outside = true;
                  break;
                }
              }
              if (!outside) local.push_back(x);
            }
            std::sort(local.begin(), local.end());
            for (Symbol x : local) {
              remaining.erase(
                  std::remove(remaining.begin(), remaining.end(), x),
                  remaining.end());
            }
            acc = AddNode(eg, Op::kAgg, {acc}, local);
            rest.push_back({acc, AttrMinus(schema, local)});
            work = std::move(rest);
          }
          if (!nontrivial || work.empty()) return std::nullopt;
          ClassId result = work[0].cls;
          for (size_t i = 1; i < work.size(); ++i) {
            result = AddNode(eg, Op::kJoin, {result, work[i].cls});
          }
          return result;
        }
        // Each group: join its factors, aggregate its own bound attrs.
        std::vector<ClassId> pieces;
        double dims_mult = 1.0;
        std::vector<Symbol> covered;
        for (auto& [rep, members] : groups) {
          ClassId acc = factors[members[0]];
          std::vector<Symbol> schema = eg.Data(acc).schema;
          for (size_t i = 1; i < members.size(); ++i) {
            acc = AddNode(eg, Op::kJoin, {acc, factors[members[i]]});
            schema = AttrUnion(schema, eg.Data(factors[members[i]]).schema);
          }
          std::vector<Symbol> bound = AttrIntersect(attrs, schema);
          covered = AttrUnion(covered, bound);
          if (!bound.empty()) {
            acc = AddNode(eg, Op::kAgg, {acc}, std::move(bound));
          }
          pieces.push_back(acc);
        }
        // Attributes in I touching no factor multiply by their dimensions.
        (void)dims_mult;
        ClassId result = pieces[0];
        for (size_t i = 1; i < pieces.size(); ++i) {
          result = AddNode(eg, Op::kJoin, {result, pieces[i]});
        }
        std::vector<Symbol> uncovered = AttrMinus(attrs, covered);
        if (!uncovered.empty()) {
          result = AddNode(eg, Op::kAgg, {result}, std::move(uncovered));
        }
        return result;
      }));

  // -------------------------------------------------------------------
  // Fused operators inside saturation (Sec 3.3): encode sprop's definition
  // as an equality so both versions coexist and extraction can choose the
  // fused one by cost. p * (1 + (-1) * p) = sprop(p).
  // -------------------------------------------------------------------
  rules.push_back(MakeDynRewrite(
      "sprop-intro",
      P::N(Op::kJoin,
           {P::V("?p"),
            P::N(Op::kUnion,
                 {P::ConstLeaf(1.0),
                  P::N(Op::kJoin, {P::ConstLeaf(-1.0), P::V("?p")})})}),
      [](EGraph& eg, ClassId, const Subst& s) -> std::optional<ClassId> {
        ENode n;
        n.op = Op::kSProp;
        n.children = {s.ClassOf(Symbol::Intern("?p"))};
        return eg.Add(std::move(n));
      }));
  // And the reverse, so programs written with sprop() still saturate fully.
  rules.push_back(MakeRewrite(
      "sprop-elim",
      P::N(Op::kSProp, {P::V("?p")}),
      P::N(Op::kJoin,
           {P::V("?p"),
            P::N(Op::kUnion,
                 {P::ConstLeaf(1.0),
                  P::N(Op::kJoin, {P::ConstLeaf(-1.0), P::V("?p")})})})));

  return rules;
}

}  // namespace spores
