#include "src/rules/rules_lr.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/ir/printer.h"

namespace spores {

namespace {

// ---------------------------------------------------------------------------
// LA -> RA
// ---------------------------------------------------------------------------

class LaToRa {
 public:
  LaToRa(const Catalog& catalog, std::shared_ptr<DimEnv> dims)
      : catalog_(catalog), dims_(std::move(dims)) {}

  StatusOr<RaProgram> Run(const ExprPtr& la, Symbol out_row, Symbol out_col) {
    SPORES_ASSIGN_OR_RETURN(Shape shape, InferShape(la, catalog_));
    Symbol row = shape.rows > 1
                     ? (out_row.empty() ? AnchorAttr(la, true, shape.rows)
                                        : out_row)
                     : Symbol();
    Symbol col = shape.cols > 1
                     ? (out_col.empty()
                            ? AnchorAttr(la, false, shape.cols, /*avoid=*/row)
                            : out_col)
                     : Symbol();
    if (!row.empty()) dims_->Set(row, shape.rows);
    if (!col.empty()) dims_->Set(col, shape.cols);
    SPORES_ASSIGN_OR_RETURN(ExprPtr ra, Tr(la, row, col));
    RaProgram out;
    out.ra = std::move(ra);
    out.dims = dims_;
    out.out_shape = shape;
    out.out_row = row;
    out.out_col = col;
    return out;
  }

 private:
  // Deterministic attribute naming: the attribute a node introduces is a
  // pure function of the node's structure, its role, and the dimension, so
  // the same (sub)expression translates to the identically-named RA term in
  // every query. This is what lets a session's long-lived e-graph share
  // classes across queries — with globally-fresh names, no two
  // translations would ever hashcons together.
  //
  // Alpha-safety: a name f(N) is created at node N and immediately bound at
  // N (by the Agg the rule emits), so it is free only inside N's own
  // subtree; no strict subterm of N equals N structurally, hence a bound
  // attribute never escapes beside its binder. Distinct role tags keep the
  // attributes one node introduces apart, and the dimension is folded into
  // the name so one name always maps to one dimension, even across catalog
  // changes (the session DimEnv outlives catalog resets). Name collisions
  // reduce to 64-bit structural-hash collisions, the same tolerance the
  // translation memo below already accepts.
  Symbol NodeAttr(const Expr& node, char role, int64_t dim) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "a$%c%016llx_%lld", role,
                  static_cast<unsigned long long>(node.Hash()),
                  static_cast<long long>(dim));
    Symbol a = Symbol::Intern(buf);
    dims_->Set(a, dim);
    return a;
  }

  // Output axes are named by the axis's *origin*: descend through
  // axis-preserving operators to the node the axis really comes from, so a
  // query E and a wrapper around it (abs(E), E + E, ...) give their shared
  // output axes the same attribute — their translated bodies then coincide
  // inside the shared e-graph.
  uint64_t AxisAnchor(const ExprPtr& e, bool row_axis) {
    switch (e->op) {
      case Op::kElemMul:
      case Op::kElemPlus:
      case Op::kElemMinus:
      case Op::kElemDiv:
      case Op::kPow:
      case Op::kUnary:
      case Op::kNeg:
      case Op::kSProp: {
        // Follow the first child that actually carries the axis (broadcast
        // operands have size 1 there and cannot be its origin).
        for (const ExprPtr& c : e->children) {
          if (c->op == Op::kConst) continue;
          StatusOr<Shape> s = ShapeOf(c);
          if (!s.ok()) break;
          int64_t d = row_axis ? s.value().rows : s.value().cols;
          if (d > 1) return AxisAnchor(c, row_axis);
        }
        break;
      }
      case Op::kTranspose:
        return AxisAnchor(e->children[0], !row_axis);
      case Op::kMatMul:
        return row_axis ? AxisAnchor(e->children[0], true)
                        : AxisAnchor(e->children[1], false);
      case Op::kRowAgg:
        if (row_axis) return AxisAnchor(e->children[0], true);
        break;
      case Op::kColAgg:
        if (!row_axis) return AxisAnchor(e->children[0], false);
        break;
      default:
        break;
    }
    return e->Hash() * 2 + (row_axis ? 1 : 0);
  }

  Symbol AnchorAttr(const ExprPtr& e, bool row_axis, int64_t dim,
                    Symbol avoid = Symbol()) {
    char buf[56];
    std::snprintf(buf, sizeof(buf), "a$r%016llx_%lld",
                  static_cast<unsigned long long>(AxisAnchor(e, row_axis)),
                  static_cast<long long>(dim));
    Symbol a = Symbol::Intern(buf);
    if (a == avoid) {
      // Both output axes can originate at the same leaf axis (Gram queries:
      // X %*% t(X) rows and columns are both X's rows). They are still
      // independent indices and must carry distinct attributes.
      std::snprintf(buf, sizeof(buf), "a$r%016llx_%lldc",
                    static_cast<unsigned long long>(AxisAnchor(e, row_axis)),
                    static_cast<long long>(dim));
      a = Symbol::Intern(buf);
    }
    dims_->Set(a, dim);
    return a;
  }

  StatusOr<Shape> ShapeOf(const ExprPtr& e) {
    auto it = shapes_.find(e.get());
    if (it != shapes_.end()) return it->second;
    SPORES_ASSIGN_OR_RETURN(Shape s, InferShape(e, catalog_));
    shapes_.emplace(e.get(), s);
    return s;
  }

  // Translates `e` so its rows map to attribute `row` and columns to `col`
  // (either may be empty when that dimension is 1; for broadcast operands a
  // non-empty target may pair with a size-1 dimension, in which case the
  // attribute is dropped for that operand).
  StatusOr<ExprPtr> Tr(const ExprPtr& e, Symbol row, Symbol col) {
    SPORES_ASSIGN_OR_RETURN(Shape shape, ShapeOf(e));
    if (shape.rows == 1) row = Symbol();
    if (shape.cols == 1) col = Symbol();
    // Memoize on (structure, target attrs): common LA subexpressions then
    // translate to the *same* RA term (same internal attribute names), so
    // the e-graph sees them as shared (the CSE story of Fig 10).
    MemoKey key{e->Hash(), row, col};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    SPORES_ASSIGN_OR_RETURN(ExprPtr result, TrImpl(e, row, col));
    memo_.emplace(key, result);
    return result;
  }

  StatusOr<ExprPtr> TrImpl(const ExprPtr& e, Symbol row, Symbol col) {
    switch (e->op) {
      case Op::kVar: {
        std::vector<Symbol> attrs;
        if (!row.empty()) attrs.push_back(row);
        if (!col.empty()) attrs.push_back(col);
        return Expr::Bind(std::move(attrs), e);
      }
      case Op::kConst:
        return e;
      case Op::kElemMul: {
        SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], row, col));
        SPORES_ASSIGN_OR_RETURN(ExprPtr b, Tr(e->children[1], row, col));
        return Expr::Join({a, b});
      }
      case Op::kElemPlus: {
        SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], row, col));
        SPORES_ASSIGN_OR_RETURN(ExprPtr b, Tr(e->children[1], row, col));
        return Expr::Union({a, b});
      }
      case Op::kElemMinus: {
        // A - B  ->  A + (-1) * B   (Fig 2 rule 6)
        SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], row, col));
        SPORES_ASSIGN_OR_RETURN(ExprPtr b, Tr(e->children[1], row, col));
        return Expr::Union({a, Expr::Join({Expr::Const(-1.0), b})});
      }
      case Op::kNeg: {
        SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], row, col));
        return Expr::Join({Expr::Const(-1.0), a});
      }
      case Op::kMatMul: {
        // AB -> sum_j (A(i,j) * B(j,k))   (Fig 2 rule 4)
        SPORES_ASSIGN_OR_RETURN(Shape sa, ShapeOf(e->children[0]));
        Symbol j = sa.cols > 1 ? NodeAttr(*e, 'm', sa.cols) : Symbol();
        SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], row, j));
        SPORES_ASSIGN_OR_RETURN(ExprPtr b, Tr(e->children[1], j, col));
        ExprPtr joined = Expr::Join({a, b});
        if (j.empty()) return joined;  // inner dim 1: outer product
        return Expr::Agg({j}, joined);
      }
      case Op::kTranspose:
        return Tr(e->children[0], col, row);
      case Op::kRowAgg: {
        // rowSums: aggregate away the column attribute.
        SPORES_ASSIGN_OR_RETURN(Shape sa, ShapeOf(e->children[0]));
        Symbol j = sa.cols > 1 ? NodeAttr(*e, 'g', sa.cols) : Symbol();
        SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], row, j));
        if (j.empty()) return a;
        return Expr::Agg({j}, a);
      }
      case Op::kColAgg: {
        SPORES_ASSIGN_OR_RETURN(Shape sa, ShapeOf(e->children[0]));
        Symbol i = sa.rows > 1 ? NodeAttr(*e, 'h', sa.rows) : Symbol();
        SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], i, col));
        if (i.empty()) return a;
        return Expr::Agg({i}, a);
      }
      case Op::kSumAgg: {
        SPORES_ASSIGN_OR_RETURN(Shape sa, ShapeOf(e->children[0]));
        Symbol i = sa.rows > 1 ? NodeAttr(*e, 'u', sa.rows) : Symbol();
        Symbol j = sa.cols > 1 ? NodeAttr(*e, 'v', sa.cols) : Symbol();
        SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], i, j));
        std::vector<Symbol> attrs;
        if (!i.empty()) attrs.push_back(i);
        if (!j.empty()) attrs.push_back(j);
        if (attrs.empty()) return a;
        return Expr::Agg(std::move(attrs), a);
      }
      case Op::kPow: {
        double k = e->children[1]->value;
        if (k == std::floor(k) && k >= 1 && k <= 4) {
          // Integer power: k-fold self-join squares multiplicities.
          SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], row, col));
          std::vector<ExprPtr> factors(static_cast<size_t>(k), a);
          if (factors.size() == 1) return a;
          return Expr::Join(std::move(factors));
        }
        // Non-integer power: uninterpreted elementwise operator.
        SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], row, col));
        return Expr::Make(Op::kPow, Symbol(), 0, {},
                          {a, Expr::Const(k)});
      }
      case Op::kElemDiv: {
        // Division is not core RA; keep it as an uninterpreted barrier
        // (Sec 3.3), still optimizing above and below it.
        SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], row, col));
        SPORES_ASSIGN_OR_RETURN(ExprPtr b, Tr(e->children[1], row, col));
        return Expr::Make(Op::kElemDiv, Symbol(), 0, {}, {a, b});
      }
      case Op::kUnary: {
        SPORES_ASSIGN_OR_RETURN(ExprPtr a, Tr(e->children[0], row, col));
        return Expr::Make(Op::kUnary, e->sym, 0, {}, {a});
      }
      case Op::kSProp: {
        // sprop(P) = P * (1 - P); expand so saturation can reason about it.
        SPORES_ASSIGN_OR_RETURN(ExprPtr p, Tr(e->children[0], row, col));
        ExprPtr one_minus =
            Expr::Union({Expr::Const(1.0),
                         Expr::Join({Expr::Const(-1.0), p})});
        return Expr::Join({p, one_minus});
      }
      case Op::kWsLoss: {
        // wsloss(X, U, V) = sum((X - U V^T)^2); expand the definition.
        ExprPtr x = e->children[0];
        ExprPtr u = e->children[1];
        ExprPtr v = e->children[2];
        ExprPtr expanded = Expr::Sum(
            Expr::Pow(Expr::Minus(x, Expr::MatMul(u, Expr::Transpose(v))),
                      2.0));
        return Tr(expanded, Symbol(), Symbol());
      }
      default:
        return Status::Unsupported(std::string("TranslateLaToRa: op ") +
                                   std::string(OpName(e->op)));
    }
  }

  struct MemoKey {
    uint64_t hash;
    Symbol row;
    Symbol col;
    friend bool operator==(const MemoKey&, const MemoKey&) = default;
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& k) const {
      return k.hash ^ (static_cast<uint64_t>(k.row.id()) << 32) ^ k.col.id();
    }
  };

  const Catalog& catalog_;
  std::shared_ptr<DimEnv> dims_;
  std::unordered_map<const Expr*, Shape> shapes_;
  std::unordered_map<MemoKey, ExprPtr, MemoKeyHash> memo_;
};

// ---------------------------------------------------------------------------
// RA -> LA
// ---------------------------------------------------------------------------

// An LA expression plus the attributes its two dimensions carry.
// row/col empty <=> that dimension has size 1.
struct Located {
  ExprPtr la;
  Symbol row;
  Symbol col;

  std::vector<Symbol> SchemaSet() const {
    std::vector<Symbol> s;
    if (!row.empty()) s.push_back(row);
    if (!col.empty()) s.push_back(col);
    std::sort(s.begin(), s.end());
    return s;
  }
  bool IsScalar() const { return row.empty() && col.empty(); }
};

class RaToLa {
 public:
  RaToLa(const RaProgram& program, const Catalog& catalog)
      : program_(program), catalog_(catalog) {}

  StatusOr<ExprPtr> Run(const ExprPtr& ra) {
    SPORES_ASSIGN_OR_RETURN(Located out, Lower(ra));
    SPORES_ASSIGN_OR_RETURN(
        Located aligned, AlignTo(out, program_.out_row, program_.out_col));
    return aligned.la;
  }

 private:
  int64_t DimOf(Symbol a) const { return program_.dims->DimOf(a); }

  // Re-orients `x` to carry (row, col); inserts a transpose when flipped.
  StatusOr<Located> AlignTo(Located x, Symbol row, Symbol col) {
    if (x.row == row && x.col == col) return x;
    if (x.row == col && x.col == row) {
      return Located{Expr::Transpose(x.la), row, col};
    }
    return Status::Internal("cannot align schema {" + x.row.str() + "," +
                            x.col.str() + "} to {" + row.str() + "," +
                            col.str() + "}");
  }

  // Elementwise combine with broadcasting. `op` is kElemMul or kElemPlus.
  StatusOr<Located> Combine(Op op, Located a, Located b) {
    auto mk = [&](ExprPtr x, ExprPtr y) {
      return op == Op::kElemMul ? Expr::Mul(std::move(x), std::move(y))
                                : Expr::Plus(std::move(x), std::move(y));
    };
    std::vector<Symbol> sa = a.SchemaSet();
    std::vector<Symbol> sb = b.SchemaSet();
    // Make `a` the operand with the larger schema.
    if (sb.size() > sa.size()) {
      std::swap(a, b);
      std::swap(sa, sb);
    }
    if (sa == sb) {
      SPORES_ASSIGN_OR_RETURN(Located bb, AlignTo(b, a.row, a.col));
      return Located{mk(a.la, bb.la), a.row, a.col};
    }
    if (sb.empty()) {  // scalar broadcast
      return Located{mk(a.la, b.la), a.row, a.col};
    }
    if (sb.size() == 1 && sa.size() == 2) {
      Symbol attr = sb[0];
      if (attr == a.row) {
        // Broadcast as a column vector along a's rows.
        SPORES_ASSIGN_OR_RETURN(Located bb, AlignTo(b, attr, Symbol()));
        return Located{mk(a.la, bb.la), a.row, a.col};
      }
      if (attr == a.col) {
        // Broadcast as a row vector along a's columns.
        SPORES_ASSIGN_OR_RETURN(Located bb, AlignTo(b, Symbol(), attr));
        return Located{mk(a.la, bb.la), a.row, a.col};
      }
      return Status::Internal("broadcast attr not in larger operand");
    }
    if (sa.size() == 1 && sb.size() == 1) {
      // Disjoint single attrs: outer combine, e.g. u(i) * v(j) -> u %*% t(v)
      // for multiplication; addition becomes broadcast over both dims.
      SPORES_ASSIGN_OR_RETURN(Located ca, AlignTo(a, sa[0], Symbol()));
      SPORES_ASSIGN_OR_RETURN(Located cb, AlignTo(b, Symbol(), sb[0]));
      if (op == Op::kElemMul) {
        return Located{Expr::MatMul(ca.la, cb.la), sa[0], sb[0]};
      }
      // Outer sum: a(i) + b(j) broadcast; runtime broadcasting covers
      // (Nx1) + (1xM).
      return Located{Expr::Plus(ca.la, cb.la), sa[0], sb[0]};
    }
    if (sa.size() == 2 && sb.size() == 2) {
      // Same size but different sets: impossible if schemas differ.
      return Status::Internal("combine: incompatible 2-attr schemas");
    }
    return Status::Internal("combine: unsupported schema combination");
  }

  // Eliminates attribute `attr` from a single located operand by summing.
  StatusOr<Located> EliminateWithin(Located x, Symbol attr) {
    if (x.row == attr && x.col.empty()) {
      return Located{Expr::Sum(x.la), Symbol(), Symbol()};
    }
    if (x.col == attr && x.row.empty()) {
      return Located{Expr::Sum(x.la), Symbol(), Symbol()};
    }
    if (x.col == attr) {
      return Located{Expr::RowSums(x.la), x.row, Symbol()};
    }
    if (x.row == attr) {
      return Located{Expr::ColSums(x.la), Symbol(), x.col};
    }
    return Status::Internal("EliminateWithin: attr not present");
  }

  // Compiles sum over `bound` of the product of `factors` into LA by greedy
  // variable elimination. Every intermediate keeps at most two attributes.
  StatusOr<Located> CompileSumProduct(std::vector<Located> factors,
                                      std::vector<Symbol> bound) {
    // Constants first: fold scalars into one coefficient factor.
    while (!bound.empty()) {
      // Merge same-schema factors elementwise; this can only shrink the
      // problem and never increases schema width.
      SPORES_RETURN_IF_ERROR(MergeSameSchema(factors));

      // Pick the attribute occurring in the fewest factors.
      Symbol best;
      size_t best_count = SIZE_MAX;
      for (Symbol attr : bound) {
        size_t count = 0;
        for (const Located& f : factors) {
          if (f.row == attr || f.col == attr) ++count;
        }
        if (count < best_count) {
          best_count = count;
          best = attr;
        }
      }
      Symbol attr = best;
      bound.erase(std::remove(bound.begin(), bound.end(), attr), bound.end());

      std::vector<Located> group;
      std::vector<Located> rest;
      for (Located& f : factors) {
        if (f.row == attr || f.col == attr) {
          group.push_back(std::move(f));
        } else {
          rest.push_back(std::move(f));
        }
      }
      if (group.empty()) {
        // Rule 5 in reverse: sum_i A = A * dim(i) when i not in A's schema.
        Located c{Expr::Const(static_cast<double>(DimOf(attr))), Symbol(),
                  Symbol()};
        rest.push_back(c);
        factors = std::move(rest);
        continue;
      }
      SPORES_ASSIGN_OR_RETURN(Located reduced,
                              EliminateGroup(std::move(group), attr));
      rest.push_back(std::move(reduced));
      factors = std::move(rest);
    }

    // No bound attrs left: combine all remaining factors elementwise /
    // as outer products.
    SPORES_RETURN_IF_ERROR(MergeSameSchema(factors));
    // Combine smallest-schema first so scalars fold in cheaply.
    std::sort(factors.begin(), factors.end(),
              [](const Located& a, const Located& b) {
                return a.SchemaSet().size() < b.SchemaSet().size();
              });
    Located acc = std::move(factors[0]);
    for (size_t i = 1; i < factors.size(); ++i) {
      SPORES_ASSIGN_OR_RETURN(acc, Combine(Op::kElemMul, std::move(acc),
                                           std::move(factors[i])));
    }
    return acc;
  }

  // Merges factors that share an identical schema via elementwise multiply.
  Status MergeSameSchema(std::vector<Located>& factors) {
    for (size_t i = 0; i < factors.size(); ++i) {
      for (size_t j = i + 1; j < factors.size();) {
        if (factors[i].SchemaSet() == factors[j].SchemaSet()) {
          SPORES_ASSIGN_OR_RETURN(
              Located merged, Combine(Op::kElemMul, std::move(factors[i]),
                                      std::move(factors[j])));
          factors[i] = std::move(merged);
          factors.erase(factors.begin() + static_cast<ptrdiff_t>(j));
        } else {
          ++j;
        }
      }
    }
    return Status::OK();
  }

  // Eliminates `attr` from a group of factors that all contain it.
  // Precondition: factors with identical schemas are already merged, so the
  // group holds at most one {attr} vector, and matrices with distinct other
  // attributes.
  StatusOr<Located> EliminateGroup(std::vector<Located> group, Symbol attr) {
    SPORES_RETURN_IF_ERROR(MergeSameSchema(group));

    // Fold a pure {attr} vector into some matrix factor via broadcast
    // multiply (or keep it if it is alone).
    std::vector<Located> vectors;
    std::vector<Located> matrices;
    for (Located& g : group) {
      if (g.SchemaSet().size() == 1) {
        vectors.push_back(std::move(g));
      } else {
        matrices.push_back(std::move(g));
      }
    }
    SPORES_CHECK_LE(vectors.size(), 1u);

    if (matrices.empty()) {
      // sum_attr v(attr) -> sum(v).
      return EliminateWithin(std::move(vectors[0]), attr);
    }
    if (matrices.size() == 1) {
      Located m = std::move(matrices[0]);
      if (!vectors.empty()) {
        // sum_attr M(o,attr) * v(attr): matrix-vector multiply.
        Located v = std::move(vectors[0]);
        if (m.col == attr) {
          SPORES_ASSIGN_OR_RETURN(Located vc, AlignTo(v, attr, Symbol()));
          return Located{Expr::MatMul(m.la, vc.la), m.row, Symbol()};
        }
        SPORES_CHECK(m.row == attr);
        SPORES_ASSIGN_OR_RETURN(Located vr, AlignTo(v, Symbol(), attr));
        return Located{Expr::MatMul(vr.la, m.la), Symbol(), m.col};
      }
      return EliminateWithin(std::move(m), attr);
    }
    if (matrices.size() == 2) {
      // sum_attr A(a,attr) * B(attr,b) -> matmul. Attach any vector first.
      Located a = std::move(matrices[0]);
      Located b = std::move(matrices[1]);
      if (!vectors.empty()) {
        SPORES_ASSIGN_OR_RETURN(
            a, Combine(Op::kElemMul, std::move(a), std::move(vectors[0])));
      }
      SPORES_ASSIGN_OR_RETURN(
          Located al, AlignTo(a, a.row == attr ? a.col : a.row, attr));
      SPORES_ASSIGN_OR_RETURN(
          Located bl, AlignTo(b, attr, b.row == attr ? b.col : b.row));
      return Located{Expr::MatMul(al.la, bl.la), al.row, bl.col};
    }
    // Three or more distinct matrices sharing `attr` would produce a >2-attr
    // output; the extraction-side schema restriction prevents this.
    return Status::Unsupported(
        "sum-product group needs a >2 attribute intermediate");
  }

  // Flattens a join tree into multiplicative factors, stopping at non-join
  // operators.
  void FlattenJoin(const ExprPtr& e, std::vector<ExprPtr>* out) {
    if (e->op == Op::kJoin) {
      for (const ExprPtr& c : e->children) FlattenJoin(c, out);
      return;
    }
    out->push_back(e);
  }

  StatusOr<Located> Lower(const ExprPtr& e) {
    switch (e->op) {
      case Op::kBind: {
        SPORES_CHECK_EQ(e->children[0]->op, Op::kVar);
        const ExprPtr& var = e->children[0];
        Shape shape = catalog_.Get(var->sym).shape;
        if (shape.rows > 1 && shape.cols > 1) {
          SPORES_CHECK_EQ(e->attrs.size(), 2u);
          return Located{var, e->attrs[0], e->attrs[1]};
        }
        if (shape.rows > 1) {
          SPORES_CHECK_EQ(e->attrs.size(), 1u);
          return Located{var, e->attrs[0], Symbol()};
        }
        if (shape.cols > 1) {
          SPORES_CHECK_EQ(e->attrs.size(), 1u);
          return Located{var, Symbol(), e->attrs[0]};
        }
        return Located{var, Symbol(), Symbol()};
      }
      case Op::kConst:
        return Located{e, Symbol(), Symbol()};
      case Op::kVar:
        // A bare scalar variable (1x1 matrix).
        return Located{e, Symbol(), Symbol()};
      case Op::kJoin: {
        std::vector<ExprPtr> parts;
        FlattenJoin(e, &parts);
        std::vector<Located> factors;
        factors.reserve(parts.size());
        for (const ExprPtr& p : parts) {
          SPORES_ASSIGN_OR_RETURN(Located l, Lower(p));
          factors.push_back(std::move(l));
        }
        return CompileSumProduct(std::move(factors), {});
      }
      case Op::kUnion: {
        SPORES_ASSIGN_OR_RETURN(Located a, Lower(e->children[0]));
        SPORES_ASSIGN_OR_RETURN(Located b, Lower(e->children[1]));
        return Combine(Op::kElemPlus, std::move(a), std::move(b));
      }
      case Op::kAgg: {
        // Aggregation over a join tree: compile jointly so matmuls fuse the
        // join with the aggregate and no wide intermediate materializes.
        std::vector<ExprPtr> parts;
        FlattenJoin(e->children[0], &parts);
        std::vector<Located> factors;
        factors.reserve(parts.size());
        for (const ExprPtr& p : parts) {
          SPORES_ASSIGN_OR_RETURN(Located l, Lower(p));
          factors.push_back(std::move(l));
        }
        return CompileSumProduct(std::move(factors), e->attrs);
      }
      case Op::kElemDiv: {
        SPORES_ASSIGN_OR_RETURN(Located a, Lower(e->children[0]));
        SPORES_ASSIGN_OR_RETURN(Located b, Lower(e->children[1]));
        // Reuse Combine's broadcasting by building with kElemMul and then
        // swapping the operator.
        std::vector<Symbol> sa = a.SchemaSet();
        std::vector<Symbol> sb = b.SchemaSet();
        if (sa == sb) {
          SPORES_ASSIGN_OR_RETURN(Located bb, AlignTo(b, a.row, a.col));
          return Located{Expr::Div(a.la, bb.la), a.row, a.col};
        }
        if (sb.empty()) {
          return Located{Expr::Div(a.la, b.la), a.row, a.col};
        }
        return Status::Unsupported("division with broadcast reshape");
      }
      case Op::kPow: {
        SPORES_ASSIGN_OR_RETURN(Located a, Lower(e->children[0]));
        return Located{Expr::Pow(a.la, e->children[1]->value), a.row, a.col};
      }
      case Op::kUnary: {
        SPORES_ASSIGN_OR_RETURN(Located a, Lower(e->children[0]));
        return Located{Expr::Unary(e->sym.str(), a.la), a.row, a.col};
      }
      case Op::kSProp: {
        SPORES_ASSIGN_OR_RETURN(Located a, Lower(e->children[0]));
        return Located{Expr::SProp(a.la), a.row, a.col};
      }
      default:
        return Status::Unsupported(std::string("TranslateRaToLa: op ") +
                                   std::string(OpName(e->op)) + " in " +
                                   ToString(e));
    }
  }

  const RaProgram& program_;
  const Catalog& catalog_;
};

}  // namespace

StatusOr<RaProgram> TranslateLaToRa(const ExprPtr& la, const Catalog& catalog,
                                    std::shared_ptr<DimEnv> dims,
                                    Symbol out_row, Symbol out_col) {
  if (!dims) dims = std::make_shared<DimEnv>();
  LaToRa translator(catalog, std::move(dims));
  return translator.Run(la, out_row, out_col);
}

StatusOr<ExprPtr> TranslateRaToLa(const ExprPtr& ra, const RaProgram& program,
                                  const Catalog& catalog) {
  RaToLa lowering(program, catalog);
  return lowering.Run(ra);
}

}  // namespace spores
