#include "src/rules/ra_analysis.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "src/util/check.h"

namespace spores {

void DimEnv::Set(Symbol attr, int64_t dim) {
  SPORES_CHECK_GT(dim, 0);
  Bucket& b = BucketOf(attr);
  std::unique_lock<std::shared_mutex> lock(b.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    write_contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  auto it = b.dims.find(attr);
  if (it != b.dims.end()) {
    SPORES_CHECK_MSG(it->second == dim, "attribute re-bound to new dimension");
    return;
  }
  b.dims.emplace(attr, dim);
}

int64_t DimEnv::DimOf(Symbol attr) const {
  const Bucket& b = BucketOf(attr);
  std::shared_lock<std::shared_mutex> lock(b.mu);
  auto it = b.dims.find(attr);
  SPORES_CHECK_MSG(it != b.dims.end(), attr.str().c_str());
  return it->second;
}

bool DimEnv::Has(Symbol attr) const {
  const Bucket& b = BucketOf(attr);
  std::shared_lock<std::shared_mutex> lock(b.mu);
  return b.dims.count(attr) > 0;
}

double DimEnv::SizeOf(const std::vector<Symbol>& attrs) const {
  double size = 1.0;
  for (Symbol a : attrs) {
    size *= static_cast<double>(DimOf(a));
  }
  return size;
}

uint64_t DimEnv::WriteContended() const {
  return write_contended_.load(std::memory_order_relaxed);
}

std::vector<Symbol> AttrUnion(const std::vector<Symbol>& a,
                              const std::vector<Symbol>& b) {
  std::vector<Symbol> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<Symbol> AttrMinus(const std::vector<Symbol>& a,
                              const std::vector<Symbol>& b) {
  std::vector<Symbol> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<Symbol> AttrIntersect(const std::vector<Symbol>& a,
                                  const std::vector<Symbol>& b) {
  std::vector<Symbol> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

bool AttrContains(const std::vector<Symbol>& set, Symbol x) {
  return std::binary_search(set.begin(), set.end(), x);
}

ClassData RaAnalysis::Make(const EGraph& egraph, const ENode& node) {
  ClassData d;
  auto child = [&](size_t i) -> const ClassData& {
    return egraph.Data(node.children[i]);
  };

  switch (node.op) {
    case Op::kVar: {
      // A bare matrix value (not yet bound); schema empty. Sparsity from the
      // catalog when known. An input with zero non-zeroes is the constant-0
      // relation, which drives SystemML's Empty* rewrites (Fig 14) through
      // plain constant folding.
      if (ctx_.catalog && ctx_.catalog->Has(node.sym)) {
        d.sparsity = ctx_.catalog->Get(node.sym).sparsity;
        if (d.sparsity == 0.0) d.constant = 0.0;
      }
      return d;
    }
    case Op::kConst:
      d.constant = node.value;
      d.sparsity = (node.value == 0.0) ? 0.0 : 1.0;
      return d;
    case Op::kBind: {
      d.schema = node.attrs;
      std::sort(d.schema.begin(), d.schema.end());
      d.sparsity = child(0).sparsity;
      d.constant = child(0).constant;
      return d;
    }
    case Op::kUnbind: {
      d.schema = {};
      d.sparsity = child(0).sparsity;
      d.constant = child(0).constant;
      return d;
    }
    case Op::kJoin: {
      const ClassData& a = child(0);
      const ClassData& b = child(1);
      d.schema = AttrUnion(a.schema, b.schema);
      d.sparsity = std::min(a.sparsity, b.sparsity);  // Fig 12
      if (a.constant && b.constant) d.constant = *a.constant * *b.constant;
      // Joining with a known zero gives the all-zero relation.
      if ((a.constant && *a.constant == 0.0) ||
          (b.constant && *b.constant == 0.0)) {
        d.sparsity = 0.0;
        d.constant = 0.0;
      }
      return d;
    }
    case Op::kUnion: {
      const ClassData& a = child(0);
      const ClassData& b = child(1);
      d.schema = AttrUnion(a.schema, b.schema);
      d.sparsity = std::min(1.0, a.sparsity + b.sparsity);  // Fig 12
      if (a.constant && b.constant) d.constant = *a.constant + *b.constant;
      return d;
    }
    case Op::kAgg: {
      const ClassData& a = child(0);
      d.schema = AttrMinus(a.schema, node.attrs);
      // Fig 12: S[sum_i X] = min(1, |i| * S[X]).
      double bound_size = 1.0;
      if (ctx_.dims) {
        for (Symbol attr : node.attrs) {
          if (ctx_.dims->Has(attr)) {
            bound_size *= static_cast<double>(ctx_.dims->DimOf(attr));
          }
        }
      }
      d.sparsity = std::min(1.0, bound_size * a.sparsity);
      // Rule 5 as constant folding: aggregating a constant-valued relation
      // multiplies the constant by the aggregated dimensions, whether the
      // attribute is in the child's schema (summing dim(i) equal entries)
      // or not (broadcast, also dim(i) copies).
      if (a.constant && ctx_.dims) {
        bool all_known = true;
        double mult = 1.0;
        for (Symbol attr : node.attrs) {
          if (!ctx_.dims->Has(attr)) { all_known = false; break; }
          mult *= static_cast<double>(ctx_.dims->DimOf(attr));
        }
        if (all_known) d.constant = *a.constant * mult;
      }
      return d;
    }
    // Uninterpreted elementwise operators kept as optimization barriers
    // (Sec 3.3): schema is the union of child schemas.
    case Op::kElemDiv: {
      const ClassData& a = child(0);
      const ClassData& b = child(1);
      d.schema = AttrUnion(a.schema, b.schema);
      d.sparsity = a.sparsity;  // 0/x == 0
      if (a.constant && b.constant && *b.constant != 0.0) {
        d.constant = *a.constant / *b.constant;
      }
      return d;
    }
    case Op::kPow: {
      const ClassData& a = child(0);
      d.schema = a.schema;
      d.sparsity = a.sparsity;  // 0^k == 0 for k > 0
      if (a.constant && child(1).constant) {
        d.constant = std::pow(*a.constant, *child(1).constant);
      }
      return d;
    }
    case Op::kSProp: {
      const ClassData& a = child(0);
      d.schema = a.schema;
      d.sparsity = a.sparsity;  // sprop(0) == 0
      if (a.constant) d.constant = *a.constant * (1.0 - *a.constant);
      return d;
    }
    case Op::kUnary: {
      const ClassData& a = child(0);
      d.schema = a.schema;
      const std::string& fn = node.sym.str();
      // exp/log/sigmoid map zero to non-zero: output is dense.
      if (fn == "sqrt" || fn == "sign" || fn == "abs") {
        d.sparsity = a.sparsity;
      } else {
        d.sparsity = 1.0;
      }
      if (a.constant) {
        double v = *a.constant;
        if (fn == "exp") d.constant = std::exp(v);
        else if (fn == "log") d.constant = std::log(v);
        else if (fn == "sqrt") d.constant = std::sqrt(v);
        else if (fn == "sigmoid") d.constant = 1.0 / (1.0 + std::exp(-v));
        else if (fn == "sign") d.constant = (v > 0) - (v < 0);
        else if (fn == "abs") d.constant = std::abs(v);
      }
      return d;
    }
    default: {
      // LA operators may appear when translation rules run inside
      // saturation; give them empty (matrix) schema and propagate sparsity
      // conservatively.
      if (!node.children.empty()) {
        d.sparsity = child(0).sparsity;
      }
      return d;
    }
  }
}

bool RaAnalysis::Merge(ClassData& into, const ClassData& from) {
  // Schemas of equal expressions must agree (Sec 3.2). This is a saturation
  // soundness check: a schema mismatch means a rule fired unsoundly.
  SPORES_CHECK_MSG(into.schema == from.schema,
                   "schema invariant violated on e-class merge");
  bool changed = false;
  if (!into.constant && from.constant) {
    into.constant = from.constant;
    changed = true;
  }
  // Conservative estimates can differ between equal expressions; keep the
  // tighter one (Sec 3.2).
  if (from.sparsity < into.sparsity) {
    into.sparsity = from.sparsity;
    changed = true;
  }
  return changed;
}

void RaAnalysis::Modify(EGraph& egraph, ClassId id) {
  // Materialize folded constants: if the class is known-constant but holds
  // no kConst node yet, add one and merge (integrates constant folding with
  // the rest of the rewrites, Sec 3.2).
  ClassId root = egraph.Find(id);
  const ClassData& data = egraph.Data(root);
  if (!data.constant || !data.schema.empty()) return;
  for (NodeId nid : egraph.GetClass(root).nodes) {
    if (egraph.NodeAt(nid).op == Op::kConst) return;
  }
  ENode cnode;
  cnode.op = Op::kConst;
  cnode.value = *data.constant;
  ClassId cid = egraph.Add(std::move(cnode));
  egraph.Merge(root, cid);
}

}  // namespace spores
