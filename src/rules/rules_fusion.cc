#include "src/rules/rules_fusion.h"

#include <algorithm>

namespace spores {

namespace {

bool IsConst(const ExprPtr& e, double v) {
  return e->op == Op::kConst && e->value == v;
}

// ---------------------------------------------------------------------------
// Normalization: make negative coefficients readable so fusion patterns can
// match. Plus(x, Mul(-1, y)) -> Minus(x, y); Mul(-1, x) -> Neg(x).
// ---------------------------------------------------------------------------

bool IsNegOne(const ExprPtr& e) { return IsConst(e, -1.0); }

ExprPtr NormalizeNode(const ExprPtr& e) {
  if (e->op == Op::kElemPlus) {
    const ExprPtr& a = e->children[0];
    const ExprPtr& b = e->children[1];
    if (b->op == Op::kElemMul && IsNegOne(b->children[0])) {
      return Expr::Minus(a, b->children[1]);
    }
    if (b->op == Op::kElemMul && IsNegOne(b->children[1])) {
      return Expr::Minus(a, b->children[0]);
    }
    if (a->op == Op::kElemMul && IsNegOne(a->children[0])) {
      return Expr::Minus(b, a->children[1]);
    }
    if (a->op == Op::kElemMul && IsNegOne(a->children[1])) {
      return Expr::Minus(b, a->children[0]);
    }
    if (b->op == Op::kNeg) return Expr::Minus(a, b->children[0]);
    if (a->op == Op::kNeg) return Expr::Minus(b, a->children[0]);
  }
  if (e->op == Op::kElemMul) {
    if (e->children[0]->op == Op::kConst && e->children[1]->op == Op::kConst) {
      return Expr::Const(e->children[0]->value * e->children[1]->value);
    }
    if (IsNegOne(e->children[0])) return Expr::Neg(e->children[1]);
    if (IsNegOne(e->children[1])) return Expr::Neg(e->children[0]);
    if (IsConst(e->children[0], 1.0)) return e->children[1];
    if (IsConst(e->children[1], 1.0)) return e->children[0];
  }
  if (e->op == Op::kNeg) {
    if (e->children[0]->op == Op::kNeg) return e->children[0]->children[0];
    if (e->children[0]->op == Op::kConst) {
      return Expr::Const(-e->children[0]->value);
    }
  }
  if (e->op == Op::kElemMinus && e->children[1]->op == Op::kNeg) {
    return Expr::Plus(e->children[0], e->children[1]->children[0]);
  }
  return e;
}

// ---------------------------------------------------------------------------
// Fusion patterns
// ---------------------------------------------------------------------------

// Matches X - U %*% t(V) or X - U %*% W, returning (X, U, V).
bool MatchLowRankResidual(const ExprPtr& e, ExprPtr* x, ExprPtr* u,
                          ExprPtr* v) {
  if (e->op != Op::kElemMinus) return false;
  const ExprPtr& rhs = e->children[1];
  if (rhs->op != Op::kMatMul) return false;
  *x = e->children[0];
  *u = rhs->children[0];
  const ExprPtr& w = rhs->children[1];
  *v = (w->op == Op::kTranspose) ? w->children[0] : Expr::Transpose(w);
  return true;
}

// Flattens an elementwise-multiply tree into factors.
void FlattenMul(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->op == Op::kElemMul) {
    FlattenMul(e->children[0], out);
    FlattenMul(e->children[1], out);
    return;
  }
  out->push_back(e);
}

// Is `m` of the form (1 - p)?
bool IsOneMinus(const ExprPtr& m, ExprPtr* p) {
  if (m->op == Op::kElemMinus && IsConst(m->children[0], 1.0)) {
    *p = m->children[1];
    return true;
  }
  return false;
}

ExprPtr FuseNode(const ExprPtr& e) {
  // sum((X - U V^T)^2) -> wsloss (SystemML's weighted-squared-loss).
  if (e->op == Op::kSumAgg) {
    const ExprPtr& body = e->children[0];
    ExprPtr squared;
    if (body->op == Op::kPow && body->children[1]->op == Op::kConst &&
        body->children[1]->value == 2.0) {
      squared = body->children[0];
    } else if (body->op == Op::kElemMul &&
               ExprEquals(body->children[0], body->children[1])) {
      squared = body->children[0];
    }
    if (squared) {
      ExprPtr x, u, v;
      if (MatchLowRankResidual(squared, &x, &u, &v)) {
        return Expr::WsLoss(x, u, v);
      }
    }
  }
  // sprop: find a {p, (1-p)} pair among the factors of a multiply chain.
  if (e->op == Op::kElemMul) {
    std::vector<ExprPtr> factors;
    FlattenMul(e, &factors);
    if (factors.size() >= 2) {
      for (size_t i = 0; i < factors.size(); ++i) {
        ExprPtr p;
        if (!IsOneMinus(factors[i], &p)) continue;
        for (size_t j = 0; j < factors.size(); ++j) {
          if (i == j || !ExprEquals(factors[j], p)) continue;
          // Replace factors i and j by sprop(p); rebuild the chain.
          std::vector<ExprPtr> rest;
          for (size_t k = 0; k < factors.size(); ++k) {
            if (k != i && k != j) rest.push_back(factors[k]);
          }
          ExprPtr fused = Expr::SProp(p);
          for (ExprPtr& r : rest) fused = Expr::Mul(fused, r);
          return fused;
        }
      }
    }
  }
  return e;
}

}  // namespace

ExprPtr ApplyFusion(const ExprPtr& expr) {
  std::vector<ExprPtr> children;
  children.reserve(expr->children.size());
  bool changed = false;
  for (const ExprPtr& c : expr->children) {
    ExprPtr fused = ApplyFusion(c);
    changed |= (fused != c);
    children.push_back(std::move(fused));
  }
  ExprPtr rebuilt =
      changed ? Expr::Make(expr->op, expr->sym, expr->value, expr->attrs,
                           std::move(children))
              : expr;
  // Normalization can cascade (e.g. Mul(-1,-1) -> Neg(Const(-1)) -> Const):
  // iterate to a per-node fixpoint before trying fusion.
  while (true) {
    ExprPtr normalized = NormalizeNode(rebuilt);
    if (normalized == rebuilt) break;
    rebuilt = normalized;
  }
  return FuseNode(rebuilt);
}

}  // namespace spores
