// LA-level fused-operator recognition (Sec 3.3 / SystemML's wsloss & sprop).
// SPORES' extraction picks the algebraically best plan; this post-pass then
// replaces sub-trees with SystemML-style fused operators so the runtime can
// execute them without materializing intermediates. The heuristic baseline
// optimizer reuses the same pass.
#pragma once

#include "src/ir/expr.h"

namespace spores {

/// Rewrites fusible patterns bottom-up:
///   sum((X - U %*% t(V))^2)   -> wsloss(X, U, V)
///   sum((X - U %*% W)^2)      -> wsloss(X, U, t(W))
///   P * (1 - P), (1 - P) * P  -> sprop(P)
ExprPtr ApplyFusion(const ExprPtr& expr);

}  // namespace spores
