// RA-specific e-class analysis (Sec 3.2 "Schema and Sparsity as Class
// Invariant"): tracks each class's free-attribute schema, scalar constant
// (enabling constant folding inside saturation), and a conservative sparsity
// estimate per Fig 12. Attribute dimensions live in a DimEnv shared between
// translation, analysis, cost model, and extraction.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/egraph/egraph.h"
#include "src/ir/expr.h"

namespace spores {

/// Maps attribute symbols (indices i, j, ...) to their dimension sizes.
///
/// Thread-safe and monotone: entries are write-once (Set re-binding an
/// attribute to a different dimension is a checked error), so one DimEnv can
/// back many concurrent optimizer sessions — deterministic LA->RA attribute
/// naming folds the dimension into every generated name, so racing Set calls
/// for the same attribute always agree and the winner is irrelevant.
///
/// Sharded against contention (PR 9): entries are distributed across
/// cache-line-aligned buckets by symbol hash, each with its own
/// reader-writer lock, so sessions on different serving shards only collide
/// when they touch attributes hashing into the same bucket. Reads take that
/// bucket's shared lock; a read following any Set of that attribute (on any
/// thread, ordered by the bucket lock) sees it. SizeOf locks one bucket at
/// a time — safe because entries are write-once, so there is no multi-
/// attribute invariant a bucket-at-a-time walk could observe half-updated.
class DimEnv {
 public:
  DimEnv() = default;
  DimEnv(const DimEnv&) = delete;
  DimEnv& operator=(const DimEnv&) = delete;

  void Set(Symbol attr, int64_t dim);
  int64_t DimOf(Symbol attr) const;
  bool Has(Symbol attr) const;

  /// Product of dimensions of an attribute set (the output size of a
  /// relation with that schema). Empty set -> 1 (a scalar). Every attribute
  /// must be bound.
  double SizeOf(const std::vector<Symbol>& attrs) const;

  /// Set() calls that found their bucket's writer lock held. Monotone; a
  /// profile counter for the scaling study, not a synchronization point.
  uint64_t WriteContended() const;

 private:
  static constexpr size_t kBucketBits = 4;
  static constexpr size_t kNumBuckets = size_t{1} << kBucketBits;  // 16

  struct alignas(64) Bucket {
    mutable std::shared_mutex mu;
    std::unordered_map<Symbol, int64_t> dims;
  };

  Bucket& BucketOf(Symbol attr) const {
    return buckets_[std::hash<Symbol>{}(attr) & (kNumBuckets - 1)];
  }

  mutable Bucket buckets_[kNumBuckets];
  mutable std::atomic<uint64_t> write_contended_{0};
};

/// Shared context threaded through analysis, rules, cost and extraction.
struct RaContext {
  const Catalog* catalog = nullptr;
  std::shared_ptr<DimEnv> dims;
};

/// Sorted-set union / difference helpers for schemas.
std::vector<Symbol> AttrUnion(const std::vector<Symbol>& a,
                              const std::vector<Symbol>& b);
std::vector<Symbol> AttrMinus(const std::vector<Symbol>& a,
                              const std::vector<Symbol>& b);
std::vector<Symbol> AttrIntersect(const std::vector<Symbol>& a,
                                  const std::vector<Symbol>& b);
bool AttrContains(const std::vector<Symbol>& set, Symbol x);

/// The analysis plugged into the EGraph for SPORES saturation.
class RaAnalysis final : public Analysis {
 public:
  explicit RaAnalysis(RaContext ctx) : ctx_(std::move(ctx)) {}

  ClassData Make(const EGraph& egraph, const ENode& node) override;
  bool Merge(ClassData& into, const ClassData& from) override;
  void Modify(EGraph& egraph, ClassId id) override;

  const RaContext& context() const { return ctx_; }

 private:
  RaContext ctx_;
};

}  // namespace spores
