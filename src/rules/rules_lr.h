// R_LR (Fig 2): translation between Linear Algebra and Relational Algebra.
//
// TranslateLaToRa expands every LA operator element-wise into join / union /
// aggregate over bind-ed leaves, assigning fresh attribute names and
// recording their dimensions in a DimEnv. Dimensions of size 1 carry no
// attribute (a 1xN row vector becomes a relation over one attribute), which
// keeps K-relation schemas minimal and matches the paper's examples.
//
// TranslateRaToLa lowers an extracted RA term back to LA. Aggregations over
// join trees are compiled by variable elimination into matmuls, row/col
// aggregates and element-wise products, guaranteeing every LA intermediate
// has at most two attributes.
#pragma once

#include "src/ir/expr.h"
#include "src/rules/ra_analysis.h"

namespace spores {

/// Result of LA->RA translation for one expression DAG.
struct RaProgram {
  ExprPtr ra;                     ///< RA term (kBind leaves; no kUnbind).
  std::shared_ptr<DimEnv> dims;   ///< attribute dimensions
  Shape out_shape;                ///< LA output shape
  Symbol out_row;                 ///< output row attribute (empty if rows==1)
  Symbol out_col;                 ///< output col attribute (empty if cols==1)
};

/// Translates an LA expression to RA (rules R_LR). Fresh attributes are
/// drawn from `dims` (created if null). `out_row`/`out_col` fix the output
/// attribute names (used to compare translations of two expressions); when
/// empty they are drawn fresh.
StatusOr<RaProgram> TranslateLaToRa(const ExprPtr& la, const Catalog& catalog,
                                    std::shared_ptr<DimEnv> dims = nullptr,
                                    Symbol out_row = Symbol(),
                                    Symbol out_col = Symbol());

/// Lowers an RA term back to LA, oriented to (program.out_row,
/// program.out_col). `ra` is typically the extraction result for
/// program.ra's e-class.
StatusOr<ExprPtr> TranslateRaToLa(const ExprPtr& ra, const RaProgram& program,
                                  const Catalog& catalog);

}  // namespace spores
