// R_EQ (Fig 3): the seven relational-algebra identities that make the
// optimizer complete, expressed as e-graph rewrite rules, plus coefficient
// and identity-element folding that keeps the canonical forms compact.
// Associativity/commutativity are flagged expansive so the sampling
// strategy throttles them (Sec 3.1).
#pragma once

#include <vector>

#include "src/egraph/rewrite.h"
#include "src/rules/ra_analysis.h"

namespace spores {

/// The RA equality ruleset. `ctx` supplies dims for rule 5 folding.
std::vector<Rewrite> RaEqualityRules(const RaContext& ctx);

}  // namespace spores
