#include "src/cost/cost_model.h"

#include <algorithm>

namespace spores {

uint64_t CostModelParamsHash() {
  // FNV-1a over a descriptor naming every cost-relevant policy choice; the
  // version constant changes whenever the formulas in NodeCost do.
  const char descriptor[] =
      "spores-cost:output-nnz;join=min-sparsity*union-size;"
      "union=sum-sparsity;agg=bound-scaled;leaves-free;"
      "calibrated-category-multipliers";
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (char c : descriptor) mix(static_cast<unsigned char>(c));
  mix(kCostModelVersion);
  return h;
}

double CostModel::ClassNnz(const EGraph& egraph, ClassId id) const {
  const ClassData& d = egraph.Data(id);
  double size = ctx_.dims ? ctx_.dims->SizeOf(d.schema) : 1.0;
  return d.sparsity * size;
}

double CostModel::NodeCost(const EGraph& egraph, const ENode& node) const {
  double base = 0.0;
  double dense_size = 0.0;
  double sparsity = 1.0;
  CostCategory category = CostCategory::kElemwise;
  switch (node.op) {
    // Structural / free operators: leaves cost nothing (inputs already
    // exist); bind/unbind are metadata-only.
    case Op::kVar:
    case Op::kConst:
    case Op::kBind:
    case Op::kUnbind:
      return 0.0;
    case Op::kJoin: {
      // The join's conceptual output: schema = union of child schemas,
      // sparsity = min (Fig 12). For a join feeding an aggregate this equals
      // the fused multiply-add work (e.g. |i||j||k| for a matmul).
      const ClassData& a = egraph.Data(node.children[0]);
      const ClassData& b = egraph.Data(node.children[1]);
      std::vector<Symbol> schema = AttrUnion(a.schema, b.schema);
      sparsity = std::min(a.sparsity, b.sparsity);
      dense_size = ctx_.dims ? ctx_.dims->SizeOf(schema) : 1.0;
      // Joining with a scalar constant is a free coefficient fold.
      if (a.schema.empty() && a.constant) return 0.0;
      if (b.schema.empty() && b.constant) return 0.0;
      category = CostCategory::kContract;
      base = sparsity * dense_size;
      break;
    }
    case Op::kUnion: {
      const ClassData& a = egraph.Data(node.children[0]);
      const ClassData& b = egraph.Data(node.children[1]);
      std::vector<Symbol> schema = AttrUnion(a.schema, b.schema);
      sparsity = std::min(1.0, a.sparsity + b.sparsity);
      dense_size = ctx_.dims ? ctx_.dims->SizeOf(schema) : 1.0;
      category = CostCategory::kElemwise;
      base = sparsity * dense_size;
      break;
    }
    case Op::kAgg: {
      // Output materialization of the aggregate.
      const ClassData& a = egraph.Data(node.children[0]);
      std::vector<Symbol> schema = AttrMinus(a.schema, node.attrs);
      double bound_size = 1.0;
      if (ctx_.dims) {
        for (Symbol attr : node.attrs) {
          if (ctx_.dims->Has(attr)) {
            bound_size *= static_cast<double>(ctx_.dims->DimOf(attr));
          }
        }
      }
      sparsity = std::min(1.0, bound_size * a.sparsity);
      dense_size = ctx_.dims ? ctx_.dims->SizeOf(schema) : 1.0;
      category = CostCategory::kReduce;
      base = sparsity * dense_size;
      break;
    }
    default: {
      // Uninterpreted elementwise ops: dense-ish work over the union schema.
      std::vector<Symbol> schema;
      for (ClassId c : node.children) {
        schema = AttrUnion(schema, egraph.Data(c).schema);
      }
      dense_size = ctx_.dims ? ctx_.dims->SizeOf(schema) : 1.0;
      category = CostCategory::kElemwise;
      base = dense_size;
      break;
    }
  }
  // Calibrated multiplier on top of the a-priori charge. Skipped — not
  // multiplied by 1.0, skipped — for a null or pristine table, so runs that
  // never record feedback produce bit-identical costs.
  if (base <= 0.0 || calibration_ == nullptr) return base;
  if (calibration_->version() == 0) return base;
  return base * calibration_->Multiplier(category, dense_size, sparsity);
}

void CostMemo::SyncCalibration(const CostModel& cost) {
  uint64_t v = cost.calibration_version();
  if (v == calibration_version_) return;
  calibration_version_ = v;
  nodes_.clear();
  classes_.clear();
}

double CostMemo::NodeCost(const CostModel& cost, const EGraph& egraph,
                          NodeId nid) {
  SyncCalibration(cost);
  if (nodes_.size() <= nid) nodes_.resize(egraph.ArenaSize());
  const ENode& node = egraph.NodeAt(nid);
  // Any change to a child class (merge, repair, refined analysis data) bumps
  // its version to the graph's strictly increasing counter, so the max over
  // child versions moves whenever any cost input could have.
  uint64_t stamp = 1;
  for (ClassId c : node.children) {
    uint64_t v = egraph.ClassVersion(c) + 1;
    if (v > stamp) stamp = v;
  }
  Entry& e = nodes_[nid];
  if (e.stamp != stamp) {
    e.stamp = stamp;
    e.value = cost.NodeCost(egraph, node);
  }
  return e.value;
}

double CostMemo::ClassNnz(const CostModel& cost, const EGraph& egraph,
                          ClassId id) {
  SyncCalibration(cost);
  ClassId c = egraph.Find(id);
  if (classes_.size() <= c) classes_.resize(egraph.NumClassSlots());
  uint64_t stamp = egraph.ClassVersion(c) + 1;
  Entry& e = classes_[c];
  if (e.stamp != stamp) {
    e.stamp = stamp;
    e.value = cost.ClassNnz(egraph, c);
  }
  return e.value;
}

}  // namespace spores
