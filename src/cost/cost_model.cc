#include "src/cost/cost_model.h"

#include <algorithm>

namespace spores {

double CostModel::ClassNnz(const EGraph& egraph, ClassId id) const {
  const ClassData& d = egraph.Data(id);
  double size = ctx_.dims ? ctx_.dims->SizeOf(d.schema) : 1.0;
  return d.sparsity * size;
}

double CostModel::NodeCost(const EGraph& egraph, const ENode& node) const {
  switch (node.op) {
    // Structural / free operators: leaves cost nothing (inputs already
    // exist); bind/unbind are metadata-only.
    case Op::kVar:
    case Op::kConst:
    case Op::kBind:
    case Op::kUnbind:
      return 0.0;
    case Op::kJoin: {
      // The join's conceptual output: schema = union of child schemas,
      // sparsity = min (Fig 12). For a join feeding an aggregate this equals
      // the fused multiply-add work (e.g. |i||j||k| for a matmul).
      const ClassData& a = egraph.Data(node.children[0]);
      const ClassData& b = egraph.Data(node.children[1]);
      std::vector<Symbol> schema = AttrUnion(a.schema, b.schema);
      double sparsity = std::min(a.sparsity, b.sparsity);
      double size = ctx_.dims ? ctx_.dims->SizeOf(schema) : 1.0;
      // Joining with a scalar constant is a free coefficient fold.
      if (a.schema.empty() && a.constant) return 0.0;
      if (b.schema.empty() && b.constant) return 0.0;
      return sparsity * size;
    }
    case Op::kUnion: {
      const ClassData& a = egraph.Data(node.children[0]);
      const ClassData& b = egraph.Data(node.children[1]);
      std::vector<Symbol> schema = AttrUnion(a.schema, b.schema);
      double sparsity = std::min(1.0, a.sparsity + b.sparsity);
      double size = ctx_.dims ? ctx_.dims->SizeOf(schema) : 1.0;
      return sparsity * size;
    }
    case Op::kAgg: {
      // Output materialization of the aggregate.
      const ClassData& a = egraph.Data(node.children[0]);
      std::vector<Symbol> schema = AttrMinus(a.schema, node.attrs);
      double bound_size = 1.0;
      if (ctx_.dims) {
        for (Symbol attr : node.attrs) {
          if (ctx_.dims->Has(attr)) {
            bound_size *= static_cast<double>(ctx_.dims->DimOf(attr));
          }
        }
      }
      double sparsity = std::min(1.0, bound_size * a.sparsity);
      double size = ctx_.dims ? ctx_.dims->SizeOf(schema) : 1.0;
      return sparsity * size;
    }
    default: {
      // Uninterpreted elementwise ops: dense-ish work over the union schema.
      std::vector<Symbol> schema;
      for (ClassId c : node.children) {
        schema = AttrUnion(schema, egraph.Data(c).schema);
      }
      double size = ctx_.dims ? ctx_.dims->SizeOf(schema) : 1.0;
      return size;
    }
  }
}

}  // namespace spores
