// Feedback-driven cost calibration (closing the ROADMAP's observe →
// calibrate → re-extract loop): the executor's per-op profiles
// (ExecStats::profile) are folded into a CalibrationTable that learns, per
// (op, shape-bucket, log-sparsity-bucket) cell, how many wall-seconds one
// output cell actually costs — and publishes per-category cost multipliers
// the CostModel applies on top of its a-priori output-nnz charges.
//
// Publication is deliberately sticky: a cell's candidate multiplier must
// move past a relative dead band before the published value (and the table
// version) changes, so memoized costs (CostMemo) are only invalidated when
// the calibrated world view actually moved, and repeated observations of
// the same behavior are exact no-ops. A pristine table (version 0) is a
// guaranteed bitwise no-op for every cost: CostModel skips the multiply
// entirely, which keeps the plan-cost identity gates (concurrency_test,
// chaos_test, bench_scaling) byte-exact for feedback-free runs.
//
// The table is decoupled from the runtime on purpose — samples are plain
// (op name, shape, observed nnz, seconds) records, so spores_cost keeps no
// link dependency on spores_runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace spores {

/// One executed operator's observation, shaped after runtime OpProfile but
/// with an owned op name (profiles borrow OpName literals; feedback may
/// outlive the DAG that produced it).
struct CalibrationSample {
  std::string op;
  int64_t rows = 0;
  int64_t cols = 0;
  /// Observed output non-zeros; -1 when the executor did not count them
  /// (dense output with ExecStats::track_dense_nnz off) — treated as dense.
  int64_t out_nnz = -1;
  double seconds = 0.0;
};

/// Cost-model-facing operator families. Runtime ops are finer-grained than
/// the RA cost model's node kinds, so calibration aggregates observations
/// into the category the corresponding RA charge belongs to: contractions
/// (join/mmul — the min-sparsity * union-size charges), reductions
/// (agg/rowSums/colSums/sum), and elementwise work (everything else,
/// matching NodeCost's dense-union default and the union charge).
enum class CostCategory : uint8_t { kContract = 0, kElemwise = 1, kReduce = 2 };

CostCategory CategoryForOpName(std::string_view op);
const char* CostCategoryName(CostCategory c);

/// Knobs (see README "Adaptive costing" for the table).
struct CalibrationConfig {
  /// EWMA smoothing for per-cell unit-seconds and density estimates.
  double ewma_alpha = 0.3;
  /// Relative dead band: a published multiplier only moves (bumping the
  /// table version and invalidating memoized costs) when the candidate
  /// differs from it by more than this fraction.
  double dead_band = 0.25;
  /// Samples a (category, shape, sparsity) aggregate needs before it may
  /// publish a non-unit multiplier.
  uint64_t min_samples = 3;
  /// Published multipliers are clamped into [min_multiplier, max_multiplier]
  /// so one pathological observation cannot invert every plan choice.
  double min_multiplier = 0.25;
  double max_multiplier = 8.0;
  /// Predicted/observed cost ratio beyond which a cached plan is considered
  /// drifted: outside [1/t, t] the session invalidates the entry and
  /// re-extracts against the warm e-graph. <= 1 disables drift handling.
  double drift_threshold = 4.0;
};

/// log2 bucket of a dense cell count (floor(log2(max(1, cells)))).
int32_t ShapeBucket(double cells);
/// log10 bucket of a density in (0, 1], clamped to [-9, 0]; non-positive
/// densities land in the sparsest bucket, >= 1 in the dense bucket 0.
int32_t SparsityBucket(double density);

/// Wide bucket sentinel used by persistence for category-level multipliers.
inline constexpr int32_t kCategoryWideBucket = INT32_MIN;

struct CalibrationCellImage {
  std::string op;
  int32_t shape_bucket = 0;
  int32_t sparsity_bucket = 0;
  uint64_t samples = 0;
  double unit_seconds = 0.0;
  double density = 0.0;
};

struct CalibrationPublishedImage {
  uint8_t category = 0;
  int32_t shape_bucket = 0;  ///< kCategoryWideBucket for category-level rows
  int32_t sparsity_bucket = 0;
  double multiplier = 1.0;
};

/// Process-independent image of a table (persisted as its own snapshot
/// section; see src/persist/plan_store.h).
struct CalibrationImage {
  uint64_t version = 0;
  uint64_t baseline_samples = 0;
  double baseline_unit_seconds = 0.0;
  std::vector<CalibrationCellImage> cells;
  std::vector<CalibrationPublishedImage> published;
};

/// Thread-safe observed-cost aggregate. One per OptimizerSession (written by
/// the shard's own worker via RecordExecution, read during extraction by the
/// same thread, and read by checkpoint captures / Stats on that worker too —
/// the mutex is for the cross-thread restore and inspection paths).
class CalibrationTable {
 public:
  explicit CalibrationTable(CalibrationConfig config = {});

  /// Folds a batch of samples in. Returns true iff a published multiplier
  /// moved past the dead band (the table version was bumped, so memoized
  /// costs computed against the old version must be discarded).
  bool Record(const std::vector<CalibrationSample>& samples);

  /// Observed execution cost of a batch in cost-model units (output cells at
  /// baseline speed): total seconds / baseline unit-seconds. Comparable to a
  /// plan's predicted model cost. Returns -1 until the baseline has seen
  /// min_samples observations.
  double ObservedCostUnits(const std::vector<CalibrationSample>& samples) const;

  /// Published multiplier for a cost-model charge of `category` producing an
  /// output of `dense_cells` cells at `density`. Exactly 1.0 for a pristine
  /// table and for any (category, bucket) that has not published.
  double Multiplier(CostCategory category, double dense_cells,
                    double density) const;

  /// Bumped on every published-multiplier move; 0 = pristine (no multiplier
  /// has ever published — costs are guaranteed un-multiplied).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  size_t cell_count() const;
  uint64_t total_samples() const;
  const CalibrationConfig& config() const { return config_; }

  CalibrationImage Export() const;
  /// Replaces the table's state with `image` (warm-restart restore path).
  void Restore(const CalibrationImage& image);

 private:
  struct CellKey {
    std::string op;
    int32_t shape_bucket = 0;
    int32_t sparsity_bucket = 0;
    bool operator<(const CellKey& o) const {
      if (op != o.op) return op < o.op;
      if (shape_bucket != o.shape_bucket) return shape_bucket < o.shape_bucket;
      return sparsity_bucket < o.sparsity_bucket;
    }
  };
  struct Cell {
    uint64_t samples = 0;
    double unit_seconds = 0.0;  ///< EWMA seconds per observed output cell
    double density = 0.0;       ///< EWMA observed output density
  };
  struct AggKey {
    uint8_t category = 0;
    int32_t shape_bucket = 0;
    int32_t sparsity_bucket = 0;
    bool operator<(const AggKey& o) const {
      if (category != o.category) return category < o.category;
      if (shape_bucket != o.shape_bucket) return shape_bucket < o.shape_bucket;
      return sparsity_bucket < o.sparsity_bucket;
    }
  };

  /// Recomputes the aggregate multiplier candidate for one (category,
  /// shape, sparsity) key — or the category-wide key when shape_bucket is
  /// kCategoryWideBucket — and publishes it if it clears the dead band.
  bool RepublishLocked(const AggKey& key);

  CalibrationConfig config_;
  mutable std::mutex mu_;
  std::map<CellKey, Cell> cells_;          // ordered: deterministic export
  std::map<AggKey, double> published_;     // only keys that have published
  double baseline_unit_ = 0.0;             ///< EWMA unit-seconds, all samples
  uint64_t baseline_samples_ = 0;
  std::atomic<uint64_t> version_{0};
};

}  // namespace spores
