// Cost model (Sec 3.1): each operator costs its estimated output size in
// non-zeroes — nnz = sparsity * (product of the schema's dimensions). Under
// the relational reading, a join under an aggregate is charged the size of
// the (conceptual) join output, which coincides with the multiplication
// work a fused matmul performs; leaves and structural nodes are free.
#pragma once

#include "src/egraph/egraph.h"
#include "src/rules/ra_analysis.h"

namespace spores {

/// Cost model over e-nodes, driven by the class analysis data (schema +
/// sparsity invariants) and the attribute DimEnv.
class CostModel {
 public:
  explicit CostModel(RaContext ctx) : ctx_(std::move(ctx)) {}

  /// Cost of selecting `node`, whose class analysis data is `data`.
  double NodeCost(const EGraph& egraph, const ENode& node) const;

  /// Estimated output nnz of a class.
  double ClassNnz(const EGraph& egraph, ClassId id) const;

  const RaContext& context() const { return ctx_; }

 private:
  RaContext ctx_;
};

}  // namespace spores
