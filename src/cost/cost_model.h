// Cost model (Sec 3.1): each operator costs its estimated output size in
// non-zeroes — nnz = sparsity * (product of the schema's dimensions). Under
// the relational reading, a join under an aggregate is charged the size of
// the (conceptual) join output, which coincides with the multiplication
// work a fused matmul performs; leaves and structural nodes are free.
#pragma once

#include "src/cost/calibration.h"
#include "src/egraph/egraph.h"
#include "src/rules/ra_analysis.h"

namespace spores {

/// Identity hash of the cost model's parameterization. The model is
/// structural (each operator charges its estimated output nnz) with no
/// tunable weights, so the "params" are the charging policy itself: bump
/// kCostModelVersion whenever NodeCost's formulas change. Persisted plan
/// stores embed this hash — a snapshot written under a different costing
/// policy must invalidate, since cached plan choices are cost-based.
inline constexpr uint32_t kCostModelVersion = 2;
uint64_t CostModelParamsHash();

/// Cost model over e-nodes, driven by the class analysis data (schema +
/// sparsity invariants) and the attribute DimEnv. An optional calibration
/// table scales each non-zero charge by the learned multiplier for the
/// node's (category, shape-bucket, sparsity-bucket); a null or pristine
/// (version 0) table is a guaranteed bitwise no-op — the multiply is
/// skipped entirely, so feedback-free runs cost identically to PR 7's.
class CostModel {
 public:
  explicit CostModel(RaContext ctx,
                     const CalibrationTable* calibration = nullptr)
      : ctx_(std::move(ctx)), calibration_(calibration) {}

  /// Cost of selecting `node`, whose class analysis data is `data`.
  double NodeCost(const EGraph& egraph, const ENode& node) const;

  /// Estimated output nnz of a class.
  double ClassNnz(const EGraph& egraph, ClassId id) const;

  const RaContext& context() const { return ctx_; }

  /// Version of the attached calibration table (0: none or pristine).
  /// CostMemo keys its validity on this — a version move means memoized
  /// costs were computed under a stale world view.
  uint64_t calibration_version() const {
    return calibration_ ? calibration_->version() : 0;
  }

 private:
  RaContext ctx_;
  const CalibrationTable* calibration_ = nullptr;
};

/// Version-tagged memo for extraction-time cost lookups. A node's cost is a
/// pure function of its children's class analysis data, and every class
/// carries the graph version at which it last changed — so a cached cost is
/// valid while the (few) child-class versions still match the stamp it was
/// computed under, which turns the schema-union/dimension-product work in
/// NodeCost into two version reads on the unchanged-class fast path.
///
/// The memo survives across extractions of the same graph (a session keeps
/// one per shared e-graph): greedy's fixpoint loop, the ILP encoding, the
/// greedy warm-start inside IlpExtract, and later queries' extractions all
/// hit the same entries for classes saturation did not touch. Tied to one
/// EGraph instance — NodeIds/ClassIds index its arena; discard with it.
class CostMemo {
 public:
  /// Memoized CostModel::NodeCost of the arena node `nid`.
  double NodeCost(const CostModel& cost, const EGraph& egraph, NodeId nid);

  /// Memoized CostModel::ClassNnz of class `id` (canonical or not) — for
  /// nnz-driven consumers (size estimates, future cost-aware Compact());
  /// extraction itself only needs NodeCost.
  double ClassNnz(const CostModel& cost, const EGraph& egraph, ClassId id);

 private:
  struct Entry {
    uint64_t stamp = 0;  ///< 0 = empty; else 1 + newest dependency version
    double value = 0.0;
  };

  /// Class-version stamps catch graph changes but not calibration moves —
  /// a recalibration changes node costs with no graph edit. Every memoized
  /// value is additionally tied to the cost model's calibration version;
  /// on mismatch the whole memo is discarded (recalibrations are rare and
  /// globally invalidating by design — the dead band keeps them so).
  void SyncCalibration(const CostModel& cost);

  uint64_t calibration_version_ = 0;
  std::vector<Entry> nodes_;    // NodeId-indexed
  std::vector<Entry> classes_;  // canonical-ClassId-indexed
};

}  // namespace spores
