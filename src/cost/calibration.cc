#include "src/cost/calibration.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace spores {

CostCategory CategoryForOpName(std::string_view op) {
  // Contractions: the runtime's matrix products and the RA join they lower
  // from — the cost model's min-sparsity * union-size charges.
  if (op == "mmul" || op == "join") return CostCategory::kContract;
  // Reductions: aggregates and their LA spellings.
  if (op == "agg" || op == "rowSums" || op == "colSums" || op == "sum" ||
      op == "wsloss") {
    return CostCategory::kReduce;
  }
  // Everything else — elementwise arithmetic, unary maps, union — matches
  // NodeCost's dense-union default and the union charge.
  return CostCategory::kElemwise;
}

const char* CostCategoryName(CostCategory c) {
  switch (c) {
    case CostCategory::kContract: return "contract";
    case CostCategory::kElemwise: return "elemwise";
    case CostCategory::kReduce: return "reduce";
  }
  return "unknown";
}

int32_t ShapeBucket(double cells) {
  if (!(cells > 1.0)) return 0;
  return static_cast<int32_t>(std::floor(std::log2(cells)));
}

int32_t SparsityBucket(double density) {
  if (!(density > 0.0)) return -9;
  if (density >= 1.0) return 0;
  int32_t b = static_cast<int32_t>(std::floor(std::log10(density)));
  return std::max<int32_t>(-9, std::min<int32_t>(0, b));
}

CalibrationTable::CalibrationTable(CalibrationConfig config)
    : config_(config) {}

bool CalibrationTable::RepublishLocked(const AggKey& key) {
  if (baseline_unit_ <= 0.0) return false;
  const bool category_wide = key.shape_bucket == kCategoryWideBucket;
  double weighted_unit = 0.0;
  double weight = 0.0;
  uint64_t samples = 0;
  for (const auto& [ck, cell] : cells_) {
    if (static_cast<uint8_t>(CategoryForOpName(ck.op)) != key.category) {
      continue;
    }
    if (!category_wide && (ck.shape_bucket != key.shape_bucket ||
                           ck.sparsity_bucket != key.sparsity_bucket)) {
      continue;
    }
    double w = static_cast<double>(cell.samples);
    weighted_unit += w * cell.unit_seconds;
    weight += w;
    samples += cell.samples;
  }
  if (samples < config_.min_samples || weight <= 0.0) return false;
  double candidate = (weighted_unit / weight) / baseline_unit_;
  candidate = std::max(config_.min_multiplier,
                       std::min(config_.max_multiplier, candidate));
  auto it = published_.find(key);
  double current = it == published_.end() ? 1.0 : it->second;
  // Dead band: republish only when the candidate moved by more than the
  // configured fraction of the current published value.
  if (std::fabs(candidate - current) <= config_.dead_band * current) {
    return false;
  }
  published_[key] = candidate;
  return true;
}

bool CalibrationTable::Record(const std::vector<CalibrationSample>& samples) {
  if (samples.empty()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  std::set<AggKey> touched;
  for (const CalibrationSample& s : samples) {
    if (s.seconds < 0.0 || s.rows < 0 || s.cols < 0) continue;
    const double cells =
        std::max<double>(1.0, static_cast<double>(s.rows) *
                                  static_cast<double>(s.cols));
    const double observed =
        s.out_nnz >= 0 ? std::max<double>(1.0, static_cast<double>(s.out_nnz))
                       : cells;
    const double unit = s.seconds / observed;
    const double density = s.out_nnz >= 0 ? observed / cells : 1.0;
    CellKey key{s.op, ShapeBucket(cells), SparsityBucket(density)};
    Cell& cell = cells_[key];
    if (cell.samples == 0) {
      cell.unit_seconds = unit;
      cell.density = density;
    } else {
      cell.unit_seconds += config_.ewma_alpha * (unit - cell.unit_seconds);
      cell.density += config_.ewma_alpha * (density - cell.density);
    }
    ++cell.samples;
    if (baseline_samples_ == 0) {
      baseline_unit_ = unit;
    } else {
      baseline_unit_ += config_.ewma_alpha * (unit - baseline_unit_);
    }
    ++baseline_samples_;
    uint8_t cat = static_cast<uint8_t>(CategoryForOpName(s.op));
    touched.insert(AggKey{cat, key.shape_bucket, key.sparsity_bucket});
    touched.insert(AggKey{cat, kCategoryWideBucket, 0});
  }
  bool bumped = false;
  for (const AggKey& key : touched) bumped |= RepublishLocked(key);
  if (bumped) version_.fetch_add(1, std::memory_order_release);
  return bumped;
}

double CalibrationTable::ObservedCostUnits(
    const std::vector<CalibrationSample>& samples) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (baseline_samples_ < config_.min_samples || baseline_unit_ <= 0.0) {
    return -1.0;
  }
  double total = 0.0;
  for (const CalibrationSample& s : samples) {
    if (s.seconds > 0.0) total += s.seconds;
  }
  return total / baseline_unit_;
}

double CalibrationTable::Multiplier(CostCategory category, double dense_cells,
                                    double density) const {
  if (version_.load(std::memory_order_acquire) == 0) return 1.0;
  std::lock_guard<std::mutex> lock(mu_);
  AggKey key{static_cast<uint8_t>(category), ShapeBucket(dense_cells),
             SparsityBucket(density)};
  auto it = published_.find(key);
  if (it != published_.end()) return it->second;
  auto wide = published_.find(
      AggKey{static_cast<uint8_t>(category), kCategoryWideBucket, 0});
  if (wide != published_.end()) return wide->second;
  return 1.0;
}

size_t CalibrationTable::cell_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

uint64_t CalibrationTable::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return baseline_samples_;
}

CalibrationImage CalibrationTable::Export() const {
  std::lock_guard<std::mutex> lock(mu_);
  CalibrationImage image;
  image.version = version_.load(std::memory_order_acquire);
  image.baseline_samples = baseline_samples_;
  image.baseline_unit_seconds = baseline_unit_;
  image.cells.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    CalibrationCellImage c;
    c.op = key.op;
    c.shape_bucket = key.shape_bucket;
    c.sparsity_bucket = key.sparsity_bucket;
    c.samples = cell.samples;
    c.unit_seconds = cell.unit_seconds;
    c.density = cell.density;
    image.cells.push_back(std::move(c));
  }
  image.published.reserve(published_.size());
  for (const auto& [key, multiplier] : published_) {
    CalibrationPublishedImage p;
    p.category = key.category;
    p.shape_bucket = key.shape_bucket;
    p.sparsity_bucket = key.sparsity_bucket;
    p.multiplier = multiplier;
    image.published.push_back(p);
  }
  return image;
}

void CalibrationTable::Restore(const CalibrationImage& image) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.clear();
  published_.clear();
  for (const CalibrationCellImage& c : image.cells) {
    Cell cell;
    cell.samples = c.samples;
    cell.unit_seconds = c.unit_seconds;
    cell.density = c.density;
    cells_[CellKey{c.op, c.shape_bucket, c.sparsity_bucket}] = cell;
  }
  for (const CalibrationPublishedImage& p : image.published) {
    if (p.category > static_cast<uint8_t>(CostCategory::kReduce)) continue;
    published_[AggKey{p.category, p.shape_bucket, p.sparsity_bucket}] =
        p.multiplier;
  }
  baseline_unit_ = image.baseline_unit_seconds;
  baseline_samples_ = image.baseline_samples;
  version_.store(image.version, std::memory_order_release);
}

}  // namespace spores
