#include "src/canon/isomorphism.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace spores {

namespace {

bool NearlyEqual(double a, double b) {
  double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) <= 1e-9 * scale;
}

// Multiset equality of expression lists under structural equality.
bool MultisetEquals(std::vector<ExprPtr> a, std::vector<ExprPtr> b) {
  if (a.size() != b.size()) return false;
  for (const ExprPtr& x : a) {
    bool found = false;
    for (auto it = b.begin(); it != b.end(); ++it) {
      if (ExprEquals(x, *it)) {
        b.erase(it);
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool MonomialIsomorphic(const Monomial& a, const Monomial& b) {
  if (a.bound.size() != b.bound.size()) return false;
  if (a.atoms.size() != b.atoms.size()) return false;
  if (a.Free() != b.Free()) return false;
  if (a.bound.empty()) return MultisetEquals(a.atoms, b.atoms);

  // Try every bijection a.bound -> b.bound (bound sets are small).
  std::vector<Symbol> perm = b.bound;
  std::sort(perm.begin(), perm.end());
  do {
    std::unordered_map<Symbol, Symbol> renaming;
    for (size_t i = 0; i < a.bound.size(); ++i) {
      renaming.emplace(a.bound[i], perm[i]);
    }
    std::vector<ExprPtr> renamed;
    renamed.reserve(a.atoms.size());
    for (const ExprPtr& atom : a.atoms) {
      renamed.push_back(RenameAttrs(atom, renaming));
    }
    if (MultisetEquals(renamed, b.atoms)) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

bool PolytermIsomorphic(const Polyterm& a, const Polyterm& b) {
  if (!NearlyEqual(a.constant, b.constant)) return false;
  if (a.monomials.size() != b.monomials.size()) return false;
  std::vector<bool> used(b.monomials.size(), false);
  for (const Monomial& m : a.monomials) {
    bool matched = false;
    for (size_t j = 0; j < b.monomials.size(); ++j) {
      if (used[j]) continue;
      if (NearlyEqual(m.coeff, b.monomials[j].coeff) &&
          MonomialIsomorphic(m, b.monomials[j])) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

namespace {

// Curries n-ary AC expressions into nested binary form matching
// EGraph::AddExpr's shape.
ExprPtr Curry(const ExprPtr& e) {
  std::vector<ExprPtr> children;
  children.reserve(e->children.size());
  for (const ExprPtr& c : e->children) children.push_back(Curry(c));
  if (IsAcOp(e->op) && children.size() > 2) {
    ExprPtr acc = children[0];
    for (size_t i = 1; i < children.size(); ++i) {
      acc = Expr::Make(e->op, Symbol(), 0, {}, {acc, children[i]});
    }
    return acc;
  }
  return Expr::Make(e->op, e->sym, e->value, e->attrs, std::move(children));
}

// Attributes bound by any kAgg in the tree (candidates for renaming).
void CollectBound(const ExprPtr& e, std::vector<Symbol>* out) {
  if (e->op == Op::kAgg) {
    for (Symbol a : e->attrs) out->push_back(a);
  }
  for (const ExprPtr& c : e->children) CollectBound(c, out);
}

// Backtracking matcher: expression vs e-class, where attributes bound in the
// expression may be renamed by a bijection onto e-graph attributes. Uses a
// binding trail so failed branches roll back bindings made by successful
// sub-matches.
class AlphaMatcher {
 public:
  AlphaMatcher(const EGraph& egraph, std::vector<Symbol> bound)
      : egraph_(egraph), bound_(std::move(bound)) {
    std::sort(bound_.begin(), bound_.end());
    bound_.erase(std::unique(bound_.begin(), bound_.end()), bound_.end());
  }

  bool Match(const ExprPtr& expr, ClassId id) {
    return MatchExpr(expr, egraph_.Find(id));
  }

 private:
  bool IsBound(Symbol a) const {
    return std::binary_search(bound_.begin(), bound_.end(), a);
  }

  size_t Checkpoint() const { return trail_.size(); }

  void Rollback(size_t checkpoint) {
    while (trail_.size() > checkpoint) {
      auto [f, t] = trail_.back();
      trail_.pop_back();
      fwd_.erase(f);
      rev_.erase(t);
    }
  }

  // Free attrs must match exactly; bound attrs extend the bijection.
  bool MapAttr(Symbol from, Symbol to) {
    if (!IsBound(from)) return from == to;
    auto f = fwd_.find(from);
    if (f != fwd_.end()) return f->second == to;
    if (rev_.count(to)) return false;
    fwd_.emplace(from, to);
    rev_.emplace(to, from);
    trail_.emplace_back(from, to);
    return true;
  }

  bool MatchChildren(const ExprPtr& expr, const ENode& node) {
    for (size_t i = 0; i < expr->children.size(); ++i) {
      if (!MatchExpr(expr->children[i], node.children[i])) return false;
    }
    return true;
  }

  bool MatchExpr(const ExprPtr& expr, ClassId id) {
    id = egraph_.Find(id);
    const EClass& cls = egraph_.GetClass(id);
    for (NodeId nid : cls.nodes) {
      const ENode& node = egraph_.NodeAt(nid);
      if (node.op != expr->op || node.sym != expr->sym ||
          node.value != expr->value ||
          node.children.size() != expr->children.size() ||
          node.attrs.size() != expr->attrs.size()) {
        continue;
      }
      size_t cp = Checkpoint();
      if (expr->op == Op::kAgg && !expr->attrs.empty()) {
        // Unordered attribute sets: try each permutation of node.attrs.
        // Bindings for this binder's attributes are scoped to its subtree:
        // they are rolled back on exit even on success, because alpha
        // renaming is per-binder, not global (the graph may reuse the same
        // attribute names under sibling binders).
        std::vector<Symbol> perm = node.attrs;
        std::sort(perm.begin(), perm.end());
        bool matched = false;
        do {
          size_t inner = Checkpoint();
          bool ok = true;
          for (size_t i = 0; i < expr->attrs.size(); ++i) {
            if (!MapAttr(expr->attrs[i], perm[i])) {
              ok = false;
              break;
            }
          }
          if (ok && MatchChildren(expr, node)) {
            matched = true;
          }
          Rollback(inner);  // close the binder scope either way
          if (matched) break;
        } while (std::next_permutation(perm.begin(), perm.end()));
        if (matched) return true;
        Rollback(cp);
        continue;
      }
      // Ordered attribute lists (bind/unbind) or none.
      bool ok = true;
      for (size_t i = 0; i < expr->attrs.size(); ++i) {
        if (!MapAttr(expr->attrs[i], node.attrs[i])) {
          ok = false;
          break;
        }
      }
      if (ok) {
        size_t args = Checkpoint();
        if (MatchChildren(expr, node)) return true;
        Rollback(args);
        // AC operands are semantically unordered, and the hash-canonical
        // construction order of an alpha-variant (different attribute
        // names, different hashes) can differ from the graph's — try the
        // swapped order before giving up on this node.
        if (IsAcOp(expr->op) && node.children.size() == 2 &&
            MatchExpr(expr->children[0], node.children[1]) &&
            MatchExpr(expr->children[1], node.children[0])) {
          return true;
        }
      }
      Rollback(cp);
    }
    return false;
  }

  const EGraph& egraph_;
  std::vector<Symbol> bound_;
  std::unordered_map<Symbol, Symbol> fwd_;
  std::unordered_map<Symbol, Symbol> rev_;
  std::vector<std::pair<Symbol, Symbol>> trail_;
};

}  // namespace

bool AlphaRepresents(const EGraph& egraph, ClassId id, const ExprPtr& expr) {
  ExprPtr curried = Curry(expr);
  std::vector<Symbol> bound;
  CollectBound(curried, &bound);
  AlphaMatcher matcher(egraph, std::move(bound));
  return matcher.Match(curried, id);
}

}  // namespace spores
