// Canonical (normal) form for RA expressions (Definition 2.1 / A.5): a
// polyterm — a sum of monomials, each a constant coefficient times an
// aggregation over a product of atoms. Canonical forms underpin the
// completeness argument (Theorem 2.3): two LA expressions are equivalent iff
// their RA canonical forms are isomorphic.
#pragma once

#include <string>
#include <vector>

#include "src/ir/expr.h"
#include "src/rules/ra_analysis.h"

namespace spores {

/// Free attributes (schema) of an RA expression tree.
std::vector<Symbol> FreeAttrs(const ExprPtr& ra);

/// Rewrites attribute names throughout an RA tree (bind/agg payloads).
/// Attributes absent from `renaming` are left unchanged.
ExprPtr RenameAttrs(const ExprPtr& ra,
                    const std::unordered_map<Symbol, Symbol>& renaming);

/// One monomial: coeff * Sum_{bound} (atom_1 * ... * atom_m). Atoms are RA
/// leaves (kBind) or uninterpreted operators whose children are themselves
/// canonicalized; repeated atoms encode powers.
struct Monomial {
  double coeff = 1.0;
  std::vector<Symbol> bound;    ///< aggregated attributes, sorted
  std::vector<ExprPtr> atoms;   ///< sorted by structural hash

  /// Free attributes: union of atom schemas minus `bound`.
  std::vector<Symbol> Free() const;
  void Normalize();  ///< sort bound + atoms
};

/// Canonical polyterm: sum of non-isomorphic monomials plus a constant.
struct Polyterm {
  std::vector<Monomial> monomials;
  double constant = 0.0;
};

/// Canonicalizes an RA expression (Lemma 2.1: every RPlan has an equivalent
/// normal form reachable via R_EQ). `dims` resolves Sum over non-free
/// attributes (rule 5) and supplies fresh-rename targets.
StatusOr<Polyterm> CanonicalizeRa(const ExprPtr& ra, DimEnv& dims);

/// Renders a polyterm back as an RA expression (n-ary join/union form).
ExprPtr PolytermToExpr(const Polyterm& p);

/// A cheap renaming-invariant summary of a polyterm's structure (constant,
/// sorted coefficients, atom/bound counts). Two isomorphic polyterms always
/// share a signature; the converse does not hold, so the signature is a
/// hash-bucket key and candidates still need PolytermIsomorphic.
std::string PolytermSignature(const Polyterm& p);

/// Semantic equivalence check for LA expressions via Theorem 2.3: translate
/// both to RA with shared output attributes, canonicalize, and compare up to
/// isomorphism.
StatusOr<bool> EquivalentLa(const ExprPtr& e1, const ExprPtr& e2,
                            const Catalog& catalog);

}  // namespace spores
