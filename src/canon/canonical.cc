#include "src/canon/canonical.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/canon/isomorphism.h"
#include "src/rules/rules_lr.h"

namespace spores {

std::vector<Symbol> FreeAttrs(const ExprPtr& ra) {
  switch (ra->op) {
    case Op::kBind: {
      std::vector<Symbol> s = ra->attrs;
      std::sort(s.begin(), s.end());
      return s;
    }
    case Op::kConst:
    case Op::kVar:
      return {};
    case Op::kAgg:
      return AttrMinus(FreeAttrs(ra->children[0]), ra->attrs);
    default: {
      std::vector<Symbol> s;
      for (const ExprPtr& c : ra->children) s = AttrUnion(s, FreeAttrs(c));
      return s;
    }
  }
}

ExprPtr RenameAttrs(const ExprPtr& ra,
                    const std::unordered_map<Symbol, Symbol>& renaming) {
  auto rename_list = [&](const std::vector<Symbol>& attrs) {
    std::vector<Symbol> out;
    out.reserve(attrs.size());
    for (Symbol a : attrs) {
      auto it = renaming.find(a);
      out.push_back(it == renaming.end() ? a : it->second);
    }
    return out;
  };
  std::vector<ExprPtr> children;
  children.reserve(ra->children.size());
  bool changed = false;
  for (const ExprPtr& c : ra->children) {
    ExprPtr r = RenameAttrs(c, renaming);
    changed |= (r != c);
    children.push_back(std::move(r));
  }
  std::vector<Symbol> attrs = rename_list(ra->attrs);
  if (!changed && attrs == ra->attrs) return ra;
  if (ra->op == Op::kAgg) {
    std::sort(attrs.begin(), attrs.end());
  }
  return Expr::Make(ra->op, ra->sym, ra->value, std::move(attrs),
                    std::move(children));
}

std::vector<Symbol> Monomial::Free() const {
  std::vector<Symbol> s;
  for (const ExprPtr& a : atoms) s = AttrUnion(s, FreeAttrs(a));
  return AttrMinus(s, bound);
}

void Monomial::Normalize() {
  std::sort(bound.begin(), bound.end());
  std::stable_sort(atoms.begin(), atoms.end(),
                   [](const ExprPtr& a, const ExprPtr& b) {
                     uint64_t ha = a->Hash(), hb = b->Hash();
                     if (ha != hb) return ha < hb;
                     return false;
                   });
}

namespace {

// Combines isomorphic monomials by summing coefficients, and drops zeros.
void CombineMonomials(Polyterm& p) {
  std::vector<Monomial> out;
  for (Monomial& m : p.monomials) {
    if (m.coeff == 0.0) continue;
    if (m.atoms.empty()) {
      // Pure constant: Sum_bound coeff already folded by caller.
      p.constant += m.coeff;
      continue;
    }
    bool merged = false;
    for (Monomial& o : out) {
      if (o.bound.size() == m.bound.size() &&
          o.atoms.size() == m.atoms.size() && MonomialIsomorphic(o, m)) {
        o.coeff += m.coeff;
        merged = true;
        break;
      }
    }
    if (!merged) out.push_back(std::move(m));
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const Monomial& m) { return m.coeff == 0.0; }),
            out.end());
  p.monomials = std::move(out);
}

// Renames bound attributes of `m` that clash with `used`, drawing rename
// targets with matching dimensions. The targets are deterministic — derived
// from the clashing attribute plus a per-canonicalization counter, NOT
// globally fresh — so canonicalizing the same term twice (or on two serving
// threads) yields byte-identical polyterms; nested occurrences of these
// names sit below the top-level bound set, where isomorphism checks compare
// structurally and a nondeterministic name would break cache/router key
// stability. Derived names cannot collide: translation names are a$-
// prefixed, the source name is folded in (its dimension is a pure function
// of it), and the counter separates repeated renames of one attribute.
void AvoidClashes(Monomial& m, const std::vector<Symbol>& used, DimEnv& dims,
                  size_t* rename_counter) {
  std::unordered_map<Symbol, Symbol> renaming;
  for (Symbol b : m.bound) {
    if (AttrContains(used, b)) {
      Symbol fresh = Symbol::Intern("r$" + b.str() + "#" +
                                    std::to_string((*rename_counter)++));
      if (dims.Has(b)) dims.Set(fresh, dims.DimOf(b));
      renaming.emplace(b, fresh);
    }
  }
  if (renaming.empty()) return;
  for (Symbol& b : m.bound) {
    auto it = renaming.find(b);
    if (it != renaming.end()) b = it->second;
  }
  for (ExprPtr& a : m.atoms) a = RenameAttrs(a, renaming);
  m.Normalize();
}

// All attributes (free and bound) mentioned in a monomial.
std::vector<Symbol> AllAttrs(const Monomial& m) {
  std::vector<Symbol> s = m.Free();
  return AttrUnion(s, m.bound);
}

class Canonicalizer {
 public:
  explicit Canonicalizer(DimEnv& dims) : dims_(dims) {}

  StatusOr<Polyterm> Run(const ExprPtr& ra) {
    SPORES_ASSIGN_OR_RETURN(Polyterm p, Canon(ra));
    CombineMonomials(p);
    for (Monomial& m : p.monomials) m.Normalize();
    return p;
  }

 private:
  StatusOr<Polyterm> Canon(const ExprPtr& ra) {
    Polyterm p;
    switch (ra->op) {
      case Op::kConst:
        p.constant = ra->value;
        return p;
      case Op::kBind: {
        Monomial m;
        m.atoms.push_back(ra);
        p.monomials.push_back(std::move(m));
        return p;
      }
      case Op::kUnion: {
        for (const ExprPtr& c : ra->children) {
          SPORES_ASSIGN_OR_RETURN(Polyterm q, Canon(c));
          p.constant += q.constant;
          for (Monomial& m : q.monomials) {
            p.monomials.push_back(std::move(m));
          }
        }
        CombineMonomials(p);
        return p;
      }
      case Op::kJoin: {
        SPORES_ASSIGN_OR_RETURN(Polyterm acc, Canon(ra->children[0]));
        for (size_t i = 1; i < ra->children.size(); ++i) {
          SPORES_ASSIGN_OR_RETURN(Polyterm rhs, Canon(ra->children[i]));
          acc = Multiply(acc, rhs);
        }
        return acc;
      }
      case Op::kAgg: {
        SPORES_ASSIGN_OR_RETURN(Polyterm q, Canon(ra->children[0]));
        // Sum distributes over +; per monomial, attributes in the monomial
        // become bound, the rest multiply the coefficient by their dims
        // (rule 5).
        Polyterm out;
        double const_mult = 1.0;
        for (Symbol a : ra->attrs) const_mult *= DimOfChecked(a);
        out.constant = q.constant * const_mult;
        for (Monomial& m : q.monomials) {
          std::vector<Symbol> frees = m.Free();
          double mult = 1.0;
          std::vector<Symbol> newly_bound;
          for (Symbol a : ra->attrs) {
            if (AttrContains(frees, a)) {
              newly_bound.push_back(a);
            } else {
              mult *= DimOfChecked(a);
            }
          }
          m.coeff *= mult;
          m.bound = AttrUnion(m.bound, newly_bound);
          out.monomials.push_back(std::move(m));
        }
        CombineMonomials(out);
        return out;
      }
      // Uninterpreted operators become atoms with canonicalized children.
      // sprop is canonicalized by its definition so fused and unfused forms
      // share a normal form.
      case Op::kSProp: {
        const ExprPtr& p = ra->children[0];
        return Canon(Expr::Join(
            {p, Expr::Union({Expr::Const(1.0),
                             Expr::Join({Expr::Const(-1.0), p})})}));
      }
      case Op::kElemDiv:
      case Op::kPow:
      case Op::kUnary: {
        std::vector<ExprPtr> children;
        children.reserve(ra->children.size());
        for (const ExprPtr& c : ra->children) {
          SPORES_ASSIGN_OR_RETURN(Polyterm q, Canon(c));
          children.push_back(PolytermToExpr(q));
        }
        Monomial m;
        m.atoms.push_back(Expr::Make(ra->op, ra->sym, ra->value, ra->attrs,
                                     std::move(children)));
        Polyterm out;
        out.monomials.push_back(std::move(m));
        return out;
      }
      default:
        return Status::Unsupported(std::string("CanonicalizeRa: op ") +
                                   std::string(OpName(ra->op)));
    }
  }

  double DimOfChecked(Symbol a) {
    return dims_.Has(a) ? static_cast<double>(dims_.DimOf(a)) : 1.0;
  }

  // (sum_i m_i) * (sum_j n_j) = sum_{ij} m_i * n_j, renaming bound clashes.
  Polyterm Multiply(const Polyterm& a, const Polyterm& b) {
    Polyterm out;
    out.constant = a.constant * b.constant;
    // constant x monomial cross terms
    for (const Monomial& m : a.monomials) {
      if (b.constant != 0.0) {
        Monomial c = m;
        c.coeff *= b.constant;
        out.monomials.push_back(std::move(c));
      }
    }
    for (const Monomial& n : b.monomials) {
      if (a.constant != 0.0) {
        Monomial c = n;
        c.coeff *= a.constant;
        out.monomials.push_back(std::move(c));
      }
    }
    for (const Monomial& m : a.monomials) {
      for (const Monomial& n : b.monomials) {
        Monomial rhs = n;
        AvoidClashes(rhs, AllAttrs(m), dims_, &rename_counter_);
        Monomial prod;
        prod.coeff = m.coeff * rhs.coeff;
        prod.bound = AttrUnion(m.bound, rhs.bound);
        prod.atoms = m.atoms;
        prod.atoms.insert(prod.atoms.end(), rhs.atoms.begin(),
                          rhs.atoms.end());
        prod.Normalize();
        out.monomials.push_back(std::move(prod));
      }
    }
    CombineMonomials(out);
    return out;
  }

  DimEnv& dims_;
  /// Clash-rename sequence number; per-canonicalization so renames are a
  /// deterministic function of the input term (see AvoidClashes).
  size_t rename_counter_ = 0;
};

}  // namespace

StatusOr<Polyterm> CanonicalizeRa(const ExprPtr& ra, DimEnv& dims) {
  Canonicalizer canon(dims);
  return canon.Run(ra);
}

ExprPtr PolytermToExpr(const Polyterm& p) {
  std::vector<ExprPtr> terms;
  for (const Monomial& m : p.monomials) {
    std::vector<ExprPtr> factors;
    if (m.coeff != 1.0) factors.push_back(Expr::Const(m.coeff));
    ExprPtr body;
    if (m.atoms.empty()) {
      body = Expr::Const(1.0);
    } else if (m.atoms.size() == 1) {
      body = m.atoms[0];
    } else {
      body = Expr::Join(m.atoms);
    }
    if (!m.bound.empty()) body = Expr::Agg(m.bound, body);
    factors.push_back(body);
    terms.push_back(factors.size() == 1 ? factors[0]
                                        : Expr::Join(std::move(factors)));
  }
  if (p.constant != 0.0 || terms.empty()) {
    terms.push_back(Expr::Const(p.constant));
  }
  return terms.size() == 1 ? terms[0] : Expr::Union(std::move(terms));
}

std::string PolytermSignature(const Polyterm& p) {
  // Per monomial: (coeff, #bound, #atoms) — invariant under attribute
  // renaming and monomial reordering once sorted.
  std::vector<std::string> parts;
  parts.reserve(p.monomials.size());
  for (const Monomial& m : p.monomials) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g/%zu/%zu", m.coeff, m.bound.size(),
                  m.atoms.size());
    parts.emplace_back(buf);
  }
  std::sort(parts.begin(), parts.end());
  char head[32];
  std::snprintf(head, sizeof(head), "%.17g", p.constant);
  std::string sig = head;
  for (const std::string& s : parts) {
    sig += '|';
    sig += s;
  }
  return sig;
}

StatusOr<bool> EquivalentLa(const ExprPtr& e1, const ExprPtr& e2,
                            const Catalog& catalog) {
  SPORES_ASSIGN_OR_RETURN(Shape s1, InferShape(e1, catalog));
  SPORES_ASSIGN_OR_RETURN(Shape s2, InferShape(e2, catalog));
  if (!(s1 == s2)) return false;
  auto dims = std::make_shared<DimEnv>();
  SPORES_ASSIGN_OR_RETURN(RaProgram p1, TranslateLaToRa(e1, catalog, dims));
  SPORES_ASSIGN_OR_RETURN(
      RaProgram p2,
      TranslateLaToRa(e2, catalog, dims, p1.out_row, p1.out_col));
  SPORES_ASSIGN_OR_RETURN(Polyterm c1, CanonicalizeRa(p1.ra, *dims));
  SPORES_ASSIGN_OR_RETURN(Polyterm c2, CanonicalizeRa(p2.ra, *dims));
  return PolytermIsomorphic(c1, c2);
}

}  // namespace spores
