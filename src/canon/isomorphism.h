// Term and polyterm isomorphism (Definitions A.3/A.4/A.7): structural
// equality up to a bijective renaming of bound attributes. Also provides
// AlphaRepresents, the e-graph membership check modulo bound-attribute
// renaming used by the Fig 14 rewrite-derivation experiment.
#pragma once

#include "src/canon/canonical.h"
#include "src/egraph/egraph.h"

namespace spores {

/// True if two monomials are isomorphic: equal coefficients aside (the
/// caller compares coefficients), equal free attributes, and a bijection on
/// bound attributes mapping one atom multiset onto the other.
bool MonomialIsomorphic(const Monomial& a, const Monomial& b);

/// True if two polyterms are isomorphic (Definition A.7): equal constants
/// and a pairing of monomials with equal coefficients and isomorphic bodies.
bool PolytermIsomorphic(const Polyterm& a, const Polyterm& b);

/// True if some alpha-renaming of `expr`'s bound attributes is represented
/// inside e-class `id`. Free attributes must match exactly.
bool AlphaRepresents(const EGraph& egraph, ClassId id, const ExprPtr& expr);

}  // namespace spores
