// A small 0-1 integer program tailored to e-graph extraction (Fig 11).
// Variables are boolean with non-negative objective coefficients; the
// constraint forms are exactly the ones the encoding needs:
//   * fixed assignments            (the root class must be selected)
//   * implications x -> y          (F: an operator selects its children)
//   * covers x -> OR(y_1..y_k)     (G: a class selects one of its members)
//   * forbids NOT AND(x_1..x_k)    (lazy cycle-elimination cuts)
// This module replaces the paper's use of Gurobi (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spores {

using VarId = int32_t;

/// The model container. Build with AddVar/constraints, then hand to the
/// solver.
class IlpModel {
 public:
  /// Adds a boolean variable with objective coefficient `cost` (>= 0).
  VarId AddVar(double cost, std::string name = "");

  /// Forces `var` to `value` in every solution.
  void Fix(VarId var, bool value);

  /// x = 1 implies y = 1.
  void AddImplication(VarId x, VarId y);

  /// trigger = 1 implies at least one of `options` is 1.
  void AddCover(VarId trigger, std::vector<VarId> options);

  /// Not all of `vars` may be 1 simultaneously.
  void AddForbid(std::vector<VarId> vars);

  size_t NumVars() const { return costs_.size(); }
  double Cost(VarId v) const { return costs_[static_cast<size_t>(v)]; }
  const std::string& Name(VarId v) const {
    return names_[static_cast<size_t>(v)];
  }

  struct Cover {
    VarId trigger;
    std::vector<VarId> options;
  };

  const std::vector<std::pair<VarId, bool>>& fixes() const { return fixes_; }
  const std::vector<std::pair<VarId, VarId>>& implications() const {
    return implications_;
  }
  const std::vector<Cover>& covers() const { return covers_; }
  const std::vector<std::vector<VarId>>& forbids() const { return forbids_; }

 private:
  std::vector<double> costs_;
  std::vector<std::string> names_;
  std::vector<std::pair<VarId, bool>> fixes_;
  std::vector<std::pair<VarId, VarId>> implications_;
  std::vector<Cover> covers_;
  std::vector<std::vector<VarId>> forbids_;
};

}  // namespace spores
