// Exact branch-and-bound solver for the 0-1 programs built by IlpModel.
// DFS with unit propagation over implications/covers/forbids, objective
// pruning against the incumbent, and a configurable node/time budget with a
// best-effort (possibly suboptimal) answer on budget exhaustion.
#pragma once

#include <vector>

#include "src/solver/ilp_model.h"
#include "src/util/cancellation.h"

namespace spores {

struct SolverConfig {
  double timeout_seconds = 5.0;
  uint64_t max_search_nodes = 5'000'000;
  /// External cancellation, polled with the node/time budget at every search
  /// node; treated as budget exhaustion (best incumbent so far is returned,
  /// never marked proven-optimal). Inert by default.
  CancelToken cancel;
  /// Known feasible objective (e.g. from a greedy warm start); the search
  /// prunes any branch reaching this cost. infinity = no warm start.
  double initial_upper_bound = 0.0;
  bool has_initial_upper_bound = false;
};

struct IlpResult {
  bool feasible = false;
  bool proven_optimal = false;
  double objective = 0.0;
  std::vector<bool> assignment;
  uint64_t search_nodes = 0;
  double seconds = 0.0;
};

/// Solves min sum(cost_i * x_i) subject to the model's constraints.
IlpResult SolveIlp(const IlpModel& model, SolverConfig config = {});

}  // namespace spores
