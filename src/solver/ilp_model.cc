#include "src/solver/ilp_model.h"

#include "src/util/check.h"

namespace spores {

VarId IlpModel::AddVar(double cost, std::string name) {
  SPORES_CHECK_GE(cost, 0.0);
  VarId id = static_cast<VarId>(costs_.size());
  costs_.push_back(cost);
  names_.push_back(std::move(name));
  return id;
}

void IlpModel::Fix(VarId var, bool value) { fixes_.emplace_back(var, value); }

void IlpModel::AddImplication(VarId x, VarId y) {
  implications_.emplace_back(x, y);
}

void IlpModel::AddCover(VarId trigger, std::vector<VarId> options) {
  covers_.push_back(Cover{trigger, std::move(options)});
}

void IlpModel::AddForbid(std::vector<VarId> vars) {
  SPORES_CHECK(!vars.empty());
  forbids_.push_back(std::move(vars));
}

}  // namespace spores
