#include "src/solver/bb_solver.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"
#include "src/util/timer.h"

namespace spores {

namespace {

constexpr int8_t kUnknown = -1;

// Indexed view of the model for fast propagation.
struct SolverState {
  const IlpModel& model;
  SolverConfig config;
  Timer timer;

  // var -> implications where var is the antecedent.
  std::vector<std::vector<VarId>> implies_out;
  // var -> implications where var is the consequent (for 0-propagation:
  // y = 0 forces x = 0 when x -> y).
  std::vector<std::vector<VarId>> implies_in;
  // var -> covers it triggers; var -> covers it appears in as an option.
  std::vector<std::vector<size_t>> trigger_covers;
  std::vector<std::vector<size_t>> option_covers;
  // var -> forbid constraints containing it.
  std::vector<std::vector<size_t>> var_forbids;

  std::vector<int8_t> value;
  std::vector<VarId> trail;
  double current_cost = 0.0;

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int8_t> best_assignment;
  bool found = false;
  uint64_t nodes = 0;
  bool budget_exhausted = false;

  explicit SolverState(const IlpModel& m, SolverConfig cfg)
      : model(m), config(cfg) {
    if (cfg.has_initial_upper_bound) {
      // Strictly-better pruning: allow equaling the warm start by adding a
      // hair of slack, since the warm start itself may not be revisited.
      best_cost = cfg.initial_upper_bound * (1.0 + 1e-12) + 1e-9;
    }
    size_t n = m.NumVars();
    implies_out.resize(n);
    implies_in.resize(n);
    trigger_covers.resize(n);
    option_covers.resize(n);
    var_forbids.resize(n);
    value.assign(n, kUnknown);
    for (auto& [x, y] : m.implications()) {
      implies_out[static_cast<size_t>(x)].push_back(y);
      implies_in[static_cast<size_t>(y)].push_back(x);
    }
    for (size_t i = 0; i < m.covers().size(); ++i) {
      const IlpModel::Cover& c = m.covers()[i];
      trigger_covers[static_cast<size_t>(c.trigger)].push_back(i);
      for (VarId o : c.options) {
        option_covers[static_cast<size_t>(o)].push_back(i);
      }
    }
    for (size_t i = 0; i < m.forbids().size(); ++i) {
      for (VarId v : m.forbids()[i]) {
        var_forbids[static_cast<size_t>(v)].push_back(i);
      }
    }
  }

  bool OutOfBudget() {
    if (nodes > config.max_search_nodes ||
        timer.Seconds() > config.timeout_seconds ||
        config.cancel.cancelled()) {
      budget_exhausted = true;
      return true;
    }
    return false;
  }

  // Assigns var = val, pushing consequences; returns false on conflict.
  bool Assign(VarId var, bool val) {
    size_t v = static_cast<size_t>(var);
    if (value[v] != kUnknown) return value[v] == static_cast<int8_t>(val);
    value[v] = static_cast<int8_t>(val);
    trail.push_back(var);
    if (val) current_cost += model.Cost(var);
    if (current_cost >= best_cost) return false;  // objective prune

    if (val) {
      // x=1: children implications fire; forbid sets may become unit.
      for (VarId y : implies_out[v]) {
        if (!Assign(y, true)) return false;
      }
      for (size_t fi : var_forbids[v]) {
        const std::vector<VarId>& f = model.forbids()[fi];
        VarId unassigned = -1;
        int unknowns = 0;
        bool all_ones = true;
        for (VarId w : f) {
          int8_t val_w = value[static_cast<size_t>(w)];
          if (val_w == 0) { all_ones = false; break; }
          if (val_w == kUnknown) {
            ++unknowns;
            unassigned = w;
            if (unknowns > 1) break;
          }
        }
        if (!all_ones || unknowns > 1) continue;
        if (unknowns == 0) return false;  // all 1: violated
        if (!Assign(unassigned, false)) return false;
      }
      // Covers where v is an option become satisfied (nothing to do).
      // Covers triggered by v are checked lazily at branching.
    } else {
      // x=0: any implication y -> x forces y = 0.
      for (VarId y : implies_in[v]) {
        if (!Assign(y, false)) return false;
      }
      // Covers where v was an option may become unit/violated.
      for (size_t ci : option_covers[v]) {
        const IlpModel::Cover& c = model.covers()[ci];
        int8_t tval = value[static_cast<size_t>(c.trigger)];
        if (tval == 0) continue;
        VarId unassigned = -1;
        int unknowns = 0;
        bool satisfied = false;
        for (VarId o : c.options) {
          int8_t oval = value[static_cast<size_t>(o)];
          if (oval == 1) { satisfied = true; break; }
          if (oval == kUnknown) {
            ++unknowns;
            unassigned = o;
            if (unknowns > 1) break;
          }
        }
        if (satisfied || unknowns > 1) continue;
        if (unknowns == 1) {
          if (tval == 1) {
            if (!Assign(unassigned, true)) return false;
          }
          continue;
        }
        // No options left.
        if (tval == 1) return false;
        if (!Assign(c.trigger, false)) return false;
      }
    }
    return true;
  }

  void UndoTo(size_t mark) {
    while (trail.size() > mark) {
      VarId var = trail.back();
      trail.pop_back();
      size_t v = static_cast<size_t>(var);
      if (value[v] == 1) current_cost -= model.Cost(var);
      value[v] = kUnknown;
    }
  }

  // Finds an open cover: trigger=1 but no option selected yet. Returns the
  // cheapest undecided option to branch on, or -1 if all covers closed.
  VarId PickBranchVar() {
    VarId best_var = -1;
    double best_var_cost = std::numeric_limits<double>::infinity();
    for (const IlpModel::Cover& c : model.covers()) {
      if (value[static_cast<size_t>(c.trigger)] != 1) continue;
      bool satisfied = false;
      for (VarId o : c.options) {
        if (value[static_cast<size_t>(o)] == 1) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (VarId o : c.options) {
        if (value[static_cast<size_t>(o)] == kUnknown &&
            model.Cost(o) < best_var_cost) {
          best_var_cost = model.Cost(o);
          best_var = o;
        }
      }
      if (best_var != -1) return best_var;  // first open cover
      // Open cover with no undecided options and no selected option is a
      // conflict; propagation should have caught it, but be safe.
      return -2;
    }
    return -1;
  }

  void Record() {
    if (current_cost < best_cost) {
      best_cost = current_cost;
      best_assignment = value;
      found = true;
    }
  }

  void Search() {
    ++nodes;
    if (OutOfBudget()) return;
    VarId branch = PickBranchVar();
    if (branch == -2) return;  // conflict
    if (branch == -1) {
      Record();  // all triggered covers satisfied; undecided default to 0
      return;
    }
    // Branch: try selecting the cheap option first (tends to reach good
    // incumbents quickly), then excluding it.
    size_t mark = trail.size();
    if (Assign(branch, true)) Search();
    UndoTo(mark);
    if (OutOfBudget()) return;
    if (Assign(branch, false)) Search();
    UndoTo(mark);
  }
};

}  // namespace

IlpResult SolveIlp(const IlpModel& model, SolverConfig config) {
  SolverState state(model, config);
  IlpResult result;

  bool root_ok = true;
  for (auto& [var, val] : model.fixes()) {
    if (!state.Assign(var, val)) {
      root_ok = false;
      break;
    }
  }
  if (root_ok) state.Search();

  result.search_nodes = state.nodes;
  result.seconds = state.timer.Seconds();
  result.feasible = state.found;
  result.proven_optimal = state.found && !state.budget_exhausted;
  if (state.found) {
    result.objective = state.best_cost;
    result.assignment.resize(model.NumVars());
    for (size_t i = 0; i < model.NumVars(); ++i) {
      result.assignment[i] = state.best_assignment[i] == 1;
    }
  }
  return result;
}

}  // namespace spores
