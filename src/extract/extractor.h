// Extraction: choosing, from a saturated e-graph, the cheapest expression
// equivalent to the input (Sec 3.1 "Extracting the Optimal Plan").
//
// Two implementations:
//  * GreedyExtract — bottom-up, picks the cheapest operator per class; fast
//    but blind to shared common subexpressions (the Fig 10 pitfall).
//  * IlpExtract    — the Fig 11 ILP encoding solved exactly by the in-tree
//    branch-and-bound solver; charges each shared operator once, with lazy
//    cycle-elimination cuts (the published encoding admits cyclic picks).
//
// Both honor the LA-expressibility restriction (Sec 3.2): classes whose
// schema has more than two attributes may only be entered through kJoin
// nodes (they are legal only as fused join interiors under an aggregate).
#pragma once

#include <optional>

#include "src/cost/cost_model.h"
#include "src/egraph/egraph.h"
#include "src/util/cancellation.h"

namespace spores {

struct ExtractionResult {
  ExprPtr expr;        ///< extracted term (shared subterms share nodes)
  double cost = 0.0;   ///< model cost of the selected operator set
  bool optimal = false;///< true when the ILP proved optimality
  double seconds = 0.0;
};

/// Greedy bottom-up extraction (tree cost; shared subexpressions counted
/// once per use). `memo` (optional) caches per-node costs across the
/// fixpoint passes and across extractions of the same graph — a session
/// passes its shared-graph memo so unchanged classes are never re-costed;
/// when null a call-local memo still collapses the fixpoint's rescans.
StatusOr<ExtractionResult> GreedyExtract(const EGraph& egraph, ClassId root,
                                         const CostModel& cost,
                                         CostMemo* memo = nullptr);

struct IlpExtractConfig {
  /// Total wall budget across all solve rounds (cycle cuts re-solve). On
  /// exhaustion the greedy warm-start plan is returned, marked non-optimal.
  double timeout_seconds = 2.0;
  size_t max_cycle_cuts = 64;
  /// External cancellation, forwarded into every branch-and-bound solve and
  /// checked between cycle-cut rounds; treated like budget exhaustion (the
  /// greedy warm-start plan is returned, marked non-optimal).
  CancelToken cancel;
};

/// ILP-based extraction (DAG cost; shared operators charged once). `memo`
/// as in GreedyExtract (also shared with the internal greedy warm start).
StatusOr<ExtractionResult> IlpExtract(const EGraph& egraph, ClassId root,
                                      const CostModel& cost,
                                      IlpExtractConfig config = {},
                                      CostMemo* memo = nullptr);

}  // namespace spores
