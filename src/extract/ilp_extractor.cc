#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/extract/extractor.h"
#include "src/solver/bb_solver.h"
#include "src/util/timer.h"

namespace spores {

namespace {

bool Selectable(const EGraph& egraph, ClassId cls, const ENode& node) {
  if (egraph.Data(cls).schema.size() <= 2) return true;
  return node.op == Op::kJoin;
}

struct Encoding {
  IlpModel model;
  /// Flat per-class-slot table: the class's ILP variable (-1 off-scope).
  std::vector<VarId> class_var;
  /// Per-VarId: the (class, arena node) an operator variable selects;
  /// {kInvalidClassId, kInvalidNodeId} for class variables.
  std::vector<std::pair<ClassId, NodeId>> var_node;
};

// Builds the Fig 11 encoding: minimize sum(B_op * C_op) subject to
// B_root, F(op) = op -> children classes, G(c) = class -> OR(members).
// Scoped to the classes reachable from `root` — a session's long-lived
// graph also holds other queries' classes, which must not inflate the
// model.
Encoding BuildEncoding(const EGraph& egraph, ClassId root,
                       const CostModel& cost, CostMemo* memo) {
  Encoding enc;
  std::vector<ClassId> classes = egraph.ReachableClasses(root);
  enc.class_var.assign(egraph.NumClassSlots(), -1);
  auto note_var = [&enc](VarId v, ClassId c, NodeId n) {
    if (static_cast<size_t>(v) >= enc.var_node.size()) {
      enc.var_node.resize(static_cast<size_t>(v) + 1,
                          {kInvalidClassId, kInvalidNodeId});
    }
    enc.var_node[static_cast<size_t>(v)] = {c, n};
  };
  for (ClassId c : classes) {
    VarId v = enc.model.AddVar(0.0, "class" + std::to_string(c));
    enc.class_var[c] = v;
    note_var(v, kInvalidClassId, kInvalidNodeId);
  }
  for (ClassId c : classes) {
    std::vector<VarId> members;
    for (NodeId nid : egraph.GetClass(c).nodes) {
      const ENode& n = egraph.NodeAt(nid);
      if (!Selectable(egraph, c, n)) continue;
      VarId v = enc.model.AddVar(memo->NodeCost(cost, egraph, nid),
                                 std::string(OpName(n.op)));
      note_var(v, c, nid);
      for (ClassId child : n.children) {
        enc.model.AddImplication(v, enc.class_var[egraph.Find(child)]);
      }
      members.push_back(v);
    }
    enc.model.AddCover(enc.class_var[c], std::move(members));
  }
  enc.model.Fix(enc.class_var[egraph.Find(root)], true);
  return enc;
}

// Attempts to build a term from the selected operators. Returns nullopt and
// fills `cycle_vars` when the selection is cyclic (triggering a lazy cut).
std::optional<ExprPtr> TryBuild(const EGraph& egraph, const Encoding& enc,
                                const std::vector<bool>& assignment,
                                ClassId root, std::vector<VarId>* cycle_vars) {
  // Selected nodes per class, in solver variable order.
  std::unordered_map<ClassId, std::vector<VarId>> selected;
  for (size_t v = 0; v < enc.var_node.size(); ++v) {
    const auto& [cls, nid] = enc.var_node[v];
    if (nid == kInvalidNodeId) continue;
    if (v < assignment.size() && assignment[v]) {
      selected[cls].push_back(static_cast<VarId>(v));
    }
  }
  std::unordered_map<ClassId, ExprPtr> memo;
  std::unordered_set<ClassId> in_progress;
  std::vector<VarId> path;
  std::vector<ClassId> path_classes;

  std::function<ExprPtr(ClassId)> build = [&](ClassId id) -> ExprPtr {
    ClassId c = egraph.Find(id);
    auto it = memo.find(c);
    if (it != memo.end()) return it->second;
    if (in_progress.count(c)) {
      // Cycle: cut only the operators on the cyclic suffix of the path
      // (tighter cuts converge much faster than whole-path cuts).
      if (cycle_vars->empty()) {
        size_t start = 0;
        for (size_t i = 0; i < path_classes.size(); ++i) {
          if (path_classes[i] == c) {
            start = i;
            break;
          }
        }
        cycle_vars->assign(path.begin() + static_cast<ptrdiff_t>(start),
                           path.end());
      }
      return nullptr;
    }
    auto sel = selected.find(c);
    if (sel == selected.end() || sel->second.empty()) {
      if (cycle_vars->empty()) *cycle_vars = path;  // uncovered class
      return nullptr;
    }
    in_progress.insert(c);
    ExprPtr result;
    for (VarId v : sel->second) {
      const ENode& n = egraph.NodeAt(enc.var_node[static_cast<size_t>(v)].second);
      path.push_back(v);
      path_classes.push_back(c);
      std::vector<ExprPtr> children;
      children.reserve(n.children.size());
      bool ok = true;
      for (ClassId child : n.children) {
        ExprPtr e = build(child);
        if (!e) {
          ok = false;
          break;
        }
        children.push_back(std::move(e));
      }
      path.pop_back();
      path_classes.pop_back();
      if (ok) {
        result = Expr::Make(n.op, n.sym, n.value, n.attrs,
                            std::move(children));
        break;
      }
    }
    in_progress.erase(c);
    if (result) memo.emplace(c, result);
    return result;
  };

  ExprPtr out = build(root);
  if (!out) return std::nullopt;
  return out;
}

}  // namespace

StatusOr<ExtractionResult> IlpExtract(const EGraph& egraph, ClassId root,
                                      const CostModel& cost,
                                      IlpExtractConfig config,
                                      CostMemo* memo) {
  Timer timer;
  CostMemo local_memo;
  if (!memo) memo = &local_memo;
  Encoding enc = BuildEncoding(egraph, root, cost, memo);
  SolverConfig scfg;
  // config.timeout_seconds is the TOTAL extraction budget; each solve round
  // gets whatever remains.
  scfg.timeout_seconds = config.timeout_seconds;
  scfg.cancel = config.cancel;
  // Warm-start pruning with the greedy solution's cost: greedy tree cost is
  // an upper bound on the optimal DAG cost.
  StatusOr<ExtractionResult> greedy = GreedyExtract(egraph, root, cost, memo);
  if (greedy.ok()) {
    scfg.initial_upper_bound = greedy.value().cost;
    scfg.has_initial_upper_bound = true;
  }

  for (size_t round = 0; round <= config.max_cycle_cuts; ++round) {
    scfg.timeout_seconds = config.timeout_seconds - timer.Seconds();
    if (scfg.timeout_seconds <= 0 || config.cancel.cancelled()) break;
    IlpResult sol = SolveIlp(enc.model, scfg);
    if (!sol.feasible) {
      // Either the solve timed out before finding an incumbent (large
      // models on loaded machines) or the root really is uncoverable. The
      // greedy plan, when it exists, is still a valid answer — prefer it
      // over failing the whole extraction.
      if (greedy.ok()) {
        ExtractionResult result = greedy.value();
        result.optimal = false;
        result.seconds = timer.Seconds();
        return result;
      }
      return Status::NotFound("ILP extraction infeasible");
    }
    std::vector<VarId> cycle;
    std::optional<ExprPtr> term =
        TryBuild(egraph, enc, sol.assignment, egraph.Find(root), &cycle);
    if (term) {
      ExtractionResult result;
      result.expr = *term;
      result.cost = sol.objective;
      result.optimal = sol.proven_optimal;
      result.seconds = timer.Seconds();
      return result;
    }
    if (cycle.empty()) {
      return Status::Internal("ILP extraction: unbuildable acyclic solution");
    }
    // Lazy cut: this exact combination of operators may not all be chosen.
    enc.model.AddForbid(cycle);
  }
  // Cycle cuts did not converge within budget; the greedy plan (acyclic by
  // construction) is still a valid answer — return it, marked non-optimal.
  if (greedy.ok()) {
    ExtractionResult result = greedy.value();
    result.optimal = false;
    result.seconds = timer.Seconds();
    return result;
  }
  return Status::ResourceExhausted("ILP extraction: cycle-cut budget spent");
}

}  // namespace spores
