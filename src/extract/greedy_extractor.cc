#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "src/extract/extractor.h"
#include "src/util/timer.h"

namespace spores {

namespace {

// True if `node` may be selected given the LA-expressibility restriction.
bool Selectable(const EGraph& egraph, ClassId cls, const ENode& node) {
  if (egraph.Data(cls).schema.size() <= 2) return true;
  return node.op == Op::kJoin;
}

ExprPtr BuildShared(const EGraph& egraph, const std::vector<NodeId>& best,
                    std::unordered_map<ClassId, ExprPtr>& memo, ClassId id) {
  ClassId root = egraph.Find(id);
  auto it = memo.find(root);
  if (it != memo.end()) return it->second;
  const ENode& node = egraph.NodeAt(best[root]);
  std::vector<ExprPtr> children;
  children.reserve(node.children.size());
  for (ClassId c : node.children) {
    children.push_back(BuildShared(egraph, best, memo, c));
  }
  ExprPtr e = Expr::Make(node.op, node.sym, node.value, node.attrs,
                         std::move(children));
  memo.emplace(root, e);
  return e;
}

}  // namespace

StatusOr<ExtractionResult> GreedyExtract(const EGraph& egraph, ClassId root,
                                         const CostModel& cost,
                                         CostMemo* memo) {
  Timer timer;
  CostMemo local_memo;
  if (!memo) memo = &local_memo;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best_cost(egraph.NumClassSlots(), kInf);
  std::vector<NodeId> best_node(egraph.NumClassSlots(), kInvalidNodeId);
  // A long-lived session graph holds classes from many queries; scope all
  // work to the classes this query's root can reach.
  std::vector<ClassId> classes = egraph.ReachableClasses(root);

  // Bottom-up fixpoint: tree cost of the cheapest term per class.
  bool changed = true;
  while (changed) {
    changed = false;
    for (ClassId c : classes) {
      double current = best_cost[c];
      for (NodeId nid : egraph.GetClass(c).nodes) {
        const ENode& n = egraph.NodeAt(nid);
        if (!Selectable(egraph, c, n)) continue;
        double total = memo->NodeCost(cost, egraph, nid);
        bool ok = true;
        for (ClassId child : n.children) {
          double s = best_cost[egraph.Find(child)];
          if (s == kInf) {
            ok = false;
            break;
          }
          total += s;
        }
        if (ok && total < current) {
          current = total;
          best_cost[c] = total;
          best_node[c] = nid;
          changed = true;
        }
      }
    }
  }

  ClassId r = egraph.Find(root);
  if (best_node[r] == kInvalidNodeId) {
    return Status::NotFound("greedy extraction: no selectable term for root");
  }
  std::unordered_map<ClassId, ExprPtr> built;
  ExtractionResult result;
  result.expr = BuildShared(egraph, best_node, built, r);
  result.cost = best_cost[r];
  result.optimal = false;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace spores
