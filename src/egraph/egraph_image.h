// Process-independent dense image of an e-graph region, for persistence.
//
// An EGraphImage is what CompactInto produces, flattened into plain data:
// classes get dense indices (0..N-1), nodes reference children by dense
// index, and every Symbol payload is spelled out as its string. Symbol
// intern ids are process-local — a restarted process interns in a different
// order — so nothing id-shaped survives in the image. Sorted-symbol
// invariants (kAgg attribute lists are kept sorted by Symbol id) are
// re-established at rebuild time under the new process's intern order.
#pragma once

#include <string>
#include <vector>

#include "src/egraph/egraph.h"
#include "src/ir/ops.h"

namespace spores {

/// Plain-data snapshot of the classes reachable from a set of roots.
struct EGraphImage {
  struct Node {
    Op op = Op::kVar;
    std::string sym;                 ///< kVar / kUnary payload ("" = none)
    double value = 0.0;              ///< kConst payload
    std::vector<std::string> attrs;  ///< kAgg / kBind / kUnbind payload
    std::vector<uint32_t> children;  ///< dense class indices
  };

  /// classes[i] = member nodes of dense class i.
  std::vector<std::vector<Node>> classes;
  /// Dense index of each requested root, position-aligned with the `roots`
  /// argument to ExtractEGraphImage.
  std::vector<uint32_t> roots;

  size_t NumNodes() const {
    size_t n = 0;
    for (const auto& c : classes) n += c.size();
    return n;
  }
};

/// Flattens the classes reachable from `roots` into an image. Read-only on
/// `graph` (callers snapshot live sessions; this must not perturb them).
EGraphImage ExtractEGraphImage(const EGraph& graph,
                               const std::vector<ClassId>& roots);

/// Materializes an image into `out` (freshly constructed, with its own
/// analysis). Mirrors CompactInto's bottom-up fixpoint: a node is addable
/// once all child classes exist, Merge unifies multi-node classes, and nodes
/// representable only through cycles are dropped (saturation re-derives
/// them). Returns the new canonical class of each image root; a root whose
/// class was cyclic-only maps to kInvalidClassId.
std::vector<ClassId> BuildEGraphFromImage(const EGraphImage& image,
                                          EGraph& out);

}  // namespace spores
