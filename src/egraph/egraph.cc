#include "src/egraph/egraph.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/check.h"

namespace spores {

EGraph::EGraph(std::unique_ptr<Analysis> analysis)
    : analysis_(std::move(analysis)) {
  if (!analysis_) analysis_ = std::make_unique<NullAnalysis>();
}

ENode EGraph::Canonicalize(ENode node) const {
  for (ClassId& c : node.children) c = uf_.FindConst(c);
  return node;
}

EClass& EGraph::ClassRef(ClassId id) {
  ClassId root = uf_.Find(id);
  SPORES_CHECK_LT(root, classes_.size());
  return classes_[root];
}

const EClass& EGraph::ClassRefConst(ClassId id) const {
  ClassId root = uf_.FindConst(id);
  SPORES_CHECK_LT(root, classes_.size());
  return classes_[root];
}

const EClass& EGraph::GetClass(ClassId id) const { return ClassRefConst(id); }

ClassId EGraph::Add(ENode node) {
  node = Canonicalize(node);
  auto it = hashcons_.find(node);
  if (it != hashcons_.end()) return uf_.Find(it->second);

  ClassId id = uf_.MakeSet();
  SPORES_CHECK_EQ(id, classes_.size());
  EClass cls;
  cls.id = id;
  cls.nodes.push_back(node);
  cls.data = analysis_->Make(*this, node);
  classes_.push_back(std::move(cls));
  for (ClassId child : node.children) {
    ClassRef(child).parents.emplace_back(node, id);
  }
  hashcons_.emplace(node, id);
  ++version_;
  analysis_->Modify(*this, id);
  return uf_.Find(id);
}

ClassId EGraph::AddExpr(const ExprPtr& expr) {
  std::vector<ClassId> children;
  children.reserve(expr->children.size());
  for (const ExprPtr& c : expr->children) children.push_back(AddExpr(c));

  // Curry n-ary AC expressions into left-nested binary e-nodes.
  if (IsAcOp(expr->op) && children.size() > 2) {
    ClassId acc = children[0];
    for (size_t i = 1; i < children.size(); ++i) {
      ENode node;
      node.op = expr->op;
      node.children = {acc, children[i]};
      acc = Add(std::move(node));
    }
    return acc;
  }
  return Add(ExprToENode(*expr, std::move(children)));
}

ENode EGraph::ExprToENode(const Expr& expr, std::vector<ClassId> children) {
  ENode node;
  node.op = expr.op;
  node.sym = expr.sym;
  node.value = expr.value;
  node.attrs = expr.attrs;
  node.children = std::move(children);
  return node;
}

std::optional<ClassId> EGraph::Lookup(const ENode& node) const {
  ENode canon = Canonicalize(node);
  auto it = hashcons_.find(canon);
  if (it == hashcons_.end()) return std::nullopt;
  return uf_.FindConst(it->second);
}

std::optional<ClassId> EGraph::LookupExpr(const ExprPtr& expr) const {
  std::vector<ClassId> children;
  children.reserve(expr->children.size());
  for (const ExprPtr& c : expr->children) {
    std::optional<ClassId> cid = LookupExpr(c);
    if (!cid) return std::nullopt;
    children.push_back(*cid);
  }
  if (IsAcOp(expr->op) && children.size() > 2) {
    std::optional<ClassId> acc = children[0];
    for (size_t i = 1; i < children.size(); ++i) {
      ENode node;
      node.op = expr->op;
      node.children = {*acc, children[i]};
      acc = Lookup(node);
      if (!acc) return std::nullopt;
    }
    return acc;
  }
  return Lookup(ExprToENode(*expr, std::move(children)));
}

bool EGraph::Represents(ClassId id, const ExprPtr& expr) const {
  std::optional<ClassId> found = LookupExpr(expr);
  return found && uf_.FindConst(*found) == uf_.FindConst(id);
}

bool EGraph::Merge(ClassId a, ClassId b) {
  a = uf_.Find(a);
  b = uf_.Find(b);
  if (a == b) return false;
  // Keep the class with more parents to move less data.
  if (classes_[a].parents.size() < classes_[b].parents.size()) std::swap(a, b);
  uf_.Union(a, b);
  EClass& keep = classes_[a];
  EClass& gone = classes_[b];
  keep.nodes.insert(keep.nodes.end(),
                    std::make_move_iterator(gone.nodes.begin()),
                    std::make_move_iterator(gone.nodes.end()));
  keep.parents.insert(keep.parents.end(),
                      std::make_move_iterator(gone.parents.begin()),
                      std::make_move_iterator(gone.parents.end()));
  gone.nodes.clear();
  gone.nodes.shrink_to_fit();
  gone.parents.clear();
  gone.parents.shrink_to_fit();

  bool data_changed = analysis_->Merge(keep.data, gone.data);
  pending_repair_.push_back(a);
  if (data_changed) pending_analysis_.push_back(a);
  ++version_;
  analysis_->Modify(*this, a);
  return true;
}

void EGraph::RepairClass(ClassId id) {
  ClassId root = uf_.Find(id);
  // Take the parent list; we will rebuild a deduplicated version.
  std::vector<std::pair<ENode, ClassId>> parents =
      std::move(classes_[root].parents);
  classes_[root].parents.clear();

  // Pass 1: erase stale hashcons entries keyed by the recorded node forms.
  for (auto& [node, pclass] : parents) {
    hashcons_.erase(node);
  }
  // Pass 2: re-insert canonicalized; congruent duplicates trigger merges.
  std::unordered_map<ENode, ClassId, ENodeHash> seen;
  for (auto& [node, pclass] : parents) {
    ENode canon = Canonicalize(node);
    ClassId pcanon = uf_.Find(pclass);
    auto it = hashcons_.find(canon);
    if (it != hashcons_.end()) {
      ClassId other = uf_.Find(it->second);
      if (other != pcanon) {
        Merge(other, pcanon);
        pcanon = uf_.Find(pcanon);
      }
    } else {
      hashcons_.emplace(canon, pcanon);
    }
    auto sit = seen.find(canon);
    if (sit == seen.end()) {
      seen.emplace(canon, pcanon);
    } else {
      sit->second = uf_.Find(sit->second);
    }
  }
  ClassId final_root = uf_.Find(root);
  auto& plist = classes_[final_root].parents;
  for (auto& [node, pclass] : seen) {
    plist.emplace_back(node, uf_.Find(pclass));
  }

  // Canonicalize + dedup the class's own node list.
  EClass& cls = classes_[final_root];
  std::unordered_set<uint64_t> node_hashes;
  std::vector<ENode> fresh;
  fresh.reserve(cls.nodes.size());
  for (ENode& n : cls.nodes) {
    ENode canon = Canonicalize(std::move(n));
    uint64_t h = canon.Hash();
    bool dup = false;
    if (node_hashes.count(h)) {
      for (const ENode& f : fresh) {
        if (f == canon) {
          dup = true;
          break;
        }
      }
    }
    if (!dup) {
      node_hashes.insert(h);
      fresh.push_back(std::move(canon));
    }
  }
  cls.nodes = std::move(fresh);
}

void EGraph::PropagateAnalysis(ClassId id) {
  ClassId root = uf_.Find(id);
  // Child data changed: recompute each parent node's Make and merge into the
  // parent class's data; propagate further if it changed.
  std::vector<std::pair<ENode, ClassId>> parents = classes_[root].parents;
  for (auto& [node, pclass] : parents) {
    ClassId proot = uf_.Find(pclass);
    ClassData made = analysis_->Make(*this, Canonicalize(node));
    if (analysis_->Merge(classes_[proot].data, made)) {
      pending_analysis_.push_back(proot);
      analysis_->Modify(*this, proot);
    }
  }
}

void EGraph::Rebuild() {
  while (!pending_repair_.empty() || !pending_analysis_.empty()) {
    while (!pending_repair_.empty()) {
      // Dedup the batch by canonical id to avoid redundant repairs.
      std::vector<ClassId> batch;
      batch.swap(pending_repair_);
      std::unordered_set<ClassId> done;
      for (ClassId id : batch) {
        ClassId root = uf_.Find(id);
        if (done.insert(root).second) RepairClass(root);
      }
    }
    while (!pending_analysis_.empty()) {
      std::vector<ClassId> batch;
      batch.swap(pending_analysis_);
      std::unordered_set<ClassId> done;
      for (ClassId id : batch) {
        ClassId root = uf_.Find(id);
        if (done.insert(root).second) PropagateAnalysis(root);
      }
      if (!pending_repair_.empty()) break;  // repair before more analysis
    }
  }
}

std::vector<ClassId> EGraph::CanonicalClasses() const {
  std::vector<ClassId> out;
  for (ClassId i = 0; i < classes_.size(); ++i) {
    if (uf_.FindConst(i) == i) out.push_back(i);
  }
  return out;
}

size_t EGraph::NumClasses() const {
  size_t n = 0;
  for (ClassId i = 0; i < classes_.size(); ++i) {
    if (uf_.FindConst(i) == i) ++n;
  }
  return n;
}

size_t EGraph::NumNodes() const {
  size_t n = 0;
  for (ClassId i = 0; i < classes_.size(); ++i) {
    if (uf_.FindConst(i) == i) n += classes_[i].nodes.size();
  }
  return n;
}

}  // namespace spores
