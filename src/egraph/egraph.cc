#include "src/egraph/egraph.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "src/util/check.h"

namespace spores {

namespace {

// Appends `nid` to the op-index bucket for `op`, creating the bucket on
// first sight. Append order is what keeps each bucket a subsequence of the
// class's node list (the matcher-order contract).
void AppendToOpIndex(std::vector<std::pair<Op, std::vector<NodeId>>>& index,
                     Op op, NodeId nid) {
  for (auto& [o, list] : index) {
    if (o == op) {
      list.push_back(nid);
      return;
    }
  }
  index.push_back({op, {nid}});
}

}  // namespace

EGraph::EGraph(std::unique_ptr<Analysis> analysis)
    : analysis_(std::move(analysis)) {
  if (!analysis_) analysis_ = std::make_unique<NullAnalysis>();
}

ENode EGraph::Canonicalize(ENode node) const {
  for (ClassId& c : node.children) c = uf_.FindConst(c);
  return node;
}

EClass& EGraph::ClassRef(ClassId id) {
  ClassId root = uf_.Find(id);
  SPORES_CHECK_LT(root, classes_.size());
  return classes_[root];
}

const EClass& EGraph::ClassRefConst(ClassId id) const {
  ClassId root = uf_.FindConst(id);
  SPORES_CHECK_LT(root, classes_.size());
  return classes_[root];
}

const EClass& EGraph::GetClass(ClassId id) const { return ClassRefConst(id); }

void EGraph::MarkAnalysisDirty(ClassId root) {
  if (classes_[root].analysis_dirty) return;
  classes_[root].analysis_dirty = true;
  analysis_worklist_.push_back(root);
}

ClassId EGraph::Add(ENode node) {
  node = Canonicalize(node);
  auto it = hashcons_.find(node);
  if (it != hashcons_.end()) return uf_.Find(node_class_[it->second]);

  NodeId nid = static_cast<NodeId>(nodes_.size());
  ClassId id = uf_.MakeSet();
  SPORES_CHECK_EQ(id, classes_.size());
  ++version_;
  EClass cls;
  cls.id = id;
  cls.nodes.push_back(nid);
  cls.op_index.push_back({node.op, {nid}});
  cls.version = version_;
  cls.data = analysis_->Make(*this, node);
  classes_.push_back(std::move(cls));
  node_class_.push_back(id);
  for (size_t i = 0; i < node.children.size(); ++i) {
    ClassId child = node.children[i];
    bool dup = false;
    for (size_t j = 0; j < i && !dup; ++j) dup = node.children[j] == child;
    if (!dup) ClassRef(child).parents.push_back(nid);
  }
  hashcons_.emplace(node, nid);
  nodes_.push_back(std::move(node));
  analysis_->Modify(*this, id);
  return uf_.Find(id);
}

ClassId EGraph::AddExpr(const ExprPtr& expr) {
  std::vector<ClassId> children;
  children.reserve(expr->children.size());
  for (const ExprPtr& c : expr->children) children.push_back(AddExpr(c));

  // Curry n-ary AC expressions into left-nested binary e-nodes.
  if (IsAcOp(expr->op) && children.size() > 2) {
    ClassId acc = children[0];
    for (size_t i = 1; i < children.size(); ++i) {
      ENode node;
      node.op = expr->op;
      node.children = {acc, children[i]};
      acc = Add(std::move(node));
    }
    return acc;
  }
  return Add(ExprToENode(*expr, std::move(children)));
}

ENode EGraph::ExprToENode(const Expr& expr, std::vector<ClassId> children) {
  ENode node;
  node.op = expr.op;
  node.sym = expr.sym;
  node.value = expr.value;
  node.attrs = expr.attrs;
  node.children = std::move(children);
  return node;
}

std::optional<ClassId> EGraph::Lookup(const ENode& node) const {
  ENode canon = Canonicalize(node);
  auto it = hashcons_.find(canon);
  if (it == hashcons_.end()) return std::nullopt;
  return uf_.FindConst(node_class_[it->second]);
}

std::optional<ClassId> EGraph::LookupExpr(const ExprPtr& expr) const {
  std::vector<ClassId> children;
  children.reserve(expr->children.size());
  for (const ExprPtr& c : expr->children) {
    std::optional<ClassId> cid = LookupExpr(c);
    if (!cid) return std::nullopt;
    children.push_back(*cid);
  }
  if (IsAcOp(expr->op) && children.size() > 2) {
    std::optional<ClassId> acc = children[0];
    for (size_t i = 1; i < children.size(); ++i) {
      ENode node;
      node.op = expr->op;
      node.children = {*acc, children[i]};
      acc = Lookup(node);
      if (!acc) return std::nullopt;
    }
    return acc;
  }
  return Lookup(ExprToENode(*expr, std::move(children)));
}

bool EGraph::Represents(ClassId id, const ExprPtr& expr) const {
  std::optional<ClassId> found = LookupExpr(expr);
  return found && uf_.FindConst(*found) == uf_.FindConst(id);
}

bool EGraph::Merge(ClassId a, ClassId b) {
  a = uf_.Find(a);
  b = uf_.Find(b);
  if (a == b) return false;
  // Keep the class with more parents to move less data.
  if (classes_[a].parents.size() < classes_[b].parents.size()) std::swap(a, b);
  uf_.Union(a, b);
  EClass& keep = classes_[a];
  EClass& gone = classes_[b];
  keep.nodes.insert(keep.nodes.end(), gone.nodes.begin(), gone.nodes.end());
  keep.parents.insert(keep.parents.end(), gone.parents.begin(),
                      gone.parents.end());
  // Merge op buckets; appending gone's after keep's preserves the relative
  // order of keep.nodes ++ gone.nodes within each op.
  for (auto& [op, list] : gone.op_index) {
    bool merged = false;
    for (auto& [kop, klist] : keep.op_index) {
      if (kop == op) {
        klist.insert(klist.end(), list.begin(), list.end());
        merged = true;
        break;
      }
    }
    if (!merged) keep.op_index.push_back({op, std::move(list)});
  }
  std::vector<NodeId>().swap(gone.nodes);
  std::vector<NodeId>().swap(gone.parents);
  std::vector<std::pair<Op, std::vector<NodeId>>>().swap(gone.op_index);

  bool data_changed = analysis_->Merge(keep.data, gone.data);
  ++version_;
  keep.version = version_;

  // Dirty-flag bookkeeping: a worklist entry for `gone` redirects to `keep`
  // via Find, so push only when neither side was queued.
  bool was_repair = keep.repair_dirty || gone.repair_dirty;
  gone.repair_dirty = false;
  keep.repair_dirty = true;
  if (!was_repair) repair_worklist_.push_back(a);

  bool was_analysis = keep.analysis_dirty || gone.analysis_dirty;
  gone.analysis_dirty = false;
  if (data_changed || was_analysis) {
    keep.analysis_dirty = true;
    if (!was_analysis) analysis_worklist_.push_back(a);
  }
  analysis_->Modify(*this, a);
  return true;
}

void EGraph::RepairClass(ClassId id) {
  ClassId root = uf_.Find(id);
  // Take the parent list; a deduplicated version is rebuilt below.
  std::vector<NodeId> parents = std::move(classes_[root].parents);
  classes_[root].parents.clear();

  // Pass 1: drop the hashcons entries keyed by each parent's stored form
  // (about to go stale). Entries owned by another node are left alone.
  for (NodeId nid : parents) {
    auto it = hashcons_.find(nodes_[nid]);
    if (it != hashcons_.end() && it->second == nid) hashcons_.erase(it);
  }

  // Pass 2: re-canonicalize each parent node in place and re-insert. A
  // collision with a different node is a congruence: merge the owning
  // classes and keep the incumbent as the hashcons winner; the loser stays
  // in the arena but drops out of the parent index.
  std::vector<NodeId> fresh;
  fresh.reserve(parents.size());
  std::unordered_set<NodeId> seen;
  for (NodeId nid : parents) {
    ENode canon = Canonicalize(nodes_[nid]);
    NodeId winner = nid;
    auto it = hashcons_.find(canon);
    if (it != hashcons_.end() && it->second != nid) {
      winner = it->second;
      ClassId wclass = uf_.Find(node_class_[winner]);
      ClassId pclass = uf_.Find(node_class_[nid]);
      if (wclass != pclass) Merge(wclass, pclass);
    } else if (it == hashcons_.end()) {
      hashcons_.emplace(canon, nid);
    }
    nodes_[nid] = std::move(canon);
    if (seen.insert(winner).second) fresh.push_back(winner);
  }
  ClassId final_root = uf_.Find(root);
  EClass& cls = classes_[final_root];
  // Merges above may have concatenated other parent lists onto final_root;
  // append rather than overwrite (duplicates resolve at its next repair).
  cls.parents.insert(cls.parents.end(), fresh.begin(), fresh.end());

  // Dedup the class's own node list by canonical form. Stored forms are not
  // rewritten here: losers keep their stale children (Find resolves them)
  // and winners were already updated when their children's classes repaired.
  std::vector<NodeId> fresh_nodes;
  fresh_nodes.reserve(cls.nodes.size());
  std::unordered_set<uint64_t> form_hashes;
  std::vector<ENode> forms;
  forms.reserve(cls.nodes.size());
  for (NodeId nid : cls.nodes) {
    ENode canon = Canonicalize(nodes_[nid]);
    uint64_t h = canon.Hash();
    bool dup = false;
    if (form_hashes.count(h)) {
      for (const ENode& f : forms) {
        if (f == canon) {
          dup = true;
          break;
        }
      }
    }
    if (!dup) {
      form_hashes.insert(h);
      forms.push_back(std::move(canon));
      fresh_nodes.push_back(nid);
    }
  }
  cls.nodes = std::move(fresh_nodes);
  // Rebuild the op index from the deduplicated member list (ops are
  // immutable per node, but dedup and congruence merges changed membership).
  cls.op_index.clear();
  for (NodeId nid : cls.nodes) {
    AppendToOpIndex(cls.op_index, nodes_[nid].op, nid);
  }
  cls.version = version_;
}

void EGraph::PropagateAnalysis(ClassId id) {
  ClassId root = uf_.Find(id);
  // Child data changed: recompute each parent node's Make and merge into the
  // parent class's data; propagate further if it changed.
  std::vector<NodeId> parents = classes_[root].parents;
  for (NodeId nid : parents) {
    ClassId proot = uf_.Find(node_class_[nid]);
    ClassData made = analysis_->Make(*this, Canonicalize(nodes_[nid]));
    if (analysis_->Merge(classes_[proot].data, made)) {
      // Refined data counts as a change: rule guards read it, so
      // incremental matchers must revisit the class.
      ++version_;
      classes_[proot].version = version_;
      MarkAnalysisDirty(proot);
      analysis_->Modify(*this, proot);
    }
  }
}

void EGraph::Rebuild() {
  while (!repair_worklist_.empty() || !analysis_worklist_.empty()) {
    while (!repair_worklist_.empty()) {
      ClassId id = repair_worklist_.back();
      repair_worklist_.pop_back();
      ClassId root = uf_.Find(id);
      if (!classes_[root].repair_dirty) continue;
      classes_[root].repair_dirty = false;
      RepairClass(root);
    }
    while (!analysis_worklist_.empty()) {
      ClassId id = analysis_worklist_.back();
      analysis_worklist_.pop_back();
      ClassId root = uf_.Find(id);
      if (!classes_[root].analysis_dirty) continue;
      classes_[root].analysis_dirty = false;
      PropagateAnalysis(root);
      if (!repair_worklist_.empty()) break;  // repair before more analysis
    }
  }
}

std::vector<ClassId> EGraph::CanonicalClasses() const {
  std::vector<ClassId> out;
  for (ClassId i = 0; i < classes_.size(); ++i) {
    if (uf_.FindConst(i) == i) out.push_back(i);
  }
  return out;
}

std::vector<ClassId> EGraph::ReachableClasses(ClassId root) const {
  std::vector<bool> seen(classes_.size(), false);
  std::vector<ClassId> order;
  std::vector<ClassId> stack;
  root = uf_.FindConst(root);
  seen[root] = true;
  stack.push_back(root);
  while (!stack.empty()) {
    ClassId c = stack.back();
    stack.pop_back();
    order.push_back(c);
    for (NodeId nid : classes_[c].nodes) {
      for (ClassId child : nodes_[nid].children) {
        child = uf_.FindConst(child);
        if (!seen[child]) {
          seen[child] = true;
          stack.push_back(child);
        }
      }
    }
  }
  std::sort(order.begin(), order.end());
  return order;
}

size_t EGraph::NumClasses() const {
  size_t n = 0;
  for (ClassId i = 0; i < classes_.size(); ++i) {
    if (uf_.FindConst(i) == i) ++n;
  }
  return n;
}

size_t EGraph::NumNodes() const {
  size_t n = 0;
  for (ClassId i = 0; i < classes_.size(); ++i) {
    if (uf_.FindConst(i) == i) n += classes_[i].nodes.size();
  }
  return n;
}

std::vector<ClassId> EGraph::CompactInto(
    EGraph& out, const std::vector<ClassId>& roots) const {
  // 1. Classes reachable from the live roots.
  std::vector<bool> reach(classes_.size(), false);
  std::vector<ClassId> order;
  std::vector<ClassId> stack;
  for (ClassId r : roots) {
    r = uf_.FindConst(r);
    if (r < classes_.size() && !reach[r]) {
      reach[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    ClassId c = stack.back();
    stack.pop_back();
    order.push_back(c);
    for (NodeId nid : classes_[c].nodes) {
      for (ClassId ch : nodes_[nid].children) {
        ch = uf_.FindConst(ch);
        if (!reach[ch]) {
          reach[ch] = true;
          stack.push_back(ch);
        }
      }
    }
  }

  // 2. Materialize bottom-up to a fixpoint: a node can be re-added once all
  // its child classes exist in `out`. Cyclic-only nodes never qualify and
  // are dropped. The DFS discovery order is roughly parents-first, so walk
  // it in reverse (children-first) — acyclic graphs then converge in one
  // pass; the fixpoint loop remains for cross-class cycles.
  std::reverse(order.begin(), order.end());
  std::vector<ClassId> map(classes_.size(), kInvalidClassId);
  std::vector<bool> done(nodes_.size(), false);
  bool progress = true;
  while (progress) {
    progress = false;
    for (ClassId c : order) {
      for (NodeId nid : classes_[c].nodes) {
        if (done[nid]) continue;
        const ENode& n = nodes_[nid];
        ENode copy;
        copy.op = n.op;
        copy.sym = n.sym;
        copy.value = n.value;
        copy.attrs = n.attrs;
        copy.children.reserve(n.children.size());
        bool ready = true;
        for (ClassId ch : n.children) {
          ClassId m = map[uf_.FindConst(ch)];
          if (m == kInvalidClassId) {
            ready = false;
            break;
          }
          copy.children.push_back(out.Find(m));
        }
        if (!ready) continue;
        ClassId nc = out.Add(std::move(copy));
        if (map[c] == kInvalidClassId) {
          map[c] = nc;
        } else {
          out.Merge(map[c], nc);
        }
        done[nid] = true;
        progress = true;
      }
    }
    out.Rebuild();
  }
  out.Rebuild();

  std::vector<ClassId> new_roots;
  new_roots.reserve(roots.size());
  for (ClassId r : roots) {
    ClassId m = map[uf_.FindConst(r)];
    new_roots.push_back(m == kInvalidClassId ? kInvalidClassId : out.Find(m));
  }
  return new_roots;
}

std::string EGraph::CheckInvariants() const {
  std::ostringstream err;
  auto fail = [&err](const std::string& what) {
    err << what;
    return err.str();
  };

  if (node_class_.size() != nodes_.size()) {
    return fail("node_class_/arena size mismatch");
  }
  if (uf_.Size() != classes_.size()) {
    return fail("union-find/classes size mismatch");
  }

  // Class membership and parent indexes.
  for (ClassId c = 0; c < classes_.size(); ++c) {
    const EClass& cls = classes_[c];
    bool canonical = uf_.FindConst(c) == c;
    if (!canonical) {
      if (!cls.nodes.empty() || !cls.parents.empty() ||
          !cls.op_index.empty()) {
        err << "non-canonical class " << c << " still owns nodes/parents";
        return err.str();
      }
      continue;
    }
    // The op index must partition `nodes` exactly, preserving per-op order.
    {
      std::vector<std::pair<Op, std::vector<NodeId>>> expected;
      for (NodeId nid : cls.nodes) {
        if (nid >= nodes_.size()) continue;  // reported by the member checks
        AppendToOpIndex(expected, nodes_[nid].op, nid);
      }
      size_t indexed = 0;
      for (const auto& [op, list] : cls.op_index) {
        if (list.empty()) {
          err << "class " << c << " has an empty op bucket";
          return err.str();
        }
        indexed += list.size();
        const std::vector<NodeId>* exp = nullptr;
        for (const auto& [eo, elist] : expected) {
          if (eo == op) exp = &elist;
        }
        if (!exp || *exp != list) {
          err << "class " << c << " op bucket for " << OpName(op)
              << " diverges from its node list";
          return err.str();
        }
      }
      if (indexed != cls.nodes.size()) {
        err << "class " << c << " op index covers " << indexed << " of "
            << cls.nodes.size() << " nodes";
        return err.str();
      }
    }
    if (cls.id != c) {
      err << "class " << c << " has id " << cls.id;
      return err.str();
    }
    if (cls.nodes.empty()) {
      err << "canonical class " << c << " has no member nodes";
      return err.str();
    }
    for (NodeId nid : cls.nodes) {
      if (nid >= nodes_.size()) {
        err << "class " << c << " lists out-of-range node " << nid;
        return err.str();
      }
      if (uf_.FindConst(node_class_[nid]) != c) {
        err << "node " << nid << " listed in class " << c
            << " but node_class resolves to " << uf_.FindConst(node_class_[nid]);
        return err.str();
      }
      ENode canon = Canonicalize(nodes_[nid]);
      // Hashcons congruence: every member form must resolve through the
      // hashcons to this class.
      auto it = hashcons_.find(canon);
      if (it == hashcons_.end()) {
        err << "node " << nid << " of class " << c
            << " has no hashcons entry for its canonical form";
        return err.str();
      }
      if (uf_.FindConst(node_class_[it->second]) != c) {
        err << "canonical form of node " << nid << " maps to class "
            << uf_.FindConst(node_class_[it->second]) << ", expected " << c;
        return err.str();
      }
      // Parent completeness: each distinct child class must index a parent
      // node with this node's canonical form.
      for (size_t i = 0; i < canon.children.size(); ++i) {
        ClassId ch = canon.children[i];
        bool repeated = false;
        for (size_t j = 0; j < i && !repeated; ++j) {
          repeated = canon.children[j] == ch;
        }
        if (repeated) continue;
        if (ch >= classes_.size() || uf_.FindConst(ch) != ch) {
          err << "node " << nid << " child class " << ch << " is not canonical";
          return err.str();
        }
        bool found = false;
        for (NodeId p : classes_[ch].parents) {
          if (p == nid || Canonicalize(nodes_[p]) == canon) {
            found = true;
            break;
          }
        }
        if (!found) {
          err << "node " << nid << " missing from parent index of class " << ch;
          return err.str();
        }
      }
    }
    for (NodeId p : cls.parents) {
      if (p >= nodes_.size()) {
        err << "class " << c << " parent index lists out-of-range node " << p;
        return err.str();
      }
    }
  }

  // Hashcons entries with canonical keys must be live: key == stored form of
  // the mapped node, and the owning class lists a node of that form.
  // (Entries keyed by superseded forms are unreachable garbage by design:
  // probes are canonicalized first, and a dead union-find root never becomes
  // a root again.)
  for (const auto& [form, nid] : hashcons_) {
    if (nid >= nodes_.size()) {
      err << "hashcons maps to out-of-range node " << nid;
      return err.str();
    }
    ENode canon_key = Canonicalize(form);
    if (!(canon_key == form)) continue;  // stale, unreachable entry
    if (!(nodes_[nid] == form)) {
      err << "hashcons key for node " << nid << " diverges from stored form";
      return err.str();
    }
    ClassId c = uf_.FindConst(node_class_[nid]);
    bool listed = false;
    for (NodeId member : classes_[c].nodes) {
      if (member == nid || Canonicalize(nodes_[member]) == form) {
        listed = true;
        break;
      }
    }
    if (!listed) {
      err << "hashcons winner " << nid << " not represented in class " << c;
      return err.str();
    }
  }
  return std::string();
}

}  // namespace spores
