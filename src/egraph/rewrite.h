// Rewrite rules: a left-hand pattern, an optional guard over the bindings
// (used for schema side-conditions like "i not in Attr(A)", Sec 3.2), and an
// applier that constructs the right-hand side in the e-graph. Appliers are
// functions rather than templates so rules can compute attribute unions,
// fresh names, and folded constants (the "dynamic" rules of Sec 3.2/3.3).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "src/egraph/matcher.h"

namespace spores {

/// Guard: returns true if the rule may fire on this substitution.
using Guard = std::function<bool(const EGraph&, const Subst&)>;

/// Applier: adds the RHS to the graph, returning the class to merge with the
/// match root, or nullopt to decline this site.
using Applier =
    std::function<std::optional<ClassId>(EGraph&, ClassId root, const Subst&)>;

/// A named rewrite rule.
struct Rewrite {
  std::string name;
  PatternPtr lhs;
  Guard guard;      ///< may be null (always fire)
  Applier applier;
  /// Expansive rules (assoc/comm) are throttled harder when sampling.
  bool expansive = false;
};

/// Builds an applier that instantiates `rhs` as a template: every class
/// variable / attr variable / value variable in `rhs` must be bound by the
/// LHS match.
Applier TemplateApplier(PatternPtr rhs);

/// Instantiates a pattern under a substitution, adding nodes to the graph.
ClassId InstantiatePattern(EGraph& egraph, const Pattern& pattern,
                           const Subst& subst);

/// Convenience constructor for purely structural rules.
Rewrite MakeRewrite(std::string name, PatternPtr lhs, PatternPtr rhs,
                    Guard guard = nullptr, bool expansive = false);

/// Convenience constructor for dynamic rules.
Rewrite MakeDynRewrite(std::string name, PatternPtr lhs, Applier applier,
                       Guard guard = nullptr, bool expansive = false);

/// The rules' LHS patterns, position-aligned with `rules` — the input a
/// CompiledRuleSet is built from. Keeping this in one place guarantees rule
/// indices agree between the trie, the scheduler, and the rule vector.
std::vector<PatternPtr> LhsPatterns(const std::vector<Rewrite>& rules);

}  // namespace spores
