// Pattern language for e-matching. Patterns mirror e-nodes but allow
// variables at three levels:
//   * class variables  (?a)  — bind whole e-classes,
//   * attr variables   (?I)  — bind the attribute-list payload of
//                              Sum/bind/unbind nodes,
//   * value variables        — bind the scalar payload of kConst nodes.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/egraph/enode.h"
#include "src/ir/ops.h"
#include "src/util/symbol.h"

namespace spores {

class Pattern;
using PatternPtr = std::shared_ptr<const Pattern>;

/// A substitution produced by matching: variable name -> binding.
///
/// Storage is flat (vectors of pairs, linear scan): patterns bind at most a
/// handful of variables, so scanning beats hashing and — more importantly —
/// copying a Subst into a Match is three small memcpy-ish vector copies
/// instead of three hash-map deep copies. The compiled matcher goes further
/// and keeps bindings in raw register/slot arrays (see pattern_program.h),
/// materializing a Subst only for matches that survive guards and sampling.
struct Subst {
  std::vector<std::pair<Symbol, ClassId>> classes;
  std::vector<std::pair<Symbol, std::vector<Symbol>>> attrs;
  std::vector<std::pair<Symbol, double>> values;

  /// Checked lookups (SPORES_CHECK on a missing variable).
  ClassId ClassOf(Symbol var) const;
  const std::vector<Symbol>& AttrsOf(Symbol var) const;
  double ValueOf(Symbol var) const;

  /// Unchecked lookups: nullptr when the variable is unbound.
  const ClassId* FindClass(Symbol var) const;
  const std::vector<Symbol>* FindAttrs(Symbol var) const;
  const double* FindValue(Symbol var) const;

  /// Binding mutators for matchers (append; caller keeps vars unique).
  void BindClass(Symbol var, ClassId id) { classes.emplace_back(var, id); }
  void BindAttrs(Symbol var, std::vector<Symbol> a) {
    attrs.emplace_back(var, std::move(a));
  }
  void BindValue(Symbol var, double v) { values.emplace_back(var, v); }
  void UnbindClass(Symbol var);
  void UnbindAttrs(Symbol var);
  void UnbindValue(Symbol var);
};

/// One pattern node.
class Pattern {
 public:
  enum class Kind { kClassVar, kNode };

  Kind kind;

  // kClassVar payload.
  Symbol var;

  // kNode payload: required op plus optional payload constraints.
  Op op = Op::kVar;
  std::optional<Symbol> sym;            ///< require this symbol payload
  std::optional<double> value;          ///< require this constant value
  std::optional<Symbol> value_var;      ///< else bind the constant value
  std::optional<std::vector<Symbol>> attrs;  ///< require these attrs
  std::optional<Symbol> attrs_var;      ///< else bind the attr list
  std::vector<PatternPtr> children;

  /// ?x — matches any e-class, binding it to `name`.
  static PatternPtr V(std::string_view name);

  /// Operator node with child patterns.
  static PatternPtr N(Op op, std::vector<PatternPtr> children);

  /// kVar leaf requiring a specific input name.
  static PatternPtr VarLeaf(std::string_view name);

  /// kConst leaf requiring an exact value.
  static PatternPtr ConstLeaf(double value);

  /// kConst leaf binding its value to `value_var`.
  static PatternPtr ConstBind(std::string_view value_var);

  /// kAgg node binding its attribute list to `attrs_var`.
  static PatternPtr AggBind(std::string_view attrs_var, PatternPtr child);

  /// kAgg node requiring an exact attribute list.
  static PatternPtr AggExact(std::vector<Symbol> attrs, PatternPtr child);

  /// All class-variable names appearing in the pattern.
  std::vector<Symbol> ClassVars() const;
};

}  // namespace spores
