#include "src/egraph/runner.h"

#include <sstream>
#include <unordered_map>

#include "src/util/check.h"
#include "src/util/fault_injection.h"

namespace spores {

std::string RunnerReport::ToString() const {
  std::ostringstream os;
  os << "saturation: ";
  switch (stop_reason) {
    case StopReason::kSaturated: os << "converged"; break;
    case StopReason::kIterationLimit: os << "iteration-limit"; break;
    case StopReason::kNodeLimit: os << "node-limit"; break;
    case StopReason::kTimeout: os << "timeout"; break;
    case StopReason::kStalled: os << "stalled"; break;
    case StopReason::kCancelled: os << "cancelled"; break;
  }
  os << " after " << iterations << " iters, " << applied_matches
     << " matches applied, " << final_nodes << " nodes / " << final_classes
     << " classes, " << seconds << "s";
  if (rules_banned > 0 || backoff_skips > 0) {
    os << " (" << rules_banned << " bans, " << backoff_skips
       << " searches skipped)";
  }
  return os.str();
}

Runner::Runner(EGraph* egraph, std::vector<Rewrite> rules, RunnerConfig config)
    : egraph_(egraph), owned_rules_(std::move(rules)), rules_(&owned_rules_),
      config_(config), rng_(config.seed),
      owned_scheduler_(std::make_unique<RuleScheduler>(owned_rules_.size(),
                                                       config.scheduler)),
      scheduler_(owned_scheduler_.get()),
      owned_compiled_(
          std::make_unique<CompiledRuleSet>(LhsPatterns(owned_rules_))),
      compiled_(owned_compiled_.get()) {}

Runner::Runner(EGraph* egraph, const std::vector<Rewrite>* rules,
               RunnerConfig config, RuleScheduler* scheduler,
               const CompiledRuleSet* compiled)
    : egraph_(egraph), rules_(rules), config_(config), rng_(config.seed),
      scheduler_(scheduler), compiled_(compiled) {
  if (!scheduler_) {
    owned_scheduler_ =
        std::make_unique<RuleScheduler>(rules_->size(), config.scheduler);
    scheduler_ = owned_scheduler_.get();
  }
  SPORES_CHECK_EQ(scheduler_->num_rules(), rules_->size());
  if (!compiled_) {
    owned_compiled_ = std::make_unique<CompiledRuleSet>(LhsPatterns(*rules_));
    compiled_ = owned_compiled_.get();
  }
  SPORES_CHECK_EQ(compiled_->num_rules(), rules_->size());
}

RunnerReport Runner::Run() {
  Timer timer;
  RunnerReport report;
  // One budget predicate for every checkpoint: wall clock or external
  // cancellation. `cancelled` distinguishes the stop reason afterwards;
  // with an inert token this is exactly the old timeout check.
  bool cancelled = false;
  auto out_of_budget = [&]() {
    if (config_.cancel.cancelled()) {
      cancelled = true;
      return true;
    }
    return timer.Seconds() > config_.timeout_seconds;
  };
  const size_t num_rules = rules_->size();
  report.rules.resize(num_rules);
  for (size_t i = 0; i < num_rules; ++i) {
    report.rules[i].name = (*rules_)[i].name;
  }
  egraph_->Rebuild();
  size_t node_limit = config_.max_nodes;
  if (config_.node_limit_is_growth) node_limit += egraph_->NumNodes();
  // Bans are per-run (iteration numbers restart); incremental search floors
  // persist when the scheduler is session-owned.
  scheduler_->BeginRun();

  // Backoff, incremental matching, and sampling may all leave known matches
  // unapplied, so an unchanged iteration is not proof of saturation. When
  // one happens under any restriction we re-run once with every heuristic
  // disabled (full match, no bans, no sampling) before declaring
  // convergence.
  bool verify_pass = false;
  for (size_t iter = 0; iter < config_.max_iterations; ++iter) {
    // Chaos site: a thrown fault here leaves the e-graph mid-churn, which
    // is exactly the state shard supervision must recover from (the
    // session is poisoned and rebuilt); a delay models a stuck iteration
    // the watchdog has to notice.
    fault::Point("saturate");
    report.iterations = iter + 1;
    uint64_t version_before = egraph_->Version();
    bool restricted = false;

    // Candidate match roots: the whole graph, or — when scoped — only the
    // current query's region (recomputed every iteration; applications grow
    // it). kSaturated is then a fixpoint claim about that region.
    std::vector<ClassId> candidates =
        config_.scope_root != kInvalidClassId
            ? egraph_->ReachableClasses(config_.scope_root)
            : egraph_->CanonicalClasses();

    // "Affected" sets per incremental floor: the ancestor closure (through
    // the parent indexes) of every class that changed since the floor. A
    // new match can only root at an affected class — a match whose whole
    // traversal runs through unchanged classes already existed — so
    // filtering to this set is exact, not a heuristic.
    std::unordered_map<uint64_t, std::vector<bool>> affected_cache;
    auto affected_since = [&](uint64_t fl) -> const std::vector<bool>& {
      auto it = affected_cache.find(fl);
      if (it != affected_cache.end()) return it->second;
      std::vector<bool> aff(egraph_->NumClassSlots(), false);
      std::vector<ClassId> queue;
      for (ClassId c : egraph_->CanonicalClasses()) {
        if (egraph_->ClassVersion(c) >= fl) {
          aff[c] = true;
          queue.push_back(c);
        }
      }
      while (!queue.empty()) {
        ClassId c = queue.back();
        queue.pop_back();
        for (NodeId p : egraph_->GetClass(c).parents) {
          ClassId pc = egraph_->NodeClass(p);
          if (!aff[pc]) {
            aff[pc] = true;
            queue.push_back(pc);
          }
        }
      }
      return affected_cache.emplace(fl, std::move(aff)).first->second;
    };

    // Which rules search this iteration (backoff bans), and the incremental
    // floor each one matches above.
    std::vector<char> searching(num_rules, 1);
    std::vector<uint64_t> floors(num_rules, 0);
    for (size_t ri = 0; ri < num_rules; ++ri) {
      const Rewrite& rule = (*rules_)[ri];
      // Expansive rules under the sampling strategy are throttled by the
      // sample cap itself (the paper's design: every rule keeps making
      // steady progress). Banning them as well starves the AC shuffling
      // that other rules' match sites are built from, so backoff only
      // governs them when nothing else does (kDepthFirst).
      bool bannable =
          config_.enable_backoff &&
          !(config_.strategy == SaturationStrategy::kSampling &&
            rule.expansive);
      if (!verify_pass && bannable && !scheduler_->ShouldSearch(ri, iter)) {
        searching[ri] = 0;
        restricted = true;
        ++report.backoff_skips;
        continue;
      }
      if (!verify_pass && config_.incremental_matching) {
        floors[ri] = scheduler_->SearchFloor(ri);
      }
    }

    // The scope floor confines even the verify pass: it is the boundary
    // between this query's delta and a region an earlier budget-bounded
    // run deliberately left mid-churn — re-matching past it would pour
    // this query's budget into the old churn. Incremental rule floors
    // are exact (affected-closure), so within the cone the verify pass
    // still lifts every heuristic restriction (bans, sampling draws).
    uint64_t scope_floor = config_.scope_version_floor;
    if (scope_floor > 0 && !verify_pass) restricted = true;
    const std::vector<bool>* scope_aff =
        scope_floor > 0 ? &affected_since(scope_floor) : nullptr;

    // Phase 1a: read-only matching against the frozen graph, so all rules
    // see the same snapshot (simultaneous application, Sec 3.4). The
    // compiled path makes one pass over the candidate classes, advancing
    // every searching rule through the shared trie at once; per-rule match
    // buffers live in an arena reused across iterations. The legacy path
    // (oracle mode) interprets each rule's pattern separately; both emit
    // identical per-rule match sequences.
    std::vector<std::vector<Match>> legacy_matches;
    bool timed_out = false;
    size_t rules_matched = num_rules;  // legacy: rules finished pre-timeout
    if (!config_.use_legacy_matcher) {
      bank_.Reset(num_rules);
      // One active-rule mask per distinct floor; a class's mask is the union
      // of the groups whose affected set contains it.
      struct FloorGroup {
        const std::vector<bool>* affected;  // null: no floor (all classes)
        RuleMask mask;
      };
      std::vector<uint64_t> group_floors;
      std::vector<FloorGroup> groups;
      for (size_t ri = 0; ri < num_rules; ++ri) {
        if (!searching[ri]) continue;
        size_t gi = 0;
        while (gi < group_floors.size() && group_floors[gi] != floors[ri]) {
          ++gi;
        }
        if (gi == group_floors.size()) {
          group_floors.push_back(floors[ri]);
          groups.push_back(FloorGroup{
              floors[ri] > 0 ? &affected_since(floors[ri]) : nullptr,
              RuleMask(num_rules)});
        }
        groups[gi].mask.Set(ri);
      }
      RuleMask active(num_rules);
      size_t since_clock_check = 0;
      for (ClassId c : candidates) {
        if (scope_aff && !(*scope_aff)[c]) continue;
        // A single expansive class can hold many candidates; keep the
        // compile-budget clock honest without a syscall per class.
        if (++since_clock_check >= 64) {
          since_clock_check = 0;
          if (out_of_budget()) {
            timed_out = true;
            break;
          }
        }
        active.ClearAll();
        bool any = false;
        for (const FloorGroup& g : groups) {
          if (!g.affected || (*g.affected)[c]) {
            active.OrWith(g.mask);
            any = true;
          }
        }
        if (!any) continue;
        compiled_->MatchClass(*egraph_, c, active, &bank_);
      }
      if (timed_out) rules_matched = 0;  // nothing is complete; drop all
    } else {
      legacy_matches.resize(num_rules);
      for (size_t ri = 0; ri < num_rules; ++ri) {
        // A single expansive rule can blow the compile budget from inside
        // one iteration; check the clock between rules.
        if (out_of_budget()) {
          timed_out = true;
          rules_matched = ri;
          break;
        }
        if (!searching[ri]) continue;
        const std::vector<bool>* aff =
            floors[ri] > 0 ? &affected_since(floors[ri]) : nullptr;
        for (ClassId c : candidates) {
          if (aff && !(*aff)[c]) continue;
          if (scope_aff && !(*scope_aff)[c]) continue;
          LegacyMatchInClass(*egraph_, *(*rules_)[ri].lhs, c,
                             &legacy_matches[ri]);
        }
      }
    }

    // Phase 1b: per-rule accounting — ban on budget overflow, guard filter,
    // sampling — then enqueue surviving applications. Substs are only
    // materialized for matches a guard must see or that survived sampling.
    struct PendingApplication {
      size_t rule_index;
      ClassId root;
      Subst subst;
    };
    std::vector<PendingApplication> pending;
    // Floors only advance once this iteration's matches are actually
    // enqueued and applied in full: a rule that sampled matches away (or a
    // phase cut short by a budget) must re-find them next time, exactly
    // like the ban path.
    std::vector<size_t> floor_advances;
    for (size_t ri = 0; ri < rules_matched; ++ri) {
      if (!searching[ri]) continue;
      const Rewrite& rule = (*rules_)[ri];
      const bool from_bank = !config_.use_legacy_matcher;
      const size_t found =
          from_bank ? bank_.rules[ri].size() : legacy_matches[ri].size();
      report.rules[ri].matched += found;
      bool bannable =
          config_.enable_backoff &&
          !(config_.strategy == SaturationStrategy::kSampling &&
            rule.expansive);
      if (!verify_pass && bannable &&
          scheduler_->RecordSearch(ri, iter, found, rule.expansive)) {
        // Banned: the search overflowed its budget. Matches are dropped and
        // the search floor stays put so they are re-found once the ban
        // expires (or by the verify pass).
        ++report.rules[ri].bans;
        ++report.rules_banned;
        restricted = true;
        continue;
      }
      auto root_of = [&](size_t i) {
        return from_bank ? bank_.rules[ri].roots[i] : legacy_matches[ri][i].root;
      };
      auto subst_of = [&](size_t i) {
        return from_bank ? compiled_->MatchSubst(*egraph_, ri, bank_, i)
                         : std::move(legacy_matches[ri][i].subst);
      };
      // Indices still alive after the guard (all of them when unguarded, so
      // no Subst is built for matches sampling will throw away).
      std::vector<size_t> live;
      std::vector<Subst> live_substs;  // parallel to live, guarded rules only
      if (rule.guard) {
        for (size_t i = 0; i < found; ++i) {
          Subst s = subst_of(i);
          if (!rule.guard(*egraph_, s)) continue;
          live.push_back(i);
          live_substs.push_back(std::move(s));
        }
      } else {
        live.resize(found);
        for (size_t i = 0; i < found; ++i) live[i] = i;
      }
      // The verify pass lifts bans and incremental floors but keeps the
      // sampling cap for expansive rules: a full unsampled AC application
      // burst on a large region would blow the node budget in one shot.
      bool sample_rule =
          config_.strategy == SaturationStrategy::kSampling &&
          (!verify_pass || rule.expansive);
      bool dropped = false;
      if (sample_rule) {
        size_t limit = rule.expansive ? config_.expansive_match_limit
                                      : config_.match_limit_per_rule;
        if (live.size() > limit) {
          restricted = true;
          dropped = true;
          std::vector<size_t> keep =
              rng_.SampleWithoutReplacement(live.size(), limit);
          std::vector<size_t> sampled;
          std::vector<Subst> sampled_substs;
          sampled.reserve(limit);
          if (rule.guard) sampled_substs.reserve(limit);
          for (size_t idx : keep) {
            sampled.push_back(live[idx]);
            if (rule.guard) {
              sampled_substs.push_back(std::move(live_substs[idx]));
            }
          }
          live = std::move(sampled);
          live_substs = std::move(sampled_substs);
        }
      }
      if (!dropped) floor_advances.push_back(ri);
      for (size_t k = 0; k < live.size(); ++k) {
        Subst s = rule.guard ? std::move(live_substs[k]) : subst_of(live[k]);
        pending.push_back(
            PendingApplication{ri, root_of(live[k]), std::move(s)});
      }
    }

    // Phase 2: apply.
    size_t applied_since_check = 0;
    bool apply_truncated = false;
    for (PendingApplication& pa : pending) {
      if (timed_out) break;
      std::optional<ClassId> rhs = (*rules_)[pa.rule_index].applier(
          *egraph_, pa.root, pa.subst);
      if (rhs) {
        if (egraph_->Merge(pa.root, *rhs)) {
          ++report.rules[pa.rule_index].applied;
        }
        ++report.applied_matches;
      }
      if (++applied_since_check >= 8) {
        applied_since_check = 0;
        if (egraph_->NumNodes() > node_limit) {
          apply_truncated = true;
          break;
        }
        if (out_of_budget()) timed_out = true;
      }
    }
    egraph_->Rebuild();
    // Commit floors only after a complete apply phase; a truncated one left
    // enqueued matches unapplied, and they must be re-found next run.
    if (!timed_out && !apply_truncated) {
      for (size_t ri : floor_advances) {
        scheduler_->AdvanceSearchFloor(ri, version_before + 1);
      }
    }

    if (timed_out) {
      report.stop_reason =
          cancelled ? StopReason::kCancelled : StopReason::kTimeout;
      break;
    }
    if (egraph_->Version() == version_before) {
      if (!restricted || verify_pass) {
        report.stop_reason = StopReason::kSaturated;
        break;
      }
      // Unchanged but restricted: re-run once unrestricted to verify.
      if (report.verify_passes >= config_.max_verify_passes) {
        report.stop_reason = StopReason::kStalled;
        break;
      }
      verify_pass = true;
      ++report.verify_passes;
      continue;
    }
    verify_pass = false;
    if (egraph_->NumNodes() > node_limit) {
      report.stop_reason = StopReason::kNodeLimit;
      break;
    }
    if (out_of_budget()) {
      report.stop_reason =
          cancelled ? StopReason::kCancelled : StopReason::kTimeout;
      break;
    }
    if (iter + 1 == config_.max_iterations) {
      report.stop_reason = StopReason::kIterationLimit;
    }
  }

  report.final_nodes = egraph_->NumNodes();
  report.final_classes = egraph_->NumClasses();
  report.seconds = timer.Seconds();
  return report;
}

}  // namespace spores
