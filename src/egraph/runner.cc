#include "src/egraph/runner.h"

#include <sstream>
#include <unordered_map>

#include "src/util/check.h"

namespace spores {

std::string RunnerReport::ToString() const {
  std::ostringstream os;
  os << "saturation: ";
  switch (stop_reason) {
    case StopReason::kSaturated: os << "converged"; break;
    case StopReason::kIterationLimit: os << "iteration-limit"; break;
    case StopReason::kNodeLimit: os << "node-limit"; break;
    case StopReason::kTimeout: os << "timeout"; break;
    case StopReason::kStalled: os << "stalled"; break;
  }
  os << " after " << iterations << " iters, " << applied_matches
     << " matches applied, " << final_nodes << " nodes / " << final_classes
     << " classes, " << seconds << "s";
  if (rules_banned > 0 || backoff_skips > 0) {
    os << " (" << rules_banned << " bans, " << backoff_skips
       << " searches skipped)";
  }
  return os.str();
}

Runner::Runner(EGraph* egraph, std::vector<Rewrite> rules, RunnerConfig config)
    : egraph_(egraph), owned_rules_(std::move(rules)), rules_(&owned_rules_),
      config_(config), rng_(config.seed),
      owned_scheduler_(std::make_unique<RuleScheduler>(owned_rules_.size(),
                                                       config.scheduler)),
      scheduler_(owned_scheduler_.get()) {}

Runner::Runner(EGraph* egraph, const std::vector<Rewrite>* rules,
               RunnerConfig config, RuleScheduler* scheduler)
    : egraph_(egraph), rules_(rules), config_(config), rng_(config.seed),
      scheduler_(scheduler) {
  if (!scheduler_) {
    owned_scheduler_ =
        std::make_unique<RuleScheduler>(rules_->size(), config.scheduler);
    scheduler_ = owned_scheduler_.get();
  }
  SPORES_CHECK_EQ(scheduler_->num_rules(), rules_->size());
}

RunnerReport Runner::Run() {
  Timer timer;
  RunnerReport report;
  report.rules.resize(rules_->size());
  for (size_t i = 0; i < rules_->size(); ++i) {
    report.rules[i].name = (*rules_)[i].name;
  }
  egraph_->Rebuild();
  size_t node_limit = config_.max_nodes;
  if (config_.node_limit_is_growth) node_limit += egraph_->NumNodes();
  // Bans are per-run (iteration numbers restart); incremental search floors
  // persist when the scheduler is session-owned.
  scheduler_->BeginRun();

  // Backoff, incremental matching, and sampling may all leave known matches
  // unapplied, so an unchanged iteration is not proof of saturation. When
  // one happens under any restriction we re-run once with every heuristic
  // disabled (full match, no bans, no sampling) before declaring
  // convergence.
  bool verify_pass = false;
  for (size_t iter = 0; iter < config_.max_iterations; ++iter) {
    report.iterations = iter + 1;
    uint64_t version_before = egraph_->Version();
    bool restricted = false;

    // Candidate match roots: the whole graph, or — when scoped — only the
    // current query's region (recomputed every iteration; applications grow
    // it). kSaturated is then a fixpoint claim about that region.
    std::vector<ClassId> candidates =
        config_.scope_root != kInvalidClassId
            ? egraph_->ReachableClasses(config_.scope_root)
            : egraph_->CanonicalClasses();

    // "Affected" sets per incremental floor: the ancestor closure (through
    // the parent indexes) of every class that changed since the floor. A
    // new match can only root at an affected class — a match whose whole
    // traversal runs through unchanged classes already existed — so
    // filtering to this set is exact, not a heuristic.
    std::unordered_map<uint64_t, std::vector<bool>> affected_cache;
    auto affected_since = [&](uint64_t fl) -> const std::vector<bool>& {
      auto it = affected_cache.find(fl);
      if (it != affected_cache.end()) return it->second;
      std::vector<bool> aff(egraph_->NumClassSlots(), false);
      std::vector<ClassId> queue;
      for (ClassId c : egraph_->CanonicalClasses()) {
        if (egraph_->ClassVersion(c) >= fl) {
          aff[c] = true;
          queue.push_back(c);
        }
      }
      while (!queue.empty()) {
        ClassId c = queue.back();
        queue.pop_back();
        for (NodeId p : egraph_->GetClass(c).parents) {
          ClassId pc = egraph_->NodeClass(p);
          if (!aff[pc]) {
            aff[pc] = true;
            queue.push_back(pc);
          }
        }
      }
      return affected_cache.emplace(fl, std::move(aff)).first->second;
    };

    // Phase 1: read-only matching against the frozen graph, so all rules see
    // the same snapshot (simultaneous application, Sec 3.4).
    struct PendingApplication {
      size_t rule_index;
      Match match;
    };
    std::vector<PendingApplication> pending;
    // Floors only advance once this iteration's matches are actually
    // enqueued and applied in full: a rule that sampled matches away (or a
    // phase cut short by a budget) must re-find them next time, exactly
    // like the ban path.
    std::vector<size_t> floor_advances;
    bool timed_out = false;
    for (size_t ri = 0; ri < rules_->size(); ++ri) {
      // A single expansive rule can blow the compile budget from inside one
      // iteration; check the clock between rules, not just between
      // iterations.
      if (timer.Seconds() > config_.timeout_seconds) {
        timed_out = true;
        break;
      }
      const Rewrite& rule = (*rules_)[ri];
      // Expansive rules under the sampling strategy are throttled by the
      // sample cap itself (the paper's design: every rule keeps making
      // steady progress). Banning them as well starves the AC shuffling
      // that other rules' match sites are built from, so backoff only
      // governs them when nothing else does (kDepthFirst).
      bool bannable =
          config_.enable_backoff &&
          !(config_.strategy == SaturationStrategy::kSampling &&
            rule.expansive);
      if (!verify_pass && bannable && !scheduler_->ShouldSearch(ri, iter)) {
        restricted = true;
        ++report.backoff_skips;
        continue;
      }
      uint64_t floor = 0;
      if (!verify_pass && config_.incremental_matching) {
        floor = scheduler_->SearchFloor(ri);
      }
      // The scope floor confines even the verify pass: it is the boundary
      // between this query's delta and a region an earlier budget-bounded
      // run deliberately left mid-churn — re-matching past it would pour
      // this query's budget into the old churn. Incremental rule floors
      // are exact (affected-closure), so within the cone the verify pass
      // still lifts every heuristic restriction (bans, sampling draws).
      uint64_t scope_floor = config_.scope_version_floor;
      if (scope_floor > 0 && !verify_pass) restricted = true;
      const std::vector<bool>* aff =
          floor > 0 ? &affected_since(floor) : nullptr;
      const std::vector<bool>* scope_aff =
          scope_floor > 0 ? &affected_since(scope_floor) : nullptr;
      std::vector<Match> matches;
      for (ClassId c : candidates) {
        if (aff && !(*aff)[c]) continue;
        if (scope_aff && !(*scope_aff)[c]) continue;
        MatchInClass(*egraph_, *rule.lhs, c, &matches);
      }
      report.rules[ri].matched += matches.size();
      if (!verify_pass && bannable &&
          scheduler_->RecordSearch(ri, iter, matches.size(), rule.expansive)) {
        // Banned: the search overflowed its budget. Matches are dropped and
        // the search floor stays put so they are re-found once the ban
        // expires (or by the verify pass).
        ++report.rules[ri].bans;
        ++report.rules_banned;
        restricted = true;
        continue;
      }
      if (rule.guard) {
        std::vector<Match> kept;
        kept.reserve(matches.size());
        for (Match& m : matches) {
          if (rule.guard(*egraph_, m.subst)) kept.push_back(std::move(m));
        }
        matches = std::move(kept);
      }
      // The verify pass lifts bans and incremental floors but keeps the
      // sampling cap for expansive rules: a full unsampled AC application
      // burst on a large region would blow the node budget in one shot.
      bool sample_rule =
          config_.strategy == SaturationStrategy::kSampling &&
          (!verify_pass || rule.expansive);
      bool dropped = false;
      if (sample_rule) {
        size_t limit = rule.expansive ? config_.expansive_match_limit
                                      : config_.match_limit_per_rule;
        if (matches.size() > limit) {
          restricted = true;
          dropped = true;
          std::vector<size_t> keep =
              rng_.SampleWithoutReplacement(matches.size(), limit);
          std::vector<Match> sampled;
          sampled.reserve(limit);
          for (size_t idx : keep) sampled.push_back(std::move(matches[idx]));
          matches = std::move(sampled);
        }
      }
      if (!dropped) floor_advances.push_back(ri);
      for (Match& m : matches) {
        pending.push_back(PendingApplication{ri, std::move(m)});
      }
    }

    // Phase 2: apply.
    size_t applied_since_check = 0;
    bool apply_truncated = false;
    for (PendingApplication& pa : pending) {
      if (timed_out) break;
      std::optional<ClassId> rhs = (*rules_)[pa.rule_index].applier(
          *egraph_, pa.match.root, pa.match.subst);
      if (rhs) {
        if (egraph_->Merge(pa.match.root, *rhs)) {
          ++report.rules[pa.rule_index].applied;
        }
        ++report.applied_matches;
      }
      if (++applied_since_check >= 8) {
        applied_since_check = 0;
        if (egraph_->NumNodes() > node_limit) {
          apply_truncated = true;
          break;
        }
        if (timer.Seconds() > config_.timeout_seconds) timed_out = true;
      }
    }
    egraph_->Rebuild();
    // Commit floors only after a complete apply phase; a truncated one left
    // enqueued matches unapplied, and they must be re-found next run.
    if (!timed_out && !apply_truncated) {
      for (size_t ri : floor_advances) {
        scheduler_->AdvanceSearchFloor(ri, version_before + 1);
      }
    }

    if (timed_out) {
      report.stop_reason = StopReason::kTimeout;
      break;
    }
    if (egraph_->Version() == version_before) {
      if (!restricted || verify_pass) {
        report.stop_reason = StopReason::kSaturated;
        break;
      }
      // Unchanged but restricted: re-run once unrestricted to verify.
      if (report.verify_passes >= config_.max_verify_passes) {
        report.stop_reason = StopReason::kStalled;
        break;
      }
      verify_pass = true;
      ++report.verify_passes;
      continue;
    }
    verify_pass = false;
    if (egraph_->NumNodes() > node_limit) {
      report.stop_reason = StopReason::kNodeLimit;
      break;
    }
    if (timer.Seconds() > config_.timeout_seconds) {
      report.stop_reason = StopReason::kTimeout;
      break;
    }
    if (iter + 1 == config_.max_iterations) {
      report.stop_reason = StopReason::kIterationLimit;
    }
  }

  report.final_nodes = egraph_->NumNodes();
  report.final_classes = egraph_->NumClasses();
  report.seconds = timer.Seconds();
  return report;
}

}  // namespace spores
