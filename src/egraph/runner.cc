#include "src/egraph/runner.h"

#include <sstream>

namespace spores {

std::string RunnerReport::ToString() const {
  std::ostringstream os;
  os << "saturation: ";
  switch (stop_reason) {
    case StopReason::kSaturated: os << "converged"; break;
    case StopReason::kIterationLimit: os << "iteration-limit"; break;
    case StopReason::kNodeLimit: os << "node-limit"; break;
    case StopReason::kTimeout: os << "timeout"; break;
  }
  os << " after " << iterations << " iters, " << applied_matches
     << " matches applied, " << final_nodes << " nodes / " << final_classes
     << " classes, " << seconds << "s";
  return os.str();
}

Runner::Runner(EGraph* egraph, std::vector<Rewrite> rules, RunnerConfig config)
    : egraph_(egraph), owned_rules_(std::move(rules)), rules_(&owned_rules_),
      config_(config), rng_(config.seed) {}

Runner::Runner(EGraph* egraph, const std::vector<Rewrite>* rules,
               RunnerConfig config)
    : egraph_(egraph), rules_(rules), config_(config), rng_(config.seed) {}

RunnerReport Runner::Run() {
  Timer timer;
  RunnerReport report;
  egraph_->Rebuild();

  // With sampling, an iteration may apply only already-known matches and
  // leave the graph unchanged without being saturated. When that happens we
  // verify with one full (unsampled) pass before declaring convergence.
  bool verify_pass = false;
  for (size_t iter = 0; iter < config_.max_iterations; ++iter) {
    report.iterations = iter + 1;
    uint64_t version_before = egraph_->Version();
    bool sampled_this_iter = false;

    // Phase 1: read-only matching against the frozen graph, so all rules see
    // the same snapshot (simultaneous application, Sec 3.4).
    struct PendingApplication {
      const Rewrite* rule;
      Match match;
    };
    std::vector<PendingApplication> pending;
    for (const Rewrite& rule : *rules_) {
      std::vector<Match> matches = MatchAll(*egraph_, *rule.lhs);
      if (rule.guard) {
        std::vector<Match> kept;
        kept.reserve(matches.size());
        for (Match& m : matches) {
          if (rule.guard(*egraph_, m.subst)) kept.push_back(std::move(m));
        }
        matches = std::move(kept);
      }
      if (config_.strategy == SaturationStrategy::kSampling && !verify_pass) {
        size_t limit = rule.expansive ? config_.expansive_match_limit
                                      : config_.match_limit_per_rule;
        if (matches.size() > limit) {
          sampled_this_iter = true;
          std::vector<size_t> keep =
              rng_.SampleWithoutReplacement(matches.size(), limit);
          std::vector<Match> sampled;
          sampled.reserve(limit);
          for (size_t idx : keep) sampled.push_back(std::move(matches[idx]));
          matches = std::move(sampled);
        }
      }
      for (Match& m : matches) {
        pending.push_back(PendingApplication{&rule, std::move(m)});
      }
    }

    // Phase 2: apply.
    for (PendingApplication& pa : pending) {
      std::optional<ClassId> rhs =
          pa.rule->applier(*egraph_, pa.match.root, pa.match.subst);
      if (rhs) {
        egraph_->Merge(pa.match.root, *rhs);
        ++report.applied_matches;
      }
      if (egraph_->NumNodes() > config_.max_nodes) break;
    }
    egraph_->Rebuild();

    if (egraph_->Version() == version_before) {
      if (!sampled_this_iter || verify_pass) {
        report.stop_reason = StopReason::kSaturated;
        break;
      }
      // Unchanged but sampled: re-run once with sampling disabled to verify.
      verify_pass = true;
      continue;
    }
    verify_pass = false;
    if (egraph_->NumNodes() > config_.max_nodes) {
      report.stop_reason = StopReason::kNodeLimit;
      break;
    }
    if (timer.Seconds() > config_.timeout_seconds) {
      report.stop_reason = StopReason::kTimeout;
      break;
    }
    if (iter + 1 == config_.max_iterations) {
      report.stop_reason = StopReason::kIterationLimit;
    }
  }

  report.final_nodes = egraph_->NumNodes();
  report.final_classes = egraph_->NumClasses();
  report.seconds = timer.Seconds();
  return report;
}

}  // namespace spores
