#include "src/egraph/egraph_image.h"

#include <algorithm>

namespace spores {

EGraphImage ExtractEGraphImage(const EGraph& graph,
                               const std::vector<ClassId>& roots) {
  EGraphImage image;

  // Discover reachable canonical classes and assign dense indices. The walk
  // is children-after-parents DFS like CompactInto step 1; rebuild reverses
  // it to get a mostly children-first materialization order.
  std::unordered_map<ClassId, uint32_t> dense;
  std::vector<ClassId> order;
  std::vector<ClassId> stack;
  auto discover = [&](ClassId c) {
    c = graph.Find(c);
    if (dense.count(c)) return;
    dense.emplace(c, static_cast<uint32_t>(order.size()));
    order.push_back(c);
    stack.push_back(c);
  };
  for (ClassId r : roots) discover(r);
  for (size_t i = 0; i < stack.size();) {
    // `stack` only grows here; iterate it as a worklist by index so
    // discover() can keep appending.
    ClassId c = stack[i++];
    for (NodeId nid : graph.GetClass(c).nodes) {
      for (ClassId ch : graph.NodeAt(nid).children) discover(ch);
    }
  }

  image.classes.resize(order.size());
  for (uint32_t ci = 0; ci < order.size(); ++ci) {
    const EClass& cls = graph.GetClass(order[ci]);
    auto& out_nodes = image.classes[ci];
    out_nodes.reserve(cls.nodes.size());
    for (NodeId nid : cls.nodes) {
      const ENode& n = graph.NodeAt(nid);
      EGraphImage::Node img;
      img.op = n.op;
      img.sym = n.sym.str();
      img.value = n.value;
      img.attrs.reserve(n.attrs.size());
      for (Symbol a : n.attrs) img.attrs.push_back(a.str());
      img.children.reserve(n.children.size());
      for (ClassId ch : n.children) {
        img.children.push_back(dense.at(graph.Find(ch)));
      }
      out_nodes.push_back(std::move(img));
    }
  }

  image.roots.reserve(roots.size());
  for (ClassId r : roots) image.roots.push_back(dense.at(graph.Find(r)));
  return image;
}

std::vector<ClassId> BuildEGraphFromImage(const EGraphImage& image,
                                          EGraph& out) {
  const size_t num_classes = image.classes.size();

  // Re-intern payloads under this process's symbol table. kAgg attribute
  // lists must be sorted by Symbol id, and the persisted order reflects the
  // *writer's* intern order — re-sort here. kBind/kUnbind attrs are ordered
  // schemas and pass through verbatim.
  struct DecodedNode {
    ENode proto;  // children hold dense indices until materialization
    bool done = false;
  };
  std::vector<std::vector<DecodedNode>> decoded(num_classes);
  for (size_t ci = 0; ci < num_classes; ++ci) {
    decoded[ci].reserve(image.classes[ci].size());
    for (const EGraphImage::Node& img : image.classes[ci]) {
      DecodedNode d;
      d.proto.op = img.op;
      d.proto.sym = Symbol::Intern(img.sym);
      d.proto.value = img.value;
      d.proto.attrs.reserve(img.attrs.size());
      for (const std::string& a : img.attrs) {
        d.proto.attrs.push_back(Symbol::Intern(a));
      }
      if (img.op == Op::kAgg) {
        std::sort(d.proto.attrs.begin(), d.proto.attrs.end());
      }
      for (uint32_t ch : img.children) {
        d.proto.children.push_back(static_cast<ClassId>(ch));
      }
      decoded[ci].push_back(std::move(d));
    }
  }

  // Bottom-up fixpoint materialization, same shape as CompactInto step 2.
  std::vector<ClassId> map(num_classes, kInvalidClassId);
  bool progress = true;
  while (progress) {
    progress = false;
    // Image discovery order is parents-first; walk in reverse so acyclic
    // graphs converge in one pass.
    for (size_t ci = num_classes; ci-- > 0;) {
      for (DecodedNode& d : decoded[ci]) {
        if (d.done) continue;
        ENode copy;
        copy.op = d.proto.op;
        copy.sym = d.proto.sym;
        copy.value = d.proto.value;
        copy.attrs = d.proto.attrs;
        copy.children.reserve(d.proto.children.size());
        bool ready = true;
        for (ClassId dense_child : d.proto.children) {
          ClassId m = map[dense_child];
          if (m == kInvalidClassId) {
            ready = false;
            break;
          }
          copy.children.push_back(out.Find(m));
        }
        if (!ready) continue;
        ClassId nc = out.Add(std::move(copy));
        if (map[ci] == kInvalidClassId) {
          map[ci] = nc;
        } else {
          out.Merge(map[ci], nc);
        }
        d.done = true;
        progress = true;
      }
    }
    out.Rebuild();
  }
  out.Rebuild();

  std::vector<ClassId> new_roots;
  new_roots.reserve(image.roots.size());
  for (uint32_t r : image.roots) {
    ClassId m = map[r];
    new_roots.push_back(m == kInvalidClassId ? kInvalidClassId : out.Find(m));
  }
  return new_roots;
}

}  // namespace spores
