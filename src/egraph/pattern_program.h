// Compiled e-matching (egg's "machine" style). Each LHS pattern is compiled
// once into a flat instruction program over numbered ClassId registers:
//
//   kBind          iterate the candidate e-nodes of op X in class regs[in]
//                  (via the e-class op index — no full member scan), check
//                  payload constraints, write the children into fresh
//                  registers (a backtracking point);
//   kCompareReg    repeated pattern variable: Find(regs[a]) == Find(regs[b]);
//   kCompareValue/ repeated payload variable: slot a == slot b.
//   kCompareAttrs
//
// Substitutions stay flat during matching — registers plus value/attr slots
// in a reusable scratch file — and are materialized into a Subst (via the
// program's register -> Symbol legend) only for matches that survive guards
// and sampling, so Rewrite appliers and guards are untouched.
//
// Programs compile deterministically (left-to-right DFS, sequential
// register/slot allocation), so two patterns with a common structural prefix
// compile to byte-identical instruction prefixes. CompiledRuleSet exploits
// this: all programs merge into one discrimination trie rooted at the LHS
// root operator, and a single pass over a candidate e-class advances every
// rule whose LHS shares the prefix. Per-rule match order is exactly the
// legacy backtracking matcher's order (nested candidate loops in the same
// nesting), which the differential tests and the saturation identity gates
// rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/egraph/egraph.h"
#include "src/egraph/pattern.h"

namespace spores {

using RegId = uint16_t;
using SlotId = uint16_t;

/// One instruction of a compiled pattern program.
struct PatternInstr {
  enum class Kind : uint8_t {
    kBind,          ///< enumerate op-candidates of class regs[in]
    kCompareReg,    ///< Find(regs[a]) == Find(regs[b])
    kCompareValue,  ///< value_slots[a] == value_slots[b]
    kCompareAttrs,  ///< attrs of attr_slots[a] == attrs of attr_slots[b]
  };

  // Payload-constraint flags for kBind.
  static constexpr uint8_t kReqSym = 1;     ///< node.sym must equal `sym`
  static constexpr uint8_t kReqValue = 2;   ///< node.value must equal `value`
  static constexpr uint8_t kReqAttrs = 4;   ///< node.attrs must equal `attrs`
  static constexpr uint8_t kBindValue = 8;  ///< record node.value in slot
  static constexpr uint8_t kBindAttrs = 16; ///< record node id in attr slot

  Kind kind = Kind::kBind;

  // kBind operands.
  RegId in = 0;             ///< register holding the class to search
  RegId out = 0;            ///< children go to regs[out .. out+num_children)
  uint8_t num_children = 0;
  uint8_t flags = 0;
  Op op = Op::kVar;
  Symbol sym;               ///< kReqSym
  double value = 0.0;       ///< kReqValue
  SlotId value_slot = 0;    ///< kBindValue
  SlotId attrs_slot = 0;    ///< kBindAttrs
  std::vector<Symbol> attrs;  ///< kReqAttrs (owned copy; sorted like AggExact)

  // kCompare* operands (registers or slots depending on kind).
  uint16_t a = 0;
  uint16_t b = 0;

  friend bool operator==(const PatternInstr& x, const PatternInstr& y);
};

/// A compiled LHS: the instruction sequence plus the legend mapping pattern
/// variables to the registers/slots holding their bindings at yield time.
struct PatternProgram {
  std::vector<PatternInstr> instrs;
  uint16_t num_regs = 1;        ///< reg 0 holds the candidate root class
  uint16_t num_value_slots = 0;
  uint16_t num_attr_slots = 0;
  std::vector<std::pair<Symbol, RegId>> class_legend;
  std::vector<std::pair<Symbol, SlotId>> value_legend;
  std::vector<std::pair<Symbol, SlotId>> attr_legend;
};

/// Compiles a pattern. Deterministic: same structure -> same instructions.
PatternProgram CompilePattern(const Pattern& pattern);

/// Reusable register/slot file for the pattern VM. Attr bindings are stored
/// as the NodeId whose e-node carries the attribute list (arena nodes never
/// change their attrs payload), so matching copies no vectors at all.
struct MachineScratch {
  std::vector<ClassId> regs;
  std::vector<double> values;
  std::vector<NodeId> attr_nodes;

  void Ensure(const PatternProgram& prog) {
    Ensure(prog.num_regs, prog.num_value_slots, prog.num_attr_slots);
  }
  void Ensure(size_t num_regs, size_t num_values, size_t num_attrs) {
    if (regs.size() < num_regs) regs.resize(num_regs);
    if (values.size() < num_values) values.resize(num_values);
    if (attr_nodes.size() < num_attrs) attr_nodes.resize(num_attrs);
  }
};

/// Runs one program against the class in scratch.regs[0]; calls `yield` once
/// per match with the bindings live in `scratch`.
void RunProgram(const EGraph& egraph, const PatternProgram& prog,
                MachineScratch& scratch,
                const std::function<void()>& yield);

/// Materializes the bindings currently in `scratch` into a Subst, following
/// the program's legend. Class bindings are canonicalized.
Subst ScratchToSubst(const EGraph& egraph, const PatternProgram& prog,
                     const MachineScratch& scratch);

/// Small dynamic bitset addressing rules by index (one or two words in
/// practice — R_EQ is ~30 rules).
class RuleMask {
 public:
  RuleMask() = default;
  explicit RuleMask(size_t num_rules) : words_((num_rules + 63) / 64, 0) {}

  void Set(size_t i) { words_[i / 64] |= uint64_t{1} << (i % 64); }
  bool Test(size_t i) const {
    return (words_[i / 64] >> (i % 64)) & uint64_t{1};
  }
  void SetAll() {
    for (uint64_t& w : words_) w = ~uint64_t{0};
  }
  void ClearAll() {
    for (uint64_t& w : words_) w = 0;
  }
  void OrWith(const RuleMask& o) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  }
  bool Intersects(const RuleMask& o) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & o.words_[i]) return true;
    }
    return false;
  }
  bool Any() const {
    for (uint64_t w : words_) {
      if (w) return true;
    }
    return false;
  }

 private:
  std::vector<uint64_t> words_;
};

/// Per-rule match buffers with flat slot storage, arena-reused across
/// saturation iterations (Clear keeps capacity). One match of rule r
/// occupies one entry in `roots` plus fixed-size strides of the rule's
/// class/value/attr slot arrays, in the program's legend order.
struct MatchBank {
  struct RuleMatches {
    std::vector<ClassId> roots;
    std::vector<ClassId> class_slots;  ///< size() * class_legend.size()
    std::vector<double> value_slots;   ///< size() * value_legend.size()
    std::vector<NodeId> attr_nodes;    ///< size() * attr_legend.size()

    size_t size() const { return roots.size(); }
    void Clear() {
      roots.clear();
      class_slots.clear();
      value_slots.clear();
      attr_nodes.clear();
    }
  };

  std::vector<RuleMatches> rules;
  MachineScratch scratch;

  /// Sizes for `num_rules` and clears all buffers, keeping capacity.
  void Reset(size_t num_rules) {
    rules.resize(num_rules);
    for (RuleMatches& r : rules) r.Clear();
  }
};

/// All rule LHS programs merged into one shared multi-pattern trie.
class CompiledRuleSet {
 public:
  CompiledRuleSet() = default;
  /// Compiles each LHS. Order defines rule indices (must match the rule
  /// vector the scheduler and runner address).
  explicit CompiledRuleSet(const std::vector<PatternPtr>& lhs_patterns);

  size_t num_rules() const { return programs_.size(); }
  const PatternProgram& program(size_t i) const { return programs_[i]; }

  /// Trie size diagnostics: instructions stored vs instructions across the
  /// uncompiled programs (the difference is prefix sharing).
  size_t trie_instrs() const { return nodes_.size(); }
  size_t total_instrs() const { return total_instrs_; }

  /// Matches every rule in `active` against class `cls` in one pass,
  /// appending each rule's matches (flat slots) to `bank->rules[rule]`.
  /// Per-rule append order equals the legacy backtracking matcher's.
  void MatchClass(const EGraph& egraph, ClassId cls, const RuleMask& active,
                  MatchBank* bank) const;

  /// Builds the Subst of match `index` of rule `rule` from `bank`.
  Subst MatchSubst(const EGraph& egraph, size_t rule,
                   const MatchBank& bank, size_t index) const;

 private:
  struct TrieNode {
    PatternInstr instr;
    std::vector<uint32_t> children;   ///< trie child node indices
    std::vector<uint32_t> yields;     ///< rules completing after this instr
    RuleMask subtree;                 ///< all rules below (incl. yields)
  };

  void Walk(const EGraph& egraph, uint32_t node_idx, const RuleMask& active,
            MatchBank* bank) const;
  void Emit(const EGraph& egraph, uint32_t rule, MatchBank* bank) const;

  std::vector<PatternProgram> programs_;
  std::vector<TrieNode> nodes_;
  std::vector<uint32_t> roots_;      ///< top level: first instructions
  std::vector<uint32_t> var_rules_;  ///< rules whose LHS is a bare ?x
  size_t total_instrs_ = 0;
  uint16_t max_regs_ = 1;
  uint16_t max_value_slots_ = 0;
  uint16_t max_attr_slots_ = 0;
};

}  // namespace spores
