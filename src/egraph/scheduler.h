// Rule-match scheduling for the saturation runner (egg's BackoffScheduler
// adapted to SPORES): a rule whose match count overflows its budget is
// banned for an exponentially growing span of iterations, and every rule
// remembers the graph version it last searched so re-runs only visit
// classes that changed since (incremental matching). Both mechanisms are
// heuristics that under-approximate the full match set, so the Runner
// confirms convergence with one unrestricted verify pass before reporting
// saturation.
//
// The scheduler outlives individual Runner::Run calls: a session keeps one
// per long-lived e-graph so the per-rule search versions persist across
// queries — resuming saturation after AddExpr of a new query then matches
// only the classes that query introduced or touched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spores {

struct SchedulerConfig {
  /// Matches a rule may produce in one search before it is banned.
  size_t match_limit = 512;
  /// Expansive (AC-style) rules get a tighter budget.
  size_t expansive_match_limit = 128;
  /// Base ban span in iterations; doubles with every consecutive ban.
  size_t ban_length = 4;
};

/// Per-rule backoff and incremental-search state. Rules are addressed by
/// their index in the runner's rule vector.
class RuleScheduler {
 public:
  explicit RuleScheduler(size_t num_rules, SchedulerConfig config = {});

  /// Resets per-run state (bans, iteration clock) but keeps the per-rule
  /// last-searched versions, so a resumed saturation stays incremental.
  void BeginRun();

  /// True if rule `i` may search in `iteration` (not banned).
  bool ShouldSearch(size_t i, size_t iteration) const;

  /// Match budget for one search of rule `i` (scales with past bans so a
  /// recidivist rule gets headroom back slowly).
  size_t MatchBudget(size_t i, bool expansive) const;

  /// Records a completed search of rule `i`: bans it when `num_matches`
  /// overflowed its budget. Returns true if the rule was banned.
  bool RecordSearch(size_t i, size_t iteration, size_t num_matches,
                    bool expansive);

  /// Smallest class version rule `i` still has to look at.
  uint64_t SearchFloor(size_t i) const { return rules_[i].search_floor; }

  /// Marks everything up to graph version `v` as seen by rule `i`.
  void AdvanceSearchFloor(size_t i, uint64_t v);

  size_t num_rules() const { return rules_.size(); }
  size_t TimesBanned(size_t i) const { return rules_[i].times_banned; }

 private:
  struct RuleState {
    size_t banned_until = 0;     ///< first iteration the rule may run again
    size_t times_banned = 0;
    uint64_t search_floor = 0;   ///< min class version left to search
  };

  SchedulerConfig config_;
  std::vector<RuleState> rules_;
};

}  // namespace spores
