#include "src/egraph/scheduler.h"

namespace spores {

RuleScheduler::RuleScheduler(size_t num_rules, SchedulerConfig config)
    : config_(config), rules_(num_rules) {}

void RuleScheduler::BeginRun() {
  for (RuleState& r : rules_) {
    r.banned_until = 0;
    r.times_banned = 0;
  }
}

bool RuleScheduler::ShouldSearch(size_t i, size_t iteration) const {
  return iteration >= rules_[i].banned_until;
}

size_t RuleScheduler::MatchBudget(size_t i, bool expansive) const {
  size_t base = expansive ? config_.expansive_match_limit : config_.match_limit;
  size_t shift = rules_[i].times_banned;
  if (shift > 16) shift = 16;  // cap: budgets beyond ~65536x are meaningless
  return base << shift;
}

bool RuleScheduler::RecordSearch(size_t i, size_t iteration,
                                 size_t num_matches, bool expansive) {
  RuleState& r = rules_[i];
  if (num_matches <= MatchBudget(i, expansive)) return false;
  size_t shift = r.times_banned;
  if (shift > 16) shift = 16;
  r.banned_until = iteration + 1 + (config_.ban_length << shift);
  ++r.times_banned;
  return true;
}

void RuleScheduler::AdvanceSearchFloor(size_t i, uint64_t v) {
  if (v > rules_[i].search_floor) rules_[i].search_floor = v;
}

}  // namespace spores
