// Smallest-term extraction: builds, for any e-class, the expression with the
// fewest AST nodes it represents. Used for debugging, for representative
// terms inside dynamic rules, and by tests. Cost-based extraction lives in
// src/extract.
#pragma once

#include <optional>

#include "src/egraph/egraph.h"

namespace spores {

/// Returns the minimum-AST-size expression represented by `id`, or nullopt
/// if the class has no finite (acyclic) term.
std::optional<ExprPtr> SmallestTerm(const EGraph& egraph, ClassId id);

}  // namespace spores
