#include "src/egraph/matcher.h"

#include <functional>

#include "src/egraph/pattern_program.h"

namespace spores {

void MatchInClass(const EGraph& egraph, const Pattern& pattern, ClassId id,
                  std::vector<Match>* out) {
  PatternProgram prog = CompilePattern(pattern);
  MachineScratch scratch;
  scratch.Ensure(prog);
  ClassId root = egraph.Find(id);
  scratch.regs[0] = root;
  RunProgram(egraph, prog, scratch, [&] {
    out->push_back(Match{root, ScratchToSubst(egraph, prog, scratch)});
  });
}

std::vector<Match> MatchAll(const EGraph& egraph, const Pattern& pattern) {
  std::vector<Match> out;
  PatternProgram prog = CompilePattern(pattern);
  MachineScratch scratch;
  scratch.Ensure(prog);
  // CanonicalClasses() yields canonical ids already; binding regs[0]
  // directly keeps the per-class Find out of the loop.
  for (ClassId id : egraph.CanonicalClasses()) {
    scratch.regs[0] = id;
    RunProgram(egraph, prog, scratch, [&] {
      out.push_back(Match{id, ScratchToSubst(egraph, prog, scratch)});
    });
  }
  return out;
}

// ---------------------------------------------------------------------------
// Legacy backtracking interpreter (reference oracle).
// ---------------------------------------------------------------------------

namespace {

// Extends `subst` so that `pattern` matches class `id`; invokes `emit` for
// every consistent extension. `subst` is mutated and restored (backtracking).
void LegacyMatchPattern(const EGraph& egraph, const Pattern& pattern,
                        ClassId id, Subst& subst,
                        const std::function<void()>& emit) {
  id = egraph.Find(id);
  if (pattern.kind == Pattern::Kind::kClassVar) {
    if (const ClassId* bound = subst.FindClass(pattern.var)) {
      if (egraph.Find(*bound) == id) emit();
      return;
    }
    subst.BindClass(pattern.var, id);
    emit();
    subst.UnbindClass(pattern.var);
    return;
  }

  const EClass& cls = egraph.GetClass(id);
  for (NodeId nid : cls.nodes) {
    const ENode& node = egraph.NodeAt(nid);
    if (node.op != pattern.op) continue;
    if (pattern.sym && node.sym != *pattern.sym) continue;
    if (pattern.value && node.value != *pattern.value) continue;
    if (pattern.attrs && node.attrs != *pattern.attrs) continue;
    if (node.children.size() != pattern.children.size()) continue;

    // Payload bindings (value_var / attrs_var) with consistency checks.
    bool bound_value = false;
    if (pattern.value_var) {
      if (const double* bound = subst.FindValue(*pattern.value_var)) {
        if (*bound != node.value) continue;
      } else {
        subst.BindValue(*pattern.value_var, node.value);
        bound_value = true;
      }
    }
    bool bound_attrs = false;
    if (pattern.attrs_var) {
      if (const std::vector<Symbol>* bound =
              subst.FindAttrs(*pattern.attrs_var)) {
        if (*bound != node.attrs) {
          if (bound_value) subst.UnbindValue(*pattern.value_var);
          continue;
        }
      } else {
        subst.BindAttrs(*pattern.attrs_var, node.attrs);
        bound_attrs = true;
      }
    }

    // Recursively match children left-to-right.
    std::function<void(size_t)> match_child = [&](size_t i) {
      if (i == pattern.children.size()) {
        emit();
        return;
      }
      LegacyMatchPattern(egraph, *pattern.children[i], node.children[i],
                         subst, [&]() { match_child(i + 1); });
    };
    match_child(0);

    if (bound_value) subst.UnbindValue(*pattern.value_var);
    if (bound_attrs) subst.UnbindAttrs(*pattern.attrs_var);
  }
}

}  // namespace

void LegacyMatchInClass(const EGraph& egraph, const Pattern& pattern,
                        ClassId id, std::vector<Match>* out) {
  Subst subst;
  ClassId root = egraph.Find(id);
  LegacyMatchPattern(egraph, pattern, root, subst,
                     [&]() { out->push_back(Match{root, subst}); });
}

std::vector<Match> LegacyMatchAll(const EGraph& egraph,
                                  const Pattern& pattern) {
  std::vector<Match> out;
  for (ClassId id : egraph.CanonicalClasses()) {
    LegacyMatchInClass(egraph, pattern, id, &out);
  }
  return out;
}

}  // namespace spores
