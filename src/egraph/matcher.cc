#include "src/egraph/matcher.h"

#include <functional>

namespace spores {

namespace {

// Extends `subst` so that `pattern` matches class `id`; invokes `emit` for
// every consistent extension. `subst` is mutated and restored (backtracking).
void MatchPattern(const EGraph& egraph, const Pattern& pattern, ClassId id,
                  Subst& subst, const std::function<void()>& emit) {
  id = egraph.Find(id);
  if (pattern.kind == Pattern::Kind::kClassVar) {
    auto it = subst.classes.find(pattern.var);
    if (it != subst.classes.end()) {
      if (egraph.Find(it->second) == id) emit();
      return;
    }
    subst.classes.emplace(pattern.var, id);
    emit();
    subst.classes.erase(pattern.var);
    return;
  }

  const EClass& cls = egraph.GetClass(id);
  for (NodeId nid : cls.nodes) {
    const ENode& node = egraph.NodeAt(nid);
    if (node.op != pattern.op) continue;
    if (pattern.sym && node.sym != *pattern.sym) continue;
    if (pattern.value && node.value != *pattern.value) continue;
    if (pattern.attrs && node.attrs != *pattern.attrs) continue;
    if (node.children.size() != pattern.children.size()) continue;

    // Payload bindings (value_var / attrs_var) with consistency checks.
    bool bound_value = false;
    if (pattern.value_var) {
      auto it = subst.values.find(*pattern.value_var);
      if (it != subst.values.end()) {
        if (it->second != node.value) continue;
      } else {
        subst.values.emplace(*pattern.value_var, node.value);
        bound_value = true;
      }
    }
    bool bound_attrs = false;
    if (pattern.attrs_var) {
      auto it = subst.attrs.find(*pattern.attrs_var);
      if (it != subst.attrs.end()) {
        if (it->second != node.attrs) {
          if (bound_value) subst.values.erase(*pattern.value_var);
          continue;
        }
      } else {
        subst.attrs.emplace(*pattern.attrs_var, node.attrs);
        bound_attrs = true;
      }
    }

    // Recursively match children left-to-right.
    std::function<void(size_t)> match_child = [&](size_t i) {
      if (i == pattern.children.size()) {
        emit();
        return;
      }
      MatchPattern(egraph, *pattern.children[i], node.children[i], subst,
                   [&]() { match_child(i + 1); });
    };
    match_child(0);

    if (bound_value) subst.values.erase(*pattern.value_var);
    if (bound_attrs) subst.attrs.erase(*pattern.attrs_var);
  }
}

}  // namespace

void MatchInClass(const EGraph& egraph, const Pattern& pattern, ClassId id,
                  std::vector<Match>* out) {
  Subst subst;
  ClassId root = egraph.Find(id);
  MatchPattern(egraph, pattern, root, subst,
               [&]() { out->push_back(Match{root, subst}); });
}

std::vector<Match> MatchAll(const EGraph& egraph, const Pattern& pattern) {
  std::vector<Match> out;
  for (ClassId id : egraph.CanonicalClasses()) {
    MatchInClass(egraph, pattern, id, &out);
  }
  return out;
}

}  // namespace spores
