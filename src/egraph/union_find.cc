#include "src/egraph/union_find.h"

#include "src/util/check.h"

namespace spores {

ClassId UnionFind::MakeSet() {
  ClassId id = static_cast<ClassId>(parent_.size());
  parent_.push_back(id);
  return id;
}

ClassId UnionFind::Find(ClassId id) {
  SPORES_CHECK_LT(id, parent_.size());
  ClassId root = id;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[id] != root) {
    ClassId next = parent_[id];
    parent_[id] = root;
    id = next;
  }
  return root;
}

ClassId UnionFind::FindConst(ClassId id) const {
  SPORES_CHECK_LT(id, parent_.size());
  while (parent_[id] != id) id = parent_[id];
  return id;
}

ClassId UnionFind::Union(ClassId keep, ClassId merge) {
  SPORES_CHECK_EQ(parent_[keep], keep);
  SPORES_CHECK_EQ(parent_[merge], merge);
  parent_[merge] = keep;
  return keep;
}

}  // namespace spores
