// Union-find over e-class ids with path compression. Union is
// "union-by-argument": the first argument becomes the root, because EGraph
// merges move e-class payloads into the kept root explicitly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spores {

using ClassId = uint32_t;
inline constexpr ClassId kInvalidClassId = static_cast<ClassId>(-1);

/// Disjoint-set forest keyed by dense ClassIds.
class UnionFind {
 public:
  /// Creates a fresh singleton set and returns its id.
  ClassId MakeSet();

  /// Canonical representative of `id` (with path compression).
  ClassId Find(ClassId id);

  /// Canonical representative without mutation (no path compression).
  ClassId FindConst(ClassId id) const;

  /// Makes `keep`'s root the representative of both sets; returns it.
  /// Requires both args to be canonical ids.
  ClassId Union(ClassId keep, ClassId merge);

  size_t Size() const { return parent_.size(); }

 private:
  std::vector<ClassId> parent_;
};

}  // namespace spores
