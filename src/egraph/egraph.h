// The E-Graph: a congruence-closed union of equivalence classes of terms
// (Nelson 1980; design follows egg [Willsey et al.] with deferred
// rebuilding). This is the data structure equality saturation populates
// (Sec 3.1) and extraction consumes.
//
// Storage is arena-backed: every distinct e-node is interned once into a
// contiguous arena and addressed by a dense NodeId. E-classes hold NodeId
// lists (members and deduplicated parent back-edges) instead of owning node
// copies, so merges move a few integers, congruence repair re-canonicalizes
// nodes in place, and extraction cost tables can be flat vectors.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/egraph/analysis.h"
#include "src/egraph/enode.h"
#include "src/egraph/union_find.h"
#include "src/ir/expr.h"

namespace spores {

/// One equivalence class of e-nodes. Node and parent lists index the
/// EGraph's arena (resolve with EGraph::NodeAt).
struct EClass {
  ClassId id = kInvalidClassId;
  /// Member e-nodes (canonicalized and deduplicated after Rebuild()).
  std::vector<NodeId> nodes;
  /// Per-op index over `nodes`: the bucket for op X lists exactly the
  /// members whose e-node op is X, preserving their relative order in
  /// `nodes`. E-matching jumps straight to a pattern's candidate nodes
  /// instead of scanning the class. Maintained by Add/Merge/RepairClass
  /// (CompactInto re-adds through Add); cross-checked by CheckInvariants.
  std::vector<std::pair<Op, std::vector<NodeId>>> op_index;
  /// Back-edges: e-nodes that have this class as a child (deduplicated
  /// after Rebuild()). Used for congruence repair and analysis propagation.
  std::vector<NodeId> parents;

  /// Members whose op is `op`, or nullptr when the class has none.
  const std::vector<NodeId>* NodesWith(Op op) const {
    for (const auto& [o, list] : op_index) {
      if (o == op) return &list;
    }
    return nullptr;
  }
  ClassData data;
  /// Graph Version() at which this class last changed (created, merged, or
  /// congruence-repaired). Lets incremental matchers skip stable classes.
  uint64_t version = 0;
  bool repair_dirty = false;    ///< queued in the congruence worklist
  bool analysis_dirty = false;  ///< queued in the analysis worklist
};

/// E-graph with hash-consing, deferred congruence repair, and pluggable
/// e-class analyses.
///
/// Usage: Add/AddExpr to insert terms, Merge to assert equalities, then call
/// Rebuild() before reading (matching/extraction). Merge and Add may leave
/// the graph temporarily non-congruent; Rebuild restores all invariants.
class EGraph {
 public:
  /// `analysis` may be null (no invariants tracked).
  explicit EGraph(std::unique_ptr<Analysis> analysis = nullptr);

  /// Inserts an e-node (children are canonicalized first). Returns the class
  /// containing it (existing one if hash-consed).
  ClassId Add(ENode node);

  /// Recursively inserts an expression tree. N-ary Join/Union expressions
  /// are curried into left-nested binary e-nodes.
  ClassId AddExpr(const ExprPtr& expr);

  /// Read-only lookup of a canonicalized node. Returns its class if present.
  std::optional<ClassId> Lookup(const ENode& node) const;

  /// Read-only recursive lookup of a whole expression tree.
  std::optional<ClassId> LookupExpr(const ExprPtr& expr) const;

  /// True if `expr` is represented inside class `id`.
  bool Represents(ClassId id, const ExprPtr& expr) const;

  /// Asserts a == b. Returns true if the graph changed. Congruence closure
  /// is deferred until Rebuild().
  bool Merge(ClassId a, ClassId b);

  /// Restores congruence and re-propagates analysis data to fixpoint.
  void Rebuild();

  /// Canonical class of `id`. Path-compresses through the mutable
  /// union-find even on const graphs (logically const; the graph is
  /// single-threaded by design), so the tight Find loops in matching and
  /// extraction amortize to near-O(1).
  ClassId Find(ClassId id) const { return uf_.Find(id); }

  const EClass& GetClass(ClassId id) const;
  const ClassData& Data(ClassId id) const { return GetClass(id).data; }

  /// The interned e-node at `id`. Canonical after Rebuild() for hashcons
  /// winners; losers (congruent duplicates) may hold stale child ids, which
  /// Find() resolves to the same classes.
  const ENode& NodeAt(NodeId id) const { return nodes_[id]; }

  /// Canonical class currently containing arena node `id`.
  ClassId NodeClass(NodeId id) const { return uf_.FindConst(node_class_[id]); }

  /// All canonical class ids (stable order: ascending id).
  std::vector<ClassId> CanonicalClasses() const;

  /// Canonical classes reachable from `root` through member-node children,
  /// ascending id. Scopes extraction and resumed saturation to one query's
  /// region of a long-lived multi-query graph.
  std::vector<ClassId> ReachableClasses(ClassId root) const;

  size_t NumClasses() const;
  /// Total e-node count across canonical classes.
  size_t NumNodes() const;

  /// Total interned nodes, live or superseded — the arena footprint a
  /// session's Compact() budget is measured against.
  size_t ArenaSize() const { return nodes_.size(); }

  /// One past the largest ClassId ever allocated (canonical or not); sizes
  /// flat per-class tables in extractors.
  size_t NumClassSlots() const { return classes_.size(); }

  /// Monotone counter bumped by every mutation; lets callers detect
  /// saturation (no change over a full iteration).
  uint64_t Version() const { return version_; }

  /// Graph Version() at which class `id` last changed. See EClass::version.
  uint64_t ClassVersion(ClassId id) const { return GetClass(id).version; }

  Analysis* analysis() { return analysis_.get(); }

  /// Canonicalizes an e-node's children (Find on each id).
  ENode Canonicalize(ENode node) const;

  /// Converts one Expr node (not its children) into an e-node given already
  /// inserted child classes.
  static ENode ExprToENode(const Expr& expr, std::vector<ClassId> children);

  /// Re-inserts every class reachable from `roots` into `out` (which must be
  /// freshly constructed with its own analysis). Returns the new canonical
  /// class of each root, position-aligned with `roots`. Nodes representable
  /// only cyclically are dropped — they carry no extractable term and
  /// saturation re-derives them on demand. This is the session Compact()
  /// primitive: it sheds superseded arena nodes, stale hashcons entries, and
  /// classes unreachable from live query roots.
  std::vector<ClassId> CompactInto(EGraph& out,
                                   const std::vector<ClassId>& roots) const;

  /// Exhaustively cross-checks the union-find, hashcons, class node lists,
  /// and parent indexes against each other. Returns an empty string when
  /// every invariant holds, else a description of the first violation.
  /// O(nodes * log) — test/debug use only.
  std::string CheckInvariants() const;

 private:
  EClass& ClassRef(ClassId id);
  const EClass& ClassRefConst(ClassId id) const;
  void RepairClass(ClassId id);
  void PropagateAnalysis(ClassId id);
  void MarkAnalysisDirty(ClassId root);

  mutable UnionFind uf_;
  std::vector<EClass> classes_;     // indexed by id; only canonical ids live
  std::vector<ENode> nodes_;        // the arena: interned e-nodes by NodeId
  std::vector<ClassId> node_class_; // arena-parallel: class that owns a node
  std::unordered_map<ENode, NodeId, ENodeHash> hashcons_;
  std::vector<ClassId> repair_worklist_;
  std::vector<ClassId> analysis_worklist_;
  std::unique_ptr<Analysis> analysis_;
  uint64_t version_ = 0;
};

}  // namespace spores
