// The E-Graph: a congruence-closed union of equivalence classes of terms
// (Nelson 1980; design follows egg [Willsey et al.] with deferred
// rebuilding). This is the data structure equality saturation populates
// (Sec 3.1) and extraction consumes.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/egraph/analysis.h"
#include "src/egraph/enode.h"
#include "src/egraph/union_find.h"
#include "src/ir/expr.h"

namespace spores {

/// One equivalence class of e-nodes.
struct EClass {
  ClassId id = kInvalidClassId;
  /// Member e-nodes (canonicalized and deduplicated after Rebuild()).
  std::vector<ENode> nodes;
  /// Back-edges: e-nodes that have this class as a child, and the class the
  /// parent node belongs to. Used for congruence repair and analysis
  /// propagation.
  std::vector<std::pair<ENode, ClassId>> parents;
  ClassData data;
};

/// E-graph with hash-consing, deferred congruence repair, and pluggable
/// e-class analyses.
///
/// Usage: Add/AddExpr to insert terms, Merge to assert equalities, then call
/// Rebuild() before reading (matching/extraction). Merge and Add may leave
/// the graph temporarily non-congruent; Rebuild restores all invariants.
class EGraph {
 public:
  /// `analysis` may be null (no invariants tracked).
  explicit EGraph(std::unique_ptr<Analysis> analysis = nullptr);

  /// Inserts an e-node (children are canonicalized first). Returns the class
  /// containing it (existing one if hash-consed).
  ClassId Add(ENode node);

  /// Recursively inserts an expression tree. N-ary Join/Union expressions
  /// are curried into left-nested binary e-nodes.
  ClassId AddExpr(const ExprPtr& expr);

  /// Read-only lookup of a canonicalized node. Returns its class if present.
  std::optional<ClassId> Lookup(const ENode& node) const;

  /// Read-only recursive lookup of a whole expression tree.
  std::optional<ClassId> LookupExpr(const ExprPtr& expr) const;

  /// True if `expr` is represented inside class `id`.
  bool Represents(ClassId id, const ExprPtr& expr) const;

  /// Asserts a == b. Returns true if the graph changed. Congruence closure
  /// is deferred until Rebuild().
  bool Merge(ClassId a, ClassId b);

  /// Restores congruence and re-propagates analysis data to fixpoint.
  void Rebuild();

  ClassId Find(ClassId id) const { return uf_.FindConst(id); }

  const EClass& GetClass(ClassId id) const;
  const ClassData& Data(ClassId id) const { return GetClass(id).data; }

  /// All canonical class ids (stable order: ascending id).
  std::vector<ClassId> CanonicalClasses() const;

  size_t NumClasses() const;
  /// Total e-node count across canonical classes.
  size_t NumNodes() const;

  /// Monotone counter bumped by every mutation; lets callers detect
  /// saturation (no change over a full iteration).
  uint64_t Version() const { return version_; }

  Analysis* analysis() { return analysis_.get(); }

  /// Canonicalizes an e-node's children (Find on each id).
  ENode Canonicalize(ENode node) const;

  /// Converts one Expr node (not its children) into an e-node given already
  /// inserted child classes.
  static ENode ExprToENode(const Expr& expr, std::vector<ClassId> children);

 private:
  EClass& ClassRef(ClassId id);
  const EClass& ClassRefConst(ClassId id) const;
  void RepairClass(ClassId id);
  void PropagateAnalysis(ClassId id);

  mutable UnionFind uf_;
  std::vector<EClass> classes_;  // indexed by id; only canonical ids live
  std::unordered_map<ENode, ClassId, ENodeHash> hashcons_;
  std::vector<ClassId> pending_repair_;
  std::vector<ClassId> pending_analysis_;
  std::unique_ptr<Analysis> analysis_;
  uint64_t version_ = 0;
};

}  // namespace spores
