// E-class analyses ("class invariants", Sec 3.2). Every e-class carries a
// ClassData record; the Analysis interface computes it for new e-nodes and
// merges it when classes are unioned. This is the C++ analogue of egg's
// Metadata/Analysis API.
#pragma once

#include <optional>
#include <vector>

#include "src/egraph/enode.h"
#include "src/util/symbol.h"

namespace spores {

class EGraph;

/// Per-e-class invariants tracked during saturation.
///
/// * `schema`  — sorted set of free attributes; equal expressions have equal
///               schemas, so merges assert equality (Sec 3.2).
/// * `constant`— scalar value if every expression in the class folds to a
///               constant; enables constant folding inside saturation.
/// * `sparsity`— conservative nnz/size estimate per Fig 12; merges keep the
///               tighter (smaller) estimate.
struct ClassData {
  std::vector<Symbol> schema;
  std::optional<double> constant;
  double sparsity = 1.0;
};

/// Computes and combines ClassData. Implementations may also append derived
/// e-nodes in Modify (e.g. materializing a folded constant).
class Analysis {
 public:
  virtual ~Analysis() = default;

  /// Data for a single e-node whose children already carry data.
  virtual ClassData Make(const EGraph& egraph, const ENode& node) = 0;

  /// Combines data of two merged classes; returns true if `into` changed
  /// (which re-triggers parent analysis).
  virtual bool Merge(ClassData& into, const ClassData& from) = 0;

  /// Hook run after a class's data changes; may mutate the e-graph (e.g.
  /// add a kConst node when `constant` became known).
  virtual void Modify(EGraph& egraph, ClassId id) = 0;
};

/// No-op analysis used by unit tests of the raw e-graph machinery.
class NullAnalysis final : public Analysis {
 public:
  ClassData Make(const EGraph&, const ENode&) override { return {}; }
  bool Merge(ClassData&, const ClassData&) override { return false; }
  void Modify(EGraph&, ClassId) override {}
};

}  // namespace spores
