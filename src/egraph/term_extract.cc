#include "src/egraph/term_extract.h"

#include <limits>
#include <unordered_map>

namespace spores {

namespace {

constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();

ExprPtr BuildTerm(const EGraph& egraph,
                  const std::unordered_map<ClassId, const ENode*>& best,
                  ClassId id) {
  const ENode* node = best.at(egraph.Find(id));
  std::vector<ExprPtr> children;
  children.reserve(node->children.size());
  for (ClassId c : node->children) {
    children.push_back(BuildTerm(egraph, best, c));
  }
  auto e = std::make_shared<Expr>();
  e->op = node->op;
  e->sym = node->sym;
  e->value = node->value;
  e->attrs = node->attrs;
  e->children = std::move(children);
  return e;
}

}  // namespace

std::optional<ExprPtr> SmallestTerm(const EGraph& egraph, ClassId id) {
  // Bottom-up fixpoint over AST sizes (classic e-graph extraction).
  std::unordered_map<ClassId, uint64_t> size;
  std::unordered_map<ClassId, const ENode*> best;
  std::vector<ClassId> classes = egraph.CanonicalClasses();
  bool changed = true;
  while (changed) {
    changed = false;
    for (ClassId c : classes) {
      uint64_t current = size.count(c) ? size[c] : kInf;
      for (const ENode& n : egraph.GetClass(c).nodes) {
        uint64_t total = 1;
        bool ok = true;
        for (ClassId child : n.children) {
          auto it = size.find(egraph.Find(child));
          if (it == size.end()) {
            ok = false;
            break;
          }
          total += it->second;
        }
        if (ok && total < current) {
          current = total;
          size[c] = total;
          best[c] = &n;
          changed = true;
        }
      }
    }
  }
  ClassId root = egraph.Find(id);
  if (!best.count(root)) return std::nullopt;
  return BuildTerm(egraph, best, root);
}

}  // namespace spores
