#include "src/egraph/term_extract.h"

#include <limits>

namespace spores {

namespace {

constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();

ExprPtr BuildTerm(const EGraph& egraph, const std::vector<NodeId>& best,
                  ClassId id) {
  const ENode& node = egraph.NodeAt(best[egraph.Find(id)]);
  std::vector<ExprPtr> children;
  children.reserve(node.children.size());
  for (ClassId c : node.children) {
    children.push_back(BuildTerm(egraph, best, c));
  }
  auto e = std::make_shared<Expr>();
  e->op = node.op;
  e->sym = node.sym;
  e->value = node.value;
  e->attrs = node.attrs;
  e->children = std::move(children);
  return e;
}

}  // namespace

std::optional<ExprPtr> SmallestTerm(const EGraph& egraph, ClassId id) {
  // Bottom-up fixpoint over AST sizes (classic e-graph extraction), with
  // flat per-class tables indexed by canonical ClassId.
  std::vector<uint64_t> size(egraph.NumClassSlots(), kInf);
  std::vector<NodeId> best(egraph.NumClassSlots(), kInvalidNodeId);
  std::vector<ClassId> classes = egraph.CanonicalClasses();
  bool changed = true;
  while (changed) {
    changed = false;
    for (ClassId c : classes) {
      uint64_t current = size[c];
      for (NodeId nid : egraph.GetClass(c).nodes) {
        const ENode& n = egraph.NodeAt(nid);
        uint64_t total = 1;
        bool ok = true;
        for (ClassId child : n.children) {
          uint64_t s = size[egraph.Find(child)];
          if (s == kInf) {
            ok = false;
            break;
          }
          total += s;
        }
        if (ok && total < current) {
          current = total;
          size[c] = total;
          best[c] = nid;
          changed = true;
        }
      }
    }
  }
  ClassId root = egraph.Find(id);
  if (best[root] == kInvalidNodeId) return std::nullopt;
  return BuildTerm(egraph, best, root);
}

}  // namespace spores
