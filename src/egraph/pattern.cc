#include "src/egraph/pattern.h"

#include <algorithm>

#include "src/util/check.h"

namespace spores {

ClassId Subst::ClassOf(Symbol var) const {
  const ClassId* found = FindClass(var);
  SPORES_CHECK_MSG(found != nullptr, var.str().c_str());
  return *found;
}

const std::vector<Symbol>& Subst::AttrsOf(Symbol var) const {
  const std::vector<Symbol>* found = FindAttrs(var);
  SPORES_CHECK_MSG(found != nullptr, var.str().c_str());
  return *found;
}

double Subst::ValueOf(Symbol var) const {
  const double* found = FindValue(var);
  SPORES_CHECK_MSG(found != nullptr, var.str().c_str());
  return *found;
}

const ClassId* Subst::FindClass(Symbol var) const {
  for (const auto& [v, id] : classes) {
    if (v == var) return &id;
  }
  return nullptr;
}

const std::vector<Symbol>* Subst::FindAttrs(Symbol var) const {
  for (const auto& [v, a] : attrs) {
    if (v == var) return &a;
  }
  return nullptr;
}

const double* Subst::FindValue(Symbol var) const {
  for (const auto& [v, d] : values) {
    if (v == var) return &d;
  }
  return nullptr;
}

namespace {
template <typename Vec>
void EraseKey(Vec& vec, Symbol var) {
  for (auto it = vec.begin(); it != vec.end(); ++it) {
    if (it->first == var) {
      vec.erase(it);
      return;
    }
  }
}
}  // namespace

void Subst::UnbindClass(Symbol var) { EraseKey(classes, var); }
void Subst::UnbindAttrs(Symbol var) { EraseKey(attrs, var); }
void Subst::UnbindValue(Symbol var) { EraseKey(values, var); }

PatternPtr Pattern::V(std::string_view name) {
  auto p = std::make_shared<Pattern>();
  p->kind = Kind::kClassVar;
  p->var = Symbol::Intern(name);
  return p;
}

PatternPtr Pattern::N(Op op, std::vector<PatternPtr> children) {
  auto p = std::make_shared<Pattern>();
  p->kind = Kind::kNode;
  p->op = op;
  p->children = std::move(children);
  return p;
}

PatternPtr Pattern::VarLeaf(std::string_view name) {
  auto p = std::make_shared<Pattern>();
  p->kind = Kind::kNode;
  p->op = Op::kVar;
  p->sym = Symbol::Intern(name);
  return p;
}

PatternPtr Pattern::ConstLeaf(double value) {
  auto p = std::make_shared<Pattern>();
  p->kind = Kind::kNode;
  p->op = Op::kConst;
  p->value = value;
  return p;
}

PatternPtr Pattern::ConstBind(std::string_view value_var) {
  auto p = std::make_shared<Pattern>();
  p->kind = Kind::kNode;
  p->op = Op::kConst;
  p->value_var = Symbol::Intern(value_var);
  return p;
}

PatternPtr Pattern::AggBind(std::string_view attrs_var, PatternPtr child) {
  auto p = std::make_shared<Pattern>();
  p->kind = Kind::kNode;
  p->op = Op::kAgg;
  p->attrs_var = Symbol::Intern(attrs_var);
  p->children = {std::move(child)};
  return p;
}

PatternPtr Pattern::AggExact(std::vector<Symbol> attrs, PatternPtr child) {
  auto p = std::make_shared<Pattern>();
  p->kind = Kind::kNode;
  p->op = Op::kAgg;
  std::sort(attrs.begin(), attrs.end());
  p->attrs = std::move(attrs);
  p->children = {std::move(child)};
  return p;
}

namespace {
void CollectVars(const Pattern& p, std::vector<Symbol>& out) {
  if (p.kind == Pattern::Kind::kClassVar) {
    out.push_back(p.var);
    return;
  }
  for (const PatternPtr& c : p.children) CollectVars(*c, out);
}
}  // namespace

std::vector<Symbol> Pattern::ClassVars() const {
  std::vector<Symbol> out;
  CollectVars(*this, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace spores
