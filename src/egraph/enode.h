// E-nodes: operators whose children point at e-classes rather than concrete
// subtrees. Payloads mirror ir::Expr (symbols for variables, doubles for
// scalar constants, attribute lists for Sum/bind/unbind).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/egraph/union_find.h"
#include "src/ir/ops.h"
#include "src/util/symbol.h"

namespace spores {

/// Dense index of an interned e-node in the EGraph's arena. Stable for the
/// lifetime of the graph: merges and repairs update the node in place, they
/// never move or delete it.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNodeId = static_cast<NodeId>(-1);

/// One operator node in the e-graph. Join/Union are binary here (assoc &
/// comm are rewrite rules, Sec 3.1 "expansive rules").
struct ENode {
  Op op;
  Symbol sym;                 ///< kVar name; kUnary function name.
  double value = 0.0;         ///< kConst literal.
  std::vector<Symbol> attrs;  ///< kAgg / kBind / kUnbind payload.
  std::vector<ClassId> children;

  friend bool operator==(const ENode& a, const ENode& b) {
    return a.op == b.op && a.sym == b.sym && a.value == b.value &&
           a.attrs == b.attrs && a.children == b.children;
  }

  uint64_t Hash() const {
    uint64_t h = static_cast<uint64_t>(op) * 0x9e3779b97f4a7c15ull;
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
    };
    mix(sym.id());
    uint64_t bits;
    __builtin_memcpy(&bits, &value, sizeof(bits));
    mix(bits * 0xff51afd7ed558ccdull);
    for (Symbol a : attrs) mix(a.id());
    for (ClassId c : children) mix(c);
    return h;
  }
};

struct ENodeHash {
  size_t operator()(const ENode& n) const { return n.Hash(); }
};

}  // namespace spores
