#include "src/egraph/rewrite.h"

#include "src/util/check.h"

namespace spores {

ClassId InstantiatePattern(EGraph& egraph, const Pattern& pattern,
                           const Subst& subst) {
  if (pattern.kind == Pattern::Kind::kClassVar) {
    return egraph.Find(subst.ClassOf(pattern.var));
  }
  ENode node;
  node.op = pattern.op;
  if (pattern.sym) node.sym = *pattern.sym;
  if (pattern.value) {
    node.value = *pattern.value;
  } else if (pattern.value_var) {
    node.value = subst.ValueOf(*pattern.value_var);
  }
  if (pattern.attrs) {
    node.attrs = *pattern.attrs;
  } else if (pattern.attrs_var) {
    node.attrs = subst.AttrsOf(*pattern.attrs_var);
  }
  node.children.reserve(pattern.children.size());
  for (const PatternPtr& c : pattern.children) {
    node.children.push_back(InstantiatePattern(egraph, *c, subst));
  }
  return egraph.Add(std::move(node));
}

Applier TemplateApplier(PatternPtr rhs) {
  return [rhs](EGraph& egraph, ClassId /*root*/,
               const Subst& subst) -> std::optional<ClassId> {
    return InstantiatePattern(egraph, *rhs, subst);
  };
}

Rewrite MakeRewrite(std::string name, PatternPtr lhs, PatternPtr rhs,
                    Guard guard, bool expansive) {
  Rewrite rw;
  rw.name = std::move(name);
  rw.lhs = std::move(lhs);
  rw.guard = std::move(guard);
  rw.applier = TemplateApplier(std::move(rhs));
  rw.expansive = expansive;
  return rw;
}

Rewrite MakeDynRewrite(std::string name, PatternPtr lhs, Applier applier,
                       Guard guard, bool expansive) {
  Rewrite rw;
  rw.name = std::move(name);
  rw.lhs = std::move(lhs);
  rw.guard = std::move(guard);
  rw.applier = std::move(applier);
  rw.expansive = expansive;
  return rw;
}

std::vector<PatternPtr> LhsPatterns(const std::vector<Rewrite>& rules) {
  std::vector<PatternPtr> out;
  out.reserve(rules.size());
  for (const Rewrite& r : rules) out.push_back(r.lhs);
  return out;
}

}  // namespace spores
