// Backtracking e-matcher: enumerates all substitutions under which a pattern
// is represented inside an e-class. The paper matches by graph traversal
// (Sec 3.1 notes Rete is unnecessary at this rule count); we do the same.
#pragma once

#include <vector>

#include "src/egraph/egraph.h"
#include "src/egraph/pattern.h"

namespace spores {

/// One match site: the e-class whose member matched, plus bindings.
struct Match {
  ClassId root;
  Subst subst;
};

/// All matches of `pattern` against class `id` (appended to `out`).
void MatchInClass(const EGraph& egraph, const Pattern& pattern, ClassId id,
                  std::vector<Match>* out);

/// All matches of `pattern` across every canonical class of the graph.
/// (Incremental saturation does not live here: the Runner restricts the
/// classes it calls MatchInClass on via exact ancestor-closure "affected"
/// sets — see Runner::Run.)
std::vector<Match> MatchAll(const EGraph& egraph, const Pattern& pattern);

}  // namespace spores
