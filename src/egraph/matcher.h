// E-matching: enumerates all substitutions under which a pattern is
// represented inside an e-class.
//
// The production path compiles the pattern to a flat instruction program and
// runs the pattern VM over the e-class op index (see pattern_program.h); the
// Runner goes further and matches its whole rule set through one shared
// multi-pattern trie. The original backtracking interpreter is kept below as
// Legacy* — a reference oracle for differential tests and bench identity
// gates, never on a hot path. Both enumerate matches in the same order.
#pragma once

#include <vector>

#include "src/egraph/egraph.h"
#include "src/egraph/pattern.h"

namespace spores {

/// One match site: the e-class whose member matched, plus bindings.
struct Match {
  ClassId root;
  Subst subst;
};

/// All matches of `pattern` against class `id` (appended to `out`).
/// Compiles the pattern per call — for repeated use compile once with
/// CompilePattern, or use the Runner's CompiledRuleSet.
void MatchInClass(const EGraph& egraph, const Pattern& pattern, ClassId id,
                  std::vector<Match>* out);

/// All matches of `pattern` across every canonical class of the graph; the
/// pattern is compiled once and canonicalization is hoisted out of the loop.
/// (Incremental saturation does not live here: the Runner restricts the
/// classes it matches via exact ancestor-closure "affected" sets — see
/// Runner::Run.)
std::vector<Match> MatchAll(const EGraph& egraph, const Pattern& pattern);

/// Reference oracle: the legacy backtracking interpreter (std::function
/// recursion over the raw class node lists). Kept only so tests and bench
/// gates can differential-check the compiled engine; O(class nodes) per
/// pattern node where the compiled path is O(op candidates).
void LegacyMatchInClass(const EGraph& egraph, const Pattern& pattern,
                        ClassId id, std::vector<Match>* out);
std::vector<Match> LegacyMatchAll(const EGraph& egraph,
                                  const Pattern& pattern);

}  // namespace spores
