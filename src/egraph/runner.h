// Saturation driver (Fig 8). Repeatedly matches every rule against the graph
// and applies the results, until convergence or a resource bound. Implements
// the two application strategies the paper evaluates (Sec 3.1 / Fig 16):
//
//  * kDepthFirst — apply every match of every rule each iteration; explodes
//    on expansive AC rules (the paper's GLM/SVM timeout).
//  * kSampling   — cap the number of matches applied per rule per iteration
//    ("matches = sample(matches, limit)"), which keeps every rule considered
//    equally often and preserves convergence with high probability.
#pragma once

#include <string>
#include <vector>

#include "src/egraph/rewrite.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace spores {

enum class SaturationStrategy { kDepthFirst, kSampling };

/// Why the runner stopped.
enum class StopReason {
  kSaturated,      ///< graph reached fixpoint: search space is exhaustive
  kIterationLimit,
  kNodeLimit,
  kTimeout,
};

struct RunnerConfig {
  SaturationStrategy strategy = SaturationStrategy::kSampling;
  size_t match_limit_per_rule = 32;   ///< sampling cap per rule per iteration
  size_t expansive_match_limit = 8;   ///< tighter cap for AC-style rules
  size_t max_iterations = 40;
  size_t max_nodes = 20000;
  double timeout_seconds = 2.5;       ///< the paper's compile-time budget
  uint64_t seed = 42;
};

struct RunnerReport {
  StopReason stop_reason = StopReason::kIterationLimit;
  size_t iterations = 0;
  size_t applied_matches = 0;
  size_t final_nodes = 0;
  size_t final_classes = 0;
  double seconds = 0.0;
  std::string ToString() const;
};

/// Runs equality saturation over `egraph` with `rules`.
class Runner {
 public:
  /// Owning form: the runner keeps its own copy of the rule set.
  Runner(EGraph* egraph, std::vector<Rewrite> rules,
         RunnerConfig config = RunnerConfig());

  /// Borrowing form: `*rules` must outlive the runner. Lets a long-lived
  /// session compile the rule set once and share it across saturations.
  Runner(EGraph* egraph, const std::vector<Rewrite>* rules,
         RunnerConfig config = RunnerConfig());

  // Non-copyable/movable: rules_ may point into owned_rules_.
  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Saturates until fixpoint or a bound; the graph is rebuilt on return.
  RunnerReport Run();

 private:
  EGraph* egraph_;
  std::vector<Rewrite> owned_rules_;
  const std::vector<Rewrite>* rules_;  ///< owned_rules_ or the borrowed set
  RunnerConfig config_;
  Rng rng_;
};

}  // namespace spores
