// Saturation driver (Fig 8). Repeatedly matches every rule against the graph
// and applies the results, until convergence or a resource bound. Implements
// the two application strategies the paper evaluates (Sec 3.1 / Fig 16):
//
//  * kDepthFirst — apply every match of every rule each iteration; explodes
//    on expansive AC rules (the paper's GLM/SVM timeout).
//  * kSampling   — cap the number of matches applied per rule per iteration
//    ("matches = sample(matches, limit)"), which keeps every rule considered
//    equally often and preserves convergence with high probability.
//
// On top of either strategy the runner schedules rule *searches* through a
// RuleScheduler: per-rule exponential backoff (a rule that overflows its
// match budget is banned for growing iteration spans) and incremental
// matching (a rule only revisits classes that changed since it last ran).
// Both under-approximate the match set, so convergence is confirmed by one
// unrestricted verify pass before kSaturated is reported.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/egraph/pattern_program.h"
#include "src/egraph/rewrite.h"
#include "src/egraph/scheduler.h"
#include "src/util/cancellation.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace spores {

enum class SaturationStrategy { kDepthFirst, kSampling };

/// Why the runner stopped.
enum class StopReason {
  /// Fixpoint (within the scope, if scoped): a full verify pass — every
  /// rule, every class, bans and incremental floors lifted — changed
  /// nothing. Expansive rules stay sample-capped even in the verify pass
  /// (resuming into a large non-converged region must not trigger an
  /// unsampled application burst), so exhaustiveness is exact for
  /// non-expansive rules and holds with high probability for expansive
  /// ones (Sec 4.3's argument).
  kSaturated,
  kIterationLimit,
  kNodeLimit,
  kTimeout,
  /// The verify-pass budget ran out while restricted iterations kept the
  /// graph stable: no more progress is reachable without another full
  /// re-match, and those stopped paying off.
  kStalled,
  /// RunnerConfig::cancel was triggered: the caller gave up on this work
  /// (a served query's future was cancelled). Observed at the same
  /// checkpoints as the timeout, so in-flight saturation stops within one
  /// check interval instead of running out its full budget.
  kCancelled,
};

struct RunnerConfig {
  SaturationStrategy strategy = SaturationStrategy::kSampling;
  size_t match_limit_per_rule = 32;   ///< sampling cap per rule per iteration
  size_t expansive_match_limit = 8;   ///< tighter cap for AC-style rules
  size_t max_iterations = 40;
  size_t max_nodes = 20000;
  /// When true, max_nodes bounds *growth* over the graph's size at Run()
  /// entry rather than the absolute size — the right semantics when
  /// resuming saturation on a session's long-lived graph.
  bool node_limit_is_growth = false;
  double timeout_seconds = 2.5;       ///< the paper's compile-time budget
  /// External cancellation, polled wherever the timeout is polled; when
  /// triggered the run stops with kCancelled. Inert by default (serving
  /// passes each job's token so Cancel() stops in-flight saturation).
  CancelToken cancel;
  uint64_t seed = 42;
  bool enable_backoff = true;         ///< rule-level exponential backoff
  bool incremental_matching = true;   ///< skip classes unchanged since last search
  SchedulerConfig scheduler;          ///< backoff budgets / ban spans
  /// When set, matching only roots in classes reachable from this class
  /// (recomputed every iteration as the region grows). A session resuming
  /// saturation on its shared graph scopes the run to the current query so
  /// other queries' regions neither consume this query's budgets nor get
  /// churned further.
  ClassId scope_root = kInvalidClassId;
  /// With scope_root: matching additionally skips classes outside the
  /// ancestor closure of classes changed since this floor (the session
  /// passes the graph version at which the query was added). Resuming into
  /// a region an earlier budget-bounded run left mid-churn then works the
  /// new query's delta cone instead of pouring another full budget into
  /// the old churn. The floor bounds verify passes too, so for scoped runs
  /// kSaturated is a fixpoint claim about the delta cone given the
  /// existing region — which coincides with region saturation whenever the
  /// region itself had converged.
  uint64_t scope_version_floor = 0;
  /// Full re-match passes allowed for convergence confirmation before the
  /// runner stops with kStalled.
  size_t max_verify_passes = 4;
  /// Oracle mode for differential gates: match with the legacy backtracking
  /// interpreter (one pattern at a time over raw class node lists) instead
  /// of the compiled multi-pattern trie. Produces the same per-rule match
  /// sequences — so converging runs are trajectory-identical — just slower.
  /// Test/bench use only.
  bool use_legacy_matcher = false;
};

/// Per-rule outcome counters for one Run().
struct RuleRunStats {
  std::string name;
  size_t matched = 0;  ///< match sites found (pre-guard, pre-sampling)
  size_t applied = 0;  ///< applications that changed the graph
  size_t bans = 0;     ///< times the backoff scheduler banned the rule
};

struct RunnerReport {
  StopReason stop_reason = StopReason::kIterationLimit;
  size_t iterations = 0;
  size_t applied_matches = 0;
  size_t final_nodes = 0;
  size_t final_classes = 0;
  double seconds = 0.0;
  /// Scheduler behavior: searches skipped while banned, bans issued, and
  /// full unrestricted passes run to confirm convergence.
  size_t backoff_skips = 0;
  size_t rules_banned = 0;
  size_t verify_passes = 0;
  std::vector<RuleRunStats> rules;  ///< indexed like the rule vector
  std::string ToString() const;
};

/// Runs equality saturation over `egraph` with `rules`.
class Runner {
 public:
  /// Owning form: the runner keeps its own copy of the rule set.
  Runner(EGraph* egraph, std::vector<Rewrite> rules,
         RunnerConfig config = RunnerConfig());

  /// Borrowing form: `*rules` must outlive the runner. Lets a long-lived
  /// session compile the rule set once and share it across saturations.
  /// `scheduler` (optional, must match the rule count) persists per-rule
  /// incremental-search state across Run() calls on the same graph; when
  /// null the runner owns a fresh one. `compiled` (optional, must be built
  /// from the same rule vector) is the shared multi-pattern trie — a session
  /// compiles it once next to the rules; when null the runner compiles its
  /// own.
  Runner(EGraph* egraph, const std::vector<Rewrite>* rules,
         RunnerConfig config = RunnerConfig(),
         RuleScheduler* scheduler = nullptr,
         const CompiledRuleSet* compiled = nullptr);

  // Non-copyable/movable: rules_ may point into owned_rules_.
  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Saturates until fixpoint or a bound; the graph is rebuilt on return.
  RunnerReport Run();

 private:
  EGraph* egraph_;
  std::vector<Rewrite> owned_rules_;
  const std::vector<Rewrite>* rules_;  ///< owned_rules_ or the borrowed set
  RunnerConfig config_;
  Rng rng_;
  std::unique_ptr<RuleScheduler> owned_scheduler_;
  RuleScheduler* scheduler_;  ///< owned_scheduler_ or the borrowed one
  std::unique_ptr<CompiledRuleSet> owned_compiled_;
  const CompiledRuleSet* compiled_;  ///< owned_compiled_ or the borrowed one
  MatchBank bank_;  ///< per-rule match buffers, reused across iterations
};

}  // namespace spores
