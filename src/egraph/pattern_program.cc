#include "src/egraph/pattern_program.h"

#include <algorithm>

#include "src/util/check.h"

namespace spores {

bool operator==(const PatternInstr& x, const PatternInstr& y) {
  return x.kind == y.kind && x.in == y.in && x.out == y.out &&
         x.num_children == y.num_children && x.flags == y.flags &&
         x.op == y.op && x.sym == y.sym && x.value == y.value &&
         x.value_slot == y.value_slot && x.attrs_slot == y.attrs_slot &&
         x.attrs == y.attrs && x.a == y.a && x.b == y.b;
}

namespace {

struct Compiler {
  PatternProgram prog;

  // Emits instructions for `p`, whose class is held in regs[reg]. DFS
  // left-to-right with sequential register/slot allocation: the instruction
  // order reproduces the legacy backtracking matcher's loop nesting exactly
  // (binds before payload compares before children), so match enumeration
  // order is preserved, and structurally equal pattern prefixes compile to
  // equal instruction prefixes (what the trie's sharing keys on).
  void Compile(const Pattern& p, RegId reg) {
    if (p.kind == Pattern::Kind::kClassVar) {
      for (const auto& [sym, r] : prog.class_legend) {
        if (sym == p.var) {
          PatternInstr cmp;
          cmp.kind = PatternInstr::Kind::kCompareReg;
          cmp.a = r;
          cmp.b = reg;
          prog.instrs.push_back(std::move(cmp));
          return;
        }
      }
      prog.class_legend.emplace_back(p.var, reg);
      return;
    }

    PatternInstr ins;
    ins.kind = PatternInstr::Kind::kBind;
    ins.in = reg;
    ins.op = p.op;
    ins.out = prog.num_regs;
    SPORES_CHECK_LT(p.children.size(), 256u);
    ins.num_children = static_cast<uint8_t>(p.children.size());
    prog.num_regs = static_cast<uint16_t>(prog.num_regs + p.children.size());
    if (p.sym) {
      ins.flags |= PatternInstr::kReqSym;
      ins.sym = *p.sym;
    }
    if (p.value) {
      ins.flags |= PatternInstr::kReqValue;
      ins.value = *p.value;
    }
    if (p.attrs) {
      ins.flags |= PatternInstr::kReqAttrs;
      ins.attrs = *p.attrs;
    }

    // Payload variables always record into a fresh slot; a repeated variable
    // additionally compares against its first slot, at the same position the
    // interpreter checked consistency (before any child is matched).
    std::vector<PatternInstr> compares;
    if (p.value_var) {
      SlotId slot = prog.num_value_slots++;
      ins.flags |= PatternInstr::kBindValue;
      ins.value_slot = slot;
      const SlotId* first = nullptr;
      for (const auto& [sym, s] : prog.value_legend) {
        if (sym == *p.value_var) first = &s;
      }
      if (first) {
        PatternInstr cmp;
        cmp.kind = PatternInstr::Kind::kCompareValue;
        cmp.a = *first;
        cmp.b = slot;
        compares.push_back(std::move(cmp));
      } else {
        prog.value_legend.emplace_back(*p.value_var, slot);
      }
    }
    if (p.attrs_var) {
      SlotId slot = prog.num_attr_slots++;
      ins.flags |= PatternInstr::kBindAttrs;
      ins.attrs_slot = slot;
      const SlotId* first = nullptr;
      for (const auto& [sym, s] : prog.attr_legend) {
        if (sym == *p.attrs_var) first = &s;
      }
      if (first) {
        PatternInstr cmp;
        cmp.kind = PatternInstr::Kind::kCompareAttrs;
        cmp.a = *first;
        cmp.b = slot;
        compares.push_back(std::move(cmp));
      } else {
        prog.attr_legend.emplace_back(*p.attrs_var, slot);
      }
    }

    RegId out = ins.out;
    prog.instrs.push_back(std::move(ins));
    for (PatternInstr& cmp : compares) prog.instrs.push_back(std::move(cmp));
    for (size_t i = 0; i < p.children.size(); ++i) {
      Compile(*p.children[i], static_cast<RegId>(out + i));
    }
  }
};

// Executes one instruction; invokes `cont` for every way it can succeed.
// Templated so the trie walk and the single-program runner share it without
// std::function overhead on the per-candidate path.
template <typename Cont>
inline void ExecInstr(const EGraph& egraph, const PatternInstr& ins,
                      MachineScratch& s, Cont&& cont) {
  switch (ins.kind) {
    case PatternInstr::Kind::kBind: {
      ClassId c = egraph.Find(s.regs[ins.in]);
      const std::vector<NodeId>* bucket = egraph.GetClass(c).NodesWith(ins.op);
      if (!bucket) return;
      for (NodeId nid : *bucket) {
        const ENode& n = egraph.NodeAt(nid);
        if (n.children.size() != ins.num_children) continue;
        if ((ins.flags & PatternInstr::kReqSym) && n.sym != ins.sym) continue;
        if ((ins.flags & PatternInstr::kReqValue) && n.value != ins.value) {
          continue;
        }
        if ((ins.flags & PatternInstr::kReqAttrs) && n.attrs != ins.attrs) {
          continue;
        }
        if (ins.flags & PatternInstr::kBindValue) {
          s.values[ins.value_slot] = n.value;
        }
        if (ins.flags & PatternInstr::kBindAttrs) {
          s.attr_nodes[ins.attrs_slot] = nid;
        }
        for (uint8_t i = 0; i < ins.num_children; ++i) {
          s.regs[ins.out + i] = n.children[i];
        }
        cont();
      }
      return;
    }
    case PatternInstr::Kind::kCompareReg:
      if (egraph.Find(s.regs[ins.a]) == egraph.Find(s.regs[ins.b])) cont();
      return;
    case PatternInstr::Kind::kCompareValue:
      if (s.values[ins.a] == s.values[ins.b]) cont();
      return;
    case PatternInstr::Kind::kCompareAttrs:
      if (egraph.NodeAt(s.attr_nodes[ins.a]).attrs ==
          egraph.NodeAt(s.attr_nodes[ins.b]).attrs) {
        cont();
      }
      return;
  }
}

void ExecFrom(const EGraph& egraph, const std::vector<PatternInstr>& instrs,
              size_t ip, MachineScratch& s,
              const std::function<void()>& yield) {
  if (ip == instrs.size()) {
    yield();
    return;
  }
  ExecInstr(egraph, instrs[ip], s,
            [&] { ExecFrom(egraph, instrs, ip + 1, s, yield); });
}

}  // namespace

PatternProgram CompilePattern(const Pattern& pattern) {
  Compiler c;
  c.Compile(pattern, 0);
  return std::move(c.prog);
}

void RunProgram(const EGraph& egraph, const PatternProgram& prog,
                MachineScratch& scratch, const std::function<void()>& yield) {
  scratch.Ensure(prog);
  ExecFrom(egraph, prog.instrs, 0, scratch, yield);
}

Subst ScratchToSubst(const EGraph& egraph, const PatternProgram& prog,
                     const MachineScratch& scratch) {
  Subst out;
  out.classes.reserve(prog.class_legend.size());
  for (const auto& [sym, reg] : prog.class_legend) {
    out.BindClass(sym, egraph.Find(scratch.regs[reg]));
  }
  out.values.reserve(prog.value_legend.size());
  for (const auto& [sym, slot] : prog.value_legend) {
    out.BindValue(sym, scratch.values[slot]);
  }
  out.attrs.reserve(prog.attr_legend.size());
  for (const auto& [sym, slot] : prog.attr_legend) {
    out.BindAttrs(sym, egraph.NodeAt(scratch.attr_nodes[slot]).attrs);
  }
  return out;
}

CompiledRuleSet::CompiledRuleSet(const std::vector<PatternPtr>& lhs_patterns) {
  const size_t n = lhs_patterns.size();
  programs_.reserve(n);
  for (const PatternPtr& p : lhs_patterns) {
    programs_.push_back(CompilePattern(*p));
  }
  for (size_t r = 0; r < n; ++r) {
    const PatternProgram& prog = programs_[r];
    total_instrs_ += prog.instrs.size();
    max_regs_ = std::max(max_regs_, prog.num_regs);
    max_value_slots_ = std::max(max_value_slots_, prog.num_value_slots);
    max_attr_slots_ = std::max(max_attr_slots_, prog.num_attr_slots);
    if (prog.instrs.empty()) {
      // Bare ?x: matches every class; handled outside the trie.
      var_rules_.push_back(static_cast<uint32_t>(r));
      continue;
    }
    // Thread the program into the trie, sharing the longest existing
    // instruction prefix. `parent` == UINT32_MAX denotes the root level.
    uint32_t parent = UINT32_MAX;
    uint32_t cur = UINT32_MAX;
    for (const PatternInstr& ins : prog.instrs) {
      std::vector<uint32_t>& level =
          parent == UINT32_MAX ? roots_ : nodes_[parent].children;
      uint32_t found = UINT32_MAX;
      for (uint32_t idx : level) {
        if (nodes_[idx].instr == ins) {
          found = idx;
          break;
        }
      }
      if (found == UINT32_MAX) {
        found = static_cast<uint32_t>(nodes_.size());
        TrieNode tn;
        tn.instr = ins;
        tn.subtree = RuleMask(n);
        nodes_.push_back(std::move(tn));
        // Re-fetch: push_back may have reallocated nodes_.
        (parent == UINT32_MAX ? roots_ : nodes_[parent].children)
            .push_back(found);
      }
      nodes_[found].subtree.Set(r);
      parent = cur = found;
    }
    nodes_[cur].yields.push_back(static_cast<uint32_t>(r));
  }
}

void CompiledRuleSet::Emit(const EGraph& egraph, uint32_t rule,
                           MatchBank* bank) const {
  const PatternProgram& p = programs_[rule];
  MatchBank::RuleMatches& rm = bank->rules[rule];
  const MachineScratch& s = bank->scratch;
  rm.roots.push_back(egraph.Find(s.regs[0]));
  for (const auto& [sym, reg] : p.class_legend) {
    rm.class_slots.push_back(egraph.Find(s.regs[reg]));
  }
  for (const auto& [sym, slot] : p.value_legend) {
    rm.value_slots.push_back(s.values[slot]);
  }
  for (const auto& [sym, slot] : p.attr_legend) {
    rm.attr_nodes.push_back(s.attr_nodes[slot]);
  }
}

void CompiledRuleSet::Walk(const EGraph& egraph, uint32_t node_idx,
                           const RuleMask& active, MatchBank* bank) const {
  const TrieNode& tn = nodes_[node_idx];
  if (!tn.subtree.Intersects(active)) return;
  ExecInstr(egraph, tn.instr, bank->scratch, [&] {
    for (uint32_t r : tn.yields) {
      if (active.Test(r)) Emit(egraph, r, bank);
    }
    for (uint32_t child : tn.children) Walk(egraph, child, active, bank);
  });
}

void CompiledRuleSet::MatchClass(const EGraph& egraph, ClassId cls,
                                 const RuleMask& active,
                                 MatchBank* bank) const {
  bank->scratch.Ensure(max_regs_, max_value_slots_, max_attr_slots_);
  bank->scratch.regs[0] = egraph.Find(cls);
  for (uint32_t r : var_rules_) {
    if (active.Test(r)) Emit(egraph, r, bank);
  }
  for (uint32_t root : roots_) Walk(egraph, root, active, bank);
}

Subst CompiledRuleSet::MatchSubst(const EGraph& egraph, size_t rule,
                                  const MatchBank& bank, size_t index) const {
  const PatternProgram& p = programs_[rule];
  const MatchBank::RuleMatches& rm = bank.rules[rule];
  Subst out;
  const size_t nc = p.class_legend.size();
  const size_t nv = p.value_legend.size();
  const size_t na = p.attr_legend.size();
  out.classes.reserve(nc);
  for (size_t i = 0; i < nc; ++i) {
    out.BindClass(p.class_legend[i].first, rm.class_slots[index * nc + i]);
  }
  out.values.reserve(nv);
  for (size_t i = 0; i < nv; ++i) {
    out.BindValue(p.value_legend[i].first, rm.value_slots[index * nv + i]);
  }
  out.attrs.reserve(na);
  for (size_t i = 0; i < na; ++i) {
    out.BindAttrs(p.attr_legend[i].first,
                  egraph.NodeAt(rm.attr_nodes[index * na + i]).attrs);
  }
  return out;
}

}  // namespace spores
