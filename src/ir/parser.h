// Recursive-descent parser for a DML/R-like surface syntax:
//
//   expr   := addsub
//   addsub := muldiv  (('+'|'-') muldiv)*
//   muldiv := matmul  (('*'|'/') matmul)*
//   matmul := unary   ('%*%' unary)*
//   unary  := '-' unary | power
//   power  := atom ('^' unary)?              (right associative)
//   atom   := number | ident | ident '(' expr (',' expr)* ')' | '(' expr ')'
//
// Recognized functions: t, sum, rowSums, colSums, sprop, wsloss, and the
// elementwise unaries exp/log/sqrt/sigmoid/sign/abs.
#pragma once

#include <string_view>

#include "src/ir/expr.h"
#include "src/util/status.h"

namespace spores {

/// Parses `text` into an LA expression tree.
StatusOr<ExprPtr> ParseExpr(std::string_view text);

}  // namespace spores
