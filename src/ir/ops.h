// Operator vocabulary for both the Linear Algebra (LA) surface language and
// the Relational Algebra (RA) intermediate representation (Table 1 of the
// paper). A single enum keeps the e-graph language uniform: saturation may
// hold LA and RA nodes side by side (Sec 3.3 allows translation rules inside
// saturation).
#pragma once

#include <cstdint>
#include <string_view>

namespace spores {

enum class Op : uint8_t {
  // ---- Leaves ----
  kVar,        ///< Named input matrix/vector/scalar; payload: Symbol.
  kConst,      ///< Scalar literal; payload: double.

  // ---- LA operators (Table 1 plus SystemML conveniences) ----
  kMatMul,     ///< A %*% B.
  kElemMul,    ///< A * B, elementwise with broadcast.
  kElemPlus,   ///< A + B, elementwise with broadcast.
  kElemMinus,  ///< A - B, elementwise with broadcast.
  kElemDiv,    ///< A / B, elementwise with broadcast.
  kPow,        ///< A ^ k, elementwise; exponent is a kConst child.
  kTranspose,  ///< t(A).
  kRowAgg,     ///< rowSums(A): M x N -> M x 1.
  kColAgg,     ///< colSums(A): M x N -> 1 x N.
  kSumAgg,     ///< sum(A): M x N -> 1 x 1.
  kUnary,      ///< Elementwise function exp/log/sqrt/sigmoid/sign/abs;
               ///< payload: Symbol function name.
  kNeg,        ///< -A (unary minus).

  // ---- Fused LA operators (SystemML, Sec 3.3) ----
  kSProp,      ///< sprop(P) = P * (1 - P), one intermediate.
  kWsLoss,     ///< wsloss(X, U, V) = sum((X - U V^T)^2) streamed over nnz(X).

  // ---- RA operators (Table 1) ----
  kJoin,       ///< n-ary natural join; multiplies multiplicities.
  kUnion,      ///< n-ary union; adds multiplicities.
  kAgg,        ///< Sum_{attrs} child; payload: sorted bound-attribute list.
  kBind,       ///< [i,j]A : matrix -> relation; payload: attribute list.
  kUnbind,     ///< [-i,-j]A : relation -> matrix; payload: attribute list.
};

/// True for the LA operator subset (translatable to runtime kernels).
bool IsLaOp(Op op);

/// True for the RA operator subset (join/union/agg/bind/unbind).
bool IsRaOp(Op op);

/// True if the operator's children are unordered and the op is
/// associative-commutative (kJoin, kUnion).
inline bool IsAcOp(Op op) { return op == Op::kJoin || op == Op::kUnion; }

/// Stable lowercase name used by printers and hashing.
std::string_view OpName(Op op);

inline bool IsLaOp(Op op) {
  switch (op) {
    case Op::kVar: case Op::kConst: case Op::kMatMul: case Op::kElemMul:
    case Op::kElemPlus: case Op::kElemMinus: case Op::kElemDiv: case Op::kPow:
    case Op::kTranspose: case Op::kRowAgg: case Op::kColAgg: case Op::kSumAgg:
    case Op::kUnary: case Op::kNeg: case Op::kSProp: case Op::kWsLoss:
      return true;
    default:
      return false;
  }
}

inline bool IsRaOp(Op op) {
  switch (op) {
    case Op::kJoin: case Op::kUnion: case Op::kAgg: case Op::kBind:
    case Op::kUnbind: case Op::kVar: case Op::kConst:
      return true;
    default:
      return false;
  }
}

inline std::string_view OpName(Op op) {
  switch (op) {
    case Op::kVar: return "var";
    case Op::kConst: return "const";
    case Op::kMatMul: return "mmul";
    case Op::kElemMul: return "mul";
    case Op::kElemPlus: return "plus";
    case Op::kElemMinus: return "minus";
    case Op::kElemDiv: return "div";
    case Op::kPow: return "pow";
    case Op::kTranspose: return "t";
    case Op::kRowAgg: return "rowSums";
    case Op::kColAgg: return "colSums";
    case Op::kSumAgg: return "sum";
    case Op::kUnary: return "unary";
    case Op::kNeg: return "neg";
    case Op::kSProp: return "sprop";
    case Op::kWsLoss: return "wsloss";
    case Op::kJoin: return "join";
    case Op::kUnion: return "union";
    case Op::kAgg: return "agg";
    case Op::kBind: return "bind";
    case Op::kUnbind: return "unbind";
  }
  return "?";
}

}  // namespace spores
