// Immutable expression trees (shared-pointer DAGs) for LA and RA terms, plus
// the input catalog describing matrix dimensions and sparsity. These trees
// are the currency between the parser, the e-graph, the canonicalizer, the
// optimizers, and the runtime executor.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/ops.h"
#include "src/util/status.h"
#include "src/util/symbol.h"

namespace spores {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One immutable expression node. Payload fields are only meaningful for the
/// ops documented next to them; unused payloads stay default-initialized.
class Expr {
 public:
  Op op;
  Symbol sym;                 ///< kVar name; kUnary function name.
  double value = 0.0;         ///< kConst literal.
  std::vector<Symbol> attrs;  ///< kAgg bound attrs (sorted);
                              ///< kBind/kUnbind ordered attribute lists.
  std::vector<ExprPtr> children;

  /// Structural equality (payloads and children, recursively).
  bool Equals(const Expr& other) const;

  /// Structural hash consistent with Equals, memoized per node (shared
  /// subtrees hash once, not once per occurrence). Treat an Expr as
  /// immutable after its first Hash() call — mutation would leave the
  /// cached value stale.
  uint64_t Hash() const;

  /// Number of nodes in the tree (shared nodes counted once per occurrence).
  size_t TreeSize() const;

  // ---- Factory helpers (the builder DSL) ----
  static ExprPtr Var(Symbol name);
  static ExprPtr Var(std::string_view name) {
    return Var(Symbol::Intern(name));
  }
  static ExprPtr Const(double v);
  static ExprPtr MatMul(ExprPtr a, ExprPtr b);
  static ExprPtr Mul(ExprPtr a, ExprPtr b);
  static ExprPtr Plus(ExprPtr a, ExprPtr b);
  static ExprPtr Minus(ExprPtr a, ExprPtr b);
  static ExprPtr Div(ExprPtr a, ExprPtr b);
  static ExprPtr Pow(ExprPtr a, double exponent);
  static ExprPtr Transpose(ExprPtr a);
  static ExprPtr RowSums(ExprPtr a);
  static ExprPtr ColSums(ExprPtr a);
  static ExprPtr Sum(ExprPtr a);
  static ExprPtr Neg(ExprPtr a);
  static ExprPtr Unary(std::string_view fn, ExprPtr a);
  static ExprPtr SProp(ExprPtr a);
  static ExprPtr WsLoss(ExprPtr x, ExprPtr u, ExprPtr v);

  // RA constructors. Join/Union are n-ary; Make sorts AC children by hash to
  // give a stable structural form.
  static ExprPtr Join(std::vector<ExprPtr> children);
  static ExprPtr Union(std::vector<ExprPtr> children);
  static ExprPtr Agg(std::vector<Symbol> attrs, ExprPtr child);
  static ExprPtr Bind(std::vector<Symbol> attrs, ExprPtr child);
  static ExprPtr Unbind(std::vector<Symbol> attrs, ExprPtr child);

  static ExprPtr Make(Op op, Symbol sym, double value,
                      std::vector<Symbol> attrs, std::vector<ExprPtr> children);

 private:
  /// Lazily filled by Hash(); 0 means "not computed" (Hash remaps a
  /// genuine 0 to 1). Atomic so query trees may be shared across
  /// per-thread sessions: racing computations store the same value.
  mutable std::atomic<uint64_t> hash_cache_{0};
};

/// Shape of a matrix (scalars are 1x1, column vectors Nx1, row vectors 1xN).
struct Shape {
  int64_t rows = 1;
  int64_t cols = 1;

  int64_t size() const { return rows * cols; }
  bool IsScalar() const { return rows == 1 && cols == 1; }
  bool IsColVector() const { return cols == 1; }
  bool IsRowVector() const { return rows == 1; }
  friend bool operator==(const Shape&, const Shape&) = default;
};

/// Catalog entry for one named input.
struct MatrixMeta {
  Shape shape;
  double sparsity = 1.0;  ///< nnz / size in [0, 1]; 1.0 == dense.
};

/// Maps input names to their dimensions and sparsity estimates; the optimizer
/// and runtime consult this the way SPORES consults SystemML's matrix
/// characteristics.
class Catalog {
 public:
  void Register(std::string_view name, int64_t rows, int64_t cols,
                double sparsity = 1.0);
  bool Has(Symbol name) const { return meta_.count(name) > 0; }
  const MatrixMeta& Get(Symbol name) const;
  /// All registered inputs (unordered); used for catalog fingerprints.
  const std::unordered_map<Symbol, MatrixMeta>& entries() const {
    return meta_;
  }

 private:
  std::unordered_map<Symbol, MatrixMeta> meta_;
};

/// Order-independent fingerprint of every registered input's name, shape
/// and sparsity. Analysis invariants (Fig 12 sparsity) and costs read the
/// catalog, so anything cached per catalog — a session's shared e-graph,
/// the serving router's fallback route — keys on this.
std::string CatalogSignature(const Catalog& catalog);

/// Infers the output shape of an LA expression against `catalog`.
/// Fails on dimension mismatches or non-LA operators.
StatusOr<Shape> InferShape(const ExprPtr& expr, const Catalog& catalog);

/// All distinct kVar names referenced by `expr`, sorted. Shared subtrees are
/// visited once; used for catalog fingerprints (plan caching) and input
/// validation.
std::vector<Symbol> CollectVars(const ExprPtr& expr);

/// Deep structural comparison through ExprPtr.
inline bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return a->Equals(*b);
}

}  // namespace spores
