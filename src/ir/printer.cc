#include "src/ir/printer.h"

#include <cmath>
#include <sstream>

namespace spores {

namespace {

// Precedence levels for infix printing; higher binds tighter.
int Precedence(Op op) {
  switch (op) {
    case Op::kElemPlus:
    case Op::kElemMinus:
      return 1;
    case Op::kElemMul:
    case Op::kElemDiv:
      return 2;
    case Op::kMatMul:
      return 3;
    case Op::kNeg:
      return 4;
    case Op::kPow:
      return 5;
    default:
      return 6;  // atoms / function-call syntax never need parens
  }
}

std::string FormatNumber(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

void AttrList(const std::vector<Symbol>& attrs, std::ostringstream& os) {
  os << '[';
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i) os << ',';
    os << attrs[i].str();
  }
  os << ']';
}

void Print(const ExprPtr& e, std::ostringstream& os, int parent_prec) {
  int prec = Precedence(e->op);
  auto infix = [&](const char* sym) {
    bool parens = prec < parent_prec;
    if (parens) os << '(';
    Print(e->children[0], os, prec);
    os << sym;
    // Left-associative: right child printed at prec+1 so nested same-level
    // ops on the right keep their parens.
    Print(e->children[1], os, prec + 1);
    if (parens) os << ')';
  };
  auto call = [&](const char* name) {
    os << name << '(';
    for (size_t i = 0; i < e->children.size(); ++i) {
      if (i) os << ", ";
      Print(e->children[i], os, 0);
    }
    os << ')';
  };
  switch (e->op) {
    case Op::kVar: os << e->sym.str(); break;
    case Op::kConst: os << FormatNumber(e->value); break;
    case Op::kMatMul: infix(" %*% "); break;
    case Op::kElemMul: infix(" * "); break;
    case Op::kElemPlus: infix(" + "); break;
    case Op::kElemMinus: infix(" - "); break;
    case Op::kElemDiv: infix(" / "); break;
    case Op::kPow: infix(" ^ "); break;
    case Op::kTranspose: call("t"); break;
    case Op::kRowAgg: call("rowSums"); break;
    case Op::kColAgg: call("colSums"); break;
    case Op::kSumAgg: call("sum"); break;
    case Op::kUnary: call(e->sym.str().c_str()); break;
    case Op::kNeg: {
      bool parens = prec < parent_prec;
      if (parens) os << '(';
      os << '-';
      Print(e->children[0], os, prec);
      if (parens) os << ')';
      break;
    }
    case Op::kSProp: call("sprop"); break;
    case Op::kWsLoss: call("wsloss"); break;
    case Op::kJoin: call("join"); break;
    case Op::kUnion: call("union"); break;
    case Op::kAgg: {
      os << "agg";
      AttrList(e->attrs, os);
      os << '(';
      Print(e->children[0], os, 0);
      os << ')';
      break;
    }
    case Op::kBind: {
      os << "bind";
      AttrList(e->attrs, os);
      os << '(';
      Print(e->children[0], os, 0);
      os << ')';
      break;
    }
    case Op::kUnbind: {
      os << "unbind";
      AttrList(e->attrs, os);
      os << '(';
      Print(e->children[0], os, 0);
      os << ')';
      break;
    }
  }
}

}  // namespace

std::string ToString(const ExprPtr& expr) {
  std::ostringstream os;
  Print(expr, os, 0);
  return os.str();
}

}  // namespace spores
