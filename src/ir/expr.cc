#include "src/ir/expr.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string_view>
#include <unordered_set>

namespace spores {

namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  // 64-bit boost-style mix.
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4));
}

uint64_t HashDouble(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits * 0xff51afd7ed558ccdull;
}

}  // namespace

bool Expr::Equals(const Expr& other) const {
  if (op != other.op || sym != other.sym || value != other.value ||
      attrs != other.attrs || children.size() != other.children.size()) {
    return false;
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (!ExprEquals(children[i], other.children[i])) return false;
  }
  return true;
}

uint64_t Expr::Hash() const {
  // Memoized per node: without this, hashing is quadratic in depth for
  // chains and exponential for self-nested DAGs (every caller — AC child
  // ordering, translation memo keys, attribute naming — re-walks the
  // subtree). Safe under concurrent first calls from different threads
  // (serving shards share query trees): the hash is a pure function of the
  // immutable node, so racing computations store the same value and
  // relaxed ordering suffices — a reader either sees 0 and recomputes or
  // sees the one possible nonzero value.
  uint64_t cached = hash_cache_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  // Symbols contribute their *strings*, not their interning ids: this hash
  // orders AC children and names translation attributes, so it must be a
  // pure function of content — interning order varies with process history.
  auto sym_hash = [](Symbol s) {
    return static_cast<uint64_t>(std::hash<std::string_view>{}(s.str()));
  };
  uint64_t h = static_cast<uint64_t>(op) * 0x9e3779b97f4a7c15ull;
  h = HashCombine(h, sym_hash(sym));
  h = HashCombine(h, HashDouble(value));
  for (Symbol a : attrs) h = HashCombine(h, sym_hash(a));
  for (const ExprPtr& c : children) h = HashCombine(h, c->Hash());
  if (h == 0) h = 1;  // 0 is the "not computed" sentinel
  hash_cache_.store(h, std::memory_order_relaxed);
  return h;
}

size_t Expr::TreeSize() const {
  size_t n = 1;
  for (const ExprPtr& c : children) n += c->TreeSize();
  return n;
}

ExprPtr Expr::Make(Op op, Symbol sym, double value, std::vector<Symbol> attrs,
                   std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>();
  e->op = op;
  e->sym = sym;
  e->value = value;
  e->attrs = std::move(attrs);
  e->children = std::move(children);
  return e;
}

ExprPtr Expr::Var(Symbol name) { return Make(Op::kVar, name, 0, {}, {}); }
ExprPtr Expr::Const(double v) { return Make(Op::kConst, Symbol(), v, {}, {}); }

ExprPtr Expr::MatMul(ExprPtr a, ExprPtr b) {
  return Make(Op::kMatMul, Symbol(), 0, {}, {std::move(a), std::move(b)});
}
ExprPtr Expr::Mul(ExprPtr a, ExprPtr b) {
  return Make(Op::kElemMul, Symbol(), 0, {}, {std::move(a), std::move(b)});
}
ExprPtr Expr::Plus(ExprPtr a, ExprPtr b) {
  return Make(Op::kElemPlus, Symbol(), 0, {}, {std::move(a), std::move(b)});
}
ExprPtr Expr::Minus(ExprPtr a, ExprPtr b) {
  return Make(Op::kElemMinus, Symbol(), 0, {}, {std::move(a), std::move(b)});
}
ExprPtr Expr::Div(ExprPtr a, ExprPtr b) {
  return Make(Op::kElemDiv, Symbol(), 0, {}, {std::move(a), std::move(b)});
}
ExprPtr Expr::Pow(ExprPtr a, double exponent) {
  return Make(Op::kPow, Symbol(), 0, {}, {std::move(a), Const(exponent)});
}
ExprPtr Expr::Transpose(ExprPtr a) {
  return Make(Op::kTranspose, Symbol(), 0, {}, {std::move(a)});
}
ExprPtr Expr::RowSums(ExprPtr a) {
  return Make(Op::kRowAgg, Symbol(), 0, {}, {std::move(a)});
}
ExprPtr Expr::ColSums(ExprPtr a) {
  return Make(Op::kColAgg, Symbol(), 0, {}, {std::move(a)});
}
ExprPtr Expr::Sum(ExprPtr a) {
  return Make(Op::kSumAgg, Symbol(), 0, {}, {std::move(a)});
}
ExprPtr Expr::Neg(ExprPtr a) {
  return Make(Op::kNeg, Symbol(), 0, {}, {std::move(a)});
}
ExprPtr Expr::Unary(std::string_view fn, ExprPtr a) {
  return Make(Op::kUnary, Symbol::Intern(fn), 0, {}, {std::move(a)});
}
ExprPtr Expr::SProp(ExprPtr a) {
  return Make(Op::kSProp, Symbol(), 0, {}, {std::move(a)});
}
ExprPtr Expr::WsLoss(ExprPtr x, ExprPtr u, ExprPtr v) {
  return Make(Op::kWsLoss, Symbol(), 0, {},
              {std::move(x), std::move(u), std::move(v)});
}

namespace {
// AC operators keep children in a canonical order so structurally equal
// terms hash identically regardless of construction order.
void SortAcChildren(std::vector<ExprPtr>& children) {
  std::stable_sort(children.begin(), children.end(),
                   [](const ExprPtr& a, const ExprPtr& b) {
                     return a->Hash() < b->Hash();
                   });
}
}  // namespace

ExprPtr Expr::Join(std::vector<ExprPtr> children) {
  SPORES_CHECK_GE(children.size(), 1u);
  if (children.size() == 1) return children[0];
  SortAcChildren(children);
  return Make(Op::kJoin, Symbol(), 0, {}, std::move(children));
}

ExprPtr Expr::Union(std::vector<ExprPtr> children) {
  SPORES_CHECK_GE(children.size(), 1u);
  if (children.size() == 1) return children[0];
  SortAcChildren(children);
  return Make(Op::kUnion, Symbol(), 0, {}, std::move(children));
}

ExprPtr Expr::Agg(std::vector<Symbol> attrs, ExprPtr child) {
  if (attrs.empty()) return child;
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return Make(Op::kAgg, Symbol(), 0, std::move(attrs), {std::move(child)});
}

ExprPtr Expr::Bind(std::vector<Symbol> attrs, ExprPtr child) {
  return Make(Op::kBind, Symbol(), 0, std::move(attrs), {std::move(child)});
}

ExprPtr Expr::Unbind(std::vector<Symbol> attrs, ExprPtr child) {
  return Make(Op::kUnbind, Symbol(), 0, std::move(attrs), {std::move(child)});
}

void Catalog::Register(std::string_view name, int64_t rows, int64_t cols,
                       double sparsity) {
  SPORES_CHECK_GT(rows, 0);
  SPORES_CHECK_GT(cols, 0);
  SPORES_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  meta_[Symbol::Intern(name)] = MatrixMeta{Shape{rows, cols}, sparsity};
}

const MatrixMeta& Catalog::Get(Symbol name) const {
  auto it = meta_.find(name);
  SPORES_CHECK_MSG(it != meta_.end(), name.str().c_str());
  return it->second;
}

namespace {

StatusOr<Shape> BroadcastShape(const Shape& a, const Shape& b) {
  auto combine = [](int64_t x, int64_t y) -> int64_t {
    if (x == y) return x;
    if (x == 1) return y;
    if (y == 1) return x;
    return -1;
  };
  int64_t r = combine(a.rows, b.rows);
  int64_t c = combine(a.cols, b.cols);
  if (r < 0 || c < 0) {
    return Status::InvalidArgument(
        "incompatible elementwise shapes: " + std::to_string(a.rows) + "x" +
        std::to_string(a.cols) + " vs " + std::to_string(b.rows) + "x" +
        std::to_string(b.cols));
  }
  return Shape{r, c};
}

}  // namespace

StatusOr<Shape> InferShape(const ExprPtr& expr, const Catalog& catalog) {
  switch (expr->op) {
    case Op::kVar:
      if (!catalog.Has(expr->sym)) {
        return Status::NotFound("unknown input: " + expr->sym.str());
      }
      return catalog.Get(expr->sym).shape;
    case Op::kConst:
      return Shape{1, 1};
    case Op::kMatMul: {
      SPORES_ASSIGN_OR_RETURN(Shape a, InferShape(expr->children[0], catalog));
      SPORES_ASSIGN_OR_RETURN(Shape b, InferShape(expr->children[1], catalog));
      if (a.cols != b.rows) {
        return Status::InvalidArgument(
            "matmul inner dims mismatch: " + std::to_string(a.cols) + " vs " +
            std::to_string(b.rows));
      }
      return Shape{a.rows, b.cols};
    }
    case Op::kElemMul:
    case Op::kElemPlus:
    case Op::kElemMinus:
    case Op::kElemDiv: {
      SPORES_ASSIGN_OR_RETURN(Shape a, InferShape(expr->children[0], catalog));
      SPORES_ASSIGN_OR_RETURN(Shape b, InferShape(expr->children[1], catalog));
      return BroadcastShape(a, b);
    }
    case Op::kPow: {
      if (expr->children.size() != 2 || expr->children[1]->op != Op::kConst) {
        return Status::InvalidArgument("pow requires constant exponent");
      }
      return InferShape(expr->children[0], catalog);
    }
    case Op::kTranspose: {
      SPORES_ASSIGN_OR_RETURN(Shape a, InferShape(expr->children[0], catalog));
      return Shape{a.cols, a.rows};
    }
    case Op::kRowAgg: {
      SPORES_ASSIGN_OR_RETURN(Shape a, InferShape(expr->children[0], catalog));
      return Shape{a.rows, 1};
    }
    case Op::kColAgg: {
      SPORES_ASSIGN_OR_RETURN(Shape a, InferShape(expr->children[0], catalog));
      return Shape{1, a.cols};
    }
    case Op::kSumAgg:
      SPORES_RETURN_IF_ERROR(InferShape(expr->children[0], catalog).status());
      return Shape{1, 1};
    case Op::kUnary:
    case Op::kNeg:
    case Op::kSProp:
      return InferShape(expr->children[0], catalog);
    case Op::kWsLoss: {
      SPORES_ASSIGN_OR_RETURN(Shape x, InferShape(expr->children[0], catalog));
      SPORES_ASSIGN_OR_RETURN(Shape u, InferShape(expr->children[1], catalog));
      SPORES_ASSIGN_OR_RETURN(Shape v, InferShape(expr->children[2], catalog));
      if (u.rows != x.rows || v.rows != x.cols || u.cols != v.cols) {
        return Status::InvalidArgument("wsloss shape mismatch");
      }
      return Shape{1, 1};
    }
    default:
      return Status::Unsupported(std::string("InferShape: non-LA op ") +
                                 std::string(OpName(expr->op)));
  }
}

namespace {

void CollectVarsInto(const Expr* e, std::unordered_set<const Expr*>& seen,
                     std::vector<Symbol>& out) {
  if (!seen.insert(e).second) return;
  if (e->op == Op::kVar) out.push_back(e->sym);
  for (const ExprPtr& c : e->children) CollectVarsInto(c.get(), seen, out);
}

}  // namespace

std::string CatalogSignature(const Catalog& catalog) {
  std::vector<std::string> parts;
  parts.reserve(catalog.entries().size());
  char buf[96];
  for (const auto& [name, meta] : catalog.entries()) {
    std::string part = name.str();
    std::snprintf(buf, sizeof(buf), ":%lldx%lld@%.17g;",
                  static_cast<long long>(meta.shape.rows),
                  static_cast<long long>(meta.shape.cols), meta.sparsity);
    part += buf;
    parts.push_back(std::move(part));
  }
  std::sort(parts.begin(), parts.end());
  std::string sig;
  for (const std::string& p : parts) sig += p;
  return sig;
}

std::vector<Symbol> CollectVars(const ExprPtr& expr) {
  std::unordered_set<const Expr*> seen;
  std::vector<Symbol> out;
  CollectVarsInto(expr.get(), seen, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace spores
