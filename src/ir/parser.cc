#include "src/ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

namespace spores {

namespace {

enum class TokKind { kIdent, kNumber, kOp, kLParen, kRParen, kComma, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  double number = 0.0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size()) {
        out.push_back({TokKind::kEnd, "", 0});
        return out;
      }
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '.')) {
          ++pos_;
        }
        out.push_back(
            {TokKind::kIdent, std::string(text_.substr(start, pos_ - start)),
             0});
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' ||
                ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
          ++pos_;
        }
        std::string num(text_.substr(start, pos_ - start));
        out.push_back({TokKind::kNumber, num, std::strtod(num.c_str(),
                                                          nullptr)});
      } else if (c == '%') {
        if (text_.substr(pos_, 3) == "%*%") {
          pos_ += 3;
          out.push_back({TokKind::kOp, "%*%", 0});
        } else {
          return Status::InvalidArgument("unexpected '%' at position " +
                                         std::to_string(pos_));
        }
      } else if (c == '(') {
        ++pos_;
        out.push_back({TokKind::kLParen, "(", 0});
      } else if (c == ')') {
        ++pos_;
        out.push_back({TokKind::kRParen, ")", 0});
      } else if (c == ',') {
        ++pos_;
        out.push_back({TokKind::kComma, ",", 0});
      } else if (c == '+' || c == '-' || c == '*' || c == '/' || c == '^') {
        ++pos_;
        out.push_back({TokKind::kOp, std::string(1, c), 0});
      } else {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at position " +
                                       std::to_string(pos_));
      }
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ExprPtr> Parse() {
    SPORES_ASSIGN_OR_RETURN(ExprPtr e, ParseAddSub());
    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument("trailing input after expression: '" +
                                     Peek().text + "'");
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool MatchOp(std::string_view op) {
    if (Peek().kind == TokKind::kOp && Peek().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<ExprPtr> ParseAddSub() {
    SPORES_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMulDiv());
    while (true) {
      if (MatchOp("+")) {
        SPORES_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMulDiv());
        lhs = Expr::Plus(lhs, rhs);
      } else if (MatchOp("-")) {
        SPORES_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMulDiv());
        lhs = Expr::Minus(lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  StatusOr<ExprPtr> ParseMulDiv() {
    SPORES_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMatMul());
    while (true) {
      if (MatchOp("*")) {
        SPORES_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMatMul());
        lhs = Expr::Mul(lhs, rhs);
      } else if (MatchOp("/")) {
        SPORES_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMatMul());
        lhs = Expr::Div(lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  StatusOr<ExprPtr> ParseMatMul() {
    SPORES_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (MatchOp("%*%")) {
      SPORES_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::MatMul(lhs, rhs);
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (MatchOp("-")) {
      SPORES_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Expr::Neg(e);
    }
    return ParsePower();
  }

  StatusOr<ExprPtr> ParsePower() {
    SPORES_ASSIGN_OR_RETURN(ExprPtr base, ParseAtom());
    if (MatchOp("^")) {
      SPORES_ASSIGN_OR_RETURN(ExprPtr exp, ParseUnary());
      if (exp->op != Op::kConst) {
        return Status::Unsupported("only constant exponents are supported");
      }
      return Expr::Pow(base, exp->value);
    }
    return base;
  }

  StatusOr<ExprPtr> ParseAtom() {
    const Token& tok = Advance();
    switch (tok.kind) {
      case TokKind::kNumber:
        return Expr::Const(tok.number);
      case TokKind::kLParen: {
        SPORES_ASSIGN_OR_RETURN(ExprPtr e, ParseAddSub());
        if (Peek().kind != TokKind::kRParen) {
          return Status::InvalidArgument("expected ')'");
        }
        Advance();
        return e;
      }
      case TokKind::kIdent: {
        if (Peek().kind != TokKind::kLParen) {
          return Expr::Var(tok.text);
        }
        Advance();  // consume '('
        std::vector<ExprPtr> args;
        if (Peek().kind != TokKind::kRParen) {
          while (true) {
            SPORES_ASSIGN_OR_RETURN(ExprPtr arg, ParseAddSub());
            args.push_back(arg);
            if (Peek().kind == TokKind::kComma) {
              Advance();
              continue;
            }
            break;
          }
        }
        if (Peek().kind != TokKind::kRParen) {
          return Status::InvalidArgument("expected ')' in call to " +
                                         tok.text);
        }
        Advance();
        return MakeCall(tok.text, std::move(args));
      }
      default:
        return Status::InvalidArgument("unexpected token '" + tok.text + "'");
    }
  }

  static StatusOr<ExprPtr> MakeCall(const std::string& name,
                                    std::vector<ExprPtr> args) {
    auto arity = [&](size_t n) -> Status {
      if (args.size() != n) {
        return Status::InvalidArgument(name + " expects " + std::to_string(n) +
                                       " argument(s), got " +
                                       std::to_string(args.size()));
      }
      return Status::OK();
    };
    if (name == "t") {
      SPORES_RETURN_IF_ERROR(arity(1));
      return Expr::Transpose(args[0]);
    }
    if (name == "sum") {
      SPORES_RETURN_IF_ERROR(arity(1));
      return Expr::Sum(args[0]);
    }
    if (name == "rowSums") {
      SPORES_RETURN_IF_ERROR(arity(1));
      return Expr::RowSums(args[0]);
    }
    if (name == "colSums") {
      SPORES_RETURN_IF_ERROR(arity(1));
      return Expr::ColSums(args[0]);
    }
    if (name == "sprop") {
      SPORES_RETURN_IF_ERROR(arity(1));
      return Expr::SProp(args[0]);
    }
    if (name == "wsloss") {
      SPORES_RETURN_IF_ERROR(arity(3));
      return Expr::WsLoss(args[0], args[1], args[2]);
    }
    if (name == "exp" || name == "log" || name == "sqrt" ||
        name == "sigmoid" || name == "sign" || name == "abs") {
      SPORES_RETURN_IF_ERROR(arity(1));
      return Expr::Unary(name, args[0]);
    }
    return Status::Unsupported("unknown function: " + name);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ExprPtr> ParseExpr(std::string_view text) {
  Lexer lexer(text);
  SPORES_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace spores
