// Pretty-printers: LA expressions render in DML/R-like syntax
// ("sum((X - U %*% t(V))^2)"), RA expressions in RPlan syntax
// ("agg[i,j](join(bind[i,j](X), ...))").
#pragma once

#include <string>

#include "src/ir/expr.h"

namespace spores {

/// Renders any expression (LA, RA, or mixed) as a string.
std::string ToString(const ExprPtr& expr);

}  // namespace spores
