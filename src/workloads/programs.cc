#include "src/workloads/programs.h"

namespace spores {

namespace {
ExprPtr V(const char* name) { return Expr::Var(name); }
}  // namespace

Program AlsProgram() {
  // (U %*% t(V) - X) %*% V
  ExprPtr expr = Expr::MatMul(
      Expr::Minus(Expr::MatMul(V("U"), Expr::Transpose(V("V"))), V("X")),
      V("V"));
  return {"ALS", expr,
          "expand (UV^T - X)V to UV^TV - XV; exploit sparsity of X"};
}

Program GlmProgram() {
  // t(X) %*% (y - X %*% w)
  ExprPtr expr = Expr::MatMul(
      Expr::Transpose(V("X")), Expr::Minus(V("y"), Expr::MatMul(V("X"),
                                                                V("w"))));
  return {"GLM", expr, "match the heuristic optimizer (no better plan)"};
}

Program SvmProgram() {
  // t(X) %*% (X %*% w - y) + 0.001 * w
  ExprPtr expr = Expr::Plus(
      Expr::MatMul(Expr::Transpose(V("X")),
                   Expr::Minus(Expr::MatMul(V("X"), V("w")), V("y"))),
      Expr::Mul(Expr::Const(0.001), V("w")));
  return {"SVM", expr, "match the heuristic optimizer (no better plan)"};
}

Program MlrProgram() {
  // t(X) %*% (p*r - p*p*r): factors to t(X) %*% (sprop(p)*r).
  ExprPtr p = V("p");
  ExprPtr r = V("r");
  ExprPtr expr = Expr::MatMul(
      Expr::Transpose(V("X")),
      Expr::Minus(Expr::Mul(p, r), Expr::Mul(Expr::Mul(p, p), r)));
  return {"MLR", expr, "factor p out; fuse p*(1-p) into sprop"};
}

Program PnmfProgram() {
  // sum(W %*% H) - sum(X * (W %*% H)), W%*%H shared (same Expr node).
  ExprPtr wh = Expr::MatMul(V("W"), V("H"));
  ExprPtr expr = Expr::Minus(Expr::Sum(wh), Expr::Sum(Expr::Mul(V("X"), wh)));
  return {"PNMF", expr,
          "avoid materializing W%*%H despite CSE (colSums/rowSums + "
          "sparse sum-product)"};
}

Program IntroProgram() {
  // sum((X - U %*% t(V))^2)
  ExprPtr expr = Expr::Sum(Expr::Pow(
      Expr::Minus(V("X"), Expr::MatMul(V("U"), Expr::Transpose(V("V")))),
      2.0));
  return {"INTRO", expr,
          "sum(X^2) - 2 sum(X*U*V^T) + (U^T U)(V^T V) via sparsity of X"};
}

std::vector<Program> AllPrograms() {
  return {AlsProgram(), GlmProgram(), SvmProgram(), MlrProgram(),
          PnmfProgram()};
}


ExprPtr NonConvergingChainExpr() {
  ExprPtr chain = Expr::Var("A");
  for (const char* n : {"B", "C", "D", "E", "F"}) {
    chain = Expr::MatMul(std::move(chain), Expr::Var(n));
  }
  return Expr::Sum(std::move(chain));
}

Catalog NonConvergingCatalog() {
  Catalog c;
  for (const char* n : {"A", "B", "C", "D", "E", "F"}) {
    c.Register(n, 60, 60, 0.3);
  }
  return c;
}

}  // namespace spores
