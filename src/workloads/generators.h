// Synthetic data generators standing in for SystemML's algorithm-specific
// benchmark generators (Sec 4: "datasets have been synthetically generated").
// Each generator produces Bindings (named matrices) plus the matching
// Catalog metadata for one workload at a given scale.
#pragma once

#include "src/runtime/executor.h"

namespace spores {

/// One prepared workload instance: inputs plus derived metadata.
struct WorkloadData {
  Bindings inputs;
  Catalog catalog;
};

/// Sparse data matrix X (rows x cols, given sparsity) plus dense factors
/// U (rows x rank), V (cols x rank). Used by ALS / PNMF-style programs.
WorkloadData MakeFactorizationData(int64_t rows, int64_t cols, int64_t rank,
                                   double sparsity, uint64_t seed);

/// Sparse features X (rows x cols), dense label/weight vectors:
/// y (rows x 1), w (cols x 1), p (rows x 1, values in (0,1)).
/// Used by GLM / SVM / MLR-style programs.
WorkloadData MakeRegressionData(int64_t rows, int64_t cols, double sparsity,
                                uint64_t seed);

}  // namespace spores
