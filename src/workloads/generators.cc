#include "src/workloads/generators.h"

namespace spores {

namespace {

WorkloadData Finish(Bindings inputs) {
  WorkloadData data;
  data.catalog = inputs.ToCatalog();
  data.inputs = std::move(inputs);
  return data;
}

}  // namespace

WorkloadData MakeFactorizationData(int64_t rows, int64_t cols, int64_t rank,
                                   double sparsity, uint64_t seed) {
  Rng rng(seed);
  Bindings b;
  b.Bind("X", Matrix::RandomSparse(rows, cols, sparsity, rng, 0.1, 1.0));
  b.Bind("U", Matrix::RandomDense(rows, rank, rng, 0.1, 1.0));
  b.Bind("V", Matrix::RandomDense(cols, rank, rng, 0.1, 1.0));
  b.Bind("W", Matrix::RandomDense(rows, rank, rng, 0.1, 1.0));
  b.Bind("H", Matrix::RandomDense(rank, cols, rng, 0.1, 1.0));
  return Finish(std::move(b));
}

WorkloadData MakeRegressionData(int64_t rows, int64_t cols, double sparsity,
                                uint64_t seed) {
  Rng rng(seed);
  Bindings b;
  b.Bind("X", Matrix::RandomSparse(rows, cols, sparsity, rng, 0.1, 1.0));
  b.Bind("y", Matrix::RandomDense(rows, 1, rng, -1.0, 1.0));
  b.Bind("w", Matrix::RandomDense(cols, 1, rng, -0.5, 0.5));
  b.Bind("p", Matrix::RandomDense(rows, 1, rng, 0.01, 0.99));
  b.Bind("r", Matrix::RandomDense(rows, 1, rng, -1.0, 1.0));
  return Finish(std::move(b));
}

}  // namespace spores
