// Inner-loop LA expressions for the five evaluation algorithms (Sec 4.2):
// ALS, GLM, SVM, MLR, PNMF — plus the paper's running intro example. Each is
// the hot expression SPORES is invoked on ("we only invoke SPORES on
// important LA expressions from the inner loops"). Shared subexpressions are
// built as shared Expr nodes so DAG-level CSE is visible to optimizers and
// the executor.
#pragma once

#include <string>
#include <vector>

#include "src/ir/expr.h"

namespace spores {

struct Program {
  std::string name;
  ExprPtr expr;
  /// What the paper's evaluation says SPORES should achieve on it.
  std::string expectation;
};

/// ALS update direction: (U %*% t(V) - X) %*% V. SPORES expands the product
/// to exploit X's sparsity (U (V^T V) - X V); the heuristic baseline does
/// not distribute (Sec 4.2, up to 5X).
Program AlsProgram();

/// GLM gradient: t(X) %*% (y - X %*% w). Saturation matches the heuristic
/// optimizer (no better plan exists).
Program GlmProgram();

/// SVM gradient: t(X) %*% (X %*% w - y) + 0.001 * w. Same story as GLM.
Program SvmProgram();

/// MLR inner term: t(X) %*% (p*r - p*p*r). SPORES factors p out, enabling
/// the sprop fused operator (Sec 4.2, ~1.2X).
Program MlrProgram();

/// PNMF objective proxy: sum(W %*% H) - sum(X * (W %*% H)), with W%*%H a
/// shared subexpression. The heuristic's CSE guard blocks its own
/// sum-rewrite; SPORES optimizes both uses away (Sec 4.2, up to 3X).
Program PnmfProgram();

/// Intro example: sum((X - U %*% t(V))^2) -> sum(X^2) - 2 U^T X V + ...
Program IntroProgram();

/// All five benchmark programs in the paper's order.
std::vector<Program> AllPrograms();

/// A serving-test blocker: a matmul chain whose saturation does NOT
/// converge inside any realistic budget (the AC join/association rules
/// keep finding new matches), so a worker given a huge RunnerConfig budget
/// stays reliably busy until its clock or cancel token stops it.
/// serve_test's async tests and bench_serving's cancel gate both build on
/// this; sharing one definition keeps the non-convergence invariant from
/// drifting apart between them. `NonConvergingCatalog` registers its six
/// 60x60 inputs at 0.3 sparsity.
ExprPtr NonConvergingChainExpr();
Catalog NonConvergingCatalog();

}  // namespace spores
