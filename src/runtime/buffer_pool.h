// Size-class recycler for the runtime's payload vectors (dense values, CSR
// index/value arrays). The executor's biggest hidden cost was allocation:
// every kernel built its output in a fresh std::vector (page faults + zero
// fill), and every intermediate died at the end of the whole execution.
// A BufferPool keeps released buffers in power-of-two size-class freelists
// so the next kernel output of a similar size reuses warm, already-mapped
// memory — across a DAG (eager release at an intermediate's last use) and
// across a batch (ExecutorArena holds one pool for many Execute calls).
//
// Thread model: a BufferPool is NOT internally synchronized. The executor
// installs it on the evaluating thread (ScopedUse); kernels allocate
// outputs and scratch on the calling thread only — pool worker threads
// never touch it (parallel ranges write into pre-allocated outputs).
#pragma once

#include <cstdint>
#include <new>
#include <vector>

#include "src/runtime/matrix.h"

namespace spores {

/// Thrown when an execution's outstanding pooled bytes would exceed the
/// cap set by set_live_bytes_cap(). Derives from std::bad_alloc so the
/// executor's allocation containment maps it to kResourceExhausted like
/// any other allocation failure.
class PoolMemoryLimitError : public std::bad_alloc {
 public:
  const char* what() const noexcept override {
    return "BufferPool live-bytes cap exceeded";
  }
};

class BufferPool {
 public:
  struct Stats {
    size_t reuse_hits = 0;    ///< acquisitions served from a freelist
    size_t fresh_allocs = 0;  ///< acquisitions that had to allocate
    size_t released = 0;      ///< buffers returned to the pool
    size_t dropped = 0;       ///< returns discarded by the byte cap
    size_t bytes_held = 0;    ///< bytes currently parked in freelists
    size_t live_bytes = 0;       ///< bytes handed out, not yet returned
    size_t live_high_water = 0;  ///< max live_bytes observed
  };

  /// `max_held_bytes` caps parked memory; returns past the cap are freed
  /// instead of pooled (a pool must bound, not grow, the footprint).
  explicit BufferPool(size_t max_held_bytes = kDefaultMaxHeldBytes);

  /// A vector with size() == n. Contents are UNSPECIFIED (reused buffers
  /// carry stale values) unless `zero` is set; callers either fully
  /// overwrite or ask for zeros.
  std::vector<double> AcquireDoubles(size_t n, bool zero = false);
  std::vector<int64_t> AcquireIndices(size_t n, bool zero = false);

  void Release(std::vector<double>&& v);
  void Release(std::vector<int64_t>&& v);

  /// Strips a dead matrix's payload vectors into the freelists.
  void Recycle(Matrix&& m);

  /// Frees everything parked.
  void Clear();

  const Stats& stats() const { return stats_; }

  /// Memory-pressure degradation knob: when nonzero, an Acquire that would
  /// push outstanding (handed-out, unreturned) bytes past the cap throws
  /// PoolMemoryLimitError instead of allocating. 0 (default) = unlimited.
  /// Accounting is best-effort: vectors released to the pool that were
  /// never acquired from it subtract saturating at zero.
  void set_live_bytes_cap(size_t cap) { live_bytes_cap_ = cap; }
  size_t live_bytes_cap() const { return live_bytes_cap_; }

  /// Restarts live-bytes accounting. The executor calls this at the start
  /// of every evaluation attempt: buffers destroyed on exception unwind
  /// never pass through Release, so the cap is per-attempt by design.
  void BeginExecution() { stats_.live_bytes = 0; }

  /// The pool installed on this thread (innermost ScopedUse), or null.
  /// Kernels route output allocations through this; see kernels.cc.
  static BufferPool* Current();

  /// RAII thread-local installation for the duration of an execution.
  class ScopedUse {
   public:
    explicit ScopedUse(BufferPool* pool);
    ~ScopedUse();
    ScopedUse(const ScopedUse&) = delete;
    ScopedUse& operator=(const ScopedUse&) = delete;

   private:
    BufferPool* prev_;
  };

  static constexpr size_t kDefaultMaxHeldBytes = size_t{256} << 20;

 private:
  // Freelist layout: class c holds buffers with capacity in
  // [2^c, 2^(c+1)); AcquireX(n) searches upward from ceil_log2(n), so any
  // hit has capacity >= n and resize(n) never reallocates.
  static constexpr size_t kNumClasses = 40;
  static size_t ClassOfCapacity(size_t capacity);
  static size_t ClassForRequest(size_t n);

  template <typename T>
  std::vector<T> AcquireImpl(std::vector<std::vector<T>> (&classes)[kNumClasses],
                             size_t n, bool zero);
  template <typename T>
  void ReleaseImpl(std::vector<std::vector<T>> (&classes)[kNumClasses],
                   std::vector<T>&& v);
  void NoteAcquired(size_t bytes);

  size_t max_held_bytes_;
  size_t live_bytes_cap_ = 0;
  std::vector<std::vector<double>> double_classes_[kNumClasses];
  std::vector<std::vector<int64_t>> index_classes_[kNumClasses];
  Stats stats_;
};

}  // namespace spores
