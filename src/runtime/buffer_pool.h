// Size-class recycler for the runtime's payload vectors (dense values, CSR
// index/value arrays). The executor's biggest hidden cost was allocation:
// every kernel built its output in a fresh std::vector (page faults + zero
// fill), and every intermediate died at the end of the whole execution.
// A BufferPool keeps released buffers in power-of-two size-class freelists
// so the next kernel output of a similar size reuses warm, already-mapped
// memory — across a DAG (eager release at an intermediate's last use) and
// across a batch (ExecutorArena holds one pool for many Execute calls).
//
// Thread model: a BufferPool is NOT internally synchronized. The executor
// installs it on the evaluating thread (ScopedUse); kernels allocate
// outputs and scratch on the calling thread only — pool worker threads
// never touch it (parallel ranges write into pre-allocated outputs).
#pragma once

#include <cstdint>
#include <vector>

#include "src/runtime/matrix.h"

namespace spores {

class BufferPool {
 public:
  struct Stats {
    size_t reuse_hits = 0;    ///< acquisitions served from a freelist
    size_t fresh_allocs = 0;  ///< acquisitions that had to allocate
    size_t released = 0;      ///< buffers returned to the pool
    size_t dropped = 0;       ///< returns discarded by the byte cap
    size_t bytes_held = 0;    ///< bytes currently parked in freelists
  };

  /// `max_held_bytes` caps parked memory; returns past the cap are freed
  /// instead of pooled (a pool must bound, not grow, the footprint).
  explicit BufferPool(size_t max_held_bytes = kDefaultMaxHeldBytes);

  /// A vector with size() == n. Contents are UNSPECIFIED (reused buffers
  /// carry stale values) unless `zero` is set; callers either fully
  /// overwrite or ask for zeros.
  std::vector<double> AcquireDoubles(size_t n, bool zero = false);
  std::vector<int64_t> AcquireIndices(size_t n, bool zero = false);

  void Release(std::vector<double>&& v);
  void Release(std::vector<int64_t>&& v);

  /// Strips a dead matrix's payload vectors into the freelists.
  void Recycle(Matrix&& m);

  /// Frees everything parked.
  void Clear();

  const Stats& stats() const { return stats_; }

  /// The pool installed on this thread (innermost ScopedUse), or null.
  /// Kernels route output allocations through this; see kernels.cc.
  static BufferPool* Current();

  /// RAII thread-local installation for the duration of an execution.
  class ScopedUse {
   public:
    explicit ScopedUse(BufferPool* pool);
    ~ScopedUse();
    ScopedUse(const ScopedUse&) = delete;
    ScopedUse& operator=(const ScopedUse&) = delete;

   private:
    BufferPool* prev_;
  };

  static constexpr size_t kDefaultMaxHeldBytes = size_t{256} << 20;

 private:
  // Freelist layout: class c holds buffers with capacity in
  // [2^c, 2^(c+1)); AcquireX(n) searches upward from ceil_log2(n), so any
  // hit has capacity >= n and resize(n) never reallocates.
  static constexpr size_t kNumClasses = 40;
  static size_t ClassOfCapacity(size_t capacity);
  static size_t ClassForRequest(size_t n);

  template <typename T>
  std::vector<T> AcquireImpl(std::vector<std::vector<T>> (&classes)[kNumClasses],
                             size_t n, bool zero);
  template <typename T>
  void ReleaseImpl(std::vector<std::vector<T>> (&classes)[kNumClasses],
                   std::vector<T>&& v);

  size_t max_held_bytes_;
  std::vector<std::vector<double>> double_classes_[kNumClasses];
  std::vector<std::vector<int64_t>> index_classes_[kNumClasses];
  Stats stats_;
};

}  // namespace spores
