#include "src/runtime/kernels.h"

#include <cmath>
#include <functional>
#include <string>

namespace spores {

namespace {

// Broadcast index helper: maps output (r, c) to the operand's cell.
inline double BroadcastAt(const Matrix& m, int64_t r, int64_t c) {
  int64_t rr = m.rows() == 1 ? 0 : r;
  int64_t cc = m.cols() == 1 ? 0 : c;
  return m.At(rr, cc);
}

void CheckBroadcastable(const Matrix& a, const Matrix& b, int64_t* rows,
                        int64_t* cols) {
  auto combine = [](int64_t x, int64_t y) {
    if (x == y) return x;
    if (x == 1) return y;
    SPORES_CHECK_MSG(y == 1, "incompatible elementwise shapes");
    return x;
  };
  *rows = combine(a.rows(), b.rows());
  *cols = combine(a.cols(), b.cols());
}

// Generic dense elementwise with broadcasting.
template <typename F>
Matrix DenseElemwise(const Matrix& a, const Matrix& b, F f) {
  int64_t rows, cols;
  CheckBroadcastable(a, b, &rows, &cols);
  Matrix out = Matrix::Dense(rows, cols);
  // Fast path: identical dense shapes.
  if (!a.is_sparse() && !b.is_sparse() && a.rows() == rows &&
      b.rows() == rows && a.cols() == cols && b.cols() == cols) {
    const auto& av = a.values();
    const auto& bv = b.values();
    auto& ov = out.values();
    for (size_t i = 0; i < ov.size(); ++i) ov[i] = f(av[i], bv[i]);
    return out;
  }
  auto& ov = out.values();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      ov[static_cast<size_t>(r * cols + c)] =
          f(BroadcastAt(a, r, c), BroadcastAt(b, r, c));
    }
  }
  return out;
}

// Sparse-aware multiply: iterate only the sparse operand's non-zeros.
Matrix SparseMulBroadcast(const Matrix& sp, const Matrix& other, bool swap) {
  int64_t rows, cols;
  if (!swap) {
    CheckBroadcastable(sp, other, &rows, &cols);
  } else {
    CheckBroadcastable(other, sp, &rows, &cols);
  }
  SPORES_CHECK(sp.rows() == rows && sp.cols() == cols);
  std::vector<std::tuple<int64_t, int64_t, double>> triplets;
  triplets.reserve(static_cast<size_t>(sp.Nnz()));
  const auto& rp = sp.row_ptr();
  const auto& ci = sp.col_idx();
  const auto& vv = sp.csr_values();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t k = rp[static_cast<size_t>(r)];
         k < rp[static_cast<size_t>(r) + 1]; ++k) {
      int64_t c = ci[static_cast<size_t>(k)];
      double v = vv[static_cast<size_t>(k)] * BroadcastAt(other, r, c);
      if (v != 0.0) triplets.emplace_back(r, c, v);
    }
  }
  return Matrix::FromTriplets(rows, cols, std::move(triplets));
}

// Sparse + sparse with equal shapes: CSR merge.
Matrix SparseAdd(const Matrix& a, const Matrix& b, double b_scale) {
  SPORES_CHECK_EQ(a.rows(), b.rows());
  SPORES_CHECK_EQ(a.cols(), b.cols());
  std::vector<std::tuple<int64_t, int64_t, double>> triplets;
  triplets.reserve(static_cast<size_t>(a.Nnz() + b.Nnz()));
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t k = a.row_ptr()[static_cast<size_t>(r)];
         k < a.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
      triplets.emplace_back(r, a.col_idx()[static_cast<size_t>(k)],
                            a.csr_values()[static_cast<size_t>(k)]);
    }
    for (int64_t k = b.row_ptr()[static_cast<size_t>(r)];
         k < b.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
      triplets.emplace_back(r, b.col_idx()[static_cast<size_t>(k)],
                            b_scale * b.csr_values()[static_cast<size_t>(k)]);
    }
  }
  return Matrix::FromTriplets(a.rows(), a.cols(), std::move(triplets));
}

}  // namespace

Matrix Add(const Matrix& a, const Matrix& b) {
  if (a.is_sparse() && b.is_sparse() && a.rows() == b.rows() &&
      a.cols() == b.cols()) {
    return SparseAdd(a, b, 1.0);
  }
  Matrix da = a.is_sparse() ? a.ToDense() : a;
  Matrix db = b.is_sparse() ? b.ToDense() : b;
  return DenseElemwise(da, db, [](double x, double y) { return x + y; });
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  if (a.is_sparse() && b.is_sparse() && a.rows() == b.rows() &&
      a.cols() == b.cols()) {
    return SparseAdd(a, b, -1.0);
  }
  Matrix da = a.is_sparse() ? a.ToDense() : a;
  Matrix db = b.is_sparse() ? b.ToDense() : b;
  return DenseElemwise(da, db, [](double x, double y) { return x - y; });
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  // Scalar fast paths.
  if (a.IsScalar()) return Scale(b, a.AsScalar());
  if (b.IsScalar()) return Scale(a, b.AsScalar());
  // Sparsity-exploiting paths: the output's support is within the sparse
  // operand's support.
  if (a.is_sparse() && a.rows() >= b.rows() && a.cols() >= b.cols()) {
    return SparseMulBroadcast(a, b, false);
  }
  if (b.is_sparse() && b.rows() >= a.rows() && b.cols() >= a.cols()) {
    return SparseMulBroadcast(b, a, true);
  }
  Matrix da = a.is_sparse() ? a.ToDense() : a;
  Matrix db = b.is_sparse() ? b.ToDense() : b;
  return DenseElemwise(da, db, [](double x, double y) { return x * y; });
}

Matrix Div(const Matrix& a, const Matrix& b) {
  if (a.is_sparse() && b.rows() <= a.rows() && b.cols() <= a.cols()) {
    // 0 / y == 0: iterate a's non-zeros only.
    Matrix recip = Apply(b.is_sparse() ? b.ToDense() : b,
                         [](double v) { return 1.0 / v; }, false);
    return SparseMulBroadcast(a, recip, false);
  }
  Matrix da = a.is_sparse() ? a.ToDense() : a;
  Matrix db = b.is_sparse() ? b.ToDense() : b;
  return DenseElemwise(da, db, [](double x, double y) { return x / y; });
}

Matrix PowElem(const Matrix& a, double exponent) {
  if (a.is_sparse() && exponent > 0) {
    std::vector<std::tuple<int64_t, int64_t, double>> triplets;
    for (int64_t r = 0; r < a.rows(); ++r) {
      for (int64_t k = a.row_ptr()[static_cast<size_t>(r)];
           k < a.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
        triplets.emplace_back(
            r, a.col_idx()[static_cast<size_t>(k)],
            std::pow(a.csr_values()[static_cast<size_t>(k)], exponent));
      }
    }
    return Matrix::FromTriplets(a.rows(), a.cols(), std::move(triplets));
  }
  Matrix da = a.ToDense();
  Matrix out = Matrix::Dense(a.rows(), a.cols());
  for (size_t i = 0; i < out.values().size(); ++i) {
    out.values()[i] = std::pow(da.values()[i], exponent);
  }
  return out;
}

Matrix Apply(const Matrix& a, double (*fn)(double), bool preserves_zero) {
  if (a.is_sparse() && preserves_zero) {
    std::vector<std::tuple<int64_t, int64_t, double>> triplets;
    for (int64_t r = 0; r < a.rows(); ++r) {
      for (int64_t k = a.row_ptr()[static_cast<size_t>(r)];
           k < a.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
        triplets.emplace_back(r, a.col_idx()[static_cast<size_t>(k)],
                              fn(a.csr_values()[static_cast<size_t>(k)]));
      }
    }
    return Matrix::FromTriplets(a.rows(), a.cols(), std::move(triplets));
  }
  Matrix da = a.ToDense();
  Matrix out = Matrix::Dense(a.rows(), a.cols());
  for (size_t i = 0; i < out.values().size(); ++i) {
    out.values()[i] = fn(da.values()[i]);
  }
  return out;
}

Matrix Unary(const std::string& fn, const Matrix& a) {
  if (fn == "exp") return Apply(a, [](double v) { return std::exp(v); }, false);
  if (fn == "log") return Apply(a, [](double v) { return std::log(v); }, false);
  if (fn == "sqrt") {
    return Apply(a, [](double v) { return std::sqrt(v); }, true);
  }
  if (fn == "sigmoid") {
    return Apply(a, [](double v) { return 1.0 / (1.0 + std::exp(-v)); },
                 false);
  }
  if (fn == "sign") {
    return Apply(
        a, [](double v) { return static_cast<double>((v > 0) - (v < 0)); },
        true);
  }
  if (fn == "abs") return Apply(a, [](double v) { return std::abs(v); }, true);
  SPORES_CHECK_MSG(false, ("unknown unary fn: " + fn).c_str());
  return a;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  SPORES_CHECK_EQ(a.cols(), b.rows());
  int64_t m = a.rows(), n = b.cols(), kk = a.cols();
  Matrix out = Matrix::Dense(m, n);
  auto& ov = out.values();

  if (a.is_sparse()) {
    Matrix db = b.is_sparse() ? b.ToDense() : b;
    const auto& bv = db.values();
    for (int64_t r = 0; r < m; ++r) {
      for (int64_t p = a.row_ptr()[static_cast<size_t>(r)];
           p < a.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
        int64_t j = a.col_idx()[static_cast<size_t>(p)];
        double av = a.csr_values()[static_cast<size_t>(p)];
        const double* brow = &bv[static_cast<size_t>(j * n)];
        double* orow = &ov[static_cast<size_t>(r * n)];
        for (int64_t c = 0; c < n; ++c) orow[c] += av * brow[c];
      }
    }
    return out;
  }
  if (b.is_sparse()) {
    const auto& av = a.values();
    for (int64_t j = 0; j < kk; ++j) {
      for (int64_t p = b.row_ptr()[static_cast<size_t>(j)];
           p < b.row_ptr()[static_cast<size_t>(j) + 1]; ++p) {
        int64_t c = b.col_idx()[static_cast<size_t>(p)];
        double bvv = b.csr_values()[static_cast<size_t>(p)];
        for (int64_t r = 0; r < m; ++r) {
          ov[static_cast<size_t>(r * n + c)] +=
              av[static_cast<size_t>(r * kk + j)] * bvv;
        }
      }
    }
    return out;
  }
  // Dense x dense: ikj loop order for locality.
  const auto& av = a.values();
  const auto& bv = b.values();
  for (int64_t r = 0; r < m; ++r) {
    for (int64_t j = 0; j < kk; ++j) {
      double avv = av[static_cast<size_t>(r * kk + j)];
      if (avv == 0.0) continue;
      const double* brow = &bv[static_cast<size_t>(j * n)];
      double* orow = &ov[static_cast<size_t>(r * n)];
      for (int64_t c = 0; c < n; ++c) orow[c] += avv * brow[c];
    }
  }
  return out;
}

Matrix TransLeftMatMul(const Matrix& a, const Matrix& b) {
  SPORES_CHECK_EQ(a.rows(), b.rows());
  int64_t m = a.cols(), n = b.cols(), kk = a.rows();
  Matrix out = Matrix::Dense(m, n);
  auto& ov = out.values();
  if (a.is_sparse()) {
    // out[j, c] += A[r, j] * B[r, c]: stream A's non-zeros row by row.
    Matrix db = b.is_sparse() ? b.ToDense() : b;
    const auto& bv = db.values();
    for (int64_t r = 0; r < kk; ++r) {
      const double* brow = &bv[static_cast<size_t>(r * n)];
      for (int64_t p = a.row_ptr()[static_cast<size_t>(r)];
           p < a.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
        int64_t j = a.col_idx()[static_cast<size_t>(p)];
        double av = a.csr_values()[static_cast<size_t>(p)];
        double* orow = &ov[static_cast<size_t>(j * n)];
        for (int64_t c = 0; c < n; ++c) orow[c] += av * brow[c];
      }
    }
    return out;
  }
  if (b.is_sparse()) {
    // out[j, c] += A[r, j] * B[r, c]: stream B's non-zeros.
    const auto& av = a.values();
    for (int64_t r = 0; r < kk; ++r) {
      const double* arow = &av[static_cast<size_t>(r * m)];
      for (int64_t p = b.row_ptr()[static_cast<size_t>(r)];
           p < b.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
        int64_t c = b.col_idx()[static_cast<size_t>(p)];
        double bvv = b.csr_values()[static_cast<size_t>(p)];
        for (int64_t j = 0; j < m; ++j) {
          ov[static_cast<size_t>(j * n + c)] += arow[j] * bvv;
        }
      }
    }
    return out;
  }
  const auto& av = a.values();
  const auto& bv = b.values();
  for (int64_t r = 0; r < kk; ++r) {
    const double* arow = &av[static_cast<size_t>(r * m)];
    const double* brow = &bv[static_cast<size_t>(r * n)];
    for (int64_t j = 0; j < m; ++j) {
      double ajr = arow[j];
      if (ajr == 0.0) continue;
      double* orow = &ov[static_cast<size_t>(j * n)];
      for (int64_t c = 0; c < n; ++c) orow[c] += ajr * brow[c];
    }
  }
  return out;
}

Matrix TransRightMatMul(const Matrix& a, const Matrix& b) {
  SPORES_CHECK_EQ(a.cols(), b.cols());
  int64_t m = a.rows(), n = b.rows(), kk = a.cols();
  Matrix out = Matrix::Dense(m, n);
  auto& ov = out.values();
  if (b.is_sparse()) {
    // out[r, i] += A[r, j] * B[i, j]: stream B's non-zeros.
    Matrix da = a.is_sparse() ? a.ToDense() : a;
    const auto& av = da.values();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t p = b.row_ptr()[static_cast<size_t>(i)];
           p < b.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
        int64_t j = b.col_idx()[static_cast<size_t>(p)];
        double bv = b.csr_values()[static_cast<size_t>(p)];
        for (int64_t r = 0; r < m; ++r) {
          ov[static_cast<size_t>(r * n + i)] +=
              av[static_cast<size_t>(r * kk + j)] * bv;
        }
      }
    }
    return out;
  }
  if (a.is_sparse()) {
    // out[r, i] += A[r, j] * B[i, j]: stream A's non-zeros.
    const auto& bvv = b.values();
    for (int64_t r = 0; r < m; ++r) {
      double* orow = &ov[static_cast<size_t>(r * n)];
      for (int64_t p = a.row_ptr()[static_cast<size_t>(r)];
           p < a.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
        int64_t j = a.col_idx()[static_cast<size_t>(p)];
        double av = a.csr_values()[static_cast<size_t>(p)];
        for (int64_t i = 0; i < n; ++i) {
          orow[i] += av * bvv[static_cast<size_t>(i * kk + j)];
        }
      }
    }
    return out;
  }
  const auto& av = a.values();
  const auto& bvv = b.values();
  for (int64_t r = 0; r < m; ++r) {
    const double* arow = &av[static_cast<size_t>(r * kk)];
    double* orow = &ov[static_cast<size_t>(r * n)];
    for (int64_t i = 0; i < n; ++i) {
      const double* brow = &bvv[static_cast<size_t>(i * kk)];
      double dot = 0.0;
      for (int64_t j = 0; j < kk; ++j) dot += arow[j] * brow[j];
      orow[i] = dot;
    }
  }
  return out;
}

Matrix Transpose(const Matrix& a) {
  if (a.is_sparse()) {
    std::vector<std::tuple<int64_t, int64_t, double>> triplets;
    triplets.reserve(static_cast<size_t>(a.Nnz()));
    for (int64_t r = 0; r < a.rows(); ++r) {
      for (int64_t k = a.row_ptr()[static_cast<size_t>(r)];
           k < a.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
        triplets.emplace_back(a.col_idx()[static_cast<size_t>(k)], r,
                              a.csr_values()[static_cast<size_t>(k)]);
      }
    }
    return Matrix::FromTriplets(a.cols(), a.rows(), std::move(triplets));
  }
  Matrix out = Matrix::Dense(a.cols(), a.rows());
  const auto& av = a.values();
  auto& ov = out.values();
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      ov[static_cast<size_t>(c * a.rows() + r)] =
          av[static_cast<size_t>(r * a.cols() + c)];
    }
  }
  return out;
}

Matrix RowSums(const Matrix& a) {
  Matrix out = Matrix::Dense(a.rows(), 1);
  auto& ov = out.values();
  if (a.is_sparse()) {
    for (int64_t r = 0; r < a.rows(); ++r) {
      double s = 0.0;
      for (int64_t k = a.row_ptr()[static_cast<size_t>(r)];
           k < a.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
        s += a.csr_values()[static_cast<size_t>(k)];
      }
      ov[static_cast<size_t>(r)] = s;
    }
    return out;
  }
  const auto& av = a.values();
  for (int64_t r = 0; r < a.rows(); ++r) {
    double s = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) {
      s += av[static_cast<size_t>(r * a.cols() + c)];
    }
    ov[static_cast<size_t>(r)] = s;
  }
  return out;
}

Matrix ColSums(const Matrix& a) {
  Matrix out = Matrix::Dense(1, a.cols());
  auto& ov = out.values();
  if (a.is_sparse()) {
    for (int64_t r = 0; r < a.rows(); ++r) {
      for (int64_t k = a.row_ptr()[static_cast<size_t>(r)];
           k < a.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
        ov[static_cast<size_t>(a.col_idx()[static_cast<size_t>(k)])] +=
            a.csr_values()[static_cast<size_t>(k)];
      }
    }
    return out;
  }
  const auto& av = a.values();
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      ov[static_cast<size_t>(c)] += av[static_cast<size_t>(r * a.cols() + c)];
    }
  }
  return out;
}

double SumAll(const Matrix& a) {
  double s = 0.0;
  if (a.is_sparse()) {
    for (double v : a.csr_values()) s += v;
    return s;
  }
  for (double v : a.values()) s += v;
  return s;
}

Matrix Scale(const Matrix& a, double s) {
  if (a.is_sparse()) {
    if (s == 0.0) return Matrix::Sparse(a.rows(), a.cols());
    Matrix out = a;
    // Copy CSR and scale values in place via triplets round-trip to keep the
    // Matrix API surface small.
    std::vector<std::tuple<int64_t, int64_t, double>> triplets;
    triplets.reserve(static_cast<size_t>(a.Nnz()));
    for (int64_t r = 0; r < a.rows(); ++r) {
      for (int64_t k = a.row_ptr()[static_cast<size_t>(r)];
           k < a.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
        triplets.emplace_back(r, a.col_idx()[static_cast<size_t>(k)],
                              s * a.csr_values()[static_cast<size_t>(k)]);
      }
    }
    return Matrix::FromTriplets(a.rows(), a.cols(), std::move(triplets));
  }
  Matrix out = a;
  for (double& v : out.values()) v *= s;
  return out;
}

}  // namespace spores
