#include "src/runtime/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/buffer_pool.h"
#include "src/runtime/simd.h"
#include "src/util/fault_injection.h"
#include "src/util/thread_pool.h"

namespace spores {

namespace {

// Depth of PreferSparseScope nesting on this thread (see kernels.h).
thread_local int tls_prefer_sparse = 0;

using simd::Axpy;
using simd::Dot;

// ---------------------------------------------------------------------------
// Allocation: outputs and scratch come from the thread-local BufferPool when
// one is installed (ScopedUse in the executor), else plain vectors. Reused
// buffers carry stale values, so every path below either fully overwrites or
// asks for zeros.
// ---------------------------------------------------------------------------

std::vector<double> AllocDoubles(size_t n, bool zero) {
  fault::Point("kernel_alloc");
  if (BufferPool* pool = BufferPool::Current()) {
    return pool->AcquireDoubles(n, zero);
  }
  return std::vector<double>(n, 0.0);
}

std::vector<int64_t> AllocIndices(size_t n, bool zero = false) {
  fault::Point("kernel_alloc");
  if (BufferPool* pool = BufferPool::Current()) {
    return pool->AcquireIndices(n, zero);
  }
  return std::vector<int64_t>(n, 0);
}

Matrix DenseOut(int64_t rows, int64_t cols, bool zero) {
  return Matrix::FromValues(
      rows, cols, AllocDoubles(static_cast<size_t>(rows * cols), zero));
}

void RecycleScratch(std::vector<double>&& v) {
  if (BufferPool* pool = BufferPool::Current()) pool->Release(std::move(v));
}

void RecycleScratch(Matrix&& m) {
  if (BufferPool* pool = BufferPool::Current()) pool->Recycle(std::move(m));
}

// Rows per chunk so each chunk carries at least `min_work` units (cells,
// flops) — below that the ParallelFor serial fallback kicks in.
int64_t GrainRows(int64_t work_per_row, int64_t min_work) {
  return std::max<int64_t>(1, min_work / std::max<int64_t>(1, work_per_row));
}

constexpr int64_t kMinCellsPerChunk = int64_t{1} << 15;
constexpr int64_t kMinFlopsPerChunk = int64_t{1} << 16;

// ---------------------------------------------------------------------------
// Broadcasting
// ---------------------------------------------------------------------------

void CheckBroadcastable(const Matrix& a, const Matrix& b, int64_t* rows,
                        int64_t* cols) {
  auto combine = [](int64_t x, int64_t y) {
    if (x == y) return x;
    if (x == 1) return y;
    SPORES_CHECK_MSG(y == 1, "incompatible elementwise shapes");
    return x;
  };
  *rows = combine(a.rows(), b.rows());
  *cols = combine(a.cols(), b.cols());
}

// Strided view of a dense operand under a broadcast output shape: a size-1
// dimension contributes stride 0, so `data + r * row_stride + c * col_stride`
// is the recycled cell. Replaces the old per-cell At() (two bounds CHECKs and
// a branch per cell).
struct BcastView {
  const double* data;
  int64_t row_stride;
  int64_t col_stride;
};

BcastView ViewOf(const Matrix& m) {
  return BcastView{m.values().data(), m.rows() == 1 ? 0 : m.cols(),
                   m.cols() == 1 ? int64_t{0} : int64_t{1}};
}

// Densify through the pool (Matrix::ToDense always heap-allocates).
Matrix DensifyPooled(const Matrix& m) {
  if (!m.is_sparse()) return m;
  Matrix out = DenseOut(m.rows(), m.cols(), /*zero=*/true);
  double* ov = out.values().data();
  const auto& rp = m.row_ptr();
  const auto& ci = m.col_idx();
  const auto& vv = m.csr_values();
  const int64_t cols = m.cols();
  for (int64_t r = 0; r < m.rows(); ++r) {
    double* orow = ov + r * cols;
    for (int64_t k = rp[static_cast<size_t>(r)];
         k < rp[static_cast<size_t>(r) + 1]; ++k) {
      orow[ci[static_cast<size_t>(k)]] = vv[static_cast<size_t>(k)];
    }
  }
  return out;
}

// Dense elementwise with broadcasting: row-parallel stride loops, with the
// inner column loop specialized on whether each operand recycles a column.
template <typename F>
Matrix DenseElemwise(const Matrix& a_in, const Matrix& b_in, F f) {
  int64_t rows, cols;
  CheckBroadcastable(a_in, b_in, &rows, &cols);
  Matrix a_own, b_own;  // keep pooled densified copies alive
  const Matrix* a = &a_in;
  const Matrix* b = &b_in;
  if (a_in.is_sparse()) {
    a_own = DensifyPooled(a_in);
    a = &a_own;
  }
  if (b_in.is_sparse()) {
    b_own = DensifyPooled(b_in);
    b = &b_own;
  }
  Matrix out = DenseOut(rows, cols, /*zero=*/false);
  double* ov = out.values().data();
  const BcastView va = ViewOf(*a);
  const BcastView vb = ViewOf(*b);
  auto body = [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const double* pa = va.data + r * va.row_stride;
      const double* pb = vb.data + r * vb.row_stride;
      double* po = ov + r * cols;
      if (va.col_stride == 1 && vb.col_stride == 1) {
        for (int64_t c = 0; c < cols; ++c) po[c] = f(pa[c], pb[c]);
      } else if (va.col_stride == 1) {
        const double y = pb[0];
        for (int64_t c = 0; c < cols; ++c) po[c] = f(pa[c], y);
      } else if (vb.col_stride == 1) {
        const double x = pa[0];
        for (int64_t c = 0; c < cols; ++c) po[c] = f(x, pb[c]);
      } else {
        const double v = f(pa[0], pb[0]);
        for (int64_t c = 0; c < cols; ++c) po[c] = v;
      }
    }
  };
  ThreadPool::Current().ParallelFor(rows, GrainRows(cols, kMinCellsPerChunk),
                                    body);
  if (a == &a_own) RecycleScratch(std::move(a_own));
  if (b == &b_own) RecycleScratch(std::move(b_own));
  return out;
}

// ---------------------------------------------------------------------------
// Sparse elementwise fast paths (no FromTriplets sort, no densification)
// ---------------------------------------------------------------------------

// a + b_scale * b over equal-shape CSR inputs: per-row two-pointer merge,
// zero sums dropped (matches the FromTriplets-based path this replaces).
Matrix CsrMerge(const Matrix& a, const Matrix& b, double b_scale) {
  const int64_t rows = a.rows(), cols = a.cols();
  const auto& arp = a.row_ptr();
  const auto& aci = a.col_idx();
  const auto& avv = a.csr_values();
  const auto& brp = b.row_ptr();
  const auto& bci = b.col_idx();
  const auto& bvv = b.csr_values();
  const size_t bound = avv.size() + bvv.size();
  std::vector<int64_t> rp = AllocIndices(static_cast<size_t>(rows) + 1);
  std::vector<int64_t> ci = AllocIndices(bound);
  std::vector<double> vv = AllocDoubles(bound, /*zero=*/false);
  size_t out_k = 0;
  rp[0] = 0;
  for (int64_t r = 0; r < rows; ++r) {
    int64_t pa = arp[static_cast<size_t>(r)];
    const int64_t ea = arp[static_cast<size_t>(r) + 1];
    int64_t pb = brp[static_cast<size_t>(r)];
    const int64_t eb = brp[static_cast<size_t>(r) + 1];
    while (pa < ea || pb < eb) {
      int64_t c;
      double v;
      if (pb >= eb ||
          (pa < ea && aci[static_cast<size_t>(pa)] < bci[static_cast<size_t>(pb)])) {
        c = aci[static_cast<size_t>(pa)];
        v = avv[static_cast<size_t>(pa)];
        ++pa;
      } else if (pa >= ea ||
                 bci[static_cast<size_t>(pb)] < aci[static_cast<size_t>(pa)]) {
        c = bci[static_cast<size_t>(pb)];
        v = b_scale * bvv[static_cast<size_t>(pb)];
        ++pb;
      } else {
        c = aci[static_cast<size_t>(pa)];
        v = avv[static_cast<size_t>(pa)] +
            b_scale * bvv[static_cast<size_t>(pb)];
        ++pa;
        ++pb;
      }
      if (v != 0.0) {
        ci[out_k] = c;
        vv[out_k] = v;
        ++out_k;
      }
    }
    rp[static_cast<size_t>(r) + 1] = static_cast<int64_t>(out_k);
  }
  ci.resize(out_k);
  vv.resize(out_k);
  return Matrix::FromCsr(rows, cols, std::move(rp), std::move(ci),
                         std::move(vv));
}

// a * b over equal-shape CSR inputs: per-row two-pointer intersection.
Matrix CsrIntersect(const Matrix& a, const Matrix& b) {
  const int64_t rows = a.rows(), cols = a.cols();
  const auto& arp = a.row_ptr();
  const auto& aci = a.col_idx();
  const auto& avv = a.csr_values();
  const auto& brp = b.row_ptr();
  const auto& bci = b.col_idx();
  const auto& bvv = b.csr_values();
  const size_t bound = std::min(avv.size(), bvv.size());
  std::vector<int64_t> rp = AllocIndices(static_cast<size_t>(rows) + 1);
  std::vector<int64_t> ci = AllocIndices(bound);
  std::vector<double> vv = AllocDoubles(bound, /*zero=*/false);
  size_t out_k = 0;
  rp[0] = 0;
  for (int64_t r = 0; r < rows; ++r) {
    int64_t pa = arp[static_cast<size_t>(r)];
    const int64_t ea = arp[static_cast<size_t>(r) + 1];
    int64_t pb = brp[static_cast<size_t>(r)];
    const int64_t eb = brp[static_cast<size_t>(r) + 1];
    while (pa < ea && pb < eb) {
      const int64_t ca = aci[static_cast<size_t>(pa)];
      const int64_t cb = bci[static_cast<size_t>(pb)];
      if (ca < cb) {
        ++pa;
      } else if (cb < ca) {
        ++pb;
      } else {
        const double v =
            avv[static_cast<size_t>(pa)] * bvv[static_cast<size_t>(pb)];
        if (v != 0.0) {
          ci[out_k] = ca;
          vv[out_k] = v;
          ++out_k;
        }
        ++pa;
        ++pb;
      }
    }
    rp[static_cast<size_t>(r) + 1] = static_cast<int64_t>(out_k);
  }
  ci.resize(out_k);
  vv.resize(out_k);
  return Matrix::FromCsr(rows, cols, std::move(rp), std::move(ci),
                         std::move(vv));
}

// Structure-copying transform over a CSR input: same support, transformed
// values, zeros compacted out (pow/apply/scale/division can hit zero via
// underflow).
template <typename F>
Matrix CsrTransform(const Matrix& a, F f) {
  const auto& arp = a.row_ptr();
  const auto& aci = a.col_idx();
  const auto& avv = a.csr_values();
  std::vector<int64_t> rp = AllocIndices(arp.size());
  std::vector<int64_t> ci = AllocIndices(avv.size());
  std::vector<double> vv = AllocDoubles(avv.size(), /*zero=*/false);
  size_t out_k = 0;
  rp[0] = 0;
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t k = arp[static_cast<size_t>(r)];
         k < arp[static_cast<size_t>(r) + 1]; ++k) {
      const double v = f(avv[static_cast<size_t>(k)], r,
                         aci[static_cast<size_t>(k)]);
      if (v != 0.0) {
        ci[out_k] = aci[static_cast<size_t>(k)];
        vv[out_k] = v;
        ++out_k;
      }
    }
    rp[static_cast<size_t>(r) + 1] = static_cast<int64_t>(out_k);
  }
  ci.resize(out_k);
  vv.resize(out_k);
  return Matrix::FromCsr(a.rows(), a.cols(), std::move(rp), std::move(ci),
                         std::move(vv));
}

// Equal-shape sparse +/- dense: copy (or negate) the dense side once, then
// scatter the sparse side's non-zeros — nnz work on the sparse operand
// instead of densifying it. `sparse_sign`/`dense_sign` select among
// sp+dn, sp-dn, dn-sp.
Matrix SparseDenseAdd(const Matrix& sp, const Matrix& dn, double sparse_sign,
                      double dense_sign) {
  const int64_t rows = sp.rows(), cols = sp.cols();
  Matrix out = DenseOut(rows, cols, /*zero=*/false);
  double* ov = out.values().data();
  const double* dv = dn.values().data();
  const int64_t total = rows * cols;
  if (dense_sign == 1.0) {
    ThreadPool::Current().ParallelFor(
        total, kMinCellsPerChunk, [&](int64_t i0, int64_t i1) {
          std::memcpy(ov + i0, dv + i0,
                      static_cast<size_t>(i1 - i0) * sizeof(double));
        });
  } else {
    ThreadPool::Current().ParallelFor(total, kMinCellsPerChunk,
                                      [&](int64_t i0, int64_t i1) {
                                        for (int64_t i = i0; i < i1; ++i) {
                                          ov[i] = -dv[i];
                                        }
                                      });
  }
  const auto& rp = sp.row_ptr();
  const auto& ci = sp.col_idx();
  const auto& vv = sp.csr_values();
  // Row-partitioned scatter: rows are disjoint, so parallel ranges never
  // touch the same output cell.
  const int64_t nnz_per_row =
      static_cast<int64_t>(vv.size()) / std::max<int64_t>(1, rows);
  ThreadPool::Current().ParallelFor(
      rows, GrainRows(nnz_per_row, kMinCellsPerChunk),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          double* orow = ov + r * cols;
          for (int64_t k = rp[static_cast<size_t>(r)];
               k < rp[static_cast<size_t>(r) + 1]; ++k) {
            orow[ci[static_cast<size_t>(k)]] +=
                sparse_sign * vv[static_cast<size_t>(k)];
          }
        }
      });
  return out;
}

// sp .* other (or sp ./ other) where the output support is within sp's
// support and `other` broadcasts over sp's shape. Dense `other` reads
// through a stride view; a sparse `other` (rare: both-sparse broadcast)
// falls back to At().
template <typename F>
Matrix SparseTimesBroadcast(const Matrix& sp, const Matrix& other, F f) {
  if (!other.is_sparse()) {
    const BcastView vo = ViewOf(other);
    return CsrTransform(sp, [&](double v, int64_t r, int64_t c) {
      return f(v, vo.data[r * vo.row_stride + c * vo.col_stride]);
    });
  }
  return CsrTransform(sp, [&](double v, int64_t r, int64_t c) {
    const int64_t rr = other.rows() == 1 ? 0 : r;
    const int64_t cc = other.cols() == 1 ? 0 : c;
    return f(v, other.At(rr, cc));
  });
}

// ---------------------------------------------------------------------------
// Matmul family
// ---------------------------------------------------------------------------

// Dense GEMM: B packed into KC x NC panels (contiguous, pool-backed) so the
// AVX2 axpy microkernel streams unit-stride, with rows of A partitioned
// across the pool per panel. Falls through to a plain ikj loop when the
// whole product is small.
constexpr int64_t kGemmKc = 256;
constexpr int64_t kGemmNc = 1024;

Matrix DenseGemm(const Matrix& a, const Matrix& b) {
  const int64_t m = a.rows(), n = b.cols(), kk = a.cols();
  Matrix out = DenseOut(m, n, /*zero=*/true);
  double* C = out.values().data();
  const double* A = a.values().data();
  const double* B = b.values().data();
  if (m * n * kk <= kMinFlopsPerChunk) {
    for (int64_t r = 0; r < m; ++r) {
      const double* arow = A + r * kk;
      double* crow = C + r * n;
      for (int64_t j = 0; j < kk; ++j) {
        const double av = arow[j];
        if (av == 0.0) continue;
        Axpy(av, B + j * n, crow, n);
      }
    }
    return out;
  }
  const bool pack = kk > kGemmKc || n > kGemmNc;
  std::vector<double> panel;
  if (pack) {
    panel = AllocDoubles(
        static_cast<size_t>(std::min(kGemmKc, kk) * std::min(kGemmNc, n)),
        /*zero=*/false);
  }
  for (int64_t jc = 0; jc < n; jc += kGemmNc) {
    const int64_t nb = std::min(kGemmNc, n - jc);
    for (int64_t kc = 0; kc < kk; kc += kGemmKc) {
      const int64_t kb = std::min(kGemmKc, kk - kc);
      const double* bp;
      int64_t bstride;
      if (pack) {
        for (int64_t k = 0; k < kb; ++k) {
          std::memcpy(panel.data() + k * nb, B + (kc + k) * n + jc,
                      static_cast<size_t>(nb) * sizeof(double));
        }
        bp = panel.data();
        bstride = nb;
      } else {
        bp = B;  // B itself is one contiguous kb x nb panel
        bstride = n;
      }
      ThreadPool::Current().ParallelFor(
          m, GrainRows(nb * kb, kMinFlopsPerChunk),
          [&](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
              const double* arow = A + r * kk + kc;
              double* crow = C + r * n + jc;
              for (int64_t k = 0; k < kb; ++k) {
                const double av = arow[k];
                if (av == 0.0) continue;
                Axpy(av, bp + k * bstride, crow, nb);
              }
            }
          });
    }
  }
  if (pack) RecycleScratch(std::move(panel));
  return out;
}

// Sparse x dense: rows of the sparse operand partition cleanly.
Matrix SparseDenseMatMul(const Matrix& a, const Matrix& b) {
  const int64_t m = a.rows(), n = b.cols();
  Matrix out = DenseOut(m, n, /*zero=*/true);
  double* C = out.values().data();
  const double* B = b.values().data();
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vv = a.csr_values();
  const int64_t flops_per_row =
      n * (static_cast<int64_t>(vv.size()) / std::max<int64_t>(1, m) + 1);
  ThreadPool::Current().ParallelFor(
      m, GrainRows(flops_per_row, kMinFlopsPerChunk),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          double* crow = C + r * n;
          for (int64_t p = rp[static_cast<size_t>(r)];
               p < rp[static_cast<size_t>(r) + 1]; ++p) {
            Axpy(vv[static_cast<size_t>(p)],
                 B + ci[static_cast<size_t>(p)] * n, crow, n);
          }
        }
      });
  return out;
}

// Dense x sparse: per output row, walk A's row and expand the matching CSR
// rows of B — row-partitioned (the old kernel streamed B's non-zeros with a
// serial column-scattered inner loop over all of A).
Matrix DenseSparseMatMul(const Matrix& a, const Matrix& b) {
  const int64_t m = a.rows(), n = b.cols(), kk = a.cols();
  Matrix out = DenseOut(m, n, /*zero=*/true);
  double* C = out.values().data();
  const double* A = a.values().data();
  const auto& rp = b.row_ptr();
  const auto& ci = b.col_idx();
  const auto& vv = b.csr_values();
  const int64_t work_per_row =
      kk + static_cast<int64_t>(vv.size()) / std::max<int64_t>(1, kk) * kk;
  ThreadPool::Current().ParallelFor(
      m, GrainRows(work_per_row, kMinFlopsPerChunk),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const double* arow = A + r * kk;
          double* crow = C + r * n;
          for (int64_t j = 0; j < kk; ++j) {
            const double av = arow[j];
            if (av == 0.0) continue;
            for (int64_t p = rp[static_cast<size_t>(j)];
                 p < rp[static_cast<size_t>(j) + 1]; ++p) {
              crow[ci[static_cast<size_t>(p)]] +=
                  av * vv[static_cast<size_t>(p)];
            }
          }
        }
      });
  return out;
}

// CSR x CSR (Gustavson): chunks of output rows are built independently with
// a dense sparse-accumulator per chunk, then stitched. The result stays CSR
// unless it densifies past 25% — sparse-sparse products in the workloads
// (selection/permutation-like chains) keep sparse outputs sparse.
Matrix SparseSparseMatMul(const Matrix& a, const Matrix& b) {
  const int64_t m = a.rows(), n = b.cols();
  const auto& arp = a.row_ptr();
  const auto& aci = a.col_idx();
  const auto& avv = a.csr_values();
  const auto& brp = b.row_ptr();
  const auto& bci = b.col_idx();
  const auto& bvv = b.csr_values();

  ThreadPool& pool = ThreadPool::Current();
  const int64_t target_chunks =
      std::min<int64_t>(pool.num_threads(),
                        std::max<int64_t>(1, static_cast<int64_t>(avv.size()) /
                                                 (int64_t{1} << 14)));
  const int64_t nchunks = std::max<int64_t>(
      1, std::min<int64_t>(target_chunks, m));

  struct Chunk {
    int64_t r0 = 0, r1 = 0;
    std::vector<int64_t> ci;
    std::vector<double> vv;
    std::vector<int64_t> row_nnz;
  };
  std::vector<Chunk> chunks(static_cast<size_t>(nchunks));
  for (int64_t c = 0; c < nchunks; ++c) {
    chunks[static_cast<size_t>(c)].r0 = m * c / nchunks;
    chunks[static_cast<size_t>(c)].r1 = m * (c + 1) / nchunks;
  }

  pool.ParallelFor(nchunks, 1, [&](int64_t c0, int64_t c1) {
    // Scratch is plain-allocated: worker threads must not touch the
    // caller's BufferPool (it is single-threaded by contract).
    std::vector<double> acc(static_cast<size_t>(n), 0.0);
    std::vector<int64_t> touched;
    for (int64_t c = c0; c < c1; ++c) {
      Chunk& ch = chunks[static_cast<size_t>(c)];
      ch.row_nnz.assign(static_cast<size_t>(ch.r1 - ch.r0), 0);
      for (int64_t r = ch.r0; r < ch.r1; ++r) {
        touched.clear();
        for (int64_t p = arp[static_cast<size_t>(r)];
             p < arp[static_cast<size_t>(r) + 1]; ++p) {
          const int64_t j = aci[static_cast<size_t>(p)];
          const double av = avv[static_cast<size_t>(p)];
          for (int64_t q = brp[static_cast<size_t>(j)];
               q < brp[static_cast<size_t>(j) + 1]; ++q) {
            const int64_t col = bci[static_cast<size_t>(q)];
            if (acc[static_cast<size_t>(col)] == 0.0) {
              touched.push_back(col);
            }
            acc[static_cast<size_t>(col)] += av * bvv[static_cast<size_t>(q)];
          }
        }
        // CSR wants sorted columns; cancellation to exact 0.0 is dropped.
        std::sort(touched.begin(), touched.end());
        int64_t emitted = 0;
        for (int64_t col : touched) {
          const double v = acc[static_cast<size_t>(col)];
          acc[static_cast<size_t>(col)] = 0.0;
          if (v == 0.0) continue;  // either cancelled or a re-touched zero
          ch.ci.push_back(col);
          ch.vv.push_back(v);
          ++emitted;
        }
        ch.row_nnz[static_cast<size_t>(r - ch.r0)] = emitted;
      }
    }
  });

  size_t total_nnz = 0;
  for (const Chunk& ch : chunks) total_nnz += ch.vv.size();
  std::vector<int64_t> rp = AllocIndices(static_cast<size_t>(m) + 1);
  std::vector<int64_t> ci = AllocIndices(total_nnz);
  std::vector<double> vv = AllocDoubles(total_nnz, /*zero=*/false);
  rp[0] = 0;
  size_t at = 0;
  int64_t row = 0;
  for (const Chunk& ch : chunks) {
    for (int64_t nnz : ch.row_nnz) {
      rp[static_cast<size_t>(row) + 1] = rp[static_cast<size_t>(row)] + nnz;
      ++row;
    }
    if (!ch.ci.empty()) {
      std::memcpy(ci.data() + at, ch.ci.data(),
                  ch.ci.size() * sizeof(int64_t));
      std::memcpy(vv.data() + at, ch.vv.data(), ch.vv.size() * sizeof(double));
      at += ch.ci.size();
    }
  }
  Matrix out = Matrix::FromCsr(m, n, std::move(rp), std::move(ci),
                               std::move(vv));
  if (!PreferSparseScope::Active() &&
      static_cast<int64_t>(total_nnz) * 4 > m * n) {
    Matrix dense = DensifyPooled(out);
    RecycleScratch(std::move(out));
    return dense;
  }
  return out;
}

// Touched-cols note: a re-touched column whose running sum passed through
// exact 0.0 gets pushed twice; the second visit sees acc == 0.0 after the
// first emit cleared it and is dropped by the v == 0.0 guard above. The
// duplicate push is handled by clearing acc at emit time.

}  // namespace

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

Matrix Add(const Matrix& a, const Matrix& b) {
  if (a.rows() == b.rows() && a.cols() == b.cols()) {
    if (a.is_sparse() && b.is_sparse()) return CsrMerge(a, b, 1.0);
    if (a.is_sparse() && !b.is_sparse()) return SparseDenseAdd(a, b, 1.0, 1.0);
    if (!a.is_sparse() && b.is_sparse()) return SparseDenseAdd(b, a, 1.0, 1.0);
  }
  return DenseElemwise(a, b, [](double x, double y) { return x + y; });
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  if (a.rows() == b.rows() && a.cols() == b.cols()) {
    if (a.is_sparse() && b.is_sparse()) return CsrMerge(a, b, -1.0);
    if (a.is_sparse() && !b.is_sparse()) {
      return SparseDenseAdd(a, b, 1.0, -1.0);
    }
    if (!a.is_sparse() && b.is_sparse()) {
      return SparseDenseAdd(b, a, -1.0, 1.0);
    }
  }
  return DenseElemwise(a, b, [](double x, double y) { return x - y; });
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  // Scalar fast paths.
  if (a.IsScalar()) return Scale(b, a.AsScalar());
  if (b.IsScalar()) return Scale(a, b.AsScalar());
  if (a.is_sparse() && b.is_sparse() && a.rows() == b.rows() &&
      a.cols() == b.cols()) {
    return CsrIntersect(a, b);
  }
  // Sparsity-exploiting paths: the output's support is within the sparse
  // operand's support.
  if (a.is_sparse() && a.rows() >= b.rows() && a.cols() >= b.cols()) {
    return SparseTimesBroadcast(a, b,
                                [](double x, double y) { return x * y; });
  }
  if (b.is_sparse() && b.rows() >= a.rows() && b.cols() >= a.cols()) {
    return SparseTimesBroadcast(b, a,
                                [](double x, double y) { return x * y; });
  }
  return DenseElemwise(a, b, [](double x, double y) { return x * y; });
}

Matrix Div(const Matrix& a, const Matrix& b) {
  if (a.is_sparse() && b.rows() <= a.rows() && b.cols() <= a.cols()) {
    // 0 / y == 0: iterate a's non-zeros only. Matches the historical
    // reciprocal-then-multiply form (x * (1/y)) bit for bit.
    return SparseTimesBroadcast(
        a, b, [](double x, double y) { return x * (1.0 / y); });
  }
  return DenseElemwise(a, b, [](double x, double y) { return x / y; });
}

Matrix PowElem(const Matrix& a, double exponent) {
  if (a.is_sparse() && exponent > 0) {
    return CsrTransform(a, [exponent](double v, int64_t, int64_t) {
      return std::pow(v, exponent);
    });
  }
  Matrix da;
  if (a.is_sparse()) da = DensifyPooled(a);
  const double* av = (a.is_sparse() ? da : a).values().data();
  Matrix out = DenseOut(a.rows(), a.cols(), /*zero=*/false);
  double* ov = out.values().data();
  ThreadPool::Current().ParallelFor(
      a.size(), kMinCellsPerChunk, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) ov[i] = std::pow(av[i], exponent);
      });
  if (a.is_sparse()) RecycleScratch(std::move(da));
  return out;
}

Matrix Apply(const Matrix& a, double (*fn)(double), bool preserves_zero) {
  if (a.is_sparse() && preserves_zero) {
    return CsrTransform(a, [fn](double v, int64_t, int64_t) { return fn(v); });
  }
  if (a.is_sparse()) {
    // Non-zero-preserving fn over CSR: every absent cell maps to fn(0), so
    // fill with that once and overwrite the stored non-zeros — no dense
    // intermediate of the input.
    const double fill = fn(0.0);
    Matrix out = DenseOut(a.rows(), a.cols(), /*zero=*/false);
    double* ov = out.values().data();
    std::fill(ov, ov + a.size(), fill);
    const auto& rp = a.row_ptr();
    const auto& ci = a.col_idx();
    const auto& vv = a.csr_values();
    const int64_t cols = a.cols();
    for (int64_t r = 0; r < a.rows(); ++r) {
      double* orow = ov + r * cols;
      for (int64_t k = rp[static_cast<size_t>(r)];
           k < rp[static_cast<size_t>(r) + 1]; ++k) {
        orow[ci[static_cast<size_t>(k)]] = fn(vv[static_cast<size_t>(k)]);
      }
    }
    return out;
  }
  Matrix out = DenseOut(a.rows(), a.cols(), /*zero=*/false);
  double* ov = out.values().data();
  const double* av = a.values().data();
  ThreadPool::Current().ParallelFor(a.size(), kMinCellsPerChunk,
                                    [&](int64_t i0, int64_t i1) {
                                      for (int64_t i = i0; i < i1; ++i) {
                                        ov[i] = fn(av[i]);
                                      }
                                    });
  return out;
}

Matrix Unary(const std::string& fn, const Matrix& a) {
  if (fn == "exp") return Apply(a, [](double v) { return std::exp(v); }, false);
  if (fn == "log") return Apply(a, [](double v) { return std::log(v); }, false);
  if (fn == "sqrt") {
    return Apply(a, [](double v) { return std::sqrt(v); }, true);
  }
  if (fn == "sigmoid") {
    return Apply(a, [](double v) { return 1.0 / (1.0 + std::exp(-v)); },
                 false);
  }
  if (fn == "sign") {
    return Apply(
        a, [](double v) { return static_cast<double>((v > 0) - (v < 0)); },
        true);
  }
  if (fn == "abs") return Apply(a, [](double v) { return std::abs(v); }, true);
  SPORES_CHECK_MSG(false, ("unknown unary fn: " + fn).c_str());
  return a;
}

// ---------------------------------------------------------------------------
// Matmul
// ---------------------------------------------------------------------------

Matrix MatMul(const Matrix& a, const Matrix& b) {
  SPORES_CHECK_EQ(a.cols(), b.rows());
  if (a.is_sparse() && b.is_sparse()) return SparseSparseMatMul(a, b);
  if (a.is_sparse()) return SparseDenseMatMul(a, b);
  if (b.is_sparse()) return DenseSparseMatMul(a, b);
  return DenseGemm(a, b);
}

Matrix TransLeftMatMul(const Matrix& a, const Matrix& b) {
  SPORES_CHECK_EQ(a.rows(), b.rows());
  if (a.is_sparse()) {
    // t(A) in CSR is a counting-sort away (O(nnz)); the product then runs
    // the row-partitioned sparse matmuls instead of a serial scatter.
    Matrix at = Transpose(a);
    Matrix out = MatMul(at, b);
    RecycleScratch(std::move(at));
    return out;
  }
  const int64_t m = a.cols(), n = b.cols(), kk = a.rows();
  if (b.is_sparse()) {
    // Dense t(A) is one blocked pass; the dense x sparse kernel then
    // partitions rows of the output.
    Matrix at = Transpose(a);
    Matrix out = DenseSparseMatMul(at, b);
    RecycleScratch(std::move(at));
    return out;
  }
  Matrix out = DenseOut(m, n, /*zero=*/true);
  double* C = out.values().data();
  const double* A = a.values().data();
  const double* B = b.values().data();
  // Partition output rows j; each range streams A and B once and owns its
  // C rows exclusively.
  ThreadPool::Current().ParallelFor(
      m, GrainRows(kk * n, kMinFlopsPerChunk),
      [&](int64_t j0, int64_t j1) {
        for (int64_t r = 0; r < kk; ++r) {
          const double* arow = A + r * m;
          const double* brow = B + r * n;
          for (int64_t j = j0; j < j1; ++j) {
            const double ajr = arow[j];
            if (ajr == 0.0) continue;
            Axpy(ajr, brow, C + j * n, n);
          }
        }
      });
  return out;
}

Matrix TransRightMatMul(const Matrix& a, const Matrix& b) {
  SPORES_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows(), n = b.rows(), kk = a.cols();
  if (a.is_sparse() && b.is_sparse()) {
    Matrix bt = Transpose(b);
    Matrix out = SparseSparseMatMul(a, bt);
    RecycleScratch(std::move(bt));
    return out;
  }
  if (b.is_sparse()) {
    // out[r, i] = <A row r, B row i>: B's CSR rows are gathered against the
    // dense A row — row-partitioned over r (the old kernel scattered into
    // output columns serially).
    Matrix da = a;  // a is dense here
    const double* A = da.values().data();
    Matrix out = DenseOut(m, n, /*zero=*/false);
    double* C = out.values().data();
    const auto& rp = b.row_ptr();
    const auto& ci = b.col_idx();
    const auto& vv = b.csr_values();
    const int64_t flops_per_row = static_cast<int64_t>(vv.size()) + n;
    ThreadPool::Current().ParallelFor(
        m, GrainRows(flops_per_row, kMinFlopsPerChunk),
        [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const double* arow = A + r * kk;
            double* crow = C + r * n;
            for (int64_t i = 0; i < n; ++i) {
              double acc = 0.0;
              for (int64_t p = rp[static_cast<size_t>(i)];
                   p < rp[static_cast<size_t>(i) + 1]; ++p) {
                acc += arow[ci[static_cast<size_t>(p)]] *
                       vv[static_cast<size_t>(p)];
              }
              crow[i] = acc;
            }
          }
        });
    return out;
  }
  if (a.is_sparse()) {
    // out[r, i] = <A row r (sparse), B row i (dense)>: gather from B's
    // contiguous row — row-partitioned over r.
    Matrix out = DenseOut(m, n, /*zero=*/false);
    double* C = out.values().data();
    const double* B = b.values().data();
    const auto& rp = a.row_ptr();
    const auto& ci = a.col_idx();
    const auto& vv = a.csr_values();
    const int64_t flops_per_row =
        n * (static_cast<int64_t>(vv.size()) / std::max<int64_t>(1, m) + 1);
    ThreadPool::Current().ParallelFor(
        m, GrainRows(flops_per_row, kMinFlopsPerChunk),
        [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            double* crow = C + r * n;
            const int64_t pa = rp[static_cast<size_t>(r)];
            const int64_t ea = rp[static_cast<size_t>(r) + 1];
            for (int64_t i = 0; i < n; ++i) {
              const double* brow = B + i * kk;
              double acc = 0.0;
              for (int64_t p = pa; p < ea; ++p) {
                acc += vv[static_cast<size_t>(p)] *
                       brow[ci[static_cast<size_t>(p)]];
              }
              crow[i] = acc;
            }
          }
        });
    return out;
  }
  Matrix out = DenseOut(m, n, /*zero=*/false);
  double* C = out.values().data();
  const double* A = a.values().data();
  const double* B = b.values().data();
  ThreadPool::Current().ParallelFor(
      m, GrainRows(n * kk, kMinFlopsPerChunk), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const double* arow = A + r * kk;
          double* crow = C + r * n;
          for (int64_t i = 0; i < n; ++i) {
            crow[i] = Dot(arow, B + i * kk, kk);
          }
        }
      });
  return out;
}

// ---------------------------------------------------------------------------
// Transpose / aggregates / scale
// ---------------------------------------------------------------------------

Matrix Transpose(const Matrix& a) {
  if (a.is_sparse()) {
    // Counting sort on column indices: O(nnz + cols), no triplet sort.
    // Scattering in row-major source order keeps each output row's columns
    // sorted.
    const auto& rp = a.row_ptr();
    const auto& ci = a.col_idx();
    const auto& vv = a.csr_values();
    const int64_t tr = a.cols(), tc = a.rows();
    std::vector<int64_t> trp = AllocIndices(static_cast<size_t>(tr) + 1,
                                            /*zero=*/true);
    std::vector<int64_t> tci = AllocIndices(vv.size());
    std::vector<double> tvv = AllocDoubles(vv.size(), /*zero=*/false);
    for (int64_t c : ci) ++trp[static_cast<size_t>(c) + 1];
    for (size_t i = 1; i < trp.size(); ++i) trp[i] += trp[i - 1];
    std::vector<int64_t> next(trp.begin(), trp.end() - 1);
    for (int64_t r = 0; r < tc; ++r) {
      for (int64_t k = rp[static_cast<size_t>(r)];
           k < rp[static_cast<size_t>(r) + 1]; ++k) {
        const int64_t c = ci[static_cast<size_t>(k)];
        const int64_t pos = next[static_cast<size_t>(c)]++;
        tci[static_cast<size_t>(pos)] = r;
        tvv[static_cast<size_t>(pos)] = vv[static_cast<size_t>(k)];
      }
    }
    return Matrix::FromCsr(tr, tc, std::move(trp), std::move(tci),
                           std::move(tvv));
  }
  const int64_t rows = a.rows(), cols = a.cols();
  Matrix out = DenseOut(cols, rows, /*zero=*/false);
  double* ov = out.values().data();
  const double* av = a.values().data();
  // 32x32 tiles keep both the read and write side within a few cache lines;
  // parallel over bands of output rows (source columns).
  constexpr int64_t kTile = 32;
  ThreadPool::Current().ParallelFor(
      cols, GrainRows(rows, kMinCellsPerChunk), [&](int64_t c0, int64_t c1) {
        for (int64_t ct = c0; ct < c1; ct += kTile) {
          const int64_t ce = std::min(ct + kTile, c1);
          for (int64_t rt = 0; rt < rows; rt += kTile) {
            const int64_t re = std::min(rt + kTile, rows);
            for (int64_t c = ct; c < ce; ++c) {
              for (int64_t r = rt; r < re; ++r) {
                ov[c * rows + r] = av[r * cols + c];
              }
            }
          }
        }
      });
  return out;
}

Matrix RowSums(const Matrix& a) {
  Matrix out = DenseOut(a.rows(), 1, /*zero=*/false);
  double* ov = out.values().data();
  const int64_t cols = a.cols();
  if (a.is_sparse()) {
    const auto& rp = a.row_ptr();
    const auto& vv = a.csr_values();
    ThreadPool::Current().ParallelFor(
        a.rows(), GrainRows(cols, kMinCellsPerChunk),
        [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            double s = 0.0;
            for (int64_t k = rp[static_cast<size_t>(r)];
                 k < rp[static_cast<size_t>(r) + 1]; ++k) {
              s += vv[static_cast<size_t>(k)];
            }
            ov[r] = s;
          }
        });
    return out;
  }
  const double* av = a.values().data();
  ThreadPool::Current().ParallelFor(
      a.rows(), GrainRows(cols, kMinCellsPerChunk),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const double* arow = av + r * cols;
          double s = 0.0;
          for (int64_t c = 0; c < cols; ++c) s += arow[c];
          ov[r] = s;
        }
      });
  return out;
}

// ColSums and SumAll stay serial in the historical accumulation order: they
// are single-pass memory-bound, and a fixed association keeps results
// bitwise independent of thread count (the runtime_test identity checks
// rely on that).
Matrix ColSums(const Matrix& a) {
  Matrix out = DenseOut(1, a.cols(), /*zero=*/true);
  double* ov = out.values().data();
  if (a.is_sparse()) {
    const auto& rp = a.row_ptr();
    const auto& ci = a.col_idx();
    const auto& vv = a.csr_values();
    for (int64_t r = 0; r < a.rows(); ++r) {
      for (int64_t k = rp[static_cast<size_t>(r)];
           k < rp[static_cast<size_t>(r) + 1]; ++k) {
        ov[ci[static_cast<size_t>(k)]] += vv[static_cast<size_t>(k)];
      }
    }
    return out;
  }
  const double* av = a.values().data();
  const int64_t cols = a.cols();
  for (int64_t r = 0; r < a.rows(); ++r) {
    const double* arow = av + r * cols;
    for (int64_t c = 0; c < cols; ++c) ov[c] += arow[c];
  }
  return out;
}

double SumAll(const Matrix& a) {
  double s = 0.0;
  if (a.is_sparse()) {
    for (double v : a.csr_values()) s += v;
    return s;
  }
  for (double v : a.values()) s += v;
  return s;
}

Matrix Scale(const Matrix& a, double s) {
  if (a.is_sparse()) {
    if (s == 0.0) return Matrix::Sparse(a.rows(), a.cols());
    return CsrTransform(a,
                        [s](double v, int64_t, int64_t) { return s * v; });
  }
  Matrix out = DenseOut(a.rows(), a.cols(), /*zero=*/false);
  double* ov = out.values().data();
  const double* av = a.values().data();
  ThreadPool::Current().ParallelFor(a.size(), kMinCellsPerChunk,
                                    [&](int64_t i0, int64_t i1) {
                                      for (int64_t i = i0; i < i1; ++i) {
                                        ov[i] = s * av[i];
                                      }
                                    });
  return out;
}

PreferSparseScope::PreferSparseScope() : prev_(tls_prefer_sparse) {
  ++tls_prefer_sparse;
}

PreferSparseScope::~PreferSparseScope() { tls_prefer_sparse = prev_; }

bool PreferSparseScope::Active() { return tls_prefer_sparse > 0; }

}  // namespace spores
