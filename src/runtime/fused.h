// Fused operators mirroring SystemML's (Sec 3.3 / Sec 4.2): they compute
// composite expressions without materializing dense intermediates, which is
// where several of the paper's speedups come from.
#pragma once

#include <cstdint>
#include <vector>

#include "src/runtime/matrix.h"

namespace spores {

/// wsloss: sum((X - U V^T)^2) streamed over nnz(X) plus a rank-k correction:
///   sum(X^2) - 2 * sum(X * (U V^T)) + sum_{ab} (U^T U)_ab (V^T V)_ab.
/// Never materializes the dense U V^T (paper's weighted-squared-loss op).
double WsLoss(const Matrix& x, const Matrix& u, const Matrix& v);

/// sprop: P * (1 - P) in one pass with a single output allocation.
Matrix SProp(const Matrix& p);

/// mmchain: evaluates a matrix-multiplication chain with the optimal
/// association order (classic interval DP over dimensions), the effect of
/// SystemML's fused mmchain operator.
Matrix MMChain(const std::vector<Matrix>& chain);

/// mmchain with per-factor transpose flags: factor i participates as
/// t(*chain[i]) when transposed[i] is non-zero. The DP runs over effective
/// (post-transpose) dimensions and transposed factors are never
/// materialized — leaf products dispatch to the fused TransLeftMatMul /
/// TransRightMatMul kernels (or t(B %*% A) when both sides are flagged).
Matrix MMChainT(const std::vector<const Matrix*>& chain,
                const std::vector<uint8_t>& transposed);

}  // namespace spores
