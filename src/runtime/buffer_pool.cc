#include "src/runtime/buffer_pool.h"

#include <algorithm>

namespace spores {

namespace {

thread_local BufferPool* tls_pool = nullptr;

}  // namespace

BufferPool::BufferPool(size_t max_held_bytes)
    : max_held_bytes_(max_held_bytes) {}

size_t BufferPool::ClassOfCapacity(size_t capacity) {
  size_t c = 0;
  while ((size_t{1} << (c + 1)) <= capacity && c + 1 < kNumClasses) ++c;
  return c;
}

size_t BufferPool::ClassForRequest(size_t n) {
  size_t c = 0;
  while ((size_t{1} << c) < n && c + 1 < kNumClasses) ++c;
  return c;
}

template <typename T>
std::vector<T> BufferPool::AcquireImpl(
    std::vector<std::vector<T>> (&classes)[kNumClasses], size_t n,
    bool zero) {
  if (live_bytes_cap_ != 0 &&
      stats_.live_bytes + n * sizeof(T) > live_bytes_cap_) {
    throw PoolMemoryLimitError();
  }
  // Search the exact class and one above: anything larger wastes too much
  // capacity on a small request.
  size_t first = ClassForRequest(n);
  for (size_t c = first; c < std::min(first + 2, kNumClasses); ++c) {
    auto& list = classes[c];
    if (list.empty()) continue;
    std::vector<T> v = std::move(list.back());
    list.pop_back();
    stats_.bytes_held -= v.capacity() * sizeof(T);
    ++stats_.reuse_hits;
    v.resize(n);
    if (zero) std::fill(v.begin(), v.end(), T{});
    NoteAcquired(v.capacity() * sizeof(T));
    return v;
  }
  ++stats_.fresh_allocs;
  std::vector<T> v;
  if (zero) {
    v.assign(n, T{});
  } else {
    v.reserve(std::max<size_t>(n, size_t{1} << first));
    v.resize(n);
  }
  NoteAcquired(v.capacity() * sizeof(T));
  return v;
}

void BufferPool::NoteAcquired(size_t bytes) {
  stats_.live_bytes += bytes;
  if (stats_.live_bytes > stats_.live_high_water) {
    stats_.live_high_water = stats_.live_bytes;
  }
}

template <typename T>
void BufferPool::ReleaseImpl(
    std::vector<std::vector<T>> (&classes)[kNumClasses], std::vector<T>&& v) {
  size_t bytes = v.capacity() * sizeof(T);
  if (bytes == 0) return;
  stats_.live_bytes -= std::min(bytes, stats_.live_bytes);
  if (stats_.bytes_held + bytes > max_held_bytes_) {
    ++stats_.dropped;
    return;  // v frees on scope exit
  }
  ++stats_.released;
  stats_.bytes_held += bytes;
  classes[ClassOfCapacity(v.capacity())].push_back(std::move(v));
}

std::vector<double> BufferPool::AcquireDoubles(size_t n, bool zero) {
  return AcquireImpl(double_classes_, n, zero);
}

std::vector<int64_t> BufferPool::AcquireIndices(size_t n, bool zero) {
  return AcquireImpl(index_classes_, n, zero);
}

void BufferPool::Release(std::vector<double>&& v) {
  ReleaseImpl(double_classes_, std::move(v));
}

void BufferPool::Release(std::vector<int64_t>&& v) {
  ReleaseImpl(index_classes_, std::move(v));
}

void BufferPool::Recycle(Matrix&& m) {
  if (m.is_sparse()) {
    Release(std::move(m.row_ptr_));
    Release(std::move(m.col_idx_));
    Release(std::move(m.vals_));
  } else {
    Release(std::move(m.dense_));
  }
  m = Matrix();
}

void BufferPool::Clear() {
  for (auto& list : double_classes_) list.clear();
  for (auto& list : index_classes_) list.clear();
  stats_.bytes_held = 0;
}

BufferPool* BufferPool::Current() { return tls_pool; }

BufferPool::ScopedUse::ScopedUse(BufferPool* pool) : prev_(tls_pool) {
  tls_pool = pool;
}

BufferPool::ScopedUse::~ScopedUse() { tls_pool = prev_; }

}  // namespace spores
