// DAG executor: evaluates LA expression trees against bound inputs, with
// common-subexpression caching (shared Expr nodes evaluate once) and
// matmul-chain flattening (the mmchain effect). This is the substitute for
// SystemML's runtime (DESIGN.md).
//
// Execution happens in two passes:
//  1. Analyze — memoized shape inference over the DAG. Every recoverable
//     input problem (unbound symbol, mid-DAG shape mismatch, unknown unary,
//     non-LA op) surfaces here as a Status BEFORE any kernel runs; the
//     kernels' own SPORES_CHECKs are thereby unreachable invariants, not
//     error paths. Analyze also counts how many times each node's value is
//     consumed.
//  2. Evaluate — bottom-up with a zero-copy cache (bound inputs are
//     borrowed from the Bindings, computed values owned) and eager release:
//     when an intermediate's last consumer has run, its payload recycles
//     into the BufferPool immediately instead of living to the end of the
//     DAG.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/expr.h"
#include "src/runtime/buffer_pool.h"
#include "src/runtime/matrix.h"
#include "src/util/status.h"

namespace spores {

/// Named inputs for one execution.
class Bindings {
 public:
  void Bind(std::string_view name, Matrix value);
  bool Has(Symbol name) const { return values_.count(name) > 0; }

  /// The bound value, or NotFound for an unbound symbol (no crash).
  StatusOr<const Matrix*> Get(Symbol name) const;

  /// The bound value, or null when unbound — the non-erroring lookup.
  const Matrix* Find(Symbol name) const;

  /// Derives a Catalog (shapes + measured sparsity) from the bound values.
  Catalog ToCatalog() const;

 private:
  std::unordered_map<Symbol, Matrix> values_;
};

/// One executed operator's footprint, for feedback-driven costing.
struct OpProfile {
  const char* op = "";      ///< operator name (OpName)
  int64_t rows = 0;         ///< output rows
  int64_t cols = 0;         ///< output cols
  int64_t out_nnz = -1;     ///< observed output non-zeros; -1 when not
                            ///< measured (dense outputs are only scanned
                            ///< when ExecStats::track_dense_nnz is set —
                            ///< the scan is O(size) and would pollute
                            ///< timings otherwise)
  double seconds = 0.0;     ///< wall time of the kernel dispatch
};

struct ExecStats {
  size_t ops_executed = 0;
  size_t cse_hits = 0;
  double peak_cells_allocated = 0;  ///< sum of output cells, a memory proxy
  size_t eager_releases = 0;  ///< intermediates recycled at their last use
  size_t memory_fallbacks = 0;  ///< executions retried under PreferSparse
                                ///< after an allocation failure
  bool track_dense_nnz = false;  ///< opt-in exact nnz for dense outputs
  /// Per-op wall time + observed nnz for the MOST RECENT Execute call:
  /// cleared at the start of every evaluation attempt (including the
  /// sparse retry after an allocation failure), so a long-lived ExecStats
  /// reused across an arena's DAG batches never grows without bound.
  /// Consumers feeding calibration must harvest it between calls. The
  /// cumulative counters above are NOT reset.
  std::vector<OpProfile> profile;
};

/// Buffer reuse scope spanning many Execute calls: kernel outputs and
/// eagerly-released intermediates recycle across the DAGs of a whole batch
/// (or a serving shard's lifetime), not just within one expression.
/// Not internally synchronized — one arena per executing thread.
class ExecutorArena {
 public:
  explicit ExecutorArena(
      size_t max_held_bytes = BufferPool::kDefaultMaxHeldBytes)
      : pool_(max_held_bytes) {}

  BufferPool& pool() { return pool_; }
  const BufferPool::Stats& pool_stats() const { return pool_.stats(); }

 private:
  BufferPool pool_;
};

/// Evaluates `expr` against `inputs`. Shared subtrees (same Expr node)
/// compute once. Without an arena, a private per-execution pool still
/// recycles intermediates within the DAG.
StatusOr<Matrix> Execute(const ExprPtr& expr, const Bindings& inputs,
                         ExecStats* stats = nullptr);
StatusOr<Matrix> Execute(const ExprPtr& expr, const Bindings& inputs,
                         ExecutorArena* arena, ExecStats* stats = nullptr);

}  // namespace spores
