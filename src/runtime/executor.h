// DAG executor: evaluates LA expression trees against bound inputs, with
// common-subexpression caching (shared Expr nodes evaluate once) and
// matmul-chain flattening (the mmchain effect). This is the substitute for
// SystemML's runtime (DESIGN.md).
#pragma once

#include <unordered_map>

#include "src/ir/expr.h"
#include "src/runtime/matrix.h"
#include "src/util/status.h"

namespace spores {

/// Named inputs for one execution.
class Bindings {
 public:
  void Bind(std::string_view name, Matrix value);
  bool Has(Symbol name) const { return values_.count(name) > 0; }
  const Matrix& Get(Symbol name) const;

  /// Derives a Catalog (shapes + measured sparsity) from the bound values.
  Catalog ToCatalog() const;

 private:
  std::unordered_map<Symbol, Matrix> values_;
};

struct ExecStats {
  size_t ops_executed = 0;
  size_t cse_hits = 0;
  double peak_cells_allocated = 0;  ///< sum of output cells, a memory proxy
};

/// Evaluates `expr` against `inputs`. Shared subtrees (same Expr node)
/// compute once.
StatusOr<Matrix> Execute(const ExprPtr& expr, const Bindings& inputs,
                         ExecStats* stats = nullptr);

}  // namespace spores
