// Internal vectorized microkernels for the runtime (kernels.cc, fused.cc).
// Explicit SIMD is gated twice, per the "optional explicit SIMD behind a
// feature check" contract: compile-time (x86-64 with GCC/Clang target
// attributes) and runtime (__builtin_cpu_supports), so the same binary runs
// on machines without AVX2 — it just takes the scalar loops, which are
// written restrict/contiguous so the autovectorizer can still help.
//
// Determinism: Axpy is element-independent (bitwise identical to scalar).
// Dot uses fixed 8-wide accumulator association — deterministic for a given
// binary and input, independent of thread count.
#pragma once

#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SPORES_SIMD_X86 1
#include <immintrin.h>
#endif

namespace spores {
namespace simd {

#if defined(SPORES_SIMD_X86)

inline bool HasAvx2Fma() {
  static const bool has =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has;
}

__attribute__((target("avx2,fma"))) inline void AxpyAvx2(
    double a, const double* __restrict x, double* __restrict y, int64_t n) {
  const __m256d va = _mm256_set1_pd(a);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d y0 = _mm256_loadu_pd(y + i);
    __m256d y1 = _mm256_loadu_pd(y + i + 4);
    y0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), y0);
    y1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4), y1);
    _mm256_storeu_pd(y + i, y0);
    _mm256_storeu_pd(y + i + 4, y1);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx2,fma"))) inline double DotAvx2(
    const double* __restrict x, const double* __restrict y, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

#endif  // SPORES_SIMD_X86

/// y[0..n) += a * x[0..n).
inline void Axpy(double a, const double* __restrict x, double* __restrict y,
                 int64_t n) {
#if defined(SPORES_SIMD_X86)
  if (n >= 16 && HasAvx2Fma()) {
    AxpyAvx2(a, x, y, n);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

/// sum_i x[i] * y[i].
inline double Dot(const double* __restrict x, const double* __restrict y,
                  int64_t n) {
#if defined(SPORES_SIMD_X86)
  if (n >= 16 && HasAvx2Fma()) return DotAvx2(x, y, n);
#endif
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

}  // namespace simd
}  // namespace spores
