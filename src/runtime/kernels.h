// Elementwise, matmul, aggregate and transpose kernels over Matrix, with
// SystemML/R-style broadcasting for elementwise operators (scalar, row
// vector, column vector recycle against a matrix). Sparse inputs take
// sparsity-exploiting paths; outputs are sparse where zeros are preserved.
#pragma once

#include "src/runtime/matrix.h"

namespace spores {

// Elementwise with broadcasting (shapes must be compatible: equal or 1).
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Mul(const Matrix& a, const Matrix& b);
Matrix Div(const Matrix& a, const Matrix& b);

/// Elementwise power with constant exponent.
Matrix PowElem(const Matrix& a, double exponent);

/// Applies `fn` to every cell. `preserves_zero` routes sparse inputs through
/// the nnz-only fast path.
Matrix Apply(const Matrix& a, double (*fn)(double), bool preserves_zero);

/// Elementwise unary by name: exp/log/sqrt/sigmoid/sign/abs.
Matrix Unary(const std::string& fn, const Matrix& a);

/// Matrix product (dense/sparse x dense/sparse).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// t(a) %*% b without materializing the transpose (SystemML fuses this).
Matrix TransLeftMatMul(const Matrix& a, const Matrix& b);

/// a %*% t(b) without materializing the transpose.
Matrix TransRightMatMul(const Matrix& a, const Matrix& b);

Matrix Transpose(const Matrix& a);
Matrix RowSums(const Matrix& a);
Matrix ColSums(const Matrix& a);
double SumAll(const Matrix& a);

/// Scalar multiply.
Matrix Scale(const Matrix& a, double s);

/// Memory-pressure degradation: while a scope is alive on this thread,
/// kernels with a sparse/streaming alternative keep sparse outputs sparse
/// (e.g. sparse x sparse skips its densify-past-25% conversion) so a
/// retried execution allocates strictly less. Nestable; executor-internal.
class PreferSparseScope {
 public:
  PreferSparseScope();
  ~PreferSparseScope();
  PreferSparseScope(const PreferSparseScope&) = delete;
  PreferSparseScope& operator=(const PreferSparseScope&) = delete;

  /// True when any PreferSparseScope is alive on the calling thread.
  static bool Active();

 private:
  int prev_;
};

}  // namespace spores
