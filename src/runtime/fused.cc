#include "src/runtime/fused.h"

#include <functional>
#include <limits>

#include "src/runtime/kernels.h"

namespace spores {

double WsLoss(const Matrix& x, const Matrix& u, const Matrix& v) {
  SPORES_CHECK_EQ(u.rows(), x.rows());
  SPORES_CHECK_EQ(v.rows(), x.cols());
  SPORES_CHECK_EQ(u.cols(), v.cols());
  Matrix du = u.ToDense();
  Matrix dv = v.ToDense();
  int64_t k = du.cols();

  // Term 3: sum_{ab} (U^T U)_ab (V^T V)_ab — O((M+N) k^2).
  Matrix utu = MatMul(Transpose(du), du);
  Matrix vtv = MatMul(Transpose(dv), dv);
  double term3 = 0.0;
  for (size_t i = 0; i < utu.values().size(); ++i) {
    term3 += utu.values()[i] * vtv.values()[i];
  }

  // Terms 1 and 2 stream over X's non-zeros.
  double term1 = 0.0, term2 = 0.0;
  auto dot_uv = [&](int64_t r, int64_t c) {
    const double* urow = &du.values()[static_cast<size_t>(r * k)];
    const double* vrow = &dv.values()[static_cast<size_t>(c * k)];
    double d = 0.0;
    for (int64_t t = 0; t < k; ++t) d += urow[t] * vrow[t];
    return d;
  };
  if (x.is_sparse()) {
    for (int64_t r = 0; r < x.rows(); ++r) {
      for (int64_t p = x.row_ptr()[static_cast<size_t>(r)];
           p < x.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
        int64_t c = x.col_idx()[static_cast<size_t>(p)];
        double xv = x.csr_values()[static_cast<size_t>(p)];
        term1 += xv * xv;
        term2 += xv * dot_uv(r, c);
      }
    }
  } else {
    for (int64_t r = 0; r < x.rows(); ++r) {
      for (int64_t c = 0; c < x.cols(); ++c) {
        double xv = x.At(r, c);
        if (xv == 0.0) continue;
        term1 += xv * xv;
        term2 += xv * dot_uv(r, c);
      }
    }
  }
  return term1 - 2.0 * term2 + term3;
}

Matrix SProp(const Matrix& p) {
  if (p.is_sparse()) {
    // 0 * (1 - 0) == 0: support is preserved.
    std::vector<std::tuple<int64_t, int64_t, double>> triplets;
    for (int64_t r = 0; r < p.rows(); ++r) {
      for (int64_t k = p.row_ptr()[static_cast<size_t>(r)];
           k < p.row_ptr()[static_cast<size_t>(r) + 1]; ++k) {
        double v = p.csr_values()[static_cast<size_t>(k)];
        triplets.emplace_back(r, p.col_idx()[static_cast<size_t>(k)],
                              v * (1.0 - v));
      }
    }
    return Matrix::FromTriplets(p.rows(), p.cols(), std::move(triplets));
  }
  Matrix out = Matrix::Dense(p.rows(), p.cols());
  const auto& pv = p.values();
  auto& ov = out.values();
  for (size_t i = 0; i < ov.size(); ++i) ov[i] = pv[i] * (1.0 - pv[i]);
  return out;
}

Matrix MMChain(const std::vector<Matrix>& chain) {
  SPORES_CHECK(!chain.empty());
  size_t n = chain.size();
  if (n == 1) return chain[0];

  // dims[i] x dims[i+1] is the shape of chain[i].
  std::vector<int64_t> dims(n + 1);
  for (size_t i = 0; i < n; ++i) {
    dims[i] = chain[i].rows();
    if (i + 1 < n) SPORES_CHECK_EQ(chain[i].cols(), chain[i + 1].rows());
  }
  dims[n] = chain[n - 1].cols();

  // Interval DP for optimal association.
  std::vector<std::vector<double>> costs(
      n, std::vector<double>(n, std::numeric_limits<double>::infinity()));
  std::vector<std::vector<size_t>> split(n, std::vector<size_t>(n, 0));
  for (size_t i = 0; i < n; ++i) costs[i][i] = 0.0;
  for (size_t len = 2; len <= n; ++len) {
    for (size_t i = 0; i + len <= n; ++i) {
      size_t j = i + len - 1;
      for (size_t s = i; s < j; ++s) {
        double c = costs[i][s] + costs[s + 1][j] +
                   static_cast<double>(dims[i]) *
                       static_cast<double>(dims[s + 1]) *
                       static_cast<double>(dims[j + 1]);
        if (c < costs[i][j]) {
          costs[i][j] = c;
          split[i][j] = s;
        }
      }
    }
  }
  std::function<Matrix(size_t, size_t)> eval = [&](size_t i,
                                                   size_t j) -> Matrix {
    if (i == j) return chain[i];
    size_t s = split[i][j];
    return MatMul(eval(i, s), eval(s + 1, j));
  };
  return eval(0, n - 1);
}

}  // namespace spores
