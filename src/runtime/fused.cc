#include "src/runtime/fused.h"

#include <functional>
#include <limits>
#include <utility>

#include "src/runtime/buffer_pool.h"
#include "src/runtime/kernels.h"
#include "src/runtime/simd.h"

namespace spores {

double WsLoss(const Matrix& x, const Matrix& u, const Matrix& v) {
  SPORES_CHECK_EQ(u.rows(), x.rows());
  SPORES_CHECK_EQ(v.rows(), x.cols());
  SPORES_CHECK_EQ(u.cols(), v.cols());
  Matrix du_own, dv_own;
  const Matrix* du = &u;
  const Matrix* dv = &v;
  if (u.is_sparse()) {
    du_own = u.ToDense();
    du = &du_own;
  }
  if (v.is_sparse()) {
    dv_own = v.ToDense();
    dv = &dv_own;
  }
  const int64_t k = du->cols();
  const double* uv = du->values().data();
  const double* vv = dv->values().data();

  // Term 3: sum_{ab} (U^T U)_ab (V^T V)_ab — O((M+N) k^2).
  Matrix utu = TransLeftMatMul(*du, *du);
  Matrix vtv = TransLeftMatMul(*dv, *dv);
  const double term3 = simd::Dot(utu.values().data(), vtv.values().data(),
                                 static_cast<int64_t>(utu.values().size()));

  // Terms 1 and 2 stream over X's non-zeros.
  double term1 = 0.0, term2 = 0.0;
  if (x.is_sparse()) {
    for (int64_t r = 0; r < x.rows(); ++r) {
      const double* urow = uv + r * k;
      for (int64_t p = x.row_ptr()[static_cast<size_t>(r)];
           p < x.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
        const int64_t c = x.col_idx()[static_cast<size_t>(p)];
        const double xv = x.csr_values()[static_cast<size_t>(p)];
        term1 += xv * xv;
        term2 += xv * simd::Dot(urow, vv + c * k, k);
      }
    }
  } else {
    const double* xv_data = x.values().data();
    const int64_t cols = x.cols();
    for (int64_t r = 0; r < x.rows(); ++r) {
      const double* xrow = xv_data + r * cols;
      const double* urow = uv + r * k;
      for (int64_t c = 0; c < cols; ++c) {
        const double xv = xrow[c];
        if (xv == 0.0) continue;
        term1 += xv * xv;
        term2 += xv * simd::Dot(urow, vv + c * k, k);
      }
    }
  }
  return term1 - 2.0 * term2 + term3;
}

Matrix SProp(const Matrix& p) {
  if (p.is_sparse()) {
    // 0 * (1 - 0) == 0: support is preserved. Direct CSR structure copy
    // (no triplet round-trip); v == 1 produces a zero that gets compacted.
    const auto& rp = p.row_ptr();
    const auto& ci = p.col_idx();
    const auto& vv = p.csr_values();
    std::vector<int64_t> orp(rp.size());
    std::vector<int64_t> oci(ci.size());
    std::vector<double> ovv(vv.size());
    size_t out_k = 0;
    orp[0] = 0;
    for (int64_t r = 0; r < p.rows(); ++r) {
      for (int64_t k = rp[static_cast<size_t>(r)];
           k < rp[static_cast<size_t>(r) + 1]; ++k) {
        const double v = vv[static_cast<size_t>(k)];
        const double o = v * (1.0 - v);
        if (o != 0.0) {
          oci[out_k] = ci[static_cast<size_t>(k)];
          ovv[out_k] = o;
          ++out_k;
        }
      }
      orp[static_cast<size_t>(r) + 1] = static_cast<int64_t>(out_k);
    }
    oci.resize(out_k);
    ovv.resize(out_k);
    return Matrix::FromCsr(p.rows(), p.cols(), std::move(orp), std::move(oci),
                           std::move(ovv));
  }
  Matrix out = Matrix::Dense(p.rows(), p.cols());
  const auto& pv = p.values();
  auto& ov = out.values();
  for (size_t i = 0; i < ov.size(); ++i) ov[i] = pv[i] * (1.0 - pv[i]);
  return out;
}

Matrix MMChain(const std::vector<Matrix>& chain) {
  std::vector<const Matrix*> ptrs;
  ptrs.reserve(chain.size());
  for (const Matrix& m : chain) ptrs.push_back(&m);
  return MMChainT(ptrs, std::vector<uint8_t>(chain.size(), 0));
}

namespace {

// A chain interval's value: either a borrowed leaf (possibly flagged
// transposed, never materialized) or an owned intermediate product.
struct ChainNode {
  const Matrix* borrowed = nullptr;
  Matrix owned;
  bool transposed = false;

  const Matrix& mat() const { return borrowed ? *borrowed : owned; }
};

Matrix MulNodes(const ChainNode& l, const ChainNode& r) {
  const Matrix& a = l.mat();
  const Matrix& b = r.mat();
  if (l.transposed && r.transposed) {
    // t(A) %*% t(B) = t(B %*% A); the transpose lands on the result.
    return Transpose(MatMul(b, a));
  }
  if (l.transposed) return TransLeftMatMul(a, b);
  if (r.transposed) return TransRightMatMul(a, b);
  return MatMul(a, b);
}

}  // namespace

Matrix MMChainT(const std::vector<const Matrix*>& chain,
                const std::vector<uint8_t>& transposed) {
  SPORES_CHECK(!chain.empty());
  SPORES_CHECK_EQ(chain.size(), transposed.size());
  const size_t n = chain.size();
  if (n == 1) {
    return transposed[0] ? Transpose(*chain[0]) : *chain[0];
  }

  // dims[i] x dims[i+1] is the effective shape of factor i.
  auto eff_rows = [&](size_t i) {
    return transposed[i] ? chain[i]->cols() : chain[i]->rows();
  };
  auto eff_cols = [&](size_t i) {
    return transposed[i] ? chain[i]->rows() : chain[i]->cols();
  };
  std::vector<int64_t> dims(n + 1);
  for (size_t i = 0; i < n; ++i) {
    dims[i] = eff_rows(i);
    if (i + 1 < n) SPORES_CHECK_EQ(eff_cols(i), eff_rows(i + 1));
  }
  dims[n] = eff_cols(n - 1);

  // Interval DP for optimal association.
  std::vector<std::vector<double>> costs(
      n, std::vector<double>(n, std::numeric_limits<double>::infinity()));
  std::vector<std::vector<size_t>> split(n, std::vector<size_t>(n, 0));
  for (size_t i = 0; i < n; ++i) costs[i][i] = 0.0;
  for (size_t len = 2; len <= n; ++len) {
    for (size_t i = 0; i + len <= n; ++i) {
      size_t j = i + len - 1;
      for (size_t s = i; s < j; ++s) {
        double c = costs[i][s] + costs[s + 1][j] +
                   static_cast<double>(dims[i]) *
                       static_cast<double>(dims[s + 1]) *
                       static_cast<double>(dims[j + 1]);
        if (c < costs[i][j]) {
          costs[i][j] = c;
          split[i][j] = s;
        }
      }
    }
  }

  std::function<ChainNode(size_t, size_t)> eval =
      [&](size_t i, size_t j) -> ChainNode {
    if (i == j) {
      ChainNode leaf;
      leaf.borrowed = chain[i];
      leaf.transposed = transposed[i] != 0;
      return leaf;
    }
    const size_t s = split[i][j];
    ChainNode l = eval(i, s);
    ChainNode r = eval(s + 1, j);
    ChainNode out;
    out.owned = MulNodes(l, r);
    // Recycle owned intermediates as soon as they are folded in.
    if (BufferPool* pool = BufferPool::Current()) {
      if (!l.borrowed) pool->Recycle(std::move(l.owned));
      if (!r.borrowed) pool->Recycle(std::move(r.owned));
    }
    return out;
  };
  return eval(0, n - 1).owned;
}

}  // namespace spores
