#include "src/runtime/executor.h"

#include "src/ir/printer.h"
#include "src/runtime/fused.h"
#include "src/runtime/kernels.h"

namespace spores {

void Bindings::Bind(std::string_view name, Matrix value) {
  values_[Symbol::Intern(name)] = std::move(value);
}

const Matrix& Bindings::Get(Symbol name) const {
  auto it = values_.find(name);
  SPORES_CHECK_MSG(it != values_.end(), name.str().c_str());
  return it->second;
}

Catalog Bindings::ToCatalog() const {
  Catalog catalog;
  for (const auto& [name, m] : values_) {
    double sparsity =
        static_cast<double>(m.Nnz()) / static_cast<double>(m.size());
    catalog.Register(name.str(), m.rows(), m.cols(), sparsity);
  }
  return catalog;
}

namespace {

class Evaluator {
 public:
  Evaluator(const Bindings& inputs, ExecStats* stats)
      : inputs_(inputs), stats_(stats) {}

  StatusOr<Matrix> Eval(const ExprPtr& e) {
    auto it = cache_.find(e.get());
    if (it != cache_.end()) {
      if (stats_) ++stats_->cse_hits;
      return it->second;
    }
    SPORES_ASSIGN_OR_RETURN(Matrix m, EvalImpl(e));
    if (stats_) {
      ++stats_->ops_executed;
      stats_->peak_cells_allocated += static_cast<double>(m.size());
    }
    cache_.emplace(e.get(), m);
    return m;
  }

 private:
  // Flattens nested matmuls into a chain for optimal re-association.
  void FlattenChain(const ExprPtr& e, std::vector<ExprPtr>* out) {
    if (e->op == Op::kMatMul) {
      FlattenChain(e->children[0], out);
      FlattenChain(e->children[1], out);
      return;
    }
    out->push_back(e);
  }

  StatusOr<Matrix> EvalImpl(const ExprPtr& e) {
    switch (e->op) {
      case Op::kVar:
        if (!inputs_.Has(e->sym)) {
          return Status::NotFound("unbound input: " + e->sym.str());
        }
        return inputs_.Get(e->sym);
      case Op::kConst:
        return Matrix::Scalar(e->value);
      case Op::kMatMul: {
        // Fused transpose-matmul (the SystemML pattern): never materialize
        // t(X) for t(X) %*% B, A %*% t(B), or t(A) %*% t(B).
        const ExprPtr& lhs = e->children[0];
        const ExprPtr& rhs = e->children[1];
        bool lt = lhs->op == Op::kTranspose;
        bool rt = rhs->op == Op::kTranspose;
        if (lt && rt) {
          SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(lhs->children[0]));
          SPORES_ASSIGN_OR_RETURN(Matrix b, Eval(rhs->children[0]));
          // t(A) %*% t(B) = t(B %*% A); the transpose happens on the
          // (usually small) result.
          return Transpose(MatMul(b, a));
        }
        if (lt) {
          SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(lhs->children[0]));
          SPORES_ASSIGN_OR_RETURN(Matrix b, Eval(rhs));
          return TransLeftMatMul(a, b);
        }
        if (rt) {
          SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(lhs));
          SPORES_ASSIGN_OR_RETURN(Matrix b, Eval(rhs->children[0]));
          return TransRightMatMul(a, b);
        }
        std::vector<ExprPtr> chain_exprs;
        FlattenChain(e, &chain_exprs);
        std::vector<Matrix> chain;
        chain.reserve(chain_exprs.size());
        for (const ExprPtr& c : chain_exprs) {
          SPORES_ASSIGN_OR_RETURN(Matrix m, Eval(c));
          chain.push_back(std::move(m));
        }
        // Scalar factors can sneak in via 1x1 ends; MMChain handles shapes.
        return MMChain(chain);
      }
      case Op::kElemMul: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        SPORES_ASSIGN_OR_RETURN(Matrix b, Eval(e->children[1]));
        return Mul(a, b);
      }
      case Op::kElemPlus: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        SPORES_ASSIGN_OR_RETURN(Matrix b, Eval(e->children[1]));
        return Add(a, b);
      }
      case Op::kElemMinus: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        SPORES_ASSIGN_OR_RETURN(Matrix b, Eval(e->children[1]));
        return Sub(a, b);
      }
      case Op::kElemDiv: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        SPORES_ASSIGN_OR_RETURN(Matrix b, Eval(e->children[1]));
        return Div(a, b);
      }
      case Op::kPow: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        return PowElem(a, e->children[1]->value);
      }
      case Op::kNeg: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        return Scale(a, -1.0);
      }
      case Op::kTranspose: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        return Transpose(a);
      }
      case Op::kRowAgg: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        return RowSums(a);
      }
      case Op::kColAgg: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        return ColSums(a);
      }
      case Op::kSumAgg: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        return Matrix::Scalar(SumAll(a));
      }
      case Op::kUnary: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        return Unary(e->sym.str(), a);
      }
      case Op::kSProp: {
        SPORES_ASSIGN_OR_RETURN(Matrix a, Eval(e->children[0]));
        return SProp(a);
      }
      case Op::kWsLoss: {
        SPORES_ASSIGN_OR_RETURN(Matrix x, Eval(e->children[0]));
        SPORES_ASSIGN_OR_RETURN(Matrix u, Eval(e->children[1]));
        SPORES_ASSIGN_OR_RETURN(Matrix v, Eval(e->children[2]));
        return Matrix::Scalar(WsLoss(x, u, v));
      }
      default:
        return Status::Unsupported("Execute: non-LA op " +
                                   std::string(OpName(e->op)) + " in " +
                                   ToString(e));
    }
  }

  const Bindings& inputs_;
  ExecStats* stats_;
  std::unordered_map<const Expr*, Matrix> cache_;
};

}  // namespace

StatusOr<Matrix> Execute(const ExprPtr& expr, const Bindings& inputs,
                         ExecStats* stats) {
  Evaluator evaluator(inputs, stats);
  return evaluator.Eval(expr);
}

}  // namespace spores
