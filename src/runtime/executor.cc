#include "src/runtime/executor.h"

#include <utility>

#include "src/ir/printer.h"
#include "src/runtime/fused.h"
#include "src/runtime/kernels.h"
#include "src/util/fault_injection.h"
#include "src/util/timer.h"

namespace spores {

void Bindings::Bind(std::string_view name, Matrix value) {
  values_[Symbol::Intern(name)] = std::move(value);
}

StatusOr<const Matrix*> Bindings::Get(Symbol name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return Status::NotFound("unbound input: " + name.str());
  }
  return &it->second;
}

const Matrix* Bindings::Find(Symbol name) const {
  auto it = values_.find(name);
  return it == values_.end() ? nullptr : &it->second;
}

Catalog Bindings::ToCatalog() const {
  Catalog catalog;
  for (const auto& [name, m] : values_) {
    double sparsity =
        static_cast<double>(m.Nnz()) / static_cast<double>(m.size());
    catalog.Register(name.str(), m.rows(), m.cols(), sparsity);
  }
  return catalog;
}

namespace {

// Flattens nested matmuls into a chain of factors for optimal
// re-association, folding a transposed leaf t(X) into a flag on X so the
// transpose is never materialized (MMChainT dispatches the fused
// TransLeft/TransRight kernels at the leaves).
void FlattenChainT(const ExprPtr& e, std::vector<ExprPtr>* nodes,
                   std::vector<uint8_t>* flags) {
  if (e->op == Op::kMatMul) {
    FlattenChainT(e->children[0], nodes, flags);
    FlattenChainT(e->children[1], nodes, flags);
    return;
  }
  if (e->op == Op::kTranspose) {
    nodes->push_back(e->children[0]);
    flags->push_back(1);
    return;
  }
  nodes->push_back(e);
  flags->push_back(0);
}

bool KnownUnary(const std::string& fn) {
  return fn == "exp" || fn == "log" || fn == "sqrt" || fn == "sigmoid" ||
         fn == "sign" || fn == "abs";
}

class Evaluator {
 public:
  Evaluator(const Bindings& inputs, ExecStats* stats, BufferPool* pool)
      : inputs_(inputs), stats_(stats), pool_(pool) {}

  /// Pass 1: memoized shape inference + consumption counting. All
  /// recoverable failures (unbound input, shape mismatch anywhere in the
  /// DAG, unknown unary, non-const pow exponent, non-LA op) surface here;
  /// after Analyze succeeds, evaluation cannot fail.
  Status Analyze(const ExprPtr& e) {
    if (auto it = nodes_.find(e.get()); it != nodes_.end()) {
      return Status::OK();  // shared node: children already counted once
    }
    nodes_.emplace(e.get(), NodeState{});  // breaks would-be cycles early
    int64_t rows = 0, cols = 0;
    switch (e->op) {
      case Op::kVar: {
        const Matrix* m = inputs_.Find(e->sym);
        if (m == nullptr) {
          return Status::NotFound("unbound input: " + e->sym.str());
        }
        rows = m->rows();
        cols = m->cols();
        break;
      }
      case Op::kConst:
        rows = cols = 1;
        break;
      case Op::kMatMul: {
        std::vector<ExprPtr> factors;
        std::vector<uint8_t> flags;
        FlattenChainT(e, &factors, &flags);
        std::vector<int64_t> er(factors.size()), ec(factors.size());
        for (size_t i = 0; i < factors.size(); ++i) {
          SPORES_RETURN_IF_ERROR(AnalyzeDep(factors[i]));
          const NodeState& st = nodes_.at(factors[i].get());
          er[i] = flags[i] ? st.cols : st.rows;
          ec[i] = flags[i] ? st.rows : st.cols;
        }
        for (size_t i = 0; i + 1 < factors.size(); ++i) {
          if (ec[i] != er[i + 1]) {
            return Status::InvalidArgument(
                "matmul shape mismatch: inner dims " + std::to_string(ec[i]) +
                " vs " + std::to_string(er[i + 1]) + " in " + ToString(e));
          }
        }
        rows = er.front();
        cols = ec.back();
        break;
      }
      case Op::kElemMul:
      case Op::kElemPlus:
      case Op::kElemMinus:
      case Op::kElemDiv: {
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[0]));
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[1]));
        const NodeState& a = nodes_.at(e->children[0].get());
        const NodeState& b = nodes_.at(e->children[1].get());
        auto combine = [](int64_t x, int64_t y) -> int64_t {
          if (x == y) return x;
          if (x == 1) return y;
          if (y == 1) return x;
          return -1;
        };
        rows = combine(a.rows, b.rows);
        cols = combine(a.cols, b.cols);
        if (rows < 0 || cols < 0) {
          return Status::InvalidArgument(
              "incompatible elementwise shapes: " + std::to_string(a.rows) +
              "x" + std::to_string(a.cols) + " vs " + std::to_string(b.rows) +
              "x" + std::to_string(b.cols) + " in " + ToString(e));
        }
        break;
      }
      case Op::kPow: {
        if (e->children[1]->op != Op::kConst) {
          return Status::Unsupported("pow exponent must be a constant in " +
                                     ToString(e));
        }
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[0]));
        const NodeState& a = nodes_.at(e->children[0].get());
        rows = a.rows;
        cols = a.cols;
        break;
      }
      case Op::kNeg:
      case Op::kSProp: {
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[0]));
        const NodeState& a = nodes_.at(e->children[0].get());
        rows = a.rows;
        cols = a.cols;
        break;
      }
      case Op::kTranspose: {
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[0]));
        const NodeState& a = nodes_.at(e->children[0].get());
        rows = a.cols;
        cols = a.rows;
        break;
      }
      case Op::kRowAgg: {
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[0]));
        rows = nodes_.at(e->children[0].get()).rows;
        cols = 1;
        break;
      }
      case Op::kColAgg: {
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[0]));
        rows = 1;
        cols = nodes_.at(e->children[0].get()).cols;
        break;
      }
      case Op::kSumAgg: {
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[0]));
        rows = cols = 1;
        break;
      }
      case Op::kUnary: {
        if (!KnownUnary(e->sym.str())) {
          return Status::Unsupported("unknown unary fn: " + e->sym.str());
        }
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[0]));
        const NodeState& a = nodes_.at(e->children[0].get());
        rows = a.rows;
        cols = a.cols;
        break;
      }
      case Op::kWsLoss: {
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[0]));
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[1]));
        SPORES_RETURN_IF_ERROR(AnalyzeDep(e->children[2]));
        const NodeState& x = nodes_.at(e->children[0].get());
        const NodeState& u = nodes_.at(e->children[1].get());
        const NodeState& v = nodes_.at(e->children[2].get());
        if (u.rows != x.rows || v.rows != x.cols || u.cols != v.cols) {
          return Status::InvalidArgument(
              "wsloss shape mismatch: X " + std::to_string(x.rows) + "x" +
              std::to_string(x.cols) + ", U " + std::to_string(u.rows) + "x" +
              std::to_string(u.cols) + ", V " + std::to_string(v.rows) + "x" +
              std::to_string(v.cols));
        }
        rows = cols = 1;
        break;
      }
      default:
        return Status::Unsupported("Execute: non-LA op " +
                                   std::string(OpName(e->op)) + " in " +
                                   ToString(e));
    }
    NodeState& st = nodes_.at(e.get());
    st.rows = rows;
    st.cols = cols;
    return Status::OK();
  }

  /// The root's value is consumed once by the caller.
  void AddRootUse(const ExprPtr& e) { ++nodes_.at(e.get()).remaining; }

  /// Pass 2 (post-Analyze, cannot fail): bottom-up evaluation with CSE,
  /// borrowed input values, and eager release at last use.
  const Matrix* Eval(const ExprPtr& e) {
    NodeState& st = nodes_.at(e.get());
    if (st.computed) {
      if (stats_) ++stats_->cse_hits;
      return st.ref ? st.ref : &st.owned;
    }
    if (e->op == Op::kVar) {
      st.ref = inputs_.Find(e->sym);  // non-null: Analyze checked
      st.computed = true;
      if (stats_) {
        ++stats_->ops_executed;
        stats_->peak_cells_allocated += static_cast<double>(st.ref->size());
      }
      return st.ref;
    }
    Matrix m = EvalImpl(e);
    if (stats_) {
      ++stats_->ops_executed;
      stats_->peak_cells_allocated += static_cast<double>(m.size());
    }
    st.owned = std::move(m);
    st.computed = true;
    return &st.owned;
  }

  /// Moves the root's value out (or copies it when the root is a bound
  /// input, which the caller owns).
  Matrix TakeResult(const ExprPtr& e) {
    NodeState& st = nodes_.at(e.get());
    return st.ref ? *st.ref : std::move(st.owned);
  }

 private:
  struct NodeState {
    int64_t rows = 0;
    int64_t cols = 0;
    int remaining = 0;  ///< consumptions left before eager release
    bool computed = false;
    const Matrix* ref = nullptr;  ///< borrowed from Bindings (kVar)
    Matrix owned;                 ///< computed value
  };

  Status AnalyzeDep(const ExprPtr& dep) {
    SPORES_RETURN_IF_ERROR(Analyze(dep));
    ++nodes_.at(dep.get()).remaining;
    return Status::OK();
  }

  /// One consumption of a node's value; at the last one, a computed
  /// intermediate's payload recycles into the pool immediately.
  void Consumed(const ExprPtr& e) {
    NodeState& st = nodes_.at(e.get());
    if (--st.remaining == 0 && st.ref == nullptr && pool_ != nullptr) {
      pool_->Recycle(std::move(st.owned));
      if (stats_) ++stats_->eager_releases;
    }
  }

  /// Times the kernel dispatch only — deps are evaluated by the caller
  /// before this runs, so child time is never attributed to the parent.
  template <typename F>
  Matrix Timed(const ExprPtr& e, F&& kernel_call) {
    if (!stats_) return kernel_call();
    Timer timer;
    Matrix m = kernel_call();
    OpProfile p;
    p.op = OpName(e->op).data();  // OpName returns literal-backed views
    p.rows = m.rows();
    p.cols = m.cols();
    p.out_nnz = m.is_sparse() ? m.Nnz()
                              : (stats_->track_dense_nnz ? m.Nnz() : -1);
    p.seconds = timer.Seconds();
    stats_->profile.push_back(p);
    return m;
  }

  template <typename F>
  Matrix EvalUnaryOp(const ExprPtr& e, F&& f) {
    const Matrix* a = Eval(e->children[0]);
    Matrix m = Timed(e, [&] { return f(*a); });
    Consumed(e->children[0]);
    return m;
  }

  template <typename F>
  Matrix EvalBinaryOp(const ExprPtr& e, F&& f) {
    const Matrix* a = Eval(e->children[0]);
    const Matrix* b = Eval(e->children[1]);
    Matrix m = Timed(e, [&] { return f(*a, *b); });
    Consumed(e->children[0]);
    Consumed(e->children[1]);
    return m;
  }

  Matrix EvalImpl(const ExprPtr& e) {
    fault::Point("executor_eval");
    switch (e->op) {
      case Op::kConst:
        return Matrix::Scalar(e->value);
      case Op::kMatMul: {
        std::vector<ExprPtr> factors;
        std::vector<uint8_t> flags;
        FlattenChainT(e, &factors, &flags);
        std::vector<const Matrix*> chain;
        chain.reserve(factors.size());
        for (const ExprPtr& f : factors) chain.push_back(Eval(f));
        Matrix m = Timed(e, [&] { return MMChainT(chain, flags); });
        for (const ExprPtr& f : factors) Consumed(f);
        return m;
      }
      case Op::kElemMul:
        return EvalBinaryOp(e, [](const Matrix& a, const Matrix& b) {
          return Mul(a, b);
        });
      case Op::kElemPlus:
        return EvalBinaryOp(e, [](const Matrix& a, const Matrix& b) {
          return Add(a, b);
        });
      case Op::kElemMinus:
        return EvalBinaryOp(e, [](const Matrix& a, const Matrix& b) {
          return Sub(a, b);
        });
      case Op::kElemDiv:
        return EvalBinaryOp(e, [](const Matrix& a, const Matrix& b) {
          return Div(a, b);
        });
      case Op::kPow: {
        const double exponent = e->children[1]->value;
        return EvalUnaryOp(
            e, [exponent](const Matrix& a) { return PowElem(a, exponent); });
      }
      case Op::kNeg:
        return EvalUnaryOp(e, [](const Matrix& a) { return Scale(a, -1.0); });
      case Op::kTranspose:
        return EvalUnaryOp(e, [](const Matrix& a) { return Transpose(a); });
      case Op::kRowAgg:
        return EvalUnaryOp(e, [](const Matrix& a) { return RowSums(a); });
      case Op::kColAgg:
        return EvalUnaryOp(e, [](const Matrix& a) { return ColSums(a); });
      case Op::kSumAgg:
        return EvalUnaryOp(
            e, [](const Matrix& a) { return Matrix::Scalar(SumAll(a)); });
      case Op::kUnary: {
        const std::string fn = e->sym.str();
        return EvalUnaryOp(
            e, [&fn](const Matrix& a) { return Unary(fn, a); });
      }
      case Op::kSProp:
        return EvalUnaryOp(e, [](const Matrix& a) { return SProp(a); });
      case Op::kWsLoss: {
        const Matrix* x = Eval(e->children[0]);
        const Matrix* u = Eval(e->children[1]);
        const Matrix* v = Eval(e->children[2]);
        Matrix m = Timed(e, [&] { return Matrix::Scalar(WsLoss(*x, *u, *v)); });
        Consumed(e->children[0]);
        Consumed(e->children[1]);
        Consumed(e->children[2]);
        return m;
      }
      default:
        // Analyze rejected everything else before evaluation started.
        SPORES_CHECK_MSG(false, "EvalImpl: unanalyzed op");
        return Matrix();
    }
  }

  const Bindings& inputs_;
  ExecStats* stats_;
  BufferPool* pool_;
  std::unordered_map<const Expr*, NodeState> nodes_;
};

// One evaluation attempt. Analyze runs (and fails) as a Status before any
// kernel does; evaluation itself may throw (allocation failure, injected
// fault) and is contained by the caller.
StatusOr<Matrix> EvalOnce(const ExprPtr& expr, const Bindings& inputs,
                          BufferPool* pool, ExecStats* stats) {
  // The profile describes exactly one evaluation attempt: without this
  // reset a stats object reused across an arena's batches accumulates
  // every DAG's rows forever (and a memory-fallback retry would double-
  // count its own first attempt).
  if (stats != nullptr) stats->profile.clear();
  Evaluator evaluator(inputs, stats, pool);
  SPORES_RETURN_IF_ERROR(evaluator.Analyze(expr));
  evaluator.AddRootUse(expr);
  if (pool != nullptr) pool->BeginExecution();
  BufferPool::ScopedUse scoped(pool);
  evaluator.Eval(expr);
  return evaluator.TakeResult(expr);
}

StatusOr<Matrix> ExecuteWithPool(const ExprPtr& expr, const Bindings& inputs,
                                 BufferPool* pool, ExecStats* stats) {
  // Allocation-failure containment: a std::bad_alloc anywhere under Eval
  // (kernel output, pool cap overflow, injected fault) must surface as a
  // Status, never std::terminate. On the first allocation failure the DAG
  // retries once under PreferSparseScope — kernels with a sparse
  // alternative then keep outputs sparse, so the retry allocates strictly
  // less. Everything the failed attempt acquired was pool-scoped and is
  // recycled or freed on unwind.
  try {
    return EvalOnce(expr, inputs, pool, stats);
  } catch (const std::bad_alloc& e) {
    if (stats) ++stats->memory_fallbacks;
    try {
      PreferSparseScope prefer_sparse;
      return EvalOnce(expr, inputs, pool, stats);
    } catch (const std::bad_alloc& retry) {
      return Status::ResourceExhausted(
          std::string("allocation failed during execution: ") +
          retry.what());
    } catch (const std::exception& retry) {
      return Status::Internal(
          std::string("execution failed on sparse retry: ") + retry.what());
    }
  } catch (const std::exception& e) {
    return Status::Internal(std::string("execution failed: ") + e.what());
  }
}

}  // namespace

StatusOr<Matrix> Execute(const ExprPtr& expr, const Bindings& inputs,
                         ExecStats* stats) {
  // Private pool: intermediates still recycle within this one DAG.
  BufferPool pool;
  return ExecuteWithPool(expr, inputs, &pool, stats);
}

StatusOr<Matrix> Execute(const ExprPtr& expr, const Bindings& inputs,
                         ExecutorArena* arena, ExecStats* stats) {
  if (arena == nullptr) return Execute(expr, inputs, stats);
  return ExecuteWithPool(expr, inputs, &arena->pool(), stats);
}

}  // namespace spores
