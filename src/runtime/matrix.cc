#include "src/runtime/matrix.h"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace spores {

Matrix Matrix::Dense(int64_t rows, int64_t cols) {
  SPORES_CHECK_GT(rows, 0);
  SPORES_CHECK_GT(cols, 0);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.sparse_ = false;
  m.dense_.assign(static_cast<size_t>(rows * cols), 0.0);
  return m;
}

Matrix Matrix::FromValues(int64_t rows, int64_t cols,
                          std::vector<double> values) {
  SPORES_CHECK_GT(rows, 0);
  SPORES_CHECK_GT(cols, 0);
  SPORES_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.sparse_ = false;
  m.dense_ = std::move(values);
  return m;
}

Matrix Matrix::FromCsr(int64_t rows, int64_t cols,
                       std::vector<int64_t> row_ptr,
                       std::vector<int64_t> col_idx,
                       std::vector<double> vals) {
  SPORES_CHECK_GT(rows, 0);
  SPORES_CHECK_GT(cols, 0);
  SPORES_CHECK_EQ(static_cast<int64_t>(row_ptr.size()), rows + 1);
  SPORES_CHECK_EQ(row_ptr.front(), 0);
  SPORES_CHECK_EQ(row_ptr.back(), static_cast<int64_t>(col_idx.size()));
  SPORES_CHECK_EQ(col_idx.size(), vals.size());
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.sparse_ = true;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.vals_ = std::move(vals);
  return m;
}

Matrix Matrix::Scalar(double v) { return FromValues(1, 1, {v}); }

Matrix Matrix::Sparse(int64_t rows, int64_t cols) {
  SPORES_CHECK_GT(rows, 0);
  SPORES_CHECK_GT(cols, 0);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.sparse_ = true;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  return m;
}

Matrix Matrix::FromTriplets(
    int64_t rows, int64_t cols,
    std::vector<std::tuple<int64_t, int64_t, double>> triplets) {
  std::sort(triplets.begin(), triplets.end());
  // Sum duplicates.
  std::vector<std::tuple<int64_t, int64_t, double>> merged;
  merged.reserve(triplets.size());
  for (auto& t : triplets) {
    if (!merged.empty() && std::get<0>(merged.back()) == std::get<0>(t) &&
        std::get<1>(merged.back()) == std::get<1>(t)) {
      std::get<2>(merged.back()) += std::get<2>(t);
    } else {
      merged.push_back(t);
    }
  }
  Matrix m = Sparse(rows, cols);
  m.col_idx_.reserve(merged.size());
  m.vals_.reserve(merged.size());
  for (auto& [r, c, v] : merged) {
    SPORES_CHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    if (v == 0.0) continue;
    m.row_ptr_[static_cast<size_t>(r) + 1]++;
    m.col_idx_.push_back(c);
    m.vals_.push_back(v);
  }
  for (size_t i = 1; i < m.row_ptr_.size(); ++i) {
    m.row_ptr_[i] += m.row_ptr_[i - 1];
  }
  return m;
}

Matrix Matrix::RandomDense(int64_t rows, int64_t cols, Rng& rng, double lo,
                           double hi) {
  Matrix m = Dense(rows, cols);
  for (double& v : m.dense_) v = rng.UniformDouble(lo, hi);
  return m;
}

Matrix Matrix::RandomSparse(int64_t rows, int64_t cols, double sparsity,
                            Rng& rng, double lo, double hi) {
  SPORES_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  Matrix m = Sparse(rows, cols);
  // Per-row expected nnz via a binomial-ish draw; cheap and adequate for
  // synthetic workloads.
  for (int64_t r = 0; r < rows; ++r) {
    int64_t row_nnz = 0;
    for (int64_t c = 0; c < cols; ++c) {
      if (rng.Bernoulli(sparsity)) {
        m.col_idx_.push_back(c);
        double v = rng.UniformDouble(lo, hi);
        if (v == 0.0) v = 0.5 * (lo + hi) + 1e-3;
        m.vals_.push_back(v);
        ++row_nnz;
      }
    }
    m.row_ptr_[static_cast<size_t>(r) + 1] =
        m.row_ptr_[static_cast<size_t>(r)] + row_nnz;
  }
  return m;
}

double Matrix::AsScalar() const {
  SPORES_CHECK(IsScalar());
  return At(0, 0);
}

int64_t Matrix::Nnz() const {
  if (sparse_) return static_cast<int64_t>(vals_.size());
  int64_t n = 0;
  for (double v : dense_) n += (v != 0.0);
  return n;
}

double Matrix::At(int64_t r, int64_t c) const {
  SPORES_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  if (!sparse_) return dense_[static_cast<size_t>(r * cols_ + c)];
  int64_t lo = row_ptr_[static_cast<size_t>(r)];
  int64_t hi = row_ptr_[static_cast<size_t>(r) + 1];
  auto begin = col_idx_.begin() + lo;
  auto end = col_idx_.begin() + hi;
  auto it = std::lower_bound(begin, end, c);
  if (it != end && *it == c) {
    return vals_[static_cast<size_t>(lo + (it - begin))];
  }
  return 0.0;
}

const std::vector<double>& Matrix::values() const {
  SPORES_CHECK(!sparse_);
  return dense_;
}
std::vector<double>& Matrix::values() {
  SPORES_CHECK(!sparse_);
  return dense_;
}
const std::vector<int64_t>& Matrix::row_ptr() const {
  SPORES_CHECK(sparse_);
  return row_ptr_;
}
const std::vector<int64_t>& Matrix::col_idx() const {
  SPORES_CHECK(sparse_);
  return col_idx_;
}
const std::vector<double>& Matrix::csr_values() const {
  SPORES_CHECK(sparse_);
  return vals_;
}

Matrix Matrix::ToDense() const {
  if (!sparse_) return *this;
  Matrix m = Dense(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      m.dense_[static_cast<size_t>(r * cols_ + col_idx_[static_cast<size_t>(
                                                    k)])] =
          vals_[static_cast<size_t>(k)];
    }
  }
  return m;
}

Matrix Matrix::ToSparse() const {
  if (sparse_) return *this;
  Matrix m = Sparse(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    int64_t row_nnz = 0;
    for (int64_t c = 0; c < cols_; ++c) {
      double v = dense_[static_cast<size_t>(r * cols_ + c)];
      if (v != 0.0) {
        m.col_idx_.push_back(c);
        m.vals_.push_back(v);
        ++row_nnz;
      }
    }
    m.row_ptr_[static_cast<size_t>(r) + 1] =
        m.row_ptr_[static_cast<size_t>(r)] + row_nnz;
  }
  return m;
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  SPORES_CHECK_EQ(a.rows(), b.rows());
  SPORES_CHECK_EQ(a.cols(), b.cols());
  Matrix da = a.ToDense();
  Matrix db = b.ToDense();
  double max_diff = 0.0;
  for (size_t i = 0; i < da.dense_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(da.dense_[i] - db.dense_[i]));
  }
  return max_diff;
}

}  // namespace spores
