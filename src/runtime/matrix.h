// Matrix values for the execution substrate: dense row-major or sparse CSR.
// This stands in for SystemML's matrix blocks (see DESIGN.md substitutions):
// the optimizer's wins come from sparsity-aware plan choice, which these two
// representations expose faithfully.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace spores {

/// A 2-D matrix, dense (row-major) or sparse (CSR). Scalars are 1x1.
class Matrix {
 public:
  Matrix() = default;

  /// Dense zero matrix.
  static Matrix Dense(int64_t rows, int64_t cols);
  /// Dense from explicit values (row-major; values.size() == rows*cols).
  static Matrix FromValues(int64_t rows, int64_t cols,
                           std::vector<double> values);
  /// 1x1 scalar.
  static Matrix Scalar(double v);
  /// Empty CSR matrix.
  static Matrix Sparse(int64_t rows, int64_t cols);
  /// CSR from triplets (row, col, value); duplicates are summed.
  static Matrix FromTriplets(
      int64_t rows, int64_t cols,
      std::vector<std::tuple<int64_t, int64_t, double>> triplets);

  /// CSR from prebuilt arrays (the kernels' no-sort fast path; FromTriplets
  /// pays an O(nnz log nnz) sort this skips). Contract, checked cheaply:
  /// row_ptr has rows+1 monotone entries bracketing col_idx/vals; col
  /// indices must be sorted and unique within each row, and values nonzero
  /// (callers compact zeros out — every kernel in kernels.cc does).
  static Matrix FromCsr(int64_t rows, int64_t cols,
                        std::vector<int64_t> row_ptr,
                        std::vector<int64_t> col_idx,
                        std::vector<double> vals);

  /// Uniform-random dense entries in [lo, hi).
  static Matrix RandomDense(int64_t rows, int64_t cols, Rng& rng,
                            double lo = 0.0, double hi = 1.0);
  /// Sparse with expected density `sparsity`, values in [lo, hi).
  static Matrix RandomSparse(int64_t rows, int64_t cols, double sparsity,
                             Rng& rng, double lo = 0.0, double hi = 1.0);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool is_sparse() const { return sparse_; }
  bool IsScalar() const { return rows_ == 1 && cols_ == 1; }
  double AsScalar() const;

  /// Number of stored non-zeros (dense matrices count actual non-zeros).
  int64_t Nnz() const;

  /// Element access (O(log nnz-per-row) for sparse).
  double At(int64_t r, int64_t c) const;

  /// Dense storage (requires !is_sparse()).
  const std::vector<double>& values() const;
  std::vector<double>& values();

  // CSR storage (requires is_sparse()).
  const std::vector<int64_t>& row_ptr() const;
  const std::vector<int64_t>& col_idx() const;
  const std::vector<double>& csr_values() const;

  /// Conversion (copies).
  Matrix ToDense() const;
  Matrix ToSparse() const;

  /// Max |a - b| over all cells; matrices must have equal shapes.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  bool sparse_ = false;
  // Dense payload.
  std::vector<double> dense_;
  // CSR payload.
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<double> vals_;

  friend class MatrixBuilder;
  /// Strips payload vectors for recycling (buffer_pool.h).
  friend class BufferPool;
};

}  // namespace spores
