#include "src/persist/checkpoint.h"

#include <thread>

#include "src/util/fault_injection.h"

namespace spores {

CheckpointManager::CheckpointManager(CheckpointConfig config,
                                     JournalHeader identity)
    : config_(std::move(config)), identity_(identity) {
  journals_.reserve(identity_.shard_count);
  for (uint32_t i = 0; i < identity_.shard_count; ++i) {
    journals_.push_back(std::make_unique<ShardJournal>());
  }
}

CheckpointManager::~CheckpointManager() {
  for (auto& j : journals_) {
    std::lock_guard<std::mutex> lock(j->mu);
    CloseJournalLocked(*j);
  }
}

std::string CheckpointManager::SnapshotPath(size_t shard) const {
  return config_.dir + "/shard-" + std::to_string(shard) + ".snap";
}

std::string CheckpointManager::JournalPath(size_t shard) const {
  return config_.dir + "/shard-" + std::to_string(shard) + ".journal";
}

std::string CheckpointManager::RotatedJournalPath(size_t shard) const {
  return JournalPath(shard) + ".1";
}

void CheckpointManager::CloseJournalLocked(ShardJournal& j) {
  if (j.file) {
    std::fclose(j.file);
    j.file = nullptr;
  }
}

void CheckpointManager::JournalInsert(size_t shard, const PlanCacheKey& key,
                                      const OptimizedPlan& plan) {
  if (!enabled() || !config_.journal_inserts) return;
  ShardJournal& j = *journals_[shard];
  std::lock_guard<std::mutex> lock(j.mu);
  if (!j.file) {
    const std::string path = JournalPath(shard);
    // Header record only on a genuinely fresh file; reopening after a
    // process restart appends to records already gated by their own header.
    auto existing = ReadFileToString(path);
    const bool fresh = !existing.ok() || existing.value().empty();
    j.file = std::fopen(path.c_str(), "ab");
    if (!j.file) return;  // journaling is best-effort; serving never blocks
    if (fresh) {
      const std::string hdr =
          EncodeJournalRecord(EncodeJournalHeaderPayload(identity_));
      std::fwrite(hdr.data(), 1, hdr.size(), j.file);
    }
  }
  // Chaos site, contained in full: journaling is best-effort, so an
  // injected throw/bad_alloc/status drops the record and serving
  // continues; a torn kind persists only a record prefix — the genuine
  // crash-mid-append tail replay has to tolerate.
  bool torn = false;
  try {
    if (!fault::PointStatus("journal_write", &torn).ok()) return;
  } catch (const std::exception&) {
    return;
  }
  const std::string rec =
      EncodeJournalRecord(EncodeJournalInsertPayload(key, plan));
  std::fwrite(rec.data(), 1, torn ? rec.size() / 2 : rec.size(), j.file);
  // Flush per record: a torn tail is recoverable, a buffered-and-lost batch
  // is simply gone.
  std::fflush(j.file);
}

void CheckpointManager::FlushJournals() {
  for (auto& j : journals_) {
    std::lock_guard<std::mutex> lock(j->mu);
    if (j->file) std::fflush(j->file);
  }
}

void CheckpointManager::RotateJournal(size_t shard) {
  if (!enabled()) return;
  ShardJournal& j = *journals_[shard];
  std::lock_guard<std::mutex> lock(j.mu);
  CloseJournalLocked(j);
  const std::string cur = JournalPath(shard);
  const std::string rotated = RotatedJournalPath(shard);
  auto cur_bytes = ReadFileToString(cur);
  if (!cur_bytes.ok()) return;  // nothing journaled since last rotation
  auto leftover = ReadFileToString(rotated);
  if (leftover.ok()) {
    // A previous checkpoint failed mid-write: its rotated journal still
    // covers inserts no snapshot holds. Append rather than clobber; replay
    // handles the embedded header record.
    std::FILE* f = std::fopen(rotated.c_str(), "ab");
    if (!f) return;
    std::fwrite(cur_bytes.value().data(), 1, cur_bytes.value().size(), f);
    std::fclose(f);
    std::remove(cur.c_str());
  } else {
    std::rename(cur.c_str(), rotated.c_str());
  }
}

Status CheckpointManager::CheckpointAll(const CaptureFn& capture,
                                        int64_t now_unix_seconds) {
  if (!enabled()) return Status::OK();
  const size_t n = num_shards();
  std::vector<Status> results(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t shard = 0; shard < n; ++shard) {
    threads.emplace_back([this, &capture, &results, shard,
                          now_unix_seconds] {
      // Full exception containment: this lambda is a thread top-level, so
      // anything escaping (bad_alloc mid-serialize, an injected fault)
      // would std::terminate the process. Convert to Status and make sure
      // a partially written snapshot tmp never outlives the failure.
      try {
        std::optional<ShardSnapshotData> data = capture(shard);
        if (!data) return;  // skipped: keep journals, old snapshot valid
        SnapshotHeader header;
        header.rule_set_hash = identity_.rule_set_hash;
        header.cost_model_hash = identity_.cost_model_hash;
        header.shard_count = identity_.shard_count;
        header.shard_index = static_cast<uint32_t>(shard);
        header.created_unix_seconds = now_unix_seconds;
        PlanStoreWriter writer(header);
        results[shard] = writer.Write(*data, SnapshotPath(shard));
        if (results[shard].ok()) {
          // The new snapshot covers everything up to the rotation point.
          std::remove(RotatedJournalPath(shard).c_str());
        }
      } catch (const std::bad_alloc&) {
        std::remove((SnapshotPath(shard) + ".tmp").c_str());
        results[shard] = Status::ResourceExhausted(
            "checkpoint shard " + std::to_string(shard) +
            ": allocation failed mid-serialize");
      } catch (const std::exception& e) {
        std::remove((SnapshotPath(shard) + ".tmp").c_str());
        results[shard] = Status::Internal(
            "checkpoint shard " + std::to_string(shard) + ": " + e.what());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& st : results) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

CheckpointManager::Restore CheckpointManager::RestoreShard(
    size_t shard, const SnapshotExpectation& expect) const {
  Restore out;
  if (!enabled()) {
    out.reason = ColdStartReason::kDisabled;
    return out;
  }
  ShardRestoreResult snap = PlanStoreReader::Load(SnapshotPath(shard), expect);
  out.reason = snap.reason;
  out.detail = std::move(snap.detail);
  out.created_unix_seconds = snap.created_unix_seconds;
  if (snap.reason == ColdStartReason::kWarmRestore) {
    out.data = std::move(snap.data);
  }

  // Journals are self-validating; replay them even without a snapshot (the
  // very first checkpoint may never have happened). Oldest first: rotated
  // journal, then the active one.
  std::vector<PlanStoreEntry> journal;
  for (const std::string& path :
       {RotatedJournalPath(shard), JournalPath(shard)}) {
    auto bytes = ReadFileToString(path);
    if (!bytes.ok()) continue;
    std::vector<PlanStoreEntry> replayed =
        ReplayJournalImage(bytes.value(), expect);
    for (auto& e : replayed) journal.push_back(std::move(e));
  }
  if (!journal.empty() && out.reason == ColdStartReason::kNoSnapshot) {
    // Journal-only warm restore (inserts before the first checkpoint).
    out.reason = ColdStartReason::kWarmRestore;
    out.detail = "journal-only restore (no snapshot yet)";
  }
  out.journal_entries = std::move(journal);
  return out;
}

}  // namespace spores
