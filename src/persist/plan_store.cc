#include "src/persist/plan_store.h"

#include <set>

#include "src/persist/wire_format.h"

namespace spores {

const char* ColdStartReasonName(ColdStartReason reason) {
  switch (reason) {
    case ColdStartReason::kWarmRestore:
      return "warm_restore";
    case ColdStartReason::kNoSnapshot:
      return "no_snapshot";
    case ColdStartReason::kCorruptSnapshot:
      return "corrupt_snapshot";
    case ColdStartReason::kFormatVersionMismatch:
      return "format_version_mismatch";
    case ColdStartReason::kRuleSetHashMismatch:
      return "rule_set_hash_mismatch";
    case ColdStartReason::kCostModelHashMismatch:
      return "cost_model_hash_mismatch";
    case ColdStartReason::kShardCountMismatch:
      return "shard_count_mismatch";
    case ColdStartReason::kDisabled:
      return "persistence_disabled";
  }
  return "unknown";
}

uint64_t RuleSetHash(const std::vector<Rewrite>& rules) {
  // FNV-1a over (name, expansive) in rule order. Order-sensitive on purpose:
  // rule indices are shared with the scheduler, so a reorder is a different
  // compiled artifact even with the same rule names.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (const Rewrite& rule : rules) {
    for (char c : rule.name) mix(static_cast<unsigned char>(c));
    mix(0xff);  // name terminator, so ("ab","c") != ("a","bc")
    mix(rule.expansive ? 1 : 0);
  }
  return h;
}

namespace {

void CollectExprAttrs(const ExprPtr& expr, std::set<std::string>* out) {
  if (!expr) return;
  for (Symbol a : expr->attrs) out->insert(a.str());
  for (const ExprPtr& c : expr->children) CollectExprAttrs(c, out);
}

}  // namespace

void CollectShardDims(const DimEnv& dims, ShardSnapshotData* data) {
  std::set<std::string> attrs;
  for (const auto& nodes : data->graph.classes) {
    for (const EGraphImage::Node& n : nodes) {
      for (const std::string& a : n.attrs) attrs.insert(a);
    }
  }
  for (const PlanStoreEntry& e : data->entries) {
    for (const Monomial& m : e.key.canon.monomials) {
      for (Symbol b : m.bound) attrs.insert(b.str());
      for (const ExprPtr& atom : m.atoms) CollectExprAttrs(atom, &attrs);
    }
  }
  data->dims.clear();
  data->dims.reserve(attrs.size());
  for (const std::string& attr : attrs) {
    Symbol s = Symbol::Intern(attr);
    if (dims.Has(s)) data->dims.emplace_back(attr, dims.DimOf(s));
  }
}

// ---------------------------------------------------------------------------
// Section payloads
// ---------------------------------------------------------------------------

namespace {

// kCatalog section: dims map, then (when the shard had a graph) catalog
// signature + entries.
std::string EncodeCatalogSection(const ShardSnapshotData& data) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(data.dims.size()));
  for (const auto& [attr, dim] : data.dims) {
    w.PutString(attr);
    w.PutI64(dim);
  }
  w.PutU8(data.has_graph ? 1 : 0);
  if (data.has_graph) {
    w.PutString(data.catalog_signature);
    EncodeCatalog(data.catalog, w);
  }
  return w.Take();
}

Status DecodeCatalogSection(std::string_view payload, ShardSnapshotData* out) {
  ByteReader r(payload);
  uint32_t ndims;
  SPORES_RETURN_IF_ERROR(r.GetU32(&ndims));
  if (ndims > payload.size()) {
    return Status::InvalidArgument("snapshot: implausible dims count");
  }
  out->dims.reserve(ndims);
  for (uint32_t i = 0; i < ndims; ++i) {
    std::string attr;
    int64_t dim;
    SPORES_RETURN_IF_ERROR(r.GetString(&attr));
    SPORES_RETURN_IF_ERROR(r.GetI64(&dim));
    if (dim <= 0) return Status::InvalidArgument("snapshot: bad attr dim");
    out->dims.emplace_back(std::move(attr), dim);
  }
  uint8_t has_graph;
  SPORES_RETURN_IF_ERROR(r.GetU8(&has_graph));
  out->has_graph = has_graph != 0;
  if (out->has_graph) {
    SPORES_RETURN_IF_ERROR(r.GetString(&out->catalog_signature));
    SPORES_RETURN_IF_ERROR(DecodeCatalog(r, &out->catalog));
  }
  return Status::OK();
}

std::string EncodePlanSection(const std::vector<PlanStoreEntry>& entries) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const PlanStoreEntry& e : entries) {
    EncodePlanCacheKey(e.key, w);
    EncodeOptimizedPlan(e.plan, w);
  }
  return w.Take();
}

Status DecodePlanSection(std::string_view payload,
                         std::vector<PlanStoreEntry>* out) {
  ByteReader r(payload);
  uint32_t count;
  SPORES_RETURN_IF_ERROR(r.GetU32(&count));
  if (count > payload.size()) {
    return Status::InvalidArgument("snapshot: implausible entry count");
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PlanStoreEntry e;
    SPORES_ASSIGN_OR_RETURN(e.key, DecodePlanCacheKey(r));
    SPORES_ASSIGN_OR_RETURN(e.plan, DecodeOptimizedPlan(r));
    out->push_back(std::move(e));
  }
  return Status::OK();
}

// kCalibration section: the learned cost-calibration table (PR 10). Op
// names are stored as strings — never interned symbol ids — so the image
// is process-independent, like every other section. A leading sub-version
// lets the cell schema evolve without burning a SectionId.
constexpr uint32_t kCalibrationWireVersion = 1;

std::string EncodeCalibrationSection(const CalibrationImage& image) {
  ByteWriter w;
  w.PutU32(kCalibrationWireVersion);
  w.PutU64(image.version);
  w.PutU64(image.baseline_samples);
  w.PutDouble(image.baseline_unit_seconds);
  w.PutU32(static_cast<uint32_t>(image.cells.size()));
  for (const CalibrationCellImage& c : image.cells) {
    w.PutString(c.op);
    w.PutI64(c.shape_bucket);
    w.PutI64(c.sparsity_bucket);
    w.PutU64(c.samples);
    w.PutDouble(c.unit_seconds);
    w.PutDouble(c.density);
  }
  w.PutU32(static_cast<uint32_t>(image.published.size()));
  for (const CalibrationPublishedImage& p : image.published) {
    w.PutU8(p.category);
    w.PutI64(p.shape_bucket);
    w.PutI64(p.sparsity_bucket);
    w.PutDouble(p.multiplier);
  }
  return w.Take();
}

Status DecodeCalibrationSection(std::string_view payload,
                                CalibrationImage* out) {
  ByteReader r(payload);
  uint32_t wire;
  SPORES_RETURN_IF_ERROR(r.GetU32(&wire));
  if (wire != kCalibrationWireVersion) {
    return Status::InvalidArgument(
        "snapshot: unknown calibration wire version");
  }
  SPORES_RETURN_IF_ERROR(r.GetU64(&out->version));
  SPORES_RETURN_IF_ERROR(r.GetU64(&out->baseline_samples));
  SPORES_RETURN_IF_ERROR(r.GetDouble(&out->baseline_unit_seconds));
  uint32_t ncells;
  SPORES_RETURN_IF_ERROR(r.GetU32(&ncells));
  if (ncells > payload.size()) {
    return Status::InvalidArgument(
        "snapshot: implausible calibration cell count");
  }
  out->cells.reserve(ncells);
  for (uint32_t i = 0; i < ncells; ++i) {
    CalibrationCellImage c;
    int64_t shape, sparsity;
    SPORES_RETURN_IF_ERROR(r.GetString(&c.op));
    SPORES_RETURN_IF_ERROR(r.GetI64(&shape));
    SPORES_RETURN_IF_ERROR(r.GetI64(&sparsity));
    SPORES_RETURN_IF_ERROR(r.GetU64(&c.samples));
    SPORES_RETURN_IF_ERROR(r.GetDouble(&c.unit_seconds));
    SPORES_RETURN_IF_ERROR(r.GetDouble(&c.density));
    c.shape_bucket = static_cast<int32_t>(shape);
    c.sparsity_bucket = static_cast<int32_t>(sparsity);
    out->cells.push_back(std::move(c));
  }
  uint32_t npublished;
  SPORES_RETURN_IF_ERROR(r.GetU32(&npublished));
  if (npublished > payload.size()) {
    return Status::InvalidArgument(
        "snapshot: implausible calibration multiplier count");
  }
  out->published.reserve(npublished);
  for (uint32_t i = 0; i < npublished; ++i) {
    CalibrationPublishedImage p;
    int64_t shape, sparsity;
    SPORES_RETURN_IF_ERROR(r.GetU8(&p.category));
    SPORES_RETURN_IF_ERROR(r.GetI64(&shape));
    SPORES_RETURN_IF_ERROR(r.GetI64(&sparsity));
    SPORES_RETURN_IF_ERROR(r.GetDouble(&p.multiplier));
    p.shape_bucket = static_cast<int32_t>(shape);
    p.sparsity_bucket = static_cast<int32_t>(sparsity);
    out->published.push_back(std::move(p));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// PlanStoreWriter / PlanStoreReader
// ---------------------------------------------------------------------------

std::string PlanStoreWriter::Encode(const ShardSnapshotData& data) const {
  SnapshotFileWriter file(header_);
  file.AddSection(SectionId::kCatalog, EncodeCatalogSection(data));
  file.AddSection(SectionId::kPlanCache, EncodePlanSection(data.entries));
  if (data.has_graph) {
    ByteWriter w;
    EncodeEGraphImage(data.graph, w);
    file.AddSection(SectionId::kEGraph, w.Take());
  }
  if (data.calibration.version > 0 || !data.calibration.cells.empty()) {
    file.AddSection(SectionId::kCalibration,
                    EncodeCalibrationSection(data.calibration));
  }
  return file.Encode();
}

Status PlanStoreWriter::Write(const ShardSnapshotData& data,
                              const std::string& path) const {
  return AtomicWriteFile(path, Encode(data));
}

namespace {

ShardRestoreResult ColdStart(ColdStartReason reason, std::string detail) {
  ShardRestoreResult out;
  out.reason = reason;
  out.detail = std::move(detail);
  return out;
}

ShardRestoreResult ParseValidated(const SnapshotFileReader& file,
                                  const SnapshotExpectation& expect) {
  const SnapshotHeader& h = file.header();
  if (h.format_version != kSnapshotFormatVersion) {
    return ColdStart(ColdStartReason::kFormatVersionMismatch,
                     "snapshot format v" + std::to_string(h.format_version) +
                         ", expected v" +
                         std::to_string(kSnapshotFormatVersion));
  }
  if (h.rule_set_hash != expect.rule_set_hash) {
    return ColdStart(ColdStartReason::kRuleSetHashMismatch,
                     "rule set changed since snapshot");
  }
  if (h.cost_model_hash != expect.cost_model_hash) {
    return ColdStart(ColdStartReason::kCostModelHashMismatch,
                     "cost model changed since snapshot");
  }
  if (h.shard_count != expect.shard_count) {
    // Re-placing keys across a resized pool is the distributed tier's
    // problem; a resized pool simply starts cold.
    return ColdStart(ColdStartReason::kShardCountMismatch,
                     "snapshot for " + std::to_string(h.shard_count) +
                         " shards, pool has " +
                         std::to_string(expect.shard_count));
  }

  ShardRestoreResult out;
  out.created_unix_seconds = h.created_unix_seconds;

  auto catalog_payload = file.Section(SectionId::kCatalog);
  auto plan_payload = file.Section(SectionId::kPlanCache);
  if (!catalog_payload.ok()) {
    return ColdStart(ColdStartReason::kCorruptSnapshot,
                     catalog_payload.status().message());
  }
  if (!plan_payload.ok()) {
    return ColdStart(ColdStartReason::kCorruptSnapshot,
                     plan_payload.status().message());
  }
  Status st = DecodeCatalogSection(*catalog_payload, &out.data);
  if (st.ok()) st = DecodePlanSection(*plan_payload, &out.data.entries);
  if (st.ok() && out.data.has_graph) {
    auto graph_payload = file.Section(SectionId::kEGraph);
    if (!graph_payload.ok()) {
      return ColdStart(ColdStartReason::kCorruptSnapshot,
                       graph_payload.status().message());
    }
    ByteReader r(*graph_payload);
    auto image = DecodeEGraphImage(r);
    if (image.ok()) {
      out.data.graph = std::move(image).value();
    } else {
      st = image.status();
    }
  }
  if (st.ok()) {
    // The calibration section is optional (a pristine table writes none).
    // Present-but-damaged is a hard cold start like any other section: a
    // half-trusted cost table would silently skew every later extraction.
    auto calibration_payload = file.Section(SectionId::kCalibration);
    if (calibration_payload.ok()) {
      st = DecodeCalibrationSection(*calibration_payload,
                                    &out.data.calibration);
    } else if (calibration_payload.status().code() != StatusCode::kNotFound) {
      return ColdStart(ColdStartReason::kCorruptSnapshot,
                       calibration_payload.status().message());
    }
  }
  if (!st.ok()) {
    return ColdStart(ColdStartReason::kCorruptSnapshot, st.message());
  }
  out.reason = ColdStartReason::kWarmRestore;
  return out;
}

}  // namespace

ShardRestoreResult PlanStoreReader::Load(const std::string& path,
                                         const SnapshotExpectation& expect) {
  auto image = ReadFileToString(path);
  if (!image.ok()) {
    return ColdStart(ColdStartReason::kNoSnapshot, image.status().message());
  }
  return Parse(*image, expect);
}

ShardRestoreResult PlanStoreReader::Parse(std::string_view image,
                                          const SnapshotExpectation& expect) {
  auto file = SnapshotFileReader::Parse(image);
  if (!file.ok()) {
    return ColdStart(ColdStartReason::kCorruptSnapshot,
                     file.status().message());
  }
  return ParseValidated(*file, expect);
}

// ---------------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------------

namespace {
constexpr uint8_t kJournalRecHeader = 1;
constexpr uint8_t kJournalRecInsert = 2;
}  // namespace

std::string EncodeJournalHeaderPayload(const JournalHeader& header) {
  ByteWriter w;
  w.PutU8(kJournalRecHeader);
  w.PutU32(header.format_version);
  w.PutU64(header.rule_set_hash);
  w.PutU64(header.cost_model_hash);
  w.PutU32(header.shard_count);
  w.PutU32(header.shard_index);
  return w.Take();
}

std::string EncodeJournalInsertPayload(const PlanCacheKey& key,
                                       const OptimizedPlan& plan) {
  ByteWriter w;
  w.PutU8(kJournalRecInsert);
  EncodePlanCacheKey(key, w);
  EncodeOptimizedPlan(plan, w);
  return w.Take();
}

namespace {

// Validates one header record payload against the expectation.
bool JournalHeaderMatches(ByteReader& r, const SnapshotExpectation& expect) {
  JournalHeader h;
  if (!r.GetU32(&h.format_version).ok() || !r.GetU64(&h.rule_set_hash).ok() ||
      !r.GetU64(&h.cost_model_hash).ok() || !r.GetU32(&h.shard_count).ok() ||
      !r.GetU32(&h.shard_index).ok()) {
    return false;
  }
  return h.format_version == kSnapshotFormatVersion &&
         h.rule_set_hash == expect.rule_set_hash &&
         h.cost_model_hash == expect.cost_model_hash &&
         h.shard_count == expect.shard_count;
}

}  // namespace

std::vector<PlanStoreEntry> ReplayJournalImage(
    std::string_view image, const SnapshotExpectation& expect) {
  std::vector<PlanStoreEntry> out;
  const std::vector<std::string> records = DecodeJournalRecords(image);

  // The first record must be a valid header; a journal written under other
  // rules/costs (or a resized pool) is worthless but harmless. Header
  // records may also recur mid-stream — journal rotation concatenates files
  // when a prior checkpoint failed — and each one re-gates what follows.
  bool validated = false;
  for (const std::string& record : records) {
    ByteReader r(record);
    uint8_t type;
    if (!r.GetU8(&type).ok()) break;
    if (type == kJournalRecHeader) {
      validated = JournalHeaderMatches(r, expect);
      if (!validated) break;
      continue;
    }
    if (!validated || type != kJournalRecInsert) break;
    PlanStoreEntry e;
    auto key = DecodePlanCacheKey(r);
    if (!key.ok()) break;
    e.key = std::move(key).value();
    auto plan = DecodeOptimizedPlan(r);
    if (!plan.ok()) break;
    e.plan = std::move(plan).value();
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace spores
