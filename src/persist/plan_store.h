// The shard-level plan store: what one serving shard persists (its plan
// cache, its saturated e-graph image, the catalog + attribute dims both
// depend on) and the writer/reader pair that moves it through the versioned
// snapshot container.
//
// Restore NEVER fails a caller: every invalid-snapshot outcome — missing
// file, corruption, format/rule/cost version skew — collapses to "cold
// start" with a machine-readable ColdStartReason, because a serving pool
// must come up whether or not last run's state is usable. The one hard rule:
// a plan extracted under different rules or costs is never served, so the
// rule-set and cost-model hashes gate the whole file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cost/calibration.h"
#include "src/egraph/egraph_image.h"
#include "src/egraph/rewrite.h"
#include "src/optimizer/optimized_plan.h"
#include "src/optimizer/plan_cache.h"
#include "src/persist/snapshot_format.h"

namespace spores {

/// Why a shard came up cold (kWarmRestore = it didn't).
enum class ColdStartReason {
  kWarmRestore = 0,
  kNoSnapshot,             ///< no snapshot file on disk (first run)
  kCorruptSnapshot,        ///< framing, CRC, or decode failure
  kFormatVersionMismatch,  ///< written by a different snapshot format
  kRuleSetHashMismatch,    ///< rule set changed since the snapshot
  kCostModelHashMismatch,  ///< costing policy changed since the snapshot
  kShardCountMismatch,     ///< pool resized; key placement is stale
  kDisabled,               ///< persistence not configured
};

const char* ColdStartReasonName(ColdStartReason reason);

/// Identity hash of a compiled rule set (names + expansive flags, order-
/// sensitive): two processes agree iff they compiled the same R_EQ. Embedded
/// in every snapshot header; a mismatch invalidates the whole file.
uint64_t RuleSetHash(const std::vector<Rewrite>& rules);

/// One persisted plan-cache entry.
struct PlanStoreEntry {
  PlanCacheKey key;
  OptimizedPlan plan;
};

/// Everything one shard persists, as plain data decoupled from the live
/// session (capture copies under the shard's own serialization; writing
/// happens later on a checkpoint thread).
struct ShardSnapshotData {
  /// Plan-cache entries, least-recently-used first, so replaying them in
  /// order reproduces the cache's recency order exactly.
  std::vector<PlanStoreEntry> entries;

  /// Attribute dimensions for every attr appearing in the e-graph image or
  /// plan keys (name -> dimension). RaAnalysis and the cost model hard-fail
  /// on unknown attrs, so the graph cannot be rebuilt without these.
  std::vector<std::pair<std::string, int64_t>> dims;

  /// The shared e-graph, when the shard had one.
  bool has_graph = false;
  std::string catalog_signature;  ///< signature the graph was keyed on
  Catalog catalog;                ///< the graph's catalog snapshot
  EGraphImage graph;              ///< dense root-scoped image

  /// The shard's learned cost-calibration table (PR 10), persisted as its
  /// own CRC'd section whenever it holds any observations. An empty image
  /// (no cells, version 0) writes no section; restore of a section-less
  /// snapshot leaves the session's table pristine.
  CalibrationImage calibration;
};

/// Fills `data->dims` with (attr, dimension) for every attribute the
/// snapshot references — e-graph image payloads plus plan-key monomials —
/// resolved against the live DimEnv. Attributes deliberately unregistered
/// there (the plan cache's $cache_row/$cache_col output sentinels) are
/// skipped: nothing on the restore path ever reads their dimension.
void CollectShardDims(const DimEnv& dims, ShardSnapshotData* data);

/// What a restore attempt is validated against.
struct SnapshotExpectation {
  uint64_t rule_set_hash = 0;
  uint64_t cost_model_hash = 0;
  uint32_t shard_count = 0;
};

/// Result of loading one shard's snapshot. `data` is meaningful only when
/// `reason == kWarmRestore`.
struct ShardRestoreResult {
  ColdStartReason reason = ColdStartReason::kNoSnapshot;
  std::string detail;  ///< human-readable cause for logs/inspect
  int64_t created_unix_seconds = 0;
  ShardSnapshotData data;
};

/// Serializes one shard's state into the snapshot container.
class PlanStoreWriter {
 public:
  /// `header.shard_index`/`shard_count` identify the shard; the hashes are
  /// passed explicitly (rather than derived internally) so tests can write
  /// deliberately skewed snapshots.
  explicit PlanStoreWriter(SnapshotHeader header) : header_(header) {}

  std::string Encode(const ShardSnapshotData& data) const;
  Status Write(const ShardSnapshotData& data, const std::string& path) const;

 private:
  SnapshotHeader header_;
};

/// Deserializes + validates one shard's snapshot.
class PlanStoreReader {
 public:
  static ShardRestoreResult Load(const std::string& path,
                                 const SnapshotExpectation& expect);
  static ShardRestoreResult Parse(std::string_view image,
                                  const SnapshotExpectation& expect);
};

// ---------------------------------------------------------------------------
// Journal records (plan-cache inserts between full checkpoints).
// ---------------------------------------------------------------------------

/// A journal file's first record declares what the rest was written under;
/// replay validates it exactly like a snapshot header.
struct JournalHeader {
  uint32_t format_version = kSnapshotFormatVersion;
  uint64_t rule_set_hash = 0;
  uint64_t cost_model_hash = 0;
  uint32_t shard_count = 0;
  uint32_t shard_index = 0;
};

std::string EncodeJournalHeaderPayload(const JournalHeader& header);
std::string EncodeJournalInsertPayload(const PlanCacheKey& key,
                                       const OptimizedPlan& plan);

/// Decodes a journal file image into plan-cache inserts. Returns an empty
/// vector when the leading header record is missing or fails validation (a
/// stale journal is silently useless, never an error), and stops at the
/// first torn/corrupt record per WAL convention. Header records may recur
/// mid-stream — rotation concatenates journal files when a prior checkpoint
/// failed — and each re-gates the records after it.
std::vector<PlanStoreEntry> ReplayJournalImage(
    std::string_view image, const SnapshotExpectation& expect);

}  // namespace spores
