// CheckpointManager: the on-disk lifecycle of a sharded plan store.
//
// Layout under one directory (one file pair per shard):
//
//   shard-<i>.snap        full snapshot (versioned container, atomic rename)
//   shard-<i>.journal     plan-cache inserts since the last rotation
//   shard-<i>.journal.1   rotated journal covering the checkpoint in flight
//
// Checkpoint protocol (crash-safe at every step):
//
//   1. Capture, on whatever thread owns the shard's session: copy the
//      shard's state into plain ShardSnapshotData AND rotate its journal
//      (.journal -> .journal.1) at the same serialization point, so the
//      rotated journal covers exactly the inserts the copy includes.
//   2. Write, on a checkpoint thread per shard: serialize + tmp/rename the
//      snapshot, then delete .journal.1 — its contents are now redundant.
//
//   A crash before the rename leaves the old snapshot + .journal.1 +
//   .journal, which together still reconstruct full state; the next
//   rotation appends .journal onto a leftover .journal.1 rather than
//   clobbering it. Restore therefore always replays .journal.1 then
//   .journal on top of the snapshot, tolerating a torn final record.
//
// This class is deliberately serve-agnostic: it never touches a session or
// pool. The serving layer supplies a capture callback (run under its own
// threading discipline) and this class owns files, rotation, and the
// parallel write fan-out.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/persist/plan_store.h"

namespace spores {

struct CheckpointConfig {
  /// Directory for snapshot + journal files. Must exist (the serving layer
  /// creates it); empty disables everything.
  std::string dir;
  /// Append every plan-cache insert to the shard's journal (fsync'd per
  /// record). Off = state persists only at full checkpoints.
  bool journal_inserts = true;
};

class CheckpointManager {
 public:
  /// `identity` stamps snapshots and journal headers (hashes, shard count).
  CheckpointManager(CheckpointConfig config, JournalHeader identity);
  ~CheckpointManager();

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  bool enabled() const { return !config_.dir.empty(); }
  size_t num_shards() const { return identity_.shard_count; }

  std::string SnapshotPath(size_t shard) const;
  std::string JournalPath(size_t shard) const;
  std::string RotatedJournalPath(size_t shard) const;

  /// Appends one insert to the shard's journal (writing the header record
  /// first on a fresh file). Thread-safe per shard; the serving layer calls
  /// it from the shard's worker thread.
  void JournalInsert(size_t shard, const PlanCacheKey& key,
                     const OptimizedPlan& plan);

  /// Flushes every open journal stream to the OS.
  void FlushJournals();

  /// Step 1 of the checkpoint protocol; call at the shard's serialization
  /// point, atomically with the state copy.
  void RotateJournal(size_t shard);

  /// Runs the full checkpoint: capture(shard) for every shard, each on its
  /// own checkpoint thread (capture is expected to block until the owning
  /// thread has produced the copy), then serialize + write in parallel.
  /// A capture returning nullopt skips that shard (its journals are kept).
  /// Returns the first write error, after attempting every shard.
  using CaptureFn =
      std::function<std::optional<ShardSnapshotData>(size_t shard)>;
  Status CheckpointAll(const CaptureFn& capture, int64_t now_unix_seconds);

  /// Loads one shard: the snapshot file validated against `expect`, plus
  /// journal replay (.journal.1 then .journal). Journals carry their own
  /// header validation, so a warm restore is possible even with no snapshot
  /// (first-run inserts journaled before any checkpoint), and a stale
  /// journal next to a valid snapshot is ignored rather than fatal.
  struct Restore {
    ColdStartReason reason = ColdStartReason::kNoSnapshot;
    std::string detail;
    int64_t created_unix_seconds = 0;
    ShardSnapshotData data;
    /// Journal inserts to replay on top of `data.entries`, oldest first.
    std::vector<PlanStoreEntry> journal_entries;
  };
  Restore RestoreShard(size_t shard, const SnapshotExpectation& expect) const;

 private:
  struct ShardJournal {
    std::mutex mu;
    std::FILE* file = nullptr;  // lazily opened append stream
  };

  void CloseJournalLocked(ShardJournal& j);

  CheckpointConfig config_;
  JournalHeader identity_;
  std::vector<std::unique_ptr<ShardJournal>> journals_;
};

}  // namespace spores
